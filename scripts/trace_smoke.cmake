# Smoke test for the structured tracing pipeline: run one figure harness
# with --quick --trace= (plus --json= so the report carries the schema-6
# trace fields), then validate the trace export against the trace-event
# checker, the report against the bench schema checker, and finally feed
# the trace through trace_report.
#
# Expected -D variables:
#   HARNESS         - path to the fig5_synthetic_ida binary
#   REPORT_TOOL     - path to the trace_report binary
#   TRACE_VALIDATOR - path to scripts/check_trace_json.py
#   BENCH_VALIDATOR - path to scripts/check_bench_json.py
#   PYTHON          - python3 interpreter
#   OUT_TRACE       - where to write the trace export
#   OUT_JSON        - where to write the bench report

foreach(var HARNESS REPORT_TOOL TRACE_VALIDATOR BENCH_VALIDATOR PYTHON
            OUT_TRACE OUT_JSON)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "trace_smoke: missing -D${var}")
  endif()
endforeach()

execute_process(
  COMMAND "${HARNESS}" --quick --budget=20000
          "--trace=${OUT_TRACE}" "--json=${OUT_JSON}"
  RESULT_VARIABLE harness_rc
  OUTPUT_VARIABLE harness_out
  ERROR_VARIABLE harness_err
)
if(NOT harness_rc EQUAL 0)
  message(FATAL_ERROR
          "trace_smoke: harness failed (${harness_rc}):\n${harness_err}")
endif()

foreach(out OUT_TRACE OUT_JSON)
  if(NOT EXISTS "${${out}}")
    message(FATAL_ERROR "trace_smoke: harness did not write ${${out}}")
  endif()
endforeach()

execute_process(
  COMMAND "${PYTHON}" "${TRACE_VALIDATOR}" "${OUT_TRACE}"
  RESULT_VARIABLE trace_rc
  OUTPUT_VARIABLE trace_out
  ERROR_VARIABLE trace_err
)
if(NOT trace_rc EQUAL 0)
  message(FATAL_ERROR
          "trace_smoke: trace failed validation:\n${trace_err}")
endif()
message(STATUS "trace_smoke: ${trace_out}")

execute_process(
  COMMAND "${PYTHON}" "${BENCH_VALIDATOR}" "${OUT_JSON}"
  RESULT_VARIABLE bench_rc
  OUTPUT_VARIABLE bench_out
  ERROR_VARIABLE bench_err
)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR
          "trace_smoke: report failed validation:\n${bench_err}")
endif()
message(STATUS "trace_smoke: ${bench_out}")

execute_process(
  COMMAND "${REPORT_TOOL}" "${OUT_TRACE}"
  RESULT_VARIABLE report_rc
  OUTPUT_VARIABLE report_out
  ERROR_VARIABLE report_err
)
if(NOT report_rc EQUAL 0)
  message(FATAL_ERROR
          "trace_smoke: trace_report failed (${report_rc}):\n${report_err}")
endif()
string(REGEX MATCH "^[^\n]*" report_first_line "${report_out}")
message(STATUS "trace_smoke: ${report_first_line}")
