# Service-level smoke test for discovery-as-a-service (docs/SERVING.md):
# serve_loadgen spawns its own tupelo_serve, drives concurrent clients
# with a mix of satisfiable and unsatisfiable (deadline-burning) jobs,
# SIGKILLs the daemon mid-run and restarts it on the same journal — the
# crash-durability proof. The loadgen exits non-zero if any accepted job
# fails to reach a terminal state (accepted-then-dropped), so this test
# is the end-to-end "kill -9 loses nothing" gate. The emitted report is
# then validated against the schema-10 checker and its summary asserted:
# at least one kill actually landed, recovery re-ran real jobs, zero
# violations.
#
# Expected -D variables:
#   LOADGEN     - path to the serve_loadgen binary
#   SERVE_BIN   - path to the tupelo_serve binary it spawns/kills
#   VALIDATOR   - path to scripts/check_bench_json.py
#   PYTHON      - python3 interpreter
#   OUT_JSON    - where to write the BENCH_serve report
#   JOURNAL_DIR - scratch journal directory (wiped before the run)

foreach(var LOADGEN SERVE_BIN VALIDATOR PYTHON OUT_JSON JOURNAL_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "serve_smoke: missing -D${var}")
  endif()
endforeach()

file(REMOVE_RECURSE "${JOURNAL_DIR}")

# Half the jobs are unsatisfiable so searches are reliably in flight when
# the SIGKILL lands; two kill/restart cycles on the same journal.
execute_process(
  COMMAND "${LOADGEN}" --quick --seed=2006
          "--serve-bin=${SERVE_BIN}"
          "--journal-dir=${JOURNAL_DIR}"
          --clients=3 --jobs=12 --hard-pct=50 --deadline-ms=1500
          --disconnect-pct=10
          --kill-after-ms=400 --restarts=2
          --workers=2 --queue-limit=8 --checkpoint-interval=16
          "--json=${OUT_JSON}"
  RESULT_VARIABLE loadgen_rc
  OUTPUT_VARIABLE loadgen_out
  ERROR_VARIABLE loadgen_err
)
message(STATUS "serve_smoke:\n${loadgen_out}")
if(NOT loadgen_rc EQUAL 0)
  message(FATAL_ERROR
          "serve_smoke: loadgen reported violations (${loadgen_rc}):\n"
          "${loadgen_out}\n${loadgen_err}")
endif()

if(NOT EXISTS "${OUT_JSON}")
  message(FATAL_ERROR "serve_smoke: loadgen did not write ${OUT_JSON}")
endif()

execute_process(
  COMMAND "${PYTHON}" "${VALIDATOR}" "${OUT_JSON}"
  RESULT_VARIABLE validator_rc
  OUTPUT_VARIABLE validator_out
  ERROR_VARIABLE validator_err
)
if(NOT validator_rc EQUAL 0)
  message(FATAL_ERROR
          "serve_smoke: report failed validation:\n${validator_err}")
endif()
message(STATUS "serve_smoke: ${validator_out}")

# Assert the chaos actually happened and the durability contract held.
execute_process(
  COMMAND "${PYTHON}" -c "
import json, sys
doc = json.load(open(sys.argv[1]))
summary = next(p for p in doc['panels'] if p['name'] == 'summary')
m = summary['runs'][0]
assert m['violations'] == 0, f'violations: {m[\"violations\"]}'
assert m['kills'] >= 1, 'no kill landed'
assert m['jobs_recovered'] >= 1, 'recovery never re-ran a job'
assert m['jobs_completed'] + m['jobs_disconnected'] == m['jobs_accepted'], \
    'accepted-then-dropped'
print('kills=%d recovered=%d completed=%d disconnected=%d accepted=%d' % (
    m['kills'], m['jobs_recovered'], m['jobs_completed'],
    m['jobs_disconnected'], m['jobs_accepted']))
" "${OUT_JSON}"
  RESULT_VARIABLE assert_rc
  OUTPUT_VARIABLE assert_out
  ERROR_VARIABLE assert_err
)
if(NOT assert_rc EQUAL 0)
  message(FATAL_ERROR
          "serve_smoke: durability assertions failed:\n${assert_err}")
endif()
message(STATUS "serve_smoke: ${assert_out}")
