#!/usr/bin/env python3
"""Validates a BENCH_*.json run report produced by a --json= harness run.

Usage: check_bench_json.py REPORT.json [REPORT2.json ...]

Checks the schema documented in docs/OBSERVABILITY.md (schema_version 9):
required top-level fields with the right types, a non-empty panels list,
and per-run presence of the standard measurement fields — including the
resource-governance fields (stop_reason, verified, verify_error,
deadline_millis) added in schema_version 2. Schema_version 3 adds the
state-substrate counters (state.cow_copies, state.relations_shared,
expand.cache_hits/misses/evictions — validated as non-negative ints
when a run carries metrics) and the micro_bench *_ns substrate timing
fields (required for the "micro" harness, validated as non-negative
numbers wherever present). Schema_version 4 adds a root "threads"
field (the --threads worker count, a positive int) and the parallel
runtime counters (beam.parallel.levels/tasks, runtime.portfolio.* —
validated like the substrate counters). Schema_version 5 adds per-run
"resumed" (bool) and "checkpoint_writes" (non-negative int) fields and
the checkpoint.* counters (checkpoint.writes/bytes,
checkpoint.resume.rungs_skipped — validated like the substrate
counters). Schema_version 6 adds the optional per-run tracing fields
written by --trace= runs ("trace_path" string, "trace_events" /
"trace_dropped" non-negative ints — the events this run added to its
trace session and how many fell off the ring) and the trace.* counters
(trace.events_recorded/events_dropped — validated like the substrate
counters). Schema_version 7 adds the self-healing runtime: the
"stalled" stop reason (a watchdog-preempted hung rung), the
supervisor.* counters, the optional per-run supervision fields
("stall_preemptions", "memory_reliefs", "rung_retries",
"states_quarantined" — non-negative ints wherever present), and the
micro_bench heartbeat_tick_ns / expand_supervised_ns timings.
Schema_version 8 adds the SIMD kernel layer: a root "simd_dispatch"
field (the runtime kernel tier — "scalar", "sse42", or "avx2"), the
micro_bench kernel timings (edit_short_ns, edit_long_ns, term_hash_ns,
term_merge_ns, estimate_batch_ns), and the TNF-encoding counters
(state.tnf_bytes/encodes, heuristic.levenshtein.tnf_hits/misses —
validated like the substrate counters). Schema_version 9 adds the
compiled executor: an optional per-run "executor" field ("interpreter"
or "compiled" — which execution backend produced the run), the
bench_apply harness fields ("case", "tuples", "apply_ns" required in
every run of the "apply" harness, optional "speedup" on compiled runs
plus "fused_ops"/"interpreted_ops"/"segments" plan-shape counts), and
the executor.fused.* counters (validated like the substrate counters).
Schema_version 10 adds the discovery service: the "error" stop reason
(a served job whose Discover call failed outright), the serve.*
counters, and the serve_loadgen "serve" harness — its "jobs" panel
runs must carry "job_id" / "accepted" / "latency_millis" /
"queue_millis", and its "summary" panel runs the throughput and
overload aggregates (jobs_submitted/accepted/shed/completed/resumed,
jobs_per_sec, p50/p99_millis, shed_rate, max_queue_depth, violations).
Exits non-zero with a line per violation, so it works as a ctest
command.
"""

import json
import sys

SCHEMA_VERSION = 10

STOP_REASONS = {
    "found", "exhausted", "states", "depth", "memory", "deadline",
    "cancelled", "stalled", "error",
}

REQUIRED_TOP = {
    "schema_version": int,
    "harness": str,
    "git_sha": str,
    "seed": int,
    "quick": bool,
    "budget": int,
    "threads": int,
    "simd_dispatch": str,
    "panels": list,
}

SIMD_DISPATCH_LEVELS = {"scalar", "sse42", "avx2"}

REQUIRED_RUN = {
    "found": bool,
    "cutoff": bool,
    "stop_reason": str,
    "verified": bool,
    "verify_error": str,
    "deadline_millis": int,
    "states_examined": int,
    "states_generated": int,
    "iterations": int,
    "peak_memory_nodes": int,
    "solution_cost": int,
    "wall_millis": (int, float),
    "resumed": bool,
    "checkpoint_writes": int,
}

# Schema 3: per-substrate timings emitted by micro_bench --json. Required
# in every run of the "micro" harness; optional (but type-checked)
# elsewhere. Schema 6 adds the tracing-overhead pair (Expand with a live
# trace session attached, and the raw per-emit cost).
MICRO_NS_FIELDS = (
    "fingerprint_cold_ns",
    "fingerprint_cached_ns",
    "successor_cold_ns",
    "successor_shared_ns",
    "expand_uncached_ns",
    "expand_cached_ns",
    "expand_traced_ns",
    "trace_emit_ns",
    # Schema 7: supervision-substrate timings (a heartbeat stamp, and
    # Expand through the poison-state quarantine wrapper).
    "heartbeat_tick_ns",
    "expand_supervised_ns",
    # Schema 8: SIMD kernel timings (dispatched edit distance short/long,
    # bulk term-key hashing, term-vector merge, batched estimation).
    "edit_short_ns",
    "edit_long_ns",
    "term_hash_ns",
    "term_merge_ns",
    "estimate_batch_ns",
)

# Schema 3: counter namespaces for the copy-on-write state substrate and
# the Expand transposition cache. Schema 4 adds the parallel-runtime
# counters; schema 6 the tracing counters. Validated wherever a run has
# metrics.
SUBSTRATE_COUNTER_PREFIXES = ("state.cow", "state.relations", "state.tnf",
                              "expand.cache", "beam.parallel", "runtime.",
                              "checkpoint.", "trace.", "supervisor.",
                              "heuristic.levenshtein.tnf",
                              "executor.fused", "serve.")

# Schema 9: which execution backend produced a run. Optional everywhere,
# required (with the apply fields below) in the "apply" harness.
EXECUTOR_KINDS = {"interpreter", "compiled"}

# Schema 9: per-run fields of the bench_apply harness. "case" names the
# expression shape, "tuples" the instance size, "apply_ns" the measured
# wall time of one apply. Required in every "apply" run; type-checked
# wherever they appear.
APPLY_RUN_FIELDS = {
    "case": str,
    "tuples": int,
    "apply_ns": (int, float),
}

# Schema 9: optional non-negative numeric/int extras on apply runs.
APPLY_OPTIONAL_NUMBERS = ("speedup",)
APPLY_OPTIONAL_COUNTS = ("fused_ops", "interpreted_ops", "segments")

# Schema 10: per-run fields of the serve_loadgen harness, by panel.
# "jobs" runs describe one submitted job (accepted or shed); "summary"
# runs carry the whole-campaign aggregates the overload and
# crash-durability acceptance gates read.
SERVE_JOBS_RUN_FIELDS = {
    "job_id": str,
    "accepted": bool,
    "latency_millis": (int, float),
    "queue_millis": (int, float),
}

SERVE_SUMMARY_COUNTS = (
    "jobs_submitted", "jobs_accepted", "jobs_shed", "jobs_completed",
    "jobs_resumed", "max_queue_depth", "violations",
)
SERVE_SUMMARY_NUMBERS = (
    "jobs_per_sec", "p50_millis", "p99_millis", "shed_rate",
)

# Schema 6: optional per-run tracing fields, present when the harness ran
# with --trace=. Type-checked wherever they appear.
TRACE_RUN_FIELDS = {
    "trace_path": str,
    "trace_events": int,
    "trace_dropped": int,
}

# Schema 7: optional per-run supervision fields, present when the harness
# ran with the self-healing supervisor enabled. Non-negative ints
# wherever they appear.
SUPERVISOR_RUN_FIELDS = (
    "stall_preemptions",
    "memory_reliefs",
    "rung_retries",
    "states_quarantined",
)


def check(path):
    errors = []

    def err(msg):
        errors.append("%s: %s" % (path, msg))

    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return ["%s: unreadable or invalid JSON: %s" % (path, e)]

    if not isinstance(doc, dict):
        return ["%s: top level is not an object" % path]

    for key, want in REQUIRED_TOP.items():
        if key not in doc:
            err("missing top-level field %r" % key)
        elif not isinstance(doc[key], want) or (
            want is int and isinstance(doc[key], bool)
        ):
            err("top-level field %r has type %s, want %s"
                % (key, type(doc[key]).__name__, want.__name__))

    if doc.get("schema_version") != SCHEMA_VERSION:
        err("schema_version is %r, want %d"
            % (doc.get("schema_version"), SCHEMA_VERSION))
    threads = doc.get("threads")
    if isinstance(threads, int) and not isinstance(threads, bool):
        if threads < 1:
            err("threads is %d, want >= 1" % threads)
    dispatch = doc.get("simd_dispatch")
    if isinstance(dispatch, str) and dispatch not in SIMD_DISPATCH_LEVELS:
        err("simd_dispatch is %r, want one of %s"
            % (dispatch, sorted(SIMD_DISPATCH_LEVELS)))
    sha = doc.get("git_sha", "")
    if isinstance(sha, str) and sha != "unknown" and (
        len(sha) != 40 or not all(c in "0123456789abcdef" for c in sha)
    ):
        err("git_sha %r is neither a 40-hex SHA nor 'unknown'" % sha)

    panels = doc.get("panels")
    if isinstance(panels, list):
        if not panels:
            err("panels list is empty")
        for pi, panel in enumerate(panels):
            if not isinstance(panel, dict):
                err("panel %d is not an object" % pi)
                continue
            if not isinstance(panel.get("name"), str) or not panel["name"]:
                err("panel %d has no name" % pi)
            runs = panel.get("runs")
            if not isinstance(runs, list) or not runs:
                err("panel %d (%s) has no runs" % (pi, panel.get("name")))
                continue
            for ri, run in enumerate(runs):
                where = "panel %d (%s) run %d" % (pi, panel.get("name"), ri)
                if not isinstance(run, dict):
                    err("%s is not an object" % where)
                    continue
                for key, want in REQUIRED_RUN.items():
                    if key not in run:
                        err("%s missing field %r" % (where, key))
                    elif not isinstance(run[key], want) or (
                        want is int and isinstance(run[key], bool)
                    ) or (want is bool and not isinstance(run[key], bool)):
                        err("%s field %r has type %s"
                            % (where, key, type(run[key]).__name__))
                if run.get("wall_millis", 0) < 0:
                    err("%s has negative wall_millis" % where)
                reason = run.get("stop_reason")
                if isinstance(reason, str) and reason not in STOP_REASONS:
                    err("%s has unknown stop_reason %r" % (where, reason))
                if run.get("found") is True and reason not in (None, "found"):
                    err("%s found=true but stop_reason is %r"
                        % (where, reason))
                if run.get("deadline_millis", 0) < 0:
                    err("%s has negative deadline_millis" % where)
                cw = run.get("checkpoint_writes")
                if isinstance(cw, int) and not isinstance(cw, bool) and cw < 0:
                    err("%s has negative checkpoint_writes" % where)
                for key, want in TRACE_RUN_FIELDS.items():
                    if key not in run:
                        continue
                    value = run[key]
                    if not isinstance(value, want) or (
                        want is int and isinstance(value, bool)
                    ):
                        err("%s field %r has type %s"
                            % (where, key, type(value).__name__))
                    elif want is int and value < 0:
                        err("%s has negative %s" % (where, key))
                    elif want is str and not value:
                        err("%s has empty %s" % (where, key))
                for key in SUPERVISOR_RUN_FIELDS:
                    if key not in run:
                        continue
                    value = run[key]
                    if not isinstance(value, int) or isinstance(value, bool):
                        err("%s field %r has type %s"
                            % (where, key, type(value).__name__))
                    elif value < 0:
                        err("%s has negative %s" % (where, key))
                executor = run.get("executor")
                if executor is not None and executor not in EXECUTOR_KINDS:
                    err("%s has unknown executor %r, want one of %s"
                        % (where, executor, sorted(EXECUTOR_KINDS)))
                is_apply = doc.get("harness") == "apply"
                if is_apply and executor is None:
                    err("%s missing field 'executor'" % where)
                for key, want in APPLY_RUN_FIELDS.items():
                    if key not in run:
                        if is_apply:
                            err("%s missing apply field %r" % (where, key))
                        continue
                    value = run[key]
                    if not isinstance(value, want) or isinstance(value, bool):
                        err("%s field %r has type %s"
                            % (where, key, type(value).__name__))
                    elif key == "case" and not value:
                        err("%s has empty case" % where)
                    elif key != "case" and value <= 0:
                        err("%s has non-positive %s" % (where, key))
                for key in APPLY_OPTIONAL_NUMBERS:
                    if key in run:
                        value = run[key]
                        if not isinstance(value, (int, float)) or isinstance(
                            value, bool
                        ) or value <= 0:
                            err("%s field %r is %r, want a positive number"
                                % (where, key, value))
                for key in APPLY_OPTIONAL_COUNTS:
                    if key in run:
                        value = run[key]
                        if not isinstance(value, int) or isinstance(
                            value, bool
                        ) or value < 0:
                            err("%s field %r is %r, want a non-negative int"
                                % (where, key, value))
                for key in MICRO_NS_FIELDS:
                    if key in run:
                        value = run[key]
                        if not isinstance(value, (int, float)) or isinstance(
                            value, bool
                        ):
                            err("%s field %r has type %s"
                                % (where, key, type(value).__name__))
                        elif value < 0:
                            err("%s has negative %s" % (where, key))
                    elif doc.get("harness") == "micro":
                        err("%s missing micro field %r" % (where, key))
                if doc.get("harness") == "serve":
                    if panel.get("name") == "jobs":
                        for key, want in SERVE_JOBS_RUN_FIELDS.items():
                            if key not in run:
                                err("%s missing serve field %r"
                                    % (where, key))
                                continue
                            value = run[key]
                            if not isinstance(value, want) or (
                                want is not bool and isinstance(value, bool)
                            ):
                                err("%s field %r has type %s"
                                    % (where, key, type(value).__name__))
                            elif want is str and not value:
                                err("%s has empty %s" % (where, key))
                            elif want != bool and not isinstance(
                                value, (str, bool)
                            ) and value < 0:
                                err("%s has negative %s" % (where, key))
                    elif panel.get("name") == "summary":
                        for key in SERVE_SUMMARY_COUNTS:
                            value = run.get(key)
                            if not isinstance(value, int) or isinstance(
                                value, bool
                            ) or value < 0:
                                err("%s serve field %r is %r, want a "
                                    "non-negative int" % (where, key, value))
                        for key in SERVE_SUMMARY_NUMBERS:
                            value = run.get(key)
                            if not isinstance(value, (int, float)) or (
                                isinstance(value, bool)
                            ) or value < 0:
                                err("%s serve field %r is %r, want a "
                                    "non-negative number"
                                    % (where, key, value))
                metrics = run.get("metrics")
                if metrics is not None:
                    if not isinstance(metrics, dict):
                        err("%s metrics is not an object" % where)
                    elif not isinstance(metrics.get("counters"), dict):
                        err("%s metrics has no counters object" % where)
                    else:
                        counters = metrics["counters"]
                        for name, value in counters.items():
                            if not name.startswith(
                                SUBSTRATE_COUNTER_PREFIXES
                            ):
                                continue
                            if not isinstance(value, int) or isinstance(
                                value, bool
                            ) or value < 0:
                                err("%s counter %r is %r, want a "
                                    "non-negative int" % (where, name, value))
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    all_errors = []
    for path in argv[1:]:
        all_errors.extend(check(path))
    for e in all_errors:
        print(e, file=sys.stderr)
    if not all_errors:
        for path in argv[1:]:
            print("%s: OK" % path)
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
