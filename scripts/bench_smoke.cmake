# Smoke test for the machine-readable bench output: run one figure harness
# with --quick --json, then validate the report against the schema checker.
#
# Expected -D variables:
#   HARNESS   - path to the fig5_synthetic_ida binary
#   VALIDATOR - path to scripts/check_bench_json.py
#   PYTHON    - python3 interpreter
#   OUT_JSON  - where to write the report

foreach(var HARNESS VALIDATOR PYTHON OUT_JSON)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench_smoke: missing -D${var}")
  endif()
endforeach()

execute_process(
  COMMAND "${HARNESS}" --quick --budget=20000 "--json=${OUT_JSON}"
  RESULT_VARIABLE harness_rc
  OUTPUT_VARIABLE harness_out
  ERROR_VARIABLE harness_err
)
if(NOT harness_rc EQUAL 0)
  message(FATAL_ERROR
          "bench_smoke: harness failed (${harness_rc}):\n${harness_err}")
endif()

if(NOT EXISTS "${OUT_JSON}")
  message(FATAL_ERROR "bench_smoke: harness did not write ${OUT_JSON}")
endif()

execute_process(
  COMMAND "${PYTHON}" "${VALIDATOR}" "${OUT_JSON}"
  RESULT_VARIABLE validator_rc
  OUTPUT_VARIABLE validator_out
  ERROR_VARIABLE validator_err
)
if(NOT validator_rc EQUAL 0)
  message(FATAL_ERROR
          "bench_smoke: report failed validation:\n${validator_err}")
endif()
message(STATUS "bench_smoke: ${validator_out}")
