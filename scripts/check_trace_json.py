#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON export written by --trace= runs.

Usage: check_trace_json.py TRACE.json [TRACE2.json ...]

Checks the contract documented in docs/OBSERVABILITY.md for
TraceSession::WriteChromeJson:

  - top level is an object with a non-empty "traceEvents" list;
  - every event has a known phase ("B", "E", "i", "I", "X", "M"), an
    integer pid and a non-negative integer tid, and (for non-metadata
    phases) a non-negative numeric ts and a non-empty name;
  - instant events carry a valid scope ("t", "p" or "g") when present;
  - per (pid, tid) track, timestamps are non-decreasing in stream order;
  - per (pid, tid) track, B/E events obey stack discipline with matching
    names and every B is closed by the end of the stream (the exporter
    reconciles pairs, so an unbalanced file means a broken writer);
  - the file contains at least one completed span (a trace of a real run
    is never span-free).

Exits non-zero with a line per violation, so it works as a ctest command.
"""

import json
import sys

PHASES = {"B", "E", "i", "I", "X", "M"}
INSTANT_SCOPES = {"t", "p", "g"}


def check(path):
    errors = []

    def err(msg):
        errors.append("%s: %s" % (path, msg))

    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return ["%s: unreadable or invalid JSON: %s" % (path, e)]

    if not isinstance(doc, dict):
        return ["%s: top level is not an object" % path]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["%s: no traceEvents list" % path]
    if not events:
        err("traceEvents list is empty")

    unit = doc.get("displayTimeUnit")
    if unit is not None and unit not in ("ms", "ns"):
        err("displayTimeUnit is %r, want 'ms' or 'ns'" % unit)

    stacks = {}  # (pid, tid) -> [span names]
    last_ts = {}  # (pid, tid) -> last timestamp seen
    spans_closed = 0

    for i, e in enumerate(events):
        where = "event %d" % i
        if not isinstance(e, dict):
            err("%s is not an object" % where)
            continue
        ph = e.get("ph")
        if ph not in PHASES:
            err("%s has unknown phase %r" % (where, ph))
            continue
        pid = e.get("pid")
        tid = e.get("tid")
        if not isinstance(pid, int) or isinstance(pid, bool):
            err("%s pid is %r, want an int" % (where, pid))
            continue
        if not isinstance(tid, int) or isinstance(tid, bool) or tid < 0:
            err("%s tid is %r, want a non-negative int" % (where, tid))
            continue
        if ph == "M":
            args = e.get("args")
            if not isinstance(args, dict):
                err("%s metadata has no args object" % where)
            continue

        name = e.get("name")
        if not isinstance(name, str) or not name:
            err("%s has no name" % where)
            continue
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            err("%s (%s) ts is %r, want a non-negative number"
                % (where, name, ts))
            continue
        args = e.get("args")
        if args is not None and not isinstance(args, dict):
            err("%s (%s) args is not an object" % (where, name))

        track = (pid, tid)
        if ts < last_ts.get(track, 0):
            err("%s (%s) ts %s goes backwards on track %r (last %s)"
                % (where, name, ts, track, last_ts[track]))
        last_ts[track] = ts

        if ph == "B":
            stacks.setdefault(track, []).append(name)
        elif ph == "E":
            stack = stacks.get(track, [])
            if not stack:
                err("%s: E %r on track %r with no open span"
                    % (where, name, track))
            elif stack[-1] != name:
                err("%s: E %r on track %r but open span is %r"
                    % (where, name, track, stack[-1]))
                stack.pop()
            else:
                stack.pop()
                spans_closed += 1
        elif ph == "i":
            scope = e.get("s")
            if scope is not None and scope not in INSTANT_SCOPES:
                err("%s (%s) instant scope is %r" % (where, name, scope))

    for track, stack in stacks.items():
        if stack:
            err("track %r ends with %d unclosed span(s), innermost %r"
                % (track, len(stack), stack[-1]))
    if not errors and spans_closed == 0:
        err("no completed spans (a run trace is never span-free)")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    all_errors = []
    for path in argv[1:]:
        all_errors.extend(check(path))
    for e in all_errors:
        print(e, file=sys.stderr)
    if not all_errors:
        for path in argv[1:]:
            print("%s: OK" % path)
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
