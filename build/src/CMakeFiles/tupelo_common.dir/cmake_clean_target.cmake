file(REMOVE_RECURSE
  "libtupelo_common.a"
)
