file(REMOVE_RECURSE
  "CMakeFiles/tupelo_common.dir/common/status.cc.o"
  "CMakeFiles/tupelo_common.dir/common/status.cc.o.d"
  "CMakeFiles/tupelo_common.dir/common/string_util.cc.o"
  "CMakeFiles/tupelo_common.dir/common/string_util.cc.o.d"
  "libtupelo_common.a"
  "libtupelo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tupelo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
