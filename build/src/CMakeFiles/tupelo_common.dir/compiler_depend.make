# Empty compiler generated dependencies file for tupelo_common.
# This may be replaced when dependencies are built.
