
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/bamm.cc" "src/CMakeFiles/tupelo_workloads.dir/workloads/bamm.cc.o" "gcc" "src/CMakeFiles/tupelo_workloads.dir/workloads/bamm.cc.o.d"
  "/root/repo/src/workloads/flights.cc" "src/CMakeFiles/tupelo_workloads.dir/workloads/flights.cc.o" "gcc" "src/CMakeFiles/tupelo_workloads.dir/workloads/flights.cc.o.d"
  "/root/repo/src/workloads/restructuring.cc" "src/CMakeFiles/tupelo_workloads.dir/workloads/restructuring.cc.o" "gcc" "src/CMakeFiles/tupelo_workloads.dir/workloads/restructuring.cc.o.d"
  "/root/repo/src/workloads/semantic.cc" "src/CMakeFiles/tupelo_workloads.dir/workloads/semantic.cc.o" "gcc" "src/CMakeFiles/tupelo_workloads.dir/workloads/semantic.cc.o.d"
  "/root/repo/src/workloads/synthetic.cc" "src/CMakeFiles/tupelo_workloads.dir/workloads/synthetic.cc.o" "gcc" "src/CMakeFiles/tupelo_workloads.dir/workloads/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tupelo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tupelo_fira.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tupelo_heuristics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tupelo_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tupelo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
