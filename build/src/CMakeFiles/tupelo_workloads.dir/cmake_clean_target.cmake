file(REMOVE_RECURSE
  "libtupelo_workloads.a"
)
