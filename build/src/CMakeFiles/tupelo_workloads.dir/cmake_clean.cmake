file(REMOVE_RECURSE
  "CMakeFiles/tupelo_workloads.dir/workloads/bamm.cc.o"
  "CMakeFiles/tupelo_workloads.dir/workloads/bamm.cc.o.d"
  "CMakeFiles/tupelo_workloads.dir/workloads/flights.cc.o"
  "CMakeFiles/tupelo_workloads.dir/workloads/flights.cc.o.d"
  "CMakeFiles/tupelo_workloads.dir/workloads/restructuring.cc.o"
  "CMakeFiles/tupelo_workloads.dir/workloads/restructuring.cc.o.d"
  "CMakeFiles/tupelo_workloads.dir/workloads/semantic.cc.o"
  "CMakeFiles/tupelo_workloads.dir/workloads/semantic.cc.o.d"
  "CMakeFiles/tupelo_workloads.dir/workloads/synthetic.cc.o"
  "CMakeFiles/tupelo_workloads.dir/workloads/synthetic.cc.o.d"
  "libtupelo_workloads.a"
  "libtupelo_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tupelo_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
