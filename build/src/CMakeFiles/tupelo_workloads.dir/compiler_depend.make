# Empty compiler generated dependencies file for tupelo_workloads.
# This may be replaced when dependencies are built.
