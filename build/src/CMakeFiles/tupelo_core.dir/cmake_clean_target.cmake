file(REMOVE_RECURSE
  "libtupelo_core.a"
)
