file(REMOVE_RECURSE
  "CMakeFiles/tupelo_core.dir/core/critical_instance.cc.o"
  "CMakeFiles/tupelo_core.dir/core/critical_instance.cc.o.d"
  "CMakeFiles/tupelo_core.dir/core/mapping_problem.cc.o"
  "CMakeFiles/tupelo_core.dir/core/mapping_problem.cc.o.d"
  "CMakeFiles/tupelo_core.dir/core/mapping_repository.cc.o"
  "CMakeFiles/tupelo_core.dir/core/mapping_repository.cc.o.d"
  "CMakeFiles/tupelo_core.dir/core/postprocess.cc.o"
  "CMakeFiles/tupelo_core.dir/core/postprocess.cc.o.d"
  "CMakeFiles/tupelo_core.dir/core/schema_matching.cc.o"
  "CMakeFiles/tupelo_core.dir/core/schema_matching.cc.o.d"
  "CMakeFiles/tupelo_core.dir/core/tupelo.cc.o"
  "CMakeFiles/tupelo_core.dir/core/tupelo.cc.o.d"
  "libtupelo_core.a"
  "libtupelo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tupelo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
