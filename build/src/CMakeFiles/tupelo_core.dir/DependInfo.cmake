
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/critical_instance.cc" "src/CMakeFiles/tupelo_core.dir/core/critical_instance.cc.o" "gcc" "src/CMakeFiles/tupelo_core.dir/core/critical_instance.cc.o.d"
  "/root/repo/src/core/mapping_problem.cc" "src/CMakeFiles/tupelo_core.dir/core/mapping_problem.cc.o" "gcc" "src/CMakeFiles/tupelo_core.dir/core/mapping_problem.cc.o.d"
  "/root/repo/src/core/mapping_repository.cc" "src/CMakeFiles/tupelo_core.dir/core/mapping_repository.cc.o" "gcc" "src/CMakeFiles/tupelo_core.dir/core/mapping_repository.cc.o.d"
  "/root/repo/src/core/postprocess.cc" "src/CMakeFiles/tupelo_core.dir/core/postprocess.cc.o" "gcc" "src/CMakeFiles/tupelo_core.dir/core/postprocess.cc.o.d"
  "/root/repo/src/core/schema_matching.cc" "src/CMakeFiles/tupelo_core.dir/core/schema_matching.cc.o" "gcc" "src/CMakeFiles/tupelo_core.dir/core/schema_matching.cc.o.d"
  "/root/repo/src/core/tupelo.cc" "src/CMakeFiles/tupelo_core.dir/core/tupelo.cc.o" "gcc" "src/CMakeFiles/tupelo_core.dir/core/tupelo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tupelo_fira.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tupelo_heuristics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tupelo_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tupelo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
