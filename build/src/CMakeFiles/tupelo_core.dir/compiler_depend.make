# Empty compiler generated dependencies file for tupelo_core.
# This may be replaced when dependencies are built.
