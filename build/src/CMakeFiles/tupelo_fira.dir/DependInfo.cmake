
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fira/builtin_functions.cc" "src/CMakeFiles/tupelo_fira.dir/fira/builtin_functions.cc.o" "gcc" "src/CMakeFiles/tupelo_fira.dir/fira/builtin_functions.cc.o.d"
  "/root/repo/src/fira/executor.cc" "src/CMakeFiles/tupelo_fira.dir/fira/executor.cc.o" "gcc" "src/CMakeFiles/tupelo_fira.dir/fira/executor.cc.o.d"
  "/root/repo/src/fira/expression.cc" "src/CMakeFiles/tupelo_fira.dir/fira/expression.cc.o" "gcc" "src/CMakeFiles/tupelo_fira.dir/fira/expression.cc.o.d"
  "/root/repo/src/fira/function_registry.cc" "src/CMakeFiles/tupelo_fira.dir/fira/function_registry.cc.o" "gcc" "src/CMakeFiles/tupelo_fira.dir/fira/function_registry.cc.o.d"
  "/root/repo/src/fira/operators.cc" "src/CMakeFiles/tupelo_fira.dir/fira/operators.cc.o" "gcc" "src/CMakeFiles/tupelo_fira.dir/fira/operators.cc.o.d"
  "/root/repo/src/fira/optimizer.cc" "src/CMakeFiles/tupelo_fira.dir/fira/optimizer.cc.o" "gcc" "src/CMakeFiles/tupelo_fira.dir/fira/optimizer.cc.o.d"
  "/root/repo/src/fira/parser.cc" "src/CMakeFiles/tupelo_fira.dir/fira/parser.cc.o" "gcc" "src/CMakeFiles/tupelo_fira.dir/fira/parser.cc.o.d"
  "/root/repo/src/fira/type_check.cc" "src/CMakeFiles/tupelo_fira.dir/fira/type_check.cc.o" "gcc" "src/CMakeFiles/tupelo_fira.dir/fira/type_check.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tupelo_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tupelo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
