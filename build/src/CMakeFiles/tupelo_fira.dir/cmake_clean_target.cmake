file(REMOVE_RECURSE
  "libtupelo_fira.a"
)
