# Empty compiler generated dependencies file for tupelo_fira.
# This may be replaced when dependencies are built.
