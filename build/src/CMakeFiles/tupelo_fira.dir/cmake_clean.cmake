file(REMOVE_RECURSE
  "CMakeFiles/tupelo_fira.dir/fira/builtin_functions.cc.o"
  "CMakeFiles/tupelo_fira.dir/fira/builtin_functions.cc.o.d"
  "CMakeFiles/tupelo_fira.dir/fira/executor.cc.o"
  "CMakeFiles/tupelo_fira.dir/fira/executor.cc.o.d"
  "CMakeFiles/tupelo_fira.dir/fira/expression.cc.o"
  "CMakeFiles/tupelo_fira.dir/fira/expression.cc.o.d"
  "CMakeFiles/tupelo_fira.dir/fira/function_registry.cc.o"
  "CMakeFiles/tupelo_fira.dir/fira/function_registry.cc.o.d"
  "CMakeFiles/tupelo_fira.dir/fira/operators.cc.o"
  "CMakeFiles/tupelo_fira.dir/fira/operators.cc.o.d"
  "CMakeFiles/tupelo_fira.dir/fira/optimizer.cc.o"
  "CMakeFiles/tupelo_fira.dir/fira/optimizer.cc.o.d"
  "CMakeFiles/tupelo_fira.dir/fira/parser.cc.o"
  "CMakeFiles/tupelo_fira.dir/fira/parser.cc.o.d"
  "CMakeFiles/tupelo_fira.dir/fira/type_check.cc.o"
  "CMakeFiles/tupelo_fira.dir/fira/type_check.cc.o.d"
  "libtupelo_fira.a"
  "libtupelo_fira.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tupelo_fira.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
