
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/algebra.cc" "src/CMakeFiles/tupelo_relational.dir/relational/algebra.cc.o" "gcc" "src/CMakeFiles/tupelo_relational.dir/relational/algebra.cc.o.d"
  "/root/repo/src/relational/catalog.cc" "src/CMakeFiles/tupelo_relational.dir/relational/catalog.cc.o" "gcc" "src/CMakeFiles/tupelo_relational.dir/relational/catalog.cc.o.d"
  "/root/repo/src/relational/database.cc" "src/CMakeFiles/tupelo_relational.dir/relational/database.cc.o" "gcc" "src/CMakeFiles/tupelo_relational.dir/relational/database.cc.o.d"
  "/root/repo/src/relational/io.cc" "src/CMakeFiles/tupelo_relational.dir/relational/io.cc.o" "gcc" "src/CMakeFiles/tupelo_relational.dir/relational/io.cc.o.d"
  "/root/repo/src/relational/relation.cc" "src/CMakeFiles/tupelo_relational.dir/relational/relation.cc.o" "gcc" "src/CMakeFiles/tupelo_relational.dir/relational/relation.cc.o.d"
  "/root/repo/src/relational/tnf.cc" "src/CMakeFiles/tupelo_relational.dir/relational/tnf.cc.o" "gcc" "src/CMakeFiles/tupelo_relational.dir/relational/tnf.cc.o.d"
  "/root/repo/src/relational/tuple.cc" "src/CMakeFiles/tupelo_relational.dir/relational/tuple.cc.o" "gcc" "src/CMakeFiles/tupelo_relational.dir/relational/tuple.cc.o.d"
  "/root/repo/src/relational/value.cc" "src/CMakeFiles/tupelo_relational.dir/relational/value.cc.o" "gcc" "src/CMakeFiles/tupelo_relational.dir/relational/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tupelo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
