file(REMOVE_RECURSE
  "CMakeFiles/tupelo_relational.dir/relational/algebra.cc.o"
  "CMakeFiles/tupelo_relational.dir/relational/algebra.cc.o.d"
  "CMakeFiles/tupelo_relational.dir/relational/catalog.cc.o"
  "CMakeFiles/tupelo_relational.dir/relational/catalog.cc.o.d"
  "CMakeFiles/tupelo_relational.dir/relational/database.cc.o"
  "CMakeFiles/tupelo_relational.dir/relational/database.cc.o.d"
  "CMakeFiles/tupelo_relational.dir/relational/io.cc.o"
  "CMakeFiles/tupelo_relational.dir/relational/io.cc.o.d"
  "CMakeFiles/tupelo_relational.dir/relational/relation.cc.o"
  "CMakeFiles/tupelo_relational.dir/relational/relation.cc.o.d"
  "CMakeFiles/tupelo_relational.dir/relational/tnf.cc.o"
  "CMakeFiles/tupelo_relational.dir/relational/tnf.cc.o.d"
  "CMakeFiles/tupelo_relational.dir/relational/tuple.cc.o"
  "CMakeFiles/tupelo_relational.dir/relational/tuple.cc.o.d"
  "CMakeFiles/tupelo_relational.dir/relational/value.cc.o"
  "CMakeFiles/tupelo_relational.dir/relational/value.cc.o.d"
  "libtupelo_relational.a"
  "libtupelo_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tupelo_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
