# Empty dependencies file for tupelo_relational.
# This may be replaced when dependencies are built.
