file(REMOVE_RECURSE
  "libtupelo_relational.a"
)
