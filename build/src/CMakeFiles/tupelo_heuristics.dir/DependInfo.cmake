
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/heuristics/composite.cc" "src/CMakeFiles/tupelo_heuristics.dir/heuristics/composite.cc.o" "gcc" "src/CMakeFiles/tupelo_heuristics.dir/heuristics/composite.cc.o.d"
  "/root/repo/src/heuristics/heuristic_factory.cc" "src/CMakeFiles/tupelo_heuristics.dir/heuristics/heuristic_factory.cc.o" "gcc" "src/CMakeFiles/tupelo_heuristics.dir/heuristics/heuristic_factory.cc.o.d"
  "/root/repo/src/heuristics/levenshtein.cc" "src/CMakeFiles/tupelo_heuristics.dir/heuristics/levenshtein.cc.o" "gcc" "src/CMakeFiles/tupelo_heuristics.dir/heuristics/levenshtein.cc.o.d"
  "/root/repo/src/heuristics/set_based.cc" "src/CMakeFiles/tupelo_heuristics.dir/heuristics/set_based.cc.o" "gcc" "src/CMakeFiles/tupelo_heuristics.dir/heuristics/set_based.cc.o.d"
  "/root/repo/src/heuristics/term_vector.cc" "src/CMakeFiles/tupelo_heuristics.dir/heuristics/term_vector.cc.o" "gcc" "src/CMakeFiles/tupelo_heuristics.dir/heuristics/term_vector.cc.o.d"
  "/root/repo/src/heuristics/vector_heuristics.cc" "src/CMakeFiles/tupelo_heuristics.dir/heuristics/vector_heuristics.cc.o" "gcc" "src/CMakeFiles/tupelo_heuristics.dir/heuristics/vector_heuristics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tupelo_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tupelo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
