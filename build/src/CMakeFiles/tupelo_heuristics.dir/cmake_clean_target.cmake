file(REMOVE_RECURSE
  "libtupelo_heuristics.a"
)
