file(REMOVE_RECURSE
  "CMakeFiles/tupelo_heuristics.dir/heuristics/composite.cc.o"
  "CMakeFiles/tupelo_heuristics.dir/heuristics/composite.cc.o.d"
  "CMakeFiles/tupelo_heuristics.dir/heuristics/heuristic_factory.cc.o"
  "CMakeFiles/tupelo_heuristics.dir/heuristics/heuristic_factory.cc.o.d"
  "CMakeFiles/tupelo_heuristics.dir/heuristics/levenshtein.cc.o"
  "CMakeFiles/tupelo_heuristics.dir/heuristics/levenshtein.cc.o.d"
  "CMakeFiles/tupelo_heuristics.dir/heuristics/set_based.cc.o"
  "CMakeFiles/tupelo_heuristics.dir/heuristics/set_based.cc.o.d"
  "CMakeFiles/tupelo_heuristics.dir/heuristics/term_vector.cc.o"
  "CMakeFiles/tupelo_heuristics.dir/heuristics/term_vector.cc.o.d"
  "CMakeFiles/tupelo_heuristics.dir/heuristics/vector_heuristics.cc.o"
  "CMakeFiles/tupelo_heuristics.dir/heuristics/vector_heuristics.cc.o.d"
  "libtupelo_heuristics.a"
  "libtupelo_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tupelo_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
