# Empty dependencies file for tupelo_heuristics.
# This may be replaced when dependencies are built.
