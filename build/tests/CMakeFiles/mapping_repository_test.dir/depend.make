# Empty dependencies file for mapping_repository_test.
# This may be replaced when dependencies are built.
