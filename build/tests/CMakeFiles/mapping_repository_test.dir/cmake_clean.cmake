file(REMOVE_RECURSE
  "CMakeFiles/mapping_repository_test.dir/mapping_repository_test.cc.o"
  "CMakeFiles/mapping_repository_test.dir/mapping_repository_test.cc.o.d"
  "mapping_repository_test"
  "mapping_repository_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_repository_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
