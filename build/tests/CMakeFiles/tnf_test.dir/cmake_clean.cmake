file(REMOVE_RECURSE
  "CMakeFiles/tnf_test.dir/tnf_test.cc.o"
  "CMakeFiles/tnf_test.dir/tnf_test.cc.o.d"
  "tnf_test"
  "tnf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
