# Empty dependencies file for tnf_test.
# This may be replaced when dependencies are built.
