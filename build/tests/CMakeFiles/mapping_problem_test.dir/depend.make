# Empty dependencies file for mapping_problem_test.
# This may be replaced when dependencies are built.
