file(REMOVE_RECURSE
  "CMakeFiles/mapping_problem_test.dir/mapping_problem_test.cc.o"
  "CMakeFiles/mapping_problem_test.dir/mapping_problem_test.cc.o.d"
  "mapping_problem_test"
  "mapping_problem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_problem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
