file(REMOVE_RECURSE
  "CMakeFiles/tupelo_test.dir/tupelo_test.cc.o"
  "CMakeFiles/tupelo_test.dir/tupelo_test.cc.o.d"
  "tupelo_test"
  "tupelo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tupelo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
