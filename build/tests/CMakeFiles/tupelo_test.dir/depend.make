# Empty dependencies file for tupelo_test.
# This may be replaced when dependencies are built.
