# Empty compiler generated dependencies file for type_check_test.
# This may be replaced when dependencies are built.
