file(REMOVE_RECURSE
  "CMakeFiles/type_check_test.dir/type_check_test.cc.o"
  "CMakeFiles/type_check_test.dir/type_check_test.cc.o.d"
  "type_check_test"
  "type_check_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/type_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
