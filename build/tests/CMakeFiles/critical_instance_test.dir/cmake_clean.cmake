file(REMOVE_RECURSE
  "CMakeFiles/critical_instance_test.dir/critical_instance_test.cc.o"
  "CMakeFiles/critical_instance_test.dir/critical_instance_test.cc.o.d"
  "critical_instance_test"
  "critical_instance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/critical_instance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
