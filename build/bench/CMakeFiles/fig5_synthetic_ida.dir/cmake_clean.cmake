file(REMOVE_RECURSE
  "CMakeFiles/fig5_synthetic_ida.dir/fig5_synthetic_ida.cc.o"
  "CMakeFiles/fig5_synthetic_ida.dir/fig5_synthetic_ida.cc.o.d"
  "fig5_synthetic_ida"
  "fig5_synthetic_ida.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_synthetic_ida.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
