# Empty compiler generated dependencies file for fig5_synthetic_ida.
# This may be replaced when dependencies are built.
