file(REMOVE_RECURSE
  "CMakeFiles/bamm_by_size.dir/bamm_by_size.cc.o"
  "CMakeFiles/bamm_by_size.dir/bamm_by_size.cc.o.d"
  "bamm_by_size"
  "bamm_by_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bamm_by_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
