# Empty dependencies file for bamm_by_size.
# This may be replaced when dependencies are built.
