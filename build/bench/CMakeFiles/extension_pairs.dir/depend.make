# Empty dependencies file for extension_pairs.
# This may be replaced when dependencies are built.
