file(REMOVE_RECURSE
  "CMakeFiles/extension_pairs.dir/extension_pairs.cc.o"
  "CMakeFiles/extension_pairs.dir/extension_pairs.cc.o.d"
  "extension_pairs"
  "extension_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
