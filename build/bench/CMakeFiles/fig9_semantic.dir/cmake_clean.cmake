file(REMOVE_RECURSE
  "CMakeFiles/fig9_semantic.dir/fig9_semantic.cc.o"
  "CMakeFiles/fig9_semantic.dir/fig9_semantic.cc.o.d"
  "fig9_semantic"
  "fig9_semantic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_semantic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
