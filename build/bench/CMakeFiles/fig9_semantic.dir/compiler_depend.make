# Empty compiler generated dependencies file for fig9_semantic.
# This may be replaced when dependencies are built.
