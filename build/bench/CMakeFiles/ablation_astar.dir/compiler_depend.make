# Empty compiler generated dependencies file for ablation_astar.
# This may be replaced when dependencies are built.
