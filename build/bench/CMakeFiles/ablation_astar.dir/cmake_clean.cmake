file(REMOVE_RECURSE
  "CMakeFiles/ablation_astar.dir/ablation_astar.cc.o"
  "CMakeFiles/ablation_astar.dir/ablation_astar.cc.o.d"
  "ablation_astar"
  "ablation_astar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_astar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
