# Empty dependencies file for fig8_bamm_overall.
# This may be replaced when dependencies are built.
