file(REMOVE_RECURSE
  "CMakeFiles/fig8_bamm_overall.dir/fig8_bamm_overall.cc.o"
  "CMakeFiles/fig8_bamm_overall.dir/fig8_bamm_overall.cc.o.d"
  "fig8_bamm_overall"
  "fig8_bamm_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_bamm_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
