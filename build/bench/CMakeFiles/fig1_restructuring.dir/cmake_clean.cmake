file(REMOVE_RECURSE
  "CMakeFiles/fig1_restructuring.dir/fig1_restructuring.cc.o"
  "CMakeFiles/fig1_restructuring.dir/fig1_restructuring.cc.o.d"
  "fig1_restructuring"
  "fig1_restructuring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_restructuring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
