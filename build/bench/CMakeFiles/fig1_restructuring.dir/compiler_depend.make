# Empty compiler generated dependencies file for fig1_restructuring.
# This may be replaced when dependencies are built.
