file(REMOVE_RECURSE
  "CMakeFiles/fig7_bamm.dir/fig7_bamm.cc.o"
  "CMakeFiles/fig7_bamm.dir/fig7_bamm.cc.o.d"
  "fig7_bamm"
  "fig7_bamm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_bamm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
