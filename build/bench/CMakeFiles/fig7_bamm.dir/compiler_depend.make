# Empty compiler generated dependencies file for fig7_bamm.
# This may be replaced when dependencies are built.
