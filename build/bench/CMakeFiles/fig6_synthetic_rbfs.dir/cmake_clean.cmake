file(REMOVE_RECURSE
  "CMakeFiles/fig6_synthetic_rbfs.dir/fig6_synthetic_rbfs.cc.o"
  "CMakeFiles/fig6_synthetic_rbfs.dir/fig6_synthetic_rbfs.cc.o.d"
  "fig6_synthetic_rbfs"
  "fig6_synthetic_rbfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_synthetic_rbfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
