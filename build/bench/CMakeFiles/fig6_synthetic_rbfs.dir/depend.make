# Empty dependencies file for fig6_synthetic_rbfs.
# This may be replaced when dependencies are built.
