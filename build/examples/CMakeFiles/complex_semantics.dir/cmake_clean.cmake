file(REMOVE_RECURSE
  "CMakeFiles/complex_semantics.dir/complex_semantics.cpp.o"
  "CMakeFiles/complex_semantics.dir/complex_semantics.cpp.o.d"
  "complex_semantics"
  "complex_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complex_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
