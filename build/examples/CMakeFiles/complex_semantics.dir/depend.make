# Empty dependencies file for complex_semantics.
# This may be replaced when dependencies are built.
