# Empty dependencies file for mapping_pipeline.
# This may be replaced when dependencies are built.
