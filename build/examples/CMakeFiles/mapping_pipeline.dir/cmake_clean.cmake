file(REMOVE_RECURSE
  "CMakeFiles/mapping_pipeline.dir/mapping_pipeline.cpp.o"
  "CMakeFiles/mapping_pipeline.dir/mapping_pipeline.cpp.o.d"
  "mapping_pipeline"
  "mapping_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
