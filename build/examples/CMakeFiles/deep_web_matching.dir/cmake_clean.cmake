file(REMOVE_RECURSE
  "CMakeFiles/deep_web_matching.dir/deep_web_matching.cpp.o"
  "CMakeFiles/deep_web_matching.dir/deep_web_matching.cpp.o.d"
  "deep_web_matching"
  "deep_web_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deep_web_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
