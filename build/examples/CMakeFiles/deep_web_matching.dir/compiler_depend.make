# Empty compiler generated dependencies file for deep_web_matching.
# This may be replaced when dependencies are built.
