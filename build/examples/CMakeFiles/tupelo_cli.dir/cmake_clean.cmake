file(REMOVE_RECURSE
  "CMakeFiles/tupelo_cli.dir/tupelo_cli.cpp.o"
  "CMakeFiles/tupelo_cli.dir/tupelo_cli.cpp.o.d"
  "tupelo_cli"
  "tupelo_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tupelo_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
