# Empty compiler generated dependencies file for tupelo_cli.
# This may be replaced when dependencies are built.
