file(REMOVE_RECURSE
  "CMakeFiles/flights_restructuring.dir/flights_restructuring.cpp.o"
  "CMakeFiles/flights_restructuring.dir/flights_restructuring.cpp.o.d"
  "flights_restructuring"
  "flights_restructuring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flights_restructuring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
