# Empty compiler generated dependencies file for flights_restructuring.
# This may be replaced when dependencies are built.
