# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_flights_restructuring "/root/repo/build/examples/flights_restructuring")
set_tests_properties(example_flights_restructuring PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_complex_semantics "/root/repo/build/examples/complex_semantics")
set_tests_properties(example_complex_semantics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_deep_web_matching "/root/repo/build/examples/deep_web_matching")
set_tests_properties(example_deep_web_matching PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mapping_pipeline "/root/repo/build/examples/mapping_pipeline")
set_tests_properties(example_mapping_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_schema_evolution "/root/repo/build/examples/schema_evolution")
set_tests_properties(example_schema_evolution PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
