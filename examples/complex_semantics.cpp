// Complex (many-to-one) semantic mappings (§4 / Example 5-6): mapping
// FlightsB to FlightsC needs TotalCost = Cost + AgentFee, expressed with
// the λ operator over the black-box function "add", plus a partition that
// splits the flat Prices table into one relation per carrier.

#include <iostream>

#include "core/tupelo.h"
#include "fira/builtin_functions.h"
#include "workloads/flights.h"

int main() {
  tupelo::Database source = tupelo::MakeFlightsB();
  tupelo::Database target = tupelo::MakeFlightsC();

  std::cout << "FlightsB (source):\n" << source.ToString() << "\n\n";
  std::cout << "FlightsC (target):\n" << target.ToString() << "\n\n";

  tupelo::FunctionRegistry registry;
  tupelo::Status st = tupelo::RegisterBuiltinFunctions(&registry);
  if (!st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }

  tupelo::Tupelo system(source, target);
  system.set_registry(&registry);
  // The user articulates the complex correspondence on the critical
  // instances (§4): TotalCost = add(Cost, AgentFee).
  for (const tupelo::SemanticCorrespondence& c :
       tupelo::FlightsBToCCorrespondences()) {
    system.AddCorrespondence(c);
  }

  tupelo::TupeloOptions options;
  options.algorithm = tupelo::SearchAlgorithm::kRbfs;
  options.heuristic = tupelo::HeuristicKind::kH1;
  tupelo::Result<tupelo::TupeloResult> result = system.Discover(options);
  if (!result.ok()) {
    std::cerr << "configuration error: " << result.status() << "\n";
    return 1;
  }
  if (!result->found) {
    std::cerr << "no mapping found within budget\n";
    return 1;
  }

  std::cout << "Discovered expression (" << result->stats.states_examined
            << " states examined):\n"
            << result->mapping.ToScript() << "\n";

  tupelo::Result<tupelo::Database> mapped =
      result->mapping.Apply(source, &registry);
  if (!mapped.ok()) {
    std::cerr << "execution error: " << mapped.status() << "\n";
    return 1;
  }
  std::cout << "FlightsB after mapping:\n" << mapped->ToString() << "\n\n";
  std::cout << "Contains FlightsC: "
            << (mapped->Contains(target) ? "yes" : "no") << "\n";
  return 0;
}
