// Deep-web schema matching (Experiment 2's setting): match a fixed query
// schema against the other query interfaces of its domain and report the
// element correspondences TUPELO reads off the discovered expressions.

#include <iostream>
#include <string>

#include "core/schema_matching.h"
#include "workloads/bamm.h"

int main(int argc, char** argv) {
  uint64_t seed = 2006;
  size_t show = 5;
  if (argc > 1) seed = std::stoull(argv[1]);

  tupelo::BammWorkload workload =
      tupelo::MakeBammWorkload(tupelo::BammDomain::kBooks, seed);

  std::cout << "Fixed source schema:\n"
            << workload.source.ToString() << "\n\n";

  tupelo::TupeloOptions options;
  options.algorithm = tupelo::SearchAlgorithm::kRbfs;
  options.heuristic = tupelo::HeuristicKind::kCosine;

  size_t shown = 0;
  for (const tupelo::Database& target : workload.targets) {
    if (shown >= show) break;
    ++shown;
    std::cout << "--- target schema #" << shown << " ---\n"
              << target.ToString() << "\n";
    tupelo::Result<tupelo::SchemaMatch> match =
        tupelo::MatchSchemas(workload.source, target, options);
    if (!match.ok() || !match->found) {
      std::cout << "no match found\n\n";
      continue;
    }
    std::cout << "states examined: " << match->stats.states_examined << "\n";
    for (const auto& [from, to] : match->relation_matches) {
      std::cout << "  relation  " << from << " <-> " << to << "\n";
    }
    for (const auto& [from, to] : match->attribute_matches) {
      std::cout << "  attribute " << from << " <-> " << to << "\n";
    }
    if (match->relation_matches.empty() && match->attribute_matches.empty()) {
      std::cout << "  (schemas already aligned — identity mapping)\n";
    }
    std::cout << "\n";
  }
  return 0;
}
