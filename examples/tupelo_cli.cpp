// tupelo_cli: discover a mapping between two database instances stored in
// .tdb files and print (or save) the executable mapping expression.
//
// Usage:
//   tupelo_cli <source.tdb> <target.tdb>
//       [--algo=ida|rbfs|astar|greedy|beam] [--heuristic=h0|h1|h2|h3|
//        levenshtein|euclid|euclid_norm|cosine|jaccard|pairs]
//       [--k=<scale>] [--max-states=N]
//       [--trace=file.json] [--trace-buffer-kb=N] [--flight-recorder]
//       [--checkpoint=file.tck] [--resume]
//       [--apply] [--compiled] [--simplify] [--check] [--conform]
//       [--save=mapping.tmap] [--name=<id>]
//       [--corr=function:in1+in2:out ...]
//   tupelo_cli --validate <mapping.tmap>
//
// Example .tdb input:
//   relation Staff (Name, Office) {
//     (Ada, B12)
//   }
//
// Exit codes (scriptable: each unsuccessful StopReason gets its own):
//    0  mapping found and verified
//    1  error (bad input file, I/O failure, Discover-level error)
//    2  usage
//    3  search space exhausted, no mapping exists
//    4  wall-clock deadline tripped
//    5  memory bound tripped
//    6  cancelled (SIGINT/SIGTERM, after a clean drain)
//    7  stalled (watchdog preempted a hung rung, retries spent)
//    8  state budget tripped
//    9  depth bound tripped
//   10  mapping found but failed replay verification
//
// SIGINT/SIGTERM cancel the root CancelToken: the running search stops
// at its next poll tick (its last --checkpoint snapshot already on
// disk), the trace and flight recorder flush, and the process exits 6.

#include <csignal>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/string_util.h"
#include "core/mapping_repository.h"
#include "core/postprocess.h"
#include "core/tupelo.h"
#include "fira/compile.h"
#include "fira/type_check.h"
#include "fira/builtin_functions.h"
#include "obs/trace.h"
#include "relational/io.h"

namespace {

// Root cancellation for the whole CLI run, flipped from the signal
// handler. CancelToken::Cancel is one relaxed atomic store, so it is
// async-signal-safe.
tupelo::CancelToken g_cancel;

void HandleSignal(int) { g_cancel.Cancel(); }

// The documented per-StopReason exit codes for an unsuccessful (or
// unverified) discovery.
int ExitCodeFor(const tupelo::TupeloResult& result) {
  if (result.found) return result.verified ? 0 : 10;
  switch (result.stop_reason) {
    case tupelo::StopReason::kDeadline:
      return 4;
    case tupelo::StopReason::kMemory:
      return 5;
    case tupelo::StopReason::kCancelled:
      return 6;
    case tupelo::StopReason::kStalled:
      return 7;
    case tupelo::StopReason::kStates:
      return 8;
    case tupelo::StopReason::kDepth:
      return 9;
    default:
      return 3;  // exhausted: the space holds no mapping
  }
}

int Usage() {
  std::cerr
      << "usage: tupelo_cli <source.tdb> <target.tdb>\n"
         "  [--algo=ida|rbfs|astar|greedy|beam]\n"
         "  [--heuristic=h0|h1|h2|h3|levenshtein|euclid|euclid_norm|cosine|"
         "jaccard|pairs]\n"
         "  [--k=<scale>] [--max-states=N] [--max-depth=N] "
         "[--deadline-ms=N] [--no-prune]\n"
         "  [--beam-width=N]          frontier width for --algo=beam\n"
         "  [--threads=N]             worker threads (beam levels expand in "
         "parallel)\n"
         "  [--portfolio]             run the degradation ladder as a "
         "concurrent portfolio\n"
         "  [--trace=file.json]       record a Chrome trace-event export "
         "of the discovery run\n"
         "  [--trace-buffer-kb=N]     per-thread trace ring size "
         "(default 256)\n"
         "  [--flight-recorder]       with --trace: dump the last events "
         "to file.json.flight on a bad stop\n"
         "  [--checkpoint=file.tck]   periodically snapshot discovery "
         "progress (atomic, checksummed)\n"
         "  [--resume]                with --checkpoint: restart from the "
         "snapshot's rung + frontier\n"
         "  [--supervise]             self-healing watchdog: preempt hung "
         "rungs, stage memory\n"
         "                            degradation, quarantine poison "
         "states\n"
         "  [--stall-window-ms=N]     with --supervise: silence window "
         "before preemption (default 500)\n"
         "  [--supervisor-tick-ms=N]  with --supervise: watchdog sampling "
         "period (default 20)\n"
         "  [--rung-retries=N]        with --supervise: retries per "
         "stalled rung (default 1)\n"
         "  [--apply]                 execute the mapping and print the "
         "result\n"
         "  [--compiled]              use the fused compiled executor for "
         "discovery\n"
         "                            successors and for --apply\n"
         "  [--simplify]              run the peephole optimizer on the "
         "result\n"
         "  [--check]                 statically type-check the result "
         "against the source schema\n"
         "  [--conform]               with --apply: project/filter the "
         "result to the target schema\n"
         "  [--corr=fn:in1+in2:out]   articulate a complex correspondence "
         "(repeatable)\n"
         "  [--save=file.tmap]        store the mapping with schemas and "
         "provenance\n"
         "  [--name=<id>]             name used when saving\n"
         "or: tupelo_cli --validate <mapping.tmap>   re-validate a stored "
         "mapping\n"
         "exit codes: 0 found+verified, 1 error, 2 usage, 3 exhausted,\n"
         "  4 deadline, 5 memory, 6 cancelled (SIGINT/SIGTERM), 7 stalled,\n"
         "  8 state budget, 9 depth bound, 10 found but unverified\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  tupelo::TupeloOptions options;
  options.algorithm = tupelo::SearchAlgorithm::kRbfs;
  options.heuristic = tupelo::HeuristicKind::kH1;
  bool apply = false;
  bool compiled = false;
  bool check = false;
  bool conform = false;
  bool validate = false;
  std::string save_path;
  std::string mapping_name = "mapping";
  std::string trace_path;
  uint64_t trace_buffer_kb = 256;
  bool flight_recorder = false;
  std::vector<tupelo::SemanticCorrespondence> correspondences;

  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      positional.emplace_back(arg);
      continue;
    }
    auto value_of = [&](std::string_view prefix) -> std::string {
      return std::string(arg.substr(prefix.size()));
    };
    if (arg.starts_with("--algo=")) {
      auto algo = tupelo::ParseSearchAlgorithm(value_of("--algo="));
      if (!algo.has_value()) return Usage();
      options.algorithm = *algo;
    } else if (arg.starts_with("--heuristic=")) {
      auto h = tupelo::ParseHeuristicKind(value_of("--heuristic="));
      if (!h.has_value()) return Usage();
      options.heuristic = *h;
    } else if (arg.starts_with("--k=")) {
      options.scale_k = std::stod(value_of("--k="));
    } else if (arg.starts_with("--max-states=")) {
      options.limits.max_states = std::stoull(value_of("--max-states="));
    } else if (arg.starts_with("--deadline-ms=")) {
      options.limits.deadline_millis = std::stoll(value_of("--deadline-ms="));
    } else if (arg.starts_with("--max-depth=")) {
      options.limits.max_depth = std::stoi(value_of("--max-depth="));
    } else if (arg.starts_with("--beam-width=")) {
      options.beam_width = std::stoull(value_of("--beam-width="));
    } else if (arg.starts_with("--threads=")) {
      options.threads = std::stoull(value_of("--threads="));
    } else if (arg == "--portfolio") {
      options.portfolio = true;
      if (options.ladder.empty()) options.ladder = tupelo::DefaultLadder();
    } else if (arg.starts_with("--trace=")) {
      trace_path = value_of("--trace=");
    } else if (arg.starts_with("--trace-buffer-kb=")) {
      trace_buffer_kb = std::stoull(value_of("--trace-buffer-kb="));
      if (trace_buffer_kb == 0) trace_buffer_kb = 256;
    } else if (arg == "--flight-recorder") {
      flight_recorder = true;
    } else if (arg.starts_with("--checkpoint=")) {
      options.checkpoint_path = value_of("--checkpoint=");
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--supervise") {
      options.supervisor.enabled = true;
    } else if (arg.starts_with("--stall-window-ms=")) {
      options.supervisor.enabled = true;
      options.supervisor.stall_window_millis =
          std::stoll(value_of("--stall-window-ms="));
    } else if (arg.starts_with("--supervisor-tick-ms=")) {
      options.supervisor.enabled = true;
      options.supervisor.tick_millis =
          std::stoll(value_of("--supervisor-tick-ms="));
    } else if (arg.starts_with("--rung-retries=")) {
      options.supervisor.enabled = true;
      options.supervisor.max_rung_retries =
          std::stoi(value_of("--rung-retries="));
    } else if (arg == "--no-prune") {
      options.successors.prune = false;
    } else if (arg == "--compiled") {
      compiled = true;
      options.successors.compiled_expand = true;
    } else if (arg == "--apply") {
      apply = true;
    } else if (arg == "--simplify") {
      options.simplify = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--conform") {
      conform = true;
    } else if (arg == "--validate") {
      validate = true;
    } else if (arg.starts_with("--save=")) {
      save_path = value_of("--save=");
    } else if (arg.starts_with("--name=")) {
      mapping_name = value_of("--name=");
    } else if (arg.starts_with("--corr=")) {
      std::vector<std::string> parts = tupelo::Split(value_of("--corr="), ':');
      if (parts.size() != 3) return Usage();
      tupelo::SemanticCorrespondence c;
      c.function = parts[0];
      c.inputs = tupelo::Split(parts[1], '+');
      c.output = parts[2];
      correspondences.push_back(std::move(c));
    } else {
      return Usage();
    }
  }
  if (validate) {
    if (positional.size() != 1) return Usage();
    tupelo::Result<tupelo::StoredMapping> stored =
        tupelo::LoadMappingFile(positional[0]);
    if (!stored.ok()) {
      std::cerr << "error loading mapping: " << stored.status() << "\n";
      return 1;
    }
    tupelo::FunctionRegistry vreg;
    tupelo::Status vst = tupelo::RegisterBuiltinFunctions(&vreg);
    if (!vst.ok()) {
      std::cerr << vst << "\n";
      return 1;
    }
    tupelo::Result<bool> ok = tupelo::ValidateStoredMapping(*stored, &vreg);
    if (!ok.ok()) {
      std::cerr << "validation error: " << ok.status() << "\n";
      return 1;
    }
    std::cout << "mapping '" << stored->name << "': "
              << (*ok ? "valid" : "INVALID (target not reached)") << "\n";
    return *ok ? 0 : 1;
  }

  if (positional.size() != 2) return Usage();
  if (flight_recorder && trace_path.empty()) {
    std::cerr << "--flight-recorder requires --trace=\n";
    return Usage();
  }

  std::unique_ptr<tupelo::obs::TraceSession> trace;
  if (!trace_path.empty()) {
    trace = std::make_unique<tupelo::obs::TraceSession>(
        static_cast<size_t>(trace_buffer_kb));
    options.trace = trace.get();
    if (flight_recorder) {
      options.flight_recorder_path = trace_path + ".flight";
    }
  }

  tupelo::Result<tupelo::Database> source =
      tupelo::LoadTdbFile(positional[0]);
  if (!source.ok()) {
    std::cerr << "error loading source: " << source.status() << "\n";
    return 1;
  }
  tupelo::Result<tupelo::Database> target =
      tupelo::LoadTdbFile(positional[1]);
  if (!target.ok()) {
    std::cerr << "error loading target: " << target.status() << "\n";
    return 1;
  }

  tupelo::FunctionRegistry registry;
  tupelo::Status st = tupelo::RegisterBuiltinFunctions(&registry);
  if (!st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }

  tupelo::Tupelo system(*source, *target);
  system.set_registry(&registry);
  for (tupelo::SemanticCorrespondence& c : correspondences) {
    system.AddCorrespondence(std::move(c));
  }

  // Ctrl-C / SIGTERM cancel the search cooperatively: Discover returns
  // StopReason::kCancelled, the trace/flight-recorder flush below still
  // runs, and the process exits 6 instead of dying mid-write.
  options.limits.cancel = &g_cancel;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  tupelo::Result<tupelo::TupeloResult> result = system.Discover(options);
  if (trace != nullptr) {
    if (!trace->WriteChromeJson(trace_path)) return 1;
    std::cerr << "# trace written to " << trace_path << " ("
              << trace->events_recorded() << " events, "
              << trace->events_dropped() << " dropped)\n";
  }
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    return 1;
  }
  if (options.supervisor.enabled &&
      (result->stall_preemptions > 0 || result->memory_reliefs > 0 ||
       result->rung_retries > 0 || result->states_quarantined > 0)) {
    std::cerr << "# supervisor: " << result->stall_preemptions
              << " stall preemption(s), " << result->rung_retries
              << " retry(ies), " << result->memory_reliefs
              << " memory relief(s), " << result->states_quarantined
              << " state(s) quarantined\n";
  }
  if (!result->found) {
    std::cerr << "no mapping found (stop reason: "
              << tupelo::StopReasonName(result->stop_reason) << ", "
              << result->stats.states_examined << " states examined)\n";
    return ExitCodeFor(*result);
  }

  std::cout << "# discovered with " << result->stats.states_examined
            << " states examined, depth " << result->stats.solution_cost
            << ", verified=" << (result->verified ? "yes" : "no") << "\n"
            << result->mapping.ToScript();

  if (!save_path.empty()) {
    tupelo::StoredMapping stored;
    stored.name = mapping_name;
    stored.expression = result->mapping;
    stored.source_instance = *source;
    stored.target_instance = *target;
    stored.correspondences = system.correspondences();
    stored.algorithm = std::string(
        tupelo::SearchAlgorithmName(options.algorithm));
    stored.heuristic = std::string(
        tupelo::HeuristicKindName(options.heuristic));
    stored.states_examined = result->stats.states_examined;
    tupelo::Status sst = tupelo::SaveMappingFile(stored, save_path);
    if (!sst.ok()) {
      std::cerr << "save failed: " << sst << "\n";
      return 1;
    }
    std::cout << "# saved to " << save_path << "\n";
  }

  if (check) {
    tupelo::Result<tupelo::DatabaseSchema> schema = tupelo::CheckExpression(
        result->mapping, tupelo::DatabaseSchema::Of(*source), &registry);
    if (!schema.ok()) {
      std::cerr << "type check failed: " << schema.status() << "\n";
      return 1;
    }
    std::cout << "# type check: ok\n";
  }

  if (apply) {
    tupelo::Result<tupelo::Database> mapped =
        compiled
            ? tupelo::CompiledExecutor(result->mapping)
                  .Apply(*source, &registry)
            : result->mapping.Apply(*source, &registry);
    if (!mapped.ok()) {
      std::cerr << "execution error: " << mapped.status() << "\n";
      return 1;
    }
    if (conform) {
      tupelo::Result<tupelo::Database> trimmed =
          tupelo::ConformToSchema(*mapped, *target);
      if (!trimmed.ok()) {
        std::cerr << "conformance error: " << trimmed.status() << "\n";
        return 1;
      }
      mapped = std::move(trimmed);
    }
    std::cout << "\n# mapped source instance:\n" << tupelo::WriteTdb(*mapped);
  }
  return ExitCodeFor(*result);
}
