// Schema evolution with a mapping repository: a catalog's schema changes
// across three versions; TUPELO discovers each migration step from
// critical instances, the steps are persisted as .tmap artifacts, and the
// stored expressions are composed to migrate v1 data all the way to v3 —
// the "mappings as glue" deployment story of the paper's introduction.

#include <iostream>

#include "core/mapping_repository.h"
#include "core/tupelo.h"
#include "relational/io.h"

namespace {

tupelo::Database MustParse(const char* text) {
  tupelo::Result<tupelo::Database> db = tupelo::ParseTdb(text);
  if (!db.ok()) {
    std::cerr << "parse error: " << db.status() << "\n";
    std::exit(1);
  }
  return std::move(db).value();
}

tupelo::MappingExpression Discover(const tupelo::Database& source,
                                   const tupelo::Database& target,
                                   const char* label) {
  tupelo::TupeloOptions options;
  options.heuristic = tupelo::HeuristicKind::kPairs;
  options.limits.max_states = 500000;
  options.simplify = true;
  tupelo::Result<tupelo::TupeloResult> r =
      tupelo::DiscoverMapping(source, target, options);
  if (!r.ok() || !r->found) {
    std::cerr << label << ": discovery failed\n";
    std::exit(1);
  }
  std::cout << "-- " << label << " (" << r->stats.states_examined
            << " states examined):\n"
            << r->mapping.ToScript() << "\n";
  return r->mapping;
}

}  // namespace

int main() {
  // v1: one flat table.
  tupelo::Database v1 = MustParse(R"(
    relation Items (sku, title, vendor) {
      (s1, Widget, Acme)
      (s2, Gadget, Apex)
    }
  )");
  // v2: renamed table and columns.
  tupelo::Database v2 = MustParse(R"(
    relation Catalog (product_id, name, vendor) {
      (s1, Widget, Acme)
      (s2, Gadget, Apex)
    }
  )");
  // v3: split per vendor (data-metadata restructuring).
  tupelo::Database v3 = MustParse(R"(
    relation Acme (product_id, name) { (s1, Widget) }
    relation Apex (product_id, name) { (s2, Gadget) }
  )");

  tupelo::MappingExpression v1_to_v2 = Discover(v1, v2, "migrate v1 -> v2");
  tupelo::MappingExpression v2_to_v3 = Discover(v2, v3, "migrate v2 -> v3");

  // Persist both steps as repository artifacts.
  tupelo::StoredMapping step1;
  step1.name = "catalog_v1_to_v2";
  step1.expression = v1_to_v2;
  step1.source_instance = v1;
  step1.target_instance = v2;
  tupelo::StoredMapping step2;
  step2.name = "catalog_v2_to_v3";
  step2.expression = v2_to_v3;
  step2.source_instance = v2;
  step2.target_instance = v3;
  std::cout << "-- stored artifacts round-trip: ";
  tupelo::Result<tupelo::StoredMapping> back1 =
      tupelo::ParseMapping(tupelo::WriteMapping(step1));
  tupelo::Result<tupelo::StoredMapping> back2 =
      tupelo::ParseMapping(tupelo::WriteMapping(step2));
  if (!back1.ok() || !back2.ok() || back1->expression != v1_to_v2 ||
      back2->expression != v2_to_v3) {
    std::cerr << "repository round-trip failed\n";
    return 1;
  }
  std::cout << "ok\n\n";

  // Compose the stored steps over a *larger* v1 production instance.
  tupelo::Database production = MustParse(R"(
    relation Items (sku, title, vendor) {
      (s1, Widget, Acme)
      (s2, Gadget, Apex)
      (s3, Sprocket, Acme)
      (s4, Doohickey, Apex)
    }
  )");
  tupelo::MappingExpression composed = back1->expression;
  for (const tupelo::Op& op : back2->expression.steps()) {
    composed.Append(op);
  }
  tupelo::Result<tupelo::Database> migrated = composed.Apply(production);
  if (!migrated.ok()) {
    std::cerr << "composed migration failed: " << migrated.status() << "\n";
    return 1;
  }
  std::cout << "-- v1 production data migrated to v3:\n";
  for (const char* vendor : {"Acme", "Apex"}) {
    tupelo::Result<const tupelo::Relation*> rel =
        migrated->GetRelation(vendor);
    if (!rel.ok()) {
      std::cerr << "missing vendor relation " << vendor << "\n";
      return 1;
    }
    std::cout << (*rel)->ToString() << "\n";
  }
  return 0;
}
