// The full lifecycle of a mapping artifact: discover on critical
// instances, simplify, serialize, statically type-check against the source
// schema, re-parse, execute on a production-sized instance, and conform
// the result to the target schema (§2.1's post-processing).

#include <iostream>

#include "core/postprocess.h"
#include "core/tupelo.h"
#include "fira/optimizer.h"
#include "fira/parser.h"
#include "fira/type_check.h"
#include "relational/io.h"
#include "workloads/restructuring.h"

int main() {
  // Critical instances: the smallest restructuring pair (2 carriers,
  // 2 routes — exactly Fig. 1's shape).
  tupelo::RestructuringWorkload critical =
      tupelo::MakeRestructuringWorkload(2, 2);

  std::cout << "== 1. discover on critical instances ==\n";
  tupelo::TupeloOptions options;
  options.algorithm = tupelo::SearchAlgorithm::kRbfs;
  options.heuristic = tupelo::HeuristicKind::kCosine;
  options.limits.max_states = 500000;
  options.limits.max_depth = 12;
  options.simplify = true;  // peephole-optimize the discovered expression
  tupelo::Result<tupelo::TupeloResult> result =
      tupelo::DiscoverMapping(critical.flat, critical.wide, options);
  if (!result.ok() || !result->found) {
    std::cerr << "discovery failed\n";
    return 1;
  }
  std::cout << result->mapping.ToScript() << "\n";

  std::cout << "== 2. serialize / re-parse ==\n";
  std::string script = result->mapping.ToScript();
  tupelo::Result<tupelo::MappingExpression> reparsed =
      tupelo::ParseExpression(script);
  if (!reparsed.ok()) {
    std::cerr << "re-parse failed: " << reparsed.status() << "\n";
    return 1;
  }
  std::cout << "round-trips: " << (*reparsed == result->mapping ? "yes" : "no")
            << "\n\n";

  std::cout << "== 3. static type check against the source schema ==\n";
  tupelo::Result<tupelo::DatabaseSchema> schema = tupelo::CheckExpression(
      *reparsed, tupelo::DatabaseSchema::Of(critical.flat));
  if (!schema.ok()) {
    std::cerr << "type check failed: " << schema.status() << "\n";
    return 1;
  }
  std::cout << "well-typed: yes\n\n";

  std::cout << "== 4. execute on a larger production instance ==\n";
  // Same schema, 4 carriers x 5 routes — data the search never saw.
  tupelo::RestructuringWorkload production =
      tupelo::MakeRestructuringWorkload(4, 5);
  tupelo::Result<tupelo::Database> mapped =
      reparsed->Apply(production.flat);
  if (!mapped.ok()) {
    std::cerr << "execution failed: " << mapped.status() << "\n";
    return 1;
  }
  std::cout << "maps production flat -> wide: "
            << (mapped->Contains(production.wide) ? "yes" : "no") << "\n\n";

  std::cout << "== 5. conform to the target schema ==\n";
  tupelo::Result<tupelo::Database> conformed =
      tupelo::ConformToSchema(*mapped, production.wide);
  if (!conformed.ok()) {
    std::cerr << "conformance failed: " << conformed.status() << "\n";
    return 1;
  }
  std::cout << conformed->ToString() << "\n";
  std::cout << "\nexactly the target instance: "
            << (conformed->ContentsEqual(production.wide) ? "yes" : "no")
            << "\n";
  return 0;
}
