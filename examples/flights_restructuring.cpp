// The paper's running example (Fig. 1 / Example 2): mapping FlightsB to
// FlightsA requires dynamic data-metadata restructuring — Route *values*
// become attribute *names*. This example discovers that mapping with
// TUPELO, compares it to the paper's hand-written expression, and executes
// both.

#include <iostream>

#include "core/tupelo.h"
#include "workloads/flights.h"

int main() {
  tupelo::Database source = tupelo::MakeFlightsB();
  tupelo::Database target = tupelo::MakeFlightsA();

  std::cout << "FlightsB (source):\n" << source.ToString() << "\n\n";
  std::cout << "FlightsA (target):\n" << target.ToString() << "\n\n";

  // The paper's hand-written mapping (Example 2).
  tupelo::MappingExpression paper = tupelo::FlightsBToAExpression();
  std::cout << "Paper's expression (Example 2):\n" << paper.ToScript();
  tupelo::Result<tupelo::Database> by_hand = paper.Apply(source);
  if (!by_hand.ok()) {
    std::cerr << "paper expression failed: " << by_hand.status() << "\n";
    return 1;
  }
  std::cout << "...maps FlightsB onto FlightsA: "
            << (by_hand->Contains(target) ? "yes" : "no") << "\n\n";

  // Discover the mapping from the critical instances alone.
  tupelo::TupeloOptions options;
  options.algorithm = tupelo::SearchAlgorithm::kRbfs;
  options.heuristic = tupelo::HeuristicKind::kH1;
  tupelo::Result<tupelo::TupeloResult> result =
      tupelo::DiscoverMapping(source, target, options);
  if (!result.ok() || !result->found) {
    std::cerr << "discovery failed\n";
    return 1;
  }
  std::cout << "Discovered expression (" << result->stats.states_examined
            << " states examined, depth " << result->stats.solution_cost
            << "):\n"
            << result->mapping.ToScript() << "\n";
  std::cout << "Verified on the source instance: "
            << (result->verified ? "yes" : "no") << "\n";
  return 0;
}
