// Quickstart: discover a schema matching between two small relational
// schemas from example instances, print the executable mapping expression,
// and re-execute it.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdlib>
#include <iostream>

#include "core/tupelo.h"
#include "relational/io.h"

namespace {

tupelo::Database MustParse(const char* text) {
  tupelo::Result<tupelo::Database> db = tupelo::ParseTdb(text);
  if (!db.ok()) {
    std::cerr << "parse error: " << db.status() << "\n";
    std::exit(1);
  }
  return std::move(db).value();
}

}  // namespace

int main() {
  // Critical instances (the Rosetta Stone principle): the same employee
  // shown under both schemas.
  tupelo::Database source = MustParse(R"(
    relation Staff (Name, Office, Phone) {
      (Ada, B12, 555-0100)
    }
  )");
  tupelo::Database target = MustParse(R"(
    relation Employees (FullName, Room, Phone) {
      (Ada, B12, 555-0100)
    }
  )");

  std::cout << "Source instance:\n" << source.ToString() << "\n\n";
  std::cout << "Target instance:\n" << target.ToString() << "\n\n";

  tupelo::Tupelo system(source, target);
  tupelo::TupeloOptions options;
  options.algorithm = tupelo::SearchAlgorithm::kRbfs;
  options.heuristic = tupelo::HeuristicKind::kH1;

  tupelo::Result<tupelo::TupeloResult> result = system.Discover(options);
  if (!result.ok()) {
    std::cerr << "configuration error: " << result.status() << "\n";
    return 1;
  }
  if (!result->found) {
    std::cerr << "no mapping found within budget ("
              << result->stats.states_examined << " states examined)\n";
    return 1;
  }

  std::cout << "Discovered mapping (" << result->stats.states_examined
            << " states examined, depth " << result->stats.solution_cost
            << "):\n"
            << result->mapping.ToScript() << "\n";

  // The expression is executable: apply it to (any instance of) the source.
  tupelo::Result<tupelo::Database> mapped = result->mapping.Apply(source);
  if (!mapped.ok()) {
    std::cerr << "execution error: " << mapped.status() << "\n";
    return 1;
  }
  std::cout << "Source after mapping:\n" << mapped->ToString() << "\n";
  std::cout << "\nContains target instance: "
            << (mapped->Contains(target) ? "yes" : "no") << "\n";
  return 0;
}
