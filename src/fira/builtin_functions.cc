#include "fira/builtin_functions.h"

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "common/string_util.h"

namespace tupelo {
namespace {

Result<int64_t> ToInt(const std::string& s) {
  if (!IsInteger(s)) {
    return Status::InvalidArgument("not an integer: '" + s + "'");
  }
  return static_cast<int64_t>(std::strtoll(s.c_str(), nullptr, 10));
}

Result<double> ToNumber(const std::string& s) {
  if (!IsNumber(s)) {
    return Status::InvalidArgument("not a number: '" + s + "'");
  }
  return std::strtod(s.c_str(), nullptr);
}

using Args = std::vector<std::string>;

ComplexFunction Fn(std::string name, size_t arity,
                   std::function<Result<std::string>(const Args&)> impl,
                   std::string description) {
  ComplexFunction f;
  f.name = std::move(name);
  f.arity = arity;
  f.impl = std::move(impl);
  f.description = std::move(description);
  return f;
}

}  // namespace

Status RegisterBuiltinFunctions(FunctionRegistry* registry) {
  TUPELO_RETURN_IF_ERROR(registry->Register(Fn(
      "concat", 2, [](const Args& a) -> Result<std::string> {
        return a[0] + a[1];
      },
      "string concatenation a+b")));

  TUPELO_RETURN_IF_ERROR(registry->Register(Fn(
      "concat_ws", 2, [](const Args& a) -> Result<std::string> {
        return a[0] + " " + a[1];
      },
      "space-separated concatenation")));

  TUPELO_RETURN_IF_ERROR(registry->Register(Fn(
      "full_name", 2, [](const Args& a) -> Result<std::string> {
        return a[1] + " " + a[0];
      },
      "(last, first) -> 'First Last' (paper Example 5, f2)")));

  TUPELO_RETURN_IF_ERROR(registry->Register(Fn(
      "add", 2, [](const Args& a) -> Result<std::string> {
        TUPELO_ASSIGN_OR_RETURN(int64_t x, ToInt(a[0]));
        TUPELO_ASSIGN_OR_RETURN(int64_t y, ToInt(a[1]));
        return std::to_string(x + y);
      },
      "integer sum (paper Example 5, f3 shape)")));

  TUPELO_RETURN_IF_ERROR(registry->Register(Fn(
      "sub", 2, [](const Args& a) -> Result<std::string> {
        TUPELO_ASSIGN_OR_RETURN(int64_t x, ToInt(a[0]));
        TUPELO_ASSIGN_OR_RETURN(int64_t y, ToInt(a[1]));
        return std::to_string(x - y);
      },
      "integer difference")));

  TUPELO_RETURN_IF_ERROR(registry->Register(Fn(
      "mul", 2, [](const Args& a) -> Result<std::string> {
        TUPELO_ASSIGN_OR_RETURN(int64_t x, ToInt(a[0]));
        TUPELO_ASSIGN_OR_RETURN(int64_t y, ToInt(a[1]));
        return std::to_string(x * y);
      },
      "integer product")));

  TUPELO_RETURN_IF_ERROR(registry->Register(Fn(
      "scale_pct", 2, [](const Args& a) -> Result<std::string> {
        TUPELO_ASSIGN_OR_RETURN(double x, ToNumber(a[0]));
        TUPELO_ASSIGN_OR_RETURN(double pct, ToNumber(a[1]));
        return std::to_string(
            static_cast<int64_t>(std::llround(x * pct / 100.0)));
      },
      "round(a * pct / 100)")));

  TUPELO_RETURN_IF_ERROR(registry->Register(Fn(
      "date_us_to_iso", 1, [](const Args& a) -> Result<std::string> {
        std::vector<std::string> parts = Split(a[0], '/');
        if (parts.size() != 3 || parts[0].size() != 2 ||
            parts[1].size() != 2 || parts[2].size() != 4 ||
            !IsInteger(parts[0]) || !IsInteger(parts[1]) ||
            !IsInteger(parts[2])) {
          return Status::InvalidArgument("not MM/DD/YYYY: '" + a[0] + "'");
        }
        return parts[2] + "-" + parts[0] + "-" + parts[1];
      },
      "MM/DD/YYYY -> YYYY-MM-DD")));

  TUPELO_RETURN_IF_ERROR(registry->Register(Fn(
      "usd_to_cents", 1, [](const Args& a) -> Result<std::string> {
        std::vector<std::string> parts = Split(a[0], '.');
        if (parts.size() != 2 || parts[1].size() != 2 ||
            !IsInteger(parts[0]) || !IsInteger(parts[1])) {
          return Status::InvalidArgument("not D.CC dollars: '" + a[0] + "'");
        }
        TUPELO_ASSIGN_OR_RETURN(int64_t dollars, ToInt(parts[0]));
        TUPELO_ASSIGN_OR_RETURN(int64_t cents, ToInt(parts[1]));
        return std::to_string(dollars * 100 + cents);
      },
      "'12.34' -> '1234'")));

  TUPELO_RETURN_IF_ERROR(registry->Register(Fn(
      "upper", 1, [](const Args& a) -> Result<std::string> {
        std::string out = a[0];
        for (char& c : out) {
          c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
        }
        return out;
      },
      "ASCII uppercase")));

  TUPELO_RETURN_IF_ERROR(registry->Register(Fn(
      "lower", 1, [](const Args& a) -> Result<std::string> {
        return AsciiToLower(a[0]);
      },
      "ASCII lowercase")));

  TUPELO_RETURN_IF_ERROR(registry->Register(Fn(
      "sqft_to_sqm", 1, [](const Args& a) -> Result<std::string> {
        TUPELO_ASSIGN_OR_RETURN(double sqft, ToNumber(a[0]));
        return std::to_string(
            static_cast<int64_t>(std::llround(sqft / 10.7639)));
      },
      "integer square feet -> square meters")));

  return Status::OK();
}

}  // namespace tupelo
