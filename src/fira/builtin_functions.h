#ifndef TUPELO_FIRA_BUILTIN_FUNCTIONS_H_
#define TUPELO_FIRA_BUILTIN_FUNCTIONS_H_

#include "common/status.h"
#include "fira/function_registry.h"

namespace tupelo {

// Registers the library's stock complex semantic functions:
//
//   concat(a, b)        -> a ⊕ b
//   concat_ws(a, b)     -> a ⊕ " " ⊕ b          (e.g. "John" "Smith" -> "John Smith")
//   full_name(last, first) -> first ⊕ " " ⊕ last (Example 5's f2)
//   add(a, b)           -> integer sum           (Example 5's f3 shape)
//   sub(a, b)           -> integer difference
//   mul(a, b)           -> integer product
//   scale_pct(a, pct)   -> round(a * pct / 100)
//   date_us_to_iso(d)   -> "MM/DD/YYYY" -> "YYYY-MM-DD"
//   usd_to_cents(d)     -> "12.34" -> "1234"
//   upper(s) / lower(s) -> ASCII case conversion
//   sqft_to_sqm(a)      -> round(a / 10.7639) on integer square feet
//
// Numeric functions fail (Status) on non-numeric input; the λ operator
// maps per-tuple failures to null.
Status RegisterBuiltinFunctions(FunctionRegistry* registry);

}  // namespace tupelo

#endif  // TUPELO_FIRA_BUILTIN_FUNCTIONS_H_
