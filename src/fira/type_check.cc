#include "fira/type_check.h"

#include <algorithm>
#include <utility>

namespace tupelo {

bool RelationSchema::HasAttribute(const std::string& attr) const {
  return std::find(attributes.begin(), attributes.end(), attr) !=
         attributes.end();
}

DatabaseSchema DatabaseSchema::Of(const Database& db) {
  DatabaseSchema out;
  for (const auto& [name, rel] : db.relations()) {
    out.relations[name] = RelationSchema{rel->attributes(), false};
  }
  return out;
}

namespace {

// Looks up a relation schema; when the database is open and the relation
// is unknown, yields a fully-open placeholder (nothing can be proven about
// it). A missing relation in a closed database is a definite error.
Result<RelationSchema> FindRelation(const DatabaseSchema& db,
                                    const std::string& name,
                                    const std::string& op) {
  auto it = db.relations.find(name);
  if (it != db.relations.end()) return it->second;
  if (db.open) return RelationSchema{{}, true};
  return Status::NotFound(op + ": relation '" + name + "' does not exist");
}

// Definite-presence / definite-absence judgements on attributes.
Status RequireAttribute(const RelationSchema& rel, const std::string& attr,
                        const std::string& op) {
  if (rel.HasAttribute(attr) || rel.open) return Status::OK();
  return Status::NotFound(op + ": attribute '" + attr + "' does not exist");
}

Status RequireFreshAttribute(const RelationSchema& rel,
                             const std::string& attr,
                             const std::string& op) {
  if (rel.HasAttribute(attr)) {
    return Status::AlreadyExists(op + ": attribute '" + attr +
                                 "' already exists");
  }
  return Status::OK();
}

struct SchemaApplier {
  const DatabaseSchema& input;
  const FunctionRegistry* registry;

  Result<DatabaseSchema> operator()(const DereferenceOp& op) const {
    TUPELO_ASSIGN_OR_RETURN(RelationSchema rel,
                            FindRelation(input, op.rel, "dereference"));
    TUPELO_RETURN_IF_ERROR(RequireAttribute(rel, op.pointer, "dereference"));
    TUPELO_RETURN_IF_ERROR(RequireFreshAttribute(rel, op.out, "dereference"));
    DatabaseSchema out = input;
    rel.attributes.push_back(op.out);
    out.relations[op.rel] = std::move(rel);
    return out;
  }

  Result<DatabaseSchema> operator()(const PromoteOp& op) const {
    TUPELO_ASSIGN_OR_RETURN(RelationSchema rel,
                            FindRelation(input, op.rel, "promote"));
    TUPELO_RETURN_IF_ERROR(RequireAttribute(rel, op.name_attr, "promote"));
    TUPELO_RETURN_IF_ERROR(RequireAttribute(rel, op.value_attr, "promote"));
    DatabaseSchema out = input;
    rel.open = true;  // data-named columns appear
    out.relations[op.rel] = std::move(rel);
    return out;
  }

  Result<DatabaseSchema> operator()(const DemoteOp& op) const {
    TUPELO_ASSIGN_OR_RETURN(RelationSchema rel,
                            FindRelation(input, op.rel, "demote"));
    TUPELO_RETURN_IF_ERROR(
        RequireFreshAttribute(rel, kDemoteAttrColumn, "demote"));
    TUPELO_RETURN_IF_ERROR(
        RequireFreshAttribute(rel, kDemoteValueColumn, "demote"));
    DatabaseSchema out = input;
    rel.attributes.push_back(kDemoteAttrColumn);
    rel.attributes.push_back(kDemoteValueColumn);
    out.relations[op.rel] = std::move(rel);
    return out;
  }

  Result<DatabaseSchema> operator()(const PartitionOp& op) const {
    TUPELO_ASSIGN_OR_RETURN(RelationSchema rel,
                            FindRelation(input, op.rel, "partition"));
    TUPELO_RETURN_IF_ERROR(RequireAttribute(rel, op.attr, "partition"));
    DatabaseSchema out = input;
    out.open = true;  // data-named relations appear
    return out;
  }

  Result<DatabaseSchema> operator()(const ProductOp& op) const {
    if (op.left == op.right) {
      return Status::InvalidArgument("product: self-product of '" + op.left +
                                     "'");
    }
    TUPELO_ASSIGN_OR_RETURN(RelationSchema left,
                            FindRelation(input, op.left, "product"));
    TUPELO_ASSIGN_OR_RETURN(RelationSchema right,
                            FindRelation(input, op.right, "product"));
    for (const std::string& a : right.attributes) {
      if (left.HasAttribute(a)) {
        return Status::InvalidArgument("product: attribute '" + a +
                                       "' appears in both operands");
      }
    }
    std::string result_name = ProductResultName(op);
    if (input.HasRelation(result_name)) {
      return Status::AlreadyExists("product: relation '" + result_name +
                                   "' already exists");
    }
    DatabaseSchema out = input;
    RelationSchema product;
    product.attributes = left.attributes;
    product.attributes.insert(product.attributes.end(),
                              right.attributes.begin(),
                              right.attributes.end());
    product.open = left.open || right.open;
    out.relations[result_name] = std::move(product);
    return out;
  }

  Result<DatabaseSchema> operator()(const DropOp& op) const {
    TUPELO_ASSIGN_OR_RETURN(RelationSchema rel,
                            FindRelation(input, op.rel, "drop"));
    TUPELO_RETURN_IF_ERROR(RequireAttribute(rel, op.attr, "drop"));
    if (!rel.open && rel.attributes.size() <= 1) {
      return Status::FailedPrecondition(
          "drop: cannot drop the last column of " + op.rel);
    }
    DatabaseSchema out = input;
    auto it =
        std::find(rel.attributes.begin(), rel.attributes.end(), op.attr);
    if (it != rel.attributes.end()) rel.attributes.erase(it);
    out.relations[op.rel] = std::move(rel);
    return out;
  }

  Result<DatabaseSchema> operator()(const MergeOp& op) const {
    TUPELO_ASSIGN_OR_RETURN(RelationSchema rel,
                            FindRelation(input, op.rel, "merge"));
    TUPELO_RETURN_IF_ERROR(RequireAttribute(rel, op.attr, "merge"));
    return input;  // schema unchanged
  }

  Result<DatabaseSchema> operator()(const RenameAttrOp& op) const {
    TUPELO_ASSIGN_OR_RETURN(RelationSchema rel,
                            FindRelation(input, op.rel, "rename_att"));
    TUPELO_RETURN_IF_ERROR(RequireAttribute(rel, op.from, "rename_att"));
    TUPELO_RETURN_IF_ERROR(RequireFreshAttribute(rel, op.to, "rename_att"));
    DatabaseSchema out = input;
    auto it =
        std::find(rel.attributes.begin(), rel.attributes.end(), op.from);
    if (it != rel.attributes.end()) {
      *it = op.to;
    } else {
      rel.attributes.push_back(op.to);  // came from the open part
    }
    out.relations[op.rel] = std::move(rel);
    return out;
  }

  Result<DatabaseSchema> operator()(const RenameRelOp& op) const {
    TUPELO_ASSIGN_OR_RETURN(RelationSchema rel,
                            FindRelation(input, op.from, "rename_rel"));
    if (input.HasRelation(op.to)) {
      return Status::AlreadyExists("rename_rel: relation '" + op.to +
                                   "' already exists");
    }
    DatabaseSchema out = input;
    out.relations.erase(op.from);
    out.relations[op.to] = std::move(rel);
    return out;
  }

  Result<DatabaseSchema> operator()(const ApplyFunctionOp& op) const {
    if (registry == nullptr) {
      return Status::FailedPrecondition(
          "apply: no function registry supplied for λ operator");
    }
    TUPELO_ASSIGN_OR_RETURN(const ComplexFunction* fn,
                            registry->Lookup(op.function));
    if (fn->arity != op.inputs.size()) {
      return Status::InvalidArgument(
          "apply: function '" + op.function + "' expects " +
          std::to_string(fn->arity) + " inputs, got " +
          std::to_string(op.inputs.size()));
    }
    TUPELO_ASSIGN_OR_RETURN(RelationSchema rel,
                            FindRelation(input, op.rel, "apply"));
    for (const std::string& in : op.inputs) {
      TUPELO_RETURN_IF_ERROR(RequireAttribute(rel, in, "apply"));
    }
    TUPELO_RETURN_IF_ERROR(RequireFreshAttribute(rel, op.out, "apply"));
    DatabaseSchema out = input;
    rel.attributes.push_back(op.out);
    out.relations[op.rel] = std::move(rel);
    return out;
  }
};

}  // namespace

Result<DatabaseSchema> ApplyOpToSchema(const Op& op,
                                       const DatabaseSchema& input,
                                       const FunctionRegistry* registry) {
  return std::visit(SchemaApplier{input, registry}, op);
}

Result<DatabaseSchema> CheckExpression(const MappingExpression& expression,
                                       const DatabaseSchema& input,
                                       const FunctionRegistry* registry) {
  DatabaseSchema schema = input;
  for (size_t i = 0; i < expression.steps().size(); ++i) {
    Result<DatabaseSchema> next =
        ApplyOpToSchema(expression.steps()[i], schema, registry);
    if (!next.ok()) {
      return Status(next.status().code(),
                    "step " + std::to_string(i + 1) + " (" +
                        OpToScript(expression.steps()[i]) +
                        "): " + next.status().message());
    }
    schema = std::move(next).value();
  }
  return schema;
}

}  // namespace tupelo
