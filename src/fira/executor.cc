#include "fira/executor.h"

#include <atomic>
#include <chrono>
#include <map>
#include <new>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "common/hash.h"

namespace tupelo {
namespace {

std::atomic<FaultInjector*> g_fault_injector{nullptr};

}  // namespace

void FaultInjector::Arm(std::string op_name, Status status, uint64_t skip) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = true;
  mode_ = Mode::kAfterSkip;
  kind_ = Kind::kStatus;
  op_name_ = std::move(op_name);
  status_ = std::move(status);
  skip_ = skip;
  delay_millis_ = 0;
  max_fires_ = 0;
  consults_ = 0;
  injected_ = 0;
}

void FaultInjector::ArmProbabilistic(std::string op_name, Status status,
                                     double probability, uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = true;
  mode_ = Mode::kProbabilistic;
  kind_ = Kind::kStatus;
  op_name_ = std::move(op_name);
  status_ = std::move(status);
  probability_ = probability < 0.0 ? 0.0 : (probability > 1.0 ? 1.0
                                                              : probability);
  seed_ = seed;
  delay_millis_ = 0;
  max_fires_ = 0;
  consults_ = 0;
  injected_ = 0;
}

void FaultInjector::ArmEveryNth(std::string op_name, Status status,
                                uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = true;
  mode_ = Mode::kEveryNth;
  kind_ = Kind::kStatus;
  op_name_ = std::move(op_name);
  status_ = std::move(status);
  every_n_ = n;
  delay_millis_ = 0;
  max_fires_ = 0;
  consults_ = 0;
  injected_ = 0;
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = false;
  kind_ = Kind::kStatus;
  delay_millis_ = 0;
  max_fires_ = 0;
}

void FaultInjector::SetKind(Kind kind, int64_t delay_millis) {
  std::lock_guard<std::mutex> lock(mu_);
  kind_ = kind;
  delay_millis_ = delay_millis < 0 ? 0 : delay_millis;
}

void FaultInjector::SetMaxFires(uint64_t max_fires) {
  std::lock_guard<std::mutex> lock(mu_);
  max_fires_ = max_fires;
}

uint64_t FaultInjector::consults() const {
  std::lock_guard<std::mutex> lock(mu_);
  return consults_;
}

uint64_t FaultInjector::injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_;
}

bool FaultInjector::ShouldFail(std::string_view op_name, Fault* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_) return false;
  if (op_name_ != "*" && op_name_ != op_name) return false;
  uint64_t index = consults_++;
  bool fire = false;
  switch (mode_) {
    case Mode::kAfterSkip:
      fire = index >= skip_;
      break;
    case Mode::kProbabilistic: {
      // Counter-keyed hash → uniform double in [0, 1): deterministic per
      // (seed, index), so a campaign trial replays bit-for-bit.
      uint64_t r = Mix64(seed_ ^ Mix64(index + 1));
      fire = (static_cast<double>(r >> 11) * 0x1.0p-53) < probability_;
      break;
    }
    case Mode::kEveryNth:
      fire = every_n_ > 0 && (index + 1) % every_n_ == 0;
      break;
  }
  if (fire && max_fires_ > 0 && injected_ >= max_fires_) fire = false;
  if (!fire) return false;
  ++injected_;
  out->kind = kind_;
  out->status = status_;
  out->delay_millis = delay_millis_;
  return true;
}

bool FaultInjector::ShouldFail(std::string_view op_name, Status* out) {
  Fault fault;
  if (!ShouldFail(op_name, &fault)) return false;
  *out = std::move(fault.status);
  return true;
}

void SetFaultInjector(FaultInjector* injector) {
  g_fault_injector.store(injector, std::memory_order_release);
}

FaultInjector* GetFaultInjector() {
  return g_fault_injector.load(std::memory_order_acquire);
}

namespace {

struct OpApplier {
  const Database& input;
  const FunctionRegistry* registry;

  Result<Database> operator()(const DereferenceOp& op) const {
    Database db = input;
    TUPELO_ASSIGN_OR_RETURN(const Relation* rel, db.GetRelation(op.rel));
    std::optional<size_t> pointer_idx = rel->AttributeIndex(op.pointer);
    if (!pointer_idx.has_value()) {
      return Status::NotFound("dereference: attribute '" + op.pointer +
                              "' not in " + op.rel);
    }
    if (rel->HasAttribute(op.out)) {
      return Status::AlreadyExists("dereference: attribute '" + op.out +
                                   "' already in " + op.rel);
    }
    std::vector<std::string> attrs = rel->attributes();
    attrs.push_back(op.out);
    TUPELO_ASSIGN_OR_RETURN(Relation out,
                            Relation::Create(op.rel, std::move(attrs)));
    for (const Tuple& t : rel->tuples()) {
      const Value& pointer = t[*pointer_idx];
      Value deref;
      if (!pointer.is_null()) {
        std::optional<size_t> target = rel->AttributeIndex(pointer.atom());
        if (target.has_value()) deref = t[*target];
      }
      std::vector<Value> vs = t.values();
      vs.push_back(std::move(deref));
      TUPELO_RETURN_IF_ERROR(out.AddTuple(Tuple(std::move(vs))));
    }
    db.PutRelation(std::move(out));
    return db;
  }

  Result<Database> operator()(const PromoteOp& op) const {
    Database db = input;
    // Read-only access: the rebuilt relation replaces it via PutRelation,
    // so a copy-on-write clone here would be pure waste.
    TUPELO_ASSIGN_OR_RETURN(const Relation* rel, db.GetRelation(op.rel));
    std::optional<size_t> name_idx = rel->AttributeIndex(op.name_attr);
    if (!name_idx.has_value()) {
      return Status::NotFound("promote: attribute '" + op.name_attr +
                              "' not in " + op.rel);
    }
    std::optional<size_t> value_idx = rel->AttributeIndex(op.value_attr);
    if (!value_idx.has_value()) {
      return Status::NotFound("promote: attribute '" + op.value_attr +
                              "' not in " + op.rel);
    }
    TUPELO_ASSIGN_OR_RETURN(std::vector<std::string> new_columns,
                            rel->DistinctValues(op.name_attr));
    for (const std::string& col : new_columns) {
      if (rel->HasAttribute(col)) {
        return Status::AlreadyExists("promote: column name '" + col +
                                     "' already in " + op.rel);
      }
    }
    // Rebuild the relation with the appended columns.
    std::vector<std::string> attrs = rel->attributes();
    size_t base_arity = attrs.size();
    attrs.insert(attrs.end(), new_columns.begin(), new_columns.end());
    std::map<std::string, size_t> column_pos;
    for (size_t i = 0; i < new_columns.size(); ++i) {
      column_pos[new_columns[i]] = base_arity + i;
    }
    TUPELO_ASSIGN_OR_RETURN(Relation out,
                            Relation::Create(op.rel, std::move(attrs)));
    for (const Tuple& t : rel->tuples()) {
      std::vector<Value> vs = t.values();
      vs.resize(base_arity + new_columns.size());
      const Value& name = t[*name_idx];
      if (!name.is_null()) {
        vs[column_pos.at(name.atom())] = t[*value_idx];
      }
      TUPELO_RETURN_IF_ERROR(out.AddTuple(Tuple(std::move(vs))));
    }
    db.PutRelation(std::move(out));
    return db;
  }

  Result<Database> operator()(const DemoteOp& op) const {
    Database db = input;
    TUPELO_ASSIGN_OR_RETURN(const Relation* rel, db.GetRelation(op.rel));
    if (rel->HasAttribute(kDemoteAttrColumn) ||
        rel->HasAttribute(kDemoteValueColumn)) {
      return Status::AlreadyExists("demote: " + op.rel +
                                   " already has demote columns");
    }
    std::vector<std::string> attrs = rel->attributes();
    std::vector<std::string> out_attrs = attrs;
    out_attrs.push_back(kDemoteAttrColumn);
    out_attrs.push_back(kDemoteValueColumn);
    TUPELO_ASSIGN_OR_RETURN(Relation out,
                            Relation::Create(op.rel, std::move(out_attrs)));
    for (const Tuple& t : rel->tuples()) {
      for (size_t i = 0; i < attrs.size(); ++i) {
        std::vector<Value> vs = t.values();
        vs.emplace_back(attrs[i]);
        vs.push_back(t[i]);
        TUPELO_RETURN_IF_ERROR(out.AddTuple(Tuple(std::move(vs))));
      }
    }
    db.PutRelation(std::move(out));
    return db;
  }

  Result<Database> operator()(const PartitionOp& op) const {
    Database db = input;
    TUPELO_ASSIGN_OR_RETURN(const Relation* rel, db.GetRelation(op.rel));
    std::optional<size_t> idx = rel->AttributeIndex(op.attr);
    if (!idx.has_value()) {
      return Status::NotFound("partition: attribute '" + op.attr +
                              "' not in " + op.rel);
    }
    TUPELO_ASSIGN_OR_RETURN(std::vector<std::string> names,
                            rel->DistinctValues(op.attr));
    for (const std::string& name : names) {
      if (db.HasRelation(name)) {
        return Status::AlreadyExists("partition: relation '" + name +
                                     "' already exists");
      }
    }
    for (const std::string& name : names) {
      TUPELO_ASSIGN_OR_RETURN(Relation part,
                              Relation::Create(name, rel->attributes()));
      for (const Tuple& t : rel->tuples()) {
        if (!t[*idx].is_null() && t[*idx].atom() == name) {
          TUPELO_RETURN_IF_ERROR(part.AddTuple(t));
        }
      }
      TUPELO_RETURN_IF_ERROR(db.AddRelation(std::move(part)));
    }
    return db;
  }

  Result<Database> operator()(const ProductOp& op) const {
    if (op.left == op.right) {
      return Status::InvalidArgument(
          "product: self-product of '" + op.left +
          "' would duplicate attribute names");
    }
    Database db = input;
    TUPELO_ASSIGN_OR_RETURN(const Relation* left, db.GetRelation(op.left));
    TUPELO_ASSIGN_OR_RETURN(const Relation* right, db.GetRelation(op.right));
    std::string result_name = ProductResultName(op);
    if (db.HasRelation(result_name)) {
      return Status::AlreadyExists("product: relation '" + result_name +
                                   "' already exists");
    }
    std::vector<std::string> attrs = left->attributes();
    for (const std::string& a : right->attributes()) {
      if (left->HasAttribute(a)) {
        return Status::InvalidArgument("product: attribute '" + a +
                                       "' appears in both operands");
      }
      attrs.push_back(a);
    }
    TUPELO_ASSIGN_OR_RETURN(Relation out,
                            Relation::Create(result_name, std::move(attrs)));
    for (const Tuple& lt : left->tuples()) {
      for (const Tuple& rt : right->tuples()) {
        std::vector<Value> vs = lt.values();
        vs.insert(vs.end(), rt.values().begin(), rt.values().end());
        TUPELO_RETURN_IF_ERROR(out.AddTuple(Tuple(std::move(vs))));
      }
    }
    TUPELO_RETURN_IF_ERROR(db.AddRelation(std::move(out)));
    return db;
  }

  Result<Database> operator()(const DropOp& op) const {
    Database db = input;
    TUPELO_ASSIGN_OR_RETURN(Relation * rel, db.GetMutableRelation(op.rel));
    if (rel->arity() <= 1) {
      return Status::FailedPrecondition("drop: cannot drop the last column of " +
                                        op.rel);
    }
    TUPELO_RETURN_IF_ERROR(rel->DropAttribute(op.attr));
    return db;
  }

  Result<Database> operator()(const MergeOp& op) const {
    Database db = input;
    // Read-only access: the merged relation replaces it via PutRelation.
    TUPELO_ASSIGN_OR_RETURN(const Relation* rel, db.GetRelation(op.rel));
    std::optional<size_t> idx = rel->AttributeIndex(op.attr);
    if (!idx.has_value()) {
      return Status::NotFound("merge: attribute '" + op.attr + "' not in " +
                              op.rel);
    }
    // Group tuple indices by their (non-null) merge-key atom; null-keyed
    // tuples stay untouched.
    std::vector<Tuple> untouched;
    std::map<std::string, std::vector<Tuple>> groups;
    for (const Tuple& t : rel->tuples()) {
      if (t[*idx].is_null()) {
        untouched.push_back(t);
      } else {
        groups[t[*idx].atom()].push_back(t);
      }
    }
    // Greedy fixpoint within each group: repeatedly merge the first
    // compatible pair. Deterministic given input tuple order.
    std::vector<Tuple> merged_all;
    for (auto& [key, group] : groups) {
      bool changed = true;
      while (changed) {
        changed = false;
        for (size_t i = 0; i < group.size() && !changed; ++i) {
          for (size_t j = i + 1; j < group.size() && !changed; ++j) {
            if (group[i].MergeCompatibleWith(group[j])) {
              group[i] = group[i].MergedWith(group[j]);
              group.erase(group.begin() + static_cast<ptrdiff_t>(j));
              changed = true;
            }
          }
        }
      }
      merged_all.insert(merged_all.end(), group.begin(), group.end());
    }
    TUPELO_ASSIGN_OR_RETURN(Relation out,
                            Relation::Create(op.rel, rel->attributes()));
    for (Tuple& t : merged_all) TUPELO_RETURN_IF_ERROR(out.AddTuple(std::move(t)));
    for (Tuple& t : untouched) TUPELO_RETURN_IF_ERROR(out.AddTuple(std::move(t)));
    db.PutRelation(std::move(out));
    return db;
  }

  Result<Database> operator()(const RenameAttrOp& op) const {
    Database db = input;
    TUPELO_ASSIGN_OR_RETURN(Relation * rel, db.GetMutableRelation(op.rel));
    TUPELO_RETURN_IF_ERROR(rel->RenameAttribute(op.from, op.to));
    return db;
  }

  Result<Database> operator()(const RenameRelOp& op) const {
    Database db = input;
    TUPELO_RETURN_IF_ERROR(db.RenameRelation(op.from, op.to));
    return db;
  }

  Result<Database> operator()(const ApplyFunctionOp& op) const {
    if (registry == nullptr) {
      return Status::FailedPrecondition(
          "apply: no function registry supplied for λ operator");
    }
    TUPELO_ASSIGN_OR_RETURN(const ComplexFunction* fn,
                            registry->Lookup(op.function));
    if (fn->arity != op.inputs.size()) {
      return Status::InvalidArgument(
          "apply: function '" + op.function + "' expects " +
          std::to_string(fn->arity) + " inputs, got " +
          std::to_string(op.inputs.size()));
    }
    Database db = input;
    TUPELO_ASSIGN_OR_RETURN(const Relation* rel, db.GetRelation(op.rel));
    std::vector<size_t> input_idx;
    input_idx.reserve(op.inputs.size());
    for (const std::string& a : op.inputs) {
      std::optional<size_t> idx = rel->AttributeIndex(a);
      if (!idx.has_value()) {
        return Status::NotFound("apply: attribute '" + a + "' not in " +
                                op.rel);
      }
      input_idx.push_back(*idx);
    }
    if (rel->HasAttribute(op.out)) {
      return Status::AlreadyExists("apply: attribute '" + op.out +
                                   "' already in " + op.rel);
    }
    std::vector<std::string> attrs = rel->attributes();
    attrs.push_back(op.out);
    TUPELO_ASSIGN_OR_RETURN(Relation out,
                            Relation::Create(op.rel, std::move(attrs)));
    for (const Tuple& t : rel->tuples()) {
      std::vector<std::string> args;
      args.reserve(input_idx.size());
      bool applicable = true;
      for (size_t idx : input_idx) {
        if (t[idx].is_null()) {
          applicable = false;
          break;
        }
        args.push_back(t[idx].atom());
      }
      Value result;
      if (applicable) {
        Result<std::string> r = fn->impl(args);
        if (r.ok()) result = Value(std::move(r).value());
        // Per-tuple failure -> null (λ is the identity on tuples of
        // inappropriate schema).
      }
      std::vector<Value> vs = t.values();
      vs.push_back(std::move(result));
      TUPELO_RETURN_IF_ERROR(out.AddTuple(Tuple(std::move(vs))));
    }
    db.PutRelation(std::move(out));
    return db;
  }
};

// Trace-event names must be stable pointers (the session records the
// pointer, not a copy), so per-operator span names come from this literal
// table rather than OpName's std::string.
const char* OpTraceName(const Op& op) {
  struct Namer {
    const char* operator()(const DereferenceOp&) const {
      return "op.dereference";
    }
    const char* operator()(const PromoteOp&) const { return "op.promote"; }
    const char* operator()(const DemoteOp&) const { return "op.demote"; }
    const char* operator()(const PartitionOp&) const { return "op.partition"; }
    const char* operator()(const ProductOp&) const { return "op.product"; }
    const char* operator()(const DropOp&) const { return "op.drop"; }
    const char* operator()(const MergeOp&) const { return "op.merge"; }
    const char* operator()(const RenameAttrOp&) const {
      return "op.rename_att";
    }
    const char* operator()(const RenameRelOp&) const { return "op.rename_rel"; }
    const char* operator()(const ApplyFunctionOp&) const { return "op.apply"; }
  };
  return std::visit(Namer{}, op);
}

}  // namespace

Result<Database> ApplyOp(const Op& op, const Database& input,
                         const FunctionRegistry* registry,
                         obs::MetricRegistry* metrics,
                         obs::TraceSession* trace) {
  if (FaultInjector* injector = GetFaultInjector(); injector != nullptr) {
    FaultInjector::Fault fault;
    if (injector->ShouldFail(OpName(op), &fault)) {
      if (metrics != nullptr) {
        const std::string name = OpName(op);
        metrics->GetCounter("executor." + name + ".count").Increment();
        if (fault.kind != FaultInjector::Kind::kDelay) {
          metrics->GetCounter("executor." + name + ".failures").Increment();
        }
      }
      if (trace != nullptr) {
        // kFault instants bump the session's fault counter, which is one
        // of the flight-recorder dump triggers.
        trace->EmitInstant(obs::TraceCategory::kFault, "fault.injected",
                           "kind", static_cast<int64_t>(fault.kind));
      }
      switch (fault.kind) {
        case FaultInjector::Kind::kStatus:
          return fault.status;
        case FaultInjector::Kind::kThrow:
          // A poison state: the exception escapes ApplyOp and Expand.
          // GuardedExpand (search/search_types.h) quarantines the state;
          // without a quarantine it unwinds to the caller.
          throw std::runtime_error(fault.status.message());
        case FaultInjector::Kind::kBadAlloc:
          // Simulated allocation failure inside Expand.
          throw std::bad_alloc();
        case FaultInjector::Kind::kDelay:
          // A hung/slow application: stall the applying thread, then
          // execute normally. The watchdog's stall detector sees the
          // silent heartbeat and preempts the rung.
          std::this_thread::sleep_for(
              std::chrono::milliseconds(fault.delay_millis));
          break;
      }
    }
  }
  if (metrics == nullptr && trace == nullptr) {
    return std::visit(OpApplier{input, registry}, op);
  }
  std::string name;
  if (metrics != nullptr) {
    name = OpName(op);
    metrics->GetCounter("executor." + name + ".count").Increment();
  }
  Result<Database> result = [&] {
    obs::ScopedTimer timer(metrics != nullptr
                               ? &metrics->GetCounter("executor." + name +
                                                      ".nanos")
                               : nullptr);
    obs::TraceSpan span(trace, obs::TraceCategory::kExecutor,
                        OpTraceName(op));
    return std::visit(OpApplier{input, registry}, op);
  }();
  if (!result.ok() && metrics != nullptr) {
    metrics->GetCounter("executor." + name + ".failures").Increment();
  }
  return result;
}

}  // namespace tupelo
