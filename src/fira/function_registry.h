#ifndef TUPELO_FIRA_FUNCTION_REGISTRY_H_
#define TUPELO_FIRA_FUNCTION_REGISTRY_H_

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace tupelo {

// A complex semantic function f ∈ F (§4): a named black box from a fixed
// number of string arguments to a string. Search treats these opaquely —
// only the name, arity and the values they produce on the critical
// instances matter; the "meaning" is retrieved at execution time.
struct ComplexFunction {
  std::string name;
  size_t arity = 0;
  // Never invoked with the wrong argument count. May fail on individual
  // inputs (e.g. a numeric function on non-numeric text); the λ operator
  // turns per-tuple failures into nulls. Implementations must be pure and
  // deterministic: the search re-executes them freely, discovery results
  // are re-verified by replay, and the optimizer (fira/optimizer.h) may
  // elide applications whose output column is immediately dropped.
  std::function<Result<std::string>(const std::vector<std::string>&)> impl;
  std::string description;
};

// Holds the complex semantic functions available to λ operators. Mappings
// discovered against one registry can be executed against any registry
// providing the same names (e.g. stored procedures in a real deployment).
class FunctionRegistry {
 public:
  FunctionRegistry() = default;

  // Fails with AlreadyExists on duplicate names, InvalidArgument on an
  // empty name or missing implementation.
  Status Register(ComplexFunction fn);

  bool Has(std::string_view name) const;
  Result<const ComplexFunction*> Lookup(std::string_view name) const;

  // Registered names in sorted order.
  std::vector<std::string> Names() const;
  size_t size() const { return functions_.size(); }

  // Invokes `name` on `args`, checking existence and arity.
  Result<std::string> Call(std::string_view name,
                           const std::vector<std::string>& args) const;

 private:
  std::map<std::string, ComplexFunction, std::less<>> functions_;
};

}  // namespace tupelo

#endif  // TUPELO_FIRA_FUNCTION_REGISTRY_H_
