#ifndef TUPELO_FIRA_COMPILE_H_
#define TUPELO_FIRA_COMPILE_H_

#include <cstddef>

#include "common/result.h"
#include "fira/expression.h"
#include "fira/function_registry.h"
#include "fira/ir.h"
#include "fira/operators.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/database.h"

namespace tupelo {

// Partitions an expression into fused / interpreted segments (fira/ir.h).
// Lowering is total: every expression compiles, unfusable operators just
// land in single-op interpreter segments.
CompiledPlan CompileExpression(const MappingExpression& expression);

// Executes discovered mappings through the loop IR instead of the
// operator-at-a-time interpreter. Drop-in for MappingExpression::Apply:
// for every input instance the Result<Database> is identical — the same
// database (values, attribute order, tuple order) on success and the
// same Status (code and message, including the interpreter's
// "step N (script): ..." wrapping) on failure. The differential harness
// (tests/executor_equivalence_test.cc, tools/equivalence_fuzz) enforces
// this exactly.
//
// How equivalence is kept cheap: every fusable operator fails only on
// schema-level conditions (missing/colliding attributes or relation
// names), never on tuple data. So each fused segment first replays its
// ops through the real interpreter over a schema-only shadow database
// (zero tuples — validation and schema evolution at full fidelity for
// the cost of the schema), and only then runs the fused loop, which by
// then cannot fail. The shadow replay is also what keeps the
// FaultInjector contract: the injector is consulted exactly once per
// logical operator, in pipeline order, with the same fault.injected
// trace instants and executor.<op>.* metric increments as the
// interpreter — so chaos-campaign crash-equivalence holds for both
// executors.
class CompiledExecutor {
 public:
  explicit CompiledExecutor(const MappingExpression& expression)
      : plan_(CompileExpression(expression)) {}

  const CompiledPlan& plan() const { return plan_; }

  // Applies the compiled expression. `registry` may be null if no step is
  // a λ. `metrics`/`trace` are optional, with the interpreter's
  // conventions (per-operator instruments and spans, plus one
  // "op.fused_loop" span per executed fused loop).
  Result<Database> Apply(const Database& input,
                         const FunctionRegistry* registry = nullptr,
                         obs::MetricRegistry* metrics = nullptr,
                         obs::TraceSession* trace = nullptr) const;

 private:
  CompiledPlan plan_;
};

// Single-operator compiled apply: the Expand-path entry point
// (SuccessorConfig::compiled_expand). Exactly equivalent to
// ApplyOp(op, input, ...) — same Result, same injector/metrics/trace
// activity — but routed through the loop IR for fusable operators.
Result<Database> ApplyOpCompiled(const Op& op, const Database& input,
                                 const FunctionRegistry* registry = nullptr,
                                 obs::MetricRegistry* metrics = nullptr,
                                 obs::TraceSession* trace = nullptr);

// Default for SuccessorConfig::compiled_expand: true when the
// TUPELO_COMPILED_EXPAND environment variable is set to anything but ""
// or "0" (resolved once per process). Lets CI run whole suites over the
// compiled Expand path without touching call sites.
bool DefaultCompiledExpand();

}  // namespace tupelo

#endif  // TUPELO_FIRA_COMPILE_H_
