#ifndef TUPELO_FIRA_OPTIMIZER_H_
#define TUPELO_FIRA_OPTIMIZER_H_

#include "fira/expression.h"

namespace tupelo {

// Peephole simplification of mapping expressions. Discovered expressions
// often carry detours (rename chains, columns created and immediately
// dropped); executing them verbatim wastes work on every future instance
// of the source schema (cf. Carreira & Galhardas, "Execution of Data
// Mappers"). Simplify applies semantics-preserving adjacent-pair rewrites
// to a fixpoint:
//
//   rename_att(R, A, B); rename_att(R, B, C)   =>  rename_att(R, A, C)
//   rename_att(R, A, B); rename_att(R, B, A)   =>  (both removed)
//   rename_rel(A, B);    rename_rel(B, C)      =>  rename_rel(A, C)
//   rename_att(R, A, B); drop(R, B)            =>  drop(R, A)
//   apply/dereference creating X; drop(R, X)   =>  (both removed)
//   consecutive drops on one relation          =>  sorted (canonical order)
//
// Only adjacent steps are rewritten, so every rule is locally checkable.
// Equivalence guarantee: on any instance where the original expression
// executes successfully, the simplified expression executes successfully
// and produces the identical database. (On instances where the original
// would *fail*, a fused rename may succeed — fusion drops the intermediate
// name's freshness requirement.)
MappingExpression Simplify(const MappingExpression& expression);

}  // namespace tupelo

#endif  // TUPELO_FIRA_OPTIMIZER_H_
