#ifndef TUPELO_FIRA_OPTIMIZER_H_
#define TUPELO_FIRA_OPTIMIZER_H_

#include "common/result.h"
#include "fira/expression.h"

namespace tupelo {

// Peephole simplification of mapping expressions. Discovered expressions
// often carry detours (rename chains, columns created and immediately
// dropped); executing them verbatim wastes work on every future instance
// of the source schema (cf. Carreira & Galhardas, "Execution of Data
// Mappers"). Simplify applies semantics-preserving adjacent-pair rewrites
// to a fixpoint:
//
//   rename_att(R, A, B); rename_att(R, B, C)   =>  rename_att(R, A, C)
//   rename_att(R, A, B); rename_att(R, B, A)   =>  (both removed)
//   rename_rel(A, B);    rename_rel(B, C)      =>  rename_rel(A, C)
//   rename_att(R, A, B); drop(R, B)            =>  drop(R, A)
//   apply/dereference creating X; drop(R, X)   =>  (both removed)
//   consecutive drops on one relation          =>  sorted (canonical order)
//
// Only adjacent steps are rewritten, so every rule is locally checkable.
// Equivalence guarantee — ONE-SIDED: on any instance where the original
// expression executes successfully, the simplified expression executes
// successfully and produces the identical database. On instances where
// the original would *fail*, the simplified form may succeed or fail
// differently — e.g. a fused rename drops the intermediate name's
// freshness requirement, and even reordering two drops can turn a
// NotFound into a last-column FailedPrecondition. Callers that need the
// original's failure behavior must keep the original expression (search
// does: SafeReplay verifies candidates before Simplify touches them) or
// go through Optimize below.
MappingExpression Simplify(const MappingExpression& expression);

// Failure-exact optimization. Unlike Simplify, the contract here is full
// outcome equivalence: for every instance, the returned expression yields
// the identical Result<Database> — same database on success, same typed
// error on failure. No rule in the current adjacent-pair catalogue meets
// that bar (each one weakens or reorders a validation the interpreter
// performs), so Optimize performs no rewrites: it either certifies that
// the expression is already at the simplification fixpoint (returned
// unchanged, trivially equivalent) or refuses with a typed
// FailedPrecondition whose message starts with
// "optimize: not equivalence-preserving" and names the rule that would
// have fired. The differential harness locks this in: on instances where
// Simplify's output diverges from the original, Optimize refuses.
Result<MappingExpression> Optimize(const MappingExpression& expression);

}  // namespace tupelo

#endif  // TUPELO_FIRA_OPTIMIZER_H_
