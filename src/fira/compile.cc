#include "fira/compile.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "fira/executor.h"

namespace tupelo {
namespace {

bool IsFusable(const Op& op) {
  return std::holds_alternative<RenameAttrOp>(op) ||
         std::holds_alternative<DropOp>(op) ||
         std::holds_alternative<DereferenceOp>(op) ||
         std::holds_alternative<ApplyFunctionOp>(op) ||
         std::holds_alternative<RenameRelOp>(op) ||
         std::holds_alternative<ProductOp>(op);
}

// The relation name the op reads when it opens a segment.
const std::string& SourceRelation(const Op& op) {
  if (const auto* rr = std::get_if<RenameRelOp>(&op)) return rr->from;
  if (const auto* r = std::get_if<RenameAttrOp>(&op)) return r->rel;
  if (const auto* d = std::get_if<DropOp>(&op)) return d->rel;
  if (const auto* de = std::get_if<DereferenceOp>(&op)) return de->rel;
  const auto* ap = std::get_if<ApplyFunctionOp>(&op);
  return ap->rel;
}

// Mirrors MappingExpression::Apply's error wrapping exactly: the compiled
// executor must surface the same typed error text for the same failing
// step.
Status WrapStep(size_t step_index, const Op& op, const Status& status) {
  return Status(status.code(), "step " + std::to_string(step_index + 1) +
                                   " (" + OpToScript(op) +
                                   "): " + status.message());
}

// Schema-only copy of `db`: same relation names and attribute lists, zero
// tuples. The bind stage replays a fused segment's ops over this shadow
// through the real interpreter, which reproduces validation, error
// messages, fault-injector consults, and metric/trace activity exactly —
// fused operators can only fail on schema-level conditions, so a clean
// shadow replay proves the fused loop cannot fail.
Result<Database> MakeShadow(const Database& db) {
  Database shadow;
  for (const std::string& name : db.RelationNames()) {
    TUPELO_ASSIGN_OR_RETURN(const Relation* rel, db.GetRelation(name));
    TUPELO_ASSIGN_OR_RETURN(Relation empty,
                            Relation::Create(name, rel->attributes()));
    shadow.PutRelation(std::move(empty));
  }
  return shadow;
}

size_t FindName(const std::vector<std::string>& names,
                const std::string& name) {
  return static_cast<size_t>(
      std::find(names.begin(), names.end(), name) - names.begin());
}

// Interpret the segment op-by-op on the real database — the scalar
// fallback, exact by definition. On failure `*failed_op` is the index of
// the failing op within the segment and the raw (unwrapped) status is
// returned.
Result<Database> InterpretSegment(const PlanSegment& seg,
                                  const Database& input,
                                  const FunctionRegistry* registry,
                                  obs::MetricRegistry* metrics,
                                  obs::TraceSession* trace,
                                  size_t* failed_op) {
  Database state = input;
  for (size_t k = 0; k < seg.ops.size(); ++k) {
    Result<Database> next = ApplyOp(seg.ops[k], state, registry, metrics,
                                    trace);
    if (!next.ok()) {
      *failed_op = k;
      return next.status();
    }
    state = std::move(next).value();
  }
  return state;
}

// Binds a fused segment against `input` and runs it as one loop. On
// failure `*failed_op` is the index of the failing op within the segment
// and the raw status is returned (callers wrap with the step prefix).
Result<Database> ExecuteFused(const PlanSegment& seg, const Database& input,
                              const FunctionRegistry* registry,
                              obs::MetricRegistry* metrics,
                              obs::TraceSession* trace, size_t* failed_op) {
  *failed_op = 0;

  Result<Database> shadow_r = MakeShadow(input);
  if (!shadow_r.ok()) {
    // An input that cannot even be schema-copied (not producible through
    // the public Database API): fall back to exact interpretation.
    return InterpretSegment(seg, input, registry, metrics, trace, failed_op);
  }
  Database shadow = std::move(shadow_r).value();

  // ---- Bind: shadow replay + slot-layout tracking ----
  BoundLoop loop;
  std::vector<std::string> names;   // visible column names, in order
  std::vector<uint32_t> layout;     // their slots
  std::string cur_name;             // relation name as rename_rel runs
  uint32_t next_slot = 0;

  for (size_t k = 0; k < seg.ops.size(); ++k) {
    const Op& op = seg.ops[k];
    // The replay consults the fault injector and touches metrics/trace
    // exactly once per logical operator, in pipeline order — identical
    // accounting to the interpreter.
    Result<Database> next = ApplyOp(op, shadow, registry, metrics, trace);
    if (!next.ok()) {
      *failed_op = k;
      return next.status();
    }

    if (k == 0) {
      if (const auto* p = std::get_if<ProductOp>(&op)) {
        TUPELO_ASSIGN_OR_RETURN(loop.left, input.GetRelation(p->left));
        TUPELO_ASSIGN_OR_RETURN(loop.right, input.GetRelation(p->right));
        names = loop.left->attributes();
        const std::vector<std::string>& rattrs = loop.right->attributes();
        names.insert(names.end(), rattrs.begin(), rattrs.end());
        cur_name = ProductResultName(*p);
      } else {
        const std::string& src = SourceRelation(op);
        TUPELO_ASSIGN_OR_RETURN(loop.left, input.GetRelation(src));
        loop.source_name = src;
        names = loop.left->attributes();
        cur_name = src;
      }
      loop.base_width = static_cast<uint32_t>(names.size());
      layout.resize(names.size());
      std::iota(layout.begin(), layout.end(), 0u);
      next_slot = loop.base_width;
    }

    // Layout effect (the product source was consumed by the init above).
    if (const auto* r = std::get_if<RenameAttrOp>(&op)) {
      names[FindName(names, r->from)] = r->to;
    } else if (const auto* d = std::get_if<DropOp>(&op)) {
      size_t idx = FindName(names, d->attr);
      names.erase(names.begin() + static_cast<ptrdiff_t>(idx));
      layout.erase(layout.begin() + static_cast<ptrdiff_t>(idx));
    } else if (const auto* de = std::get_if<DereferenceOp>(&op)) {
      RowInstr ri;
      ri.kind = RowInstr::Kind::kDereference;
      ri.pointer = layout[FindName(names, de->pointer)];
      ri.scope.reserve(names.size());
      for (size_t i = 0; i < names.size(); ++i) {
        ri.scope.emplace_back(names[i], layout[i]);
      }
      std::sort(ri.scope.begin(), ri.scope.end());
      loop.instrs.push_back(std::move(ri));
      names.push_back(de->out);
      layout.push_back(next_slot++);
    } else if (const auto* ap = std::get_if<ApplyFunctionOp>(&op)) {
      RowInstr ri;
      ri.kind = RowInstr::Kind::kApply;
      TUPELO_ASSIGN_OR_RETURN(ri.fn, registry->Lookup(ap->function));
      ri.inputs.reserve(ap->inputs.size());
      for (const std::string& a : ap->inputs) {
        ri.inputs.push_back(layout[FindName(names, a)]);
      }
      loop.instrs.push_back(std::move(ri));
      names.push_back(ap->out);
      layout.push_back(next_slot++);
    } else if (const auto* rr = std::get_if<RenameRelOp>(&op)) {
      cur_name = rr->to;
    }

    shadow = std::move(next).value();
  }

  loop.projection = std::move(layout);
  loop.out_name = std::move(cur_name);
  loop.out_attrs = std::move(names);

  // ---- Execute ----
  // Pure-rename fast path: no row work, no column changes — the tuple
  // data is untouched, so the relation moves under its new key with
  // copy-on-write sharing (mirrors the interpreter's rename_rel cost).
  bool identity = loop.instrs.empty() &&
                  loop.projection.size() == loop.base_width;
  for (uint32_t i = 0; identity && i < loop.base_width; ++i) {
    identity = loop.projection[i] == i;
  }
  if (identity && loop.right == nullptr &&
      loop.out_attrs == loop.left->attributes()) {
    Database out = input;
    if (loop.out_name != loop.source_name) {
      // Cannot fail: the shadow replay proved the target name free.
      TUPELO_RETURN_IF_ERROR(
          out.RenameRelation(loop.source_name, loop.out_name));
    }
    return out;
  }

  obs::ScopedTimer loop_timer(
      metrics != nullptr ? &metrics->GetCounter("executor.fused.nanos")
                         : nullptr);
  obs::TraceSpan span(trace, obs::TraceCategory::kExecutor, "op.fused_loop");

  TUPELO_ASSIGN_OR_RETURN(
      Relation out_rel, Relation::Create(loop.out_name, loop.out_attrs));

  const uint32_t lw = static_cast<uint32_t>(loop.left->arity());
  const uint32_t base = loop.base_width;
  std::vector<Value> appended(loop.instrs.size());
  std::vector<std::string> args;  // λ scratch, reused across tuples

  auto run_row = [&](const Tuple& lt, const Tuple* rt) -> Status {
    auto value_at = [&](uint32_t slot) -> const Value& {
      if (slot < lw) return lt[slot];
      if (slot < base) return (*rt)[slot - lw];
      return appended[slot - base];
    };
    for (size_t j = 0; j < loop.instrs.size(); ++j) {
      const RowInstr& ri = loop.instrs[j];
      Value v;
      if (ri.kind == RowInstr::Kind::kDereference) {
        const Value& pointer = value_at(ri.pointer);
        if (!pointer.is_null()) {
          auto it = std::lower_bound(
              ri.scope.begin(), ri.scope.end(), pointer.atom(),
              [](const std::pair<std::string, uint32_t>& entry,
                 const std::string& atom) { return entry.first < atom; });
          if (it != ri.scope.end() && it->first == pointer.atom()) {
            v = value_at(it->second);
          }
        }
      } else {
        args.clear();
        bool applicable = true;
        for (uint32_t s : ri.inputs) {
          const Value& in = value_at(s);
          if (in.is_null()) {
            applicable = false;
            break;
          }
          args.push_back(in.atom());
        }
        if (applicable) {
          Result<std::string> r = ri.fn->impl(args);
          if (r.ok()) v = Value(std::move(r).value());
          // Per-tuple failure -> null, as in the interpreter.
        }
      }
      appended[j] = std::move(v);
    }
    std::vector<Value> vs;
    vs.reserve(loop.projection.size());
    for (uint32_t s : loop.projection) vs.push_back(value_at(s));
    return out_rel.AddTuple(Tuple(std::move(vs)));
  };

  if (loop.right == nullptr) {
    out_rel.ReserveTuples(loop.left->size());
    for (const Tuple& lt : loop.left->tuples()) {
      TUPELO_RETURN_IF_ERROR(run_row(lt, nullptr));
    }
  } else {
    out_rel.ReserveTuples(loop.left->size() * loop.right->size());
    for (const Tuple& lt : loop.left->tuples()) {
      for (const Tuple& rt : loop.right->tuples()) {
        TUPELO_RETURN_IF_ERROR(run_row(lt, &rt));
      }
    }
  }
  span.SetEndArg("tuples", static_cast<int64_t>(out_rel.size()));

  Database out = input;
  if (!loop.source_name.empty() && loop.out_name != loop.source_name) {
    // Net effect of the segment's rename_rel steps: the source key is
    // displaced by the output key (freshness proved by the shadow).
    TUPELO_RETURN_IF_ERROR(out.RemoveRelation(loop.source_name));
  }
  out.PutRelation(std::move(out_rel));
  return out;
}

}  // namespace

CompiledPlan CompileExpression(const MappingExpression& expression) {
  CompiledPlan plan;
  PlanSegment* cur = nullptr;  // open fused segment, if any
  std::string cur_rel;         // the relation it is threading

  const std::vector<Op>& steps = expression.steps();
  for (size_t i = 0; i < steps.size(); ++i) {
    const Op& op = steps[i];

    if (cur != nullptr) {
      bool extended = false;
      if (const auto* r = std::get_if<RenameAttrOp>(&op)) {
        extended = r->rel == cur_rel;
      } else if (const auto* d = std::get_if<DropOp>(&op)) {
        extended = d->rel == cur_rel;
      } else if (const auto* de = std::get_if<DereferenceOp>(&op)) {
        extended = de->rel == cur_rel;
      } else if (const auto* ap = std::get_if<ApplyFunctionOp>(&op)) {
        extended = ap->rel == cur_rel;
      } else if (const auto* rr = std::get_if<RenameRelOp>(&op)) {
        if (rr->from == cur_rel) {
          extended = true;
          cur_rel = rr->to;
        }
      }
      if (extended) {
        cur->ops.push_back(op);
        ++plan.fused_ops;
        continue;
      }
      cur = nullptr;
    }

    if (IsFusable(op)) {
      plan.segments.push_back(
          PlanSegment{PlanSegment::Kind::kFused, i, {op}});
      cur = &plan.segments.back();
      if (const auto* p = std::get_if<ProductOp>(&op)) {
        cur_rel = ProductResultName(*p);
      } else if (const auto* rr = std::get_if<RenameRelOp>(&op)) {
        cur_rel = rr->to;
      } else {
        cur_rel = SourceRelation(op);
      }
      ++plan.fused_ops;
    } else {
      plan.segments.push_back(
          PlanSegment{PlanSegment::Kind::kInterpret, i, {op}});
      ++plan.interpreted_ops;
    }
  }
  return plan;
}

Result<Database> CompiledExecutor::Apply(const Database& input,
                                         const FunctionRegistry* registry,
                                         obs::MetricRegistry* metrics,
                                         obs::TraceSession* trace) const {
  Database state = input;
  for (const PlanSegment& seg : plan_.segments) {
    size_t failed = 0;
    Result<Database> next =
        seg.kind == PlanSegment::Kind::kFused
            ? ExecuteFused(seg, state, registry, metrics, trace, &failed)
            : InterpretSegment(seg, state, registry, metrics, trace,
                               &failed);
    if (!next.ok()) {
      return WrapStep(seg.first_step + failed, seg.ops[failed],
                      next.status());
    }
    state = std::move(next).value();
  }
  return state;
}

Result<Database> ApplyOpCompiled(const Op& op, const Database& input,
                                 const FunctionRegistry* registry,
                                 obs::MetricRegistry* metrics,
                                 obs::TraceSession* trace) {
  if (!IsFusable(op)) {
    return ApplyOp(op, input, registry, metrics, trace);
  }
  PlanSegment seg;
  seg.kind = PlanSegment::Kind::kFused;
  seg.first_step = 0;
  seg.ops = {op};
  size_t failed = 0;
  return ExecuteFused(seg, input, registry, metrics, trace, &failed);
}

bool DefaultCompiledExpand() {
  static const bool enabled = [] {
    const char* env = std::getenv("TUPELO_COMPILED_EXPAND");
    return env != nullptr && env[0] != '\0' &&
           std::string_view(env) != "0";
  }();
  return enabled;
}

}  // namespace tupelo
