#include "fira/parser.h"

#include <cctype>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace tupelo {
namespace {

// One argument of an op: either a single name or a bracketed name list.
struct Arg {
  bool is_list = false;
  std::string name;                // when !is_list
  std::vector<std::string> names;  // when is_list
};

class ExprParser {
 public:
  explicit ExprParser(std::string_view text) : text_(text) {}

  Result<MappingExpression> ParseScript() {
    MappingExpression expr;
    SkipSpace();
    while (pos_ < text_.size()) {
      TUPELO_ASSIGN_OR_RETURN(Op op, ParseOneOp());
      expr.Append(std::move(op));
      SkipSpace();
    }
    return expr;
  }

  Result<Op> ParseSingle() {
    SkipSpace();
    TUPELO_ASSIGN_OR_RETURN(Op op, ParseOneOp());
    SkipSpace();
    if (pos_ < text_.size()) {
      return Status::ParseError("trailing input after operator at line " +
                                std::to_string(line_));
    }
    return op;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Status ExpectChar(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Status::ParseError("expected '" + std::string(1, c) +
                                "' at line " + std::to_string(line_));
    }
    ++pos_;
    return Status::OK();
  }

  bool PeekChar(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  static bool IsNameChar(char c) {
    return !std::isspace(static_cast<unsigned char>(c)) && c != '(' &&
           c != ')' && c != '[' && c != ']' && c != ',' && c != '"' &&
           c != '#';
  }

  Result<std::string> ParseName() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::ParseError("expected name at line " +
                                std::to_string(line_) +
                                ", got end of input");
    }
    if (text_[pos_] == '"') return ParseQuoted();
    size_t start = pos_;
    while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
    if (pos_ == start) {
      return Status::ParseError("expected name at line " +
                                std::to_string(line_));
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<std::string> ParseQuoted() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\n') ++line_;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '\\':
            out += '\\';
            break;
          case '"':
            out += '"';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          default:
            return Status::ParseError("bad escape '\\" + std::string(1, e) +
                                      "' at line " + std::to_string(line_));
        }
      } else {
        out += c;
      }
    }
    return Status::ParseError("unterminated string at line " +
                              std::to_string(line_));
  }

  Result<Arg> ParseArg() {
    SkipSpace();
    Arg arg;
    if (PeekChar('[')) {
      ++pos_;
      arg.is_list = true;
      if (!PeekChar(']')) {
        while (true) {
          TUPELO_ASSIGN_OR_RETURN(std::string name, ParseName());
          arg.names.push_back(std::move(name));
          if (PeekChar(',')) {
            ++pos_;
            continue;
          }
          break;
        }
      }
      TUPELO_RETURN_IF_ERROR(ExpectChar(']'));
      return arg;
    }
    TUPELO_ASSIGN_OR_RETURN(arg.name, ParseName());
    return arg;
  }

  Result<Op> ParseOneOp() {
    TUPELO_ASSIGN_OR_RETURN(std::string opname, ParseName());
    TUPELO_RETURN_IF_ERROR(ExpectChar('('));
    std::vector<Arg> args;
    if (!PeekChar(')')) {
      while (true) {
        TUPELO_ASSIGN_OR_RETURN(Arg arg, ParseArg());
        args.push_back(std::move(arg));
        if (PeekChar(',')) {
          ++pos_;
          continue;
        }
        break;
      }
    }
    TUPELO_RETURN_IF_ERROR(ExpectChar(')'));
    return BuildOp(opname, args);
  }

  static Result<Op> BuildOp(const std::string& opname,
                            const std::vector<Arg>& args) {
    auto want_names = [&](size_t n) -> Status {
      if (args.size() != n) {
        return Status::ParseError(opname + " expects " + std::to_string(n) +
                                  " arguments, got " +
                                  std::to_string(args.size()));
      }
      for (const Arg& a : args) {
        if (a.is_list) {
          return Status::ParseError(opname +
                                    " does not take a list argument");
        }
      }
      return Status::OK();
    };

    if (opname == "dereference") {
      TUPELO_RETURN_IF_ERROR(want_names(3));
      return Op(DereferenceOp{args[0].name, args[1].name, args[2].name});
    }
    if (opname == "promote") {
      TUPELO_RETURN_IF_ERROR(want_names(3));
      return Op(PromoteOp{args[0].name, args[1].name, args[2].name});
    }
    if (opname == "demote") {
      TUPELO_RETURN_IF_ERROR(want_names(1));
      return Op(DemoteOp{args[0].name});
    }
    if (opname == "partition") {
      TUPELO_RETURN_IF_ERROR(want_names(2));
      return Op(PartitionOp{args[0].name, args[1].name});
    }
    if (opname == "product") {
      TUPELO_RETURN_IF_ERROR(want_names(2));
      return Op(ProductOp{args[0].name, args[1].name});
    }
    if (opname == "drop") {
      TUPELO_RETURN_IF_ERROR(want_names(2));
      return Op(DropOp{args[0].name, args[1].name});
    }
    if (opname == "merge") {
      TUPELO_RETURN_IF_ERROR(want_names(2));
      return Op(MergeOp{args[0].name, args[1].name});
    }
    if (opname == "rename_att") {
      TUPELO_RETURN_IF_ERROR(want_names(3));
      return Op(RenameAttrOp{args[0].name, args[1].name, args[2].name});
    }
    if (opname == "rename_rel") {
      TUPELO_RETURN_IF_ERROR(want_names(2));
      return Op(RenameRelOp{args[0].name, args[1].name});
    }
    if (opname == "apply") {
      if (args.size() != 4 || args[0].is_list || args[1].is_list ||
          !args[2].is_list || args[3].is_list) {
        return Status::ParseError(
            "apply expects (R, function, [inputs...], out)");
      }
      return Op(ApplyFunctionOp{args[0].name, args[1].name, args[2].names,
                                args[3].name});
    }
    return Status::ParseError("unknown operator '" + opname + "'");
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t line_ = 1;
};

}  // namespace

Result<MappingExpression> ParseExpression(std::string_view script) {
  return ExprParser(script).ParseScript();
}

Result<Op> ParseOp(std::string_view text) {
  return ExprParser(text).ParseSingle();
}

}  // namespace tupelo
