#ifndef TUPELO_FIRA_EXPRESSION_H_
#define TUPELO_FIRA_EXPRESSION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "fira/executor.h"
#include "fira/function_registry.h"
#include "fira/operators.h"
#include "relational/database.h"

namespace tupelo {

// An executable data-mapping expression: a pipeline of L operators applied
// left to right to a source database instance. This is TUPELO's output
// artifact — it can be pretty-printed, serialized to a re-parseable script
// (fira/parser.h), and executed against any instance of the source schema.
class MappingExpression {
 public:
  MappingExpression() = default;
  explicit MappingExpression(std::vector<Op> steps)
      : steps_(std::move(steps)) {}

  const std::vector<Op>& steps() const { return steps_; }
  size_t size() const { return steps_.size(); }
  bool empty() const { return steps_.empty(); }

  void Append(Op op) { steps_.push_back(std::move(op)); }

  // Applies all steps in order. `registry` may be null if no step is a λ.
  Result<Database> Apply(const Database& input,
                         const FunctionRegistry* registry = nullptr) const;

  // Script form, one operator per line; round-trips via ParseExpression.
  std::string ToScript() const;

  // Paper-style nested form: `ρrel_Prices→Flights(µ_Carrier(...(DB)))`.
  std::string ToPretty() const;

  friend bool operator==(const MappingExpression&,
                         const MappingExpression&) = default;

 private:
  std::vector<Op> steps_;
};

}  // namespace tupelo

#endif  // TUPELO_FIRA_EXPRESSION_H_
