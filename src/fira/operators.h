#ifndef TUPELO_FIRA_OPERATORS_H_
#define TUPELO_FIRA_OPERATORS_H_

#include <string>
#include <variant>
#include <vector>

namespace tupelo {

// The transformation language L (Table 1 of the paper), a fragment of the
// Federated Interoperable Relational Algebra (FIRA, Wyss & Robertson 2005),
// extended with the λ operator for complex semantic functions (§4). Each
// operator is a small parameter struct; an Op is the variant over them.
//
// All operators act on one database state and yield a new database state:
// they rewrite the named relation (or add relations) and leave the rest of
// the database untouched.

// →B_A(R): for every tuple t, append a new column named `out` (B) holding
// t[t[pointer]] — the value of the column whose *name* is t's value in the
// pointer column. Null/unresolvable pointers yield null.
struct DereferenceOp {
  std::string rel;
  std::string pointer;  // A
  std::string out;      // B
  friend bool operator==(const DereferenceOp&, const DereferenceOp&) = default;
};

// ↑A_B(R): promote column A to metadata. For every tuple t, append a new
// column named t[name_attr] (A's value) holding t[value_attr] (B's value).
// One new column per distinct non-null A value; other tuples hold null.
struct PromoteOp {
  std::string rel;
  std::string name_attr;   // A: values become column names
  std::string value_attr;  // B: values populate the new columns
  friend bool operator==(const PromoteOp&, const PromoteOp&) = default;
};

// ↓(R): demote metadata to data — the Cartesian product of R with its own
// metadata, realized as UNPIVOT: for every tuple t and every attribute A of
// R, emit t extended with (kDemoteAttrColumn = A, kDemoteValueColumn =
// t[A]). This is the inverse TUPELO needs to undo ↑ (cf. Wyss & Robertson,
// CIKM 2005).
struct DemoteOp {
  std::string rel;
  friend bool operator==(const DemoteOp&, const DemoteOp&) = default;
};

inline constexpr char kDemoteAttrColumn[] = "_att";
inline constexpr char kDemoteValueColumn[] = "_val";

// ℘A(R): for every distinct non-null value v of column `attr`, create a new
// relation named v holding the tuples of R with t[attr] = v (schema
// unchanged). R itself is kept: TUPELO's goal test is containment, and
// extra relations are filtered by post-processing selections (§2.1).
struct PartitionOp {
  std::string rel;
  std::string attr;
  friend bool operator==(const PartitionOp&, const PartitionOp&) = default;
};

// ×(R, S): Cartesian product, added as a new relation named "R*S". The
// attribute sets must be disjoint and both operands are kept.
struct ProductOp {
  std::string left;
  std::string right;
  friend bool operator==(const ProductOp&, const ProductOp&) = default;
};

// π̄A(R): drop column A from R.
struct DropOp {
  std::string rel;
  std::string attr;
  friend bool operator==(const DropOp&, const DropOp&) = default;
};

// µA(R): merge tuples of R that share a non-null value in column `attr` and
// are pointwise merge-compatible (equal or null in every column), replacing
// them by their pointwise merge, to a fixpoint (Wyss & Robertson's simple
// merge). Tuples with null in `attr` are left untouched.
struct MergeOp {
  std::string rel;
  std::string attr;
  friend bool operator==(const MergeOp&, const MergeOp&) = default;
};

// ρatt X→X'(R).
struct RenameAttrOp {
  std::string rel;
  std::string from;
  std::string to;
  friend bool operator==(const RenameAttrOp&, const RenameAttrOp&) = default;
};

// ρrel X→X'.
struct RenameRelOp {
  std::string from;
  std::string to;
  friend bool operator==(const RenameRelOp&, const RenameRelOp&) = default;
};

// λB_f,Ā(R): for every tuple t with all of `inputs` non-null, append column
// `out` (B) holding f(t[Ā]); other tuples hold null. f is a black box drawn
// from the FunctionRegistry; failures on individual tuples yield null
// (the paper's λ is the identity on tuples of inappropriate schema).
struct ApplyFunctionOp {
  std::string rel;
  std::string function;
  std::vector<std::string> inputs;  // Ā
  std::string out;                  // B
  friend bool operator==(const ApplyFunctionOp&,
                         const ApplyFunctionOp&) = default;
};

using Op = std::variant<DereferenceOp, PromoteOp, DemoteOp, PartitionOp,
                        ProductOp, DropOp, MergeOp, RenameAttrOp, RenameRelOp,
                        ApplyFunctionOp>;

// Machine-readable, re-parseable form: `promote(Prices, Route, Cost)`.
// Names that are not bare words are double-quoted. See fira/parser.h.
std::string OpToScript(const Op& op);

// Paper-style display form: `↑^Route_Cost(Prices)`.
std::string OpToPretty(const Op& op);

// The operator's symbolic name in script form ("promote", "rename_att"...).
std::string OpName(const Op& op);

// The name of the relation the operator primarily rewrites (left operand
// for product, `from` for rename_rel).
const std::string& OpTargetRelation(const Op& op);

// The name of the relation produced for ProductOp ("left*right").
std::string ProductResultName(const ProductOp& op);

}  // namespace tupelo

#endif  // TUPELO_FIRA_OPERATORS_H_
