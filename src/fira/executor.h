#ifndef TUPELO_FIRA_EXECUTOR_H_
#define TUPELO_FIRA_EXECUTOR_H_

#include "common/result.h"
#include "fira/function_registry.h"
#include "fira/operators.h"
#include "obs/metrics.h"
#include "relational/database.h"

namespace tupelo {

// Applies one operator of L to a database state, producing the successor
// state. The input is untouched. `registry` may be null when `op` is not an
// ApplyFunctionOp. Fails (never crashes) on inapplicable operators:
// missing relations/attributes, name collisions, unknown functions.
//
// With a non-null `metrics`, each call updates the per-operator
// instruments executor.<op>.{count,nanos,failures} (op in script-name
// form: "promote", "demote", "partition", ...). A null registry skips
// instrumentation entirely — no clock reads, no lookups.
Result<Database> ApplyOp(const Op& op, const Database& input,
                         const FunctionRegistry* registry = nullptr,
                         obs::MetricRegistry* metrics = nullptr);

}  // namespace tupelo

#endif  // TUPELO_FIRA_EXECUTOR_H_
