#ifndef TUPELO_FIRA_EXECUTOR_H_
#define TUPELO_FIRA_EXECUTOR_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "common/result.h"
#include "fira/function_registry.h"
#include "fira/operators.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/database.h"

namespace tupelo {

// Fault-injection seam for tests: when installed (SetFaultInjector),
// ApplyOp consults the injector before executing each operator and returns
// the injected error Status instead of running it. This is how tests prove
// that operator failures propagate as Status (not crashes) through search,
// verification, and the degradation ladder. Disarmed and uninstalled
// injectors cost one relaxed atomic load per ApplyOp.
class FaultInjector {
 public:
  // Firing discipline of an armed injector. All modes share the same match
  // rule (`op_name`, "*" for every operator) and counters; they differ only
  // in which matching applications fail.
  enum class Mode {
    kAfterSkip,       // fail every application after the first `skip`
    kProbabilistic,   // fail each application with probability p (seeded)
    kEveryNth,        // fail every Nth matching application
  };

  // What a fired fault *does* at the ApplyOp boundary. kStatus is the
  // classic typed-error injection; the chaos kinds below exercise the
  // supervision layer (runtime/supervisor.h):
  //   kThrow    — throw std::runtime_error out of ApplyOp: a poison state
  //               for the quarantine (or a lethal escape without one);
  //   kBadAlloc — throw std::bad_alloc: simulated allocation failure
  //               inside Expand;
  //   kDelay    — sleep `delay_millis` on the applying thread, then
  //               execute normally: a hung/slow rung for the watchdog's
  //               stall detector.
  enum class Kind {
    kStatus,
    kThrow,
    kBadAlloc,
    kDelay,
  };

  // A fired fault as ApplyOp consumes it.
  struct Fault {
    Kind kind = Kind::kStatus;
    Status status;
    int64_t delay_millis = 0;
  };

  // Arms the injector: applications of `op_name` (script-name form —
  // "promote", "rename_att", ...; "*" matches every operator) fail with
  // `status` after `skip` matching applications have been allowed through.
  // Re-arming replaces the previous configuration and resets counters.
  void Arm(std::string op_name, Status status, uint64_t skip = 0);

  // Arms seeded-probabilistic firing: each matching application fails with
  // probability `probability` (clamped to [0, 1]), decided by a counter-
  // keyed hash of `seed` — the fire pattern is a pure function of (seed,
  // consult index), so campaigns replay exactly.
  void ArmProbabilistic(std::string op_name, Status status,
                        double probability, uint64_t seed);

  // Arms every-Nth firing: matching applications numbered n, 2n, 3n, ...
  // (1-based) fail. n == 0 never fires.
  void ArmEveryNth(std::string op_name, Status status, uint64_t n);

  void Disarm();

  // Overrides what the armed configuration does when it fires (default
  // Kind::kStatus). Orthogonal to the firing discipline: any Arm* mode
  // can throw, stall, or simulate allocation failure. Arm*/Disarm reset
  // the kind back to kStatus.
  void SetKind(Kind kind, int64_t delay_millis = 0);

  // Caps how many times the armed configuration fires (0 = unlimited,
  // the default). A one-shot stall (`SetMaxFires(1)` with Kind::kDelay)
  // is the deterministic "transient fault" of the retry/backoff tests.
  void SetMaxFires(uint64_t max_fires);

  // Matching applications consulted so far (allowed + failed) since the
  // last Arm. Lets tests position `skip` deterministically, e.g. at the
  // first verification replay after a search.
  uint64_t consults() const;
  // Applications actually failed since the last Arm.
  uint64_t injected() const;

  // Consulted by ApplyOp; returns true and fills `out` when this
  // application must fault (see Fault::kind for what to do).
  bool ShouldFail(std::string_view op_name, Fault* out);

  // Back-compat view for callers that only understand status injection:
  // fills `out` with the fault's status regardless of kind.
  bool ShouldFail(std::string_view op_name, Status* out);

 private:
  mutable std::mutex mu_;
  bool armed_ = false;
  Mode mode_ = Mode::kAfterSkip;
  Kind kind_ = Kind::kStatus;
  std::string op_name_;
  Status status_;
  uint64_t skip_ = 0;
  double probability_ = 0.0;
  uint64_t seed_ = 0;
  uint64_t every_n_ = 0;
  int64_t delay_millis_ = 0;
  uint64_t max_fires_ = 0;
  uint64_t consults_ = 0;
  uint64_t injected_ = 0;
};

// Installs the process-wide injector consulted by ApplyOp (nullptr to
// uninstall). The injector must outlive its installation. Test-only seam.
void SetFaultInjector(FaultInjector* injector);
FaultInjector* GetFaultInjector();

// Applies one operator of L to a database state, producing the successor
// state. The input is untouched. `registry` may be null when `op` is not an
// ApplyFunctionOp. Fails (never crashes) on inapplicable operators:
// missing relations/attributes, name collisions, unknown functions.
//
// With a non-null `metrics`, each call updates the per-operator
// instruments executor.<op>.{count,nanos,failures} (op in script-name
// form: "promote", "demote", "partition", ...). A null registry skips
// instrumentation entirely — no clock reads, no lookups.
//
// With a non-null `trace`, each call emits one "op.<name>" span in the
// executor category (where chains of cheap adjacent operators — fusion
// candidates — become visible on the timeline), and a fired fault
// injection emits a "fault.injected" instant in the fault category,
// which arms the flight-recorder dump trigger.
Result<Database> ApplyOp(const Op& op, const Database& input,
                         const FunctionRegistry* registry = nullptr,
                         obs::MetricRegistry* metrics = nullptr,
                         obs::TraceSession* trace = nullptr);

}  // namespace tupelo

#endif  // TUPELO_FIRA_EXECUTOR_H_
