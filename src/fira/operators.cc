#include "fira/operators.h"

#include <cctype>

#include "common/string_util.h"

namespace tupelo {
namespace {

// Script-form atom: bare if it lexes as a single word in the expression
// grammar, otherwise quoted.
bool BareOk(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '(' || c == ')' ||
        c == '[' || c == ']' || c == ',' || c == '"' || c == '#') {
      return false;
    }
  }
  return true;
}

std::string Atom(const std::string& s) { return BareOk(s) ? s : Quote(s); }

std::string List(const std::vector<std::string>& names) {
  std::string out = "[";
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += Atom(names[i]);
  }
  out += "]";
  return out;
}

struct ScriptPrinter {
  std::string operator()(const DereferenceOp& op) const {
    return "dereference(" + Atom(op.rel) + ", " + Atom(op.pointer) + ", " +
           Atom(op.out) + ")";
  }
  std::string operator()(const PromoteOp& op) const {
    return "promote(" + Atom(op.rel) + ", " + Atom(op.name_attr) + ", " +
           Atom(op.value_attr) + ")";
  }
  std::string operator()(const DemoteOp& op) const {
    return "demote(" + Atom(op.rel) + ")";
  }
  std::string operator()(const PartitionOp& op) const {
    return "partition(" + Atom(op.rel) + ", " + Atom(op.attr) + ")";
  }
  std::string operator()(const ProductOp& op) const {
    return "product(" + Atom(op.left) + ", " + Atom(op.right) + ")";
  }
  std::string operator()(const DropOp& op) const {
    return "drop(" + Atom(op.rel) + ", " + Atom(op.attr) + ")";
  }
  std::string operator()(const MergeOp& op) const {
    return "merge(" + Atom(op.rel) + ", " + Atom(op.attr) + ")";
  }
  std::string operator()(const RenameAttrOp& op) const {
    return "rename_att(" + Atom(op.rel) + ", " + Atom(op.from) + ", " +
           Atom(op.to) + ")";
  }
  std::string operator()(const RenameRelOp& op) const {
    return "rename_rel(" + Atom(op.from) + ", " + Atom(op.to) + ")";
  }
  std::string operator()(const ApplyFunctionOp& op) const {
    return "apply(" + Atom(op.rel) + ", " + Atom(op.function) + ", " +
           List(op.inputs) + ", " + Atom(op.out) + ")";
  }
};

struct PrettyPrinter {
  std::string operator()(const DereferenceOp& op) const {
    return "→^" + op.out + "_" + op.pointer + "(" + op.rel + ")";
  }
  std::string operator()(const PromoteOp& op) const {
    return "↑^" + op.name_attr + "_" + op.value_attr + "(" + op.rel + ")";
  }
  std::string operator()(const DemoteOp& op) const {
    return "↓(" + op.rel + ")";
  }
  std::string operator()(const PartitionOp& op) const {
    return "℘_" + op.attr + "(" + op.rel + ")";
  }
  std::string operator()(const ProductOp& op) const {
    return "×(" + op.left + ", " + op.right + ")";
  }
  std::string operator()(const DropOp& op) const {
    return "π̄_" + op.attr + "(" + op.rel + ")";
  }
  std::string operator()(const MergeOp& op) const {
    return "µ_" + op.attr + "(" + op.rel + ")";
  }
  std::string operator()(const RenameAttrOp& op) const {
    return "ρatt_" + op.from + "→" + op.to + "(" + op.rel + ")";
  }
  std::string operator()(const RenameRelOp& op) const {
    return "ρrel_" + op.from + "→" + op.to;
  }
  std::string operator()(const ApplyFunctionOp& op) const {
    std::string inputs;
    for (size_t i = 0; i < op.inputs.size(); ++i) {
      if (i > 0) inputs += ",";
      inputs += op.inputs[i];
    }
    return "λ^" + op.out + "_" + op.function + "," + inputs + "(" + op.rel +
           ")";
  }
};

struct NameGetter {
  std::string operator()(const DereferenceOp&) const { return "dereference"; }
  std::string operator()(const PromoteOp&) const { return "promote"; }
  std::string operator()(const DemoteOp&) const { return "demote"; }
  std::string operator()(const PartitionOp&) const { return "partition"; }
  std::string operator()(const ProductOp&) const { return "product"; }
  std::string operator()(const DropOp&) const { return "drop"; }
  std::string operator()(const MergeOp&) const { return "merge"; }
  std::string operator()(const RenameAttrOp&) const { return "rename_att"; }
  std::string operator()(const RenameRelOp&) const { return "rename_rel"; }
  std::string operator()(const ApplyFunctionOp&) const { return "apply"; }
};

struct TargetGetter {
  const std::string& operator()(const DereferenceOp& op) const {
    return op.rel;
  }
  const std::string& operator()(const PromoteOp& op) const { return op.rel; }
  const std::string& operator()(const DemoteOp& op) const { return op.rel; }
  const std::string& operator()(const PartitionOp& op) const { return op.rel; }
  const std::string& operator()(const ProductOp& op) const { return op.left; }
  const std::string& operator()(const DropOp& op) const { return op.rel; }
  const std::string& operator()(const MergeOp& op) const { return op.rel; }
  const std::string& operator()(const RenameAttrOp& op) const {
    return op.rel;
  }
  const std::string& operator()(const RenameRelOp& op) const {
    return op.from;
  }
  const std::string& operator()(const ApplyFunctionOp& op) const {
    return op.rel;
  }
};

}  // namespace

std::string OpToScript(const Op& op) { return std::visit(ScriptPrinter{}, op); }

std::string OpToPretty(const Op& op) { return std::visit(PrettyPrinter{}, op); }

std::string OpName(const Op& op) { return std::visit(NameGetter{}, op); }

const std::string& OpTargetRelation(const Op& op) {
  return std::visit(TargetGetter{}, op);
}

std::string ProductResultName(const ProductOp& op) {
  return op.left + "*" + op.right;
}

}  // namespace tupelo
