#ifndef TUPELO_FIRA_IR_H_
#define TUPELO_FIRA_IR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "fira/function_registry.h"
#include "fira/operators.h"
#include "relational/relation.h"

namespace tupelo {

// The loop IR behind CompiledExecutor (fira/compile.h).
//
// Compilation happens in two stages, because operator *semantics* are
// fixed at compile time but *schemas* are only known once an instance is
// supplied:
//
//  1. Lowering (static, per expression): the operator pipeline is
//     partitioned into segments. A fused segment is a maximal run of
//     tuple-local operators — rename_att, drop, dereference, λ,
//     rename_rel — threaded through one relation (a × may open the run:
//     its nested loop is the segment's source). Everything else (↑ ↓ ℘ µ,
//     whose output shape depends on the data) falls back to the scalar
//     interpreter, one op per segment.
//
//  2. Binding (dynamic, per instance): a fused segment is specialized
//     against the concrete input schema into one flat loop — a slot
//     layout, a list of row instructions, and a final projection — that
//     emits output tuples directly, materializing no intermediate
//     relation or database.
//
// Slot model: slots 0..base_width-1 hold the source tuple's values (for a
// product source, the left tuple's columns then the right's); row
// instruction j appends slot base_width + j. Renames only rewire the
// name→slot map used by later instructions; drops only remove slots from
// the final projection. Neither touches tuple data, which is why a whole
// rename∘drop chain costs one pass.

// One appended column, evaluated per source tuple.
struct RowInstr {
  enum class Kind {
    // out = t[t[pointer]]: read the pointer slot, resolve its atom
    // against the names visible at this stage, emit that slot's value
    // (⊥ when the pointer is ⊥ or unresolvable).
    kDereference,
    // out = fn(t[inputs...]): ⊥ when any input is ⊥ or the function
    // rejects the tuple (λ is the identity on tuples of inappropriate
    // schema).
    kApply,
  };

  Kind kind = Kind::kDereference;

  // kDereference: the slot holding the pointer value, and the visible
  // (name, slot) scope at this pipeline stage, sorted by name for binary
  // search. Captured per instruction because renames/drops/appends
  // before this stage change what a pointer atom can resolve to.
  uint32_t pointer = 0;
  std::vector<std::pair<std::string, uint32_t>> scope;

  // kApply: the bound function and its input slots.
  const ComplexFunction* fn = nullptr;
  std::vector<uint32_t> inputs;
};

// A fused segment bound against a concrete instance: ready to run as one
// loop. Relation pointers borrow from the input database and are only
// valid for the duration of the execute call.
struct BoundLoop {
  const Relation* left = nullptr;   // always set
  const Relation* right = nullptr;  // set for a product source
  uint32_t base_width = 0;          // left arity (+ right arity)

  std::vector<RowInstr> instrs;     // instr j writes slot base_width + j

  std::vector<uint32_t> projection;  // output columns, as slots, in order
  std::string out_name;              // relation name after rename_rel runs
  std::vector<std::string> out_attrs;

  // Single-relation source: the input-side name to displace (differs from
  // out_name after a rename_rel). Empty for a product source, whose
  // operands stay in place.
  std::string source_name;
};

// A compiled expression: the op pipeline partitioned into segments.
// `first_step` is the 0-based index of the segment's first op within the
// original expression — error wrapping ("step N (script): ...") must
// report the same positions the interpreter would.
struct PlanSegment {
  enum class Kind { kFused, kInterpret };
  Kind kind = Kind::kInterpret;
  size_t first_step = 0;
  std::vector<Op> ops;
};

struct CompiledPlan {
  std::vector<PlanSegment> segments;
  size_t fused_ops = 0;        // ops inside kFused segments
  size_t interpreted_ops = 0;  // ops executed by the scalar fallback
};

}  // namespace tupelo

#endif  // TUPELO_FIRA_IR_H_
