#include "fira/optimizer.h"

#include <algorithm>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace tupelo {
namespace {

// Applies one round of adjacent-pair rewrites. Returns true if anything
// changed.
bool RewriteOnce(std::vector<Op>* steps) {
  std::vector<Op>& s = *steps;

  for (size_t i = 0; i + 1 < s.size(); ++i) {
    Op& a = s[i];
    Op& b = s[i + 1];

    // rename_att chain fusion.
    if (const auto* r1 = std::get_if<RenameAttrOp>(&a)) {
      if (const auto* r2 = std::get_if<RenameAttrOp>(&b)) {
        if (r1->rel == r2->rel && r1->to == r2->from) {
          if (r1->from == r2->to) {
            // A -> B -> A: a no-op pair.
            s.erase(s.begin() + static_cast<ptrdiff_t>(i),
                    s.begin() + static_cast<ptrdiff_t>(i) + 2);
          } else {
            a = RenameAttrOp{r1->rel, r1->from, r2->to};
            s.erase(s.begin() + static_cast<ptrdiff_t>(i) + 1);
          }
          return true;
        }
      }
      // rename-then-drop of the renamed column.
      if (const auto* d = std::get_if<DropOp>(&b)) {
        if (r1->rel == d->rel && r1->to == d->attr) {
          a = DropOp{r1->rel, r1->from};
          s.erase(s.begin() + static_cast<ptrdiff_t>(i) + 1);
          return true;
        }
      }
    }

    // rename_rel chain fusion.
    if (const auto* r1 = std::get_if<RenameRelOp>(&a)) {
      if (const auto* r2 = std::get_if<RenameRelOp>(&b)) {
        if (r1->to == r2->from) {
          if (r1->from == r2->to) {
            s.erase(s.begin() + static_cast<ptrdiff_t>(i),
                    s.begin() + static_cast<ptrdiff_t>(i) + 2);
          } else {
            a = RenameRelOp{r1->from, r2->to};
            s.erase(s.begin() + static_cast<ptrdiff_t>(i) + 1);
          }
          return true;
        }
      }
    }

    // Column created then immediately dropped: λ and dereference append a
    // fresh column and touch nothing else, so creating+dropping is a no-op.
    if (const auto* d = std::get_if<DropOp>(&b)) {
      const std::string* created = nullptr;
      const std::string* created_rel = nullptr;
      if (const auto* ap = std::get_if<ApplyFunctionOp>(&a)) {
        created = &ap->out;
        created_rel = &ap->rel;
      } else if (const auto* de = std::get_if<DereferenceOp>(&a)) {
        created = &de->out;
        created_rel = &de->rel;
      }
      if (created != nullptr && *created_rel == d->rel &&
          *created == d->attr) {
        s.erase(s.begin() + static_cast<ptrdiff_t>(i),
                s.begin() + static_cast<ptrdiff_t>(i) + 2);
        return true;
      }
    }

    // Note: demote followed by dropping both demote columns is NOT
    // rewritten away — demote multiplies tuple counts by the arity, so the
    // pair is not a bag-semantics no-op.

    // Canonicalize runs of drops on the same relation (drops of distinct
    // attributes commute).
    if (const auto* d1 = std::get_if<DropOp>(&a)) {
      if (const auto* d2 = std::get_if<DropOp>(&b)) {
        if (d1->rel == d2->rel && d2->attr < d1->attr) {
          std::swap(a, b);
          return true;
        }
      }
    }
  }
  return false;
}

// Mirror of RewriteOnce's match conditions, without applying them: the
// name of the first rule that would fire on some adjacent pair, or
// nullptr when the expression is at the fixpoint. Keep in sync with
// RewriteOnce above.
const char* FirstApplicableRule(const std::vector<Op>& s) {
  for (size_t i = 0; i + 1 < s.size(); ++i) {
    const Op& a = s[i];
    const Op& b = s[i + 1];

    if (const auto* r1 = std::get_if<RenameAttrOp>(&a)) {
      if (const auto* r2 = std::get_if<RenameAttrOp>(&b)) {
        if (r1->rel == r2->rel && r1->to == r2->from) {
          return r1->from == r2->to ? "rename-att-round-trip"
                                    : "rename-att-chain-fusion";
        }
      }
      if (const auto* d = std::get_if<DropOp>(&b)) {
        if (r1->rel == d->rel && r1->to == d->attr) {
          return "rename-then-drop";
        }
      }
    }

    if (const auto* r1 = std::get_if<RenameRelOp>(&a)) {
      if (const auto* r2 = std::get_if<RenameRelOp>(&b)) {
        if (r1->to == r2->from) {
          return r1->from == r2->to ? "rename-rel-round-trip"
                                    : "rename-rel-chain-fusion";
        }
      }
    }

    if (const auto* d = std::get_if<DropOp>(&b)) {
      const std::string* created = nullptr;
      const std::string* created_rel = nullptr;
      if (const auto* ap = std::get_if<ApplyFunctionOp>(&a)) {
        created = &ap->out;
        created_rel = &ap->rel;
      } else if (const auto* de = std::get_if<DereferenceOp>(&a)) {
        created = &de->out;
        created_rel = &de->rel;
      }
      if (created != nullptr && *created_rel == d->rel &&
          *created == d->attr) {
        return "create-then-drop";
      }
    }

    if (const auto* d1 = std::get_if<DropOp>(&a)) {
      if (const auto* d2 = std::get_if<DropOp>(&b)) {
        if (d1->rel == d2->rel && d2->attr < d1->attr) {
          return "drop-canonicalization";
        }
      }
    }
  }
  return nullptr;
}

}  // namespace

MappingExpression Simplify(const MappingExpression& expression) {
  std::vector<Op> steps = expression.steps();
  while (RewriteOnce(&steps)) {
  }
  return MappingExpression(std::move(steps));
}

Result<MappingExpression> Optimize(const MappingExpression& expression) {
  if (const char* rule = FirstApplicableRule(expression.steps())) {
    return Status::FailedPrecondition(
        std::string("optimize: not equivalence-preserving: rule '") + rule +
        "' preserves success behavior but can change failure outcomes of "
        "the original expression; use Simplify for the one-sided "
        "guarantee");
  }
  return expression;
}

}  // namespace tupelo
