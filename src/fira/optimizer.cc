#include "fira/optimizer.h"

#include <algorithm>
#include <utility>
#include <variant>
#include <vector>

namespace tupelo {
namespace {

// Applies one round of adjacent-pair rewrites. Returns true if anything
// changed.
bool RewriteOnce(std::vector<Op>* steps) {
  std::vector<Op>& s = *steps;

  for (size_t i = 0; i + 1 < s.size(); ++i) {
    Op& a = s[i];
    Op& b = s[i + 1];

    // rename_att chain fusion.
    if (const auto* r1 = std::get_if<RenameAttrOp>(&a)) {
      if (const auto* r2 = std::get_if<RenameAttrOp>(&b)) {
        if (r1->rel == r2->rel && r1->to == r2->from) {
          if (r1->from == r2->to) {
            // A -> B -> A: a no-op pair.
            s.erase(s.begin() + static_cast<ptrdiff_t>(i),
                    s.begin() + static_cast<ptrdiff_t>(i) + 2);
          } else {
            a = RenameAttrOp{r1->rel, r1->from, r2->to};
            s.erase(s.begin() + static_cast<ptrdiff_t>(i) + 1);
          }
          return true;
        }
      }
      // rename-then-drop of the renamed column.
      if (const auto* d = std::get_if<DropOp>(&b)) {
        if (r1->rel == d->rel && r1->to == d->attr) {
          a = DropOp{r1->rel, r1->from};
          s.erase(s.begin() + static_cast<ptrdiff_t>(i) + 1);
          return true;
        }
      }
    }

    // rename_rel chain fusion.
    if (const auto* r1 = std::get_if<RenameRelOp>(&a)) {
      if (const auto* r2 = std::get_if<RenameRelOp>(&b)) {
        if (r1->to == r2->from) {
          if (r1->from == r2->to) {
            s.erase(s.begin() + static_cast<ptrdiff_t>(i),
                    s.begin() + static_cast<ptrdiff_t>(i) + 2);
          } else {
            a = RenameRelOp{r1->from, r2->to};
            s.erase(s.begin() + static_cast<ptrdiff_t>(i) + 1);
          }
          return true;
        }
      }
    }

    // Column created then immediately dropped: λ and dereference append a
    // fresh column and touch nothing else, so creating+dropping is a no-op.
    if (const auto* d = std::get_if<DropOp>(&b)) {
      const std::string* created = nullptr;
      const std::string* created_rel = nullptr;
      if (const auto* ap = std::get_if<ApplyFunctionOp>(&a)) {
        created = &ap->out;
        created_rel = &ap->rel;
      } else if (const auto* de = std::get_if<DereferenceOp>(&a)) {
        created = &de->out;
        created_rel = &de->rel;
      }
      if (created != nullptr && *created_rel == d->rel &&
          *created == d->attr) {
        s.erase(s.begin() + static_cast<ptrdiff_t>(i),
                s.begin() + static_cast<ptrdiff_t>(i) + 2);
        return true;
      }
    }

    // Note: demote followed by dropping both demote columns is NOT
    // rewritten away — demote multiplies tuple counts by the arity, so the
    // pair is not a bag-semantics no-op.

    // Canonicalize runs of drops on the same relation (drops of distinct
    // attributes commute).
    if (const auto* d1 = std::get_if<DropOp>(&a)) {
      if (const auto* d2 = std::get_if<DropOp>(&b)) {
        if (d1->rel == d2->rel && d2->attr < d1->attr) {
          std::swap(a, b);
          return true;
        }
      }
    }
  }
  return false;
}

}  // namespace

MappingExpression Simplify(const MappingExpression& expression) {
  std::vector<Op> steps = expression.steps();
  while (RewriteOnce(&steps)) {
  }
  return MappingExpression(std::move(steps));
}

}  // namespace tupelo
