#ifndef TUPELO_FIRA_TYPE_CHECK_H_
#define TUPELO_FIRA_TYPE_CHECK_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "fira/expression.h"
#include "fira/function_registry.h"
#include "fira/operators.h"
#include "relational/database.h"

namespace tupelo {

// Static ("schema-level") checking of mapping expressions: simulate the
// effect of every operator on schemas alone — no data — and report
// operators that can be *proven* inapplicable: missing relations or
// attributes, name collisions, unknown λ functions, arity mismatches.
// §4 notes that during search "all that needs to be checked is that the
// applications of functions are well-typed"; this module makes the same
// judgement available for saved mapping scripts before execution.
//
// Two data-metadata operators create schema elements whose names depend on
// the data: ↑ (promote) adds data-named columns and ℘ (partition) adds
// data-named relations. After them the affected schema is marked `open`,
// and checks that would need the unknown names degrade soundly: only
// definite errors are reported, never false alarms.

struct RelationSchema {
  std::vector<std::string> attributes;
  // True when the relation may carry additional data-dependent attributes
  // (after a promote).
  bool open = false;

  bool HasAttribute(const std::string& attr) const;
  friend bool operator==(const RelationSchema&,
                         const RelationSchema&) = default;
};

struct DatabaseSchema {
  std::map<std::string, RelationSchema> relations;
  // True when the database may contain additional data-dependent
  // relations (after a partition).
  bool open = false;

  static DatabaseSchema Of(const Database& db);

  bool HasRelation(const std::string& name) const {
    return relations.contains(name);
  }
  friend bool operator==(const DatabaseSchema&,
                         const DatabaseSchema&) = default;
};

// Simulates one operator. Fails with the reason when the operator is
// provably ill-typed for `input`; otherwise returns the output schema.
Result<DatabaseSchema> ApplyOpToSchema(
    const Op& op, const DatabaseSchema& input,
    const FunctionRegistry* registry = nullptr);

// Simulates a whole expression left to right. Error messages carry the
// 1-based step index.
Result<DatabaseSchema> CheckExpression(
    const MappingExpression& expression, const DatabaseSchema& input,
    const FunctionRegistry* registry = nullptr);

}  // namespace tupelo

#endif  // TUPELO_FIRA_TYPE_CHECK_H_
