#include "fira/expression.h"

namespace tupelo {

Result<Database> MappingExpression::Apply(
    const Database& input, const FunctionRegistry* registry) const {
  Database state = input;
  for (size_t i = 0; i < steps_.size(); ++i) {
    Result<Database> next = ApplyOp(steps_[i], state, registry);
    if (!next.ok()) {
      return Status(next.status().code(),
                    "step " + std::to_string(i + 1) + " (" +
                        OpToScript(steps_[i]) +
                        "): " + next.status().message());
    }
    state = std::move(next).value();
  }
  return state;
}

std::string MappingExpression::ToScript() const {
  std::string out;
  for (const Op& op : steps_) {
    out += OpToScript(op);
    out += "\n";
  }
  return out;
}

std::string MappingExpression::ToPretty() const {
  std::string out = "DB";
  for (const Op& op : steps_) {
    std::string step = OpToPretty(op);
    // Replace the operator's own "(R)" suffix context: present the pipeline
    // as nested application around the accumulated expression.
    out = step + " ∘ " + out;
  }
  return out;
}

}  // namespace tupelo
