#include "fira/function_registry.h"

#include <utility>

namespace tupelo {

Status FunctionRegistry::Register(ComplexFunction fn) {
  if (fn.name.empty()) {
    return Status::InvalidArgument("function name must be non-empty");
  }
  if (!fn.impl) {
    return Status::InvalidArgument("function '" + fn.name +
                                   "' has no implementation");
  }
  std::string name = fn.name;
  auto [it, inserted] = functions_.emplace(name, std::move(fn));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("function '" + name + "' already registered");
  }
  return Status::OK();
}

bool FunctionRegistry::Has(std::string_view name) const {
  return functions_.find(name) != functions_.end();
}

Result<const ComplexFunction*> FunctionRegistry::Lookup(
    std::string_view name) const {
  auto it = functions_.find(name);
  if (it == functions_.end()) {
    return Status::NotFound("function '" + std::string(name) +
                            "' not registered");
  }
  return &it->second;
}

std::vector<std::string> FunctionRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(functions_.size());
  for (const auto& [name, fn] : functions_) names.push_back(name);
  return names;
}

Result<std::string> FunctionRegistry::Call(
    std::string_view name, const std::vector<std::string>& args) const {
  TUPELO_ASSIGN_OR_RETURN(const ComplexFunction* fn, Lookup(name));
  if (args.size() != fn->arity) {
    return Status::InvalidArgument(
        "function '" + fn->name + "' expects " + std::to_string(fn->arity) +
        " arguments, got " + std::to_string(args.size()));
  }
  return fn->impl(args);
}

}  // namespace tupelo
