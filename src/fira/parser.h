#ifndef TUPELO_FIRA_PARSER_H_
#define TUPELO_FIRA_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "fira/expression.h"
#include "fira/operators.h"

namespace tupelo {

// Parses the script form of mapping expressions produced by
// MappingExpression::ToScript() / OpToScript(). Grammar:
//
//   script := (op)*                       # whitespace/newline separated
//   op     := opname '(' args ')'
//   args   := arg (',' arg)*
//   arg    := name | '[' name (',' name)* ']'
//   name   := bare word | double-quoted string (with \\ \" \n \t escapes)
//
// Operator signatures:
//   dereference(R, pointerAttr, outAttr)
//   promote(R, nameAttr, valueAttr)
//   demote(R)
//   partition(R, attr)
//   product(R, S)
//   drop(R, attr)
//   merge(R, attr)
//   rename_att(R, from, to)
//   rename_rel(from, to)
//   apply(R, function, [in1, in2, ...], outAttr)
//
// '#' starts a comment to end of line.
Result<MappingExpression> ParseExpression(std::string_view script);

// Parses exactly one operator; fails on trailing input.
Result<Op> ParseOp(std::string_view text);

}  // namespace tupelo

#endif  // TUPELO_FIRA_PARSER_H_
