#include "runtime/supervisor.h"

#include <algorithm>
#include <utility>

namespace tupelo::runtime {

namespace {

// Watermark in nodes for a fraction of the bound; a fraction <= 0
// disables the stage, a fraction >= 1 coincides with the hard limit.
uint64_t Watermark(uint64_t max_nodes, double fraction) {
  if (max_nodes == 0 || fraction <= 0.0) return 0;
  if (fraction >= 1.0) return max_nodes;
  return static_cast<uint64_t>(static_cast<double>(max_nodes) * fraction);
}

}  // namespace

Supervisor::Supervisor(const SupervisorConfig& config,
                       obs::MetricRegistry* metrics, obs::TraceSession* trace)
    : config_(config), metrics_(metrics), trace_(trace) {
  watchdog_ = std::thread([this] { Loop(); });
}

Supervisor::~Supervisor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  watchdog_.join();
}

int64_t Supervisor::Watch(WatchSpec spec) {
  if (spec.heartbeat == nullptr || spec.preempt == nullptr) return -1;
  std::lock_guard<std::mutex> lock(mu_);
  Watched w;
  w.id = next_id_++;
  w.last_beats = spec.heartbeat->beats.load(std::memory_order_relaxed);
  w.last_states = spec.heartbeat->states.load(std::memory_order_relaxed);
  w.last_progress = std::chrono::steady_clock::now();
  w.spec = std::move(spec);
  watches_.push_back(std::move(w));
  if (metrics_ != nullptr) metrics_->GetCounter("supervisor.watches").Increment();
  return watches_.back().id;
}

void Supervisor::Unwatch(int64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  watches_.erase(std::remove_if(watches_.begin(), watches_.end(),
                                [id](const Watched& w) { return w.id == id; }),
                 watches_.end());
}

PreemptReason Supervisor::preemption(int64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Watched& w : watches_) {
    if (w.id == id) return w.preempted;
  }
  return PreemptReason::kNone;
}

void Supervisor::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  const auto tick = std::chrono::milliseconds(
      config_.tick_millis > 0 ? config_.tick_millis : 1);
  while (!shutdown_) {
    cv_.wait_for(lock, tick);
    if (shutdown_) return;
    if (metrics_ != nullptr) {
      metrics_->GetCounter("supervisor.ticks").Increment();
    }
    TickLocked(std::chrono::steady_clock::now());
  }
}

void Supervisor::TickLocked(std::chrono::steady_clock::time_point now) {
  const auto window = std::chrono::milliseconds(config_.stall_window_millis);
  for (Watched& w : watches_) {
    if (w.preempted != PreemptReason::kNone) continue;  // already handled
    const HeartbeatSlot* hb = w.spec.heartbeat;
    const uint64_t beats = hb->beats.load(std::memory_order_relaxed);
    const uint64_t states = hb->states.load(std::memory_order_relaxed);
    const uint64_t memory = hb->memory_nodes.load(std::memory_order_relaxed);

    // Memory staging first: a rung thrashing against its memory bound is
    // often still "alive" by the beat counter, and relief may be all it
    // needs to avoid stalling later.
    if (w.spec.max_memory_nodes > 0) {
      const uint64_t soft =
          Watermark(w.spec.max_memory_nodes, config_.memory_soft_fraction);
      const uint64_t trim =
          Watermark(w.spec.max_memory_nodes, config_.memory_trim_fraction);
      const uint64_t hard =
          Watermark(w.spec.max_memory_nodes, config_.memory_hard_fraction);
      if (w.memory_stage < 1 && soft > 0 && memory >= soft) {
        w.memory_stage = 1;
        if (w.spec.memory_relief) w.spec.memory_relief();
        memory_reliefs_.fetch_add(1, std::memory_order_relaxed);
        if (metrics_ != nullptr) {
          metrics_->GetCounter("supervisor.memory_reliefs").Increment();
        }
        if (trace_ != nullptr) {
          trace_->EmitInstant(obs::TraceCategory::kFault,
                              "supervisor.memory_relief", "nodes",
                              static_cast<int64_t>(memory));
        }
      }
      if (w.memory_stage < 2 && trim > 0 && memory >= trim) {
        w.memory_stage = 2;
        if (w.spec.width_pressure != nullptr) {
          w.spec.width_pressure->fetch_add(1, std::memory_order_relaxed);
        }
        width_trims_.fetch_add(1, std::memory_order_relaxed);
        if (metrics_ != nullptr) {
          metrics_->GetCounter("supervisor.width_trims").Increment();
        }
        if (trace_ != nullptr) {
          trace_->EmitInstant(obs::TraceCategory::kFault,
                              "supervisor.width_trim", "nodes",
                              static_cast<int64_t>(memory));
        }
      }
      if (w.memory_stage < 3 && hard > 0 && memory >= hard) {
        w.memory_stage = 3;
        w.preempted = PreemptReason::kMemory;
        w.spec.preempt->Cancel();
        memory_preemptions_.fetch_add(1, std::memory_order_relaxed);
        if (metrics_ != nullptr) {
          metrics_->GetCounter("supervisor.memory_preemptions").Increment();
        }
        if (trace_ != nullptr) {
          trace_->EmitInstant(obs::TraceCategory::kFault,
                              "supervisor.memory_preempt", "nodes",
                              static_cast<int64_t>(memory));
        }
        continue;
      }
    }

    // Liveness: any movement of the beat or progress counters resets the
    // stall clock; silence past the window preempts the rung.
    if (beats != w.last_beats || states != w.last_states) {
      w.last_beats = beats;
      w.last_states = states;
      w.last_progress = now;
      continue;
    }
    if (now - w.last_progress >= window) {
      w.preempted = PreemptReason::kStall;
      w.spec.preempt->Cancel();
      stall_preemptions_.fetch_add(1, std::memory_order_relaxed);
      if (metrics_ != nullptr) {
        metrics_->GetCounter("supervisor.stall_preemptions").Increment();
      }
      if (trace_ != nullptr) {
        trace_->EmitInstant(obs::TraceCategory::kFault, "supervisor.stall",
                            "beats", static_cast<int64_t>(beats), "states",
                            static_cast<int64_t>(states));
      }
    }
  }
}

}  // namespace tupelo::runtime
