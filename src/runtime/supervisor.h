#ifndef TUPELO_RUNTIME_SUPERVISOR_H_
#define TUPELO_RUNTIME_SUPERVISOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "search/search_types.h"

namespace tupelo::runtime {

// The self-healing supervision layer: one watchdog thread that watches
// the liveness and memory pressure of running search rungs and intervenes
// mid-flight instead of letting a run die at deadline expiry.
//
// How it connects to the search runtime:
//
//  * Liveness. Every supervised rung gets a HeartbeatSlot
//    (search/search_types.h). The search stamps it from the BudgetGuard's
//    amortized poll tick, and the thread pool bumps its `beats` once per
//    task — both relaxed atomic writes the hot path was effectively
//    already paying. The watchdog samples the slot every `tick_millis`;
//    if neither `beats` nor `states` has moved for `stall_window_millis`
//    the rung is declared hung (a wedged Expand, an injected delay, a
//    deadlock) and its preempt CancelToken is cancelled. The rung
//    returns kCancelled promptly; the driver (core/tupelo.cc) reads the
//    sticky PreemptReason, rewrites the stop to kStalled, and either
//    retries the rung with exponential backoff (transient faults) or
//    advances the degradation ladder.
//
//  * Memory. When a watch declares `max_memory_nodes`, the watchdog
//    stages degradation against watermark fractions of that bound
//    instead of letting the BudgetGuard trip a hard kMemory:
//      soft  (memory_soft_fraction)  -> run the watch's `memory_relief`
//                                       callback (shrink the Expand LRU
//                                       and estimate caches);
//      trim  (memory_trim_fraction)  -> raise `width_pressure`, halving
//                                       the effective beam width;
//      hard  (memory_hard_fraction)  -> preempt the rung (PreemptReason
//                                       kMemory; the driver degrades to
//                                       the next rung).
//    Stages only move forward within one watch; each transition fires at
//    most once per attempt.
//
// Every intervention increments a supervisor.* counter and emits a
// kFault trace instant, so an armed flight recorder dumps the run's last
// events around the intervention (docs/OBSERVABILITY.md).
//
// Watch/Unwatch are cheap and mutex-guarded; the watchdog holds the same
// mutex during a tick. Preemption state is sticky until Unwatch, so the
// driver can interrogate why a rung stopped after it returns.

// Knobs for Tupelo::Discover's supervised mode (TupeloOptions::supervisor)
// and for standalone Supervisor users. Defaults favour interactive runs:
// a 500 ms stall window preempts a hung rung within about half a second.
struct SupervisorConfig {
  // Master switch for TupeloOptions; a constructed Supervisor is always
  // active regardless (callers gate construction on this).
  bool enabled = false;
  // Watchdog sampling period.
  int64_t tick_millis = 20;
  // No heartbeat/progress for this long => the rung is hung.
  int64_t stall_window_millis = 500;
  // Memory watermarks, as fractions of the watch's max_memory_nodes.
  double memory_soft_fraction = 0.70;
  double memory_trim_fraction = 0.85;
  double memory_hard_fraction = 0.95;
  // Stall-preempted rungs are retried this many times before the ladder
  // advances; the pause before retry i doubles each time.
  int max_rung_retries = 1;
  int64_t retry_backoff_millis = 20;
  // Bound on the poison-state denylist (see StateQuarantine).
  size_t quarantine_capacity = 1024;
};

// Why the supervisor cancelled a watch's preempt token (kNone: it did
// not).
enum class PreemptReason { kNone, kStall, kMemory };

inline const char* PreemptReasonName(PreemptReason reason) {
  switch (reason) {
    case PreemptReason::kNone:
      return "none";
    case PreemptReason::kStall:
      return "stall";
    case PreemptReason::kMemory:
      return "memory";
  }
  return "unknown";
}

// One supervised activity. `heartbeat` and `preempt` are required and
// must outlive the watch (Watch .. Unwatch). `memory_relief` may be
// called from the watchdog thread concurrently with the search and must
// be thread-safe (MappingProblem::TrimCaches is).
struct WatchSpec {
  const HeartbeatSlot* heartbeat = nullptr;
  CancelToken* preempt = nullptr;
  uint64_t max_memory_nodes = 0;  // 0 = no memory staging for this watch
  std::function<void()> memory_relief;
  std::atomic<uint32_t>* width_pressure = nullptr;
  const char* label = "";  // string literal; lands in trace instants
};

class Supervisor {
 public:
  explicit Supervisor(const SupervisorConfig& config,
                      obs::MetricRegistry* metrics = nullptr,
                      obs::TraceSession* trace = nullptr);
  ~Supervisor();  // stops and joins the watchdog thread

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  // Registers an activity; returns its watch id. Invalid specs (missing
  // heartbeat or preempt token) return -1 and are ignored.
  int64_t Watch(WatchSpec spec);

  // Deregisters; the id's sticky preemption state is discarded.
  void Unwatch(int64_t id);

  // Sticky: why this watch was preempted (kNone while healthy). Valid
  // from Watch until Unwatch.
  PreemptReason preemption(int64_t id) const;

  // Lifetime totals across all watches.
  uint64_t stall_preemptions() const {
    return stall_preemptions_.load(std::memory_order_relaxed);
  }
  uint64_t memory_reliefs() const {
    return memory_reliefs_.load(std::memory_order_relaxed);
  }
  uint64_t width_trims() const {
    return width_trims_.load(std::memory_order_relaxed);
  }
  uint64_t memory_preemptions() const {
    return memory_preemptions_.load(std::memory_order_relaxed);
  }

  const SupervisorConfig& config() const { return config_; }

 private:
  struct Watched {
    int64_t id = 0;
    WatchSpec spec;
    uint64_t last_beats = 0;
    uint64_t last_states = 0;
    std::chrono::steady_clock::time_point last_progress;
    PreemptReason preempted = PreemptReason::kNone;
    int memory_stage = 0;  // 0 none, 1 relieved, 2 width-trimmed, 3 hard
  };

  void Loop();
  void TickLocked(std::chrono::steady_clock::time_point now);

  const SupervisorConfig config_;
  obs::MetricRegistry* metrics_;
  obs::TraceSession* trace_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  int64_t next_id_ = 1;
  std::vector<Watched> watches_;

  std::atomic<uint64_t> stall_preemptions_{0};
  std::atomic<uint64_t> memory_reliefs_{0};
  std::atomic<uint64_t> width_trims_{0};
  std::atomic<uint64_t> memory_preemptions_{0};

  std::thread watchdog_;  // last member: started after everything above
};

}  // namespace tupelo::runtime

#endif  // TUPELO_RUNTIME_SUPERVISOR_H_
