#ifndef TUPELO_COMMON_STRING_UTIL_H_
#define TUPELO_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace tupelo {

// Splits `input` on `sep`, keeping empty fields. Splitting "" yields {""}.
std::vector<std::string> Split(std::string_view input, char sep);

// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Removes ASCII whitespace from both ends.
std::string_view StripAsciiWhitespace(std::string_view s);

// True if `s` consists of an optional sign followed by one or more digits.
bool IsInteger(std::string_view s);

// True if `s` parses as a decimal number (integer or with a fraction part).
bool IsNumber(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Lowercases ASCII characters.
std::string AsciiToLower(std::string_view s);

// Escapes `s` for embedding in the .tdb text format / expression syntax:
// backslash-escapes '\\', '"', '\n', '\t'. Quote() wraps in double quotes.
std::string Escape(std::string_view s);
std::string Quote(std::string_view s);

}  // namespace tupelo

#endif  // TUPELO_COMMON_STRING_UTIL_H_
