#include "common/thread_pool.h"

#include <utility>

namespace tupelo {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      // Drain the queue even under shutdown: a submitted task may hold a
      // WaitGroup::Done the caller is blocked on.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    TaskTraceHook* hook = trace_hook_.load(std::memory_order_acquire);
    if (hook != nullptr) hook->OnTaskBegin();
    try {
      task();
    } catch (...) {
      // Last-resort poison backstop: a throwing task loses its own work
      // but must not kill the worker thread (and with it the process).
      task_exceptions_.fetch_add(1, std::memory_order_relaxed);
    }
    if (hook != nullptr) hook->OnTaskEnd();
    if (std::atomic<uint64_t>* beats =
            task_heartbeat_.load(std::memory_order_acquire)) {
      beats->fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void WaitGroup::Add(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  outstanding_ += n;
}

void WaitGroup::Done() {
  // The notify must happen under the lock: the waiter is free to destroy
  // the WaitGroup as soon as Wait returns, and Wait can only return after
  // this mutex is released — a notify after unlock would touch a possibly
  // dead condition variable.
  std::lock_guard<std::mutex> lock(mu_);
  outstanding_ -= 1;
  if (outstanding_ == 0) cv_.notify_all();
}

void WaitGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return outstanding_ == 0; });
}

}  // namespace tupelo
