#include "common/simd/dispatch.h"

#include <atomic>
#include <cstdlib>

namespace tupelo::simd {
namespace {

#if defined(__x86_64__) || defined(_M_X64)
#define TUPELO_SIMD_X86 1
#endif

Level ProbeCpu() {
#if defined(TUPELO_SIMD_X86) && defined(__GNUC__)
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return Level::kSse42;
#endif
  return Level::kScalar;
}

Level Clamp(Level requested, Level detected) {
  return static_cast<int>(requested) <= static_cast<int>(detected) ? requested
                                                                   : detected;
}

Level ResolveActive() {
  Level detected = DetectedLevel();
  const char* env = std::getenv("TUPELO_SIMD");
  if (env != nullptr && *env != '\0') {
    if (std::optional<Level> requested = ParseLevelName(env)) {
      return Clamp(*requested, detected);
    }
  }
  return detected;
}

// -1 until first resolution; ForceLevelForTesting stores directly.
std::atomic<int> g_active{-1};

}  // namespace

std::string_view LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse42:
      return "sse42";
    case Level::kAvx2:
      return "avx2";
  }
  return "scalar";
}

std::optional<Level> ParseLevelName(std::string_view name) {
  if (name == "scalar") return Level::kScalar;
  if (name == "sse42") return Level::kSse42;
  if (name == "avx2") return Level::kAvx2;
  return std::nullopt;
}

Level DetectedLevel() {
  static const Level detected = ProbeCpu();
  return detected;
}

Level ActiveLevel() {
  int level = g_active.load(std::memory_order_relaxed);
  if (level < 0) {
    level = static_cast<int>(ResolveActive());
    // A racing first call resolves the same value; last store wins.
    g_active.store(level, std::memory_order_relaxed);
  }
  return static_cast<Level>(level);
}

Level ForceLevelForTesting(Level level) {
  Level installed = Clamp(level, DetectedLevel());
  g_active.store(static_cast<int>(installed), std::memory_order_relaxed);
  return installed;
}

}  // namespace tupelo::simd
