#include "common/simd/term_merge.h"

#include <algorithm>

#include "common/simd/dispatch.h"
#include "common/simd/simd_internal.h"

namespace tupelo::simd {
namespace {

// Both merges share one shape: advance two cursors through sorted unique
// key arrays, fold matched pairs through Op. Runs of unmatched keys are
// skipped with LowerBoundKey, so a merge of a small vector against a
// large one costs roughly the small side plus the scans — the common
// case in search, where a state differs from the fixed target in a
// handful of terms.
template <typename Op>
double MergeFold(const uint64_t* xk, const double* xc, size_t nx,
                 const uint64_t* yk, const double* yc, size_t ny, Op op) {
  double acc = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < nx && j < ny) {
    const uint64_t kx = xk[i];
    const uint64_t ky = yk[j];
    if (kx == ky) {
      acc += op(xc[i], yc[j]);
      ++i;
      ++j;
    } else if (kx < ky) {
      i += LowerBoundKey(xk + i, nx - i, ky);
    } else {
      j += LowerBoundKey(yk + j, ny - j, kx);
    }
  }
  return acc;
}

// Below these sizes the wide kernels lose to the plain loops on setup
// and reduction overhead (measured via BM_TermVectorMerge: small search
// states produce vectors of a few dozen coordinates, and the skip-ahead
// calls LowerBoundKey on even shorter remaining spans). The cutoff only
// picks which of two bit-identical implementations runs, so it cannot
// affect results.
constexpr size_t kMinAvx2Sum = 32;
constexpr size_t kMinAvx2LowerBound = 32;

}  // namespace

double CountSum(const double* c, size_t n) {
#if defined(TUPELO_SIMD_HAVE_AVX2_TU)
  if (n >= kMinAvx2Sum && ActiveLevel() >= Level::kAvx2) {
    return internal::SumAvx2(c, n);
  }
#endif
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += c[i];
  return sum;
}

double CountSumSquares(const double* c, size_t n) {
#if defined(TUPELO_SIMD_HAVE_AVX2_TU)
  if (n >= kMinAvx2Sum && ActiveLevel() >= Level::kAvx2) {
    return internal::SumSquaresAvx2(c, n);
  }
#endif
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += c[i] * c[i];
  return sum;
}

size_t LowerBoundKey(const uint64_t* keys, size_t n, uint64_t key) {
#if defined(TUPELO_SIMD_HAVE_AVX2_TU)
  if (n >= kMinAvx2LowerBound && ActiveLevel() >= Level::kAvx2) {
    return internal::LowerBoundAvx2(keys, n, key);
  }
#endif
  size_t i = 0;
  while (i < n && keys[i] < key) ++i;
  return i;
}

double DotMerge(const uint64_t* xk, const double* xc, size_t nx,
                const uint64_t* yk, const double* yc, size_t ny) {
  return MergeFold(xk, xc, nx, yk, yc, ny,
                   [](double x, double y) { return x * y; });
}

double MinSumMerge(const uint64_t* xk, const double* xc, size_t nx,
                   const uint64_t* yk, const double* yc, size_t ny) {
  return MergeFold(xk, xc, nx, yk, yc, ny,
                   [](double x, double y) { return std::min(x, y); });
}

}  // namespace tupelo::simd
