#ifndef TUPELO_COMMON_SIMD_TERM_MERGE_H_
#define TUPELO_COMMON_SIMD_TERM_MERGE_H_

#include <cstddef>
#include <cstdint>

namespace tupelo::simd {

// Merge and reduction kernels over the flat term-vector representation:
// sorted unique u64 key arrays with parallel count arrays. Counts are
// occurrence counts — integer-valued doubles — so every kernel here is
// exact: any association of integer sums below 2^53 produces the same
// double, which is what lets the AVX2 lanes return bit-identical results
// to the scalar loops (pinned by tests/simd_test.cc).

// Σ c[i].
double CountSum(const double* c, size_t n);

// Σ c[i]².
double CountSumSquares(const double* c, size_t n);

// Index of the first element of sorted keys[0..n) >= key (unsigned
// order); n if none. The skip-ahead primitive of the merges, 4 keys per
// step at avx2.
size_t LowerBoundKey(const uint64_t* keys, size_t n, uint64_t key);

// Σ xc[i]·yc[j] over key matches of two sorted unique key arrays.
double DotMerge(const uint64_t* xk, const double* xc, size_t nx,
                const uint64_t* yk, const double* yc, size_t ny);

// Σ min(xc[i], yc[j]) over key matches.
double MinSumMerge(const uint64_t* xk, const double* xc, size_t nx,
                   const uint64_t* yk, const double* yc, size_t ny);

}  // namespace tupelo::simd

#endif  // TUPELO_COMMON_SIMD_TERM_MERGE_H_
