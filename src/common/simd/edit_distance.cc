#include "common/simd/edit_distance.h"

#include <algorithm>
#include <numeric>

#include "common/simd/dispatch.h"
#include "common/simd/simd_internal.h"

namespace tupelo::simd {
namespace {

// Myers 1999 bit-parallel DP in its global-alignment form (Hyyrö's
// formulation): pattern rows live in 64-bit vertical delta vectors
// Pv/Mv, one column per text character. The `| 1` fed into Ph after the
// shift is the D[0][j] = j boundary — each column enters with a +1
// horizontal delta at row 0, which is what turns the approximate-match
// recurrence into plain edit distance.
size_t Myers64(size_t m, const uint64_t peq[256], std::string_view text) {
  uint64_t pv = ~uint64_t{0};
  uint64_t mv = 0;
  size_t score = m;
  const uint64_t last = uint64_t{1} << (m - 1);
  for (unsigned char c : text) {
    uint64_t eq = peq[c];
    uint64_t xv = eq | mv;
    uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
    uint64_t ph = mv | ~(xh | pv);
    uint64_t mh = pv & xh;
    if (ph & last) {
      ++score;
    } else if (mh & last) {
      --score;
    }
    ph = (ph << 1) | 1;
    mh <<= 1;
    pv = mh | ~(xv | ph);
    mv = ph & xv;
  }
  return score;
}

// Blocked Myers for patterns longer than 64 rows: W = ceil(m/64) blocks
// per column, processed low block to high with a carry hin/hout in
// {-1, 0, +1} between them. The score is tracked at the true last row's
// bit, (m-1) % 64 of the top block, read before the shift; bits above it
// in a partial top block are garbage but harmless — the addition and the
// shifts only carry upward, and the top block's hout is never used.
size_t MyersBlocked(std::string_view pattern, std::string_view text,
                    size_t blocks, const uint64_t* peq) {
  const size_t m = pattern.size();
  const size_t w = blocks;
  std::vector<uint64_t> pv(w, ~uint64_t{0});
  std::vector<uint64_t> mv(w, 0);
  size_t score = m;
  const size_t last_bit = (m - 1) % 64;
  for (unsigned char c : text) {
    const uint64_t* eq_col = peq + static_cast<size_t>(c) * w;
    int hin = 1;  // D[0][j] - D[0][j-1] = +1: global alignment boundary
    for (size_t b = 0; b < w; ++b) {
      uint64_t eq = eq_col[b];
      uint64_t pvb = pv[b];
      uint64_t mvb = mv[b];
      uint64_t xv = eq | mvb;
      if (hin < 0) eq |= 1;
      uint64_t xh = (((eq & pvb) + pvb) ^ pvb) | eq;
      uint64_t ph = mvb | ~(xh | pvb);
      uint64_t mh = pvb & xh;
      if (b == w - 1) {
        if ((ph >> last_bit) & 1) {
          ++score;
        } else if ((mh >> last_bit) & 1) {
          --score;
        }
      }
      int hout = 0;
      if (ph >> 63) {
        hout = 1;
      } else if (mh >> 63) {
        hout = -1;
      }
      ph <<= 1;
      mh <<= 1;
      if (hin > 0) {
        ph |= 1;
      } else if (hin < 0) {
        mh |= 1;
      }
      pv[b] = mh | ~(xv | ph);
      mv[b] = ph & xv;
      hin = hout;
    }
  }
  return score;
}

// peq[c] for a single-word pattern (m <= 64).
void BuildPeq64(std::string_view pattern, uint64_t peq[256]) {
  std::fill(peq, peq + 256, 0);
  for (size_t i = 0; i < pattern.size(); ++i) {
    peq[static_cast<unsigned char>(pattern[i])] |= uint64_t{1} << i;
  }
}

void BuildPeq(std::string_view pattern, size_t blocks,
              std::vector<uint64_t>& peq) {
  peq.assign(blocks * 256, 0);
  for (size_t i = 0; i < pattern.size(); ++i) {
    peq[static_cast<size_t>(static_cast<unsigned char>(pattern[i])) * blocks +
        i / 64] |= uint64_t{1} << (i % 64);
  }
}

size_t CommonPrefix(std::string_view a, std::string_view b) {
  const size_t n = std::min(a.size(), b.size());
#if defined(TUPELO_SIMD_HAVE_AVX2_TU)
  if (ActiveLevel() >= Level::kAvx2) {
    return internal::CommonPrefixAvx2(a.data(), b.data(), n);
  }
#endif
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

size_t CommonSuffix(std::string_view a, std::string_view b) {
  const size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[a.size() - 1 - i] == b[b.size() - 1 - i]) ++i;
  return i;
}

// Myers over already-trimmed strings. The shorter string is the pattern
// when it fits one word; otherwise whichever side minimizes work
// (ceil(|pattern|/64) blocks x |text| columns — rounding to whole words
// can favor either side).
size_t MyersDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return b.size();
  if (a.size() <= 64) {
    uint64_t peq[256];
    BuildPeq64(a, peq);
    return Myers64(a.size(), peq, b);
  }
  const size_t blocks_a = (a.size() + 63) / 64;
  const size_t blocks_b = (b.size() + 63) / 64;
  std::string_view pattern = blocks_b * a.size() <= blocks_a * b.size() ? b : a;
  std::string_view text = pattern.data() == b.data() ? a : b;
  const size_t blocks = (pattern.size() + 63) / 64;
  std::vector<uint64_t> peq;
  BuildPeq(pattern, blocks, peq);
  return MyersBlocked(pattern, text, blocks, peq.data());
}

}  // namespace

size_t EditDistanceScalar(std::string_view a, std::string_view b) {
  // Keep the shorter string in the DP row.
  if (a.size() < b.size()) std::swap(a, b);
  if (b.empty()) return a.size();

  std::vector<size_t> row(b.size() + 1);
  std::iota(row.begin(), row.end(), size_t{0});

  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diagonal = row[0];  // row[j-1] of the previous row
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t up = row[j];
      size_t substitute = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({up + 1,          // delete from a
                         row[j - 1] + 1,  // insert into a
                         substitute});
      diagonal = up;
    }
  }
  return row[b.size()];
}

size_t EditDistance(std::string_view a, std::string_view b) {
  if (ActiveLevel() == Level::kScalar) return EditDistanceScalar(a, b);
  // Common prefix/suffix contribute no edits; trimming them shrinks the
  // DP without changing the distance.
  const size_t prefix = CommonPrefix(a, b);
  a.remove_prefix(prefix);
  b.remove_prefix(prefix);
  const size_t suffix = CommonSuffix(a, b);
  a.remove_suffix(suffix);
  b.remove_suffix(suffix);
  return MyersDistance(a, b);
}

PreparedPattern::PreparedPattern(std::string pattern)
    : pattern_(std::move(pattern)) {
  if (pattern_.empty()) return;
  if (pattern_.size() <= 64) {
    blocks_ = 1;
    peq_.assign(256, 0);
    BuildPeq64(pattern_, peq_.data());
  } else {
    blocks_ = (pattern_.size() + 63) / 64;
    BuildPeq(pattern_, blocks_, peq_);
  }
}

size_t PreparedPattern::Distance(std::string_view text) const {
  if (ActiveLevel() == Level::kScalar) {
    return EditDistanceScalar(pattern_, text);
  }
  if (pattern_.empty()) return text.size();
  if (text.empty()) return pattern_.size();
  if (pattern_.size() <= 64) return Myers64(pattern_.size(), peq_.data(), text);
  return MyersBlocked(pattern_, text, blocks_, peq_.data());
}

}  // namespace tupelo::simd
