#ifndef TUPELO_COMMON_SIMD_SIMD_INTERNAL_H_
#define TUPELO_COMMON_SIMD_SIMD_INTERNAL_H_

#include <cstddef>
#include <cstdint>

// AVX2 kernel bodies, compiled in their own translation unit
// (kernels_avx2.cc, built with -mavx2) so the rest of the library stays
// runnable on baseline x86-64. Callers must check ActiveLevel() >=
// Level::kAvx2 before entering — these execute AVX2 instructions
// unconditionally. On non-x86 builds the symbols do not exist and the
// call sites are compiled out behind the same architecture guard.

#if defined(__x86_64__) || defined(_M_X64)
#define TUPELO_SIMD_HAVE_AVX2_TU 1

namespace tupelo::simd::internal {

// Length of the common prefix of a[0..n) and b[0..n), 32 bytes per step.
size_t CommonPrefixAvx2(const char* a, const char* b, size_t n);

// One 4-stripe hash step per 32-byte block: s[i] = (s[i] ^ w[i]) * kPrime
// for the i-th little-endian u64 of each block. Must match the scalar
// stripe step in hash_kernels.cc exactly.
void HashBlocksAvx2(const unsigned char* data, size_t blocks, uint64_t s[4]);

// Σ c[i] and Σ c[i]² over integer-valued doubles. Lane sums stay exact
// (every partial sum is an integer below 2^53), so the result equals the
// scalar left-to-right loop bit-for-bit.
double SumAvx2(const double* c, size_t n);
double SumSquaresAvx2(const double* c, size_t n);

// Index of the first element of sorted keys[0..n) that is >= key
// (unsigned order), scanning 4 keys per step. Equivalent to a linear
// scan; used by the merge kernels to skip runs of unmatched keys.
size_t LowerBoundAvx2(const uint64_t* keys, size_t n, uint64_t key);

}  // namespace tupelo::simd::internal

#endif  // x86-64

#endif  // TUPELO_COMMON_SIMD_SIMD_INTERNAL_H_
