// HashBytes64: the dispatched bulk hash behind common/hash.h. One fixed
// function — four interleaved FNV-style stripes over 32-byte blocks,
// folded through Mix64 — with two implementations: a portable SWAR loop
// (scalar and sse42 tiers) and a 4-lane AVX2 stripe step. The function
// is seeded, so callers chain component hashes (seed = previous hash)
// the way term keys are built in heuristics/term_vector.cc.
//
// This is deliberately NOT byte-serial FNV-1a (common/hash.h): that
// recurrence carries a loop dependency per byte and cannot be
// vectorized. Canonical-format hashes that are persisted (checkpoint
// .tck checksums, Fnv1a state fingerprints) keep the old function;
// HashBytes64 is for in-memory keys where only self-consistency matters.

#include <cstring>

#include "common/hash.h"
#include "common/simd/dispatch.h"
#include "common/simd/simd_internal.h"

namespace tupelo {
namespace {

constexpr uint64_t kStripePrime = 0x100000001b3ULL;

// Distinct initial stripe states derived from the seed; the constants
// are arbitrary odd 64-bit values (digits of e and pi) so the four
// stripes start decorrelated even for seed 0.
inline void InitStripes(uint64_t seed, uint64_t s[4]) {
  s[0] = Mix64(seed ^ 0xa5a3ed4f2f1c0e95ULL);
  s[1] = Mix64(seed ^ 0x243f6a8885a308d3ULL);
  s[2] = Mix64(seed ^ 0x13198a2e03707344ULL);
  s[3] = Mix64(seed ^ 0x9216d5d98979fb1bULL);
}

inline uint64_t LoadLe64(const unsigned char* p) {
  uint64_t w;
  std::memcpy(&w, p, sizeof(w));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  w = __builtin_bswap64(w);
#endif
  return w;
}

// The portable stripe step over full 32-byte blocks. Each stripe eats
// the i-th u64 of the block: xor then multiply by an odd constant — a
// bijection in the word, so two inputs differing in one word never
// collide within a stripe step.
void HashBlocksScalar(const unsigned char* data, size_t blocks,
                      uint64_t s[4]) {
  for (size_t b = 0; b < blocks; ++b) {
    const unsigned char* p = data + 32 * b;
    s[0] = (s[0] ^ LoadLe64(p)) * kStripePrime;
    s[1] = (s[1] ^ LoadLe64(p + 8)) * kStripePrime;
    s[2] = (s[2] ^ LoadLe64(p + 16)) * kStripePrime;
    s[3] = (s[3] ^ LoadLe64(p + 24)) * kStripePrime;
  }
}

}  // namespace

uint64_t HashBytes64(std::string_view bytes, uint64_t seed) {
  uint64_t s[4];
  InitStripes(seed, s);

  const unsigned char* data =
      reinterpret_cast<const unsigned char*>(bytes.data());
  const size_t n = bytes.size();
  const size_t blocks = n / 32;

#if defined(TUPELO_SIMD_HAVE_AVX2_TU)
  if (simd::ActiveLevel() >= simd::Level::kAvx2) {
    simd::internal::HashBlocksAvx2(data, blocks, s);
  } else {
    HashBlocksScalar(data, blocks, s);
  }
#else
  HashBlocksScalar(data, blocks, s);
#endif

  // Tail: zero-pad the final partial block and run one more stripe step.
  // The length fold below keeps "a" and "a\0" distinct.
  const size_t rem = n - 32 * blocks;
  if (rem > 0) {
    unsigned char tail[32] = {0};
    std::memcpy(tail, data + 32 * blocks, rem);
    HashBlocksScalar(tail, 1, s);
  }

  uint64_t h = seed ^ Mix64(s[0]);
  h = HashChain(h, s[1]);
  h = HashChain(h, s[2]);
  h = HashChain(h, s[3]);
  return Mix64(h ^ static_cast<uint64_t>(n));
}

}  // namespace tupelo
