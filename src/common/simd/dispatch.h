#ifndef TUPELO_COMMON_SIMD_DISPATCH_H_
#define TUPELO_COMMON_SIMD_DISPATCH_H_

#include <optional>
#include <string_view>

namespace tupelo::simd {

// CPU capability tiers for the kernel layer. Levels are cumulative: a
// tier implies everything below it.
//
//   kScalar  portable reference code — the byte-at-a-time DP loop, the
//            word-serial hash, plain merge loops. This is the path the
//            differential tests and the Sanitize/TSan lanes pin, and the
//            path every other tier must agree with bit-for-bit.
//   kSse42   word-parallel kernels with no wide intrinsics: Myers
//            bit-parallel edit distance (single-word and blocked) and
//            the SWAR 4-stripe hash. Runs on any x86-64.
//   kAvx2    adds the 256-bit paths: 4-lane hash stripes, vectorized
//            count sums, 32-byte prefix trims, and 4-wide key scans in
//            the term-vector merges.
//
// Every kernel computes the same function at every level — the tiers
// change instruction selection, never results. Integer outputs (edit
// distances, hashes) are equal by definition; floating-point outputs
// stay bit-identical because the term-vector kernels only ever sum and
// multiply integer-valued doubles (exact at any association) and leave
// order-sensitive arithmetic on the scalar path.
enum class Level : int {
  kScalar = 0,
  kSse42 = 1,
  kAvx2 = 2,
};

// "scalar", "sse42", "avx2".
std::string_view LevelName(Level level);

// Inverse of LevelName; nullopt for anything else.
std::optional<Level> ParseLevelName(std::string_view name);

// Highest tier the running CPU supports, probed once.
Level DetectedLevel();

// The tier kernels dispatch on: DetectedLevel() clamped by the
// TUPELO_SIMD environment variable ("scalar" pins the reference path for
// sanitizer lanes and differential tests; an unknown or empty value is
// ignored). Resolved once at first use and cached.
Level ActiveLevel();

// Test hook: overrides ActiveLevel(), clamped to DetectedLevel() (forcing
// avx2 on a CPU without it silently yields the detected tier). Returns
// the level actually installed. Differential tests flip this between
// kernels runs; it is an atomic store, safe against concurrent readers.
Level ForceLevelForTesting(Level level);

}  // namespace tupelo::simd

#endif  // TUPELO_COMMON_SIMD_DISPATCH_H_
