#ifndef TUPELO_COMMON_SIMD_EDIT_DISTANCE_H_
#define TUPELO_COMMON_SIMD_EDIT_DISTANCE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tupelo::simd {

// Reference Levenshtein: the classic single-row DP loop, byte at a time.
// This is the TUPELO_SIMD=scalar path and the oracle the differential
// tests compare every other tier against.
size_t EditDistanceScalar(std::string_view a, std::string_view b);

// Dispatched Levenshtein. At Level::kScalar this IS EditDistanceScalar;
// above it, common prefix/suffix trimming (32-byte vectorized at avx2)
// followed by Myers bit-parallel DP — single-word when the shorter
// string fits 64 characters, blocked (Hyyrö's algorithm, 64 pattern rows
// per word with ±1 carries between blocks) otherwise. Edit distance is
// an integer, so every tier returns exactly the same value.
size_t EditDistance(std::string_view a, std::string_view b);

// A pattern fixed across many distance calls — the shape of the
// Levenshtein heuristic, where the target TNF string never changes and
// every state string is compared against it. Precomputes the per-block
// match masks (Peq) once; Distance() then runs Myers directly, skipping
// the per-call table build. At Level::kScalar, Distance() routes to
// EditDistanceScalar so the pinned-fallback contract holds end to end.
class PreparedPattern {
 public:
  explicit PreparedPattern(std::string pattern);

  const std::string& pattern() const { return pattern_; }

  size_t Distance(std::string_view text) const;

 private:
  std::string pattern_;
  size_t blocks_ = 0;
  // peq_[c * blocks_ + b]: match mask of pattern rows [64b, 64b+63] for
  // byte value c.
  std::vector<uint64_t> peq_;
};

}  // namespace tupelo::simd

#endif  // TUPELO_COMMON_SIMD_EDIT_DISTANCE_H_
