// AVX2 kernel bodies. This is the only translation unit compiled with
// -mavx2 (see src/CMakeLists.txt); everything here runs only after the
// dispatcher has verified AVX2 support at runtime. Each kernel computes
// exactly the same function as its scalar twin in hash_kernels.cc /
// term_merge.cc / edit_distance.cc — the differential suite in
// tests/simd_test.cc holds them to bit-for-bit agreement.

#include "common/simd/simd_internal.h"

#if defined(TUPELO_SIMD_HAVE_AVX2_TU)

#include <immintrin.h>

namespace tupelo::simd::internal {
namespace {

// Low 64 bits of a 64x64 multiply per lane, from 32x32->64 pieces:
// lo64(a*b) = lo(a)*lo(b) + ((lo(a)*hi(b) + hi(a)*lo(b)) << 32).
inline __m256i MulLo64(__m256i a, __m256i b) {
  __m256i a_hi = _mm256_srli_epi64(a, 32);
  __m256i b_hi = _mm256_srli_epi64(b, 32);
  __m256i ll = _mm256_mul_epu32(a, b);
  __m256i lh = _mm256_mul_epu32(a, b_hi);
  __m256i hl = _mm256_mul_epu32(a_hi, b);
  __m256i cross = _mm256_slli_epi64(_mm256_add_epi64(lh, hl), 32);
  return _mm256_add_epi64(ll, cross);
}

}  // namespace

size_t CommonPrefixAvx2(const char* a, const char* b, size_t n) {
  size_t i = 0;
  while (i + 32 <= n) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    unsigned eq = static_cast<unsigned>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)));
    if (eq != 0xffffffffu) {
      return i + static_cast<size_t>(__builtin_ctz(~eq));
    }
    i += 32;
  }
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

void HashBlocksAvx2(const unsigned char* data, size_t blocks, uint64_t s[4]) {
  constexpr uint64_t kPrime = 0x100000001b3ULL;
  __m256i acc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s));
  __m256i prime = _mm256_set1_epi64x(static_cast<long long>(kPrime));
  for (size_t b = 0; b < blocks; ++b) {
    __m256i w =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + 32 * b));
    acc = MulLo64(_mm256_xor_si256(acc, w), prime);
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(s), acc);
}

double SumAvx2(const double* c, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(c + i));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) sum += c[i];
  return sum;
}

double SumSquaresAvx2(const double* c, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d v = _mm256_loadu_pd(c + i);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(v, v));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) sum += c[i] * c[i];
  return sum;
}

size_t LowerBoundAvx2(const uint64_t* keys, size_t n, uint64_t key) {
  // _mm256_cmpgt_epi64 is signed; flipping the sign bit maps unsigned
  // order onto signed order.
  const __m256i bias = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL));
  const __m256i needle = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<long long>(key)), bias);
  size_t i = 0;
  while (i + 4 <= n) {
    __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + i));
    // lane mask: keys[i+lane] < key  <=>  needle > biased key
    __m256i lt = _mm256_cmpgt_epi64(needle, _mm256_xor_si256(v, bias));
    unsigned mask = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(lt)));
    if (mask != 0xfu) {
      return i + static_cast<size_t>(__builtin_ctz(~mask & 0xfu));
    }
    i += 4;
  }
  while (i < n && keys[i] < key) ++i;
  return i;
}

}  // namespace tupelo::simd::internal

#endif  // TUPELO_SIMD_HAVE_AVX2_TU
