#ifndef TUPELO_COMMON_HASH_H_
#define TUPELO_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

namespace tupelo {

// Mixes `value`'s hash into `seed` (boost::hash_combine recipe, 64-bit).
template <typename T>
void HashCombine(size_t* seed, const T& value) {
  *seed ^= std::hash<T>{}(value) + 0x9e3779b97f4a7c15ULL + (*seed << 6) +
           (*seed >> 2);
}

// FNV-1a over a byte string; stable across runs (unlike std::hash, which is
// allowed to be per-process salted). Used for canonical state fingerprints.
inline uint64_t Fnv1a(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace tupelo

#endif  // TUPELO_COMMON_HASH_H_
