#ifndef TUPELO_COMMON_HASH_H_
#define TUPELO_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

namespace tupelo {

// Mixes `value`'s hash into `seed` (boost::hash_combine recipe, 64-bit).
template <typename T>
void HashCombine(size_t* seed, const T& value) {
  *seed ^= std::hash<T>{}(value) + 0x9e3779b97f4a7c15ULL + (*seed << 6) +
           (*seed >> 2);
}

// FNV-1a over a byte string; stable across runs (unlike std::hash, which is
// allowed to be per-process salted). Used for canonical state fingerprints.
inline uint64_t Fnv1a(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// FNV-1a with a caller-chosen basis, for independent hash lanes. Distinct
// seeds give hash functions whose collisions are unrelated, which is what
// makes a 128-bit two-lane fingerprint trustworthy as an identity.
inline uint64_t Fnv1aSeeded(std::string_view bytes, uint64_t seed) {
  uint64_t h = seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Seeded bulk hash for in-memory keys (term keys, transient indexes):
// four interleaved FNV-style stripes over 32-byte blocks, folded through
// Mix64. One fixed function with two implementations — a portable SWAR
// loop and a 4-lane AVX2 stripe step — dispatched at runtime by the
// common/simd layer; both return identical values (see simd/dispatch.h).
// Chain components by feeding one call's result as the next call's seed.
// NOT a replacement for Fnv1a/Fnv1aSeeded where the byte-serial
// recurrence is part of a persisted format (checkpoint checksums,
// canonical state fingerprints). Implemented in simd/hash_kernels.cc.
uint64_t HashBytes64(std::string_view bytes, uint64_t seed);

// splitmix64 finalizer: a cheap full-avalanche bijection. Applied before
// commutative (wrapping-sum) combines so that structured inputs do not
// cancel each other out.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Sequential (order-sensitive) combine of a pre-mixed word into a running
// hash. FNV-style multiply keeps it cheap; Mix64 on the input keeps one
// low-entropy word from washing out the accumulator.
inline uint64_t HashChain(uint64_t h, uint64_t word) {
  return (h ^ Mix64(word)) * 0x100000001b3ULL;
}

// A 128-bit structural fingerprint: two independently seeded 64-bit lanes.
// Equality of both lanes is treated as state identity by the search-layer
// caches; a single 64-bit lane collides too easily once caches hold
// millions of distinct states (birthday bound ~2^32).
struct Fp128 {
  uint64_t lo = 0;
  uint64_t hi = 0;

  friend bool operator==(const Fp128&, const Fp128&) = default;

  // Commutative combine/uncombine: wrapping sums per lane, so a database
  // fingerprint can be updated incrementally as relations are put/removed.
  void Add(const Fp128& other) {
    lo += other.lo;
    hi += other.hi;
  }
  void Subtract(const Fp128& other) {
    lo -= other.lo;
    hi -= other.hi;
  }
};

// The two lane bases: the standard FNV offset basis and an arbitrary
// odd constant far from it (digits of phi), fed through Mix64 so the
// lanes start with unrelated bit patterns.
inline constexpr uint64_t kFpSeedLo = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFpSeedHi = 0x9e3779b97f4a7c15ULL;

struct Fp128Hash {
  size_t operator()(const Fp128& fp) const {
    return static_cast<size_t>(Mix64(fp.lo ^ Mix64(fp.hi)));
  }
};

}  // namespace tupelo

#endif  // TUPELO_COMMON_HASH_H_
