#include "common/string_util.h"

#include <cctype>

namespace tupelo {

std::vector<std::string> Split(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      return out;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool IsInteger(std::string_view s) {
  size_t i = 0;
  if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
  if (i >= s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

bool IsNumber(std::string_view s) {
  size_t i = 0;
  if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
  bool digits_before = false;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
    ++i;
    digits_before = true;
  }
  if (i == s.size()) return digits_before;
  if (s[i] != '.') return false;
  ++i;
  bool digits_after = false;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
    ++i;
    digits_after = true;
  }
  return i == s.size() && (digits_before || digits_after);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string Quote(std::string_view s) {
  return "\"" + Escape(s) + "\"";
}

}  // namespace tupelo
