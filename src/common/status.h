#ifndef TUPELO_COMMON_STATUS_H_
#define TUPELO_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace tupelo {

// Error categories used across the library. Modeled after the
// Arrow/RocksDB status idiom: the library does not throw exceptions;
// fallible operations return Status (or Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kParseError,
  kInternal,
};

// Returns a stable, human-readable name for a status code ("InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

// A cheap, copyable success-or-error value. The OK status carries no
// allocation; error statuses carry a code and a message.
class Status {
 public:
  // Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace tupelo

// Propagates a non-OK Status from an expression; usable in functions that
// return Status or Result<T> (Result converts from Status).
#define TUPELO_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::tupelo::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                      \
  } while (0)

// Evaluates a Result<T> expression, propagating errors, otherwise binding
// the unwrapped value to `lhs`. `lhs` may include a declaration.
#define TUPELO_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                                 \
  if (!var.ok()) return var.status();                 \
  lhs = std::move(var).value();

#define TUPELO_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define TUPELO_ASSIGN_OR_RETURN_CONCAT(x, y) \
  TUPELO_ASSIGN_OR_RETURN_CONCAT_(x, y)

#define TUPELO_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  TUPELO_ASSIGN_OR_RETURN_IMPL(                                              \
      TUPELO_ASSIGN_OR_RETURN_CONCAT(_tupelo_result_, __LINE__), lhs, rexpr)

#endif  // TUPELO_COMMON_STATUS_H_
