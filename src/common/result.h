#ifndef TUPELO_COMMON_RESULT_H_
#define TUPELO_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace tupelo {

// Result<T> holds either a value of type T or a non-OK Status, following
// the Arrow Result / absl::StatusOr idiom. Accessing value() on an error
// Result is a programming bug and asserts in debug builds.
template <typename T>
class Result {
 public:
  // Implicit construction from a value (success).
  Result(T value) : state_(std::move(value)) {}  // NOLINT(runtime/explicit)

  // Implicit construction from an error Status. Constructing a Result from
  // an OK status is a bug; it is converted to an Internal error.
  Result(Status status) : state_(std::move(status)) {  // NOLINT
    if (std::get<Status>(state_).ok()) {
      state_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(state_); }

  // Returns the status: OK if a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(state_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(state_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(state_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<Status, T> state_;
};

}  // namespace tupelo

#endif  // TUPELO_COMMON_RESULT_H_
