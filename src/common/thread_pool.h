#ifndef TUPELO_COMMON_THREAD_POOL_H_
#define TUPELO_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tupelo {

// A small work-sharing thread pool for the parallel search runtime.
//
// Design constraints (deliberately narrower than a general executor):
//  - No detached threads, ever: workers are joined in the destructor, so a
//    ThreadPool on the stack cannot outlive the state its tasks touch.
//  - Tasks are fire-and-forget closures; completion is tracked by the
//    caller with a WaitGroup (below), which keeps the queue free of
//    futures/promises and their allocation cost.
//  - Submit never blocks and never runs the task inline; a pool of size 0
//    is invalid (callers run sequentially instead of constructing one).
//
// Exceptions must not escape a task: the search layer communicates
// failure through Status/StopReason, and a throwing task would take the
// worker (and the process) down. Tasks are trusted to comply.
class ThreadPool {
 public:
  // Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();  // drains nothing: pending tasks still run, then joins

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  // Enqueues `task` for execution on some worker. Thread-safe.
  void Submit(std::function<void()> task);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

// Counts outstanding tasks so a caller can block until a batch completes:
//
//   WaitGroup wg;
//   wg.Add(items.size());
//   for (auto& item : items)
//     pool.Submit([&, &item] { Process(item); wg.Done(); });
//   wg.Wait();
//
// The level barrier of the parallel beam search is exactly this shape.
// Add may be called again after Wait returns (the group is reusable).
class WaitGroup {
 public:
  void Add(size_t n = 1);
  void Done();
  // Blocks until the count returns to zero. Spurious-wakeup safe.
  void Wait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t outstanding_ = 0;
};

}  // namespace tupelo

#endif  // TUPELO_COMMON_THREAD_POOL_H_
