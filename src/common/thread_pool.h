#ifndef TUPELO_COMMON_THREAD_POOL_H_
#define TUPELO_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tupelo {

// A small work-sharing thread pool for the parallel search runtime.
//
// Design constraints (deliberately narrower than a general executor):
//  - No detached threads, ever: workers are joined in the destructor, so a
//    ThreadPool on the stack cannot outlive the state its tasks touch.
//  - Tasks are fire-and-forget closures; completion is tracked by the
//    caller with a WaitGroup (below), which keeps the queue free of
//    futures/promises and their allocation cost.
//  - Submit never blocks and never runs the task inline; a pool of size 0
//    is invalid (callers run sequentially instead of constructing one).
//
// Per-task execution observer, called on the worker thread immediately
// around each task. The common layer cannot depend on obs/, so this is an
// abstract seam; obs::PoolTaskTracer (obs/trace.h) is the implementation
// that turns every pool task into a trace span on its worker's track.
// Implementations must be thread-safe (all workers call concurrently)
// and must not throw.
class TaskTraceHook {
 public:
  virtual ~TaskTraceHook() = default;
  virtual void OnTaskBegin() = 0;
  virtual void OnTaskEnd() = 0;
};

// Tasks should communicate failure through Status/StopReason, not
// exceptions. As a last-resort backstop the worker loop still catches
// anything a task throws — a poison task must not take the worker (and
// the process) down — counts it in task_exceptions(), and keeps serving
// the queue. The task's own work is lost; orderly failure handling
// belongs at the task boundary (see GuardedExpand in search_types.h).
class ThreadPool {
 public:
  // Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();  // drains nothing: pending tasks still run, then joins

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  // Enqueues `task` for execution on some worker. Thread-safe.
  void Submit(std::function<void()> task);

  // Installs (or clears, with nullptr) the per-task observer. The hook
  // must outlive the pool or be cleared first. Not synchronized against
  // in-flight tasks: install before submitting work that must be
  // observed, clear only when the pool is quiescent.
  void set_trace_hook(TaskTraceHook* hook) {
    trace_hook_.store(hook, std::memory_order_release);
  }

  // Installs (or clears) a liveness counter bumped once per completed
  // task — the thread-pool leg of the supervisor heartbeat (the search
  // leg stamps from BudgetGuard poll points). Same lifetime rules as the
  // trace hook: install while quiescent, the counter must outlive the
  // tasks it observes.
  void set_task_heartbeat(std::atomic<uint64_t>* beats) {
    task_heartbeat_.store(beats, std::memory_order_release);
  }

  // Tasks that threw and were absorbed by the worker-loop backstop.
  uint64_t task_exceptions() const {
    return task_exceptions_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::atomic<TaskTraceHook*> trace_hook_{nullptr};
  std::atomic<std::atomic<uint64_t>*> task_heartbeat_{nullptr};
  std::atomic<uint64_t> task_exceptions_{0};
  std::vector<std::thread> workers_;
};

// Counts outstanding tasks so a caller can block until a batch completes:
//
//   WaitGroup wg;
//   wg.Add(items.size());
//   for (auto& item : items)
//     pool.Submit([&, &item] { Process(item); wg.Done(); });
//   wg.Wait();
//
// The level barrier of the parallel beam search is exactly this shape.
// Add may be called again after Wait returns (the group is reusable).
class WaitGroup {
 public:
  void Add(size_t n = 1);
  void Done();
  // Blocks until the count returns to zero. Spurious-wakeup safe.
  void Wait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t outstanding_ = 0;
};

}  // namespace tupelo

#endif  // TUPELO_COMMON_THREAD_POOL_H_
