#include "serve/wire.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace tupelo::serve {
namespace {

// write(2) until done, retrying EINTR. The peer closing mid-write shows
// up as EPIPE (SIGPIPE is suppressed per-call via MSG_NOSIGNAL).
Status WriteAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("socket write failed: ") +
                              std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

// read(2) until `len` bytes, retrying EINTR. Returns the bytes actually
// read, so the caller can tell clean EOF (0) from a torn frame.
Result<size_t> ReadUpTo(int fd, char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::read(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("socket read failed: ") +
                              std::strerror(errno));
    }
    if (n == 0) break;  // EOF
    off += static_cast<size_t>(n);
  }
  return off;
}

}  // namespace

Status WriteFrame(int fd, const obs::JsonValue& message) {
  const std::string payload = message.Dump();
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame exceeds kMaxFrameBytes");
  }
  const uint32_t n = static_cast<uint32_t>(payload.size());
  char header[4] = {static_cast<char>((n >> 24) & 0xff),
                    static_cast<char>((n >> 16) & 0xff),
                    static_cast<char>((n >> 8) & 0xff),
                    static_cast<char>(n & 0xff)};
  TUPELO_RETURN_IF_ERROR(WriteAll(fd, header, sizeof(header)));
  return WriteAll(fd, payload.data(), payload.size());
}

Result<obs::JsonValue> ReadFrame(int fd) {
  char header[4];
  TUPELO_ASSIGN_OR_RETURN(size_t got, ReadUpTo(fd, header, sizeof(header)));
  if (got == 0) return Status::NotFound("connection closed");
  if (got < sizeof(header)) {
    return Status::ParseError("torn frame header (EOF mid-frame)");
  }
  const uint32_t n = (static_cast<uint32_t>(static_cast<unsigned char>(header[0])) << 24) |
                     (static_cast<uint32_t>(static_cast<unsigned char>(header[1])) << 16) |
                     (static_cast<uint32_t>(static_cast<unsigned char>(header[2])) << 8) |
                     static_cast<uint32_t>(static_cast<unsigned char>(header[3]));
  if (n > kMaxFrameBytes) {
    return Status::InvalidArgument("frame length exceeds kMaxFrameBytes");
  }
  std::string payload(n, '\0');
  if (n > 0) {
    TUPELO_ASSIGN_OR_RETURN(size_t body, ReadUpTo(fd, payload.data(), n));
    if (body < n) return Status::ParseError("torn frame body (EOF mid-frame)");
  }
  return obs::JsonValue::Parse(payload);
}

Result<int> ListenOn(uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket() failed: ") +
                            std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::Internal(std::string("bind() failed: ") +
                                std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, backlog) != 0) {
    Status s = Status::Internal(std::string("listen() failed: ") +
                                std::strerror(errno));
    ::close(fd);
    return s;
  }
  return fd;
}

Result<uint16_t> BoundPort(int listen_fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Status::Internal(std::string("getsockname() failed: ") +
                            std::strerror(errno));
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<int> AcceptOn(int listen_fd) {
  for (;;) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    if (errno == EINTR) continue;
    return Status::Internal(std::string("accept() failed: ") +
                            std::strerror(errno));
  }
}

Result<int> ConnectTo(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket() failed: ") +
                            std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unparseable IPv4 address: " + host);
  }
  for (;;) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    if (errno == EINTR) continue;
    Status s = Status::Internal(std::string("connect() failed: ") +
                                std::strerror(errno));
    ::close(fd);
    return s;
  }
}

}  // namespace tupelo::serve
