#ifndef TUPELO_SERVE_JOB_MANAGER_H_
#define TUPELO_SERVE_JOB_MANAGER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/tupelo.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/database.h"
#include "runtime/supervisor.h"
#include "search/search_types.h"

namespace tupelo::serve {

// One tenant-submitted discovery job: a critical-instance pair plus the
// budget the client is willing to spend. Everything here round-trips
// through JSON (SpecToJson/SpecFromJson) — the same document is the
// submit request body and the crash-durable `<id>.job` journal entry.
struct JobSpec {
  std::string tenant = "default";
  std::string source_tdb;
  std::string target_tdb;
  // Empty runs the default degradation ladder (DefaultLadder()); a named
  // algorithm ("ida", "rbfs", "astar", "greedy", "beam") runs alone.
  std::string algorithm;
  std::string heuristic = "h1";
  int64_t deadline_millis = 0;  // 0 = server default
  uint64_t max_states = 0;      // 0 = server fair-share slice
  size_t beam_width = 8;
  bool supervise = false;
  // Cancel the job if the submitting connection goes away before it
  // finishes (interactive clients); detached batch jobs leave this off.
  bool cancel_on_disconnect = false;
};

obs::JsonValue SpecToJson(const JobSpec& spec);
Result<JobSpec> SpecFromJson(const obs::JsonValue& v);

// Job lifecycle. Queued and running jobs are re-runnable after a crash
// (their `.job` journal entry has no `.done` companion yet); done is
// terminal and durable.
enum class JobState { kQueued, kRunning, kDone };
std::string_view JobStateName(JobState s);

// A point-in-time snapshot of one job, as served to clients and persisted
// to `<id>.done` on completion.
struct JobStatus {
  std::string id;
  std::string tenant;
  JobState state = JobState::kQueued;
  // Monotonic per-job update counter; bumps on every state or progress
  // change. Streaming clients long-poll "wake me when version > N".
  uint64_t version = 0;

  // Progress (live while running, final when done).
  uint64_t states_examined = 0;
  int best_h = -1;
  std::string partial_script;  // best partial mapping, FIRA script form

  // Terminal fields (valid once state == kDone).
  bool found = false;
  bool verified = false;
  std::string stop_reason = "exhausted";
  std::string script;  // the verified mapping, FIRA script form
  double queue_millis = 0.0;
  double run_millis = 0.0;
  double total_millis = 0.0;  // submit → terminal, what clients perceive
  int retries = 0;
  bool resumed = false;  // restarted from a crash-recovered checkpoint
};

obs::JsonValue StatusToJson(const JobStatus& s);

// Admission verdict. Accepted jobs are journaled before Submit returns —
// from that point the server guarantees a terminal result (possibly after
// a crash+restart). Shed jobs carry a Retry-After hint derived from queue
// pressure: (queued ahead / workers + 1) × the EWMA of recent job wall
// time.
struct SubmitOutcome {
  bool accepted = false;
  std::string job_id;
  size_t queue_depth = 0;
  int64_t retry_after_millis = 0;  // only meaningful when shed
};

struct JobManagerConfig {
  // Crash-durability journal directory (required). Layout: `<id>.job`
  // spec, `<id>.tck` checkpoint, `<id>.done` terminal record — all
  // written atomically (core/checkpoint.h AtomicWriteFile).
  std::string journal_dir;
  // Worker threads draining the admission queue; each runs one job at a
  // time, so this is the running-job concurrency.
  size_t workers = 2;
  // Admission bound: Submit sheds when queued (not yet running) jobs
  // would exceed this. Bounded queue depth is the overload contract —
  // accepted work is never dropped, excess work is refused up front.
  size_t queue_limit = 16;
  // Shared search pool for beam fan-out across all jobs (0 = jobs run
  // single-threaded search; BudgetGuard slices still apportion budgets).
  size_t pool_threads = 0;
  // Per-job fair-share slices. A job asking for more states than
  // fair_states_per_job, or a longer deadline than max_deadline_millis,
  // is clamped — one tenant cannot starve the rest by over-asking.
  uint64_t fair_states_per_job = 200000;
  int64_t default_deadline_millis = 2000;
  int64_t max_deadline_millis = 60000;
  uint64_t max_memory_nodes_per_job = 0;  // 0 = unlimited
  uint64_t checkpoint_interval_states = 256;
  // Transient-fault retry: a job stopping on kStalled (or whose Discover
  // call fails with a non-configuration error) is re-run from its last
  // checkpoint up to this many times, with exponential backoff.
  int max_job_retries = 2;
  int64_t retry_backoff_millis = 10;
  // Supervisor template for jobs submitted with supervise=true.
  runtime::SupervisorConfig supervisor;
  // Retention: keep at most this many completed-job journal triples on
  // disk (oldest pruned first); 0 keeps everything.
  size_t checkpoint_keep = 0;
  obs::MetricRegistry* metrics = nullptr;  // nullable; must outlive
  obs::TraceSession* trace = nullptr;      // nullable; must outlive
};

// The socket-free core of the discovery service: admission control, the
// bounded job queue, worker scheduling over the shared pool, per-job
// CancelToken trees parented on one root, crash-durable journaling and
// boot-time recovery. The TCP server (serve/server.h) is a thin framing
// shell over this class, which is what the governance tests exercise
// directly.
class JobManager {
 public:
  explicit JobManager(JobManagerConfig config);
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  // Recovers the journal (sweeps stale `*.tmp`, loads terminal records,
  // re-enqueues unfinished jobs with resume), then starts the workers.
  Status Start();

  // Stops accepting, preempts running jobs through the root token, joins
  // the workers. Preempted and still-queued jobs keep their journal
  // entries un-terminal, so the next Start() resumes them — graceful
  // shutdown and kill -9 converge on the same recovery path.
  void Shutdown();

  // Admission. A typed error is a malformed spec (bad .tdb, unknown
  // algorithm/heuristic); a shed is a *successful* call with
  // accepted=false and a Retry-After hint.
  Result<SubmitOutcome> Submit(JobSpec spec);

  Result<JobStatus> GetStatus(const std::string& id) const;

  // Client-initiated cancel; benign on already-terminal jobs (returns
  // false). The job completes as stop_reason=cancelled.
  bool Cancel(const std::string& id);

  // Long-poll: blocks until the job's version exceeds `after_version`,
  // the job is terminal, or the timeout lapses; returns the then-current
  // snapshot. The streaming op is a loop over this.
  Result<JobStatus> WaitUpdate(const std::string& id, uint64_t after_version,
                               int64_t timeout_millis) const;

  // Blocks until terminal or timeout (DeadlineExceeded → the snapshot's
  // state is still non-terminal; callers decide what that means).
  Result<JobStatus> WaitTerminal(const std::string& id,
                                 int64_t timeout_millis) const;

  // Disconnect-driven cancellation for jobs submitted with
  // cancel_on_disconnect. Racing with completion is benign: a terminal
  // job ignores the cancel.
  void OnClientDisconnect(const std::vector<std::string>& job_ids);

  size_t queue_depth() const;
  size_t active_jobs() const;
  uint64_t jobs_recovered() const { return jobs_recovered_; }
  bool shutting_down() const {
    return shutting_down_.load(std::memory_order_relaxed);
  }

  const JobManagerConfig& config() const { return config_; }

 private:
  struct Job {
    JobSpec spec;
    JobStatus status;
    std::unique_ptr<CancelToken> token;  // parented on root_token_
    std::chrono::steady_clock::time_point submitted_at;
    bool client_cancelled = false;
    bool recovered = false;  // re-enqueued by boot recovery
  };

  std::string JournalPath(const std::string& id, const char* ext) const;
  Status JournalSpec(const Job& job);
  void JournalDone(Job& job);
  Status RecoverJournal();
  void PruneRetention();
  void WorkerLoop(size_t worker_index);
  void RunJob(Job& job);
  void BumpVersion(Job& job);

  JobManagerConfig config_;
  std::unique_ptr<ThreadPool> pool_;  // shared across all jobs
  CancelToken root_token_;
  std::atomic<bool> shutting_down_{false};
  uint64_t jobs_recovered_ = 0;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;       // job updates (status waiters)
  std::condition_variable queue_cv_;         // queue pushes (workers)
  std::deque<std::string> queue_;            // ids of queued jobs, FIFO
  std::map<std::string, std::unique_ptr<Job>> jobs_;
  std::vector<std::string> done_order_;      // completion order, retention
  uint64_t next_seq_ = 1;
  size_t running_ = 0;
  double job_millis_ewma_ = 0.0;

  std::vector<std::thread> workers_;
};

}  // namespace tupelo::serve

#endif  // TUPELO_SERVE_JOB_MANAGER_H_
