#ifndef TUPELO_SERVE_CLIENT_H_
#define TUPELO_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "serve/job_manager.h"

namespace tupelo::serve {

// What a submit attempt came back as, shed hint included.
struct SubmitReply {
  bool accepted = false;
  std::string job_id;
  size_t queue_depth = 0;
  int64_t retry_after_millis = 0;
};

// Blocking client for the framed-JSON protocol: one TCP connection, one
// outstanding request at a time (the protocol is strict request/response).
// Used by serve_loadgen, the governance tests, and the service-level
// chaos families. Not thread-safe; one Client per thread.
class Client {
 public:
  Client() = default;
  ~Client() { Close(); }
  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  static Result<Client> Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }
  // Abandons the connection without a goodbye — the disconnect fault mode
  // (server-side cancel_on_disconnect fires for this session's jobs).
  void Close();

  Result<SubmitReply> Submit(const JobSpec& spec);
  Result<JobStatus> GetStatus(const std::string& job_id);
  // Long-poll one update: returns when the job's version exceeds
  // `after_version`, the job finishes, or the server-side timeout lapses.
  Result<JobStatus> Stream(const std::string& job_id, uint64_t after_version,
                           int64_t timeout_millis);
  // Convenience: stream until terminal or `deadline_millis` of total
  // client-side waiting. DeadlineExceeded if still running.
  Result<JobStatus> AwaitTerminal(const std::string& job_id,
                                  int64_t deadline_millis);
  Result<bool> Cancel(const std::string& job_id);
  Result<obs::JsonValue> Metrics();
  Status Ping();
  Status RequestShutdown();

 private:
  Result<obs::JsonValue> RoundTrip(const obs::JsonValue& request);

  int fd_ = -1;
};

}  // namespace tupelo::serve

#endif  // TUPELO_SERVE_CLIENT_H_
