#ifndef TUPELO_SERVE_WIRE_H_
#define TUPELO_SERVE_WIRE_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "obs/json_writer.h"

namespace tupelo::serve {

// The wire format: every message — request or response — is one frame, a
// 4-byte big-endian unsigned payload length followed by that many bytes
// of compact UTF-8 JSON (obs::JsonValue::Dump). Framing survives partial
// reads/writes and makes message boundaries explicit, so a slow or
// malicious client can never desynchronize the stream; a frame longer
// than kMaxFrameBytes is rejected before any payload is read.
//
// See docs/SERVING.md for the request/response catalog.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

// Blocking send of one frame. Handles short writes and EINTR; any socket
// error is surfaced as a typed Status (the connection is then dead).
Status WriteFrame(int fd, const obs::JsonValue& message);

// Blocking receive of one frame. A clean EOF before the first header byte
// returns NotFound ("connection closed") — the normal end of a client
// conversation; EOF mid-frame, an oversized length, or malformed JSON is
// a ParseError/InvalidArgument.
Result<obs::JsonValue> ReadFrame(int fd);

// TCP plumbing shared by the server, the client library, the load
// generator and the chaos campaign. All return typed errors; fds are
// plain POSIX descriptors the caller must close().
Result<int> ListenOn(uint16_t port, int backlog);   // 0 = ephemeral port
Result<uint16_t> BoundPort(int listen_fd);
Result<int> AcceptOn(int listen_fd);                // blocking accept
Result<int> ConnectTo(const std::string& host, uint16_t port);

}  // namespace tupelo::serve

#endif  // TUPELO_SERVE_WIRE_H_
