#include "serve/job_manager.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/checkpoint.h"
#include "heuristics/heuristic_factory.h"
#include "relational/io.h"

namespace tupelo::serve {
namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

Result<std::string> ReadFileText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return stat(path.c_str(), &st) == 0;
}

const obs::JsonValue* Req(const obs::JsonValue& v, std::string_view key) {
  return v.is_object() ? v.Find(key) : nullptr;
}

std::string GetString(const obs::JsonValue& v, std::string_view key,
                      std::string fallback = "") {
  const obs::JsonValue* m = Req(v, key);
  if (m != nullptr && m->kind() == obs::JsonValue::Kind::kString) {
    return m->as_string();
  }
  return fallback;
}

int64_t GetInt(const obs::JsonValue& v, std::string_view key,
               int64_t fallback = 0) {
  const obs::JsonValue* m = Req(v, key);
  return m != nullptr && m->is_number() ? m->as_int() : fallback;
}

bool GetBool(const obs::JsonValue& v, std::string_view key,
             bool fallback = false) {
  const obs::JsonValue* m = Req(v, key);
  return m != nullptr && m->kind() == obs::JsonValue::Kind::kBool
             ? m->as_bool()
             : fallback;
}

}  // namespace

obs::JsonValue SpecToJson(const JobSpec& spec) {
  obs::JsonValue v = obs::JsonValue::Object();
  v["tenant"] = spec.tenant;
  v["source_tdb"] = spec.source_tdb;
  v["target_tdb"] = spec.target_tdb;
  v["algorithm"] = spec.algorithm;
  v["heuristic"] = spec.heuristic;
  v["deadline_millis"] = spec.deadline_millis;
  v["max_states"] = spec.max_states;
  v["beam_width"] = static_cast<uint64_t>(spec.beam_width);
  v["supervise"] = spec.supervise;
  v["cancel_on_disconnect"] = spec.cancel_on_disconnect;
  return v;
}

Result<JobSpec> SpecFromJson(const obs::JsonValue& v) {
  if (!v.is_object()) return Status::InvalidArgument("job spec: not an object");
  JobSpec spec;
  spec.tenant = GetString(v, "tenant", "default");
  spec.source_tdb = GetString(v, "source_tdb");
  spec.target_tdb = GetString(v, "target_tdb");
  if (spec.source_tdb.empty() || spec.target_tdb.empty()) {
    return Status::InvalidArgument(
        "job spec: source_tdb and target_tdb are required");
  }
  spec.algorithm = GetString(v, "algorithm");
  spec.heuristic = GetString(v, "heuristic", "h1");
  spec.deadline_millis = GetInt(v, "deadline_millis");
  spec.max_states = static_cast<uint64_t>(GetInt(v, "max_states"));
  spec.beam_width = static_cast<size_t>(GetInt(v, "beam_width", 8));
  spec.supervise = GetBool(v, "supervise");
  spec.cancel_on_disconnect = GetBool(v, "cancel_on_disconnect");
  // Validate what would otherwise only explode inside a worker: the
  // instances must parse and the algorithm/heuristic must exist. Typed
  // rejection here is the client's malformed-request signal; admission
  // (queue pressure) is a separate verdict.
  TUPELO_RETURN_IF_ERROR(ParseTdb(spec.source_tdb).status());
  TUPELO_RETURN_IF_ERROR(ParseTdb(spec.target_tdb).status());
  if (!spec.algorithm.empty() && !ParseSearchAlgorithm(spec.algorithm)) {
    return Status::InvalidArgument("job spec: unknown algorithm '" +
                                   spec.algorithm + "'");
  }
  if (!ParseHeuristicKind(spec.heuristic)) {
    return Status::InvalidArgument("job spec: unknown heuristic '" +
                                   spec.heuristic + "'");
  }
  return spec;
}

std::string_view JobStateName(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
  }
  return "unknown";
}

obs::JsonValue StatusToJson(const JobStatus& s) {
  obs::JsonValue v = obs::JsonValue::Object();
  v["id"] = s.id;
  v["tenant"] = s.tenant;
  v["state"] = std::string(JobStateName(s.state));
  v["version"] = s.version;
  v["states_examined"] = s.states_examined;
  v["best_h"] = static_cast<int64_t>(s.best_h);
  v["partial_script"] = s.partial_script;
  v["found"] = s.found;
  v["verified"] = s.verified;
  v["stop_reason"] = s.stop_reason;
  v["script"] = s.script;
  v["queue_millis"] = s.queue_millis;
  v["run_millis"] = s.run_millis;
  v["total_millis"] = s.total_millis;
  v["retries"] = static_cast<int64_t>(s.retries);
  v["resumed"] = s.resumed;
  return v;
}

namespace {

// Inverse of StatusToJson, for `.done` journal recovery. Tolerant of
// missing fields (defaults hold) but the id must be present.
Result<JobStatus> StatusFromJson(const obs::JsonValue& v) {
  if (!v.is_object()) return Status::ParseError("job record: not an object");
  JobStatus s;
  s.id = GetString(v, "id");
  if (s.id.empty()) return Status::ParseError("job record: missing id");
  s.tenant = GetString(v, "tenant", "default");
  s.state = JobState::kDone;
  s.version = static_cast<uint64_t>(GetInt(v, "version"));
  s.states_examined = static_cast<uint64_t>(GetInt(v, "states_examined"));
  s.best_h = static_cast<int>(GetInt(v, "best_h", -1));
  s.partial_script = GetString(v, "partial_script");
  s.found = GetBool(v, "found");
  s.verified = GetBool(v, "verified");
  s.stop_reason = GetString(v, "stop_reason", "exhausted");
  s.script = GetString(v, "script");
  const obs::JsonValue* m = v.Find("queue_millis");
  if (m != nullptr && m->is_number()) s.queue_millis = m->as_double();
  m = v.Find("run_millis");
  if (m != nullptr && m->is_number()) s.run_millis = m->as_double();
  m = v.Find("total_millis");
  if (m != nullptr && m->is_number()) s.total_millis = m->as_double();
  s.retries = static_cast<int>(GetInt(v, "retries"));
  s.resumed = GetBool(v, "resumed");
  return s;
}

}  // namespace

JobManager::JobManager(JobManagerConfig config) : config_(std::move(config)) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.pool_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.pool_threads);
  }
}

JobManager::~JobManager() { Shutdown(); }

std::string JobManager::JournalPath(const std::string& id,
                                    const char* ext) const {
  return config_.journal_dir + "/" + id + ext;
}

Status JobManager::JournalSpec(const Job& job) {
  obs::JsonValue v = SpecToJson(job.spec);
  v["id"] = job.status.id;
  return AtomicWriteFile(JournalPath(job.status.id, ".job"), v.Dump(2));
}

void JobManager::JournalDone(Job& job) {
  // The `.done` record is what makes a job terminal across restarts; a
  // failed write means the job re-runs after a crash, which is safe
  // (results are deterministic) just wasteful — so it is logged via the
  // metric, not fatal.
  Status s = AtomicWriteFile(JournalPath(job.status.id, ".done"),
                             StatusToJson(job.status).Dump(2));
  if (!s.ok() && config_.metrics != nullptr) {
    config_.metrics->GetCounter("serve.journal.write_failures").Increment();
  }
}

Status JobManager::RecoverJournal() {
  if (config_.journal_dir.empty()) {
    return Status::InvalidArgument("JobManagerConfig::journal_dir is required");
  }
  ::mkdir(config_.journal_dir.c_str(), 0777);
  struct stat st;
  if (stat(config_.journal_dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::InvalidArgument("journal_dir is not a directory: " +
                                   config_.journal_dir);
  }
  // Crash hygiene first: a kill mid-AtomicWriteFile leaves `*.tmp` files
  // that must never shadow a later write.
  int swept = SweepStaleTmpFiles(config_.journal_dir);
  if (swept > 0 && config_.metrics != nullptr) {
    config_.metrics->GetCounter("serve.journal.tmp_swept").Increment(swept);
  }

  std::vector<std::string> ids;
  DIR* d = opendir(config_.journal_dir.c_str());
  if (d == nullptr) {
    return Status::Internal("cannot open journal_dir: " + config_.journal_dir);
  }
  while (struct dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    constexpr std::string_view kExt = ".job";
    if (name.size() > kExt.size() &&
        name.compare(name.size() - kExt.size(), kExt.size(), kExt) == 0) {
      ids.push_back(name.substr(0, name.size() - kExt.size()));
    }
  }
  closedir(d);
  std::sort(ids.begin(), ids.end());  // ids are zero-padded: lexicographic
                                      // order is submission order

  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& id : ids) {
    TUPELO_ASSIGN_OR_RETURN(std::string spec_text,
                            ReadFileText(JournalPath(id, ".job")));
    Result<obs::JsonValue> spec_json = obs::JsonValue::Parse(spec_text);
    if (!spec_json.ok()) continue;  // torn beyond repair; skip, don't crash
    Result<JobSpec> spec = SpecFromJson(*spec_json);
    if (!spec.ok()) continue;

    auto job = std::make_unique<Job>();
    job->spec = std::move(*spec);
    job->status.id = id;
    job->status.tenant = job->spec.tenant;
    job->submitted_at = Clock::now();
    job->token = std::make_unique<CancelToken>(&root_token_);

    const std::string done_path = JournalPath(id, ".done");
    if (FileExists(done_path)) {
      Result<std::string> done_text = ReadFileText(done_path);
      if (done_text.ok()) {
        Result<obs::JsonValue> done_json = obs::JsonValue::Parse(*done_text);
        if (done_json.ok()) {
          Result<JobStatus> done = StatusFromJson(*done_json);
          if (done.ok()) {
            job->status = std::move(*done);
            done_order_.push_back(id);
          }
        }
      }
      if (job->status.state != JobState::kDone) continue;  // torn: drop
    } else {
      // Unfinished at crash/shutdown time: back in the queue, resuming
      // from its `.tck` if one was written (a missing checkpoint is a
      // fresh start — Discover's resume contract).
      job->status.state = JobState::kQueued;
      job->recovered = true;
      queue_.push_back(id);
      ++jobs_recovered_;
      if (config_.metrics != nullptr) {
        config_.metrics->GetCounter("serve.jobs.recovered").Increment();
      }
    }
    // next_seq_ must clear every journaled id, done or not, so restarted
    // servers never mint a colliding id.
    if (id.size() > 1 && id[0] == 'j') {
      uint64_t seq = std::strtoull(id.c_str() + 1, nullptr, 10);
      next_seq_ = std::max(next_seq_, seq + 1);
    }
    jobs_[id] = std::move(job);
  }
  if (config_.metrics != nullptr) {
    config_.metrics->GetGauge("serve.queue_depth")
        .Set(static_cast<int64_t>(queue_.size()));
  }
  return Status::OK();
}

Status JobManager::Start() {
  TUPELO_RETURN_IF_ERROR(RecoverJournal());
  PruneRetention();
  shutting_down_.store(false, std::memory_order_relaxed);
  workers_.reserve(config_.workers);
  for (size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  return Status::OK();
}

void JobManager::Shutdown() {
  bool was = shutting_down_.exchange(true, std::memory_order_relaxed);
  if (was && workers_.empty()) return;
  // Preempt every running job through the shared root: searches stop at
  // their next BudgetGuard poll, their latest checkpoint already on disk.
  root_token_.Cancel();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_cv_.notify_all();
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  cv_.notify_all();
}

Result<SubmitOutcome> JobManager::Submit(JobSpec spec) {
  obs::TraceSpan span(config_.trace, obs::TraceCategory::kDriver,
                      "serve.submit");
  if (config_.metrics != nullptr) {
    config_.metrics->GetCounter("serve.jobs.submitted").Increment();
  }
  if (shutting_down_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("server is shutting down");
  }
  // Re-validate through the canonical JSON path so a locally constructed
  // spec obeys the same contract as one off the wire.
  TUPELO_ASSIGN_OR_RETURN(spec, SpecFromJson(SpecToJson(spec)));

  std::unique_lock<std::mutex> lock(mu_);
  SubmitOutcome outcome;
  if (queue_.size() >= config_.queue_limit) {
    // Load shedding: the queue is the admission bound. The Retry-After
    // hint models the backlog draining at the recent per-job wall-time
    // EWMA across the worker fleet.
    double per_job = job_millis_ewma_ > 0.0 ? job_millis_ewma_ : 50.0;
    double waves =
        static_cast<double>(queue_.size()) /
            static_cast<double>(std::max<size_t>(1, config_.workers)) +
        1.0;
    outcome.accepted = false;
    outcome.queue_depth = queue_.size();
    outcome.retry_after_millis =
        std::max<int64_t>(1, static_cast<int64_t>(per_job * waves));
    if (config_.metrics != nullptr) {
      config_.metrics->GetCounter("serve.jobs.shed").Increment();
    }
    return outcome;
  }

  char idbuf[24];
  std::snprintf(idbuf, sizeof(idbuf), "j%06llu",
                static_cast<unsigned long long>(next_seq_++));
  auto job = std::make_unique<Job>();
  job->spec = std::move(spec);
  job->status.id = idbuf;
  job->status.tenant = job->spec.tenant;
  job->status.state = JobState::kQueued;
  job->submitted_at = Clock::now();
  job->token = std::make_unique<CancelToken>(&root_token_);

  // Durability pivot: the spec is journaled *before* Submit acknowledges.
  // An accepted job either reaches a terminal record or survives a crash
  // as a re-runnable journal entry — never accepted-then-dropped.
  TUPELO_RETURN_IF_ERROR(JournalSpec(*job));

  outcome.accepted = true;
  outcome.job_id = job->status.id;
  queue_.push_back(job->status.id);
  outcome.queue_depth = queue_.size();
  jobs_[job->status.id] = std::move(job);
  if (config_.metrics != nullptr) {
    config_.metrics->GetCounter("serve.jobs.accepted").Increment();
    config_.metrics->GetGauge("serve.queue_depth")
        .Set(static_cast<int64_t>(queue_.size()));
  }
  queue_cv_.notify_one();
  return outcome;
}

Result<JobStatus> JobManager::GetStatus(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return Status::NotFound("unknown job: " + id);
  return it->second->status;
}

bool JobManager::Cancel(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Job& job = *it->second;
  if (job.status.state == JobState::kDone) return false;
  job.client_cancelled = true;
  job.token->Cancel();
  // A queued job never reaches a worker poll, so finish it here.
  if (job.status.state == JobState::kQueued) {
    auto q = std::find(queue_.begin(), queue_.end(), id);
    if (q != queue_.end()) queue_.erase(q);
    job.status.state = JobState::kDone;
    job.status.stop_reason = "cancelled";
    job.status.queue_millis = MillisSince(job.submitted_at);
    job.status.total_millis = job.status.queue_millis;
    BumpVersion(job);
    JournalDone(job);
    done_order_.push_back(id);
    if (config_.metrics != nullptr) {
      config_.metrics->GetCounter("serve.jobs.cancelled").Increment();
      config_.metrics->GetGauge("serve.queue_depth")
          .Set(static_cast<int64_t>(queue_.size()));
    }
  } else if (config_.metrics != nullptr) {
    config_.metrics->GetCounter("serve.jobs.cancelled").Increment();
  }
  return true;
}

Result<JobStatus> JobManager::WaitUpdate(const std::string& id,
                                         uint64_t after_version,
                                         int64_t timeout_millis) const {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return Status::NotFound("unknown job: " + id);
  const Job* job = it->second.get();
  auto changed = [&] {
    return job->status.version > after_version ||
           job->status.state == JobState::kDone ||
           shutting_down_.load(std::memory_order_relaxed);
  };
  if (timeout_millis > 0) {
    cv_.wait_for(lock, std::chrono::milliseconds(timeout_millis), changed);
  }
  return job->status;
}

Result<JobStatus> JobManager::WaitTerminal(const std::string& id,
                                           int64_t timeout_millis) const {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return Status::NotFound("unknown job: " + id);
  const Job* job = it->second.get();
  auto done = [&] {
    return job->status.state == JobState::kDone ||
           shutting_down_.load(std::memory_order_relaxed);
  };
  if (timeout_millis > 0) {
    cv_.wait_for(lock, std::chrono::milliseconds(timeout_millis), done);
  }
  return job->status;
}

void JobManager::OnClientDisconnect(const std::vector<std::string>& job_ids) {
  for (const std::string& id : job_ids) {
    bool want_cancel = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = jobs_.find(id);
      want_cancel = it != jobs_.end() && it->second->spec.cancel_on_disconnect;
    }
    // Racing a concurrent completion is benign: Cancel() is a no-op on
    // terminal jobs.
    if (want_cancel) {
      if (Cancel(id) && config_.metrics != nullptr) {
        config_.metrics->GetCounter("serve.jobs.disconnect_cancelled")
            .Increment();
      }
    }
  }
}

size_t JobManager::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t JobManager::active_jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void JobManager::BumpVersion(Job& job) {
  ++job.status.version;
  cv_.notify_all();
}

void JobManager::PruneRetention() {
  if (config_.checkpoint_keep == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  while (done_order_.size() > config_.checkpoint_keep) {
    const std::string id = done_order_.front();
    done_order_.erase(done_order_.begin());
    for (const char* ext : {".job", ".tck", ".done"}) {
      std::remove(JournalPath(id, ext).c_str());
    }
    if (config_.metrics != nullptr) {
      config_.metrics->GetCounter("serve.journal.pruned").Increment();
    }
  }
}

void JobManager::WorkerLoop(size_t worker_index) {
  (void)worker_index;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] {
        return !queue_.empty() ||
               shutting_down_.load(std::memory_order_relaxed);
      });
      if (shutting_down_.load(std::memory_order_relaxed)) return;
      const std::string id = queue_.front();
      queue_.pop_front();
      ++running_;
      auto it = jobs_.find(id);
      // Entries are never erased and unique_ptr targets are stable, so
      // the pointer stays valid outside the lock.
      if (it != jobs_.end()) job = it->second.get();
      if (config_.metrics != nullptr) {
        config_.metrics->GetGauge("serve.queue_depth")
            .Set(static_cast<int64_t>(queue_.size()));
        config_.metrics->GetGauge("serve.active")
            .Set(static_cast<int64_t>(running_));
      }
    }
    if (job != nullptr) RunJob(*job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
      if (config_.metrics != nullptr) {
        config_.metrics->GetGauge("serve.active")
            .Set(static_cast<int64_t>(running_));
      }
    }
    PruneRetention();
  }
}

void JobManager::RunJob(Job& job) {
  obs::TraceSpan span(config_.trace, obs::TraceCategory::kDriver,
                      "serve.job");
  const double queue_millis = MillisSince(job.submitted_at);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (job.status.state == JobState::kDone) return;  // cancelled in queue
    job.status.state = JobState::kRunning;
    job.status.queue_millis = queue_millis;
    BumpVersion(job);
  }

  // Fair-share slices: the client's ask, clamped to the per-job ration.
  int64_t deadline = job.spec.deadline_millis > 0
                         ? job.spec.deadline_millis
                         : config_.default_deadline_millis;
  deadline = std::min(deadline, config_.max_deadline_millis);
  // Deadline propagation: the budget is submit-to-finish, so time spent
  // queued is already gone when the rung ladder starts.
  int64_t remaining =
      deadline - static_cast<int64_t>(queue_millis);
  uint64_t states = job.spec.max_states > 0
                        ? std::min(job.spec.max_states,
                                   config_.fair_states_per_job)
                        : config_.fair_states_per_job;

  Result<TupeloResult> outcome = Status::Internal("job never ran");
  bool ran = false;
  int attempts = 0;
  double run_millis = 0.0;
  if (remaining > 0) {
    Result<Database> source = ParseTdb(job.spec.source_tdb);
    Result<Database> target = ParseTdb(job.spec.target_tdb);
    if (!source.ok() || !target.ok()) {
      outcome = !source.ok() ? source.status() : target.status();
    } else {
      Tupelo tupelo(std::move(*source), std::move(*target));
      TupeloOptions options;
      if (job.spec.algorithm.empty()) {
        options.ladder = DefaultLadder();
      } else {
        options.algorithm = *ParseSearchAlgorithm(job.spec.algorithm);
      }
      options.heuristic = *ParseHeuristicKind(job.spec.heuristic);
      options.beam_width = job.spec.beam_width;
      options.limits.max_states = states;
      options.limits.max_memory_nodes = config_.max_memory_nodes_per_job;
      options.limits.cancel = job.token.get();
      options.pool = pool_.get();
      options.checkpoint_path = JournalPath(job.status.id, ".tck");
      options.checkpoint_interval_states = config_.checkpoint_interval_states;
      options.metrics = config_.metrics;
      options.trace = config_.trace;
      if (job.spec.supervise) {
        options.supervisor = config_.supervisor;
        options.supervisor.enabled = true;
      }
      options.on_progress = [this, &job](const DiscoverProgress& p) {
        std::lock_guard<std::mutex> lock(mu_);
        job.status.states_examined = p.states_examined;
        if (p.best_h >= 0 &&
            (job.status.best_h < 0 || p.best_h <= job.status.best_h)) {
          job.status.best_h = p.best_h;
          if (p.best_path != nullptr) {
            job.status.partial_script =
                MappingExpression(*p.best_path).ToScript();
          }
        }
        BumpVersion(job);
      };

      // Retry-with-backoff on transient outcomes: a stall preemption or
      // an internal fault re-runs the job from its last checkpoint, which
      // the previous attempt left on disk.
      Clock::time_point run_start = Clock::now();
      for (;;) {
        options.resume = job.recovered || attempts > 0;
        options.limits.deadline_millis =
            std::max<int64_t>(1, remaining - static_cast<int64_t>(
                                                 MillisSince(run_start)));
        outcome = tupelo.Discover(options);
        ran = true;
        bool transient =
            (outcome.ok() &&
             outcome->stop_reason == StopReason::kStalled) ||
            (!outcome.ok() &&
             outcome.status().code() == StatusCode::kInternal);
        bool budget_left =
            remaining - static_cast<int64_t>(MillisSince(run_start)) > 1;
        if (!transient || attempts >= config_.max_job_retries ||
            !budget_left || job.token->cancelled()) {
          break;
        }
        ++attempts;
        if (config_.metrics != nullptr) {
          config_.metrics->GetCounter("serve.jobs.retries").Increment();
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(
            config_.retry_backoff_millis * (int64_t{1} << (attempts - 1))));
      }
      run_millis = MillisSince(run_start);
    }
  }

  std::unique_lock<std::mutex> lock(mu_);
  // Shutdown preemption is not completion: leave the journal entry
  // un-terminal so the next boot resumes the job from its checkpoint —
  // graceful drain and kill -9 share one recovery path. A client cancel
  // racing shutdown still terminates normally below.
  if (shutting_down_.load(std::memory_order_relaxed) &&
      !job.client_cancelled && ran && outcome.ok() &&
      outcome->stop_reason == StopReason::kCancelled) {
    job.status.state = JobState::kQueued;
    BumpVersion(job);
    return;
  }
  job.status.state = JobState::kDone;
  job.status.retries = attempts;
  job.status.run_millis = run_millis;
  job.status.total_millis = MillisSince(job.submitted_at);
  if (remaining <= 0) {
    // The deadline elapsed while the job sat in the queue: it is honest
    // to call that a deadline stop without burning a worker on a search
    // that has no budget left.
    job.status.stop_reason = "deadline";
  } else if (!outcome.ok()) {
    job.status.stop_reason = "error";
    job.status.partial_script = outcome.status().message();
  } else {
    const TupeloResult& r = *outcome;
    job.status.found = r.found;
    job.status.verified = r.verified;
    job.status.stop_reason = std::string(StopReasonName(r.stop_reason));
    job.status.states_examined = r.stats.states_examined;
    job.status.best_h = r.partial_h;
    job.status.resumed = r.resumed;
    if (r.found) job.status.script = r.mapping.ToScript();
    if (!r.partial_mapping.steps().empty() || r.partial_h >= 0) {
      job.status.partial_script = r.partial_mapping.ToScript();
    }
  }
  BumpVersion(job);
  JournalDone(job);
  done_order_.push_back(job.status.id);
  {
    // EWMA of job wall time feeds the shed Retry-After hint.
    double w = job.status.total_millis;
    job_millis_ewma_ =
        job_millis_ewma_ <= 0.0 ? w : 0.8 * job_millis_ewma_ + 0.2 * w;
  }
  if (config_.metrics != nullptr) {
    config_.metrics->GetCounter("serve.jobs.completed").Increment();
    config_.metrics
        ->GetHistogram("serve.job_millis")
        .Observe(static_cast<int64_t>(job.status.total_millis));
  }
  lock.unlock();
}

}  // namespace tupelo::serve
