#include "serve/client.h"

#include <unistd.h>

#include <chrono>

#include "serve/wire.h"

namespace tupelo::serve {
namespace {

using Clock = std::chrono::steady_clock;

Result<JobStatus> JobFromReply(const obs::JsonValue& reply) {
  const obs::JsonValue* ok = reply.Find("ok");
  if (ok == nullptr || !ok->as_bool()) {
    const obs::JsonValue* err = reply.Find("error");
    return Status::Internal(err != nullptr ? err->as_string()
                                           : "malformed server reply");
  }
  const obs::JsonValue* job = reply.Find("job");
  if (job == nullptr || !job->is_object()) {
    return Status::ParseError("server reply carries no job object");
  }
  JobStatus s;
  auto str = [&](std::string_view key) {
    const obs::JsonValue* m = job->Find(key);
    return m != nullptr && m->kind() == obs::JsonValue::Kind::kString
               ? m->as_string()
               : std::string();
  };
  auto num = [&](std::string_view key) -> int64_t {
    const obs::JsonValue* m = job->Find(key);
    return m != nullptr && m->is_number() ? m->as_int() : 0;
  };
  auto dbl = [&](std::string_view key) -> double {
    const obs::JsonValue* m = job->Find(key);
    return m != nullptr && m->is_number() ? m->as_double() : 0.0;
  };
  auto boolean = [&](std::string_view key) {
    const obs::JsonValue* m = job->Find(key);
    return m != nullptr && m->kind() == obs::JsonValue::Kind::kBool &&
           m->as_bool();
  };
  s.id = str("id");
  s.tenant = str("tenant");
  const std::string state = str("state");
  s.state = state == "done"      ? JobState::kDone
            : state == "running" ? JobState::kRunning
                                 : JobState::kQueued;
  s.version = static_cast<uint64_t>(num("version"));
  s.states_examined = static_cast<uint64_t>(num("states_examined"));
  s.best_h = static_cast<int>(num("best_h"));
  s.partial_script = str("partial_script");
  s.found = boolean("found");
  s.verified = boolean("verified");
  s.stop_reason = str("stop_reason");
  s.script = str("script");
  s.queue_millis = dbl("queue_millis");
  s.run_millis = dbl("run_millis");
  s.total_millis = dbl("total_millis");
  s.retries = static_cast<int>(num("retries"));
  s.resumed = boolean("resumed");
  return s;
}

}  // namespace

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Client> Client::Connect(const std::string& host, uint16_t port) {
  Client client;
  TUPELO_ASSIGN_OR_RETURN(client.fd_, ConnectTo(host, port));
  return client;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<obs::JsonValue> Client::RoundTrip(const obs::JsonValue& request) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  TUPELO_RETURN_IF_ERROR(WriteFrame(fd_, request));
  return ReadFrame(fd_);
}

Result<SubmitReply> Client::Submit(const JobSpec& spec) {
  obs::JsonValue request = obs::JsonValue::Object();
  request["op"] = "submit";
  request["spec"] = SpecToJson(spec);
  TUPELO_ASSIGN_OR_RETURN(obs::JsonValue reply, RoundTrip(request));
  const obs::JsonValue* ok = reply.Find("ok");
  if (ok == nullptr || !ok->as_bool()) {
    const obs::JsonValue* err = reply.Find("error");
    return Status::InvalidArgument(err != nullptr ? err->as_string()
                                                  : "malformed server reply");
  }
  SubmitReply out;
  const obs::JsonValue* accepted = reply.Find("accepted");
  out.accepted = accepted != nullptr && accepted->as_bool();
  const obs::JsonValue* job = reply.Find("job");
  if (job != nullptr && job->kind() == obs::JsonValue::Kind::kString) {
    out.job_id = job->as_string();
  }
  const obs::JsonValue* depth = reply.Find("queue_depth");
  if (depth != nullptr && depth->is_number()) {
    out.queue_depth = static_cast<size_t>(depth->as_uint());
  }
  const obs::JsonValue* retry = reply.Find("retry_after_millis");
  if (retry != nullptr && retry->is_number()) {
    out.retry_after_millis = retry->as_int();
  }
  return out;
}

Result<JobStatus> Client::GetStatus(const std::string& job_id) {
  obs::JsonValue request = obs::JsonValue::Object();
  request["op"] = "status";
  request["job"] = job_id;
  TUPELO_ASSIGN_OR_RETURN(obs::JsonValue reply, RoundTrip(request));
  return JobFromReply(reply);
}

Result<JobStatus> Client::Stream(const std::string& job_id,
                                 uint64_t after_version,
                                 int64_t timeout_millis) {
  obs::JsonValue request = obs::JsonValue::Object();
  request["op"] = "stream";
  request["job"] = job_id;
  request["after_version"] = after_version;
  request["timeout_millis"] = timeout_millis;
  TUPELO_ASSIGN_OR_RETURN(obs::JsonValue reply, RoundTrip(request));
  return JobFromReply(reply);
}

Result<JobStatus> Client::AwaitTerminal(const std::string& job_id,
                                        int64_t deadline_millis) {
  Clock::time_point start = Clock::now();
  uint64_t version = 0;
  for (;;) {
    double elapsed =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    int64_t left = deadline_millis - static_cast<int64_t>(elapsed);
    if (left <= 0) {
      return Status::OutOfRange("job " + job_id +
                                " still running at client deadline");
    }
    TUPELO_ASSIGN_OR_RETURN(
        JobStatus s, Stream(job_id, version, std::min<int64_t>(left, 500)));
    if (s.state == JobState::kDone) return s;
    version = s.version;
  }
}

Result<bool> Client::Cancel(const std::string& job_id) {
  obs::JsonValue request = obs::JsonValue::Object();
  request["op"] = "cancel";
  request["job"] = job_id;
  TUPELO_ASSIGN_OR_RETURN(obs::JsonValue reply, RoundTrip(request));
  const obs::JsonValue* cancelled = reply.Find("cancelled");
  return cancelled != nullptr && cancelled->as_bool();
}

Result<obs::JsonValue> Client::Metrics() {
  obs::JsonValue request = obs::JsonValue::Object();
  request["op"] = "metrics";
  return RoundTrip(request);
}

Status Client::Ping() {
  obs::JsonValue request = obs::JsonValue::Object();
  request["op"] = "ping";
  return RoundTrip(request).status();
}

Status Client::RequestShutdown() {
  obs::JsonValue request = obs::JsonValue::Object();
  request["op"] = "shutdown";
  return RoundTrip(request).status();
}

}  // namespace tupelo::serve
