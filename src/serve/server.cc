#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <utility>

#include "obs/trace.h"
#include "serve/wire.h"

namespace tupelo::serve {
namespace {

obs::JsonValue ErrorResponse(const Status& status) {
  obs::JsonValue v = obs::JsonValue::Object();
  v["ok"] = false;
  v["error"] = status.message();
  v["code"] = std::string(StatusCodeToString(status.code()));
  return v;
}

obs::JsonValue OkResponse() {
  obs::JsonValue v = obs::JsonValue::Object();
  v["ok"] = true;
  return v;
}

}  // namespace

Server::Server(ServerConfig config) : config_(std::move(config)) {
  jobs_ = std::make_unique<JobManager>(config_.jobs);
}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  TUPELO_RETURN_IF_ERROR(jobs_->Start());
  TUPELO_ASSIGN_OR_RETURN(listen_fd_,
                          ListenOn(config_.port, config_.backlog));
  TUPELO_ASSIGN_OR_RETURN(port_, BoundPort(listen_fd_));
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Shutdown() {
  if (stopped_.exchange(true, std::memory_order_relaxed)) return;
  RequestStop();
  // Closing the listener kicks the accept loop's poll; connection loops
  // notice stop_requested_ at their next read timeout.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (std::thread& t : connections_) {
      if (t.joinable()) t.join();
    }
    connections_.clear();
  }
  // Last: preempt running jobs so their final checkpoints are on disk
  // before the process exits.
  jobs_->Shutdown();
}

void Server::WaitUntilStopRequested() {
  while (!stop_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

void Server::AcceptLoop() {
  while (!stop_requested()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 100);
    if (stop_requested()) break;
    if (ready <= 0) continue;
    Result<int> fd = AcceptOn(listen_fd_);
    if (!fd.ok()) {
      if (stop_requested()) break;
      continue;
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections_.emplace_back([this, conn = *fd] { ServeConnection(conn); });
  }
}

void Server::ServeConnection(int fd) {
  obs::MetricRegistry* metrics = config_.jobs.metrics;
  if (metrics != nullptr) metrics->GetCounter("serve.connections").Increment();
  // Jobs this connection submitted with cancel_on_disconnect: if the
  // client vanishes, their CancelTokens fire (benign when the job already
  // finished).
  std::vector<std::string> session_jobs;
  for (;;) {
    // Bounded read: poll with a short timeout so a dead or idle client
    // cannot pin the thread past shutdown.
    pollfd pfd{fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 100);
    if (stop_requested()) break;
    if (ready < 0) break;
    if (ready == 0) continue;
    Result<obs::JsonValue> request = ReadFrame(fd);
    if (!request.ok()) {
      // NotFound is a clean client close; anything else is a torn frame —
      // either way the conversation is over.
      break;
    }
    obs::JsonValue response = Dispatch(*request, session_jobs);
    if (!WriteFrame(fd, response).ok()) break;
  }
  ::close(fd);
  jobs_->OnClientDisconnect(session_jobs);
  if (metrics != nullptr) metrics->GetCounter("serve.disconnects").Increment();
}

obs::JsonValue Server::Dispatch(const obs::JsonValue& request,
                                std::vector<std::string>& session_jobs) {
  obs::MetricRegistry* metrics = config_.jobs.metrics;
  obs::TraceSpan span(config_.jobs.trace, obs::TraceCategory::kDriver,
                      "serve.request");
  const obs::JsonValue* op_field =
      request.is_object() ? request.Find("op") : nullptr;
  const std::string op =
      op_field != nullptr && op_field->kind() == obs::JsonValue::Kind::kString
          ? op_field->as_string()
          : "";
  if (metrics != nullptr) {
    metrics->GetCounter("serve.requests").Increment();
  }
  auto job_id = [&]() -> std::string {
    const obs::JsonValue* j = request.Find("job");
    return j != nullptr && j->kind() == obs::JsonValue::Kind::kString
               ? j->as_string()
               : "";
  };

  if (op == "ping") {
    obs::JsonValue v = OkResponse();
    v["server"] = "tupelo_serve";
    return v;
  }
  if (op == "submit") {
    const obs::JsonValue* spec_json = request.Find("spec");
    if (spec_json == nullptr) {
      return ErrorResponse(Status::InvalidArgument("submit: missing spec"));
    }
    Result<JobSpec> spec = SpecFromJson(*spec_json);
    if (!spec.ok()) return ErrorResponse(spec.status());
    const bool disconnect_cancel = spec->cancel_on_disconnect;
    Result<SubmitOutcome> outcome = jobs_->Submit(std::move(*spec));
    if (!outcome.ok()) return ErrorResponse(outcome.status());
    obs::JsonValue v = obs::JsonValue::Object();
    v["ok"] = true;
    v["accepted"] = outcome->accepted;
    v["queue_depth"] = static_cast<uint64_t>(outcome->queue_depth);
    if (outcome->accepted) {
      v["job"] = outcome->job_id;
      if (disconnect_cancel) session_jobs.push_back(outcome->job_id);
    } else {
      // The typed shed: overloaded, try again after the hint. The client
      // was never admitted, so nothing was accepted-then-dropped.
      v["error"] = "overloaded";
      v["code"] = std::string(StatusCodeToString(StatusCode::kResourceExhausted));
      v["retry_after_millis"] = outcome->retry_after_millis;
    }
    return v;
  }
  if (op == "status" || op == "result") {
    Result<JobStatus> status = jobs_->GetStatus(job_id());
    if (!status.ok()) return ErrorResponse(status.status());
    obs::JsonValue v = OkResponse();
    v["job"] = StatusToJson(*status);
    return v;
  }
  if (op == "stream") {
    const obs::JsonValue* after = request.Find("after_version");
    const obs::JsonValue* timeout = request.Find("timeout_millis");
    Result<JobStatus> status = jobs_->WaitUpdate(
        job_id(),
        after != nullptr && after->is_number() ? after->as_uint() : 0,
        timeout != nullptr && timeout->is_number() ? timeout->as_int() : 1000);
    if (!status.ok()) return ErrorResponse(status.status());
    obs::JsonValue v = OkResponse();
    v["job"] = StatusToJson(*status);
    return v;
  }
  if (op == "cancel") {
    obs::JsonValue v = OkResponse();
    v["cancelled"] = jobs_->Cancel(job_id());
    return v;
  }
  if (op == "metrics") {
    obs::JsonValue v = OkResponse();
    v["queue_depth"] = static_cast<uint64_t>(jobs_->queue_depth());
    v["active_jobs"] = static_cast<uint64_t>(jobs_->active_jobs());
    v["jobs_recovered"] = jobs_->jobs_recovered();
    if (metrics != nullptr) v["metrics"] = metrics->ToJson();
    return v;
  }
  if (op == "shutdown") {
    // Trusted-tenant remote stop (the loadgen and the chaos campaign use
    // it for clean teardown). The response is written before the accept
    // loop notices the flag, so the client gets an ack.
    RequestStop();
    return OkResponse();
  }
  return ErrorResponse(
      Status::InvalidArgument("unknown op: '" + op + "'"));
}

}  // namespace tupelo::serve
