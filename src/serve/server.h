#ifndef TUPELO_SERVE_SERVER_H_
#define TUPELO_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "serve/job_manager.h"

namespace tupelo::serve {

struct ServerConfig {
  // 0 binds an ephemeral loopback port; read it back with Server::port()
  // (the daemon prints "listening <port>" for scripts to scrape).
  uint16_t port = 0;
  int backlog = 64;
  JobManagerConfig jobs;
};

// The discovery service: a framed-JSON request/response loop (serve/wire.h)
// over a JobManager. Thread-per-connection — tenant counts are tens, not
// thousands, and a blocked connection must never stall a sibling.
//
// Request ops (full catalog in docs/SERVING.md):
//   submit | status | stream | cancel | result | metrics | ping | shutdown
//
// Every response carries "ok"; failures add "error" plus a typed "code",
// and a shed submit adds "retry_after_millis" — the load-shedding hint.
class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Recovers the job journal, binds the listen socket, starts the accept
  // loop. On success port() is the bound port.
  Status Start();

  // Graceful stop: closes the listener, wakes the connection threads,
  // preempts running jobs (JobManager::Shutdown), joins everything.
  // Checkpoints flushed by the preempted jobs make the next Start()
  // resume them — the SIGTERM path and kill -9 converge. Safe to call
  // twice; RequestStop() is the async trigger signal handlers use.
  void Shutdown();
  void RequestStop() { stop_requested_.store(true, std::memory_order_relaxed); }
  bool stop_requested() const {
    return stop_requested_.load(std::memory_order_relaxed);
  }

  // Blocks until RequestStop() (signal) or a client shutdown op.
  void WaitUntilStopRequested();

  uint16_t port() const { return port_; }
  JobManager& jobs() { return *jobs_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  obs::JsonValue Dispatch(const obs::JsonValue& request,
                          std::vector<std::string>& session_jobs);

  ServerConfig config_;
  std::unique_ptr<JobManager> jobs_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> stopped_{false};
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> connections_;
};

}  // namespace tupelo::serve

#endif  // TUPELO_SERVE_SERVER_H_
