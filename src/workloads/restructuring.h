#ifndef TUPELO_WORKLOADS_RESTRUCTURING_H_
#define TUPELO_WORKLOADS_RESTRUCTURING_H_

#include <cstddef>
#include <vector>

#include "core/mapping_problem.h"
#include "relational/database.h"

namespace tupelo {

// A parametric generalization of Fig. 1: the same flight-price information
// under three natural schemas, scaled by the number of carriers and
// routes. The paper's §5.4 points to its companion workshop paper [11]
// for validation on exactly these data-metadata restructurings; this
// generator drives that experiment at any size.
//
//   wide:   Flights(Carrier, Fee, R1, ..., Rn)        one column per route
//   flat:   Prices(Carrier, Route, Cost, AgentFee)    one row per (carrier, route)
//   split:  one relation per carrier: C(Route, BaseCost, TotalCost)
//           with TotalCost = Cost + AgentFee (the λ correspondence)
//
// All three carry identical information; every pair is a valid
// mapping-discovery task. flat -> wide exercises ↑/π̄/µ, wide -> flat
// exercises ↓, flat -> split exercises ℘/λ.
struct RestructuringWorkload {
  Database wide;
  Database flat;
  Database split;
  // The complex correspondence needed for `split` targets:
  // TotalCost = add(Cost, AgentFee).
  std::vector<SemanticCorrespondence> flat_to_split;
};

// Deterministic in (num_carriers, num_routes); both must be ≥ 1.
RestructuringWorkload MakeRestructuringWorkload(size_t num_carriers,
                                                size_t num_routes);

}  // namespace tupelo

#endif  // TUPELO_WORKLOADS_RESTRUCTURING_H_
