#include "workloads/synthetic.h"

#include <cassert>
#include <string>
#include <utility>
#include <vector>

namespace tupelo {
namespace {

std::string Padded(size_t i, size_t width) {
  std::string digits = std::to_string(i);
  while (digits.size() < width) digits.insert(digits.begin(), '0');
  return digits;
}

Database MakeSide(const char* prefix, size_t n) {
  size_t width = std::to_string(n).size();
  std::vector<std::string> attrs;
  std::vector<std::string> row;
  attrs.reserve(n);
  row.reserve(n);
  for (size_t i = 1; i <= n; ++i) {
    attrs.push_back(prefix + Padded(i, width));
    row.push_back("a" + Padded(i, width));
  }
  Result<Relation> r = Relation::Create("R", std::move(attrs));
  assert(r.ok());
  Relation rel = std::move(r).value();
  Status st = rel.AddRow(row);
  assert(st.ok());
  (void)st;
  Database db;
  (void)db.AddRelation(std::move(rel));
  return db;
}

}  // namespace

SyntheticMatchingPair MakeSyntheticMatchingPair(size_t n) {
  return SyntheticMatchingPair{MakeSide("A", n), MakeSide("B", n)};
}

}  // namespace tupelo
