#include "workloads/restructuring.h"

#include <cassert>
#include <string>
#include <utility>

namespace tupelo {
namespace {

std::string CarrierName(size_t c) { return "Carrier" + std::to_string(c + 1); }

std::string RouteName(size_t r) { return "RT" + std::to_string(r + 1); }

// Deterministic synthetic prices.
int BaseCost(size_t c, size_t r) {
  return 100 + static_cast<int>(c) * 100 + static_cast<int>(r) * 10;
}

int AgentFee(size_t c) { return 10 + static_cast<int>(c); }

}  // namespace

RestructuringWorkload MakeRestructuringWorkload(size_t num_carriers,
                                                size_t num_routes) {
  assert(num_carriers >= 1 && num_routes >= 1);
  RestructuringWorkload out;

  // wide: Flights(Carrier, Fee, R1..Rn).
  {
    std::vector<std::string> attrs = {"Carrier", "Fee"};
    for (size_t r = 0; r < num_routes; ++r) attrs.push_back(RouteName(r));
    Result<Relation> rel = Relation::Create("Flights", std::move(attrs));
    assert(rel.ok());
    for (size_t c = 0; c < num_carriers; ++c) {
      std::vector<std::string> row = {CarrierName(c),
                                      std::to_string(AgentFee(c))};
      for (size_t r = 0; r < num_routes; ++r) {
        row.push_back(std::to_string(BaseCost(c, r)));
      }
      Status st = rel->AddRow(row);
      assert(st.ok());
      (void)st;
    }
    (void)out.wide.AddRelation(std::move(rel).value());
  }

  // flat: Prices(Carrier, Route, Cost, AgentFee).
  {
    Result<Relation> rel = Relation::Create(
        "Prices", {"Carrier", "Route", "Cost", "AgentFee"});
    assert(rel.ok());
    for (size_t r = 0; r < num_routes; ++r) {
      for (size_t c = 0; c < num_carriers; ++c) {
        Status st = rel->AddRow({CarrierName(c), RouteName(r),
                                 std::to_string(BaseCost(c, r)),
                                 std::to_string(AgentFee(c))});
        assert(st.ok());
        (void)st;
      }
    }
    (void)out.flat.AddRelation(std::move(rel).value());
  }

  // split: one relation per carrier with TotalCost = Cost + AgentFee.
  for (size_t c = 0; c < num_carriers; ++c) {
    Result<Relation> rel = Relation::Create(
        CarrierName(c), {"Route", "BaseCost", "TotalCost"});
    assert(rel.ok());
    for (size_t r = 0; r < num_routes; ++r) {
      int base = BaseCost(c, r);
      Status st = rel->AddRow({RouteName(r), std::to_string(base),
                               std::to_string(base + AgentFee(c))});
      assert(st.ok());
      (void)st;
    }
    (void)out.split.AddRelation(std::move(rel).value());
  }

  out.flat_to_split = {
      SemanticCorrespondence{"add", {"Cost", "AgentFee"}, "TotalCost"}};
  return out;
}

}  // namespace tupelo
