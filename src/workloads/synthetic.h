#ifndef TUPELO_WORKLOADS_SYNTHETIC_H_
#define TUPELO_WORKLOADS_SYNTHETIC_H_

#include <cstddef>

#include "relational/database.h"

namespace tupelo {

// The synthetic schema-matching workload of Experiment 1 (§5.1): a pair of
// single-relation schemas with n attributes each,
//
//   source:  R(A1, ..., An) with one tuple (a1, ..., an)
//   target:  R(B1, ..., Bn) with one tuple (a1, ..., an)
//
// so discovering the mapping means finding the matchings Ai ↔ Bi. Indices
// are zero-padded ("A01") so lexicographic successor order aligns source
// and target the same way for every n.
struct SyntheticMatchingPair {
  Database source;
  Database target;
};

SyntheticMatchingPair MakeSyntheticMatchingPair(size_t n);

}  // namespace tupelo

#endif  // TUPELO_WORKLOADS_SYNTHETIC_H_
