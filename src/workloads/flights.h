#ifndef TUPELO_WORKLOADS_FLIGHTS_H_
#define TUPELO_WORKLOADS_FLIGHTS_H_

#include <vector>

#include "core/mapping_problem.h"
#include "fira/expression.h"
#include "relational/database.h"

namespace tupelo {

// The three airline flight-price databases of Fig. 1 — the paper's running
// example. All three carry the same information content:
//
//   FlightsA:  Flights(Carrier, Fee, ATL29, ORD17)       route fares as columns
//   FlightsB:  Prices(Carrier, Route, Cost, AgentFee)    fully flat
//   FlightsC:  AirEast(Route, BaseCost, TotalCost)       one relation per carrier,
//              JetWest(Route, BaseCost, TotalCost)       TotalCost = Cost + Fee
Database MakeFlightsA();
Database MakeFlightsB();
Database MakeFlightsC();

// The hand-written mapping of Example 2 (FlightsB -> FlightsA):
//   promote Route/Cost, drop Route and Cost, merge on Carrier, rename
//   AgentFee->Fee and Prices->Flights.
MappingExpression FlightsBToAExpression();

// The complex correspondence of Example 5/6 (FlightsB -> FlightsC):
// TotalCost = add(Cost, AgentFee). Uses the builtin "add" function.
std::vector<SemanticCorrespondence> FlightsBToCCorrespondences();

}  // namespace tupelo

#endif  // TUPELO_WORKLOADS_FLIGHTS_H_
