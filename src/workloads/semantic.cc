#include "workloads/semantic.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

#include "fira/builtin_functions.h"
#include "fira/executor.h"

namespace tupelo {
namespace {

struct DomainData {
  const char* source_relation;
  const char* target_relation;
  std::vector<std::string> attrs;
  std::vector<std::vector<std::string>> rows;  // critical instance
  // Two base attributes renamed between source and target, so the mapping
  // always mixes structural matching with the λ steps.
  std::pair<const char*, const char*> rename1;
  std::pair<const char*, const char*> rename2;
  std::vector<SemanticCorrespondence> catalog;
};

DomainData InventoryData() {
  DomainData d;
  d.source_relation = "Inventory";
  d.target_relation = "Stock";
  d.attrs = {"item", "brand",    "model", "code",   "category", "quantity",
             "price", "tax",     "cost",  "discount", "restock", "msrp"};
  d.rows = {
      {"widget", "Acme", "X100", "ab12", "TOOLS", "3", "100", "8", "60",
       "25", "07/04/2026", "12.34"},
      {"gadget", "Apex", "Z9", "cd34", "PARTS", "5", "40", "3", "22",
       "10", "11/30/2026", "8.05"},
  };
  d.rename1 = {"item", "product"};
  d.rename2 = {"brand", "maker"};
  d.catalog = {
      {"add", {"price", "tax"}, "total"},
      {"concat_ws", {"brand", "model"}, "label"},
      {"usd_to_cents", {"msrp"}, "msrp_cents"},
      {"upper", {"code"}, "code_uc"},
      {"date_us_to_iso", {"restock"}, "restock_iso"},
      {"sub", {"price", "cost"}, "margin"},
      {"mul", {"quantity", "price"}, "stock_value"},
      {"scale_pct", {"price", "discount"}, "discount_amount"},
      {"lower", {"category"}, "category_lc"},
      {"concat", {"code", "quantity"}, "sku"},
  };
  return d;
}

DomainData RealEstateData() {
  DomainData d;
  d.source_relation = "Listings";
  d.target_relation = "HousesForSale";
  d.attrs = {"street",  "city",  "state",       "zip",  "beds",
             "baths",   "sqft",  "lot_sqft",    "price", "listed",
             "agent_first", "agent_last", "commission_pct", "hoa"};
  d.rows = {
      {"12-Oak-St", "Bloomington", "in", "47401", "3", "2", "1800", "7500",
       "250000", "05/01/2026", "Jane", "Doe", "6", "1200"},
      {"9-Elm-Ave", "Columbus", "oh", "43004", "4", "3", "2400", "9000",
       "310000", "06/15/2026", "John", "Smith", "5", "900"},
  };
  d.rename1 = {"street", "address"};
  d.rename2 = {"zip", "postal_code"};
  d.catalog = {
      {"concat_ws", {"city", "state"}, "location"},
      {"full_name", {"agent_last", "agent_first"}, "agent"},
      {"sqft_to_sqm", {"sqft"}, "sqm"},
      {"sqft_to_sqm", {"lot_sqft"}, "lot_sqm"},
      {"add", {"beds", "baths"}, "rooms"},
      {"date_us_to_iso", {"listed"}, "listed_iso"},
      {"scale_pct", {"price", "commission_pct"}, "commission"},
      {"upper", {"state"}, "state_uc"},
      {"lower", {"street"}, "street_lc"},
      {"concat", {"zip", "state"}, "region_code"},
      {"sub", {"price", "hoa"}, "net_price"},
      {"mul", {"beds", "baths"}, "bed_bath_index"},
  };
  return d;
}

DomainData GetDomainData(SemanticDomain domain) {
  switch (domain) {
    case SemanticDomain::kInventory:
      return InventoryData();
    case SemanticDomain::kRealEstate:
      return RealEstateData();
  }
  return InventoryData();
}

}  // namespace

std::string_view SemanticDomainName(SemanticDomain domain) {
  switch (domain) {
    case SemanticDomain::kInventory:
      return "Inventory";
    case SemanticDomain::kRealEstate:
      return "RealEstateII";
  }
  return "unknown";
}

size_t SemanticDomainFunctionCount(SemanticDomain domain) {
  return GetDomainData(domain).catalog.size();
}

SemanticWorkload MakeSemanticWorkload(SemanticDomain domain,
                                      size_t num_functions) {
  DomainData data = GetDomainData(domain);
  num_functions = std::min(num_functions, data.catalog.size());

  SemanticWorkload out;
  out.domain = domain;
  Status st = RegisterBuiltinFunctions(&out.registry);
  assert(st.ok());
  (void)st;

  // Source: the critical instance under the source schema.
  {
    Result<Relation> r = Relation::Create(data.source_relation, data.attrs);
    assert(r.ok());
    Relation rel = std::move(r).value();
    for (const std::vector<std::string>& row : data.rows) {
      Status add = rel.AddRow(row);
      assert(add.ok());
      (void)add;
    }
    (void)out.source.AddRelation(std::move(rel));
  }

  out.correspondences.assign(data.catalog.begin(),
                             data.catalog.begin() +
                                 static_cast<ptrdiff_t>(num_functions));

  // Target: materialize the chosen correspondences by executing them on
  // the source instance, then apply the structural renames and project the
  // target attribute set (two renamed base attributes + the λ outputs).
  Database work = out.source;
  for (const SemanticCorrespondence& c : out.correspondences) {
    Result<Database> next =
        ApplyOp(ApplyFunctionOp{data.source_relation, c.function, c.inputs,
                                c.output},
                work, &out.registry);
    assert(next.ok());
    work = std::move(next).value();
  }
  {
    Result<Database> next = ApplyOp(
        RenameAttrOp{data.source_relation, data.rename1.first,
                     data.rename1.second},
        work, nullptr);
    assert(next.ok());
    work = std::move(next).value();
    next = ApplyOp(RenameAttrOp{data.source_relation, data.rename2.first,
                                data.rename2.second},
                   work, nullptr);
    assert(next.ok());
    work = std::move(next).value();
    next = ApplyOp(RenameRelOp{data.source_relation, data.target_relation},
                   work, nullptr);
    assert(next.ok());
    work = std::move(next).value();
  }

  // Project to the target attribute list.
  std::vector<std::string> target_attrs = {data.rename1.second,
                                           data.rename2.second};
  for (const SemanticCorrespondence& c : out.correspondences) {
    target_attrs.push_back(c.output);
  }
  Result<const Relation*> full = work.GetRelation(data.target_relation);
  assert(full.ok());
  Result<std::vector<Tuple>> projected =
      (*full)->ProjectTuples(target_attrs);
  assert(projected.ok());
  Result<Relation> target_rel =
      Relation::Create(data.target_relation, target_attrs);
  assert(target_rel.ok());
  for (Tuple& t : projected.value()) {
    Status add = target_rel->AddTuple(std::move(t));
    assert(add.ok());
    (void)add;
  }
  (void)out.target.AddRelation(std::move(target_rel).value());
  return out;
}

}  // namespace tupelo
