#include "workloads/bamm.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <random>
#include <utility>

namespace tupelo {
namespace {

struct AttributeSpec {
  const char* canonical;
  std::vector<const char*> synonyms;  // alternatives, canonical not repeated
  const char* value;                  // critical-instance value
};

struct DomainSpec {
  const char* relation;
  std::vector<const char*> relation_synonyms;
  std::vector<AttributeSpec> attributes;  // exactly 8, like the BAMM max
};

const DomainSpec& GetDomainSpec(BammDomain domain) {
  static const DomainSpec* const kBooks = new DomainSpec{
      "Books",
      {"BookSearch", "BookQuery", "FindBooks"},
      {
          {"Title", {"BookTitle", "Name", "TitleKeyword"}, "TheHobbit"},
          {"Author", {"Writer", "AuthorName", "By"}, "Tolkien"},
          {"ISBN", {"Isbn13", "BookCode", "Identifier"}, "9780261103344"},
          {"Publisher", {"Press", "Imprint"}, "Allen-Unwin"},
          {"Year", {"PubYear", "Published", "ReleaseYear"}, "1937"},
          {"Price", {"Cost", "Amount", "ListPrice"}, "12.99"},
          {"Format", {"Binding", "Edition"}, "Hardcover"},
          {"Subject", {"Category", "Genre", "Keyword"}, "Fantasy"},
      }};
  static const DomainSpec* const kAutos = new DomainSpec{
      "Autos",
      {"CarSearch", "Vehicles", "AutoFinder"},
      {
          {"Make", {"Brand", "Manufacturer"}, "Toyota"},
          {"Model", {"ModelName", "Line"}, "Corolla"},
          {"Year", {"ModelYear", "Vintage"}, "2004"},
          {"Price", {"Cost", "AskingPrice", "Amount"}, "10500"},
          {"Mileage", {"Miles", "Odometer"}, "42000"},
          {"Color", {"Colour", "ExteriorColor", "Paint"}, "Silver"},
          {"ZipCode", {"Zip", "PostalCode", "Location"}, "47401"},
          {"BodyStyle", {"Body", "Type", "Class"}, "Sedan"},
      }};
  static const DomainSpec* const kMusic = new DomainSpec{
      "Music",
      {"MusicSearch", "Albums", "CDStore"},
      {
          {"Artist", {"Band", "Performer", "Musician"}, "Coltrane"},
          {"Album", {"AlbumTitle", "Record", "Release"}, "BlueTrain"},
          {"Song", {"Track", "SongTitle", "TrackName"}, "Moments-Notice"},
          {"Genre", {"Style", "Category"}, "Jazz"},
          {"Year", {"ReleaseYear", "Released"}, "1957"},
          {"Label", {"RecordLabel", "Publisher"}, "BlueNote"},
          {"Price", {"Cost", "Amount"}, "9.99"},
          {"Format", {"Media", "MediaType"}, "CD"},
      }};
  static const DomainSpec* const kMovies = new DomainSpec{
      "Movies",
      {"MovieSearch", "Films", "FilmFinder"},
      {
          {"Title", {"MovieTitle", "FilmTitle", "Name"}, "Metropolis"},
          {"Director", {"DirectedBy", "Filmmaker"}, "Lang"},
          {"Actor", {"Star", "Cast", "Starring"}, "Helm"},
          {"Genre", {"Category", "Kind"}, "SciFi"},
          {"Year", {"ReleaseYear", "Released"}, "1927"},
          {"Rating", {"MPAA", "Certificate"}, "NR"},
          {"Studio", {"Distributor", "Producer"}, "UFA"},
          {"Format", {"Media", "Edition"}, "DVD"},
      }};
  switch (domain) {
    case BammDomain::kBooks:
      return *kBooks;
    case BammDomain::kAutos:
      return *kAutos;
    case BammDomain::kMusic:
      return *kMusic;
    case BammDomain::kMovies:
      return *kMovies;
  }
  return *kBooks;
}

Database MakeInstance(const std::string& relation_name,
                      const std::vector<std::string>& attrs,
                      const std::vector<std::string>& values) {
  Result<Relation> r = Relation::Create(relation_name, attrs);
  assert(r.ok());
  Relation rel = std::move(r).value();
  Status st = rel.AddRow(values);
  assert(st.ok());
  (void)st;
  Database db;
  (void)db.AddRelation(std::move(rel));
  return db;
}

}  // namespace

const std::vector<BammDomain>& AllBammDomains() {
  static const std::vector<BammDomain>* const kDomains =
      new std::vector<BammDomain>{BammDomain::kBooks, BammDomain::kAutos,
                                  BammDomain::kMusic, BammDomain::kMovies};
  return *kDomains;
}

std::string_view BammDomainName(BammDomain domain) {
  switch (domain) {
    case BammDomain::kBooks:
      return "Books";
    case BammDomain::kAutos:
      return "Auto";
    case BammDomain::kMusic:
      return "Music";
    case BammDomain::kMovies:
      return "Movies";
  }
  return "unknown";
}

size_t BammDomainSchemaCount(BammDomain domain) {
  // §5.2: 55, 55, 49, 52 schemas for Books, Automobiles, Music, Movies.
  switch (domain) {
    case BammDomain::kBooks:
      return 55;
    case BammDomain::kAutos:
      return 55;
    case BammDomain::kMusic:
      return 49;
    case BammDomain::kMovies:
      return 52;
  }
  return 0;
}

BammWorkload MakeBammWorkload(BammDomain domain, uint64_t seed) {
  const DomainSpec& spec = GetDomainSpec(domain);
  std::mt19937_64 rng(seed ^ (static_cast<uint64_t>(domain) << 32));

  BammWorkload out;
  out.domain = domain;

  // The fixed source: the full vocabulary under canonical names.
  {
    std::vector<std::string> attrs;
    std::vector<std::string> values;
    for (const AttributeSpec& a : spec.attributes) {
      attrs.push_back(a.canonical);
      values.push_back(a.value);
    }
    out.source = MakeInstance(spec.relation, attrs, values);
  }

  size_t total = BammDomainSchemaCount(domain);
  // BAMM query interfaces have 1–8 attributes; skew toward the middle like
  // real query forms (triangular-ish via sum of two dice).
  std::uniform_int_distribution<size_t> die(0, 3);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  for (size_t s = 1; s < total; ++s) {
    size_t k = 1 + die(rng) + die(rng);  // 1..7
    if (coin(rng) < 0.15) k = 8;         // occasional full-width schema
    k = std::min<size_t>(k, spec.attributes.size());

    std::vector<size_t> order(spec.attributes.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::shuffle(order.begin(), order.end(), rng);
    order.resize(k);
    std::sort(order.begin(), order.end());  // stable attribute ordering

    std::vector<std::string> attrs;
    std::vector<std::string> values;
    BammGroundTruth truth;
    for (size_t idx : order) {
      const AttributeSpec& a = spec.attributes[idx];
      // Usually keep the canonical label (real query interfaces share
      // most labels); sometimes pick a synonym that will need a rename.
      if (!a.synonyms.empty() && coin(rng) < 0.35) {
        std::uniform_int_distribution<size_t> pick(0, a.synonyms.size() - 1);
        attrs.push_back(a.synonyms[pick(rng)]);
        truth.attribute_renames.emplace_back(a.canonical, attrs.back());
      } else {
        attrs.push_back(a.canonical);
      }
      values.push_back(a.value);
    }

    std::string rel_name = spec.relation;
    if (coin(rng) < 0.3 && !spec.relation_synonyms.empty()) {
      std::uniform_int_distribution<size_t> pick(
          0, spec.relation_synonyms.size() - 1);
      rel_name = spec.relation_synonyms[pick(rng)];
      truth.relation_rename = rel_name;
    }
    out.targets.push_back(MakeInstance(rel_name, attrs, values));
    out.ground_truth.push_back(std::move(truth));
  }
  return out;
}

}  // namespace tupelo
