#ifndef TUPELO_WORKLOADS_SEMANTIC_H_
#define TUPELO_WORKLOADS_SEMANTIC_H_

#include <cstddef>
#include <string_view>
#include <vector>

#include "core/mapping_problem.h"
#include "fira/function_registry.h"
#include "relational/database.h"

namespace tupelo {

// A synthetic stand-in for Experiment 3 (§5.3): the Illinois Semantic
// Integration Archive's Inventory (10 complex mappings) and Real Estate II
// (12 complex mappings) domains. The archive is offline; these workloads
// reproduce what the experiment measures — search cost as a function of
// the number of complex (many-to-one) semantic correspondences between a
// source and target schema — by pairing a realistic source schema with a
// target whose first `num_functions` attributes are materialized complex
// functions of source attributes (plus a relation rename and two attribute
// renames, so the mapping is never a pure λ pipeline). See DESIGN.md §2.
enum class SemanticDomain { kInventory, kRealEstate };

std::string_view SemanticDomainName(SemanticDomain domain);

// 10 for Inventory, 12 for Real Estate II (the counts in §5.3).
size_t SemanticDomainFunctionCount(SemanticDomain domain);

struct SemanticWorkload {
  SemanticDomain domain;
  Database source;
  Database target;
  // Exactly the correspondences materialized in `target` (the first
  // `num_functions` of the domain's catalog).
  std::vector<SemanticCorrespondence> correspondences;
  // Registry providing every function the domain uses (the builtins).
  FunctionRegistry registry;
};

// `num_functions` is clamped to [0, SemanticDomainFunctionCount(domain)].
SemanticWorkload MakeSemanticWorkload(SemanticDomain domain,
                                      size_t num_functions);

}  // namespace tupelo

#endif  // TUPELO_WORKLOADS_SEMANTIC_H_
