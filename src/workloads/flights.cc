#include "workloads/flights.h"

#include <cassert>
#include <utility>

namespace tupelo {
namespace {

Relation MustRelation(const char* name, std::vector<std::string> attrs,
                      std::vector<std::vector<std::string>> rows) {
  Result<Relation> r = Relation::Create(name, std::move(attrs));
  assert(r.ok());
  Relation rel = std::move(r).value();
  for (std::vector<std::string>& row : rows) {
    Status st = rel.AddRow(row);
    assert(st.ok());
    (void)st;
  }
  return rel;
}

}  // namespace

Database MakeFlightsA() {
  Database db;
  (void)db.AddRelation(MustRelation("Flights",
                                    {"Carrier", "Fee", "ATL29", "ORD17"},
                                    {{"AirEast", "15", "100", "110"},
                                     {"JetWest", "16", "200", "220"}}));
  return db;
}

Database MakeFlightsB() {
  Database db;
  (void)db.AddRelation(MustRelation("Prices",
                                    {"Carrier", "Route", "Cost", "AgentFee"},
                                    {{"AirEast", "ATL29", "100", "15"},
                                     {"JetWest", "ATL29", "200", "16"},
                                     {"AirEast", "ORD17", "110", "15"},
                                     {"JetWest", "ORD17", "220", "16"}}));
  return db;
}

Database MakeFlightsC() {
  Database db;
  (void)db.AddRelation(MustRelation("AirEast",
                                    {"Route", "BaseCost", "TotalCost"},
                                    {{"ATL29", "100", "115"},
                                     {"ORD17", "110", "125"}}));
  (void)db.AddRelation(MustRelation("JetWest",
                                    {"Route", "BaseCost", "TotalCost"},
                                    {{"ATL29", "200", "216"},
                                     {"ORD17", "220", "236"}}));
  return db;
}

MappingExpression FlightsBToAExpression() {
  MappingExpression expr;
  expr.Append(PromoteOp{"Prices", "Route", "Cost"});
  expr.Append(DropOp{"Prices", "Route"});
  expr.Append(DropOp{"Prices", "Cost"});
  expr.Append(MergeOp{"Prices", "Carrier"});
  expr.Append(RenameAttrOp{"Prices", "AgentFee", "Fee"});
  expr.Append(RenameRelOp{"Prices", "Flights"});
  return expr;
}

std::vector<SemanticCorrespondence> FlightsBToCCorrespondences() {
  return {SemanticCorrespondence{"add", {"Cost", "AgentFee"}, "TotalCost"}};
}

}  // namespace tupelo
