#ifndef TUPELO_WORKLOADS_BAMM_H_
#define TUPELO_WORKLOADS_BAMM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "relational/database.h"

namespace tupelo {

// A synthetic stand-in for the BAMM dataset of Experiment 2 (§5.2): the
// UIUC Web Integration Repository's Books / Automobiles / Music / Movies
// deep-web query schemas (55/55/49/52 schemas of 1–8 attributes). The real
// repository is not redistributable; this generator reproduces its shape:
// per-domain attribute vocabularies with synonym sets, domain-sized schema
// populations, the 1–8 attribute-count range, and critical instances
// illustrating one shared entity per domain (the Rosetta Stone principle).
// Since TUPELO is purely syntactic, search cost depends only on this shape,
// not on the English labels. See DESIGN.md §2.
enum class BammDomain { kBooks, kAutos, kMusic, kMovies };

const std::vector<BammDomain>& AllBammDomains();
std::string_view BammDomainName(BammDomain domain);

// The number of schemas the real dataset has in this domain.
size_t BammDomainSchemaCount(BammDomain domain);

// Ground truth for one generated target schema: which source (canonical)
// labels were renamed to which synonyms. Lets tests and benches check the
// *correctness* of discovered matches, not just their search cost.
struct BammGroundTruth {
  // (canonical source attribute, target label) for every renamed
  // attribute; attributes kept under their canonical name are omitted.
  std::vector<std::pair<std::string, std::string>> attribute_renames;
  // Set when the target's relation label differs from the source's.
  std::string relation_rename;  // empty = same name
};

// One generated domain population: `source` is the fixed schema the
// experiment maps from (it exposes the full attribute vocabulary under
// canonical names); `targets` are the other schemas of the domain, each a
// 1–8 attribute view with synonym-renamed labels, populated with the same
// critical instance. `ground_truth[i]` describes `targets[i]`.
struct BammWorkload {
  BammDomain domain;
  Database source;
  std::vector<Database> targets;
  std::vector<BammGroundTruth> ground_truth;
};

// Deterministic for a given (domain, seed).
BammWorkload MakeBammWorkload(BammDomain domain, uint64_t seed);

}  // namespace tupelo

#endif  // TUPELO_WORKLOADS_BAMM_H_
