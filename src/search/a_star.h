#ifndef TUPELO_SEARCH_A_STAR_H_
#define TUPELO_SEARCH_A_STAR_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "search/instrumentation.h"
#include "search/search_types.h"
#include "search/trace.h"

namespace tupelo {

// Classic best-first A* with open/closed lists. Kept as the baseline the
// paper's early TUPELO implementation used and abandoned: its memory use is
// exponential in the search depth (tracked in stats.peak_memory_nodes),
// which is what the linear-memory IDA*/RBFS implementations fix.
//
// Checkpointing: a snapshot serializes the live open list (each entry's
// action path plus its original seq number) and the closed map. Resume
// rebuilds the heap from those paths — g is the path length, f is
// recomputed from the deterministic heuristic, and the preserved seq
// keeps FIFO tiebreaks — so pops continue in exactly the order the
// uninterrupted run would have used (the comparator is a total order).
template <typename P>
SearchOutcome<typename P::Action> AStarSearch(
    const P& problem, const SearchLimits& limits = SearchLimits(),
    SearchTracer* tracer = nullptr, obs::MetricRegistry* metrics = nullptr,
    const SearchSeed<typename P::State, typename P::Action>* seed = nullptr,
    obs::TraceSession* trace = nullptr) {
  using Action = typename P::Action;
  using State = typename P::State;

  SearchOutcome<Action> outcome;
  SearchInstrumentation instr(metrics);
  SearchTraceEmitter emit(tracer, trace);
  obs::TraceSpan search_span(trace, obs::TraceCategory::kSearch,
                             "search.astar");
  auto* sink = ResolveCheckpointSink<State, Action>(limits);

  struct Node {
    State state;
    Fp128 key;  // full 128-bit identity; key.lo feeds traces/instruments
    int64_t g;
    // Parent chain for path reconstruction.
    std::shared_ptr<const Node> parent;
    Action action_from_parent;  // undefined for the root
    // Actions leading to this node when it is a chain root restored from
    // a checkpoint (empty otherwise); reconstruct() prepends it.
    std::vector<Action> prefix;
  };
  using NodePtr = std::shared_ptr<const Node>;

  struct QueueEntry {
    int64_t f;
    int64_t g;
    uint64_t seq;  // FIFO tiebreak for determinism
    NodePtr node;
  };
  struct Worse {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.f != b.f) return a.f > b.f;
      if (a.g != b.g) return a.g < b.g;  // prefer deeper (closer to goal)
      return a.seq > b.seq;
    }
  };

  std::priority_queue<QueueEntry, std::vector<QueueEntry>, Worse> open;
  // Best g seen per state, keyed on the full 128-bit identity: a 64-bit
  // collision would alias two distinct states' g-values and silently
  // prune one of them.
  std::unordered_map<Fp128, int64_t, Fp128Hash> best_g;
  uint64_t seq = 0;

  auto reconstruct = [](const Node* n) {
    std::vector<Action> path;
    for (; n->parent != nullptr; n = n->parent.get()) {
      path.push_back(n->action_from_parent);
    }
    std::reverse(path.begin(), path.end());
    path.insert(path.begin(), n->prefix.begin(), n->prefix.end());
    return path;
  };

  if (seed != nullptr && !seed->open.empty()) {
    // Resume: rebuild the open list from checkpointed paths. Each entry
    // becomes its own chain root carrying its path as the prefix.
    seq = seed->next_seq;
    for (const auto& entry : seed->open) {
      Fp128 key = StateFingerprint(problem, entry.state);
      int64_t g = static_cast<int64_t>(entry.path.size());
      NodePtr n(new Node{entry.state, key, g, nullptr, Action{}, entry.path});
      int64_t f = g + problem.EstimateCost(entry.state);
      open.push(QueueEntry{f, g, entry.seq, std::move(n)});
    }
    best_g.reserve(seed->closed.size());
    for (const auto& [fp, g] : seed->closed) best_g[fp] = g;
  } else {
    const State& root_state = problem.initial_state();
    NodePtr root(new Node{root_state, StateFingerprint(problem, root_state), 0,
                          nullptr, Action{}, {}});
    best_g[root->key] = 0;
    open.push(QueueEntry{problem.EstimateCost(root_state), 0, seq++, root});
  }

  auto track_memory = [&] {
    uint64_t nodes = static_cast<uint64_t>(open.size() + best_g.size()) +
                     AuxMemoryNodes(problem);
    outcome.stats.peak_memory_nodes =
        std::max(outcome.stats.peak_memory_nodes, nodes);
    instr.OnPeakMemory(nodes);
    return nodes;
  };

  BudgetGuard guard(limits);
  NodePtr best_node;  // anytime: lowest-h state examined so far

  while (!open.empty()) {
    uint64_t memory_nodes = track_memory();
    if (sink != nullptr && guard.checkpoint_due() &&
        sink->WantSnapshot(outcome.stats.states_examined)) {
      SearchSeed<State, Action> snap;
      snap.states_examined = outcome.stats.states_examined;
      if (best_node != nullptr) snap.best_path = reconstruct(best_node.get());
      snap.best_h = outcome.best_h;
      auto copy = open;  // heap copy; drained below in pop order
      while (!copy.empty()) {
        const QueueEntry& e = copy.top();
        // Stale entries (superseded by a cheaper path) are never examined,
        // so dropping them keeps the snapshot compact without changing
        // the resumed run's behavior.
        auto bit = best_g.find(e.node->key);
        if (bit == best_g.end() || bit->second >= e.node->g) {
          snap.open.push_back(
              {e.node->state, reconstruct(e.node.get()), e.g, e.seq});
        }
        copy.pop();
      }
      snap.next_seq = seq;
      snap.closed.reserve(best_g.size());
      for (const auto& [fp, g] : best_g) snap.closed.emplace_back(fp, g);
      sink->OnSnapshot(std::move(snap));
    }
    QueueEntry entry = open.top();
    open.pop();
    const NodePtr& node = entry.node;
    // Skip stale entries superseded by a cheaper path.
    auto it = best_g.find(node->key);
    if (it != best_g.end() && it->second < node->g) continue;

    if (std::optional<StopReason> stop = guard.Check(
            outcome.stats.states_examined, node->g, memory_nodes)) {
      outcome.stop = *stop;
      outcome.budget_exhausted = IsResourceStop(*stop);
      if (best_node != nullptr) outcome.best_path = reconstruct(best_node.get());
      return outcome;
    }
    ++outcome.stats.states_examined;
    instr.OnVisit(node->key.lo);
    int h = static_cast<int>(entry.f - node->g);
    if (outcome.best_h < 0 || h < outcome.best_h) {
      outcome.best_h = h;
      best_node = node;
    }
    if (emit.enabled()) {
      emit.Visit(node->key.lo, static_cast<int>(node->g), entry.f);
    }

    if (problem.IsGoal(node->state)) {
      if (emit.enabled()) {
        emit.Goal(node->key.lo, static_cast<int>(node->g), entry.f);
      }
      outcome.found = true;
      outcome.stop = StopReason::kFound;
      outcome.stats.solution_cost = static_cast<int>(node->g);
      outcome.path = reconstruct(node.get());
      outcome.best_path = outcome.path;
      outcome.best_h = 0;
      return outcome;
    }

    auto successors = GuardedExpand(problem, node->state, limits.quarantine);
    outcome.stats.states_generated += successors.size();
    instr.OnExpand(successors.size());
    for (auto& succ : successors) {
      Fp128 key = StateFingerprint(problem, succ.state);
      int64_t g = node->g + 1;
      auto [git, inserted] = best_g.try_emplace(key, g);
      if (!inserted) {
        if (git->second <= g) {
          instr.OnDuplicateHit();
          continue;
        }
        git->second = g;
      }
      int64_t f = g + problem.EstimateCost(succ.state);
      NodePtr child(new Node{std::move(succ.state), key, g, node,
                             std::move(succ.action), {}});
      open.push(QueueEntry{f, g, seq++, std::move(child)});
    }
  }
  if (best_node != nullptr) outcome.best_path = reconstruct(best_node.get());
  return outcome;
}

}  // namespace tupelo

#endif  // TUPELO_SEARCH_A_STAR_H_
