#ifndef TUPELO_SEARCH_INSTRUMENTATION_H_
#define TUPELO_SEARCH_INSTRUMENTATION_H_

#include <cstdint>
#include <unordered_set>

#include "obs/metrics.h"

namespace tupelo {

// Shared metric plumbing for the search algorithms. Constructed once per
// search from a nullable MetricRegistry; with a null registry every hook
// is a single branch on a cached bool, so uninstrumented searches pay no
// measurable overhead (the acceptance bar for this layer).
//
// Metric names (see docs/OBSERVABILITY.md for the full catalog):
//   search.states_examined   counter, mirrors SearchStats::states_examined
//   search.states_generated  counter, successors produced by Expand
//   search.expansions        counter, calls to Problem::Expand
//   search.re_expansions     counter, visits of a state key seen earlier in
//                            this search (IDA* re-iterations, RBFS
//                            re-descents, A* re-openings)
//   search.duplicate_hits    counter, successors skipped by cycle/closed/
//                            best-g checks
//   search.iterations        counter, completed IDA* iterations
//   search.f_bound           histogram, the f-bound of each IDA* iteration
//   search.peak_memory_nodes max gauge, mirrors SearchStats peak memory
class SearchInstrumentation {
 public:
  explicit SearchInstrumentation(obs::MetricRegistry* registry) {
    if (registry == nullptr) return;
    enabled_ = true;
    examined_ = &registry->GetCounter("search.states_examined");
    generated_ = &registry->GetCounter("search.states_generated");
    expansions_ = &registry->GetCounter("search.expansions");
    re_expansions_ = &registry->GetCounter("search.re_expansions");
    duplicate_hits_ = &registry->GetCounter("search.duplicate_hits");
    iterations_ = &registry->GetCounter("search.iterations");
    f_bound_ = &registry->GetHistogram("search.f_bound",
                                       obs::ExponentialBounds(1, 2, 16));
    peak_memory_ = &registry->GetGauge("search.peak_memory_nodes");
  }

  bool enabled() const { return enabled_; }

  // A state was examined. Tracks the set of visited keys (only when
  // enabled) to attribute repeat visits to search.re_expansions.
  void OnVisit(uint64_t state_key) {
    if (!enabled_) return;
    examined_->Increment();
    if (!visited_keys_.insert(state_key).second) {
      re_expansions_->Increment();
    }
  }

  // Problem::Expand returned `generated` successors.
  void OnExpand(size_t generated) {
    if (!enabled_) return;
    expansions_->Increment();
    generated_->Increment(generated);
  }

  // A successor was discarded by duplicate detection.
  void OnDuplicateHit() {
    if (enabled_) duplicate_hits_->Increment();
  }

  // An IDA* iteration began with the given f-bound.
  void OnIteration(int64_t f_bound) {
    if (!enabled_) return;
    iterations_->Increment();
    f_bound_->Observe(f_bound);
  }

  void OnPeakMemory(uint64_t nodes) {
    if (enabled_) peak_memory_->UpdateMax(static_cast<int64_t>(nodes));
  }

 private:
  bool enabled_ = false;
  obs::Counter* examined_ = nullptr;
  obs::Counter* generated_ = nullptr;
  obs::Counter* expansions_ = nullptr;
  obs::Counter* re_expansions_ = nullptr;
  obs::Counter* duplicate_hits_ = nullptr;
  obs::Counter* iterations_ = nullptr;
  obs::Histogram* f_bound_ = nullptr;
  obs::Gauge* peak_memory_ = nullptr;
  std::unordered_set<uint64_t> visited_keys_;
};

}  // namespace tupelo

#endif  // TUPELO_SEARCH_INSTRUMENTATION_H_
