#ifndef TUPELO_SEARCH_IDA_STAR_H_
#define TUPELO_SEARCH_IDA_STAR_H_

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "search/instrumentation.h"
#include "search/search_types.h"
#include "search/trace.h"

namespace tupelo {

// Iterative Deepening A* (Korf 1985, as described in Nilsson 1998 / §2.3 of
// the paper): repeated depth-first probes bounded by f = g + h, raising the
// bound to the smallest exceeded f-value between iterations. Memory is
// linear in the search depth; states are re-examined across iterations and
// each re-visit counts toward stats.states_examined (the paper's measure).
//
// Cycle avoidance: successors whose full 128-bit identity already occurs
// on the current path are skipped (they can never shorten a unit-cost
// path). Keying on the 64-bit StateKey would let a collision alias two
// distinct path states and wrongly prune a reachable successor.
//
// `metrics` (nullable, default off) feeds the search.* instruments of
// search/instrumentation.h.
//
// Checkpointing: a snapshot carries only progress counters and the
// current f-bound — the DFS stack is not serialized. Resume restarts the
// probe at the checkpointed bound; because the DFS is deterministic, the
// resumed run finds the same goal the uninterrupted run would (it merely
// re-expands the prefix of the final iteration).
template <typename P>
SearchOutcome<typename P::Action> IdaStarSearch(
    const P& problem, const SearchLimits& limits = SearchLimits(),
    SearchTracer* tracer = nullptr, obs::MetricRegistry* metrics = nullptr,
    const SearchSeed<typename P::State, typename P::Action>* seed = nullptr,
    obs::TraceSession* trace = nullptr) {
  using Action = typename P::Action;
  using State = typename P::State;

  SearchOutcome<Action> outcome;
  SearchInstrumentation instr(metrics);
  SearchTraceEmitter emit(tracer, trace);
  obs::TraceSpan search_span(trace, obs::TraceCategory::kSearch,
                             "search.ida");
  auto* sink = ResolveCheckpointSink<State, Action>(limits);

  struct Dfs {
    const P& problem;
    const SearchLimits& limits;
    SearchOutcome<Action>& out;
    SearchTraceEmitter& emit;
    SearchInstrumentation& instr;
    BudgetGuard& guard;
    CheckpointSink<State, Action>* sink;
    std::vector<Action> path_actions;
    std::unordered_set<Fp128, Fp128Hash> path_keys;
    int64_t next_bound = kSearchInfinity;
    StopReason abort_reason = StopReason::kExhausted;
    bool aborted = false;

    enum class Verdict { kFound, kNotFound };

    Verdict Visit(const State& state, int64_t g, int64_t bound) {
      uint64_t memory_nodes =
          static_cast<uint64_t>(g) + 1 + AuxMemoryNodes(problem);
      if (std::optional<StopReason> stop = guard.Check(
              out.stats.states_examined, g, memory_nodes)) {
        aborted = true;
        abort_reason = *stop;
        return Verdict::kNotFound;
      }
      if (sink != nullptr && guard.checkpoint_due() &&
          sink->WantSnapshot(out.stats.states_examined)) {
        SearchSeed<State, Action> snap;
        snap.states_examined = out.stats.states_examined;
        snap.best_path = out.best_path;
        snap.best_h = out.best_h;
        snap.ida_bound = bound;
        sink->OnSnapshot(std::move(snap));
      }
      ++out.stats.states_examined;
      out.stats.peak_memory_nodes =
          std::max(out.stats.peak_memory_nodes, memory_nodes);
      instr.OnVisit(problem.StateKey(state));
      instr.OnPeakMemory(memory_nodes);

      int64_t f = g + problem.EstimateCost(state);
      if (int h = static_cast<int>(f - g); out.best_h < 0 || h < out.best_h) {
        out.best_h = h;
        out.best_path = path_actions;
      }
      if (emit.enabled()) {
        emit.Visit(problem.StateKey(state), static_cast<int>(g), f);
      }
      if (f > bound) {
        next_bound = std::min(next_bound, f);
        return Verdict::kNotFound;
      }
      if (problem.IsGoal(state)) {
        if (emit.enabled()) {
          emit.Goal(problem.StateKey(state), static_cast<int>(g), f);
        }
        out.found = true;
        out.stop = StopReason::kFound;
        out.path = path_actions;
        out.best_path = path_actions;
        out.best_h = 0;
        out.stats.solution_cost = static_cast<int>(g);
        return Verdict::kFound;
      }
      auto successors = GuardedExpand(problem, state, limits.quarantine);
      out.stats.states_generated += successors.size();
      instr.OnExpand(successors.size());
      for (auto& succ : successors) {
        Fp128 key = StateFingerprint(problem, succ.state);
        if (path_keys.contains(key)) {
          instr.OnDuplicateHit();
          continue;
        }
        path_keys.insert(key);
        path_actions.push_back(succ.action);
        Verdict v = Visit(succ.state, g + 1, bound);
        path_actions.pop_back();
        path_keys.erase(key);
        if (v == Verdict::kFound || aborted) return v;
      }
      return Verdict::kNotFound;
    }
  };

  BudgetGuard guard(limits);
  Dfs dfs{problem, limits, outcome, emit,
          instr,   guard,  sink,    {},      {},
          kSearchInfinity, StopReason::kExhausted, false};

  const State& root = problem.initial_state();
  Fp128 root_key = StateFingerprint(problem, root);
  int64_t bound = problem.EstimateCost(root);
  if (seed != nullptr && seed->ida_bound >= 0) {
    // Resume: skip the iterations below the checkpointed bound. Bounds
    // only grow across iterations, so max() is the right merge.
    bound = std::max(bound, seed->ida_bound);
  }

  while (true) {
    if (emit.enabled()) emit.Iteration(0, bound);
    instr.OnIteration(bound);
    obs::TraceSpan iter_span(trace, obs::TraceCategory::kSearch,
                             "ida.iteration", "bound", bound);
    dfs.next_bound = kSearchInfinity;
    dfs.path_keys = {root_key};
    dfs.path_actions.clear();
    uint64_t states_before = outcome.stats.states_examined;
    typename Dfs::Verdict v = dfs.Visit(root, 0, bound);
    ++outcome.stats.iterations;
    iter_span.SetEndArg("states", static_cast<int64_t>(
                                      outcome.stats.states_examined -
                                      states_before));
    if (v == Dfs::Verdict::kFound) return outcome;
    if (dfs.aborted) {
      outcome.stop = dfs.abort_reason;
      outcome.budget_exhausted = IsResourceStop(dfs.abort_reason);
      return outcome;
    }
    if (dfs.next_bound >= kSearchInfinity) return outcome;  // space exhausted
    bound = dfs.next_bound;
  }
}

}  // namespace tupelo

#endif  // TUPELO_SEARCH_IDA_STAR_H_
