#ifndef TUPELO_SEARCH_TRACE_H_
#define TUPELO_SEARCH_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace tupelo {

// Lightweight search observability: algorithms that accept a SearchTracer
// record one event per state visit (and per IDA* iteration), capped at a
// fixed capacity so tracing a runaway search cannot exhaust memory. Used
// for debugging heuristics ("where did the f-bound jump?") and by tests
// asserting algorithm invariants (bounds are non-decreasing, depths stay
// within limits).
//
// Since the structured tracing layer (obs/trace.h) arrived, SearchTracer
// is a thin adapter over the same event stream: algorithms emit through a
// SearchTraceEmitter (below), which fans each event out to the bounded
// SearchTracer vector (the PR 1-era callback API, kept for tests and
// ToString debugging) and to the TraceSession (spans and instants on the
// Perfetto timeline). There is one tracing path; the two sinks differ
// only in retention and format.
enum class TraceEventKind {
  kVisit,      // a state was examined; f = g + h at that state
  kGoal,       // the goal test succeeded at this state
  kIteration,  // IDA*: a new iteration began, value = the new f-bound;
               // beam: a new level began, depth = level, value = best h
};

struct TraceEvent {
  TraceEventKind kind;
  uint64_t state_key = 0;  // 0 for kIteration
  int depth = 0;           // g (beam level for its kIteration, else 0)
  int64_t value = 0;       // f for visits, bound for iterations

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

class SearchTracer {
 public:
  explicit SearchTracer(size_t capacity = 100000) : capacity_(capacity) {}

  void Record(TraceEvent event) {
    if (events_.size() < capacity_) {
      events_.push_back(event);
    } else {
      ++dropped_;
    }
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  bool truncated() const { return dropped_ > 0; }
  // Events discarded after capacity was reached.
  uint64_t dropped() const { return dropped_; }
  void Clear() {
    events_.clear();
    dropped_ = 0;
  }

  // Human-readable dump, one event per line.
  std::string ToString() const {
    std::string out;
    for (const TraceEvent& e : events_) {
      switch (e.kind) {
        case TraceEventKind::kVisit:
          out += "visit g=" + std::to_string(e.depth) +
                 " f=" + std::to_string(e.value) +
                 " key=" + std::to_string(e.state_key) + "\n";
          break;
        case TraceEventKind::kGoal:
          out += "goal  g=" + std::to_string(e.depth) +
                 " key=" + std::to_string(e.state_key) + "\n";
          break;
        case TraceEventKind::kIteration:
          out += "iteration bound=" + std::to_string(e.value) + "\n";
          break;
      }
    }
    if (dropped_ > 0) {
      out += "(truncated: " + std::to_string(dropped_) + " events dropped)\n";
    }
    return out;
  }

 private:
  size_t capacity_;
  std::vector<TraceEvent> events_;
  uint64_t dropped_ = 0;
};

// The single emission point for search-algorithm events. Both sinks are
// nullable and independent: tests typically pass a SearchTracer, the
// Tupelo driver passes the run's TraceSession, and a disabled run pays
// two null checks per event.
class SearchTraceEmitter {
 public:
  SearchTraceEmitter(SearchTracer* tracer, obs::TraceSession* trace)
      : tracer_(tracer), trace_(trace) {}

  bool enabled() const { return tracer_ != nullptr || trace_ != nullptr; }
  obs::TraceSession* session() const { return trace_; }

  // A state was examined; `value` is f (or h for greedy/beam).
  void Visit(uint64_t state_key, int depth, int64_t value) {
    if (tracer_ != nullptr) {
      tracer_->Record(TraceEvent{TraceEventKind::kVisit, state_key, depth,
                                 value});
    }
    if (trace_ != nullptr) {
      trace_->EmitInstant(obs::TraceCategory::kSearch, "visit", "f", value,
                          "g", depth);
    }
  }

  void Goal(uint64_t state_key, int depth, int64_t value) {
    if (tracer_ != nullptr) {
      tracer_->Record(TraceEvent{TraceEventKind::kGoal, state_key, depth,
                                 value});
    }
    if (trace_ != nullptr) {
      trace_->EmitInstant(obs::TraceCategory::kSearch, "goal", "g", depth);
    }
  }

  // IDA*: a new iteration began (value = the new f-bound, depth 0);
  // beam: a new level began (depth = level, value = best h). The span
  // structure (one span per iteration/level) is emitted separately by the
  // algorithms via obs::TraceSpan; this records the legacy point event.
  void Iteration(int depth, int64_t value) {
    if (tracer_ != nullptr) {
      tracer_->Record(TraceEvent{TraceEventKind::kIteration, 0, depth,
                                 value});
    }
    if (trace_ != nullptr) {
      trace_->EmitInstant(obs::TraceCategory::kSearch, "iteration", "value",
                          value, "depth", depth);
    }
  }

  // Beam only: `dropped` frontier candidates fell off the width cut at
  // `level`. Session-only — the legacy event model has no drop kind.
  void BeamDrop(int level, int64_t dropped) {
    if (trace_ != nullptr && dropped > 0) {
      trace_->EmitInstant(obs::TraceCategory::kSearch, "beam.dropped",
                          "dropped", dropped, "level", level);
    }
  }

 private:
  SearchTracer* tracer_;
  obs::TraceSession* trace_;
};

}  // namespace tupelo

#endif  // TUPELO_SEARCH_TRACE_H_
