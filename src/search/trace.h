#ifndef TUPELO_SEARCH_TRACE_H_
#define TUPELO_SEARCH_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tupelo {

// Lightweight search observability: algorithms that accept a SearchTracer
// record one event per state visit (and per IDA* iteration), capped at a
// fixed capacity so tracing a runaway search cannot exhaust memory. Used
// for debugging heuristics ("where did the f-bound jump?") and by tests
// asserting algorithm invariants (bounds are non-decreasing, depths stay
// within limits).
enum class TraceEventKind {
  kVisit,      // a state was examined; f = g + h at that state
  kGoal,       // the goal test succeeded at this state
  kIteration,  // IDA*: a new iteration began, value = the new f-bound;
               // beam: a new level began, depth = level, value = best h
};

struct TraceEvent {
  TraceEventKind kind;
  uint64_t state_key = 0;  // 0 for kIteration
  int depth = 0;           // g (beam level for its kIteration, else 0)
  int64_t value = 0;       // f for visits, bound for iterations

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

class SearchTracer {
 public:
  explicit SearchTracer(size_t capacity = 100000) : capacity_(capacity) {}

  void Record(TraceEvent event) {
    if (events_.size() < capacity_) {
      events_.push_back(event);
    } else {
      ++dropped_;
    }
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  bool truncated() const { return dropped_ > 0; }
  // Events discarded after capacity was reached.
  uint64_t dropped() const { return dropped_; }
  void Clear() {
    events_.clear();
    dropped_ = 0;
  }

  // Human-readable dump, one event per line.
  std::string ToString() const {
    std::string out;
    for (const TraceEvent& e : events_) {
      switch (e.kind) {
        case TraceEventKind::kVisit:
          out += "visit g=" + std::to_string(e.depth) +
                 " f=" + std::to_string(e.value) +
                 " key=" + std::to_string(e.state_key) + "\n";
          break;
        case TraceEventKind::kGoal:
          out += "goal  g=" + std::to_string(e.depth) +
                 " key=" + std::to_string(e.state_key) + "\n";
          break;
        case TraceEventKind::kIteration:
          out += "iteration bound=" + std::to_string(e.value) + "\n";
          break;
      }
    }
    if (dropped_ > 0) {
      out += "(truncated: " + std::to_string(dropped_) + " events dropped)\n";
    }
    return out;
  }

 private:
  size_t capacity_;
  std::vector<TraceEvent> events_;
  uint64_t dropped_ = 0;
};

}  // namespace tupelo

#endif  // TUPELO_SEARCH_TRACE_H_
