#ifndef TUPELO_SEARCH_BEAM_H_
#define TUPELO_SEARCH_BEAM_H_

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "search/instrumentation.h"
#include "search/search_types.h"
#include "search/trace.h"

namespace tupelo {

// Level-synchronous beam search: keep only the `beam_width` lowest-h
// states per depth level. Another of §7's "further search techniques" —
// the cheapest memory-bounded best-first variant, and deliberately
// *incomplete*: if every goal path leaves the beam, the search fails even
// though a mapping exists. Useful as a recall benchmark for heuristics
// (a heuristic whose beam-8 recall is high is trustworthy greedily).
//
// Tracing: each depth level opens with a kIteration event whose value is
// the smallest h in the frontier — the beam's analog of IDA*'s f-bound,
// and the easiest way to see a beam stall (the best h stops falling).
//
// Checkpointing: the level barrier is the beam's checkpoint boundary (the
// only point where its state is a compact frontier). When a sink is
// installed it is offered a snapshot — frontier, dedup set, level index —
// at the top of each level; a `seed` carrying a frontier resumes the
// level loop exactly where that snapshot was taken, with bit-identical
// continuation.
template <typename P>
SearchOutcome<typename P::Action> BeamSearch(
    const P& problem, size_t beam_width,
    const SearchLimits& limits = SearchLimits(),
    SearchTracer* tracer = nullptr, obs::MetricRegistry* metrics = nullptr,
    const SearchSeed<typename P::State, typename P::Action>* seed = nullptr,
    obs::TraceSession* trace = nullptr) {
  using Action = typename P::Action;
  using State = typename P::State;

  SearchOutcome<Action> outcome;
  SearchInstrumentation instr(metrics);
  SearchTraceEmitter emit(tracer, trace);
  obs::TraceSpan search_span(trace, obs::TraceCategory::kSearch,
                             "search.beam");
  if (beam_width == 0) return outcome;
  auto* sink = ResolveCheckpointSink<State, Action>(limits);

  struct Node {
    State state;
    std::vector<Action> path;
    int64_t h;
  };

  // Dedup on the full 128-bit identity: a 64-bit collision here would
  // silently drop a distinct reachable state from the (already
  // incomplete) beam.
  std::unordered_set<Fp128, Fp128Hash> seen;
  std::vector<Node> frontier;
  int start_depth = 0;
  if (seed != nullptr && !seed->frontier.empty()) {
    // Resume from a checkpointed level barrier. h is recomputed (the
    // heuristic is deterministic) rather than trusted from the seed.
    for (const auto& entry : seed->frontier) {
      frontier.push_back(
          Node{entry.state, entry.path, problem.EstimateCost(entry.state)});
    }
    seen.reserve(seed->closed.size());
    for (const auto& [fp, g] : seed->closed) seen.insert(fp);
    start_depth = seed->beam_depth;
  } else {
    const State& root = problem.initial_state();
    seen.insert(StateFingerprint(problem, root));
    frontier.push_back(Node{root, {}, problem.EstimateCost(root)});
  }

  BudgetGuard guard(limits);

  for (int depth = start_depth; depth <= limits.max_depth; ++depth) {
    uint64_t nodes = static_cast<uint64_t>(frontier.size() + seen.size()) +
                     AuxMemoryNodes(problem);
    outcome.stats.peak_memory_nodes =
        std::max(outcome.stats.peak_memory_nodes, nodes);
    instr.OnPeakMemory(nodes);
    if (sink != nullptr &&
        sink->WantSnapshot(outcome.stats.states_examined)) {
      SearchSeed<State, Action> snap;
      snap.states_examined = outcome.stats.states_examined;
      snap.best_path = outcome.best_path;
      snap.best_h = outcome.best_h;
      snap.beam_depth = depth;
      snap.frontier.reserve(frontier.size());
      for (const Node& node : frontier) {
        snap.frontier.push_back({node.state, node.path, node.h});
      }
      snap.closed.reserve(seen.size());
      for (const Fp128& fp : seen) snap.closed.emplace_back(fp, 0);
      sink->OnSnapshot(std::move(snap));
    }
    int64_t level_best_h = frontier.front().h;
    for (const Node& node : frontier) {
      level_best_h = std::min(level_best_h, node.h);
    }
    if (emit.enabled()) emit.Iteration(depth, level_best_h);
    obs::TraceSpan level_span(trace, obs::TraceCategory::kSearch,
                              "beam.level", "level", depth, "best_h",
                              level_best_h);

    std::vector<Node> next_level;
    for (Node& node : frontier) {
      // Depth is bounded by the level loop itself; pass 0 so the guard
      // only trips states/memory/deadline/cancel here.
      if (std::optional<StopReason> stop =
              guard.Check(outcome.stats.states_examined, 0, nodes)) {
        outcome.stop = *stop;
        outcome.budget_exhausted = IsResourceStop(*stop);
        return outcome;
      }
      ++outcome.stats.states_examined;
      instr.OnVisit(problem.StateKey(node.state));
      if (outcome.best_h < 0 || node.h < outcome.best_h) {
        outcome.best_h = static_cast<int>(node.h);
        outcome.best_path = node.path;
      }
      if (emit.enabled()) {
        emit.Visit(problem.StateKey(node.state), depth, node.h);
      }

      if (problem.IsGoal(node.state)) {
        if (emit.enabled()) {
          emit.Goal(problem.StateKey(node.state), depth, node.h);
        }
        outcome.found = true;
        outcome.stop = StopReason::kFound;
        outcome.stats.solution_cost = static_cast<int>(node.path.size());
        outcome.path = std::move(node.path);
        outcome.best_path = outcome.path;
        outcome.best_h = 0;
        return outcome;
      }

      auto successors = GuardedExpand(problem, node.state, limits.quarantine);
      outcome.stats.states_generated += successors.size();
      instr.OnExpand(successors.size());
      // Dedup first, then estimate the survivors in one batch — same
      // states estimated as the old per-successor loop, one heuristic
      // round-trip per expansion.
      std::vector<size_t> fresh;
      std::vector<const State*> fresh_states;
      fresh.reserve(successors.size());
      fresh_states.reserve(successors.size());
      for (size_t si = 0; si < successors.size(); ++si) {
        Fp128 key = StateFingerprint(problem, successors[si].state);
        if (!seen.insert(key).second) {
          instr.OnDuplicateHit();
          continue;
        }
        fresh.push_back(si);
        fresh_states.push_back(&successors[si].state);
      }
      const std::vector<int> hs = EstimateCosts(problem, fresh_states);
      for (size_t k = 0; k < fresh.size(); ++k) {
        auto& succ = successors[fresh[k]];
        std::vector<Action> path = node.path;
        path.push_back(std::move(succ.action));
        next_level.push_back(
            Node{std::move(succ.state), std::move(path), hs[k]});
      }
    }
    if (next_level.empty()) return outcome;  // beam ran dry

    // Keep the beam_width best by h (stable within ties). The supervisor
    // can narrow the effective width mid-run via width pressure (staged
    // memory degradation); pressure-free this is the configured width.
    const size_t level_width =
        EffectiveBeamWidth(beam_width, limits.width_pressure);
    if (next_level.size() > level_width) {
      emit.BeamDrop(depth,
                    static_cast<int64_t>(next_level.size() - level_width));
      std::stable_sort(next_level.begin(), next_level.end(),
                       [](const Node& a, const Node& b) { return a.h < b.h; });
      next_level.resize(level_width);
    }
    frontier = std::move(next_level);
  }
  outcome.stop = StopReason::kDepth;  // level loop ran out of depth budget
  outcome.budget_exhausted = true;
  return outcome;
}

}  // namespace tupelo

#endif  // TUPELO_SEARCH_BEAM_H_
