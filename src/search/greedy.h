#ifndef TUPELO_SEARCH_GREEDY_H_
#define TUPELO_SEARCH_GREEDY_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "search/instrumentation.h"
#include "search/search_types.h"
#include "search/trace.h"

namespace tupelo {

// Greedy best-first search: expand the open node with the smallest h,
// ignoring path cost. One of the "further search techniques from the AI
// literature" the paper's future work (§7) points at: it trades the
// optimality pressure of f = g + h for raw goal-seeking speed, and is a
// useful comparison point for TUPELO's heuristics — a heuristic that only
// works under greedy search is too weak to order f-ties, and one that
// fails under greedy search is actively misleading.
//
// Memory grows with the states retained (like A*); duplicates are pruned
// via a closed set, so states are examined at most once.
//
// Checkpointing: like A*, a snapshot serializes the live open list (action
// paths plus original seq numbers) and the closed set; resume rebuilds the
// heap with h recomputed from the deterministic heuristic and the
// preserved seq keeping FIFO tiebreaks, so pop order matches the
// uninterrupted run exactly.
template <typename P>
SearchOutcome<typename P::Action> GreedySearch(
    const P& problem, const SearchLimits& limits = SearchLimits(),
    SearchTracer* tracer = nullptr, obs::MetricRegistry* metrics = nullptr,
    const SearchSeed<typename P::State, typename P::Action>* seed = nullptr,
    obs::TraceSession* trace = nullptr) {
  using Action = typename P::Action;
  using State = typename P::State;

  SearchOutcome<Action> outcome;
  SearchInstrumentation instr(metrics);
  SearchTraceEmitter emit(tracer, trace);
  obs::TraceSpan search_span(trace, obs::TraceCategory::kSearch,
                             "search.greedy");
  auto* sink = ResolveCheckpointSink<State, Action>(limits);

  struct Node {
    State state;
    int64_t g;
    std::shared_ptr<const Node> parent;
    Action action_from_parent;  // undefined for the root
    // Actions leading to this node when it is a chain root restored from
    // a checkpoint (empty otherwise); reconstruct() prepends it.
    std::vector<Action> prefix;
  };
  using NodePtr = std::shared_ptr<const Node>;

  struct QueueEntry {
    int64_t h;
    uint64_t seq;
    NodePtr node;
  };
  struct Worse {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.h != b.h) return a.h > b.h;
      return a.seq > b.seq;  // FIFO tiebreak
    }
  };

  std::priority_queue<QueueEntry, std::vector<QueueEntry>, Worse> open;
  // Closed set keyed on the full 128-bit identity: a 64-bit collision
  // would silently discard a distinct reachable state.
  std::unordered_set<Fp128, Fp128Hash> seen;
  uint64_t seq = 0;

  auto reconstruct = [](const Node* n) {
    std::vector<Action> path;
    for (; n->parent != nullptr; n = n->parent.get()) {
      path.push_back(n->action_from_parent);
    }
    std::reverse(path.begin(), path.end());
    path.insert(path.begin(), n->prefix.begin(), n->prefix.end());
    return path;
  };

  if (seed != nullptr && !seed->open.empty()) {
    // Resume: rebuild the open list from checkpointed paths. Each entry
    // becomes its own chain root carrying its path as the prefix.
    seq = seed->next_seq;
    for (const auto& entry : seed->open) {
      int64_t g = static_cast<int64_t>(entry.path.size());
      NodePtr n(new Node{entry.state, g, nullptr, Action{}, entry.path});
      int64_t h = problem.EstimateCost(entry.state);
      open.push(QueueEntry{h, entry.seq, std::move(n)});
    }
    seen.reserve(seed->closed.size());
    for (const auto& [fp, g] : seed->closed) seen.insert(fp);
  } else {
    const State& root_state = problem.initial_state();
    NodePtr root(new Node{root_state, 0, nullptr, Action{}, {}});
    seen.insert(StateFingerprint(problem, root_state));
    open.push(QueueEntry{problem.EstimateCost(root_state), seq++, root});
  }

  BudgetGuard guard(limits);
  NodePtr best_node;  // anytime: lowest-h state examined so far

  while (!open.empty()) {
    uint64_t nodes = static_cast<uint64_t>(open.size() + seen.size()) +
                     AuxMemoryNodes(problem);
    outcome.stats.peak_memory_nodes =
        std::max(outcome.stats.peak_memory_nodes, nodes);
    instr.OnPeakMemory(nodes);
    if (sink != nullptr && guard.checkpoint_due() &&
        sink->WantSnapshot(outcome.stats.states_examined)) {
      SearchSeed<State, Action> snap;
      snap.states_examined = outcome.stats.states_examined;
      if (best_node != nullptr) snap.best_path = reconstruct(best_node.get());
      snap.best_h = outcome.best_h;
      auto copy = open;  // heap copy; drained below in pop order
      while (!copy.empty()) {
        const QueueEntry& e = copy.top();
        snap.open.push_back(
            {e.node->state, reconstruct(e.node.get()), e.h, e.seq});
        copy.pop();
      }
      snap.next_seq = seq;
      snap.closed.reserve(seen.size());
      for (const Fp128& fp : seen) snap.closed.emplace_back(fp, 0);
      sink->OnSnapshot(std::move(snap));
    }
    QueueEntry entry = open.top();
    open.pop();
    const NodePtr& node = entry.node;

    if (std::optional<StopReason> stop =
            guard.Check(outcome.stats.states_examined, node->g, nodes)) {
      outcome.stop = *stop;
      outcome.budget_exhausted = IsResourceStop(*stop);
      if (best_node != nullptr) outcome.best_path = reconstruct(best_node.get());
      return outcome;
    }
    ++outcome.stats.states_examined;
    instr.OnVisit(problem.StateKey(node->state));
    if (outcome.best_h < 0 || entry.h < outcome.best_h) {
      outcome.best_h = static_cast<int>(entry.h);
      best_node = node;
    }
    if (emit.enabled()) {
      emit.Visit(problem.StateKey(node->state), static_cast<int>(node->g),
                 entry.h);
    }

    if (problem.IsGoal(node->state)) {
      if (emit.enabled()) {
        emit.Goal(problem.StateKey(node->state), static_cast<int>(node->g),
                  entry.h);
      }
      outcome.found = true;
      outcome.stop = StopReason::kFound;
      outcome.stats.solution_cost = static_cast<int>(node->g);
      outcome.path = reconstruct(node.get());
      outcome.best_path = outcome.path;
      outcome.best_h = 0;
      return outcome;
    }

    auto successors = GuardedExpand(problem, node->state, limits.quarantine);
    outcome.stats.states_generated += successors.size();
    instr.OnExpand(successors.size());
    for (auto& succ : successors) {
      Fp128 key = StateFingerprint(problem, succ.state);
      if (!seen.insert(key).second) {
        instr.OnDuplicateHit();
        continue;
      }
      int64_t h = problem.EstimateCost(succ.state);
      NodePtr child(new Node{std::move(succ.state), node->g + 1, node,
                             std::move(succ.action), {}});
      open.push(QueueEntry{h, seq++, std::move(child)});
    }
  }
  if (best_node != nullptr) outcome.best_path = reconstruct(best_node.get());
  return outcome;
}

}  // namespace tupelo

#endif  // TUPELO_SEARCH_GREEDY_H_
