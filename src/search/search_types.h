#ifndef TUPELO_SEARCH_SEARCH_TYPES_H_
#define TUPELO_SEARCH_SEARCH_TYPES_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace tupelo {

// Generic state-space search (src/search) is written against a Problem
// "duck type" P providing:
//
//   using State  = ...;   // value type
//   using Action = ...;   // value type
//   struct SuccessorT { Action action; State state; };
//
//   const State& initial_state() const;
//   bool IsGoal(const State& s) const;
//   // Successors in a deterministic order. Unit step costs.
//   std::vector<SuccessorT> Expand(const State& s) const;
//   // Heuristic estimate h(s) ≥ 0 of the distance to a goal.
//   int EstimateCost(const State& s) const;
//   // Stable fingerprint for duplicate/cycle detection.
//   uint64_t StateKey(const State& s) const;
//
// MappingProblem (src/core) is the real instance; tests use toy problems.

inline constexpr int64_t kSearchInfinity =
    std::numeric_limits<int64_t>::max() / 4;

// Budget knobs. Searches abort (found=false, budget_exhausted=true) when a
// limit trips.
struct SearchLimits {
  // Upper bound on states examined (nodes visited, counting IDA/RBFS
  // re-visits, matching the paper's performance measure).
  uint64_t max_states = 10'000'000;
  // Upper bound on solution depth / recursion depth.
  int max_depth = 64;
};

struct SearchStats {
  // Nodes visited, including redundant re-expansions across IDA iterations
  // and RBFS re-descents — the paper's "number of states examined".
  uint64_t states_examined = 0;
  // Successor states produced by Expand.
  uint64_t states_generated = 0;
  // IDA: completed depth-bound iterations; RBFS/A*: unused (0).
  int iterations = 0;
  // A*: peak open+closed entries; IDA/RBFS: peak recursion depth. A proxy
  // for memory footprint (the paper's motivation for dropping plain A*).
  uint64_t peak_memory_nodes = 0;
  // Length of the found path, or -1.
  int solution_cost = -1;
};

template <typename Action>
struct SearchOutcome {
  bool found = false;
  // True when the search stopped because a SearchLimits bound tripped
  // (i.e. failure is inconclusive).
  bool budget_exhausted = false;
  std::vector<Action> path;
  SearchStats stats;
};

}  // namespace tupelo

#endif  // TUPELO_SEARCH_SEARCH_TYPES_H_
