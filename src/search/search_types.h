#ifndef TUPELO_SEARCH_SEARCH_TYPES_H_
#define TUPELO_SEARCH_SEARCH_TYPES_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/hash.h"

namespace tupelo {

// Generic state-space search (src/search) is written against a Problem
// "duck type" P providing:
//
//   using State  = ...;   // value type
//   using Action = ...;   // value type
//   struct SuccessorT { Action action; State state; };
//
//   const State& initial_state() const;
//   bool IsGoal(const State& s) const;
//   // Successors in a deterministic order. Unit step costs. Expand must
//   // be a pure function of the state: the successor set (and its order)
//   // may not depend on which execution backend produced it — e.g.
//   // MappingProblem's interpreted vs. compiled operator application
//   // (SuccessorConfig::compiled_expand) yield identical successors.
//   std::vector<SuccessorT> Expand(const State& s) const;
//   // Heuristic estimate h(s) ≥ 0 of the distance to a goal.
//   int EstimateCost(const State& s) const;
//   // Stable fingerprint for duplicate/cycle detection.
//   uint64_t StateKey(const State& s) const;
//
// Optionally, a problem may also provide
//
//   size_t AuxMemoryNodes() const;
//
// reporting states the *problem* retains (e.g. a transposition cache of
// Expand results). The algorithms add it to their own memory proxy, so
// problem-side caches count toward SearchLimits::max_memory_nodes.
//
// A problem may also provide the full 128-bit identity
//
//   Fp128 StateKey128(const State& s) const;
//
// which the algorithms' duplicate/cycle-detection sets key on when
// present (see StateFingerprint below). Problems with large reachable
// spaces should: a 64-bit key collides at the birthday bound (~2^32
// states), and a collision in a dedup set silently drops a distinct
// reachable state.
//
// A problem may also provide a batched heuristic
//
//   void EstimateCostBatch(std::span<const State* const> states,
//                          std::span<int> out) const;
//
// required to fill out[i] with exactly EstimateCost(*states[i]). The
// beam-family algorithms funnel whole frontier expansions through it
// (via EstimateCosts below) so the problem can dedup repeated states and
// amortize per-call setup; problems that omit it get the per-state loop.
//
// MappingProblem (src/core) is the real instance; tests use toy problems.

inline constexpr int64_t kSearchInfinity =
    std::numeric_limits<int64_t>::max() / 4;

// States retained by the problem itself (caches of Expand results and the
// like), to be folded into an algorithm's memory proxy. Zero for problems
// that do not declare AuxMemoryNodes(), which keeps the duck type small
// for toy problems.
template <typename Problem>
uint64_t AuxMemoryNodes(const Problem& problem) {
  if constexpr (requires { problem.AuxMemoryNodes(); }) {
    return static_cast<uint64_t>(problem.AuxMemoryNodes());
  } else {
    return 0;
  }
}

// The state identity the dedup/cycle sets key on: the problem's full
// 128-bit fingerprint when it provides one, else both lanes derived from
// the 64-bit StateKey (Mix64 keeps the lanes distinct so Fp128Hash still
// spreads well; a problem without StateKey128 keeps its original 64-bit
// collision behavior, which is fine for the toy spaces that omit it).
template <typename Problem, typename State>
Fp128 StateFingerprint(const Problem& problem, const State& state) {
  if constexpr (requires { problem.StateKey128(state); }) {
    return problem.StateKey128(state);
  } else {
    uint64_t key = problem.StateKey(state);
    return Fp128{key, Mix64(key)};
  }
}

// Batched heuristic evaluation: routes through the problem's
// EstimateCostBatch when it declares one, else the per-state loop. The
// values are identical either way (the batch contract requires it), so
// callers may switch freely between this and N EstimateCost calls
// without perturbing a search outcome.
template <typename Problem, typename State>
std::vector<int> EstimateCosts(const Problem& problem,
                               const std::vector<const State*>& states) {
  std::vector<int> out(states.size());
  if constexpr (requires {
                  problem.EstimateCostBatch(
                      std::span<const State* const>(states),
                      std::span<int>(out));
                }) {
    problem.EstimateCostBatch(std::span<const State* const>(states),
                              std::span<int>(out));
  } else {
    for (size_t i = 0; i < states.size(); ++i) {
      out[i] = problem.EstimateCost(*states[i]);
    }
  }
  return out;
}

// Why a search stopped. kFound and kExhausted are conclusive (goal reached
// / finite space swept without one); everything else is a resource trip,
// i.e. failure is inconclusive and the anytime fields of SearchOutcome
// carry the best progress made.
enum class StopReason {
  kFound,      // goal reached
  kExhausted,  // reachable space swept without reaching a goal
  kStates,     // SearchLimits::max_states tripped
  kDepth,      // SearchLimits::max_depth tripped
  kMemory,     // SearchLimits::max_memory_nodes tripped
  kDeadline,   // SearchLimits::deadline_millis tripped
  kCancelled,  // CancelToken fired
  kStalled,    // supervisor preempted a hung rung (no heartbeat progress)
};

// "found", "exhausted", "states", "depth", "memory", "deadline",
// "cancelled", "stalled" — stable names for reports and logs.
inline std::string_view StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kFound:
      return "found";
    case StopReason::kExhausted:
      return "exhausted";
    case StopReason::kStates:
      return "states";
    case StopReason::kDepth:
      return "depth";
    case StopReason::kMemory:
      return "memory";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kCancelled:
      return "cancelled";
    case StopReason::kStalled:
      return "stalled";
  }
  return "unknown";
}

// True for the inconclusive stops (a resource bound or caller intervention
// cut the search short).
inline bool IsResourceStop(StopReason reason) {
  return reason != StopReason::kFound && reason != StopReason::kExhausted;
}

// Cooperative cancellation flag. Cancel() may be called from any thread
// while a search is running; the search observes it at its next
// deadline/cancel poll (every SearchLimits::check_interval visits) and
// stops with StopReason::kCancelled. The token is reusable across
// searches via Reset().
//
// Tokens chain: a token with a parent reports cancelled when either it
// or the parent has fired. The concurrent portfolio runner hands each
// rung a private token parented on the caller's, so the winner can
// cancel the losers without consuming the caller's token, while a
// caller-side Cancel still stops every rung.
//
// The chain is held through shared, heap-allocated flag nodes: a child
// keeps its parent's node alive, so cancelled() stays safe (and keeps
// reporting the parent's last state) even after the parent CancelToken
// object itself has been destroyed. Cancel() is still one relaxed atomic
// store; cancelled() walks the (short) chain of relaxed loads.
class CancelToken {
 public:
  CancelToken() : node_(std::make_shared<Node>()) {}
  explicit CancelToken(const CancelToken* parent)
      : node_(std::make_shared<Node>()) {
    if (parent != nullptr) node_->parent = parent->node_;
  }

  void Cancel() { node_->flag.store(true, std::memory_order_relaxed); }
  // Resets this token's own flag only; an already-fired parent still
  // reports through.
  void Reset() { node_->flag.store(false, std::memory_order_relaxed); }
  bool cancelled() const {
    for (const Node* n = node_.get(); n != nullptr; n = n->parent.get()) {
      if (n->flag.load(std::memory_order_relaxed)) return true;
    }
    return false;
  }

 private:
  struct Node {
    std::atomic<bool> flag{false};
    std::shared_ptr<const Node> parent;  // keeps the ancestor chain alive
  };
  std::shared_ptr<Node> node_;
};

// Liveness/progress beacon for the watchdog supervisor
// (runtime/supervisor.h). A search stamps its slot from the BudgetGuard's
// amortized poll tick (and the thread pool bumps `beats` per task), all
// relaxed atomic stores — the hot path pays nothing it was not already
// paying for governance. The supervisor thread reads the slot
// periodically: `beats` unchanged and `states` flat across a stall window
// means the rung is hung (a wedged Expand, an injected delay, a deadlock)
// and it gets preempted. `memory_nodes` mirrors the algorithm's memory
// proxy so the supervisor can stage memory degradation before the hard
// limit trips.
struct HeartbeatSlot {
  std::atomic<uint64_t> beats{0};
  std::atomic<uint64_t> states{0};
  std::atomic<uint64_t> memory_nodes{0};

  void Beat(uint64_t states_examined, uint64_t memory) {
    beats.fetch_add(1, std::memory_order_relaxed);
    states.store(states_examined, std::memory_order_relaxed);
    memory_nodes.store(memory, std::memory_order_relaxed);
  }
};

// Bounded denylist of poison-state fingerprints: states whose Expand threw
// (a poisoned cache entry, an injected allocation failure, a buggy
// operator). A quarantined state is never re-expanded — GuardedExpand
// returns no successors for it, so the search routes around it and the
// run continues instead of dying. FIFO-bounded so a pathological workload
// cannot grow it without limit; `poisoned()` counts every quarantine
// event (admissions), which keeps the telemetry monotonic even after
// eviction.
class StateQuarantine {
 public:
  explicit StateQuarantine(size_t capacity = 1024)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  bool Contains(const Fp128& fp) const {
    std::lock_guard<std::mutex> lock(mu_);
    return set_.find(fp) != set_.end();
  }

  // Returns true if the fingerprint was newly quarantined.
  bool Add(const Fp128& fp) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!set_.insert(fp).second) return false;
    fifo_.push_back(fp);
    while (fifo_.size() > capacity_) {
      set_.erase(fifo_.front());
      fifo_.pop_front();
    }
    poisoned_ += 1;
    return true;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return set_.size();
  }
  uint64_t poisoned() const {
    std::lock_guard<std::mutex> lock(mu_);
    return poisoned_;
  }

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  std::unordered_set<Fp128, Fp128Hash> set_;
  std::deque<Fp128> fifo_;
  uint64_t poisoned_ = 0;
};

// The poison-state boundary every algorithm expands through. With no
// quarantine installed this is a plain Expand call — no try block, no
// fingerprint, zero overhead, and exceptions propagate exactly as before.
// With one installed: a quarantined state yields no successors, and an
// exception escaping Expand (ApplyOp included) quarantines the state's
// fingerprint and yields no successors — the search treats it as a dead
// end and keeps going.
template <typename Problem, typename State>
auto GuardedExpand(const Problem& problem, const State& state,
                   StateQuarantine* quarantine)
    -> decltype(problem.Expand(state)) {
  if (quarantine == nullptr) return problem.Expand(state);
  const Fp128 fp = StateFingerprint(problem, state);
  if (quarantine->Contains(fp)) return {};
  try {
    return problem.Expand(state);
  } catch (...) {
    quarantine->Add(fp);
    return {};
  }
}

// Type-erased base for CheckpointSink<State, Action> so SearchLimits can
// carry a sink without being templated. The algorithms downcast with
// ResolveCheckpointSink<State, Action>(); a sink instantiated for other
// state/action types simply resolves to null (no checkpointing) instead
// of misbehaving.
class CheckpointSinkBase {
 public:
  virtual ~CheckpointSinkBase() = default;
};

// A resumable snapshot of one search call, captured at an algorithm's
// checkpoint boundary and sufficient to continue the run after process
// death (see docs/ROBUSTNESS.md, "Checkpoint & resume contract"):
//
//   * IDA*: `ida_bound`, the current iteration's f-bound. Resuming
//     restarts iterative deepening at that bound; the completed shallower
//     iterations are not repeated.
//   * Beam / parallel beam: the whole frontier (states + paths + h) and
//     the dedup set (`closed` fingerprints) at a level barrier, plus
//     `beam_depth`. Resuming continues the level loop exactly where the
//     snapshot was taken.
//   * A* / greedy: the open list (paths, insertion sequence numbers) and
//     the closed/best-g map. States and f/h values are reconstructed
//     deterministically on resume, and preserved `seq` numbers keep the
//     FIFO tiebreaks — continuation is order-identical.
//   * RBFS: no per-algorithm seed (its backed-up-value recursion has no
//     compact frontier); resuming restarts the rung from the root, which
//     is result-equivalent because the search is deterministic.
//
// The common fields carry run progress for budget continuity and the
// anytime best partial path.
template <typename State, typename Action>
struct SearchSeed {
  // Progress at capture.
  uint64_t states_examined = 0;
  std::vector<Action> best_path;
  int best_h = -1;

  // IDA*: current iteration bound (-1 = none).
  int64_t ida_bound = -1;

  // Beam: frontier at a level barrier plus the level index.
  struct FrontierNode {
    State state;
    std::vector<Action> path;
    int64_t h = 0;
  };
  std::vector<FrontierNode> frontier;
  int beam_depth = 0;

  // A*/greedy: open list. `key` is informational (g for A*, h for greedy;
  // both are recomputed on resume); `seq` is the original insertion number
  // and must be preserved for identical tiebreaking.
  struct OpenNode {
    State state;
    std::vector<Action> path;
    int64_t key = 0;
    uint64_t seq = 0;
  };
  std::vector<OpenNode> open;
  uint64_t next_seq = 0;

  // Dedup/closed map: fingerprint -> best g (A*); g is 0 and ignored for
  // the membership-only sets of beam and greedy.
  std::vector<std::pair<Fp128, int64_t>> closed;
};

// Consumer of search snapshots, polled on the BudgetGuard's amortized
// tick (every SearchLimits::check_interval visits; beam polls at its
// level barriers, the only points where its state is a compact frontier).
// WantSnapshot is the cheap frequency gate — building a snapshot copies
// the frontier/open list, so algorithms only build one when it returns
// true. Implementations decide persistence (core/checkpoint.h's file
// sink) or anything else (tests count and cancel).
template <typename State, typename Action>
class CheckpointSink : public CheckpointSinkBase {
 public:
  virtual bool WantSnapshot(uint64_t states_examined) = 0;
  virtual void OnSnapshot(SearchSeed<State, Action> seed) = 0;
};

// Budget knobs. Searches stop (found=false, a resource StopReason) when a
// limit trips; zero-valued optional bounds are unlimited.
struct SearchLimits {
  // Upper bound on states examined (nodes visited, counting IDA/RBFS
  // re-visits, matching the paper's performance measure).
  uint64_t max_states = 10'000'000;
  // Upper bound on solution depth / recursion depth.
  int max_depth = 64;
  // Wall-clock budget for the search call, in milliseconds; 0 = unbounded.
  int64_t deadline_millis = 0;
  // Approximate bound on the algorithm's memory proxy (open+closed size
  // for A*/greedy, frontier+seen for beam, recursion depth for IDA*/RBFS
  // — the same quantity as SearchStats::peak_memory_nodes); 0 = unbounded.
  uint64_t max_memory_nodes = 0;
  // Cooperative cancellation (not owned, may be null). Flip from another
  // thread to stop a running search with StopReason::kCancelled.
  CancelToken* cancel = nullptr;
  // Deadline/cancel polls are amortized: the clock and the token are read
  // once every `check_interval` visits (the counting bounds above are
  // checked on every visit regardless).
  uint32_t check_interval = 16;
  // Checkpoint consumer (not owned, may be null). Polled on the amortized
  // tick above; must be a CheckpointSink<State, Action> instantiated for
  // the problem's state/action types or it resolves to null and is
  // ignored. See SearchSeed for what each algorithm captures.
  CheckpointSinkBase* checkpoint_sink = nullptr;
  // Liveness beacon for the watchdog supervisor (not owned, may be null).
  // Stamped on the amortized poll tick with the current states/memory
  // progress; see HeartbeatSlot.
  HeartbeatSlot* heartbeat = nullptr;
  // Poison-state denylist (not owned, may be null). When set, every
  // expansion goes through GuardedExpand: quarantined states produce no
  // successors and a throwing Expand quarantines instead of unwinding.
  StateQuarantine* quarantine = nullptr;
  // Supervisor-driven width pressure (not owned, may be null). Beam-family
  // algorithms halve their effective beam width once per pressure level
  // (never below 1) — the staged-degradation lever between cache trimming
  // and a hard memory stop.
  const std::atomic<uint32_t>* width_pressure = nullptr;
};

// The beam width after supervisor width pressure: halved once per
// pressure level, floored at 1. Pressure-free (the default) is the
// configured width untouched.
inline size_t EffectiveBeamWidth(size_t beam_width,
                                 const std::atomic<uint32_t>* pressure) {
  if (pressure == nullptr) return beam_width;
  const uint32_t level = pressure->load(std::memory_order_relaxed);
  if (level >= 63) return 1;
  const size_t width = beam_width >> level;
  return width == 0 ? 1 : width;
}

// The concrete sink for a problem's state/action types, or null when no
// sink is installed (or one of the wrong instantiation is). Resolved once
// per search call.
template <typename State, typename Action>
CheckpointSink<State, Action>* ResolveCheckpointSink(
    const SearchLimits& limits) {
  return dynamic_cast<CheckpointSink<State, Action>*>(limits.checkpoint_sink);
}

// Shared limit-tripping logic for the search algorithms: one object per
// search call, consulted once per visited state. Centralizes the
// states/depth/memory comparisons the five algorithms used to re-implement
// and owns the amortized deadline/cancel poll.
class BudgetGuard {
 public:
  explicit BudgetGuard(const SearchLimits& limits)
      : limits_(limits),
        poll_(limits.cancel != nullptr || limits.deadline_millis > 0 ||
              limits.checkpoint_sink != nullptr ||
              limits.heartbeat != nullptr) {
    if (limits_.deadline_millis > 0) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(limits_.deadline_millis);
    }
  }

  // Returns the reason to stop, or nullopt to keep searching. `depth` is
  // the g-value of the state about to be examined; `memory_nodes` the
  // algorithm's current memory proxy. The first call always polls
  // deadline/cancel, so an expired deadline or pre-cancelled token trips
  // immediately.
  std::optional<StopReason> Check(uint64_t states_examined, int64_t depth,
                                  uint64_t memory_nodes) {
    checkpoint_due_ = false;
    if (states_examined >= limits_.max_states) return StopReason::kStates;
    if (depth > limits_.max_depth) return StopReason::kDepth;
    if (limits_.max_memory_nodes > 0 &&
        memory_nodes > limits_.max_memory_nodes) {
      return StopReason::kMemory;
    }
    if (poll_ && ticks_left_-- == 0) {
      ticks_left_ = limits_.check_interval;
      checkpoint_due_ = limits_.checkpoint_sink != nullptr;
      if (limits_.heartbeat != nullptr) {
        limits_.heartbeat->Beat(states_examined, memory_nodes);
      }
      if (limits_.cancel != nullptr && limits_.cancel->cancelled()) {
        return StopReason::kCancelled;
      }
      if (limits_.deadline_millis > 0 &&
          std::chrono::steady_clock::now() >= deadline_) {
        return StopReason::kDeadline;
      }
    }
    return std::nullopt;
  }

  // True when the most recent Check hit the amortized tick and a
  // checkpoint sink is installed: the algorithm should offer the sink a
  // snapshot at its next coherent boundary (subject to WantSnapshot).
  bool checkpoint_due() const { return checkpoint_due_; }

 private:
  const SearchLimits& limits_;
  bool poll_;
  bool checkpoint_due_ = false;
  uint32_t ticks_left_ = 0;  // 0 so the very first Check polls
  std::chrono::steady_clock::time_point deadline_;
};

struct SearchStats {
  // Nodes visited, including redundant re-expansions across IDA iterations
  // and RBFS re-descents — the paper's "number of states examined".
  uint64_t states_examined = 0;
  // Successor states produced by Expand.
  uint64_t states_generated = 0;
  // IDA: completed depth-bound iterations; RBFS/A*: unused (0).
  int iterations = 0;
  // A*: peak open+closed entries; IDA/RBFS: peak recursion depth. A proxy
  // for memory footprint (the paper's motivation for dropping plain A*).
  uint64_t peak_memory_nodes = 0;
  // Length of the found path, or -1.
  int solution_cost = -1;
};

template <typename Action>
struct SearchOutcome {
  bool found = false;
  // Why the search returned. kExhausted until something else happens, so
  // an empty-space search reports conclusively.
  StopReason stop = StopReason::kExhausted;
  // Compatibility mirror of IsResourceStop(stop): the search stopped
  // because a SearchLimits bound (or cancellation) tripped, i.e. failure
  // is inconclusive.
  bool budget_exhausted = false;
  std::vector<Action> path;
  // Anytime result: the path to the lowest-h state examined so far (the
  // goal path when found) and its remaining heuristic distance. best_h is
  // -1 until the first state is examined. On a resource stop this is the
  // best partial mapping the caller can act on.
  std::vector<Action> best_path;
  int best_h = -1;
  SearchStats stats;
};

}  // namespace tupelo

#endif  // TUPELO_SEARCH_SEARCH_TYPES_H_
