#ifndef TUPELO_SEARCH_RBFS_H_
#define TUPELO_SEARCH_RBFS_H_

#include <algorithm>
#include <unordered_set>
#include <utility>
#include <vector>

#include "search/instrumentation.h"
#include "search/search_types.h"
#include "search/trace.h"

namespace tupelo {

// Recursive Best-First Search (Korf 1993, as described in Nilsson 1998 /
// §2.3 of the paper): best-first exploration using memory linear in the
// search depth. Each recursion explores the lowest-f child under an
// f-limit given by the best alternative elsewhere in the tree, backing up
// the cheapest unexplored f-value on unwind. Re-descents re-examine states
// and each re-visit counts toward stats.states_examined.
//
// Children inherit the parent's backed-up value F(n) only when F(n)
// exceeds the parent's static f(n) — i.e. only when the subtree has been
// explored and backed up before (Korf's condition). Inheriting
// unconditionally would clamp all children of a node with an inflated
// heuristic to one tie value and degenerate into a blind plateau sweep.
//
// Checkpointing: RBFS has no compact resumable core (its state is the
// recursion stack's backed-up values), so snapshots carry progress
// counters and the best partial path only, and `seed` never seeds the
// search — resume restarts from the root. The algorithm is deterministic,
// so the restarted run reaches the same result as an uninterrupted one.
template <typename P>
SearchOutcome<typename P::Action> RbfsSearch(
    const P& problem, const SearchLimits& limits = SearchLimits(),
    SearchTracer* tracer = nullptr, obs::MetricRegistry* metrics = nullptr,
    const SearchSeed<typename P::State, typename P::Action>* seed = nullptr,
    obs::TraceSession* trace = nullptr) {
  using Action = typename P::Action;
  using State = typename P::State;
  (void)seed;  // restart-from-root semantics; see header comment

  SearchOutcome<Action> outcome;
  SearchInstrumentation instr(metrics);
  SearchTraceEmitter emit(tracer, trace);
  obs::TraceSpan search_span(trace, obs::TraceCategory::kSearch,
                             "search.rbfs");
  auto* sink = ResolveCheckpointSink<State, Action>(limits);

  struct Child {
    Action action;
    State state;
    Fp128 key;  // full 128-bit identity for cycle detection
    int64_t static_f;  // g + h, fixed
    int64_t stored_f;  // backed-up value, monotonically raised
  };

  struct Rec {
    const P& problem;
    const SearchLimits& limits;
    SearchOutcome<Action>& out;
    SearchTraceEmitter& emit;
    SearchInstrumentation& instr;
    BudgetGuard& guard;
    CheckpointSink<State, Action>* sink;
    std::vector<Action> path_actions;
    std::unordered_set<Fp128, Fp128Hash> path_keys;
    StopReason abort_reason = StopReason::kExhausted;
    bool aborted = false;

    // Returns (found, backed-up f-value). `static_f` is g + h of `state`;
    // `stored_f` its current backed-up value (≥ static_f).
    std::pair<bool, int64_t> Visit(const State& state, int64_t g,
                                   int64_t static_f, int64_t stored_f,
                                   int64_t f_limit) {
      uint64_t memory_nodes =
          static_cast<uint64_t>(g) + 1 + AuxMemoryNodes(problem);
      if (std::optional<StopReason> stop = guard.Check(
              out.stats.states_examined, g, memory_nodes)) {
        aborted = true;
        abort_reason = *stop;
        return {false, kSearchInfinity};
      }
      if (sink != nullptr && guard.checkpoint_due() &&
          sink->WantSnapshot(out.stats.states_examined)) {
        SearchSeed<State, Action> snap;  // progress only; no resumable core
        snap.states_examined = out.stats.states_examined;
        snap.best_path = out.best_path;
        snap.best_h = out.best_h;
        sink->OnSnapshot(std::move(snap));
      }
      ++out.stats.states_examined;
      out.stats.peak_memory_nodes =
          std::max(out.stats.peak_memory_nodes, memory_nodes);
      instr.OnVisit(problem.StateKey(state));
      instr.OnPeakMemory(memory_nodes);
      if (int h = static_cast<int>(static_f - g);
          out.best_h < 0 || h < out.best_h) {
        out.best_h = h;
        out.best_path = path_actions;
      }
      if (emit.enabled()) {
        emit.Visit(problem.StateKey(state), static_cast<int>(g), static_f);
      }

      if (problem.IsGoal(state)) {
        if (emit.enabled()) {
          emit.Goal(problem.StateKey(state), static_cast<int>(g), static_f);
        }
        out.found = true;
        out.stop = StopReason::kFound;
        out.path = path_actions;
        out.best_path = path_actions;
        out.best_h = 0;
        out.stats.solution_cost = static_cast<int>(g);
        return {true, stored_f};
      }

      auto successors = GuardedExpand(problem, state, limits.quarantine);
      out.stats.states_generated += successors.size();
      instr.OnExpand(successors.size());
      std::vector<Child> children;
      children.reserve(successors.size());
      for (auto& succ : successors) {
        Fp128 key = StateFingerprint(problem, succ.state);
        if (path_keys.contains(key)) {
          instr.OnDuplicateHit();
          continue;
        }
        int64_t f = g + 1 + problem.EstimateCost(succ.state);
        // Korf's inheritance: when this node has been explored before
        // (its stored value exceeds its static value), its children's
        // costs are known to be at least the stored value.
        int64_t child_stored = stored_f > static_f ? std::max(f, stored_f) : f;
        children.push_back(Child{std::move(succ.action),
                                 std::move(succ.state), key, f,
                                 child_stored});
      }
      if (children.empty()) return {false, kSearchInfinity};

      while (true) {
        // Identify best and second-best children by stored f.
        size_t best = 0;
        for (size_t i = 1; i < children.size(); ++i) {
          if (children[i].stored_f < children[best].stored_f) best = i;
        }
        if (children[best].stored_f > f_limit ||
            children[best].stored_f >= kSearchInfinity) {
          return {false, children[best].stored_f};
        }
        int64_t alternative = kSearchInfinity;
        for (size_t i = 0; i < children.size(); ++i) {
          if (i != best) {
            alternative = std::min(alternative, children[i].stored_f);
          }
        }
        path_keys.insert(children[best].key);
        path_actions.push_back(children[best].action);
        auto [found, backed_up] =
            Visit(children[best].state, g + 1, children[best].static_f,
                  children[best].stored_f, std::min(f_limit, alternative));
        if (found) return {true, backed_up};
        path_actions.pop_back();
        path_keys.erase(children[best].key);
        if (aborted) return {false, kSearchInfinity};
        children[best].stored_f = backed_up;
      }
    }
  };

  BudgetGuard guard(limits);
  Rec rec{problem, limits, outcome, emit, instr, guard, sink,
          {},      {},     StopReason::kExhausted, false};
  const State& root = problem.initial_state();
  rec.path_keys.insert(StateFingerprint(problem, root));
  int64_t root_f = problem.EstimateCost(root);
  auto [found, backed_up] =
      rec.Visit(root, 0, root_f, root_f, kSearchInfinity);
  (void)found;
  (void)backed_up;
  if (rec.aborted) {
    outcome.stop = rec.abort_reason;
    outcome.budget_exhausted = IsResourceStop(rec.abort_reason);
  }
  return outcome;
}

}  // namespace tupelo

#endif  // TUPELO_SEARCH_RBFS_H_
