#ifndef TUPELO_SEARCH_PARALLEL_BEAM_H_
#define TUPELO_SEARCH_PARALLEL_BEAM_H_

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "search/beam.h"
#include "search/instrumentation.h"
#include "search/search_types.h"
#include "search/trace.h"

namespace tupelo {

// Parallel level-synchronous beam search. Each depth level runs in two
// phases:
//
//   Phase A (parallel): every frontier node's goal test, expansion, and
//   per-successor fingerprint + heuristic estimate fan out across `pool`,
//   one task per node. Workers touch only their own Prepared slot and the
//   problem's const surface (which MappingProblem makes thread-safe);
//   instrumentation, tracing, and the dedup set are never touched here.
//
//   Phase B (sequential): the calling thread merges results in frontier
//   index order, replaying the exact control flow of BeamSearch —
//   budget-guard check, examined count, best-h update, goal test, then
//   successor dedup against `seen` in generation order.
//
// Because the dedup set, the budget guard, and every stats update are
// driven in the same order as the sequential algorithm, the returned
// SearchOutcome is bit-identical to BeamSearch on the same problem and
// limits (the only divergence channel is the expand transposition cache's
// LRU order, which can shift AuxMemoryNodes after an eviction; see
// docs/PERFORMANCE.md). A worker that observes the CancelToken skips its
// expansion; the merge phase recomputes such slots inline, so even a
// cancellation race cannot change the result — it only costs parallelism.
//
// Falls back to BeamSearch when `pool` is null or has a single worker.
//
// Checkpointing mirrors BeamSearch exactly: snapshots are offered at the
// level barrier (the sequential point between Phase B of one level and
// Phase A of the next), and a frontier-carrying `seed` resumes the level
// loop with bit-identical continuation.
//
// Instruments (beyond search.*): beam.parallel.levels counts level
// barriers, beam.parallel.tasks the node-expansion tasks fanned out.
template <typename P>
SearchOutcome<typename P::Action> ParallelBeamSearch(
    const P& problem, size_t beam_width, ThreadPool* pool,
    const SearchLimits& limits = SearchLimits(),
    SearchTracer* tracer = nullptr, obs::MetricRegistry* metrics = nullptr,
    const SearchSeed<typename P::State, typename P::Action>* seed = nullptr,
    obs::TraceSession* trace = nullptr) {
  using Action = typename P::Action;
  using State = typename P::State;

  if (pool == nullptr || pool->size() <= 1) {
    return BeamSearch(problem, beam_width, limits, tracer, metrics, seed,
                      trace);
  }

  SearchOutcome<Action> outcome;
  SearchInstrumentation instr(metrics);
  SearchTraceEmitter emit(tracer, trace);
  obs::TraceSpan search_span(trace, obs::TraceCategory::kSearch,
                             "search.parallel_beam", "workers",
                             static_cast<int64_t>(pool->size()));
  if (beam_width == 0) return outcome;
  auto* sink = ResolveCheckpointSink<State, Action>(limits);

  obs::Counter* levels = nullptr;
  obs::Counter* tasks = nullptr;
  if (metrics != nullptr) {
    levels = &metrics->GetCounter("beam.parallel.levels");
    tasks = &metrics->GetCounter("beam.parallel.tasks");
  }

  struct Node {
    State state;
    std::vector<Action> path;
    int64_t h;
  };

  using SuccList = decltype(problem.Expand(problem.initial_state()));

  // One slot per frontier node, written by exactly one worker task and
  // read by the merge phase after the WaitGroup barrier (which provides
  // the happens-before edge). `ready` is false only when the worker bowed
  // out on a cancelled token.
  struct Prepared {
    bool ready = false;
    bool is_goal = false;
    SuccList successors;
    std::vector<Fp128> keys;
    std::vector<int64_t> hs;
  };

  auto prepare = [&problem, &limits, trace](const Node& node,
                                            Prepared& slot) {
    // Emitted on whichever thread runs the task, so Phase A work lands on
    // the worker's own track in the trace.
    obs::TraceSpan prep_span(trace, obs::TraceCategory::kSearch,
                             "beam.prepare");
    if (problem.IsGoal(node.state)) {
      slot.is_goal = true;
      slot.ready = true;
      return;
    }
    slot.successors = GuardedExpand(problem, node.state, limits.quarantine);
    slot.keys.reserve(slot.successors.size());
    std::vector<const State*> succ_states;
    succ_states.reserve(slot.successors.size());
    for (const auto& succ : slot.successors) {
      slot.keys.push_back(StateFingerprint(problem, succ.state));
      succ_states.push_back(&succ.state);
    }
    // One batched heuristic round-trip per expansion; identical values
    // to the old per-successor EstimateCost loop (see EstimateCosts).
    const std::vector<int> hs = EstimateCosts(problem, succ_states);
    slot.hs.assign(hs.begin(), hs.end());
    slot.ready = true;
  };

  std::unordered_set<Fp128, Fp128Hash> seen;
  std::vector<Node> frontier;
  int start_depth = 0;
  if (seed != nullptr && !seed->frontier.empty()) {
    // Resume from a checkpointed level barrier. h is recomputed (the
    // heuristic is deterministic) rather than trusted from the seed.
    for (const auto& entry : seed->frontier) {
      frontier.push_back(
          Node{entry.state, entry.path, problem.EstimateCost(entry.state)});
    }
    seen.reserve(seed->closed.size());
    for (const auto& [fp, g] : seed->closed) seen.insert(fp);
    start_depth = seed->beam_depth;
  } else {
    const State& root = problem.initial_state();
    seen.insert(StateFingerprint(problem, root));
    frontier.push_back(Node{root, {}, problem.EstimateCost(root)});
  }

  BudgetGuard guard(limits);
  WaitGroup wg;

  for (int depth = start_depth; depth <= limits.max_depth; ++depth) {
    // The memory proxy is computed before the fan-out, like the sequential
    // loop computes it before any of the level's expansions.
    uint64_t nodes = static_cast<uint64_t>(frontier.size() + seen.size()) +
                     AuxMemoryNodes(problem);
    outcome.stats.peak_memory_nodes =
        std::max(outcome.stats.peak_memory_nodes, nodes);
    instr.OnPeakMemory(nodes);
    if (sink != nullptr &&
        sink->WantSnapshot(outcome.stats.states_examined)) {
      SearchSeed<State, Action> snap;
      snap.states_examined = outcome.stats.states_examined;
      snap.best_path = outcome.best_path;
      snap.best_h = outcome.best_h;
      snap.beam_depth = depth;
      snap.frontier.reserve(frontier.size());
      for (const Node& node : frontier) {
        snap.frontier.push_back({node.state, node.path, node.h});
      }
      snap.closed.reserve(seen.size());
      for (const Fp128& fp : seen) snap.closed.emplace_back(fp, 0);
      sink->OnSnapshot(std::move(snap));
    }
    int64_t level_best_h = frontier.front().h;
    for (const Node& node : frontier) {
      level_best_h = std::min(level_best_h, node.h);
    }
    if (emit.enabled()) emit.Iteration(depth, level_best_h);
    if (levels != nullptr) levels->Increment();
    obs::TraceSpan level_span(trace, obs::TraceCategory::kSearch,
                              "beam.level", "level", depth, "best_h",
                              level_best_h);

    // Phase A: fan the frontier out across the pool.
    std::vector<Prepared> prepared(frontier.size());
    {
      obs::TraceSpan fan_span(trace, obs::TraceCategory::kSearch,
                              "beam.phase_a", "tasks",
                              static_cast<int64_t>(frontier.size()));
      wg.Add(frontier.size());
      for (size_t i = 0; i < frontier.size(); ++i) {
        pool->Submit([&frontier, &prepared, &prepare, &limits, &wg, i] {
          if (limits.cancel == nullptr || !limits.cancel->cancelled()) {
            // wg.Done() must run even if prepare throws (possible only
            // with no quarantine installed): a leaked Done would wedge
            // the barrier forever. The slot is reset so the merge phase
            // recomputes it inline — on the caller's thread, where the
            // exception propagates to the caller instead of a worker.
            try {
              prepare(frontier[i], prepared[i]);
            } catch (...) {
              prepared[i] = Prepared{};
            }
          }
          wg.Done();
        });
      }
      if (tasks != nullptr) tasks->Increment(frontier.size());
      wg.Wait();
    }

    // Phase B: sequential merge in frontier order.
    obs::TraceSpan merge_span(trace, obs::TraceCategory::kSearch,
                              "beam.phase_b");
    std::vector<Node> next_level;
    for (size_t i = 0; i < frontier.size(); ++i) {
      Node& node = frontier[i];
      if (std::optional<StopReason> stop =
              guard.Check(outcome.stats.states_examined, 0, nodes)) {
        outcome.stop = *stop;
        outcome.budget_exhausted = IsResourceStop(*stop);
        return outcome;
      }
      ++outcome.stats.states_examined;
      instr.OnVisit(problem.StateKey(node.state));
      if (outcome.best_h < 0 || node.h < outcome.best_h) {
        outcome.best_h = static_cast<int>(node.h);
        outcome.best_path = node.path;
      }
      if (emit.enabled()) {
        emit.Visit(problem.StateKey(node.state), depth, node.h);
      }

      Prepared& prep = prepared[i];
      if (!prep.ready) prepare(node, prep);  // worker skipped on cancel

      if (prep.is_goal) {
        if (emit.enabled()) {
          emit.Goal(problem.StateKey(node.state), depth, node.h);
        }
        outcome.found = true;
        outcome.stop = StopReason::kFound;
        outcome.stats.solution_cost = static_cast<int>(node.path.size());
        outcome.path = std::move(node.path);
        outcome.best_path = outcome.path;
        outcome.best_h = 0;
        return outcome;
      }

      outcome.stats.states_generated += prep.successors.size();
      instr.OnExpand(prep.successors.size());
      for (size_t s = 0; s < prep.successors.size(); ++s) {
        if (!seen.insert(prep.keys[s]).second) {
          instr.OnDuplicateHit();
          continue;
        }
        std::vector<Action> path = node.path;
        path.push_back(std::move(prep.successors[s].action));
        next_level.push_back(Node{std::move(prep.successors[s].state),
                                  std::move(path), prep.hs[s]});
      }
    }
    if (next_level.empty()) return outcome;  // beam ran dry

    // Keep the beam_width best by h (stable within ties), narrowed by the
    // same supervisor width pressure as the sequential beam.
    const size_t level_width =
        EffectiveBeamWidth(beam_width, limits.width_pressure);
    if (next_level.size() > level_width) {
      emit.BeamDrop(depth,
                    static_cast<int64_t>(next_level.size() - level_width));
      std::stable_sort(next_level.begin(), next_level.end(),
                       [](const Node& a, const Node& b) { return a.h < b.h; });
      next_level.resize(level_width);
    }
    frontier = std::move(next_level);
  }
  outcome.stop = StopReason::kDepth;  // level loop ran out of depth budget
  outcome.budget_exhausted = true;
  return outcome;
}

}  // namespace tupelo

#endif  // TUPELO_SEARCH_PARALLEL_BEAM_H_
