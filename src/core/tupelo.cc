#include "core/tupelo.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <utility>

#include "fira/optimizer.h"
#include "search/a_star.h"
#include "search/beam.h"
#include "search/greedy.h"
#include "search/ida_star.h"
#include "search/rbfs.h"

namespace tupelo {
namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

std::string RunReport::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "search=%.2fms (successors=%.2fms) verify=%.2fms "
                "simplify=%.2fms",
                search_millis, successor_millis, verify_millis,
                simplify_millis);
  return buf;
}

Result<TupeloResult> Tupelo::Discover(const TupeloOptions& options) const {
  if (!correspondences_.empty() && registry_ == nullptr) {
    return Status::FailedPrecondition(
        "semantic correspondences supplied but no function registry set");
  }
  for (const SemanticCorrespondence& c : correspondences_) {
    if (registry_ == nullptr || !registry_->Has(c.function)) {
      return Status::NotFound("correspondence uses unregistered function '" +
                              c.function + "'");
    }
    TUPELO_ASSIGN_OR_RETURN(const ComplexFunction* fn,
                            registry_->Lookup(c.function));
    if (fn->arity != c.inputs.size()) {
      return Status::InvalidArgument(
          "correspondence for '" + c.function + "' supplies " +
          std::to_string(c.inputs.size()) + " inputs; function expects " +
          std::to_string(fn->arity));
    }
    if (c.output.empty()) {
      return Status::InvalidArgument("correspondence for '" + c.function +
                                     "' has an empty output attribute");
    }
  }

  std::unique_ptr<Heuristic> heuristic = MakeHeuristic(
      options.heuristic, target_, options.algorithm, options.scale_k);
  if (heuristic == nullptr) {
    return Status::InvalidArgument("unknown heuristic kind");
  }

  MappingProblem problem(source_, target_, std::move(heuristic), registry_,
                         correspondences_, options.successors);
  problem.set_metrics(options.metrics);

  TupeloResult result;
  SearchOutcome<Op> outcome;
  Clock::time_point search_start = Clock::now();
  switch (options.algorithm) {
    case SearchAlgorithm::kIda:
      outcome =
          IdaStarSearch(problem, options.limits, nullptr, options.metrics);
      break;
    case SearchAlgorithm::kRbfs:
      outcome = RbfsSearch(problem, options.limits, nullptr, options.metrics);
      break;
    case SearchAlgorithm::kAStar:
      outcome = AStarSearch(problem, options.limits, nullptr, options.metrics);
      break;
    case SearchAlgorithm::kGreedy:
      outcome = GreedySearch(problem, options.limits, nullptr, options.metrics);
      break;
    case SearchAlgorithm::kBeam:
      outcome = BeamSearch(problem, options.beam_width, options.limits,
                           nullptr, options.metrics);
      break;
  }
  result.report.search_millis = MillisSince(search_start);

  result.found = outcome.found;
  result.budget_exhausted = outcome.budget_exhausted;
  result.stats = outcome.stats;
  if (outcome.found) {
    result.mapping = MappingExpression(std::move(outcome.path));
    if (options.simplify) {
      Clock::time_point simplify_start = Clock::now();
      result.mapping = Simplify(result.mapping);
      result.report.simplify_millis = MillisSince(simplify_start);
    }
    Clock::time_point verify_start = Clock::now();
    Result<Database> replay = result.mapping.Apply(source_, registry_);
    result.verified = replay.ok() && replay->Contains(target_);
    result.report.verify_millis = MillisSince(verify_start);
  }

  if (options.metrics != nullptr) {
    // Successor time accumulated in phase.successors.nanos during search.
    result.report.successor_millis =
        static_cast<double>(
            options.metrics->CounterValue("phase.successors.nanos")) /
        1e6;
    // Mirror the driver-level phase timers into the registry so exported
    // reports carry the full breakdown.
    options.metrics->GetCounter("phase.search.nanos")
        .Increment(static_cast<uint64_t>(result.report.search_millis * 1e6));
    options.metrics->GetCounter("phase.verify.nanos")
        .Increment(static_cast<uint64_t>(result.report.verify_millis * 1e6));
    options.metrics->GetCounter("phase.simplify.nanos")
        .Increment(
            static_cast<uint64_t>(result.report.simplify_millis * 1e6));
  }
  return result;
}

Result<TupeloResult> DiscoverMapping(
    const Database& source, const Database& target,
    const TupeloOptions& options, const FunctionRegistry* registry,
    std::vector<SemanticCorrespondence> correspondences) {
  Tupelo tupelo(source, target);
  tupelo.set_registry(registry);
  for (SemanticCorrespondence& c : correspondences) {
    tupelo.AddCorrespondence(std::move(c));
  }
  return tupelo.Discover(options);
}

}  // namespace tupelo
