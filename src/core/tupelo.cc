#include "core/tupelo.h"

#include <memory>
#include <utility>

#include "fira/optimizer.h"
#include "search/a_star.h"
#include "search/beam.h"
#include "search/greedy.h"
#include "search/ida_star.h"
#include "search/rbfs.h"

namespace tupelo {

Result<TupeloResult> Tupelo::Discover(const TupeloOptions& options) const {
  if (!correspondences_.empty() && registry_ == nullptr) {
    return Status::FailedPrecondition(
        "semantic correspondences supplied but no function registry set");
  }
  for (const SemanticCorrespondence& c : correspondences_) {
    if (registry_ == nullptr || !registry_->Has(c.function)) {
      return Status::NotFound("correspondence uses unregistered function '" +
                              c.function + "'");
    }
    TUPELO_ASSIGN_OR_RETURN(const ComplexFunction* fn,
                            registry_->Lookup(c.function));
    if (fn->arity != c.inputs.size()) {
      return Status::InvalidArgument(
          "correspondence for '" + c.function + "' supplies " +
          std::to_string(c.inputs.size()) + " inputs; function expects " +
          std::to_string(fn->arity));
    }
    if (c.output.empty()) {
      return Status::InvalidArgument("correspondence for '" + c.function +
                                     "' has an empty output attribute");
    }
  }

  std::unique_ptr<Heuristic> heuristic = MakeHeuristic(
      options.heuristic, target_, options.algorithm, options.scale_k);
  if (heuristic == nullptr) {
    return Status::InvalidArgument("unknown heuristic kind");
  }

  MappingProblem problem(source_, target_, std::move(heuristic), registry_,
                         correspondences_, options.successors);

  SearchOutcome<Op> outcome;
  switch (options.algorithm) {
    case SearchAlgorithm::kIda:
      outcome = IdaStarSearch(problem, options.limits);
      break;
    case SearchAlgorithm::kRbfs:
      outcome = RbfsSearch(problem, options.limits);
      break;
    case SearchAlgorithm::kAStar:
      outcome = AStarSearch(problem, options.limits);
      break;
    case SearchAlgorithm::kGreedy:
      outcome = GreedySearch(problem, options.limits);
      break;
    case SearchAlgorithm::kBeam:
      outcome = BeamSearch(problem, options.beam_width, options.limits);
      break;
  }

  TupeloResult result;
  result.found = outcome.found;
  result.budget_exhausted = outcome.budget_exhausted;
  result.stats = outcome.stats;
  if (outcome.found) {
    result.mapping = MappingExpression(std::move(outcome.path));
    if (options.simplify) {
      result.mapping = Simplify(result.mapping);
    }
    Result<Database> replay = result.mapping.Apply(source_, registry_);
    result.verified = replay.ok() && replay->Contains(target_);
  }
  return result;
}

Result<TupeloResult> DiscoverMapping(
    const Database& source, const Database& target,
    const TupeloOptions& options, const FunctionRegistry* registry,
    std::vector<SemanticCorrespondence> correspondences) {
  Tupelo tupelo(source, target);
  tupelo.set_registry(registry);
  for (SemanticCorrespondence& c : correspondences) {
    tupelo.AddCorrespondence(std::move(c));
  }
  return tupelo.Discover(options);
}

}  // namespace tupelo
