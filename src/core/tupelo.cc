#include "core/tupelo.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "common/thread_pool.h"
#include "core/checkpoint.h"
#include "fira/optimizer.h"
#include "search/a_star.h"
#include "search/beam.h"
#include "search/greedy.h"
#include "search/ida_star.h"
#include "search/parallel_beam.h"
#include "search/rbfs.h"

namespace tupelo {
namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Replays a mapping on the source instance without letting an exception
// escape Discover: operator execution can throw under fault injection
// (fira/executor.h, Kind::kThrow/kBadAlloc), and verification runs
// outside the search layer's poison-state quarantine, so a throwing
// replay must degrade to a failed verification, not a crash.
Result<Database> SafeReplay(const MappingExpression& mapping,
                            const Database& source,
                            const FunctionRegistry* registry) {
  try {
    return mapping.Apply(source, registry);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("verification replay threw: ") +
                            e.what());
  } catch (...) {
    return Status::Internal("verification replay threw a non-standard "
                            "exception");
  }
}

// Splits `remaining` by `share` for a non-final rung; the last rung takes
// everything left. Never returns 0 for a positive remainder, so a rung
// always gets a sliver of budget rather than tripping instantly.
uint64_t RungSlice(uint64_t remaining, double share, bool last) {
  if (last || share >= 1.0) return remaining;
  if (share <= 0.0) share = 1.0;
  uint64_t slice = static_cast<uint64_t>(static_cast<double>(remaining) * share);
  return slice == 0 && remaining > 0 ? 1 : slice;
}

// Dispatches one rung's algorithm. Beam rungs go through the parallel
// runner, which degrades to plain BeamSearch when `pool` is null. `seed`
// (nullable) resumes the algorithm from a checkpointed core. Each rung
// shows up on the trace as a "rung.<algo>" driver span (literal names:
// the session records only the name pointer).
SearchOutcome<Op> RunRung(SearchAlgorithm algorithm,
                          const MappingProblem& problem, size_t beam_width,
                          ThreadPool* pool, const SearchLimits& limits,
                          obs::MetricRegistry* metrics,
                          const SearchSeed<Database, Op>* seed = nullptr,
                          obs::TraceSession* trace = nullptr) {
  switch (algorithm) {
    case SearchAlgorithm::kIda: {
      obs::TraceSpan span(trace, obs::TraceCategory::kDriver, "rung.ida");
      return IdaStarSearch(problem, limits, nullptr, metrics, seed, trace);
    }
    case SearchAlgorithm::kRbfs: {
      obs::TraceSpan span(trace, obs::TraceCategory::kDriver, "rung.rbfs");
      return RbfsSearch(problem, limits, nullptr, metrics, seed, trace);
    }
    case SearchAlgorithm::kAStar: {
      obs::TraceSpan span(trace, obs::TraceCategory::kDriver, "rung.astar");
      return AStarSearch(problem, limits, nullptr, metrics, seed, trace);
    }
    case SearchAlgorithm::kGreedy: {
      obs::TraceSpan span(trace, obs::TraceCategory::kDriver, "rung.greedy");
      return GreedySearch(problem, limits, nullptr, metrics, seed, trace);
    }
    case SearchAlgorithm::kBeam: {
      obs::TraceSpan span(trace, obs::TraceCategory::kDriver, "rung.beam");
      return ParallelBeamSearch(problem, beam_width, pool, limits, nullptr,
                                metrics, seed, trace);
    }
  }
  return {};
}

// Writes DiscoveryCheckpoint files from the snapshots the active rung's
// search offers. One instance serves the whole Discover call; BeginRung
// repoints it at each rung's position/budget context. When
// `kill_after` > 0, the sink cancels `kill_token` right after that many
// successful writes — the deterministic crash seam the fault campaign and
// the crash-equivalence tests kill runs with.
class FileCheckpointSink : public CheckpointSink<Database, Op> {
 public:
  FileCheckpointSink(std::string path, uint64_t interval_states,
                     Fp128 source_fp, Fp128 target_fp, int ladder_size,
                     int64_t deadline_total, Clock::time_point search_start,
                     obs::MetricRegistry* metrics, obs::TraceSession* trace,
                     CancelToken* kill_token, uint64_t kill_after,
                     const std::function<void(const DiscoverProgress&)>*
                         on_progress = nullptr)
      : path_(std::move(path)),
        interval_(interval_states == 0 ? 1 : interval_states),
        source_fp_(source_fp),
        target_fp_(target_fp),
        ladder_size_(ladder_size),
        deadline_total_(deadline_total),
        search_start_(search_start),
        metrics_(metrics),
        trace_(trace),
        kill_token_(kill_token),
        kill_after_(kill_after),
        on_progress_(on_progress) {}

  // Repoints the sink at the rung about to run. `states_budget_left` is
  // the whole-run state budget before this rung starts. Unless the rung is
  // being resumed from a frontier (whose checkpoint must not be clobbered
  // by an empty one), a rung-entry checkpoint is written immediately so a
  // kill between snapshots restarts at this rung, not an earlier one.
  void BeginRung(int rung_index, SearchAlgorithm algorithm,
                 uint64_t states_budget_left, bool resumed_rung) {
    rung_index_ = rung_index;
    algorithm_ = std::string(SearchAlgorithmName(algorithm));
    states_budget_left_ = states_budget_left;
    next_due_ = interval_;
    if (!resumed_rung) {
      SearchSeed<Database, Op> empty;
      WriteSnapshot(empty);
    }
  }

  bool WantSnapshot(uint64_t states_examined) override {
    return states_examined >= next_due_;
  }

  void OnSnapshot(SearchSeed<Database, Op> seed) override {
    WriteSnapshot(seed);
    next_due_ = seed.states_examined + interval_;
  }

  uint64_t writes() const { return writes_; }

 private:
  void WriteSnapshot(const SearchSeed<Database, Op>& seed) {
    obs::TraceSpan span(trace_, obs::TraceCategory::kCheckpoint,
                        "checkpoint.write", "rung",
                        static_cast<int64_t>(rung_index_));
    DiscoveryCheckpoint cp;
    cp.source_fp = source_fp_;
    cp.target_fp = target_fp_;
    cp.algorithm = algorithm_;
    cp.rung_index = rung_index_;
    cp.ladder_size = ladder_size_;
    cp.states_left = static_cast<int64_t>(
        states_budget_left_ > seed.states_examined
            ? states_budget_left_ - seed.states_examined
            : 0);
    if (deadline_total_ > 0) {
      int64_t left =
          deadline_total_ - static_cast<int64_t>(MillisSince(search_start_));
      cp.deadline_left_millis = left > 0 ? left : 0;
    }
    cp.states_examined = seed.states_examined;
    cp.best_path = seed.best_path;
    cp.best_h = seed.best_h;
    cp.ida_bound = seed.ida_bound;
    cp.beam_depth = seed.beam_depth;
    cp.frontier.reserve(seed.frontier.size());
    for (const auto& node : seed.frontier) {
      cp.frontier.push_back({node.state, node.path, node.h});
    }
    cp.open.reserve(seed.open.size());
    for (const auto& node : seed.open) {
      cp.open.push_back({node.path, node.key, node.seq});
    }
    cp.next_seq = seed.next_seq;
    cp.closed = seed.closed;

    std::string text = WriteCheckpoint(cp);
    // A failed write is deliberately non-fatal: checkpointing must never
    // take down the search it protects. The write counter only moves on
    // success, so the kill seam still fires at real checkpoint boundaries.
    // Failures are surfaced anyway — AtomicWriteFile now returns typed
    // errors for short writes and close failures (ENOSPC), and those land
    // on the checkpoint.write_failures counter and a trace instant so a
    // run silently losing its crash safety is visible post-mortem.
    Status wrote = AtomicWriteFile(path_, text);
    if (wrote.ok()) {
      ++writes_;
      span.SetEndArg("bytes", static_cast<int64_t>(text.size()));
      if (metrics_ != nullptr) {
        metrics_->GetCounter("checkpoint.writes").Increment();
        metrics_->GetCounter("checkpoint.bytes").Increment(text.size());
      }
      // Progress rides the checkpoint cadence: a sample is only reported
      // once it is durable, so a streamed partial mapping is always one a
      // crash-restarted run would also recover.
      if (on_progress_ != nullptr && *on_progress_) {
        DiscoverProgress progress;
        progress.rung_index = rung_index_;
        progress.states_examined = seed.states_examined;
        progress.best_path = &seed.best_path;
        progress.best_h = seed.best_h;
        (*on_progress_)(progress);
      }
      if (kill_after_ > 0 && writes_ >= kill_after_ &&
          kill_token_ != nullptr) {
        kill_token_->Cancel();
      }
    } else {
      span.SetEndArg("failed", 1);
      if (metrics_ != nullptr) {
        metrics_->GetCounter("checkpoint.write_failures").Increment();
      }
      if (trace_ != nullptr) {
        trace_->EmitInstant(obs::TraceCategory::kCheckpoint,
                            "checkpoint.write_failed", "rung",
                            static_cast<int64_t>(rung_index_));
      }
    }
  }

  const std::string path_;
  const uint64_t interval_;
  const Fp128 source_fp_;
  const Fp128 target_fp_;
  const int ladder_size_;
  const int64_t deadline_total_;
  const Clock::time_point search_start_;
  obs::MetricRegistry* const metrics_;
  obs::TraceSession* const trace_;
  CancelToken* const kill_token_;
  const uint64_t kill_after_;
  const std::function<void(const DiscoverProgress&)>* const on_progress_;

  int rung_index_ = 0;
  std::string algorithm_;
  uint64_t states_budget_left_ = 0;
  uint64_t next_due_ = 0;
  uint64_t writes_ = 0;
};

}  // namespace

std::vector<DegradationRung> DefaultLadder() {
  return {{SearchAlgorithm::kIda, 0.6}, {SearchAlgorithm::kBeam, 1.0}};
}

std::string RunReport::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "search=%.2fms (successors=%.2fms) verify=%.2fms "
                "simplify=%.2fms",
                search_millis, successor_millis, verify_millis,
                simplify_millis);
  return buf;
}

Result<TupeloResult> Tupelo::Discover(const TupeloOptions& options) const {
  if (!correspondences_.empty() && registry_ == nullptr) {
    return Status::FailedPrecondition(
        "semantic correspondences supplied but no function registry set");
  }
  for (const SemanticCorrespondence& c : correspondences_) {
    if (registry_ == nullptr || !registry_->Has(c.function)) {
      return Status::NotFound("correspondence uses unregistered function '" +
                              c.function + "'");
    }
    TUPELO_ASSIGN_OR_RETURN(const ComplexFunction* fn,
                            registry_->Lookup(c.function));
    if (fn->arity != c.inputs.size()) {
      return Status::InvalidArgument(
          "correspondence for '" + c.function + "' supplies " +
          std::to_string(c.inputs.size()) + " inputs; function expects " +
          std::to_string(fn->arity));
    }
    if (c.output.empty()) {
      return Status::InvalidArgument("correspondence for '" + c.function +
                                     "' has an empty output attribute");
    }
  }

  // Validate the heuristic kind once up front (rungs only vary the
  // algorithm, which can never make MakeHeuristic fail).
  if (MakeHeuristic(options.heuristic, target_, options.algorithm,
                    options.scale_k) == nullptr) {
    return Status::InvalidArgument("unknown heuristic kind");
  }

  // The rung sequence: the ladder when configured, else one rung running
  // the configured algorithm on the full budget.
  std::vector<DegradationRung> ladder = options.ladder;
  if (ladder.empty()) {
    ladder.push_back(DegradationRung{options.algorithm, 1.0});
  }

  if (!options.flight_recorder_path.empty() && options.trace == nullptr) {
    return Status::InvalidArgument(
        "TupeloOptions::flight_recorder_path requires a trace session");
  }

  obs::MetricRegistry* metrics = options.metrics;
  obs::TraceSession* trace = options.trace;
  // Baselines for the trace.events_* metric mirror and the fault-fire
  // dump trigger: the session may be shared across several Discover
  // calls, so only this call's delta counts.
  const uint64_t trace_recorded_before =
      trace != nullptr ? trace->events_recorded() : 0;
  const uint64_t trace_dropped_before =
      trace != nullptr ? trace->events_dropped() : 0;
  const uint64_t trace_faults_before =
      trace != nullptr ? trace->fault_count() : 0;
  // The whole-run driver span is emitted manually (not RAII) so the
  // flight-recorder dump below can close it first; error returns leave an
  // open B, which export-time reconciliation closes at the last event.
  if (trace != nullptr) {
    trace->EmitBegin(obs::TraceCategory::kDriver, "discover", "rungs",
                     static_cast<int64_t>(ladder.size()));
  }
  TupeloResult result;
  SearchOutcome<Op> found_outcome;
  Clock::time_point search_start = Clock::now();
  int64_t deadline_total = options.limits.deadline_millis;
  uint64_t states_left = options.limits.max_states;
  // The heuristically closest state seen across rungs (anytime result).
  std::vector<Op> best_partial;
  int best_partial_h = -1;

  // Checkpoint/resume plumbing (sequential ladder only: the portfolio has
  // no single rung position to snapshot).
  const bool checkpointing = !options.checkpoint_path.empty();
  if ((checkpointing || options.resume) && options.portfolio &&
      ladder.size() > 1) {
    return Status::FailedPrecondition(
        "checkpoint/resume is not supported with the concurrent portfolio");
  }
  if (options.resume && !checkpointing) {
    return Status::InvalidArgument(
        "TupeloOptions::resume requires checkpoint_path");
  }

  size_t first_rung = 0;
  SearchSeed<Database, Op> resume_seed;
  bool have_resume_seed = false;
  if (options.resume) {
    obs::TraceSpan resume_span(trace, obs::TraceCategory::kCheckpoint,
                               "resume.load");
    Result<DiscoveryCheckpoint> loaded =
        LoadCheckpointFile(options.checkpoint_path);
    if (!loaded.ok() && loaded.status().code() == StatusCode::kNotFound) {
      // Killed before the first write: nothing to resume, fresh start.
    } else if (!loaded.ok()) {
      return loaded.status();
    } else {
      const DiscoveryCheckpoint& cp = *loaded;
      if (!(cp.source_fp == source_.Fingerprint128()) ||
          !(cp.target_fp == target_.Fingerprint128())) {
        return Status::FailedPrecondition(
            "checkpoint was written by a different workload");
      }
      if (cp.ladder_size != static_cast<int>(ladder.size()) ||
          cp.rung_index >= static_cast<int>(ladder.size()) ||
          cp.algorithm !=
              SearchAlgorithmName(ladder[cp.rung_index].algorithm)) {
        return Status::FailedPrecondition(
            "checkpoint does not match this run's ladder");
      }
      first_rung = static_cast<size_t>(cp.rung_index);
      states_left =
          cp.states_left > 0 ? static_cast<uint64_t>(cp.states_left) : 0;
      if (deadline_total > 0) deadline_total = cp.deadline_left_millis;
      best_partial = cp.best_path;
      best_partial_h = cp.best_h;
      resume_seed.states_examined = cp.states_examined;
      resume_seed.best_path = cp.best_path;
      resume_seed.best_h = cp.best_h;
      resume_seed.ida_bound = cp.ida_bound;
      resume_seed.beam_depth = cp.beam_depth;
      resume_seed.frontier.reserve(cp.frontier.size());
      for (const CheckpointFrontierEntry& e : cp.frontier) {
        resume_seed.frontier.push_back({e.state, e.path, e.h});
      }
      resume_seed.open.reserve(cp.open.size());
      for (const CheckpointOpenEntry& e : cp.open) {
        // Open-list states are not stored; replay them from their action
        // paths (operators are deterministic).
        TUPELO_ASSIGN_OR_RETURN(
            Database state,
            MappingExpression(e.path).Apply(source_, registry_));
        resume_seed.open.push_back({std::move(state), e.path, e.key, e.seq});
      }
      resume_seed.next_seq = cp.next_seq;
      resume_seed.closed = cp.closed;
      have_resume_seed = true;
      result.resumed = true;
      result.resume_rungs_skipped = static_cast<int>(first_rung);
      if (metrics != nullptr && first_rung > 0) {
        metrics->GetCounter("checkpoint.resume.rungs_skipped")
            .Increment(first_rung);
      }
    }
  }

  std::unique_ptr<CancelToken> kill_token;
  std::unique_ptr<FileCheckpointSink> sink;
  if (checkpointing) {
    // Hygiene: a crash between AtomicWriteFile's write and rename leaves
    // `<path>.tmp` behind. It is never valid input (loads read only the
    // final path), so sweep it before the first write of this run.
    RemoveStaleCheckpointTmp(options.checkpoint_path);
    kill_token = std::make_unique<CancelToken>(options.limits.cancel);
    sink = std::make_unique<FileCheckpointSink>(
        options.checkpoint_path, options.checkpoint_interval_states,
        source_.Fingerprint128(), target_.Fingerprint128(),
        static_cast<int>(ladder.size()), deadline_total, search_start,
        metrics, trace, kill_token.get(), options.checkpoint_kill_after,
        &options.on_progress);
  }

  // Self-healing supervision (sequential ladder only: portfolio rungs own
  // their budgets and cancel one another already). The heartbeat slot is
  // declared before the pool so it outlives the workers that stamp it —
  // a worker bumps `beats` after finishing a task, which can land just
  // after the search's own barrier has released.
  const bool supervised =
      options.supervisor.enabled && !(options.portfolio && ladder.size() > 1);
  HeartbeatSlot heartbeat;
  std::atomic<uint32_t> width_pressure{0};
  std::unique_ptr<StateQuarantine> quarantine;
  std::unique_ptr<runtime::Supervisor> supervisor;
  if (supervised) {
    quarantine =
        std::make_unique<StateQuarantine>(options.supervisor.quarantine_capacity);
    supervisor = std::make_unique<runtime::Supervisor>(options.supervisor,
                                                       metrics, trace);
  }

  // The parallel runtime: one pool per Discover call, joined before
  // return. Beam rungs fan their levels out over it. The task tracer is
  // declared before the pool so it outlives the workers that call it.
  obs::PoolTaskTracer pool_task_tracer(trace);
  size_t threads = std::max<size_t>(1, options.threads);
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool = options.pool;
  if (pool != nullptr) {
    // Shared pool: beam rungs fan out over the caller's pool. Its trace
    // hook and task heartbeat belong to the owner — a per-call install
    // would race with sibling Discover calls sharing the same pool — so
    // supervised stall detection relies on the search thread's beats.
    threads = std::max<size_t>(1, pool->size());
  } else if (threads > 1) {
    owned_pool = std::make_unique<ThreadPool>(threads);
    pool = owned_pool.get();
    if (trace != nullptr) pool->set_trace_hook(&pool_task_tracer);
    if (supervised) pool->set_task_heartbeat(&heartbeat.beats);
  }
  if (metrics != nullptr) {
    metrics->GetGauge("runtime.threads").Set(static_cast<int64_t>(threads));
  }

  if (options.portfolio && ladder.size() > 1) {
    // Concurrent portfolio: all rungs start at once, each on its own
    // thread with the full budget (there is no fallback order to ration).
    // The first rung whose mapping replays correctly claims the win and
    // cancels the rest through their parented tokens.
    //
    // Prewarm the shared instances' lazy fingerprint caches while still
    // single-threaded: rung problems and verification replays all read
    // source_/target_ concurrently.
    source_.Fingerprint128();
    target_.Fingerprint128();

    struct PortfolioRun {
      SearchOutcome<Op> outcome;
      double millis = 0.0;
      bool verified = false;
    };
    std::vector<std::unique_ptr<MappingProblem>> problems;
    std::vector<std::unique_ptr<CancelToken>> tokens;
    problems.reserve(ladder.size());
    tokens.reserve(ladder.size());
    for (size_t i = 0; i < ladder.size(); ++i) {
      problems.push_back(std::make_unique<MappingProblem>(
          source_, target_,
          MakeHeuristic(options.heuristic, target_, ladder[i].algorithm,
                        options.scale_k),
          registry_, correspondences_, options.successors));
      problems.back()->set_metrics(metrics);
      problems.back()->set_trace(trace);
      tokens.push_back(std::make_unique<CancelToken>(options.limits.cancel));
    }
    std::vector<PortfolioRun> runs(ladder.size());
    std::mutex winner_mu;
    int winner = -1;
    if (metrics != nullptr) {
      metrics->GetCounter("runtime.portfolio.rungs")
          .Increment(ladder.size());
    }

    {
      std::vector<std::thread> rung_threads;
      rung_threads.reserve(ladder.size());
      for (size_t i = 0; i < ladder.size(); ++i) {
        rung_threads.emplace_back([&, i] {
          SearchLimits rung_limits = options.limits;
          rung_limits.cancel = tokens[i].get();
          Clock::time_point rung_start = Clock::now();
          SearchOutcome<Op> outcome =
              RunRung(ladder[i].algorithm, *problems[i], options.beam_width,
                      pool, rung_limits, metrics, nullptr, trace);
          runs[i].millis = MillisSince(rung_start);
          if (outcome.found) {
            // Verify here, in the rung thread: an unverifiable mapping
            // must not cancel a rung that could still produce a correct
            // one.
            obs::TraceSpan verify_span(trace, obs::TraceCategory::kVerify,
                                       "verify");
            Result<Database> replay = SafeReplay(
                MappingExpression(outcome.path), source_, registry_);
            runs[i].verified = replay.ok() && replay->Contains(target_);
            verify_span.SetEndArg("ok", runs[i].verified ? 1 : 0);
          }
          runs[i].outcome = std::move(outcome);
          if (runs[i].verified) {
            std::lock_guard<std::mutex> lock(winner_mu);
            if (winner < 0) {
              winner = static_cast<int>(i);
              for (size_t j = 0; j < tokens.size(); ++j) {
                if (j != i) tokens[j]->Cancel();
              }
            }
          }
        });
      }
      for (std::thread& t : rung_threads) t.join();
    }

    // Record attempts in ladder order regardless of finish order, so
    // reports are stable run to run.
    for (size_t i = 0; i < ladder.size(); ++i) {
      const PortfolioRun& run = runs[i];
      result.rungs.push_back(RungAttempt{ladder[i].algorithm,
                                         run.outcome.stop,
                                         run.outcome.stats.states_examined,
                                         run.millis});
      if (metrics != nullptr) {
        metrics->GetCounter("governor.rungs_attempted").Increment();
        metrics
            ->GetCounter(
                std::string("governor.rung.") +
                std::string(SearchAlgorithmName(ladder[i].algorithm)) +
                ".nanos")
            .Increment(static_cast<uint64_t>(run.millis * 1e6));
        switch (run.outcome.stop) {
          case StopReason::kDeadline:
            metrics->GetCounter("governor.deadline_trips").Increment();
            break;
          case StopReason::kCancelled:
            metrics->GetCounter("governor.cancellations").Increment();
            break;
          case StopReason::kMemory:
            metrics->GetCounter("governor.memory_trips").Increment();
            break;
          default:
            break;
        }
      }
      result.stats.states_examined += run.outcome.stats.states_examined;
      result.stats.states_generated += run.outcome.stats.states_generated;
      result.stats.iterations += run.outcome.stats.iterations;
      result.stats.peak_memory_nodes =
          std::max(result.stats.peak_memory_nodes,
                   run.outcome.stats.peak_memory_nodes);
      if (run.outcome.best_h >= 0 &&
          (best_partial_h < 0 || run.outcome.best_h < best_partial_h)) {
        best_partial_h = run.outcome.best_h;
        best_partial = run.outcome.best_path;
      }
    }
    // A found-but-unverifiable mapping still surfaces (found=true with a
    // failing verify_status), matching the sequential ladder's behavior —
    // it just never cancels the other rungs.
    if (winner < 0) {
      for (size_t i = 0; i < runs.size(); ++i) {
        if (runs[i].outcome.found) {
          winner = static_cast<int>(i);
          break;
        }
      }
    }
    if (winner >= 0) {
      result.found = true;
      result.stats.solution_cost =
          runs[winner].outcome.stats.solution_cost;
      result.stop_reason = runs[winner].outcome.stop;
      found_outcome = std::move(runs[winner].outcome);
      if (metrics != nullptr) {
        metrics->GetCounter("runtime.portfolio.losers_cancelled")
            .Increment(ladder.size() - 1);
      }
    } else {
      result.stop_reason = runs.back().outcome.stop;
    }
  } else
  for (size_t i = first_rung; i < ladder.size(); ++i) {
    const bool last = i + 1 == ladder.size();
    if (i > first_rung && metrics != nullptr) {
      metrics->GetCounter("governor.fallback_activations").Increment();
    }

    SearchLimits rung_limits = options.limits;
    rung_limits.max_states = RungSlice(states_left, ladder[i].budget_share,
                                       last);
    if (deadline_total > 0) {
      int64_t remaining =
          deadline_total - static_cast<int64_t>(MillisSince(search_start));
      if (remaining <= 0) {
        // The overall deadline expired between rungs: record the skipped
        // rung as an immediate deadline trip so the report shows it.
        result.rungs.push_back(
            RungAttempt{ladder[i].algorithm, StopReason::kDeadline, 0, 0.0});
        result.stop_reason = StopReason::kDeadline;
        if (metrics != nullptr) {
          metrics->GetCounter("governor.deadline_trips").Increment();
        }
        break;
      }
      rung_limits.deadline_millis = static_cast<int64_t>(RungSlice(
          static_cast<uint64_t>(remaining), ladder[i].budget_share, last));
    }

    std::unique_ptr<Heuristic> heuristic =
        MakeHeuristic(options.heuristic, target_, ladder[i].algorithm,
                      options.scale_k);
    MappingProblem problem(source_, target_, std::move(heuristic), registry_,
                           correspondences_, options.successors);
    problem.set_metrics(metrics);
    problem.set_trace(trace);

    const bool resumed_rung = have_resume_seed && i == first_rung;
    if (sink != nullptr) {
      sink->BeginRung(static_cast<int>(i), ladder[i].algorithm, states_left,
                      resumed_rung);
      rung_limits.checkpoint_sink = sink.get();
      rung_limits.cancel = kill_token.get();
    }

    // Genuine cancellation for this rung comes from the kill seam (when
    // checkpointing) or the caller's token; the supervisor's preempt
    // token is parented on it so a caller cancel still lands instantly.
    CancelToken* const ladder_cancel =
        sink != nullptr ? kill_token.get() : options.limits.cancel;

    // A stall-preempted rung is retried in place with exponential backoff
    // (transient faults — a slow disk, an injected delay — clear on their
    // own); anything else runs the attempt loop exactly once.
    SearchOutcome<Op> outcome;
    int64_t backoff_millis =
        std::max<int64_t>(1, options.supervisor.retry_backoff_millis);
    for (int attempt = 0;; ++attempt) {
      SearchLimits attempt_limits = rung_limits;
      CancelToken rung_token(ladder_cancel);
      int64_t watch_id = -1;
      if (supervised) {
        attempt_limits.cancel = &rung_token;
        attempt_limits.heartbeat = &heartbeat;
        attempt_limits.quarantine = quarantine.get();
        attempt_limits.width_pressure = &width_pressure;
        runtime::WatchSpec spec;
        spec.heartbeat = &heartbeat;
        spec.preempt = &rung_token;
        spec.max_memory_nodes = attempt_limits.max_memory_nodes;
        spec.memory_relief = [&problem] { problem.TrimCaches(); };
        spec.width_pressure = &width_pressure;
        spec.label = SearchAlgorithmName(ladder[i].algorithm).data();
        watch_id = supervisor->Watch(spec);
      }

      Clock::time_point rung_start = Clock::now();
      outcome =
          RunRung(ladder[i].algorithm, problem, options.beam_width,
                  pool, attempt_limits, metrics,
                  resumed_rung ? &resume_seed : nullptr, trace);
      double rung_millis = MillisSince(rung_start);

      runtime::PreemptReason why = runtime::PreemptReason::kNone;
      if (watch_id >= 0) {
        why = supervisor->preemption(watch_id);
        supervisor->Unwatch(watch_id);
      }
      // The rung observed its preempt token as a plain cancel; rewrite
      // the stop to what the supervisor actually diagnosed. A genuine
      // caller/kill cancel wins over any concurrent preemption.
      if (outcome.stop == StopReason::kCancelled &&
          !(ladder_cancel != nullptr && ladder_cancel->cancelled())) {
        if (why == runtime::PreemptReason::kStall) {
          outcome.stop = StopReason::kStalled;
        } else if (why == runtime::PreemptReason::kMemory) {
          outcome.stop = StopReason::kMemory;
        }
      }

      result.rungs.push_back(RungAttempt{ladder[i].algorithm, outcome.stop,
                                         outcome.stats.states_examined,
                                         rung_millis});
      if (metrics != nullptr) {
        metrics->GetCounter("governor.rungs_attempted").Increment();
        metrics
            ->GetCounter(
                std::string("governor.rung.") +
                std::string(SearchAlgorithmName(ladder[i].algorithm)) +
                ".nanos")
            .Increment(static_cast<uint64_t>(rung_millis * 1e6));
        switch (outcome.stop) {
          case StopReason::kDeadline:
            metrics->GetCounter("governor.deadline_trips").Increment();
            break;
          case StopReason::kCancelled:
            metrics->GetCounter("governor.cancellations").Increment();
            break;
          case StopReason::kMemory:
            metrics->GetCounter("governor.memory_trips").Increment();
            break;
          case StopReason::kStalled:
            metrics->GetCounter("governor.stall_trips").Increment();
            break;
          default:
            break;
        }
      }

      result.stats.states_examined += outcome.stats.states_examined;
      result.stats.states_generated += outcome.stats.states_generated;
      result.stats.iterations += outcome.stats.iterations;
      result.stats.peak_memory_nodes = std::max(
          result.stats.peak_memory_nodes, outcome.stats.peak_memory_nodes);
      states_left -= std::min(states_left, outcome.stats.states_examined);
      if (outcome.best_h >= 0 &&
          (best_partial_h < 0 || outcome.best_h < best_partial_h)) {
        best_partial_h = outcome.best_h;
        best_partial = outcome.best_path;
      }

      if (supervised && outcome.stop == StopReason::kStalled &&
          attempt < options.supervisor.max_rung_retries &&
          !(ladder_cancel != nullptr && ladder_cancel->cancelled())) {
        ++result.rung_retries;
        if (metrics != nullptr) {
          metrics->GetCounter("supervisor.rung_retries").Increment();
        }
        if (trace != nullptr) {
          trace->EmitInstant(obs::TraceCategory::kFault,
                             "supervisor.rung_retry", "rung",
                             static_cast<int64_t>(i), "attempt",
                             static_cast<int64_t>(attempt + 1));
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(backoff_millis));
        backoff_millis *= 2;
        continue;
      }
      break;
    }
    result.stop_reason = outcome.stop;

    if (outcome.found) {
      result.found = true;
      result.stats.solution_cost = outcome.stats.solution_cost;
      found_outcome = std::move(outcome);
      break;
    }
    // kExhausted on a complete algorithm is conclusive, but later rungs
    // are cheap and the sweep may have been cut by the per-rung slice on
    // a previous rung, so the ladder only stops early when the caller
    // cancelled (retrying cannot help) or this was the last rung.
    if (outcome.stop == StopReason::kCancelled) break;
    if (options.limits.cancel != nullptr &&
        options.limits.cancel->cancelled()) {
      result.stop_reason = StopReason::kCancelled;
      break;
    }
  }
  result.report.search_millis = MillisSince(search_start);
  if (sink != nullptr) result.checkpoint_writes = sink->writes();

  if (supervised) {
    result.stall_preemptions = supervisor->stall_preemptions();
    result.memory_reliefs =
        supervisor->memory_reliefs() + supervisor->width_trims();
    result.states_quarantined = quarantine->poisoned();
    if (metrics != nullptr && result.states_quarantined > 0) {
      metrics->GetCounter("supervisor.states_quarantined")
          .Increment(result.states_quarantined);
    }
  }

  result.budget_exhausted = IsResourceStop(result.stop_reason);
  result.partial_mapping = MappingExpression(std::move(best_partial));
  result.partial_h = best_partial_h;
  if (result.found) {
    result.stop_reason = StopReason::kFound;
    result.mapping = MappingExpression(std::move(found_outcome.path));
    if (options.simplify) {
      Clock::time_point simplify_start = Clock::now();
      obs::TraceSpan simplify_span(trace, obs::TraceCategory::kDriver,
                                   "simplify");
      result.mapping = Simplify(result.mapping);
      result.report.simplify_millis = MillisSince(simplify_start);
    }
    Clock::time_point verify_start = Clock::now();
    obs::TraceSpan verify_span(trace, obs::TraceCategory::kVerify, "verify");
    Result<Database> replay = SafeReplay(result.mapping, source_, registry_);
    if (!replay.ok()) {
      result.verified = false;
      result.verify_status = replay.status();
    } else if (!replay->Contains(target_)) {
      result.verified = false;
      result.verify_status = Status::Internal(
          "replayed mapping does not contain the target instance");
    } else {
      result.verified = true;
    }
    verify_span.SetEndArg("ok", result.verified ? 1 : 0);
    result.report.verify_millis = MillisSince(verify_start);
  }

  if (options.metrics != nullptr) {
    // Successor time accumulated in phase.successors.nanos during search.
    result.report.successor_millis =
        static_cast<double>(
            options.metrics->CounterValue("phase.successors.nanos")) /
        1e6;
    // Mirror the driver-level phase timers into the registry so exported
    // reports carry the full breakdown.
    options.metrics->GetCounter("phase.search.nanos")
        .Increment(static_cast<uint64_t>(result.report.search_millis * 1e6));
    options.metrics->GetCounter("phase.verify.nanos")
        .Increment(static_cast<uint64_t>(result.report.verify_millis * 1e6));
    options.metrics->GetCounter("phase.simplify.nanos")
        .Increment(
            static_cast<uint64_t>(result.report.simplify_millis * 1e6));
  }

  if (trace != nullptr) {
    trace->EmitEnd(obs::TraceCategory::kDriver, "discover", "found",
                   result.found ? 1 : 0, "rungs_run",
                   static_cast<int64_t>(result.rungs.size()));
    // Flight recorder: when the run ended badly — a resource/cancel stop
    // (including the checkpoint-kill seam), a mapping that failed
    // verification, or a traced fault-injection fire — dump the retained
    // last events so a post-mortem can see what the run was doing.
    if (!options.flight_recorder_path.empty()) {
      const bool bad_stop =
          !result.found && result.stop_reason != StopReason::kExhausted;
      const bool unverified = result.found && !result.verified;
      const bool faulted = trace->fault_count() > trace_faults_before;
      if (bad_stop || unverified || faulted) {
        trace->DumpFlightRecord(options.flight_recorder_path);
      }
    }
    if (metrics != nullptr) {
      metrics->GetCounter("trace.events_recorded")
          .Increment(trace->events_recorded() - trace_recorded_before);
      metrics->GetCounter("trace.events_dropped")
          .Increment(trace->events_dropped() - trace_dropped_before);
    }
  }
  return result;
}

Result<TupeloResult> DiscoverMapping(
    const Database& source, const Database& target,
    const TupeloOptions& options, const FunctionRegistry* registry,
    std::vector<SemanticCorrespondence> correspondences) {
  Tupelo tupelo(source, target);
  tupelo.set_registry(registry);
  for (SemanticCorrespondence& c : correspondences) {
    tupelo.AddCorrespondence(std::move(c));
  }
  return tupelo.Discover(options);
}

}  // namespace tupelo
