#include "core/critical_instance.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

namespace tupelo {
namespace {

std::set<std::string> TupleAtoms(const Tuple& t) {
  std::set<std::string> atoms;
  for (const Value& v : t.values()) {
    if (!v.is_null()) atoms.insert(v.atom());
  }
  return atoms;
}

size_t SharedAtoms(const std::set<std::string>& a,
                   const std::set<std::string>& b) {
  size_t n = 0;
  for (const std::string& atom : a) {
    if (b.contains(atom)) ++n;
  }
  return n;
}

}  // namespace

Result<CriticalInstancePair> ExtractCriticalInstances(
    const Database& source_full, const Database& target_full,
    const CriticalInstanceOptions& options) {
  if (source_full.empty() || target_full.empty()) {
    return Status::InvalidArgument(
        "critical-instance extraction needs non-empty source and target");
  }

  // Pre-compute atom sets for every source tuple.
  struct SourceTuple {
    const Relation* relation;
    size_t index;
    std::set<std::string> atoms;
  };
  std::vector<SourceTuple> source_tuples;
  for (const auto& [name, rel] : source_full.relations()) {
    for (size_t i = 0; i < rel->size(); ++i) {
      source_tuples.push_back(
          SourceTuple{rel.get(), i, TupleAtoms(rel->tuples()[i])});
    }
  }

  // Phase 1 — select target tuples: per target relation, keep the tuples
  // whose best source link is strongest (they most evidently describe a
  // shared entity).
  struct Link {
    const Relation* target_relation;
    size_t target_index;
    std::set<std::string> atoms;
    size_t score;
  };
  std::vector<Link> selected;
  size_t total_score = 0;

  for (const auto& [tname, trel] : target_full.relations()) {
    std::vector<Link> candidates;
    for (size_t ti = 0; ti < trel->size(); ++ti) {
      std::set<std::string> tatoms = TupleAtoms(trel->tuples()[ti]);
      size_t best_score = 0;
      for (const SourceTuple& st : source_tuples) {
        best_score = std::max(best_score, SharedAtoms(tatoms, st.atoms));
      }
      if (best_score >= options.min_shared_atoms) {
        candidates.push_back(
            Link{trel.get(), ti, std::move(tatoms), best_score});
      }
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Link& a, const Link& b) {
                       return a.score > b.score;
                     });
    if (candidates.size() > options.max_tuples_per_relation) {
      candidates.resize(options.max_tuples_per_relation);
    }
    for (Link& link : candidates) {
      total_score += link.score;
      selected.push_back(std::move(link));
    }
  }
  if (selected.empty()) {
    return Status::NotFound(
        "no linked tuples: the instances share no atom values");
  }

  // Phase 2 — select source tuples: keep every source tuple that overlaps
  // any selected target tuple. One target tuple may aggregate several
  // source rows (restructuring mappings fold many rows into one), so
  // source selection must not be capped at one row per link.
  std::map<std::string, std::set<size_t>> keep_target;
  std::map<std::string, std::set<size_t>> keep_source;
  for (const Link& link : selected) {
    keep_target[link.target_relation->name()].insert(link.target_index);
  }
  for (const SourceTuple& st : source_tuples) {
    for (const Link& link : selected) {
      if (SharedAtoms(link.atoms, st.atoms) >= options.min_shared_atoms) {
        keep_source[st.relation->name()].insert(st.index);
        break;
      }
    }
  }

  CriticalInstancePair out;
  out.overlap_score = total_score;

  for (const auto& [name, rel] : target_full.relations()) {
    TUPELO_ASSIGN_OR_RETURN(Relation trimmed,
                            Relation::Create(name, rel->attributes()));
    auto it = keep_target.find(name);
    if (it != keep_target.end()) {
      for (size_t idx : it->second) {
        TUPELO_RETURN_IF_ERROR(trimmed.AddTuple(rel->tuples()[idx]));
      }
    }
    TUPELO_RETURN_IF_ERROR(out.target.AddRelation(std::move(trimmed)));
  }
  for (const auto& [name, rel] : source_full.relations()) {
    TUPELO_ASSIGN_OR_RETURN(Relation trimmed,
                            Relation::Create(name, rel->attributes()));
    auto it = keep_source.find(name);
    if (it != keep_source.end()) {
      for (size_t idx : it->second) {
        TUPELO_RETURN_IF_ERROR(trimmed.AddTuple(rel->tuples()[idx]));
      }
    } else if (!rel->empty()) {
      // Unlinked source relation: keep one tuple so its schema (and a data
      // sample) stays visible to the search.
      TUPELO_RETURN_IF_ERROR(trimmed.AddTuple(rel->tuples()[0]));
    }
    TUPELO_RETURN_IF_ERROR(out.source.AddRelation(std::move(trimmed)));
  }
  return out;
}

}  // namespace tupelo
