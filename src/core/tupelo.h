#ifndef TUPELO_CORE_TUPELO_H_
#define TUPELO_CORE_TUPELO_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/mapping_problem.h"
#include "fira/expression.h"
#include "fira/function_registry.h"
#include "heuristics/heuristic_factory.h"
#include "relational/database.h"
#include "runtime/supervisor.h"
#include "search/search_types.h"

namespace tupelo {

class ThreadPool;

// Anytime-progress sample reported while a checkpointing run searches.
// Delivered from inside the search thread at checkpoint boundaries (see
// TupeloOptions::on_progress); handlers must be fast and thread-safe with
// respect to their own state — the search blocks until they return.
struct DiscoverProgress {
  int rung_index = 0;
  uint64_t states_examined = 0;
  // Best partial mapping so far: the operator path reaching the
  // heuristically closest state, and that state's remaining heuristic
  // distance (-1 before anything was examined).
  const std::vector<Op>* best_path = nullptr;
  int best_h = -1;
};

// One rung of the graceful-degradation ladder: which algorithm to try and
// how much of the *remaining* deadline/state budget it may consume before
// Discover falls through to the next rung. The last rung always receives
// everything left, whatever its share says.
struct DegradationRung {
  SearchAlgorithm algorithm = SearchAlgorithm::kBeam;
  double budget_share = 1.0;  // clamped to (0, 1]
};

// The default ladder: a complete, optimal search first, then the cheap
// incomplete beam sweep as the degraded best-effort answer.
std::vector<DegradationRung> DefaultLadder();

// End-to-end configuration for one mapping-discovery run.
struct TupeloOptions {
  SearchAlgorithm algorithm = SearchAlgorithm::kRbfs;
  HeuristicKind heuristic = HeuristicKind::kH1;
  // Scaling constant for the scaled heuristics; ≤ 0 selects the paper's
  // per-algorithm default (heuristics/heuristic_factory.h).
  double scale_k = 0.0;
  // Resource budget shared by the whole Discover call. deadline_millis,
  // max_memory_nodes and cancel govern every rung; with a ladder the
  // deadline and state budgets are split across rungs by budget_share.
  SearchLimits limits;
  SuccessorConfig successors;
  // Frontier width for SearchAlgorithm::kBeam (ignored otherwise). Beam
  // search is incomplete: found=false does not prove no mapping exists.
  size_t beam_width = 8;
  // Graceful degradation: when non-empty, Discover runs these rungs in
  // order instead of `algorithm`, falling through whenever a rung stops on
  // a resource limit without finding a mapping (see DefaultLadder()).
  // Per-rung attempts are recorded in TupeloResult::rungs and the
  // governor.* metrics.
  std::vector<DegradationRung> ladder;
  // Worker threads for the parallel search runtime. With threads > 1,
  // Discover owns a ThreadPool for the call and beam rungs run as
  // ParallelBeamSearch over it (bit-identical results to threads == 1;
  // see search/parallel_beam.h). 0 is treated as 1.
  size_t threads = 1;
  // Externally owned ThreadPool shared across Discover calls (nullable;
  // must outlive the call). When set it overrides `threads`: beam rungs
  // fan out over this pool and Discover does not create one of its own.
  // Because the pool is shared — the multi-tenant server runs every
  // tenant's jobs over one pool — Discover leaves its trace hook and task
  // heartbeat alone; pool-level instrumentation belongs to the pool's
  // owner, and supervised stall detection falls back to the search
  // thread's own heartbeats.
  ThreadPool* pool = nullptr;
  // Run the ladder as a concurrent portfolio instead of a fallback
  // sequence: every rung starts at once on its own thread with the full
  // budget, the first rung whose mapping verifies wins, and the rest are
  // cancelled through per-rung tokens parented on limits.cancel. Per-rung
  // budget_share is ignored (there is no fallback order to ration).
  // Requires a ladder with at least two rungs to change anything.
  bool portfolio = false;
  // Run the peephole optimizer (fira/optimizer.h) on the discovered
  // expression; the raw search path is replaced by the simplified,
  // re-verified equivalent.
  bool simplify = false;
  // Durable checkpoint/resume (see docs/ROBUSTNESS.md, "Checkpoint &
  // resume contract"). With a non-empty checkpoint_path, sequential runs
  // write an atomic, checksummed snapshot of the ladder position, the
  // remaining budget, the best partial mapping, and the active rung's
  // resumable search core (core/checkpoint.h) roughly every
  // checkpoint_interval_states examined states. Not supported together
  // with the concurrent portfolio (FailedPrecondition).
  std::string checkpoint_path;
  uint64_t checkpoint_interval_states = 1024;
  // Load checkpoint_path before searching and restart at its rung +
  // frontier. A missing file is a fresh start; a corrupt file, a wrong
  // format version, or a checkpoint from a different workload is a typed
  // error. Requires checkpoint_path.
  bool resume = false;
  // Anytime-progress stream (requires checkpoint_path: progress samples
  // ride the checkpoint cadence, so every sample is also durable). Called
  // from the search thread right after each successful checkpoint write —
  // rung entries and every ~checkpoint_interval_states examined states —
  // with the best partial mapping so far. The serving layer uses this to
  // stream improving partial mappings to clients while a job runs.
  std::function<void(const DiscoverProgress&)> on_progress;
  // Test seam for crash simulation: when > 0, the run cancels itself
  // (StopReason::kCancelled) right after the Nth successful checkpoint
  // write — a deterministic process death at a checkpoint boundary.
  uint64_t checkpoint_kill_after = 0;
  // Self-healing supervision (runtime/supervisor.h). With
  // supervisor.enabled, sequential-ladder runs start a watchdog thread:
  // each rung heartbeats into it, a hung rung is preempted within
  // supervisor.stall_window_millis (StopReason::kStalled) and retried
  // with exponential backoff up to supervisor.max_rung_retries times
  // before the ladder advances; memory pressure against
  // limits.max_memory_nodes degrades in stages (trim the problem's
  // caches, then halve the beam width, then preempt to the next rung)
  // instead of tripping a hard kMemory; and every rung runs with a
  // poison-state quarantine, so an exception escaping Expand/ApplyOp
  // quarantines the offending state instead of aborting the run. Ignored
  // by the concurrent portfolio.
  runtime::SupervisorConfig supervisor;
  // Optional metric registry (nullable; default off). When set, the run
  // populates search.*, heuristic.*, executor.*, phase.* and governor.*
  // instruments — see docs/OBSERVABILITY.md for the catalog. Must outlive
  // the call.
  obs::MetricRegistry* metrics = nullptr;
  // Optional trace session (nullable; default off; same convention as
  // metrics). When set, the run emits spans for the rung ladder, every
  // search iteration/level, successor generation, heuristic evaluation,
  // per-operator execution, pool tasks, verification, and checkpoint
  // writes — export with TraceSession::WriteChromeJson and open in
  // Perfetto. With metrics also set, trace.events_recorded/dropped
  // counters mirror the session's delta for this call. Must outlive the
  // call.
  obs::TraceSession* trace = nullptr;
  // Flight recorder (requires `trace`): when non-empty and the run ends
  // badly — a resource/cancel stop (including the checkpoint-kill seam),
  // a found-but-unverified mapping, or any traced fault-injection fire —
  // the session's retained last events are dumped here in the binary
  // flight-record format (obs/trace.h), capturing what the run was doing
  // when it died. tools/trace_report reads the dump.
  std::string flight_recorder_path;
};

// Wall-clock breakdown of one Discover call, always populated (phase
// timing does not require a metric registry). Phases overlap: successor
// generation and heuristic evaluation happen inside the search phase.
struct RunReport {
  double search_millis = 0.0;     // the search-algorithm call itself
  double successor_millis = 0.0;  // Expand time inside search (needs
                                  // options.metrics; 0 otherwise)
  double verify_millis = 0.0;     // replaying the mapping on the source
  double simplify_millis = 0.0;   // peephole optimizer (0 unless enabled)

  // One-line human-readable summary.
  std::string ToString() const;
};

// One attempted rung of a Discover call (a single rung for plain runs,
// one entry per ladder rung tried for degraded runs).
struct RungAttempt {
  SearchAlgorithm algorithm = SearchAlgorithm::kRbfs;
  StopReason stop = StopReason::kExhausted;
  uint64_t states_examined = 0;
  double millis = 0.0;
};

// The outcome of a discovery run.
struct TupeloResult {
  // A mapping was found within the budget.
  bool found = false;
  // Why discovery stopped. kFound when found; otherwise the final rung's
  // stop reason (kExhausted is conclusive, everything else means the
  // resource governor cut the run short).
  StopReason stop_reason = StopReason::kExhausted;
  // Compatibility mirror of IsResourceStop(stop_reason).
  bool budget_exhausted = false;
  // The discovered executable mapping expression (empty unless found).
  MappingExpression mapping;
  // Anytime result: the prefix expression reaching the heuristically
  // closest state any rung examined, and that state's remaining heuristic
  // distance (0 when found, -1 if nothing was examined). On a resource
  // stop this is the best-effort partial mapping.
  MappingExpression partial_mapping;
  int partial_h = -1;
  // True if re-executing `mapping` on the source instance produced a state
  // containing the target instance (sanity re-check of the search result).
  bool verified = false;
  // Why verification failed: the replay error, or an Internal status when
  // the replay succeeded but its result does not contain the target. OK
  // when verified (or when nothing was found to verify).
  Status verify_status;
  // Aggregate over all rungs (states/generated/iterations summed, peak
  // memory maxed; solution_cost from the successful rung).
  SearchStats stats;
  // Per-rung attempts, in execution order.
  std::vector<RungAttempt> rungs;
  // Phase timing for this run (see RunReport).
  RunReport report;
  // Checkpoint/resume bookkeeping: whether this run restarted from a
  // checkpoint, how many ladder rungs the resume skipped, and how many
  // checkpoint files the run wrote.
  bool resumed = false;
  int resume_rungs_skipped = 0;
  uint64_t checkpoint_writes = 0;
  // Supervision bookkeeping (all zero unless options.supervisor.enabled):
  // hung rungs the watchdog preempted, soft memory-relief interventions
  // (cache trims; width trims count here too), stall retries the ladder
  // granted, and poison states quarantined during the run. Mirrored into
  // the supervisor.* metrics.
  uint64_t stall_preemptions = 0;
  uint64_t memory_reliefs = 0;
  uint64_t rung_retries = 0;
  uint64_t states_quarantined = 0;
};

// TUPELO: example-driven discovery of data-mapping expressions.
//
// Usage:
//   Tupelo tupelo(source_instance, target_instance);
//   tupelo.set_registry(&registry);                    // if λ needed
//   tupelo.AddCorrespondence({"add", {"Cost", "AgentFee"}, "TotalCost"});
//   Result<TupeloResult> r = tupelo.Discover(options);
//
// Per the Rosetta Stone principle (§2.2), `source` and `target` must be
// critical instances illustrating the same information under both schemas.
class Tupelo {
 public:
  Tupelo(Database source, Database target)
      : source_(std::move(source)), target_(std::move(target)) {}

  // `registry` must outlive the Tupelo object; required iff
  // correspondences are supplied.
  void set_registry(const FunctionRegistry* registry) { registry_ = registry; }

  void AddCorrespondence(SemanticCorrespondence c) {
    correspondences_.push_back(std::move(c));
  }
  const std::vector<SemanticCorrespondence>& correspondences() const {
    return correspondences_;
  }

  const Database& source() const { return source_; }
  const Database& target() const { return target_; }

  // Runs heuristic search for a mapping expression. Fails on configuration
  // errors (e.g. correspondences without a registry, or naming unknown
  // functions); an unsuccessful search is a successful call with
  // found=false.
  Result<TupeloResult> Discover(const TupeloOptions& options = {}) const;

 private:
  Database source_;
  Database target_;
  const FunctionRegistry* registry_ = nullptr;
  std::vector<SemanticCorrespondence> correspondences_;
};

// One-call convenience wrapper.
Result<TupeloResult> DiscoverMapping(
    const Database& source, const Database& target,
    const TupeloOptions& options = {},
    const FunctionRegistry* registry = nullptr,
    std::vector<SemanticCorrespondence> correspondences = {});

}  // namespace tupelo

#endif  // TUPELO_CORE_TUPELO_H_
