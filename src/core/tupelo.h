#ifndef TUPELO_CORE_TUPELO_H_
#define TUPELO_CORE_TUPELO_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/mapping_problem.h"
#include "fira/expression.h"
#include "fira/function_registry.h"
#include "heuristics/heuristic_factory.h"
#include "relational/database.h"
#include "search/search_types.h"

namespace tupelo {

// End-to-end configuration for one mapping-discovery run.
struct TupeloOptions {
  SearchAlgorithm algorithm = SearchAlgorithm::kRbfs;
  HeuristicKind heuristic = HeuristicKind::kH1;
  // Scaling constant for the scaled heuristics; ≤ 0 selects the paper's
  // per-algorithm default (heuristics/heuristic_factory.h).
  double scale_k = 0.0;
  SearchLimits limits;
  SuccessorConfig successors;
  // Frontier width for SearchAlgorithm::kBeam (ignored otherwise). Beam
  // search is incomplete: found=false does not prove no mapping exists.
  size_t beam_width = 8;
  // Run the peephole optimizer (fira/optimizer.h) on the discovered
  // expression; the raw search path is replaced by the simplified,
  // re-verified equivalent.
  bool simplify = false;
  // Optional metric registry (nullable; default off). When set, the run
  // populates search.*, heuristic.*, executor.* and phase.* instruments —
  // see docs/OBSERVABILITY.md for the catalog. Must outlive the call.
  obs::MetricRegistry* metrics = nullptr;
};

// Wall-clock breakdown of one Discover call, always populated (phase
// timing does not require a metric registry). Phases overlap: successor
// generation and heuristic evaluation happen inside the search phase.
struct RunReport {
  double search_millis = 0.0;     // the search-algorithm call itself
  double successor_millis = 0.0;  // Expand time inside search (needs
                                  // options.metrics; 0 otherwise)
  double verify_millis = 0.0;     // replaying the mapping on the source
  double simplify_millis = 0.0;   // peephole optimizer (0 unless enabled)

  // One-line human-readable summary.
  std::string ToString() const;
};

// The outcome of a discovery run.
struct TupeloResult {
  // A mapping was found within the budget.
  bool found = false;
  // The search stopped on a SearchLimits bound.
  bool budget_exhausted = false;
  // The discovered executable mapping expression (empty unless found).
  MappingExpression mapping;
  // True if re-executing `mapping` on the source instance produced a state
  // containing the target instance (sanity re-check of the search result).
  bool verified = false;
  SearchStats stats;
  // Phase timing for this run (see RunReport).
  RunReport report;
};

// TUPELO: example-driven discovery of data-mapping expressions.
//
// Usage:
//   Tupelo tupelo(source_instance, target_instance);
//   tupelo.set_registry(&registry);                    // if λ needed
//   tupelo.AddCorrespondence({"add", {"Cost", "AgentFee"}, "TotalCost"});
//   Result<TupeloResult> r = tupelo.Discover(options);
//
// Per the Rosetta Stone principle (§2.2), `source` and `target` must be
// critical instances illustrating the same information under both schemas.
class Tupelo {
 public:
  Tupelo(Database source, Database target)
      : source_(std::move(source)), target_(std::move(target)) {}

  // `registry` must outlive the Tupelo object; required iff
  // correspondences are supplied.
  void set_registry(const FunctionRegistry* registry) { registry_ = registry; }

  void AddCorrespondence(SemanticCorrespondence c) {
    correspondences_.push_back(std::move(c));
  }
  const std::vector<SemanticCorrespondence>& correspondences() const {
    return correspondences_;
  }

  const Database& source() const { return source_; }
  const Database& target() const { return target_; }

  // Runs heuristic search for a mapping expression. Fails on configuration
  // errors (e.g. correspondences without a registry, or naming unknown
  // functions); an unsuccessful search is a successful call with
  // found=false.
  Result<TupeloResult> Discover(const TupeloOptions& options = {}) const;

 private:
  Database source_;
  Database target_;
  const FunctionRegistry* registry_ = nullptr;
  std::vector<SemanticCorrespondence> correspondences_;
};

// One-call convenience wrapper.
Result<TupeloResult> DiscoverMapping(
    const Database& source, const Database& target,
    const TupeloOptions& options = {},
    const FunctionRegistry* registry = nullptr,
    std::vector<SemanticCorrespondence> correspondences = {});

}  // namespace tupelo

#endif  // TUPELO_CORE_TUPELO_H_
