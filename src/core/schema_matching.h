#ifndef TUPELO_CORE_SCHEMA_MATCHING_H_
#define TUPELO_CORE_SCHEMA_MATCHING_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/tupelo.h"
#include "relational/database.h"

namespace tupelo {

// Schema matching is the special case of data mapping where the discovered
// expression consists of renamings (§2.1: "L has simple schema matching as
// a special case"). MatchSchemas runs TUPELO and reads the element
// correspondences off the rename operators of the discovered expression.
struct SchemaMatch {
  // (source attribute, target attribute) pairs, from ρatt steps, composed
  // transitively if an attribute is renamed more than once.
  std::vector<std::pair<std::string, std::string>> attribute_matches;
  // (source relation, target relation) pairs, from ρrel steps.
  std::vector<std::pair<std::string, std::string>> relation_matches;

  bool found = false;
  // Why the underlying discovery stopped (see search/search_types.h);
  // budget_exhausted mirrors IsResourceStop(stop_reason).
  StopReason stop_reason = StopReason::kExhausted;
  bool budget_exhausted = false;
  MappingExpression mapping;
  SearchStats stats;
};

// Discovers a mapping between the critical instances and extracts the
// schema-element correspondences. Non-rename operators in the expression
// are legal (the mapping may need restructuring) and simply do not
// contribute matches.
Result<SchemaMatch> MatchSchemas(const Database& source,
                                 const Database& target,
                                 const TupeloOptions& options = {});

}  // namespace tupelo

#endif  // TUPELO_CORE_SCHEMA_MATCHING_H_
