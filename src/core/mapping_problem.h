#ifndef TUPELO_CORE_MAPPING_PROBLEM_H_
#define TUPELO_CORE_MAPPING_PROBLEM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "fira/compile.h"
#include "fira/executor.h"
#include "fira/function_registry.h"
#include "fira/operators.h"
#include "heuristics/heuristic.h"
#include "heuristics/set_based.h"
#include "heuristics/term_vector.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/database.h"

namespace tupelo {

// A user-articulated complex semantic correspondence (§4): "function
// `function` applied to the source attributes `inputs` yields the target
// attribute `output`". TUPELO assumes these have been discovered/indicated
// up front (e.g. via a visual interface) and searches for where in the
// mapping expression to apply them.
struct SemanticCorrespondence {
  std::string function;
  std::vector<std::string> inputs;
  std::string output;

  friend bool operator==(const SemanticCorrespondence&,
                         const SemanticCorrespondence&) = default;
};

// Successor-generation switches. With `prune` on (the default), the
// "obviously inapplicable transformations" rules of §2.3 restrict operator
// parameters to those that could still contribute to reaching the target;
// with it off, operators are instantiated for every syntactically valid
// parameter choice drawn from the state and target symbols (the ablation
// baseline).
struct SuccessorConfig {
  bool prune = true;
  // The two structurally explosive operators can be disabled entirely for
  // workloads known not to need them.
  bool enable_dereference = true;
  bool enable_product = true;
  // Capacity (in states, LRU-evicted) of the transposition cache that
  // memoizes Expand results. IDA* re-visits every shallow state once per
  // iteration and RBFS re-descends abandoned branches, so the same states
  // are expanded many times over; the cache turns those re-expansions into
  // a lookup. 0 disables it. Cached successor states are reported via
  // AuxMemoryNodes() and count toward SearchLimits::max_memory_nodes.
  size_t expand_cache_capacity = 256;
  // Execute Expand's operator applications through the compiled executor
  // (fira/compile.h) instead of the scalar interpreter. Outcome-identical
  // by the differential-harness contract — same successors, same errors,
  // same fault-injector accounting — so this is purely an execution
  // backend switch. Defaults to the TUPELO_COMPILED_EXPAND environment
  // variable (see DefaultCompiledExpand) so CI can flip whole suites.
  bool compiled_expand = DefaultCompiledExpand();
};

// The TUPELO search problem (§2.3): states are database instances, actions
// are L operators, the initial state is the source critical instance, and
// a state is a goal when it contains the target critical instance.
// Satisfies the search Problem duck type of search/search_types.h.
//
// Thread safety: the const query surface (IsGoal/Expand/EstimateCost/
// StateKey/StateKey128/AuxMemoryNodes) may be called from several threads
// at once — the parallel beam fans Expand+EstimateCost out across a pool,
// and concurrent portfolio rungs each drive their own problem. The
// heuristic itself is stateless; the estimate cache is sharded by key and
// the expand transposition cache sits under one mutex (successor
// generation happens outside it). The problem owns mutexes, so it is
// neither copyable nor movable.
class MappingProblem {
 public:
  using State = Database;
  using Action = Op;
  struct SuccessorT {
    Op action;
    Database state;
  };

  // `registry` may be null when `correspondences` is empty; it must outlive
  // the problem. `heuristic` must be built around `target`.
  MappingProblem(Database source, Database target,
                 std::unique_ptr<Heuristic> heuristic,
                 const FunctionRegistry* registry = nullptr,
                 std::vector<SemanticCorrespondence> correspondences = {},
                 SuccessorConfig config = SuccessorConfig());

  MappingProblem(const MappingProblem&) = delete;
  MappingProblem& operator=(const MappingProblem&) = delete;

  // Attaches a metric registry (nullable; default off). Resolves the
  // per-heuristic instruments heuristic.<name>.{evals,nanos} and
  // heuristic.cache_hits once, and threads the registry into ApplyOp so
  // the executor's per-operator instruments populate during search.
  // Successor-generation time accumulates in phase.successors.nanos.
  void set_metrics(obs::MetricRegistry* metrics);

  // Attaches a trace session (nullable; default off; same convention as
  // set_metrics). Expand emits one "expand" span per cache miss (with the
  // successor count on the end event), heuristic evaluation one
  // "heuristic" span per estimate-cache miss, and the session threads
  // into ApplyOp for per-operator spans. Must outlive the problem's use.
  void set_trace(obs::TraceSession* trace) { trace_ = trace; }
  obs::TraceSession* trace() const { return trace_; }

  const Database& initial_state() const { return source_; }
  const Database& target() const { return target_; }

  bool IsGoal(const Database& state) const { return state.Contains(target_); }

  // Applies every candidate operator to `state`; failures and duplicate
  // resulting states are dropped. Deterministic order. Results are
  // memoized in a bounded LRU transposition cache keyed by the state's
  // 128-bit fingerprint (see SuccessorConfig::expand_cache_capacity).
  std::vector<SuccessorT> Expand(const Database& state) const;

  // Heuristic estimates are cached by state fingerprint: IDA* re-visits
  // shallow states once per iteration and RBFS re-descends abandoned
  // branches, so the same states are estimated many times over a search.
  // The cache trades memory (bounded by distinct states visited) for the
  // dominant per-state cost of the string/vector heuristics. Keys are the
  // full 128-bit fingerprint: with a 64-bit key, two distinct states
  // colliding would silently serve one another's estimates.
  //
  // The cache is sharded by key so parallel beam workers estimating
  // different states rarely contend; the heuristic runs outside the lock
  // (two threads may race to compute the same state's estimate — both get
  // the same value, and the second emplace is a no-op).
  int EstimateCost(const Database& state) const {
    Fp128 key = state.Fingerprint128();
    EstimateShard& shard = estimate_shards_[ShardIndex(key)];
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.cache.find(key);
      if (it != shard.cache.end()) {
        if (heuristic_cache_hits_ != nullptr) {
          heuristic_cache_hits_->Increment();
        }
        return it->second;
      }
    }
    int estimate;
    {
      obs::ScopedTimer timer(heuristic_nanos_);
      obs::TraceSpan span(trace_, obs::TraceCategory::kHeuristic,
                          "heuristic");
      const TnfEncodeStats tnf_before = ThreadTnfEncodeStats();
      estimate = heuristic_->Estimate(state);
      RecordTnfDelta(tnf_before);
      span.SetEndArg("h", estimate);
    }
    if (heuristic_evals_ != nullptr) heuristic_evals_->Increment();
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.cache.emplace(key, estimate);
    }
    return estimate;
  }

  // Batched EstimateCost: out[i] = EstimateCost(*states[i]), with one
  // pass of shard probes, one heuristic call over the distinct misses
  // (Heuristic::EstimateBatch, outside every shard lock), and one pass
  // of inserts. Counter semantics mirror the sequential path exactly:
  // each distinct uncached state counts one eval, and cached states —
  // including repeats within the batch, which sequential calls would
  // have found in the cache — count as cache hits. Values are the same
  // as N sequential calls (the heuristic is deterministic), so routing a
  // frontier through here cannot change a search outcome.
  void EstimateCostBatch(std::span<const Database* const> states,
                         std::span<int> out) const;

  uint64_t StateKey(const Database& state) const {
    return state.Fingerprint();
  }

  // Full 128-bit state identity; the search layer's dedup/cycle sets key
  // on this (via StateFingerprint) so a 64-bit collision cannot alias two
  // distinct database instances.
  Fp128 StateKey128(const Database& state) const {
    return state.Fingerprint128();
  }

  // States held by the problem's own caches, for the search layer's memory
  // proxy: cached Expand successors are full states and must count toward
  // SearchLimits::max_memory_nodes like open/closed-list nodes do.
  size_t AuxMemoryNodes() const {
    return expand_cache_states_.load(std::memory_order_relaxed);
  }

  // The candidate operators Expand would try on `state`, before execution
  // and duplicate-state filtering. Exposed for tests and ablations.
  std::vector<Op> CandidateOps(const Database& state) const;

  // Drops the Expand transposition cache and every estimate-cache shard —
  // the supervisor's soft memory-relief lever (runtime/supervisor.h).
  // Thread-safe; may run concurrently with a search, which simply starts
  // repopulating the caches. Counts into expand.cache_trims when metrics
  // are attached.
  void TrimCaches() const;

 private:
  struct ExpandCacheEntry {
    Fp128 key;
    std::vector<SuccessorT> successors;
  };
  using ExpandCacheList = std::list<ExpandCacheEntry>;

  // Estimate-cache shard count; a power of two so ShardIndex is a mask.
  // Eight shards keeps contention negligible for the pool sizes the
  // parallel beam runs (worker counts in the single digits).
  static constexpr size_t kEstimateShards = 8;
  struct EstimateShard {
    std::mutex mu;
    std::unordered_map<Fp128, int, Fp128Hash> cache;
  };
  static size_t ShardIndex(const Fp128& key) {
    return static_cast<size_t>(key.hi) & (kEstimateShards - 1);
  }

  // Folds the thread-local TNF encoding activity since `before` into the
  // state.tnf_* counters (no-op when metrics are off). Valid because the
  // heuristic runs on the calling thread.
  void RecordTnfDelta(const TnfEncodeStats& before) const {
    if (tnf_bytes_ == nullptr) return;
    const TnfEncodeStats after = ThreadTnfEncodeStats();
    tnf_bytes_->Increment(after.bytes - before.bytes);
    tnf_encodes_->Increment(after.encodes - before.encodes);
  }

  Database source_;
  Database target_;
  SymbolSets target_symbols_;
  std::unique_ptr<Heuristic> heuristic_;
  const FunctionRegistry* registry_;
  std::vector<SemanticCorrespondence> correspondences_;
  SuccessorConfig config_;
  mutable std::array<EstimateShard, kEstimateShards> estimate_shards_;

  // Transposition cache: most-recently-used at the front; index maps a
  // state fingerprint to its list node. expand_cache_states_ tracks the
  // total successor states stored (the unit of the memory proxy); it is
  // atomic so AuxMemoryNodes can be read without taking expand_mu_.
  // Lookups splice (mutate LRU order), so the whole structure sits under
  // one mutex; successor generation runs outside it.
  mutable std::mutex expand_mu_;
  mutable ExpandCacheList expand_cache_;
  mutable std::unordered_map<Fp128, ExpandCacheList::iterator, Fp128Hash>
      expand_cache_index_;
  mutable std::atomic<size_t> expand_cache_states_{0};

  // Observability (all null when metrics are off).
  obs::MetricRegistry* metrics_ = nullptr;
  obs::TraceSession* trace_ = nullptr;
  obs::Counter* heuristic_evals_ = nullptr;
  obs::Counter* heuristic_nanos_ = nullptr;
  obs::Counter* heuristic_cache_hits_ = nullptr;
  obs::Counter* successor_nanos_ = nullptr;
  obs::Counter* expand_cache_hits_ = nullptr;
  obs::Counter* expand_cache_misses_ = nullptr;
  obs::Counter* expand_cache_evictions_ = nullptr;
  obs::Counter* cow_copies_ = nullptr;
  obs::Counter* relations_shared_ = nullptr;
  obs::Counter* tnf_bytes_ = nullptr;
  obs::Counter* tnf_encodes_ = nullptr;
};

}  // namespace tupelo

#endif  // TUPELO_CORE_MAPPING_PROBLEM_H_
