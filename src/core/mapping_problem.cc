#include "core/mapping_problem.h"

#include <unordered_set>
#include <utility>

namespace tupelo {
namespace {

// True if any distinct non-null value of column `idx` satisfies `pred`.
template <typename Pred>
bool AnyColumnValue(const Relation& rel, size_t idx, Pred pred) {
  for (const Tuple& t : rel.tuples()) {
    if (!t[idx].is_null() && pred(t[idx].atom())) return true;
  }
  return false;
}

bool RelationHasNull(const Relation& rel) {
  for (const Tuple& t : rel.tuples()) {
    for (const Value& v : t.values()) {
      if (v.is_null()) return true;
    }
  }
  return false;
}

}  // namespace

MappingProblem::MappingProblem(
    Database source, Database target, std::unique_ptr<Heuristic> heuristic,
    const FunctionRegistry* registry,
    std::vector<SemanticCorrespondence> correspondences,
    SuccessorConfig config)
    : source_(std::move(source)),
      target_(std::move(target)),
      target_symbols_(SymbolSets::FromDatabase(target_)),
      heuristic_(std::move(heuristic)),
      registry_(registry),
      correspondences_(std::move(correspondences)),
      config_(config) {
  // Prewarm the lazy fingerprint caches while the problem is still
  // single-threaded: initial_state() hands out a reference to source_, so
  // several search threads may fingerprint the same Database object, and
  // Database's cache (unlike Relation's) is not atomic.
  source_.Fingerprint128();
  target_.Fingerprint128();
}

void MappingProblem::set_metrics(obs::MetricRegistry* metrics) {
  metrics_ = metrics;
  if (metrics == nullptr) {
    heuristic_evals_ = nullptr;
    heuristic_nanos_ = nullptr;
    heuristic_cache_hits_ = nullptr;
    successor_nanos_ = nullptr;
    expand_cache_hits_ = nullptr;
    expand_cache_misses_ = nullptr;
    expand_cache_evictions_ = nullptr;
    cow_copies_ = nullptr;
    relations_shared_ = nullptr;
    tnf_bytes_ = nullptr;
    tnf_encodes_ = nullptr;
    return;
  }
  std::string name(heuristic_->name());
  heuristic_evals_ = &metrics->GetCounter("heuristic." + name + ".evals");
  heuristic_nanos_ = &metrics->GetCounter("heuristic." + name + ".nanos");
  heuristic_cache_hits_ = &metrics->GetCounter("heuristic.cache_hits");
  successor_nanos_ = &metrics->GetCounter("phase.successors.nanos");
  expand_cache_hits_ = &metrics->GetCounter("expand.cache_hits");
  expand_cache_misses_ = &metrics->GetCounter("expand.cache_misses");
  expand_cache_evictions_ = &metrics->GetCounter("expand.cache_evictions");
  cow_copies_ = &metrics->GetCounter("state.cow_copies");
  relations_shared_ = &metrics->GetCounter("state.relations_shared");
  tnf_bytes_ = &metrics->GetCounter("state.tnf_bytes");
  tnf_encodes_ = &metrics->GetCounter("state.tnf_encodes");
  heuristic_->BindMetrics(metrics);
}

void MappingProblem::EstimateCostBatch(
    std::span<const Database* const> states, std::span<int> out) const {
  const size_t n = states.size();
  std::vector<Fp128> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = states[i]->Fingerprint128();

  // Probe phase: resolve cached states, dedup the rest within the batch.
  // first_miss maps a distinct uncached key to its slot in the miss list;
  // repeats are cache hits from the sequential path's point of view (the
  // first occurrence would have populated the cache before they ran).
  std::vector<size_t> miss_index;
  std::unordered_map<Fp128, size_t, Fp128Hash> first_miss;
  uint64_t batch_hits = 0;
  for (size_t i = 0; i < n; ++i) {
    if (first_miss.contains(keys[i])) {
      ++batch_hits;
      continue;
    }
    EstimateShard& shard = estimate_shards_[ShardIndex(keys[i])];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.cache.find(keys[i]);
    if (it != shard.cache.end()) {
      out[i] = it->second;
      ++batch_hits;
    } else {
      first_miss.emplace(keys[i], miss_index.size());
      miss_index.push_back(i);
    }
  }
  if (batch_hits > 0 && heuristic_cache_hits_ != nullptr) {
    heuristic_cache_hits_->Increment(batch_hits);
  }

  std::vector<int> miss_h(miss_index.size());
  if (!miss_index.empty()) {
    std::vector<const Database*> miss_states;
    miss_states.reserve(miss_index.size());
    for (size_t idx : miss_index) miss_states.push_back(states[idx]);
    {
      obs::ScopedTimer timer(heuristic_nanos_);
      obs::TraceSpan span(trace_, obs::TraceCategory::kHeuristic,
                          "heuristic");
      const TnfEncodeStats tnf_before = ThreadTnfEncodeStats();
      heuristic_->EstimateBatch(miss_states, miss_h);
      RecordTnfDelta(tnf_before);
      span.SetEndArg("batch", static_cast<int64_t>(miss_states.size()));
    }
    if (heuristic_evals_ != nullptr) {
      heuristic_evals_->Increment(miss_index.size());
    }
    for (size_t k = 0; k < miss_index.size(); ++k) {
      const Fp128& key = keys[miss_index[k]];
      EstimateShard& shard = estimate_shards_[ShardIndex(key)];
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.cache.emplace(key, miss_h[k]);
    }
  }

  // Fill phase: misses and their intra-batch repeats read the computed
  // values; cache hits were written during the probe.
  for (size_t i = 0; i < n; ++i) {
    auto it = first_miss.find(keys[i]);
    if (it != first_miss.end()) out[i] = miss_h[it->second];
  }
}

void MappingProblem::TrimCaches() const {
  {
    std::lock_guard<std::mutex> lock(expand_mu_);
    expand_cache_.clear();
    expand_cache_index_.clear();
    expand_cache_states_.store(0, std::memory_order_relaxed);
  }
  for (EstimateShard& shard : estimate_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.cache.clear();
  }
  // Rare (supervisor-triggered), so the counter is looked up on demand
  // instead of being resolved in set_metrics like the hot-path ones.
  if (metrics_ != nullptr) {
    metrics_->GetCounter("expand.cache_trims").Increment();
  }
}

std::vector<Op> MappingProblem::CandidateOps(const Database& state) const {
  std::vector<Op> ops;
  const bool prune = config_.prune;
  const SymbolSets& ts = target_symbols_;

  // Attribute names of the whole current state, for rename pruning.
  SymbolSets state_symbols = SymbolSets::FromDatabase(state);

  // §2.3's example rule: "if the current search state has all attribute
  // names occurring in the target state, there is no need to explore
  // applications of the attribute renaming operator" — i.e. renames are
  // pruned as a class once nothing is missing, but an individual rename
  // may move even a target-named element (rename chains/swaps need this).
  bool any_att_missing = false;
  for (const std::string& att : ts.atts) {
    if (!state_symbols.atts.contains(att)) {
      any_att_missing = true;
      break;
    }
  }
  bool any_rel_missing = false;
  for (const std::string& rel_name : ts.rels) {
    if (!state.HasRelation(rel_name)) {
      any_rel_missing = true;
      break;
    }
  }

  for (const auto& [rname, relp] : state.relations()) {
    const Relation& rel = *relp;
    // ρrel: rename this relation to a missing target relation name.
    if (!prune || any_rel_missing) {
      for (const std::string& to : ts.rels) {
        if (state.HasRelation(to)) continue;
        ops.push_back(RenameRelOp{rname, to});
      }
    }

    // ↓: demote metadata. Pruned: only when some symbol that is metadata
    // here (an attribute or the relation name) appears among the target's
    // data values — i.e. h2-style evidence that demotion is needed.
    if (!rel.HasAttribute(kDemoteAttrColumn) &&
        !rel.HasAttribute(kDemoteValueColumn)) {
      bool wanted = !prune || ts.values.contains(rname);
      if (!wanted) {
        for (const std::string& attr : rel.attributes()) {
          if (ts.values.contains(attr)) {
            wanted = true;
            break;
          }
        }
      }
      if (wanted) ops.push_back(DemoteOp{rname});
    }

    // λ: apply an articulated complex correspondence wherever its inputs
    // are available and its output is absent.
    for (const SemanticCorrespondence& c : correspondences_) {
      if (rel.HasAttribute(c.output)) continue;
      if (prune && !ts.atts.contains(c.output)) continue;
      bool inputs_ok = true;
      for (const std::string& in : c.inputs) {
        if (!rel.HasAttribute(in)) {
          inputs_ok = false;
          break;
        }
      }
      if (!inputs_ok) continue;
      ops.push_back(ApplyFunctionOp{rname, c.function, c.inputs, c.output});
    }

    // µ: merge. Pruned: only useful when the relation holds nulls (merging
    // null-free tuples only collapses exact duplicates).
    if (rel.size() >= 2) {
      bool has_null = RelationHasNull(rel);
      for (size_t i = 0; i < rel.arity(); ++i) {
        if (prune && !has_null) break;
        ops.push_back(MergeOp{rname, rel.attributes()[i]});
      }
    }

    for (size_t i = 0; i < rel.arity(); ++i) {
      const std::string& attr = rel.attributes()[i];

      // ρatt: rename into a missing target attribute. Pruned as a class
      // when no target attribute is missing anywhere in the state.
      if (!prune || any_att_missing) {
        for (const std::string& to : ts.atts) {
          if (rel.HasAttribute(to)) continue;
          ops.push_back(RenameAttrOp{rname, attr, to});
        }
      }

      // π̄: drop a column the target does not mention.
      if (rel.arity() > 1 && (!prune || !ts.atts.contains(attr))) {
        ops.push_back(DropOp{rname, attr});
      }

      // ℘: partition when this column's values name missing target
      // relations.
      if (!prune ||
          AnyColumnValue(rel, i, [&](const std::string& v) {
            return ts.rels.contains(v) && !state.HasRelation(v);
          })) {
        ops.push_back(PartitionOp{rname, attr});
      }

      // ↑: promote this column's values to attribute names, paired with
      // every other column as the value source. Pruned: only when some
      // value of this column is a missing target attribute name.
      bool promote_wanted =
          !prune || AnyColumnValue(rel, i, [&](const std::string& v) {
            return ts.atts.contains(v) && !rel.HasAttribute(v);
          });
      if (promote_wanted) {
        for (size_t j = 0; j < rel.arity(); ++j) {
          if (j == i) continue;
          ops.push_back(PromoteOp{rname, attr, rel.attributes()[j]});
        }
      }

      // →: dereference when this column's values name attributes of the
      // relation; the fresh column must be a missing target attribute.
      if (config_.enable_dereference) {
        bool pointer_ok =
            !prune || AnyColumnValue(rel, i, [&](const std::string& v) {
              return rel.HasAttribute(v);
            });
        if (pointer_ok) {
          for (const std::string& out : ts.atts) {
            if (rel.HasAttribute(out)) continue;
            if (prune && state_symbols.atts.contains(out)) {
              // Some relation already carries this target attribute;
              // dereferencing it into this one is still allowed only when
              // this relation is the one being shaped — keep it simple and
              // allow it; the executor/dup-filter discards no-ops.
            }
            ops.push_back(DereferenceOp{rname, attr, out});
          }
        }
      }
    }
  }

  // ×: Cartesian product of two distinct relations. Pruned: only when some
  // target relation needs attributes from both sides.
  if (config_.enable_product && state.relation_count() >= 2) {
    const auto& rels = state.relations();
    for (auto li = rels.begin(); li != rels.end(); ++li) {
      for (auto ri = std::next(li); ri != rels.end(); ++ri) {
        const Relation& left = *li->second;
        const Relation& right = *ri->second;
        ProductOp op{left.name(), right.name()};
        if (state.HasRelation(ProductResultName(op))) continue;
        if (prune) {
          bool wanted = false;
          for (const auto& [tname, trel] : target_.relations()) {
            bool uses_left = false;
            bool uses_right = false;
            bool contained_left = true;
            bool contained_right = true;
            for (const std::string& a : trel->attributes()) {
              if (left.HasAttribute(a)) uses_left = true;
              else contained_left = false;
              if (right.HasAttribute(a)) uses_right = true;
              else contained_right = false;
            }
            if (uses_left && uses_right && !contained_left &&
                !contained_right) {
              wanted = true;
              break;
            }
          }
          if (!wanted) continue;
        }
        ops.push_back(std::move(op));
      }
    }
  }

  return ops;
}

std::vector<MappingProblem::SuccessorT> MappingProblem::Expand(
    const Database& state) const {
  obs::ScopedTimer timer(successor_nanos_);
  const Fp128 state_key = state.Fingerprint128();
  const bool cache_on = config_.expand_cache_capacity > 0;

  if (cache_on) {
    std::lock_guard<std::mutex> lock(expand_mu_);
    auto hit = expand_cache_index_.find(state_key);
    if (hit != expand_cache_index_.end()) {
      expand_cache_.splice(expand_cache_.begin(), expand_cache_, hit->second);
      if (expand_cache_hits_ != nullptr) expand_cache_hits_->Increment();
      return hit->second->successors;  // copied out while still locked
    }
    if (expand_cache_misses_ != nullptr) expand_cache_misses_->Increment();
  }

  // Successor generation runs unlocked; two threads missing on the same
  // state both compute (identical) successor lists and the second insert
  // below is dropped. COW telemetry is attributed per problem by diffing
  // the calling thread's counters — all ApplyOp work is synchronous on
  // this thread, so the delta is exactly this expansion's, even with
  // other searches running concurrently in the process.
  const Database::CowStats cow_before = Database::ThreadCowStats();

  // The span covers real successor generation only; cache hits returned
  // above stay span-free (they cost a lookup, not a generation).
  obs::TraceSpan span(trace_, obs::TraceCategory::kExpand, "expand");

  std::vector<SuccessorT> successors;
  // Dedup on the full 128-bit fingerprint: distinct successors colliding
  // on a 64-bit key would silently drop a reachable state.
  std::unordered_set<Fp128, Fp128Hash> seen;
  seen.insert(state_key);

  for (Op& op : CandidateOps(state)) {
    Result<Database> next =
        config_.compiled_expand
            ? ApplyOpCompiled(op, state, registry_, metrics_, trace_)
            : ApplyOp(op, state, registry_, metrics_, trace_);
    if (!next.ok()) continue;  // inapplicable in this state
    Fp128 key = next->Fingerprint128();
    if (!seen.insert(key).second) continue;  // duplicate successor / no-op
    successors.push_back(SuccessorT{std::move(op), std::move(next).value()});
  }
  span.SetEndArg("successors", static_cast<int64_t>(successors.size()));

  if (cow_copies_ != nullptr) {
    const Database::CowStats cow_after = Database::ThreadCowStats();
    cow_copies_->Increment(cow_after.cow_copies - cow_before.cow_copies);
    relations_shared_->Increment(cow_after.relations_shared -
                                 cow_before.relations_shared);
  }

  if (cache_on) {
    std::lock_guard<std::mutex> lock(expand_mu_);
    if (!expand_cache_index_.contains(state_key)) {
      expand_cache_.push_front(ExpandCacheEntry{state_key, successors});
      expand_cache_index_.emplace(state_key, expand_cache_.begin());
      expand_cache_states_.fetch_add(successors.size(),
                                     std::memory_order_relaxed);
      while (expand_cache_.size() > config_.expand_cache_capacity) {
        ExpandCacheEntry& victim = expand_cache_.back();
        expand_cache_states_.fetch_sub(victim.successors.size(),
                                       std::memory_order_relaxed);
        expand_cache_index_.erase(victim.key);
        expand_cache_.pop_back();
        if (expand_cache_evictions_ != nullptr) {
          expand_cache_evictions_->Increment();
        }
      }
    }
  }
  return successors;
}

}  // namespace tupelo
