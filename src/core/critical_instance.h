#ifndef TUPELO_CORE_CRITICAL_INSTANCE_H_
#define TUPELO_CORE_CRITICAL_INSTANCE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/database.h"

namespace tupelo {

// §2.2 envisions semi-automating critical-instance construction "using
// techniques developed for entity/duplicate identification and record
// linkage" (Bilke & Naumann's duplicate-based matching). This module is
// that step, in its simplest defensible form: given *full* instances of
// the source and target schemas that describe overlapping entities, pick
// the tuples that most evidently describe the same entities — scored by
// shared atom values — and keep only those, yielding small instances
// suitable as TUPELO's search input.

struct CriticalInstanceOptions {
  // Keep at most this many tuples per target relation.
  size_t max_tuples_per_relation = 2;
  // Tuple pairs sharing fewer atoms than this are never linked.
  size_t min_shared_atoms = 1;
};

struct CriticalInstancePair {
  Database source;
  Database target;
  // Total shared-atom score across all selected links (higher = the
  // instances illustrate the Rosetta Stone principle more strongly).
  size_t overlap_score = 0;
};

// Selects linked tuples and trims both databases to them. Source relations
// that link to no target tuple keep their first tuple (the search may
// still need their schema). Fails if either database is empty.
Result<CriticalInstancePair> ExtractCriticalInstances(
    const Database& source_full, const Database& target_full,
    const CriticalInstanceOptions& options = {});

}  // namespace tupelo

#endif  // TUPELO_CORE_CRITICAL_INSTANCE_H_
