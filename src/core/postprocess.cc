#include "core/postprocess.h"

#include <utility>

#include "relational/algebra.h"

namespace tupelo {

Result<Database> ConformToSchema(const Database& mapped,
                                 const Database& target_schema,
                                 const ConformOptions& options) {
  Database out;
  for (const auto& [name, target_rel] : target_schema.relations()) {
    TUPELO_ASSIGN_OR_RETURN(const Relation* mapped_rel,
                            mapped.GetRelation(name));
    TUPELO_ASSIGN_OR_RETURN(Relation projected,
                            Project(*mapped_rel, target_rel->attributes()));
    if (options.drop_null_tuples) {
      projected = Select(projected, [](const Relation&, const Tuple& t) {
        for (const Value& v : t.values()) {
          if (v.is_null()) return false;
        }
        return true;
      });
    }
    if (options.deduplicate) {
      projected = Distinct(projected);
    }
    TUPELO_RETURN_IF_ERROR(out.AddRelation(std::move(projected)));
  }
  return out;
}

}  // namespace tupelo
