#ifndef TUPELO_CORE_MAPPING_REPOSITORY_H_
#define TUPELO_CORE_MAPPING_REPOSITORY_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/mapping_problem.h"
#include "fira/expression.h"
#include "relational/database.h"

namespace tupelo {

// A stored mapping: the executable expression plus everything needed to
// validate and re-run it later — the source/target schemas it was
// discovered for (as critical instances), the articulated complex
// correspondences, and discovery provenance. This is the artifact a data
// integration deployment keeps once discovery is done (§1: mappings are
// "the basic glue" of large-scale information systems; they outlive the
// discovery run).
struct StoredMapping {
  std::string name;                 // identifier, e.g. "prices_to_flights"
  MappingExpression expression;
  Database source_instance;         // critical instance (schema + example)
  Database target_instance;
  std::vector<SemanticCorrespondence> correspondences;
  // Provenance (informational only).
  std::string algorithm;
  std::string heuristic;
  uint64_t states_examined = 0;

  friend bool operator==(const StoredMapping&, const StoredMapping&) = default;
};

// Text serialization (".tmap"): a sectioned format embedding the .tdb and
// expression-script syntaxes verbatim:
//
//   tupelo-mapping 1
//   name prices_to_flights
//   algorithm rbfs
//   heuristic h1
//   states 2570
//   correspondence add [Cost, AgentFee] TotalCost
//   begin source
//     ...tdb...
//   end source
//   begin target
//     ...tdb...
//   end target
//   begin expression
//     ...script...
//   end expression
std::string WriteMapping(const StoredMapping& mapping);
Result<StoredMapping> ParseMapping(std::string_view text);

Result<StoredMapping> LoadMappingFile(const std::string& path);
Status SaveMappingFile(const StoredMapping& mapping, const std::string& path);

// Re-validates a stored mapping: executes the expression on the stored
// source instance and checks the result contains the stored target
// instance. `registry` must provide the functions named by the
// correspondences (may be null when there are none).
Result<bool> ValidateStoredMapping(const StoredMapping& mapping,
                                   const FunctionRegistry* registry = nullptr);

}  // namespace tupelo

#endif  // TUPELO_CORE_MAPPING_REPOSITORY_H_
