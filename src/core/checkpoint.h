#ifndef TUPELO_CORE_CHECKPOINT_H_
#define TUPELO_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "common/status.h"
#include "fira/operators.h"
#include "relational/database.h"

namespace tupelo {

// Durable snapshot of a Tupelo::Discover run: the ladder position, the
// remaining budget, the best partial mapping, and the active algorithm's
// resumable core (beam frontier / A*-greedy open list / IDA* bound). A
// killed run restarted with TupeloOptions::resume picks up at the last
// snapshot instead of from scratch.
//
// On-disk format (versioned, text, one logical item per line):
//
//   tupelo-checkpoint 1
//   workload <src.lo>:<src.hi> <tgt.lo>:<tgt.hi>     # hex Fp128 lanes
//   algorithm <name>                                  # "ida", "beam", ...
//   rung <index> <ladder_size>
//   states_left / deadline_left_millis / states_examined
//   best_h / ida_bound / beam_depth / next_seq
//   begin best_path ... end best_path                 # expression script
//   frontier_h <h> + begin fpath/fstate sections      # per beam node
//   open_entry <key> <seq> + begin opath section      # per open-list node
//   closed <lo>:<hi> <g>                              # per closed entry
//   checksum <lo>:<hi>                                # over all bytes above
//
// The checksum is two independently seeded FNV lanes over the payload
// text; section payloads are the existing round-trip formats (.tdb for
// states, expression scripts for paths), whose lines never start with
// "end ", so the sectioned framing is unambiguous. Writers must go
// through SaveCheckpointFile/AtomicWriteFile so a crash mid-write leaves
// the previous checkpoint intact.
inline constexpr int kCheckpointFormatVersion = 1;
inline constexpr char kCheckpointMagic[] = "tupelo-checkpoint";

// One beam/parallel-beam frontier node.
struct CheckpointFrontierEntry {
  Database state;
  std::vector<Op> path;
  int64_t h = 0;
};

// One A*/greedy open-list node. The state is not stored: it is replayed
// from `path` on resume (operators are deterministic). `key` is g for A*
// and h for greedy — informational, recomputed on resume; `seq` is the
// FIFO tiebreak and must survive verbatim for pop-order equivalence.
struct CheckpointOpenEntry {
  std::vector<Op> path;
  int64_t key = 0;
  uint64_t seq = 0;
};

struct DiscoveryCheckpoint {
  // Workload identity: fingerprints of the source and target instances.
  // Resume refuses a checkpoint whose fingerprints do not match.
  Fp128 source_fp;
  Fp128 target_fp;
  std::string algorithm;  // SearchAlgorithmName form

  // Ladder position and remaining budget at snapshot time.
  int rung_index = 0;
  int ladder_size = 0;
  int64_t states_left = 0;
  int64_t deadline_left_millis = 0;

  // Progress and anytime result.
  uint64_t states_examined = 0;
  std::vector<Op> best_path;
  int best_h = -1;

  // Per-algorithm resumable core; unused fields stay at their defaults.
  int64_t ida_bound = -1;
  int beam_depth = 0;
  std::vector<CheckpointFrontierEntry> frontier;
  std::vector<CheckpointOpenEntry> open;
  uint64_t next_seq = 0;
  std::vector<std::pair<Fp128, int64_t>> closed;
};

// Serializes to the on-disk text format, checksum line included.
std::string WriteCheckpoint(const DiscoveryCheckpoint& checkpoint);

// Parses and verifies a checkpoint. Typed failures: damaged framing,
// truncation, or checksum mismatch return ParseError; an unsupported
// format version returns FailedPrecondition. Every embedded database
// passes Database::Validate() before it is accepted.
Result<DiscoveryCheckpoint> ParseCheckpoint(std::string_view text);

// File wrappers. LoadCheckpointFile returns NotFound when the file cannot
// be opened; SaveCheckpointFile writes atomically (see AtomicWriteFile).
Result<DiscoveryCheckpoint> LoadCheckpointFile(const std::string& path);
Status SaveCheckpointFile(const DiscoveryCheckpoint& checkpoint,
                          const std::string& path);

// Writes `contents` to `path` via write-to-temporary-then-rename, so an
// interrupted write can never leave a torn file at `path`: readers see
// either the previous complete contents or the new complete contents.
Status AtomicWriteFile(const std::string& path, std::string_view contents);

// Hygiene for AtomicWriteFile's crash window: a process killed between
// writing `<path>.tmp` and renaming it leaves the temporary behind. The
// temporary is never valid input — loads read only the final path — so
// callers sweep it before writing to `path` again. Returns true when a
// stale temporary existed and was removed.
bool RemoveStaleCheckpointTmp(const std::string& path);

// Directory-level sweep of the same crash window, for journal directories
// holding many checkpoints (the server's job journal): removes every
// regular file under `dir` whose name ends in ".tmp". Returns the number
// removed; a missing or unreadable directory sweeps nothing.
int SweepStaleTmpFiles(const std::string& dir);

}  // namespace tupelo

#endif  // TUPELO_CORE_CHECKPOINT_H_
