#include "core/schema_matching.h"

#include <map>
#include <utility>

namespace tupelo {

Result<SchemaMatch> MatchSchemas(const Database& source,
                                 const Database& target,
                                 const TupeloOptions& options) {
  Tupelo tupelo(source, target);
  TUPELO_ASSIGN_OR_RETURN(TupeloResult result, tupelo.Discover(options));

  SchemaMatch match;
  match.found = result.found;
  match.stop_reason = result.stop_reason;
  match.budget_exhausted = result.budget_exhausted;
  match.stats = result.stats;
  match.mapping = result.mapping;
  if (!result.found) return match;

  // Compose rename chains: if A→B and later B→C, report A→C. `origin` maps
  // a current name back to the original source name it started as.
  std::map<std::string, std::string> attr_origin;   // current -> original
  std::map<std::string, std::string> rel_origin;

  for (const Op& op : result.mapping.steps()) {
    if (const auto* r = std::get_if<RenameAttrOp>(&op)) {
      auto it = attr_origin.find(r->from);
      std::string original = it != attr_origin.end() ? it->second : r->from;
      if (it != attr_origin.end()) attr_origin.erase(it);
      attr_origin[r->to] = std::move(original);
    } else if (const auto* r2 = std::get_if<RenameRelOp>(&op)) {
      auto it = rel_origin.find(r2->from);
      std::string original = it != rel_origin.end() ? it->second : r2->from;
      if (it != rel_origin.end()) rel_origin.erase(it);
      rel_origin[r2->to] = std::move(original);
    }
  }
  for (const auto& [current, original] : attr_origin) {
    match.attribute_matches.emplace_back(original, current);
  }
  for (const auto& [current, original] : rel_origin) {
    match.relation_matches.emplace_back(original, current);
  }
  return match;
}

}  // namespace tupelo
