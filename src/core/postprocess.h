#ifndef TUPELO_CORE_POSTPROCESS_H_
#define TUPELO_CORE_POSTPROCESS_H_

#include "common/result.h"
#include "relational/database.h"

namespace tupelo {

// §2.1/§2.3: TUPELO's goal test is containment — the mapped state may carry
// extra relations, columns, and tuples, which "filtering operations (via
// relational selections) must be applied [to] according to external
// criteria" after discovery. ConformToSchema is that post-processing step
// for the most common criterion, the target schema itself.
struct ConformOptions {
  // Remove duplicate tuples created by restructuring (e.g. demote).
  bool deduplicate = true;
  // Drop tuples that are null in any target attribute (partial tuples from
  // promote that never merged).
  bool drop_null_tuples = true;
};

// Keeps exactly the relations named in `target_schema`, projects each onto
// the target's attribute list (in target order), and filters per
// `options`. Tuple *contents* of `target_schema` are ignored — only its
// schema matters. Fails if a target relation or attribute is absent from
// `mapped`.
Result<Database> ConformToSchema(const Database& mapped,
                                 const Database& target_schema,
                                 const ConformOptions& options = {});

}  // namespace tupelo

#endif  // TUPELO_CORE_POSTPROCESS_H_
