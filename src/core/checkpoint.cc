#include "core/checkpoint.h"

#include <dirent.h>
#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/string_util.h"
#include "fira/expression.h"
#include "fira/parser.h"
#include "relational/io.h"

namespace tupelo {

namespace {

std::string HexLane(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

bool ParseHexLane(std::string_view s, uint64_t* out) {
  if (s.empty() || s.size() > 16) return false;
  uint64_t v = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else return false;
    v = (v << 4) | static_cast<uint64_t>(digit);
  }
  *out = v;
  return true;
}

std::string FpText(const Fp128& fp) {
  return HexLane(fp.lo) + ":" + HexLane(fp.hi);
}

bool ParseFp(std::string_view s, Fp128* out) {
  size_t colon = s.find(':');
  if (colon == std::string_view::npos) return false;
  return ParseHexLane(s.substr(0, colon), &out->lo) &&
         ParseHexLane(s.substr(colon + 1), &out->hi);
}

bool ParseI64(std::string_view s, int64_t* out) {
  if (!IsInteger(s)) return false;
  errno = 0;
  char* end = nullptr;
  std::string owned(s);
  long long v = std::strtoll(owned.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseU64(std::string_view s, uint64_t* out) {
  if (s.empty() || s[0] == '-' || !IsInteger(s)) return false;
  errno = 0;
  char* end = nullptr;
  std::string owned(s);
  unsigned long long v = std::strtoull(owned.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

Status Malformed(const std::string& what) {
  return Status::ParseError("malformed checkpoint: " + what);
}

// Cursor over the payload lines with sectioned-text helpers (same framing
// idiom as the .tmap mapping repository format).
class LineReader {
 public:
  explicit LineReader(std::string_view payload)
      : lines_(Split(payload, '\n')) {
    // Split of a '\n'-terminated payload yields one trailing empty field.
    if (!lines_.empty() && lines_.back().empty()) lines_.pop_back();
  }

  bool done() const { return pos_ >= lines_.size(); }
  const std::string& Peek() const { return lines_[pos_]; }
  const std::string& Next() { return lines_[pos_++]; }

  // Reads "begin <name>" ... "end <name>" and returns the body joined
  // with newlines (empty body allowed).
  Result<std::string> Section(const std::string& name) {
    if (done() || Next() != "begin " + name) {
      return Malformed("expected 'begin " + name + "'");
    }
    std::string body;
    const std::string terminator = "end " + name;
    while (true) {
      if (done()) return Malformed("unterminated section '" + name + "'");
      const std::string& line = Next();
      if (line == terminator) break;
      body += line;
      body += "\n";
    }
    return body;
  }

 private:
  std::vector<std::string> lines_;
  size_t pos_ = 0;
};

void AppendSection(std::string& out, const std::string& name,
                   std::string_view body) {
  out += "begin " + name + "\n";
  out += body;
  if (!body.empty() && body.back() != '\n') out += "\n";
  out += "end " + name + "\n";
}

Result<std::vector<Op>> ParsePathScript(std::string_view script) {
  TUPELO_ASSIGN_OR_RETURN(MappingExpression expr, ParseExpression(script));
  return expr.steps();
}

}  // namespace

std::string WriteCheckpoint(const DiscoveryCheckpoint& checkpoint) {
  std::string out;
  out += std::string(kCheckpointMagic) + " " +
         std::to_string(kCheckpointFormatVersion) + "\n";
  out += "workload " + FpText(checkpoint.source_fp) + " " +
         FpText(checkpoint.target_fp) + "\n";
  out += "algorithm " + checkpoint.algorithm + "\n";
  out += "rung " + std::to_string(checkpoint.rung_index) + " " +
         std::to_string(checkpoint.ladder_size) + "\n";
  out += "states_left " + std::to_string(checkpoint.states_left) + "\n";
  out += "deadline_left_millis " +
         std::to_string(checkpoint.deadline_left_millis) + "\n";
  out += "states_examined " + std::to_string(checkpoint.states_examined) +
         "\n";
  out += "best_h " + std::to_string(checkpoint.best_h) + "\n";
  out += "ida_bound " + std::to_string(checkpoint.ida_bound) + "\n";
  out += "beam_depth " + std::to_string(checkpoint.beam_depth) + "\n";
  out += "next_seq " + std::to_string(checkpoint.next_seq) + "\n";
  AppendSection(out, "best_path",
                MappingExpression(checkpoint.best_path).ToScript());
  for (const CheckpointFrontierEntry& entry : checkpoint.frontier) {
    out += "frontier_h " + std::to_string(entry.h) + "\n";
    AppendSection(out, "fpath", MappingExpression(entry.path).ToScript());
    AppendSection(out, "fstate", WriteTdb(entry.state));
  }
  for (const CheckpointOpenEntry& entry : checkpoint.open) {
    out += "open_entry " + std::to_string(entry.key) + " " +
           std::to_string(entry.seq) + "\n";
    AppendSection(out, "opath", MappingExpression(entry.path).ToScript());
  }
  for (const auto& [fp, g] : checkpoint.closed) {
    out += "closed " + FpText(fp) + " " + std::to_string(g) + "\n";
  }
  out += "checksum " + HexLane(Fnv1aSeeded(out, kFpSeedLo)) + ":" +
         HexLane(Fnv1aSeeded(out, kFpSeedHi)) + "\n";
  return out;
}

Result<DiscoveryCheckpoint> ParseCheckpoint(std::string_view text) {
  // Peel off and verify the trailing checksum line before trusting any
  // other byte.
  size_t csum_pos = text.rfind("checksum ");
  if (csum_pos == std::string_view::npos ||
      (csum_pos != 0 && text[csum_pos - 1] != '\n')) {
    return Malformed("missing checksum line (truncated file?)");
  }
  std::string_view payload = text.substr(0, csum_pos);
  std::string_view csum_line = text.substr(csum_pos);
  if (!csum_line.empty() && csum_line.back() == '\n') {
    csum_line.remove_suffix(1);
  }
  Fp128 stored;
  if (!ParseFp(csum_line.substr(sizeof("checksum ") - 1), &stored)) {
    return Malformed("unreadable checksum line");
  }
  Fp128 actual{Fnv1aSeeded(payload, kFpSeedLo),
               Fnv1aSeeded(payload, kFpSeedHi)};
  if (!(stored == actual)) {
    return Status::ParseError(
        "checkpoint checksum mismatch (file corrupted)");
  }

  LineReader reader(payload);
  if (reader.done()) return Malformed("empty file");
  {
    std::vector<std::string> head = Split(reader.Next(), ' ');
    if (head.size() != 2 || head[0] != kCheckpointMagic) {
      return Malformed("bad magic line");
    }
    int64_t version = 0;
    if (!ParseI64(head[1], &version)) return Malformed("bad version");
    if (version != kCheckpointFormatVersion) {
      return Status::FailedPrecondition(
          "unsupported checkpoint format version " + head[1] +
          " (this build reads version " +
          std::to_string(kCheckpointFormatVersion) + ")");
    }
  }

  DiscoveryCheckpoint cp;
  auto expect_kv = [&reader](const std::string& keyword,
                             std::string* value) -> Status {
    if (reader.done()) return Malformed("missing '" + keyword + "' line");
    std::vector<std::string> parts = Split(reader.Next(), ' ');
    if (parts.empty() || parts[0] != keyword) {
      return Malformed("expected '" + keyword + "' line");
    }
    std::vector<std::string> rest(parts.begin() + 1, parts.end());
    *value = Join(rest, " ");
    return Status::OK();
  };

  std::string value;
  TUPELO_RETURN_IF_ERROR(expect_kv("workload", &value));
  {
    std::vector<std::string> fps = Split(value, ' ');
    if (fps.size() != 2 || !ParseFp(fps[0], &cp.source_fp) ||
        !ParseFp(fps[1], &cp.target_fp)) {
      return Malformed("bad workload fingerprints");
    }
  }
  TUPELO_RETURN_IF_ERROR(expect_kv("algorithm", &cp.algorithm));
  TUPELO_RETURN_IF_ERROR(expect_kv("rung", &value));
  {
    std::vector<std::string> parts = Split(value, ' ');
    int64_t index = 0, size = 0;
    if (parts.size() != 2 || !ParseI64(parts[0], &index) ||
        !ParseI64(parts[1], &size) || index < 0 || size <= 0 ||
        index >= size) {
      return Malformed("bad rung position");
    }
    cp.rung_index = static_cast<int>(index);
    cp.ladder_size = static_cast<int>(size);
  }
  TUPELO_RETURN_IF_ERROR(expect_kv("states_left", &value));
  if (!ParseI64(value, &cp.states_left)) return Malformed("bad states_left");
  TUPELO_RETURN_IF_ERROR(expect_kv("deadline_left_millis", &value));
  if (!ParseI64(value, &cp.deadline_left_millis)) {
    return Malformed("bad deadline_left_millis");
  }
  TUPELO_RETURN_IF_ERROR(expect_kv("states_examined", &value));
  if (!ParseU64(value, &cp.states_examined)) {
    return Malformed("bad states_examined");
  }
  TUPELO_RETURN_IF_ERROR(expect_kv("best_h", &value));
  {
    int64_t best_h = 0;
    if (!ParseI64(value, &best_h)) return Malformed("bad best_h");
    cp.best_h = static_cast<int>(best_h);
  }
  TUPELO_RETURN_IF_ERROR(expect_kv("ida_bound", &value));
  if (!ParseI64(value, &cp.ida_bound)) return Malformed("bad ida_bound");
  TUPELO_RETURN_IF_ERROR(expect_kv("beam_depth", &value));
  {
    int64_t depth = 0;
    if (!ParseI64(value, &depth) || depth < 0) {
      return Malformed("bad beam_depth");
    }
    cp.beam_depth = static_cast<int>(depth);
  }
  TUPELO_RETURN_IF_ERROR(expect_kv("next_seq", &value));
  if (!ParseU64(value, &cp.next_seq)) return Malformed("bad next_seq");

  TUPELO_ASSIGN_OR_RETURN(std::string best_script,
                          reader.Section("best_path"));
  TUPELO_ASSIGN_OR_RETURN(cp.best_path, ParsePathScript(best_script));

  while (!reader.done()) {
    std::vector<std::string> parts = Split(reader.Next(), ' ');
    if (parts.empty()) return Malformed("blank line in entry list");
    if (parts[0] == "frontier_h") {
      CheckpointFrontierEntry entry;
      if (parts.size() != 2 || !ParseI64(parts[1], &entry.h)) {
        return Malformed("bad frontier_h line");
      }
      TUPELO_ASSIGN_OR_RETURN(std::string script, reader.Section("fpath"));
      TUPELO_ASSIGN_OR_RETURN(entry.path, ParsePathScript(script));
      TUPELO_ASSIGN_OR_RETURN(std::string tdb, reader.Section("fstate"));
      TUPELO_ASSIGN_OR_RETURN(entry.state, ParseTdb(tdb));
      TUPELO_RETURN_IF_ERROR(entry.state.Validate());
      cp.frontier.push_back(std::move(entry));
    } else if (parts[0] == "open_entry") {
      CheckpointOpenEntry entry;
      if (parts.size() != 3 || !ParseI64(parts[1], &entry.key) ||
          !ParseU64(parts[2], &entry.seq)) {
        return Malformed("bad open_entry line");
      }
      TUPELO_ASSIGN_OR_RETURN(std::string script, reader.Section("opath"));
      TUPELO_ASSIGN_OR_RETURN(entry.path, ParsePathScript(script));
      cp.open.push_back(std::move(entry));
    } else if (parts[0] == "closed") {
      Fp128 fp;
      int64_t g = 0;
      if (parts.size() != 3 || !ParseFp(parts[1], &fp) ||
          !ParseI64(parts[2], &g)) {
        return Malformed("bad closed line");
      }
      cp.closed.emplace_back(fp, g);
    } else {
      return Malformed("unknown entry '" + parts[0] + "'");
    }
  }
  return cp;
}

Result<DiscoveryCheckpoint> LoadCheckpointFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open checkpoint: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ParseCheckpoint(ss.str());
}

Status SaveCheckpointFile(const DiscoveryCheckpoint& checkpoint,
                          const std::string& path) {
  return AtomicWriteFile(path, WriteCheckpoint(checkpoint));
}

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp, std::ios::trunc);
  if (!out) return Status::InvalidArgument("cannot write file: " + tmp);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out) {
    // Short write (ENOSPC, I/O error): typed, and the torn tmp file is
    // removed rather than left behind to shadow a later write.
    out.close();
    std::remove(tmp.c_str());
    return Status::ResourceExhausted("short write for file: " + tmp);
  }
  // close() is where buffered data actually reaches the filesystem; an
  // error here (ENOSPC at flush-on-close) would previously vanish in the
  // destructor and leave a silently torn tmp file.
  out.close();
  if (out.fail()) {
    std::remove(tmp.c_str());
    return Status::ResourceExhausted("close failed for file: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

bool RemoveStaleCheckpointTmp(const std::string& path) {
  const std::string tmp = path + ".tmp";
  return std::remove(tmp.c_str()) == 0;
}

int SweepStaleTmpFiles(const std::string& dir) {
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return 0;
  int removed = 0;
  while (struct dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    constexpr std::string_view kSuffix = ".tmp";
    if (name.size() <= kSuffix.size() ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix) != 0) {
      continue;
    }
    const std::string full = dir + "/" + name;
    struct stat st;
    if (stat(full.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) continue;
    if (std::remove(full.c_str()) == 0) ++removed;
  }
  closedir(d);
  return removed;
}

}  // namespace tupelo
