#include "core/mapping_repository.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "common/string_util.h"
#include "fira/parser.h"
#include "relational/io.h"

namespace tupelo {
namespace {

constexpr char kMagic[] = "tupelo-mapping";
constexpr int kVersion = 1;

// Correspondence line: `correspondence <fn> [in1, in2] <out>` with the
// expression syntax's quoting rules for awkward names.
bool BareOk(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '[' ||
        c == ']' || c == ',' || c == '"' || c == '#') {
      return false;
    }
  }
  return true;
}

std::string Atom(const std::string& s) { return BareOk(s) ? s : Quote(s); }

}  // namespace

std::string WriteMapping(const StoredMapping& mapping) {
  std::string out = std::string(kMagic) + " " + std::to_string(kVersion) +
                    "\n";
  out += "name " + Atom(mapping.name) + "\n";
  if (!mapping.algorithm.empty()) {
    out += "algorithm " + Atom(mapping.algorithm) + "\n";
  }
  if (!mapping.heuristic.empty()) {
    out += "heuristic " + Atom(mapping.heuristic) + "\n";
  }
  out += "states " + std::to_string(mapping.states_examined) + "\n";
  for (const SemanticCorrespondence& c : mapping.correspondences) {
    out += "correspondence " + Atom(c.function) + " [";
    for (size_t i = 0; i < c.inputs.size(); ++i) {
      if (i > 0) out += ", ";
      out += Atom(c.inputs[i]);
    }
    out += "] " + Atom(c.output) + "\n";
  }
  out += "begin source\n" + WriteTdb(mapping.source_instance) +
         "end source\n";
  out += "begin target\n" + WriteTdb(mapping.target_instance) +
         "end target\n";
  out += "begin expression\n" + mapping.expression.ToScript() +
         "end expression\n";
  return out;
}

namespace {

// Splits a header line into whitespace-separated fields, honoring quotes
// (reusing the expression parser on a synthetic op is overkill; this tiny
// splitter matches Atom()'s output).
Result<std::vector<std::string>> SplitHeaderLine(const std::string& line) {
  std::vector<std::string> fields;
  size_t i = 0;
  while (i < line.size()) {
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    if (line[i] == '"') {
      std::string out;
      ++i;
      bool closed = false;
      while (i < line.size()) {
        char c = line[i++];
        if (c == '"') {
          closed = true;
          break;
        }
        if (c == '\\' && i < line.size()) {
          char e = line[i++];
          switch (e) {
            case '\\': out += '\\'; break;
            case '"': out += '"'; break;
            case 'n': out += '\n'; break;
            case 't': out += '\t'; break;
            default:
              return Status::ParseError("bad escape in header line");
          }
        } else {
          out += c;
        }
      }
      if (!closed) return Status::ParseError("unterminated quote");
      fields.push_back(std::move(out));
    } else {
      size_t start = i;
      while (i < line.size() &&
             !std::isspace(static_cast<unsigned char>(line[i]))) {
        ++i;
      }
      fields.emplace_back(line.substr(start, i - start));
    }
  }
  return fields;
}

}  // namespace

Result<StoredMapping> ParseMapping(std::string_view text) {
  StoredMapping mapping;
  std::vector<std::string> lines = Split(std::string(text), '\n');
  size_t i = 0;

  auto next_meaningful = [&]() -> const std::string* {
    while (i < lines.size()) {
      std::string_view stripped = StripAsciiWhitespace(lines[i]);
      if (!stripped.empty() && stripped[0] != '#') return &lines[i];
      ++i;
    }
    return nullptr;
  };

  const std::string* first = next_meaningful();
  if (first == nullptr || !StartsWith(*first, kMagic)) {
    return Status::ParseError("not a tupelo-mapping file");
  }
  {
    TUPELO_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                            SplitHeaderLine(*first));
    if (fields.size() != 2 || fields[1] != std::to_string(kVersion)) {
      return Status::ParseError("unsupported tupelo-mapping version");
    }
  }
  ++i;

  bool saw_source = false;
  bool saw_target = false;
  bool saw_expression = false;

  while (true) {
    const std::string* line = next_meaningful();
    if (line == nullptr) break;
    TUPELO_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                            SplitHeaderLine(*line));
    ++i;
    if (fields.empty()) continue;
    const std::string& keyword = fields[0];

    if (keyword == "name" && fields.size() == 2) {
      mapping.name = fields[1];
    } else if (keyword == "algorithm" && fields.size() == 2) {
      mapping.algorithm = fields[1];
    } else if (keyword == "heuristic" && fields.size() == 2) {
      mapping.heuristic = fields[1];
    } else if (keyword == "states" && fields.size() == 2) {
      if (!IsInteger(fields[1])) {
        return Status::ParseError("states expects an integer");
      }
      mapping.states_examined = std::stoull(fields[1]);
    } else if (keyword == "correspondence") {
      // Reassemble and reuse the bracketed-list structure: the fields are
      // fn, [list..., possibly split], out. Parse from the raw line.
      std::string raw = *line;
      size_t lb = raw.find('[');
      size_t rb = raw.rfind(']');
      if (lb == std::string::npos || rb == std::string::npos || rb < lb) {
        return Status::ParseError("correspondence expects [inputs]");
      }
      TUPELO_ASSIGN_OR_RETURN(
          std::vector<std::string> head,
          SplitHeaderLine(raw.substr(0, lb)));
      if (head.size() != 2) {
        return Status::ParseError("correspondence expects a function name");
      }
      SemanticCorrespondence c;
      c.function = head[1];
      // Split the bracketed list on commas *outside* quotes.
      std::string list = raw.substr(lb + 1, rb - lb - 1);
      std::vector<std::string> parts;
      {
        std::string current;
        bool in_quotes = false;
        for (size_t p = 0; p < list.size(); ++p) {
          char ch = list[p];
          if (ch == '"' && (p == 0 || list[p - 1] != '\\')) {
            in_quotes = !in_quotes;
          }
          if (ch == ',' && !in_quotes) {
            parts.push_back(std::move(current));
            current.clear();
          } else {
            current += ch;
          }
        }
        parts.push_back(std::move(current));
      }
      for (const std::string& part : parts) {
        std::string_view stripped = StripAsciiWhitespace(part);
        if (stripped.empty()) continue;
        TUPELO_ASSIGN_OR_RETURN(std::vector<std::string> one,
                                SplitHeaderLine(std::string(stripped)));
        if (one.size() != 1) {
          return Status::ParseError("bad correspondence input list");
        }
        c.inputs.push_back(one[0]);
      }
      TUPELO_ASSIGN_OR_RETURN(std::vector<std::string> tail,
                              SplitHeaderLine(raw.substr(rb + 1)));
      if (tail.size() != 1) {
        return Status::ParseError("correspondence expects one output");
      }
      c.output = tail[0];
      mapping.correspondences.push_back(std::move(c));
    } else if (keyword == "begin" && fields.size() == 2) {
      const std::string& section = fields[1];
      std::string body;
      bool closed = false;
      while (i < lines.size()) {
        std::string_view stripped = StripAsciiWhitespace(lines[i]);
        if (stripped == "end " + section) {
          closed = true;
          ++i;
          break;
        }
        body += lines[i];
        body += "\n";
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated section '" + section + "'");
      }
      if (section == "source") {
        TUPELO_ASSIGN_OR_RETURN(mapping.source_instance, ParseTdb(body));
        saw_source = true;
      } else if (section == "target") {
        TUPELO_ASSIGN_OR_RETURN(mapping.target_instance, ParseTdb(body));
        saw_target = true;
      } else if (section == "expression") {
        TUPELO_ASSIGN_OR_RETURN(mapping.expression, ParseExpression(body));
        saw_expression = true;
      } else {
        return Status::ParseError("unknown section '" + section + "'");
      }
    } else {
      return Status::ParseError("unknown header line: " + *line);
    }
  }

  if (!saw_source || !saw_target || !saw_expression) {
    return Status::ParseError(
        "mapping file needs source, target, and expression sections");
  }
  return mapping;
}

Result<StoredMapping> LoadMappingFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ParseMapping(ss.str());
}

Status SaveMappingFile(const StoredMapping& mapping,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot write file: " + path);
  out << WriteMapping(mapping);
  return out ? Status::OK()
             : Status::Internal("write failed for file: " + path);
}

Result<bool> ValidateStoredMapping(const StoredMapping& mapping,
                                   const FunctionRegistry* registry) {
  TUPELO_ASSIGN_OR_RETURN(
      Database mapped,
      mapping.expression.Apply(mapping.source_instance, registry));
  return mapped.Contains(mapping.target_instance);
}

}  // namespace tupelo
