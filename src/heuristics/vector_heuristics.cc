#include "heuristics/vector_heuristics.h"

#include <algorithm>
#include <cmath>

#include "heuristics/levenshtein.h"

namespace tupelo {
namespace {

int RoundToInt(double v) { return static_cast<int>(std::llround(v)); }

}  // namespace

LevenshteinHeuristic::LevenshteinHeuristic(const Database& target, double k)
    : target_string_(DatabaseToTnfString(target)), k_(k) {}

int LevenshteinHeuristic::Estimate(const Database& state) const {
  std::string s = DatabaseToTnfString(state);
  size_t longest = std::max(s.size(), target_string_.size());
  if (longest == 0) return 0;
  double normalized =
      static_cast<double>(LevenshteinDistance(s, target_string_)) /
      static_cast<double>(longest);
  return RoundToInt(k_ * normalized);
}

EuclideanHeuristic::EuclideanHeuristic(const Database& target)
    : target_(TermVector::FromDatabase(target)) {}

int EuclideanHeuristic::Estimate(const Database& state) const {
  TermVector x = TermVector::FromDatabase(state);
  return RoundToInt(TermVector::EuclideanDistance(x, target_));
}

NormalizedEuclideanHeuristic::NormalizedEuclideanHeuristic(
    const Database& target, double k)
    : target_(TermVector::FromDatabase(target)), k_(k) {}

int NormalizedEuclideanHeuristic::Estimate(const Database& state) const {
  TermVector x = TermVector::FromDatabase(state);
  // Normalized vectors differ by at most √2; rescale the [0, √2] range to
  // [0, 1] so k means the same as for the other scaled heuristics.
  double d = TermVector::NormalizedEuclideanDistance(x, target_) /
             std::sqrt(2.0);
  return RoundToInt(k_ * d);
}

JaccardHeuristic::JaccardHeuristic(const Database& target, double k)
    : target_(TermVector::FromDatabase(target)), k_(k) {}

int JaccardHeuristic::Estimate(const Database& state) const {
  TermVector x = TermVector::FromDatabase(state);
  double dissimilarity = 1.0 - TermVector::JaccardSimilarity(x, target_);
  return RoundToInt(k_ * dissimilarity);
}

CosineHeuristic::CosineHeuristic(const Database& target, double k)
    : target_(TermVector::FromDatabase(target)), k_(k) {}

int CosineHeuristic::Estimate(const Database& state) const {
  TermVector x = TermVector::FromDatabase(state);
  double dissimilarity = 1.0 - TermVector::CosineSimilarity(x, target_);
  return RoundToInt(k_ * dissimilarity);
}

}  // namespace tupelo
