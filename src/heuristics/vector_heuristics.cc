#include "heuristics/vector_heuristics.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/metrics.h"

namespace tupelo {
namespace {

int RoundToInt(double v) { return static_cast<int>(std::llround(v)); }

}  // namespace

LevenshteinHeuristic::LevenshteinHeuristic(const Database& target, double k)
    : target_pattern_(DatabaseToTnfString(target)), k_(k) {}

std::shared_ptr<const std::string> LevenshteinHeuristic::TnfString(
    const Database& state) const {
  const Fp128 fp = state.Fingerprint128();
  {
    std::lock_guard<std::mutex> lock(tnf_mutex_);
    auto it = tnf_cache_.find(fp);
    if (it != tnf_cache_.end()) {
      tnf_lru_.splice(tnf_lru_.begin(), tnf_lru_, it->second.second);
      tnf_hits_.fetch_add(1, std::memory_order_relaxed);
      if (tnf_hits_counter_ != nullptr) tnf_hits_counter_->Increment();
      return it->second.first;
    }
  }
  // Encode outside the lock; losing a concurrent race for the same state
  // just encodes twice, which the counters record honestly as two misses.
  auto s = std::make_shared<const std::string>(DatabaseToTnfString(state));
  {
    std::lock_guard<std::mutex> lock(tnf_mutex_);
    tnf_misses_.fetch_add(1, std::memory_order_relaxed);
    if (tnf_misses_counter_ != nullptr) tnf_misses_counter_->Increment();
    auto [it, inserted] = tnf_cache_.try_emplace(fp);
    if (inserted) {
      tnf_lru_.push_front(fp);
      it->second = {s, tnf_lru_.begin()};
      if (tnf_cache_.size() > kTnfCacheCapacity) {
        tnf_cache_.erase(tnf_lru_.back());
        tnf_lru_.pop_back();
      }
    }
  }
  return s;
}

int LevenshteinHeuristic::Estimate(const Database& state) const {
  std::shared_ptr<const std::string> s = TnfString(state);
  size_t longest = std::max(s->size(), target_pattern_.pattern().size());
  if (longest == 0) return 0;
  double normalized = static_cast<double>(target_pattern_.Distance(*s)) /
                      static_cast<double>(longest);
  return RoundToInt(k_ * normalized);
}

void LevenshteinHeuristic::BindMetrics(obs::MetricRegistry* registry) {
  tnf_hits_counter_ = &registry->GetCounter("heuristic.levenshtein.tnf_hits");
  tnf_misses_counter_ =
      &registry->GetCounter("heuristic.levenshtein.tnf_misses");
}

EuclideanHeuristic::EuclideanHeuristic(const Database& target)
    : target_(TermVector::FromDatabase(target)) {}

int EuclideanHeuristic::Estimate(const Database& state) const {
  TermVector x = TermVector::FromDatabase(state);
  return RoundToInt(TermVector::EuclideanDistance(x, target_));
}

NormalizedEuclideanHeuristic::NormalizedEuclideanHeuristic(
    const Database& target, double k)
    : target_(TermVector::FromDatabase(target)), k_(k) {}

int NormalizedEuclideanHeuristic::Estimate(const Database& state) const {
  TermVector x = TermVector::FromDatabase(state);
  // Normalized vectors differ by at most √2; rescale the [0, √2] range to
  // [0, 1] so k means the same as for the other scaled heuristics.
  double d = TermVector::NormalizedEuclideanDistance(x, target_) /
             std::sqrt(2.0);
  return RoundToInt(k_ * d);
}

JaccardHeuristic::JaccardHeuristic(const Database& target, double k)
    : target_(TermVector::FromDatabase(target)), k_(k) {}

int JaccardHeuristic::Estimate(const Database& state) const {
  TermVector x = TermVector::FromDatabase(state);
  double dissimilarity = 1.0 - TermVector::JaccardSimilarity(x, target_);
  return RoundToInt(k_ * dissimilarity);
}

CosineHeuristic::CosineHeuristic(const Database& target, double k)
    : target_(TermVector::FromDatabase(target)), k_(k) {}

int CosineHeuristic::Estimate(const Database& state) const {
  TermVector x = TermVector::FromDatabase(state);
  double dissimilarity = 1.0 - TermVector::CosineSimilarity(x, target_);
  return RoundToInt(k_ * dissimilarity);
}

}  // namespace tupelo
