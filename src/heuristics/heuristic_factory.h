#ifndef TUPELO_HEURISTICS_HEURISTIC_FACTORY_H_
#define TUPELO_HEURISTICS_HEURISTIC_FACTORY_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "heuristics/heuristic.h"

namespace tupelo {

// The seven heuristics of §3 plus the blind baseline h0.
enum class HeuristicKind {
  kH0,           // blind (∀x. 0)
  kH1,           // missing target symbols
  kH2,           // misplaced symbols (promotions/demotions needed)
  kH3,           // max(h1, h2)
  kLevenshtein,  // normalized string edit distance, scaled by k
  kEuclidean,    // term-vector Euclidean distance
  kEuclideanNorm,  // normalized term-vector distance, scaled by k
  kCosine,       // cosine dissimilarity, scaled by k
  // Extensions beyond the paper's set (excluded from AllHeuristicKinds so
  // the figure harnesses stay faithful): multiset Jaccard dissimilarity,
  // and the joint (attribute, value) pair count (§7 structure+content).
  kJaccard,
  kPairs,
};

// All kinds, in the paper's presentation order.
const std::vector<HeuristicKind>& AllHeuristicKinds();

// "h0", "h1", "h2", "h3", "levenshtein", "euclid", "euclid_norm", "cosine".
std::string_view HeuristicKindName(HeuristicKind kind);
std::optional<HeuristicKind> ParseHeuristicKind(std::string_view name);

// True for the heuristics that take a scaling constant k.
bool HeuristicUsesScale(HeuristicKind kind);

enum class SearchAlgorithm { kIda, kRbfs, kAStar, kGreedy, kBeam };

std::string_view SearchAlgorithmName(SearchAlgorithm algo);
std::optional<SearchAlgorithm> ParseSearchAlgorithm(std::string_view name);

// The empirically optimal scaling constants reported in §5 (Experimental
// Setup); A* reuses the IDA constants. Returns 1.0 for unscaled heuristics.
double DefaultScale(HeuristicKind kind, SearchAlgorithm algo);

// Builds a heuristic around `target`. `k` ≤ 0 selects DefaultScale for
// `algo`.
std::unique_ptr<Heuristic> MakeHeuristic(HeuristicKind kind,
                                         const Database& target,
                                         SearchAlgorithm algo,
                                         double k = 0.0);

}  // namespace tupelo

#endif  // TUPELO_HEURISTICS_HEURISTIC_FACTORY_H_
