#ifndef TUPELO_HEURISTICS_TERM_VECTOR_H_
#define TUPELO_HEURISTICS_TERM_VECTOR_H_

#include <map>
#include <string>

#include "relational/database.h"

namespace tupelo {

// The "databases as term vectors" view of §3: a database in TNF with rows
// (k_i, r_i, a_i, v_i) becomes a vector counting occurrences of each
// (REL, ATT, VALUE) triple. The paper's vector ranges over all n³ triples
// of tokens; we store only the nonzero coordinates (a sparse map), which
// yields identical distances.
class TermVector {
 public:
  TermVector() = default;

  static TermVector FromDatabase(const Database& db);

  // Number of nonzero coordinates.
  size_t nonzeros() const { return counts_.size(); }

  // L2 norm.
  double Norm() const;

  const std::map<std::string, double>& counts() const { return counts_; }

  // √Σ(x_i − y_i)².
  static double EuclideanDistance(const TermVector& x, const TermVector& y);

  // Distance between the L2-normalized vectors; zero vectors normalize to
  // zero (distance to a nonzero unit vector is then 1).
  static double NormalizedEuclideanDistance(const TermVector& x,
                                            const TermVector& y);

  // Σx_i·y_i / (|x||y|); 0 if either vector is zero.
  static double CosineSimilarity(const TermVector& x, const TermVector& y);

  // Multiset Jaccard: Σ min(x_i, y_i) / Σ max(x_i, y_i); 1 if both are
  // zero vectors.
  static double JaccardSimilarity(const TermVector& x, const TermVector& y);

 private:
  // Key: REL, ATT, VALUE joined with '\x1f'; nulls encoded as '\x1e'.
  std::map<std::string, double> counts_;
};

// The "databases as strings" view of §3: for each TNF row, the string
// r ⊕ a ⊕ v; rows sorted lexicographically and concatenated. Nulls render
// as "⊥".
std::string DatabaseToTnfString(const Database& db);

}  // namespace tupelo

#endif  // TUPELO_HEURISTICS_TERM_VECTOR_H_
