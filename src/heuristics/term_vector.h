#ifndef TUPELO_HEURISTICS_TERM_VECTOR_H_
#define TUPELO_HEURISTICS_TERM_VECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/database.h"

namespace tupelo {

// The "databases as term vectors" view of §3: a database in TNF with rows
// (k_i, r_i, a_i, v_i) becomes a vector counting occurrences of each
// (REL, ATT, VALUE) triple. The paper's vector ranges over all n³ triples
// of tokens; we store only the nonzero coordinates, which yields
// identical distances.
//
// Coordinates are identified by a 64-bit HashBytes64 chain over the
// triple (relation → attribute → value), not by the triple's string: a
// flat sorted (key, count) pair of arrays replaces the former
// std::map<std::string, double>, so distance computations become linear
// merges over contiguous memory (SIMD-amenable, see common/simd/
// term_merge.h) and building one stops allocating a key string per cell.
// Two distinct triples hashing to one key would merge their counts; at
// ~2^-64 per pair that is far below any practical vector size, and a
// collision only perturbs a heuristic estimate, never correctness.
class TermVector {
 public:
  TermVector() = default;

  static TermVector FromDatabase(const Database& db);

  // Number of nonzero coordinates.
  size_t nonzeros() const { return keys_.size(); }

  // L2 norm.
  double Norm() const;

  // Sorted unique coordinate keys and their parallel occurrence counts.
  const std::vector<uint64_t>& keys() const { return keys_; }
  const std::vector<double>& counts() const { return counts_; }

  // √Σ(x_i − y_i)².
  static double EuclideanDistance(const TermVector& x, const TermVector& y);

  // Distance between the L2-normalized vectors; zero vectors normalize to
  // zero (distance to a nonzero unit vector is then 1).
  static double NormalizedEuclideanDistance(const TermVector& x,
                                            const TermVector& y);

  // Σx_i·y_i / (|x||y|); 0 if either vector is zero.
  static double CosineSimilarity(const TermVector& x, const TermVector& y);

  // Multiset Jaccard: Σ min(x_i, y_i) / Σ max(x_i, y_i); 1 if both are
  // zero vectors.
  static double JaccardSimilarity(const TermVector& x, const TermVector& y);

 private:
  std::vector<uint64_t> keys_;
  std::vector<double> counts_;
  // Σc and Σc² cached at build time. Counts are integers, so these are
  // exact regardless of summation order — the property that lets the
  // identity-form distances below match the old per-coordinate merges
  // bit for bit.
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

// Per-thread counters for TNF string encoding. DatabaseToTnfString bumps
// them on every call; the search layer diffs them around heuristic work
// to expose encoding volume as state.tnf_bytes (same pattern as
// Database::ThreadCowStats).
struct TnfEncodeStats {
  uint64_t encodes = 0;
  uint64_t bytes = 0;
};
TnfEncodeStats& ThreadTnfEncodeStats();

// The "databases as strings" view of §3: for each TNF row, the string
// r ⊕ a ⊕ v; rows sorted lexicographically and concatenated. Nulls render
// as "⊥".
std::string DatabaseToTnfString(const Database& db);

}  // namespace tupelo

#endif  // TUPELO_HEURISTICS_TERM_VECTOR_H_
