#include "heuristics/set_based.h"

#include <algorithm>

namespace tupelo {
namespace {

// |a − b| for sorted sets.
int DifferenceSize(const std::set<std::string>& a,
                   const std::set<std::string>& b) {
  int n = 0;
  for (const std::string& s : a) {
    if (!b.contains(s)) ++n;
  }
  return n;
}

// |a ∩ b| for sorted sets.
int IntersectionSize(const std::set<std::string>& a,
                     const std::set<std::string>& b) {
  int n = 0;
  const std::set<std::string>& small = a.size() <= b.size() ? a : b;
  const std::set<std::string>& large = a.size() <= b.size() ? b : a;
  for (const std::string& s : small) {
    if (large.contains(s)) ++n;
  }
  return n;
}

}  // namespace

SymbolSets SymbolSets::FromDatabase(const Database& db) {
  SymbolSets out;
  for (const auto& [rname, relp] : db.relations()) {
    const Relation& rel = *relp;
    out.rels.insert(rname);
    for (const std::string& attr : rel.attributes()) out.atts.insert(attr);
    for (const Tuple& t : rel.tuples()) {
      for (const Value& v : t.values()) {
        if (!v.is_null()) out.values.insert(v.atom());
      }
    }
  }
  return out;
}

int H1Heuristic::Estimate(const Database& state) const {
  SymbolSets x = SymbolSets::FromDatabase(state);
  return DifferenceSize(target_.rels, x.rels) +
         DifferenceSize(target_.atts, x.atts) +
         DifferenceSize(target_.values, x.values);
}

int H2Heuristic::Estimate(const Database& state) const {
  SymbolSets x = SymbolSets::FromDatabase(state);
  return IntersectionSize(target_.rels, x.atts) +
         IntersectionSize(target_.rels, x.values) +
         IntersectionSize(target_.atts, x.rels) +
         IntersectionSize(target_.atts, x.values) +
         IntersectionSize(target_.values, x.rels) +
         IntersectionSize(target_.values, x.atts);
}

int H3Heuristic::Estimate(const Database& state) const {
  return std::max(h1_.Estimate(state), h2_.Estimate(state));
}

namespace {

std::string PairKey(const std::string& att, const std::string& value) {
  std::string key = att;
  key += '\x1f';
  key += value;
  return key;
}

// Collects the (att, value) pair keys and the value-less attributes.
void CollectPairs(const Database& db, std::set<std::string>* pairs,
                  std::set<std::string>* atts_with_values,
                  std::set<std::string>* all_atts) {
  for (const auto& [rname, relp] : db.relations()) {
    const Relation& rel = *relp;
    for (size_t i = 0; i < rel.arity(); ++i) {
      all_atts->insert(rel.attributes()[i]);
      for (const Tuple& t : rel.tuples()) {
        if (t[i].is_null()) continue;
        pairs->insert(PairKey(rel.attributes()[i], t[i].atom()));
        atts_with_values->insert(rel.attributes()[i]);
      }
    }
  }
}

}  // namespace

ColumnPairsHeuristic::ColumnPairsHeuristic(const Database& target) {
  for (const auto& [rname, rel] : target.relations()) {
    target_rels_.insert(rname);
  }
  std::set<std::string> with_values;
  std::set<std::string> all_atts;
  CollectPairs(target, &target_pairs_, &with_values, &all_atts);
  for (const std::string& att : all_atts) {
    if (!with_values.contains(att)) target_bare_atts_.insert(att);
  }
}

int ColumnPairsHeuristic::Estimate(const Database& state) const {
  std::set<std::string> state_pairs;
  std::set<std::string> unused;
  std::set<std::string> state_atts;
  CollectPairs(state, &state_pairs, &unused, &state_atts);

  int missing = 0;
  for (const std::string& rel : target_rels_) {
    if (!state.HasRelation(rel)) ++missing;
  }
  for (const std::string& pair : target_pairs_) {
    if (!state_pairs.contains(pair)) ++missing;
  }
  for (const std::string& att : target_bare_atts_) {
    if (!state_atts.contains(att)) ++missing;
  }
  return missing;
}

}  // namespace tupelo
