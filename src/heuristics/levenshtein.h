#ifndef TUPELO_HEURISTICS_LEVENSHTEIN_H_
#define TUPELO_HEURISTICS_LEVENSHTEIN_H_

#include <cstddef>
#include <string_view>

namespace tupelo {

// Classic Levenshtein edit distance (single-character insert, delete,
// substitute), O(|a|·|b|) time, O(min(|a|,|b|)) space.
size_t LevenshteinDistance(std::string_view a, std::string_view b);

}  // namespace tupelo

#endif  // TUPELO_HEURISTICS_LEVENSHTEIN_H_
