#ifndef TUPELO_HEURISTICS_LEVENSHTEIN_H_
#define TUPELO_HEURISTICS_LEVENSHTEIN_H_

#include <cstddef>
#include <string_view>

namespace tupelo {

// Levenshtein edit distance (single-character insert, delete,
// substitute). Thin wrapper over the dispatched kernel in
// common/simd/edit_distance.h: Myers bit-parallel DP above
// Level::kScalar, the classic O(|a|·|b|) row DP at it. The distance is
// an integer, so every dispatch tier returns the same value.
size_t LevenshteinDistance(std::string_view a, std::string_view b);

}  // namespace tupelo

#endif  // TUPELO_HEURISTICS_LEVENSHTEIN_H_
