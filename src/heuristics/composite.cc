#include "heuristics/composite.h"

#include <algorithm>
#include <cmath>

#include "heuristics/set_based.h"
#include "heuristics/vector_heuristics.h"

namespace tupelo {

MaxHeuristic::MaxHeuristic(
    std::vector<std::unique_ptr<Heuristic>> components)
    : components_(std::move(components)) {
  name_ = "max(";
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) name_ += ",";
    name_ += components_[i]->name();
  }
  name_ += ")";
}

int MaxHeuristic::Estimate(const Database& state) const {
  int best = 0;
  for (const std::unique_ptr<Heuristic>& h : components_) {
    best = std::max(best, h->Estimate(state));
  }
  return best;
}

WeightedSumHeuristic::WeightedSumHeuristic(std::vector<Term> terms)
    : terms_(std::move(terms)) {
  name_ = "sum(";
  for (size_t i = 0; i < terms_.size(); ++i) {
    if (i > 0) name_ += ",";
    name_ += terms_[i].heuristic->name();
  }
  name_ += ")";
}

int WeightedSumHeuristic::Estimate(const Database& state) const {
  double total = 0.0;
  for (const Term& term : terms_) {
    total += term.weight * term.heuristic->Estimate(state);
  }
  return static_cast<int>(std::llround(std::max(0.0, total)));
}

std::unique_ptr<Heuristic> MakeHybridHeuristic(const Database& target,
                                               double cosine_k) {
  std::vector<std::unique_ptr<Heuristic>> components;
  components.push_back(std::make_unique<H1Heuristic>(target));
  components.push_back(std::make_unique<CosineHeuristic>(target, cosine_k));
  return std::make_unique<MaxHeuristic>(std::move(components));
}

}  // namespace tupelo
