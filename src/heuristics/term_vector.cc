#include "heuristics/term_vector.h"

#include <algorithm>
#include <cmath>
#include <string_view>
#include <utility>

#include "common/hash.h"
#include "common/simd/term_merge.h"

namespace tupelo {
namespace {

// Seed of the triple-key hash chain. Any fixed odd constant works; keys
// are in-memory only, never persisted.
constexpr uint64_t kTermKeySeed = 0x74756c6570206b76ULL;

// The '\x1e' null sentinel of the old string keys, kept as the hashed
// value token for null cells so null and the atom "\x1e" stay distinct
// from absent.
constexpr std::string_view kNullToken = "\x1e";

}  // namespace

TermVector TermVector::FromDatabase(const Database& db) {
  size_t cells = 0;
  for (const auto& [rname, relp] : db.relations()) {
    cells += relp->tuples().size() * relp->arity();
  }

  // One key per cell: hash each column's (relation, attribute) prefix
  // once, then extend it per value. Nulls reuse a per-column
  // precomputed key.
  std::vector<uint64_t> cell_keys;
  cell_keys.reserve(cells);
  std::vector<uint64_t> col_key;
  std::vector<uint64_t> col_null_key;
  for (const auto& [rname, relp] : db.relations()) {
    const Relation& rel = *relp;
    const uint64_t rel_hash = HashBytes64(rname, kTermKeySeed);
    col_key.clear();
    col_null_key.clear();
    for (size_t i = 0; i < rel.arity(); ++i) {
      col_key.push_back(HashBytes64(rel.attributes()[i], rel_hash));
      col_null_key.push_back(HashBytes64(kNullToken, col_key.back()));
    }
    for (const Tuple& t : rel.tuples()) {
      for (size_t i = 0; i < rel.arity(); ++i) {
        cell_keys.push_back(t[i].is_null() ? col_null_key[i]
                                           : HashBytes64(t[i].atom(),
                                                         col_key[i]));
      }
    }
  }

  std::sort(cell_keys.begin(), cell_keys.end());

  TermVector tv;
  for (size_t i = 0; i < cell_keys.size();) {
    size_t j = i + 1;
    while (j < cell_keys.size() && cell_keys[j] == cell_keys[i]) ++j;
    tv.keys_.push_back(cell_keys[i]);
    tv.counts_.push_back(static_cast<double>(j - i));
    i = j;
  }
  tv.sum_ = simd::CountSum(tv.counts_.data(), tv.counts_.size());
  tv.sum_sq_ = simd::CountSumSquares(tv.counts_.data(), tv.counts_.size());
  return tv;
}

double TermVector::Norm() const { return std::sqrt(sum_sq_); }

double TermVector::EuclideanDistance(const TermVector& x, const TermVector& y) {
  // Σ(x−y)² = Σx² + Σy² − 2Σxy. Every term is an exact integer, so this
  // equals the per-coordinate sum exactly.
  const double dot = simd::DotMerge(x.keys_.data(), x.counts_.data(),
                                    x.keys_.size(), y.keys_.data(),
                                    y.counts_.data(), y.keys_.size());
  return std::sqrt(x.sum_sq_ + y.sum_sq_ - 2.0 * dot);
}

double TermVector::NormalizedEuclideanDistance(const TermVector& x,
                                               const TermVector& y) {
  // No identity form here: the normalized coordinates x_i/|x| are not
  // exact, and the tests pin exact scale invariance — (2v)/(2|x|) equals
  // v/|x| per coordinate in floating point, which an algebraic
  // rearrangement would not preserve. Stays a per-coordinate merge at
  // every dispatch level.
  double nx = x.Norm();
  double ny = y.Norm();
  double sum = 0.0;
  auto xval = [&](double v) { return nx > 0.0 ? v / nx : 0.0; };
  auto yval = [&](double v) { return ny > 0.0 ? v / ny : 0.0; };
  size_t i = 0;
  size_t j = 0;
  while (i < x.keys_.size() || j < y.keys_.size()) {
    if (j == y.keys_.size() ||
        (i != x.keys_.size() && x.keys_[i] < y.keys_[j])) {
      double d = xval(x.counts_[i]);
      sum += d * d;
      ++i;
    } else if (i == x.keys_.size() || y.keys_[j] < x.keys_[i]) {
      double d = yval(y.counts_[j]);
      sum += d * d;
      ++j;
    } else {
      double d = xval(x.counts_[i]) - yval(y.counts_[j]);
      sum += d * d;
      ++i;
      ++j;
    }
  }
  return std::sqrt(sum);
}

double TermVector::CosineSimilarity(const TermVector& x, const TermVector& y) {
  double nx = x.Norm();
  double ny = y.Norm();
  if (nx == 0.0 || ny == 0.0) return 0.0;
  const double dot = simd::DotMerge(x.keys_.data(), x.counts_.data(),
                                    x.keys_.size(), y.keys_.data(),
                                    y.counts_.data(), y.keys_.size());
  return dot / (nx * ny);
}

double TermVector::JaccardSimilarity(const TermVector& x,
                                     const TermVector& y) {
  // Σmax = Σx + Σy − Σmin, exact for integer counts.
  const double min_sum = simd::MinSumMerge(x.keys_.data(), x.counts_.data(),
                                           x.keys_.size(), y.keys_.data(),
                                           y.counts_.data(), y.keys_.size());
  const double max_sum = x.sum_ + y.sum_ - min_sum;
  if (max_sum == 0.0) return 1.0;  // both empty: identical
  return min_sum / max_sum;
}

TnfEncodeStats& ThreadTnfEncodeStats() {
  thread_local TnfEncodeStats stats;
  return stats;
}

std::string DatabaseToTnfString(const Database& db) {
  constexpr std::string_view kBottom = "⊥";
  size_t cells = 0;
  for (const auto& [rname, relp] : db.relations()) {
    cells += relp->tuples().size() * relp->arity();
  }
  std::vector<std::string> rows;
  rows.reserve(cells);
  size_t total_bytes = 0;
  for (const auto& [rname, relp] : db.relations()) {
    const Relation& rel = *relp;
    for (const Tuple& t : rel.tuples()) {
      for (size_t i = 0; i < rel.arity(); ++i) {
        const std::string& att = rel.attributes()[i];
        const std::string_view v = t[i].is_null()
                                       ? kBottom
                                       : std::string_view(t[i].atom());
        std::string row;
        row.reserve(rname.size() + att.size() + v.size());
        row += rname;
        row += att;
        row += v;
        total_bytes += row.size();
        rows.push_back(std::move(row));
      }
    }
  }
  std::sort(rows.begin(), rows.end());
  std::string out;
  out.reserve(total_bytes);
  for (const std::string& row : rows) out += row;

  TnfEncodeStats& stats = ThreadTnfEncodeStats();
  ++stats.encodes;
  stats.bytes += out.size();
  return out;
}

}  // namespace tupelo
