#include "heuristics/term_vector.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

namespace tupelo {
namespace {

std::string TripleKey(const std::string& rel, const std::string& att,
                      const Value& value) {
  std::string key = rel;
  key += '\x1f';
  key += att;
  key += '\x1f';
  key += value.is_null() ? std::string(1, '\x1e') : value.atom();
  return key;
}

}  // namespace

TermVector TermVector::FromDatabase(const Database& db) {
  TermVector tv;
  for (const auto& [rname, relp] : db.relations()) {
    const Relation& rel = *relp;
    for (const Tuple& t : rel.tuples()) {
      for (size_t i = 0; i < rel.arity(); ++i) {
        tv.counts_[TripleKey(rname, rel.attributes()[i], t[i])] += 1.0;
      }
    }
  }
  return tv;
}

double TermVector::Norm() const {
  double sum = 0.0;
  for (const auto& [key, count] : counts_) sum += count * count;
  return std::sqrt(sum);
}

double TermVector::EuclideanDistance(const TermVector& x, const TermVector& y) {
  double sum = 0.0;
  auto xi = x.counts_.begin();
  auto yi = y.counts_.begin();
  while (xi != x.counts_.end() || yi != y.counts_.end()) {
    if (yi == y.counts_.end() ||
        (xi != x.counts_.end() && xi->first < yi->first)) {
      sum += xi->second * xi->second;
      ++xi;
    } else if (xi == x.counts_.end() || yi->first < xi->first) {
      sum += yi->second * yi->second;
      ++yi;
    } else {
      double d = xi->second - yi->second;
      sum += d * d;
      ++xi;
      ++yi;
    }
  }
  return std::sqrt(sum);
}

double TermVector::NormalizedEuclideanDistance(const TermVector& x,
                                               const TermVector& y) {
  double nx = x.Norm();
  double ny = y.Norm();
  double sum = 0.0;
  auto xi = x.counts_.begin();
  auto yi = y.counts_.begin();
  auto xval = [&](double v) { return nx > 0.0 ? v / nx : 0.0; };
  auto yval = [&](double v) { return ny > 0.0 ? v / ny : 0.0; };
  while (xi != x.counts_.end() || yi != y.counts_.end()) {
    if (yi == y.counts_.end() ||
        (xi != x.counts_.end() && xi->first < yi->first)) {
      double d = xval(xi->second);
      sum += d * d;
      ++xi;
    } else if (xi == x.counts_.end() || yi->first < xi->first) {
      double d = yval(yi->second);
      sum += d * d;
      ++yi;
    } else {
      double d = xval(xi->second) - yval(yi->second);
      sum += d * d;
      ++xi;
      ++yi;
    }
  }
  return std::sqrt(sum);
}

double TermVector::CosineSimilarity(const TermVector& x, const TermVector& y) {
  double nx = x.Norm();
  double ny = y.Norm();
  if (nx == 0.0 || ny == 0.0) return 0.0;
  double dot = 0.0;
  auto xi = x.counts_.begin();
  auto yi = y.counts_.begin();
  while (xi != x.counts_.end() && yi != y.counts_.end()) {
    if (xi->first < yi->first) {
      ++xi;
    } else if (yi->first < xi->first) {
      ++yi;
    } else {
      dot += xi->second * yi->second;
      ++xi;
      ++yi;
    }
  }
  return dot / (nx * ny);
}

double TermVector::JaccardSimilarity(const TermVector& x,
                                     const TermVector& y) {
  double min_sum = 0.0;
  double max_sum = 0.0;
  auto xi = x.counts_.begin();
  auto yi = y.counts_.begin();
  while (xi != x.counts_.end() || yi != y.counts_.end()) {
    if (yi == y.counts_.end() ||
        (xi != x.counts_.end() && xi->first < yi->first)) {
      max_sum += xi->second;
      ++xi;
    } else if (xi == x.counts_.end() || yi->first < xi->first) {
      max_sum += yi->second;
      ++yi;
    } else {
      min_sum += std::min(xi->second, yi->second);
      max_sum += std::max(xi->second, yi->second);
      ++xi;
      ++yi;
    }
  }
  if (max_sum == 0.0) return 1.0;  // both empty: identical
  return min_sum / max_sum;
}

std::string DatabaseToTnfString(const Database& db) {
  std::vector<std::string> rows;
  for (const auto& [rname, relp] : db.relations()) {
    const Relation& rel = *relp;
    for (const Tuple& t : rel.tuples()) {
      for (size_t i = 0; i < rel.arity(); ++i) {
        std::string row = rname;
        row += rel.attributes()[i];
        row += t[i].is_null() ? std::string("⊥") : t[i].atom();
        rows.push_back(std::move(row));
      }
    }
  }
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const std::string& row : rows) out += row;
  return out;
}

}  // namespace tupelo
