#ifndef TUPELO_HEURISTICS_VECTOR_HEURISTICS_H_
#define TUPELO_HEURISTICS_VECTOR_HEURISTICS_H_

#include <string>

#include "heuristics/heuristic.h"
#include "heuristics/term_vector.h"

namespace tupelo {

// hL(x) = round(k · L(string(x), string(t)) / max(|string(x)|, |string(t)|)):
// the normalized Levenshtein heuristic over the sorted-TNF-row string view
// of the databases. k ≥ 1 scales [0,1] to [0,k].
class LevenshteinHeuristic : public Heuristic {
 public:
  LevenshteinHeuristic(const Database& target, double k);
  int Estimate(const Database& state) const override;
  std::string_view name() const override { return "levenshtein"; }

 private:
  std::string target_string_;
  double k_;
};

// hE(x) = round(√Σ(x_i − t_i)²): plain Euclidean distance in term-vector
// space (no scaling constant in the paper).
class EuclideanHeuristic : public Heuristic {
 public:
  explicit EuclideanHeuristic(const Database& target);
  int Estimate(const Database& state) const override;
  std::string_view name() const override { return "euclid"; }

 private:
  TermVector target_;
};

// h|E|(x) = round(k · ‖x/|x| − t/|t|‖): Euclidean distance between the
// L2-normalized term vectors, scaled by k.
class NormalizedEuclideanHeuristic : public Heuristic {
 public:
  NormalizedEuclideanHeuristic(const Database& target, double k);
  int Estimate(const Database& state) const override;
  std::string_view name() const override { return "euclid_norm"; }

 private:
  TermVector target_;
  double k_;
};

// hJ(x) = round(k · (1 − J(x̄, t̄))) with multiset Jaccard J: an extension
// beyond the paper's seven heuristics. Unlike cosine it is sensitive to
// the *amount* of non-shared content, not just the angle — a candidate
// answer to §7's structure+content question, evaluated in
// bench/ablation_hybrid.
class JaccardHeuristic : public Heuristic {
 public:
  JaccardHeuristic(const Database& target, double k);
  int Estimate(const Database& state) const override;
  std::string_view name() const override { return "jaccard"; }

 private:
  TermVector target_;
  double k_;
};

// hcos(x) = round(k · (1 − cos(x̄, t̄))): cosine dissimilarity scaled by k.
class CosineHeuristic : public Heuristic {
 public:
  CosineHeuristic(const Database& target, double k);
  int Estimate(const Database& state) const override;
  std::string_view name() const override { return "cosine"; }

 private:
  TermVector target_;
  double k_;
};

}  // namespace tupelo

#endif  // TUPELO_HEURISTICS_VECTOR_HEURISTICS_H_
