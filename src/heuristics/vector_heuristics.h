#ifndef TUPELO_HEURISTICS_VECTOR_HEURISTICS_H_
#define TUPELO_HEURISTICS_VECTOR_HEURISTICS_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/hash.h"
#include "common/simd/edit_distance.h"
#include "heuristics/heuristic.h"
#include "heuristics/term_vector.h"

namespace tupelo::obs {
class Counter;
}  // namespace tupelo::obs

namespace tupelo {

// hL(x) = round(k · L(string(x), string(t)) / max(|string(x)|, |string(t)|)):
// the normalized Levenshtein heuristic over the sorted-TNF-row string view
// of the databases. k ≥ 1 scales [0,1] to [0,k].
//
// The target string never changes, so its Myers match masks are
// precomputed once (simd::PreparedPattern). State TNF strings are
// memoized in a small LRU keyed by the state's Fp128 fingerprint:
// duplicate states reach the heuristic through different search paths
// and per-state caches shard-miss under parallel beam, so re-encoding is
// common enough to be worth a lock. Hit/miss counts surface as
// heuristic.levenshtein.tnf_hits / tnf_misses via BindMetrics.
class LevenshteinHeuristic : public Heuristic {
 public:
  LevenshteinHeuristic(const Database& target, double k);
  int Estimate(const Database& state) const override;
  std::string_view name() const override { return "levenshtein"; }
  void BindMetrics(obs::MetricRegistry* registry) override;

  uint64_t tnf_cache_hits() const {
    return tnf_hits_.load(std::memory_order_relaxed);
  }
  uint64_t tnf_cache_misses() const {
    return tnf_misses_.load(std::memory_order_relaxed);
  }

 private:
  // Fetch the TNF string of `state` through the memo.
  std::shared_ptr<const std::string> TnfString(const Database& state) const;

  simd::PreparedPattern target_pattern_;
  double k_;

  // LRU memo: fingerprint -> TNF string. shared_ptr values let a hit be
  // used outside the lock even if an insert evicts the entry meanwhile.
  static constexpr size_t kTnfCacheCapacity = 64;
  mutable std::mutex tnf_mutex_;
  mutable std::list<Fp128> tnf_lru_;  // front = most recent
  mutable std::unordered_map<
      Fp128,
      std::pair<std::shared_ptr<const std::string>, std::list<Fp128>::iterator>,
      Fp128Hash>
      tnf_cache_;
  mutable std::atomic<uint64_t> tnf_hits_{0};
  mutable std::atomic<uint64_t> tnf_misses_{0};
  obs::Counter* tnf_hits_counter_ = nullptr;
  obs::Counter* tnf_misses_counter_ = nullptr;
};

// hE(x) = round(√Σ(x_i − t_i)²): plain Euclidean distance in term-vector
// space (no scaling constant in the paper).
class EuclideanHeuristic : public Heuristic {
 public:
  explicit EuclideanHeuristic(const Database& target);
  int Estimate(const Database& state) const override;
  std::string_view name() const override { return "euclid"; }

 private:
  TermVector target_;
};

// h|E|(x) = round(k · ‖x/|x| − t/|t|‖): Euclidean distance between the
// L2-normalized term vectors, scaled by k.
class NormalizedEuclideanHeuristic : public Heuristic {
 public:
  NormalizedEuclideanHeuristic(const Database& target, double k);
  int Estimate(const Database& state) const override;
  std::string_view name() const override { return "euclid_norm"; }

 private:
  TermVector target_;
  double k_;
};

// hJ(x) = round(k · (1 − J(x̄, t̄))) with multiset Jaccard J: an extension
// beyond the paper's seven heuristics. Unlike cosine it is sensitive to
// the *amount* of non-shared content, not just the angle — a candidate
// answer to §7's structure+content question, evaluated in
// bench/ablation_hybrid.
class JaccardHeuristic : public Heuristic {
 public:
  JaccardHeuristic(const Database& target, double k);
  int Estimate(const Database& state) const override;
  std::string_view name() const override { return "jaccard"; }

 private:
  TermVector target_;
  double k_;
};

// hcos(x) = round(k · (1 − cos(x̄, t̄))): cosine dissimilarity scaled by k.
class CosineHeuristic : public Heuristic {
 public:
  CosineHeuristic(const Database& target, double k);
  int Estimate(const Database& state) const override;
  std::string_view name() const override { return "cosine"; }

 private:
  TermVector target_;
  double k_;
};

}  // namespace tupelo

#endif  // TUPELO_HEURISTICS_VECTOR_HEURISTICS_H_
