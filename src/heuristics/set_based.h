#ifndef TUPELO_HEURISTICS_SET_BASED_H_
#define TUPELO_HEURISTICS_SET_BASED_H_

#include <set>
#include <string>

#include "heuristics/heuristic.h"

namespace tupelo {

// The distinct symbols of a database, one set per TNF column: relation
// names (πREL), attribute names (πATT), and non-null data values (πVALUE).
struct SymbolSets {
  std::set<std::string> rels;
  std::set<std::string> atts;
  std::set<std::string> values;

  static SymbolSets FromDatabase(const Database& db);
};

// h0(x) = 0: the blind/brute-force baseline used for comparison in §5.
class BlindHeuristic : public Heuristic {
 public:
  int Estimate(const Database&) const override { return 0; }
  std::string_view name() const override { return "h0"; }
};

// h1(x): symbols of the target missing from x, per TNF column:
//   |πREL(t)−πREL(x)| + |πATT(t)−πATT(x)| + |πVALUE(t)−πVALUE(x)|.
class H1Heuristic : public Heuristic {
 public:
  explicit H1Heuristic(const Database& target)
      : target_(SymbolSets::FromDatabase(target)) {}
  int Estimate(const Database& state) const override;
  std::string_view name() const override { return "h1"; }

 private:
  SymbolSets target_;
};

// h2(x): minimum promotions/demotions — symbols sitting in the wrong TNF
// column: the six pairwise intersections |πREL(t) ∩ πATT(x)| + ... .
class H2Heuristic : public Heuristic {
 public:
  explicit H2Heuristic(const Database& target)
      : target_(SymbolSets::FromDatabase(target)) {}
  int Estimate(const Database& state) const override;
  std::string_view name() const override { return "h2"; }

 private:
  SymbolSets target_;
};

// Extension beyond the paper (§7 asks for a heuristic measuring "both
// content and structure"): like h1, but attributes and values are counted
// *jointly*. A target attribute that carries data is only credited when
// some state column of that name holds one of its target values — so a
// rename that creates the right column name with the wrong data (the trap
// that stalls h1 under IDA* on wide schemas) earns nothing.
//
//   hP(x) = |πREL(t) − πREL(x)|
//         + |π(ATT,VALUE)(t) − π(ATT,VALUE)(x)|   (non-null pairs)
//         + |πATT(t') − πATT(x)|                  (t' = value-less attrs)
class ColumnPairsHeuristic : public Heuristic {
 public:
  explicit ColumnPairsHeuristic(const Database& target);
  int Estimate(const Database& state) const override;
  std::string_view name() const override { return "pairs"; }

 private:
  std::set<std::string> target_rels_;
  // "att\x1fvalue" join keys for non-null target cells.
  std::set<std::string> target_pairs_;
  // Target attributes with no non-null values anywhere.
  std::set<std::string> target_bare_atts_;
};

// h3(x) = max(h1(x), h2(x)).
class H3Heuristic : public Heuristic {
 public:
  explicit H3Heuristic(const Database& target) : h1_(target), h2_(target) {}
  int Estimate(const Database& state) const override;
  std::string_view name() const override { return "h3"; }

 private:
  H1Heuristic h1_;
  H2Heuristic h2_;
};

}  // namespace tupelo

#endif  // TUPELO_HEURISTICS_SET_BASED_H_
