#include "heuristics/heuristic_factory.h"

#include "heuristics/set_based.h"
#include "heuristics/vector_heuristics.h"

namespace tupelo {

const std::vector<HeuristicKind>& AllHeuristicKinds() {
  static const std::vector<HeuristicKind>* const kKinds =
      new std::vector<HeuristicKind>{
          HeuristicKind::kH0,          HeuristicKind::kH1,
          HeuristicKind::kH2,          HeuristicKind::kH3,
          HeuristicKind::kEuclidean,   HeuristicKind::kEuclideanNorm,
          HeuristicKind::kCosine,      HeuristicKind::kLevenshtein,
      };
  return *kKinds;
}

std::string_view HeuristicKindName(HeuristicKind kind) {
  switch (kind) {
    case HeuristicKind::kH0:
      return "h0";
    case HeuristicKind::kH1:
      return "h1";
    case HeuristicKind::kH2:
      return "h2";
    case HeuristicKind::kH3:
      return "h3";
    case HeuristicKind::kLevenshtein:
      return "levenshtein";
    case HeuristicKind::kEuclidean:
      return "euclid";
    case HeuristicKind::kEuclideanNorm:
      return "euclid_norm";
    case HeuristicKind::kCosine:
      return "cosine";
    case HeuristicKind::kJaccard:
      return "jaccard";
    case HeuristicKind::kPairs:
      return "pairs";
  }
  return "unknown";
}

std::optional<HeuristicKind> ParseHeuristicKind(std::string_view name) {
  for (HeuristicKind kind : AllHeuristicKinds()) {
    if (HeuristicKindName(kind) == name) return kind;
  }
  if (name == "jaccard") return HeuristicKind::kJaccard;
  if (name == "pairs") return HeuristicKind::kPairs;
  return std::nullopt;
}

bool HeuristicUsesScale(HeuristicKind kind) {
  switch (kind) {
    case HeuristicKind::kLevenshtein:
    case HeuristicKind::kEuclideanNorm:
    case HeuristicKind::kCosine:
    case HeuristicKind::kJaccard:
      return true;
    default:
      return false;
  }
}

std::string_view SearchAlgorithmName(SearchAlgorithm algo) {
  switch (algo) {
    case SearchAlgorithm::kIda:
      return "ida";
    case SearchAlgorithm::kRbfs:
      return "rbfs";
    case SearchAlgorithm::kAStar:
      return "astar";
    case SearchAlgorithm::kGreedy:
      return "greedy";
    case SearchAlgorithm::kBeam:
      return "beam";
  }
  return "unknown";
}

std::optional<SearchAlgorithm> ParseSearchAlgorithm(std::string_view name) {
  if (name == "ida") return SearchAlgorithm::kIda;
  if (name == "rbfs") return SearchAlgorithm::kRbfs;
  if (name == "astar") return SearchAlgorithm::kAStar;
  if (name == "greedy") return SearchAlgorithm::kGreedy;
  if (name == "beam") return SearchAlgorithm::kBeam;
  return std::nullopt;
}

double DefaultScale(HeuristicKind kind, SearchAlgorithm algo) {
  // §5, Experimental Setup: overall-optimal k per heuristic and algorithm.
  bool rbfs = algo == SearchAlgorithm::kRbfs;
  switch (kind) {
    case HeuristicKind::kEuclideanNorm:
      return rbfs ? 20.0 : 7.0;
    case HeuristicKind::kCosine:
      return rbfs ? 24.0 : 5.0;
    case HeuristicKind::kJaccard:
      // Not in the paper; tuned like cosine (see bench/ablation_k_sweep).
      return rbfs ? 24.0 : 5.0;
    case HeuristicKind::kLevenshtein:
      return rbfs ? 15.0 : 11.0;
    default:
      return 1.0;
  }
}

std::unique_ptr<Heuristic> MakeHeuristic(HeuristicKind kind,
                                         const Database& target,
                                         SearchAlgorithm algo, double k) {
  if (k <= 0.0) k = DefaultScale(kind, algo);
  switch (kind) {
    case HeuristicKind::kH0:
      return std::make_unique<BlindHeuristic>();
    case HeuristicKind::kH1:
      return std::make_unique<H1Heuristic>(target);
    case HeuristicKind::kH2:
      return std::make_unique<H2Heuristic>(target);
    case HeuristicKind::kH3:
      return std::make_unique<H3Heuristic>(target);
    case HeuristicKind::kLevenshtein:
      return std::make_unique<LevenshteinHeuristic>(target, k);
    case HeuristicKind::kEuclidean:
      return std::make_unique<EuclideanHeuristic>(target);
    case HeuristicKind::kEuclideanNorm:
      return std::make_unique<NormalizedEuclideanHeuristic>(target, k);
    case HeuristicKind::kCosine:
      return std::make_unique<CosineHeuristic>(target, k);
    case HeuristicKind::kJaccard:
      return std::make_unique<JaccardHeuristic>(target, k);
    case HeuristicKind::kPairs:
      return std::make_unique<ColumnPairsHeuristic>(target);
  }
  return nullptr;
}

}  // namespace tupelo
