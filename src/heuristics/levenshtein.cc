#include "heuristics/levenshtein.h"

#include <algorithm>
#include <numeric>
#include <vector>

namespace tupelo {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  // Keep the shorter string in the DP row.
  if (a.size() < b.size()) std::swap(a, b);
  if (b.empty()) return a.size();

  std::vector<size_t> row(b.size() + 1);
  std::iota(row.begin(), row.end(), size_t{0});

  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diagonal = row[0];  // row[j-1] of the previous row
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t up = row[j];
      size_t substitute = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({up + 1,          // delete from a
                         row[j - 1] + 1,  // insert into a
                         substitute});
      diagonal = up;
    }
  }
  return row[b.size()];
}

}  // namespace tupelo
