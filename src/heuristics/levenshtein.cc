#include "heuristics/levenshtein.h"

#include "common/simd/edit_distance.h"

namespace tupelo {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  return simd::EditDistance(a, b);
}

}  // namespace tupelo
