#ifndef TUPELO_HEURISTICS_COMPOSITE_H_
#define TUPELO_HEURISTICS_COMPOSITE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "heuristics/heuristic.h"

namespace tupelo {

// Heuristic combinators. The paper's future work (§7) observes that the
// string/vector heuristics measure *content* while h1/h2 measure missing
// *structure*, and asks whether a good multi-purpose heuristic exists;
// these combinators let any mix be composed and evaluated (see
// bench/ablation_hybrid).

// max(h_a(x), h_b(x), ...): dominates each component; never weaker.
class MaxHeuristic : public Heuristic {
 public:
  explicit MaxHeuristic(std::vector<std::unique_ptr<Heuristic>> components);
  int Estimate(const Database& state) const override;
  std::string_view name() const override { return name_; }

 private:
  std::vector<std::unique_ptr<Heuristic>> components_;
  std::string name_;
};

// round(Σ w_i · h_i(x)): blends guidance; with weights summing over 1 it
// sharpens (and further de-admissibilizes) the estimate.
class WeightedSumHeuristic : public Heuristic {
 public:
  struct Term {
    double weight;
    std::unique_ptr<Heuristic> heuristic;
  };
  explicit WeightedSumHeuristic(std::vector<Term> terms);
  int Estimate(const Database& state) const override;
  std::string_view name() const override { return name_; }

 private:
  std::vector<Term> terms_;
  std::string name_;
};

// The natural structure+content hybrid: max(h1, cosine). h1 counts the
// target symbols still missing (structure); the cosine term sees value
// distribution (content).
std::unique_ptr<Heuristic> MakeHybridHeuristic(const Database& target,
                                               double cosine_k);

}  // namespace tupelo

#endif  // TUPELO_HEURISTICS_COMPOSITE_H_
