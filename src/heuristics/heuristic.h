#ifndef TUPELO_HEURISTICS_HEURISTIC_H_
#define TUPELO_HEURISTICS_HEURISTIC_H_

#include <string_view>

#include "relational/database.h"

namespace tupelo {

// A search heuristic h(x): an estimate of the number of transformation
// steps from database state `x` to a fixed target critical instance
// (§3 of the paper). Implementations are constructed around the target and
// must be deterministic and side-effect free; Estimate is called once per
// generated state, so precompute whatever the target allows.
class Heuristic {
 public:
  virtual ~Heuristic() = default;

  // Estimated distance (≥ 0) from `state` to the target.
  virtual int Estimate(const Database& state) const = 0;

  // Stable display name ("h1", "cosine", ...).
  virtual std::string_view name() const = 0;
};

}  // namespace tupelo

#endif  // TUPELO_HEURISTICS_HEURISTIC_H_
