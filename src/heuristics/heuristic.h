#ifndef TUPELO_HEURISTICS_HEURISTIC_H_
#define TUPELO_HEURISTICS_HEURISTIC_H_

#include <span>
#include <string_view>

#include "relational/database.h"

namespace tupelo::obs {
class MetricRegistry;
}  // namespace tupelo::obs

namespace tupelo {

// A search heuristic h(x): an estimate of the number of transformation
// steps from database state `x` to a fixed target critical instance
// (§3 of the paper). Implementations are constructed around the target and
// must be deterministic and side-effect free; Estimate is called once per
// generated state, so precompute whatever the target allows.
class Heuristic {
 public:
  virtual ~Heuristic() = default;

  // Estimated distance (≥ 0) from `state` to the target.
  virtual int Estimate(const Database& state) const = 0;

  // Estimate a batch of states at once: out[i] = Estimate(*states[i]).
  // The search layer funnels frontier expansions through this so
  // implementations can amortize per-call setup; the default is the
  // plain loop, and overrides must return exactly what Estimate would
  // (the scalar/batched parity tests pin this).
  virtual void EstimateBatch(std::span<const Database* const> states,
                             std::span<int> out) const {
    for (size_t i = 0; i < states.size(); ++i) out[i] = Estimate(*states[i]);
  }

  // Stable display name ("h1", "cosine", ...).
  virtual std::string_view name() const = 0;

  // Hook for implementations that keep internal counters (caches,
  // kernels) to publish them. Called by the owning problem when metrics
  // are enabled; default is a no-op. `registry` is never null.
  virtual void BindMetrics(obs::MetricRegistry* /*registry*/) {}
};

}  // namespace tupelo

#endif  // TUPELO_HEURISTICS_HEURISTIC_H_
