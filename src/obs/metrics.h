#ifndef TUPELO_OBS_METRICS_H_
#define TUPELO_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json_writer.h"

namespace tupelo::obs {

// Lightweight, zero-dependency metrics for the discovery pipeline.
//
// A MetricRegistry holds named counters, gauges, and fixed-bucket
// histograms. Instrumented code takes a nullable MetricRegistry* (default
// off); the convention throughout the codebase is to resolve instrument
// pointers once up front and guard every hot-path update with a null
// check, so a disabled run pays one predictable branch per event and no
// allocation. All instruments use relaxed atomics: the future parallel
// search can hammer one registry from many threads without locks on the
// update path (only instrument *creation* takes the registry mutex).
//
// Totals read while other threads are still writing are per-instrument
// consistent but not cross-instrument atomic — fine for progress
// reporting; exact reports are read after the run completes.

// Monotonically increasing event count (states examined, operator
// applications, cumulative nanoseconds, ...).
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time level (peak memory, frontier size). Set overwrites;
// UpdateMax raises the value monotonically (lock-free CAS).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void UpdateMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket histogram over int64 observations (latencies in
// nanoseconds, per-iteration f-bounds, ...). Bucket i counts observations
// v with v <= bounds[i] (and > bounds[i-1]); one implicit overflow bucket
// catches everything above the last bound. Bounds are fixed at creation,
// so Observe is two relaxed adds plus a small branchless-ish scan.
class Histogram {
 public:
  // `bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<int64_t> bounds);

  void Observe(int64_t v) {
    size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<int64_t>& bounds() const { return bounds_; }
  // i in [0, bounds().size()]; the last index is the overflow bucket.
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<int64_t> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

// {start, start*factor, start*factor^2, ...}, `count` entries.
std::vector<int64_t> ExponentialBounds(int64_t start, int64_t factor,
                                       size_t count);

// 1µs .. 1s in powers of 4, in nanoseconds — the default latency buckets.
const std::vector<int64_t>& DefaultLatencyBounds();

// Named instrument store. Instruments are created on first use and live as
// long as the registry; returned references stay valid across later Get*
// calls (node-stable storage). Names are sorted in every export, so two
// runs of the same workload produce byte-comparable reports.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  // `bounds` applies only when the histogram does not exist yet.
  Histogram& GetHistogram(std::string_view name,
                          const std::vector<int64_t>& bounds =
                              DefaultLatencyBounds());

  // Lookup without creation; nullptr when absent.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  // Convenience for tests and report code: 0 when the counter is absent.
  uint64_t CounterValue(std::string_view name) const;

  // Human-readable aligned table, instruments sorted by name.
  std::string ToString() const;

  // Stable JSON document:
  //   {"counters": {...}, "gauges": {...},
  //    "histograms": {name: {"count": c, "sum": s,
  //                          "buckets": [{"le": bound, "count": n}, ...,
  //                                      {"le": "+inf", "count": n}]}}}
  JsonValue ToJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// RAII wall-clock timer. On destruction adds the elapsed nanoseconds to
// `nanos` (a cumulative counter) and/or observes them into `histogram`.
// With both targets null the clock is never read — a ScopedTimer over a
// disabled registry costs two null checks.
class ScopedTimer {
 public:
  explicit ScopedTimer(Counter* nanos, Histogram* histogram = nullptr)
      : nanos_(nanos), histogram_(histogram) {
    if (nanos_ != nullptr || histogram_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (nanos_ == nullptr && histogram_ == nullptr) return;
    int64_t ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - start_)
                     .count();
    if (nanos_ != nullptr) nanos_->Increment(static_cast<uint64_t>(ns));
    if (histogram_ != nullptr) histogram_->Observe(ns);
  }

 private:
  Counter* nanos_;
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace tupelo::obs

#endif  // TUPELO_OBS_METRICS_H_
