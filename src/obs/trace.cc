#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace tupelo::obs {

namespace {

// Keys the thread-local ring cache so a thread can tell "this session"
// apart from a dead one reallocated at the same address. Never reused.
std::atomic<uint64_t> g_next_session_id{1};

struct TlsSlot {
  uint64_t session_id = 0;
  void* buffer = nullptr;
};
thread_local TlsSlot tls_slot;

size_t RingCapacityFor(size_t buffer_kb, size_t record_size) {
  size_t records = (std::max<size_t>(buffer_kb, 1) * 1024) / record_size;
  size_t cap = 64;
  while (cap * 2 <= records) cap *= 2;
  return cap;
}

}  // namespace

std::string_view TraceCategoryName(TraceCategory cat) {
  switch (cat) {
    case TraceCategory::kSearch:
      return "search";
    case TraceCategory::kExpand:
      return "expand";
    case TraceCategory::kHeuristic:
      return "heuristic";
    case TraceCategory::kExecutor:
      return "executor";
    case TraceCategory::kPool:
      return "pool";
    case TraceCategory::kDriver:
      return "driver";
    case TraceCategory::kVerify:
      return "verify";
    case TraceCategory::kCheckpoint:
      return "checkpoint";
    case TraceCategory::kFault:
      return "fault";
  }
  return "unknown";
}

TraceSession::TraceSession(size_t buffer_kb)
    : id_(g_next_session_id.fetch_add(1, std::memory_order_relaxed)),
      capacity_(RingCapacityFor(buffer_kb, sizeof(Record))),
      epoch_(std::chrono::steady_clock::now()) {}

TraceSession::~TraceSession() = default;

TraceSession::ThreadBuffer* TraceSession::RegisterThisThread() {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = by_thread_.try_emplace(std::this_thread::get_id());
  if (inserted) {
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->tid = static_cast<uint32_t>(buffers_.size());
    buffer->mask = capacity_ - 1;
    buffer->ring = std::make_unique<Record[]>(capacity_);
    it->second = buffer.get();
    buffers_.push_back(std::move(buffer));
  }
  tls_slot.session_id = id_;
  tls_slot.buffer = it->second;
  return it->second;
}

void TraceSession::Emit(TracePhase phase, TraceCategory cat, const char* name,
                        const char* k1, int64_t v1, const char* k2,
                        int64_t v2) {
  ThreadBuffer* buffer = tls_slot.session_id == id_
                             ? static_cast<ThreadBuffer*>(tls_slot.buffer)
                             : RegisterThisThread();
  uint64_t ts = NowNs();
  uint64_t head = buffer->head.load(std::memory_order_relaxed);
  Record& r = buffer->ring[head & buffer->mask];
  r.ts_ns = ts;
  r.name = name;
  r.k1 = k1;
  r.k2 = k2;
  r.v1 = v1;
  r.v2 = v2;
  r.cat = cat;
  r.phase = phase;
  buffer->head.store(head + 1, std::memory_order_release);
}

uint64_t TraceSession::events_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    total += buffer->head.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t TraceSession::events_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t dropped = 0;
  for (const auto& buffer : buffers_) {
    uint64_t head = buffer->head.load(std::memory_order_relaxed);
    if (head > capacity_) dropped += head - capacity_;
  }
  return dropped;
}

size_t TraceSession::thread_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buffers_.size();
}

std::vector<TraceExportEvent> TraceSession::Collect() const {
  std::vector<TraceExportEvent> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    uint64_t head = buffer->head.load(std::memory_order_acquire);
    uint64_t n = std::min<uint64_t>(head, capacity_);
    uint64_t first = head - n;
    // B/E reconciliation: ring overwrite evicts oldest-first, so the
    // retained window can open with E events whose B is gone (discarded
    // here) and close with B events whose E was never emitted (closed at
    // the window's last timestamp). RAII emission guarantees strict
    // nesting per thread, so a depth stack is sufficient.
    std::vector<const Record*> open_spans;
    std::vector<TraceExportEvent> events;
    events.reserve(n);
    uint64_t last_ts = 0;
    auto append = [&](const Record& r, TracePhase phase, uint64_t ts) {
      TraceExportEvent e;
      e.ts_ns = ts;
      e.tid = buffer->tid;
      e.phase = phase;
      e.cat = r.cat;
      e.name = r.name;
      if (r.k1 != nullptr) e.args.emplace_back(r.k1, r.v1);
      if (r.k2 != nullptr) e.args.emplace_back(r.k2, r.v2);
      events.push_back(std::move(e));
    };
    for (uint64_t i = first; i < head; ++i) {
      const Record& r = buffer->ring[i & buffer->mask];
      last_ts = std::max(last_ts, r.ts_ns);
      switch (r.phase) {
        case TracePhase::kBegin:
          open_spans.push_back(&r);
          append(r, TracePhase::kBegin, r.ts_ns);
          break;
        case TracePhase::kEnd:
          if (open_spans.empty()) break;  // orphan: its B was overwritten
          open_spans.pop_back();
          append(r, TracePhase::kEnd, r.ts_ns);
          break;
        case TracePhase::kInstant:
          append(r, TracePhase::kInstant, r.ts_ns);
          break;
      }
    }
    // Close spans still open at collection time, innermost first.
    while (!open_spans.empty()) {
      const Record* b = open_spans.back();
      open_spans.pop_back();
      Record closer = *b;
      closer.k1 = nullptr;
      closer.k2 = nullptr;
      append(closer, TracePhase::kEnd, last_ts);
    }
    out.insert(out.end(), std::make_move_iterator(events.begin()),
               std::make_move_iterator(events.end()));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceExportEvent& a, const TraceExportEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

JsonValue TraceSession::ToChromeJson() const {
  std::vector<TraceExportEvent> events = Collect();
  JsonValue root = JsonValue::Object();
  root["displayTimeUnit"] = "ms";
  JsonValue& list = root["traceEvents"];
  list = JsonValue::Array();
  size_t threads = thread_count();
  {
    JsonValue meta = JsonValue::Object();
    meta["name"] = "process_name";
    meta["ph"] = "M";
    meta["pid"] = static_cast<int64_t>(1);
    meta["tid"] = static_cast<int64_t>(0);
    meta["args"]["name"] = "tupelo";
    list.Append(std::move(meta));
  }
  for (size_t t = 0; t < threads; ++t) {
    JsonValue meta = JsonValue::Object();
    meta["name"] = "thread_name";
    meta["ph"] = "M";
    meta["pid"] = static_cast<int64_t>(1);
    meta["tid"] = static_cast<int64_t>(t);
    meta["args"]["name"] =
        t == 0 ? std::string("main") : "worker-" + std::to_string(t);
    list.Append(std::move(meta));
  }
  for (const TraceExportEvent& e : events) {
    JsonValue ev = JsonValue::Object();
    ev["name"] = e.name;
    ev["cat"] = std::string(TraceCategoryName(e.cat));
    switch (e.phase) {
      case TracePhase::kBegin:
        ev["ph"] = "B";
        break;
      case TracePhase::kEnd:
        ev["ph"] = "E";
        break;
      case TracePhase::kInstant:
        ev["ph"] = "i";
        ev["s"] = "t";  // instant scope: thread
        break;
    }
    // Chrome's ts unit is microseconds; keep nanosecond precision in the
    // fraction so adjacent hot-path events stay ordered.
    ev["ts"] = static_cast<double>(e.ts_ns) / 1000.0;
    ev["pid"] = static_cast<int64_t>(1);
    ev["tid"] = static_cast<int64_t>(e.tid);
    if (!e.args.empty()) {
      JsonValue& args = ev["args"];
      for (const auto& [key, value] : e.args) args[key] = value;
    }
    list.Append(std::move(ev));
  }
  return root;
}

bool TraceSession::WriteChromeJson(const std::string& path) const {
  std::string text = ToChromeJson().Dump(1);
  text.push_back('\n');
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "trace: cannot open %s for writing\n", path.c_str());
    return false;
  }
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  bool ok = written == text.size() && std::fclose(f) == 0;
  if (!ok) std::fprintf(stderr, "trace: short write to %s\n", path.c_str());
  return ok;
}

// Flight-record binary layout (all integers little-endian, as written by
// memcpy on the only platforms we target):
//   u32 magic "TFR1"          u32 version (1)
//   u32 thread_count          u32 string_count
//   string_count × { u32 len, bytes }       (event/arg-key/category names)
//   u64 event_count
//   event_count × { u64 ts_ns, u32 tid, u32 name_idx, u32 cat_idx,
//                   u8 phase ('B'/'E'/'i'), u8 nargs,
//                   nargs × { u32 key_idx, i64 value } }
namespace {

constexpr uint32_t kFlightRecordMagic = 0x31524654;  // "TFR1"
constexpr uint32_t kFlightRecordVersion = 1;

void PutU32(std::string& out, uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(std::string& out, uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutI64(std::string& out, int64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}
  bool U32(uint32_t* v) { return Copy(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Copy(v, sizeof(*v)); }
  bool I64(int64_t* v) { return Copy(v, sizeof(*v)); }
  bool U8(uint8_t* v) { return Copy(v, sizeof(*v)); }
  bool Bytes(std::string* out, size_t n) {
    if (bytes_.size() - pos_ < n) return false;
    out->assign(bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  bool Copy(void* v, size_t n) {
    if (bytes_.size() - pos_ < n) return false;
    std::memcpy(v, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace

std::string TraceSession::SerializeFlightRecord() const {
  std::vector<TraceExportEvent> events = Collect();
  std::vector<std::string> strings;
  std::map<std::string, uint32_t> index;
  auto intern = [&](const std::string& s) {
    auto [it, inserted] =
        index.try_emplace(s, static_cast<uint32_t>(strings.size()));
    if (inserted) strings.push_back(s);
    return it->second;
  };
  // Intern everything first so the table precedes the events.
  struct Packed {
    uint64_t ts_ns;
    uint32_t tid;
    uint32_t name_idx;
    uint32_t cat_idx;
    uint8_t phase;
    std::vector<std::pair<uint32_t, int64_t>> args;
  };
  std::vector<Packed> packed;
  packed.reserve(events.size());
  for (const TraceExportEvent& e : events) {
    Packed p;
    p.ts_ns = e.ts_ns;
    p.tid = e.tid;
    p.name_idx = intern(e.name);
    p.cat_idx = intern(std::string(TraceCategoryName(e.cat)));
    p.phase = e.phase == TracePhase::kBegin  ? 'B'
              : e.phase == TracePhase::kEnd ? 'E'
                                            : 'i';
    for (const auto& [key, value] : e.args) {
      p.args.emplace_back(intern(key), value);
    }
    packed.push_back(std::move(p));
  }
  std::string out;
  PutU32(out, kFlightRecordMagic);
  PutU32(out, kFlightRecordVersion);
  PutU32(out, static_cast<uint32_t>(thread_count()));
  PutU32(out, static_cast<uint32_t>(strings.size()));
  for (const std::string& s : strings) {
    PutU32(out, static_cast<uint32_t>(s.size()));
    out.append(s);
  }
  PutU64(out, events.size());
  for (const Packed& p : packed) {
    PutU64(out, p.ts_ns);
    PutU32(out, p.tid);
    PutU32(out, p.name_idx);
    PutU32(out, p.cat_idx);
    out.push_back(static_cast<char>(p.phase));
    out.push_back(static_cast<char>(p.args.size()));
    for (const auto& [key_idx, value] : p.args) {
      PutU32(out, key_idx);
      PutI64(out, value);
    }
  }
  return out;
}

bool TraceSession::DumpFlightRecord(const std::string& path) const {
  std::string bytes = SerializeFlightRecord();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "trace: cannot open %s for writing\n", path.c_str());
    return false;
  }
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  bool ok = written == bytes.size() && std::fclose(f) == 0;
  if (!ok) std::fprintf(stderr, "trace: short write to %s\n", path.c_str());
  return ok;
}

namespace {

TraceCategory CategoryFromName(std::string_view name) {
  for (TraceCategory cat :
       {TraceCategory::kSearch, TraceCategory::kExpand,
        TraceCategory::kHeuristic, TraceCategory::kExecutor,
        TraceCategory::kPool, TraceCategory::kDriver, TraceCategory::kVerify,
        TraceCategory::kCheckpoint, TraceCategory::kFault}) {
    if (TraceCategoryName(cat) == name) return cat;
  }
  return TraceCategory::kSearch;
}

}  // namespace

Result<FlightRecord> ParseFlightRecord(std::string_view bytes) {
  ByteReader reader(bytes);
  uint32_t magic = 0, version = 0, threads = 0, string_count = 0;
  if (!reader.U32(&magic) || magic != kFlightRecordMagic) {
    return Status::ParseError("flight record: bad magic");
  }
  if (!reader.U32(&version) || version != kFlightRecordVersion) {
    return Status::ParseError("flight record: unsupported version");
  }
  if (!reader.U32(&threads) || !reader.U32(&string_count)) {
    return Status::ParseError("flight record: truncated header");
  }
  std::vector<std::string> strings;
  strings.reserve(string_count);
  for (uint32_t i = 0; i < string_count; ++i) {
    uint32_t len = 0;
    std::string s;
    if (!reader.U32(&len) || len > reader.remaining() ||
        !reader.Bytes(&s, len)) {
      return Status::ParseError("flight record: truncated string table");
    }
    strings.push_back(std::move(s));
  }
  auto string_at = [&](uint32_t idx) -> const std::string* {
    return idx < strings.size() ? &strings[idx] : nullptr;
  };
  uint64_t event_count = 0;
  if (!reader.U64(&event_count)) {
    return Status::ParseError("flight record: truncated event count");
  }
  FlightRecord record;
  record.thread_count = threads;
  record.events.reserve(std::min<uint64_t>(event_count, 1u << 20));
  for (uint64_t i = 0; i < event_count; ++i) {
    TraceExportEvent e;
    uint32_t name_idx = 0, cat_idx = 0;
    uint8_t phase = 0, nargs = 0;
    if (!reader.U64(&e.ts_ns) || !reader.U32(&e.tid) ||
        !reader.U32(&name_idx) || !reader.U32(&cat_idx) ||
        !reader.U8(&phase) || !reader.U8(&nargs)) {
      return Status::ParseError("flight record: truncated event");
    }
    const std::string* name = string_at(name_idx);
    const std::string* cat = string_at(cat_idx);
    if (name == nullptr || cat == nullptr) {
      return Status::ParseError("flight record: string index out of range");
    }
    e.name = *name;
    e.cat = CategoryFromName(*cat);
    switch (phase) {
      case 'B':
        e.phase = TracePhase::kBegin;
        break;
      case 'E':
        e.phase = TracePhase::kEnd;
        break;
      case 'i':
        e.phase = TracePhase::kInstant;
        break;
      default:
        return Status::ParseError("flight record: unknown event phase");
    }
    for (uint8_t a = 0; a < nargs; ++a) {
      uint32_t key_idx = 0;
      int64_t value = 0;
      if (!reader.U32(&key_idx) || !reader.I64(&value)) {
        return Status::ParseError("flight record: truncated event args");
      }
      const std::string* key = string_at(key_idx);
      if (key == nullptr) {
        return Status::ParseError("flight record: string index out of range");
      }
      e.args.emplace_back(*key, value);
    }
    record.events.push_back(std::move(e));
  }
  return record;
}

Result<FlightRecord> LoadFlightRecord(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("flight record: cannot open " + path);
  }
  std::string bytes;
  char chunk[65536];
  size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.append(chunk, n);
  }
  std::fclose(f);
  return ParseFlightRecord(bytes);
}

}  // namespace tupelo::obs
