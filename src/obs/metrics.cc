#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace tupelo::obs {

Histogram::Histogram(std::vector<int64_t> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  assert(!bounds_.empty());
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

std::vector<int64_t> ExponentialBounds(int64_t start, int64_t factor,
                                       size_t count) {
  std::vector<int64_t> bounds;
  bounds.reserve(count);
  int64_t v = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

const std::vector<int64_t>& DefaultLatencyBounds() {
  static const std::vector<int64_t> kBounds =
      ExponentialBounds(1'000, 4, 11);  // 1µs .. ~4s
  return kBounds;
}

Counter& MetricRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricRegistry::GetHistogram(std::string_view name,
                                        const std::vector<int64_t>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(bounds))
             .first;
  }
  return *it->second;
}

const Counter* MetricRegistry::FindCounter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricRegistry::FindGauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricRegistry::FindHistogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

uint64_t MetricRegistry::CounterValue(std::string_view name) const {
  const Counter* c = FindCounter(name);
  return c == nullptr ? 0 : c->value();
}

std::string MetricRegistry::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char buf[64];
  if (!counters_.empty()) {
    out += "counters:\n";
    for (const auto& [name, c] : counters_) {
      std::snprintf(buf, sizeof(buf), "%20llu",
                    static_cast<unsigned long long>(c->value()));
      out += "  " + name;
      if (name.size() < 44) out += std::string(44 - name.size(), ' ');
      out += buf;
      out += "\n";
    }
  }
  if (!gauges_.empty()) {
    out += "gauges:\n";
    for (const auto& [name, g] : gauges_) {
      std::snprintf(buf, sizeof(buf), "%20lld",
                    static_cast<long long>(g->value()));
      out += "  " + name;
      if (name.size() < 44) out += std::string(44 - name.size(), ' ');
      out += buf;
      out += "\n";
    }
  }
  if (!histograms_.empty()) {
    out += "histograms:\n";
    for (const auto& [name, h] : histograms_) {
      std::snprintf(buf, sizeof(buf), " count=%llu sum=%lld",
                    static_cast<unsigned long long>(h->count()),
                    static_cast<long long>(h->sum()));
      out += "  " + name + buf + " [";
      for (size_t i = 0; i <= h->bounds().size(); ++i) {
        uint64_t n = h->bucket_count(i);
        if (n == 0) continue;
        if (out.back() != '[') out += ' ';
        if (i < h->bounds().size()) {
          std::snprintf(buf, sizeof(buf), "le%lld:%llu",
                        static_cast<long long>(h->bounds()[i]),
                        static_cast<unsigned long long>(n));
        } else {
          std::snprintf(buf, sizeof(buf), "inf:%llu",
                        static_cast<unsigned long long>(n));
        }
        out += buf;
      }
      out += "]\n";
    }
  }
  return out;
}

JsonValue MetricRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonValue doc = JsonValue::Object();
  JsonValue& counters = doc["counters"];
  counters = JsonValue::Object();
  for (const auto& [name, c] : counters_) {
    counters[name] = c->value();
  }
  JsonValue& gauges = doc["gauges"];
  gauges = JsonValue::Object();
  for (const auto& [name, g] : gauges_) {
    gauges[name] = g->value();
  }
  JsonValue& histograms = doc["histograms"];
  histograms = JsonValue::Object();
  for (const auto& [name, h] : histograms_) {
    JsonValue entry = JsonValue::Object();
    entry["count"] = h->count();
    entry["sum"] = h->sum();
    JsonValue buckets = JsonValue::Array();
    for (size_t i = 0; i <= h->bounds().size(); ++i) {
      JsonValue bucket = JsonValue::Object();
      if (i < h->bounds().size()) {
        bucket["le"] = h->bounds()[i];
      } else {
        bucket["le"] = "+inf";
      }
      bucket["count"] = h->bucket_count(i);
      buckets.Append(std::move(bucket));
    }
    entry["buckets"] = std::move(buckets);
    histograms[name] = std::move(entry);
  }
  return doc;
}

}  // namespace tupelo::obs
