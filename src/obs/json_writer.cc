#include "obs/json_writer.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace tupelo::obs {

int64_t JsonValue::as_int() const {
  switch (kind_) {
    case Kind::kInt:
      return int_;
    case Kind::kUint:
      return static_cast<int64_t>(uint_);
    case Kind::kDouble:
      return static_cast<int64_t>(double_);
    default:
      return 0;
  }
}

uint64_t JsonValue::as_uint() const {
  switch (kind_) {
    case Kind::kInt:
      return int_ < 0 ? 0 : static_cast<uint64_t>(int_);
    case Kind::kUint:
      return uint_;
    case Kind::kDouble:
      return double_ < 0 ? 0 : static_cast<uint64_t>(double_);
    default:
      return 0;
  }
}

double JsonValue::as_double() const {
  switch (kind_) {
    case Kind::kInt:
      return static_cast<double>(int_);
    case Kind::kUint:
      return static_cast<double>(uint_);
    case Kind::kDouble:
      return double_;
    default:
      return 0.0;
  }
}

JsonValue& JsonValue::operator[](std::string_view key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  for (auto& [k, v] : members_) {
    if (k == key) return v;
  }
  members_.emplace_back(std::string(key), JsonValue());
  return members_.back().second;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::Append(JsonValue element) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  elements_.push_back(std::move(element));
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

void AppendNewlineIndent(std::string& out, int indent, int depth) {
  out.push_back('\n');
  out.append(static_cast<size_t>(indent) * static_cast<size_t>(depth), ' ');
}

}  // namespace

void JsonValue::DumpTo(std::string& out, int indent, int depth) const {
  char buf[40];
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInt:
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(int_));
      out += buf;
      break;
    case Kind::kUint:
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(uint_));
      out += buf;
      break;
    case Kind::kDouble:
      std::snprintf(buf, sizeof(buf), "%.17g", double_);
      out += buf;
      break;
    case Kind::kString:
      out += JsonEscape(string_);
      break;
    case Kind::kArray: {
      if (elements_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (size_t i = 0; i < elements_.size(); ++i) {
        if (i > 0) out.push_back(',');
        if (indent >= 0) AppendNewlineIndent(out, indent, depth + 1);
        elements_[i].DumpTo(out, indent, depth + 1);
      }
      if (indent >= 0) AppendNewlineIndent(out, indent, depth);
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out.push_back(',');
        if (indent >= 0) AppendNewlineIndent(out, indent, depth + 1);
        out += JsonEscape(members_[i].first);
        out.push_back(':');
        if (indent >= 0) out.push_back(' ');
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (indent >= 0) AppendNewlineIndent(out, indent, depth);
      out.push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Run() {
    TUPELO_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing characters after JSON value at " +
                                std::to_string(pos_));
    }
    return v;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Status::ParseError(std::string("expected '") + c + "' at " +
                                std::to_string(pos_));
    }
    return Status::OK();
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Status::ParseError("unexpected end of JSON");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        TUPELO_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue(std::move(s));
      }
      case 't':
        TUPELO_RETURN_IF_ERROR(ExpectWord("true"));
        return JsonValue(true);
      case 'f':
        TUPELO_RETURN_IF_ERROR(ExpectWord("false"));
        return JsonValue(false);
      case 'n':
        TUPELO_RETURN_IF_ERROR(ExpectWord("null"));
        return JsonValue();
      default:
        return ParseNumber();
    }
  }

  Status ExpectWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Status::ParseError("invalid literal at " + std::to_string(pos_));
    }
    pos_ += word.size();
    return Status::OK();
  }

  Result<JsonValue> ParseObject() {
    TUPELO_RETURN_IF_ERROR(Expect('{'));
    JsonValue obj = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return obj;
    while (true) {
      SkipWhitespace();
      TUPELO_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      TUPELO_RETURN_IF_ERROR(Expect(':'));
      TUPELO_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      obj[key] = std::move(v);
      SkipWhitespace();
      if (Consume('}')) return obj;
      TUPELO_RETURN_IF_ERROR(Expect(','));
    }
  }

  Result<JsonValue> ParseArray() {
    TUPELO_RETURN_IF_ERROR(Expect('['));
    JsonValue arr = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return arr;
    while (true) {
      TUPELO_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      arr.Append(std::move(v));
      SkipWhitespace();
      if (Consume(']')) return arr;
      TUPELO_RETURN_IF_ERROR(Expect(','));
    }
  }

  Result<std::string> ParseString() {
    TUPELO_RETURN_IF_ERROR(Expect('"'));
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::ParseError("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Status::ParseError("invalid \\u escape");
          }
          // UTF-8 encode (BMP only; surrogate pairs are not produced by
          // Dump and are rejected).
          if (code >= 0xD800 && code <= 0xDFFF) {
            return Status::ParseError("surrogate \\u escapes unsupported");
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Status::ParseError("invalid escape character");
      }
    }
    return Status::ParseError("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool is_double = false;
    if (Consume('.')) {
      is_double = true;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") {
      return Status::ParseError("invalid number at " + std::to_string(start));
    }
    if (is_double) {
      return JsonValue(std::strtod(token.c_str(), nullptr));
    }
    if (token[0] == '-') {
      return JsonValue(static_cast<int64_t>(
          std::strtoll(token.c_str(), nullptr, 10)));
    }
    uint64_t u = std::strtoull(token.c_str(), nullptr, 10);
    // Small non-negative integers stay in the int lane so that a
    // Dump/Parse cycle of JsonValue(int64_t) compares equal by kind.
    if (u <= static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
      return JsonValue(static_cast<int64_t>(u));
    }
    return JsonValue(u);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).Run();
}

}  // namespace tupelo::obs
