#ifndef TUPELO_OBS_TRACE_H_
#define TUPELO_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "obs/json_writer.h"

namespace tupelo::obs {

// Structured tracing for the discovery pipeline: the span-level companion
// to MetricRegistry (metrics.h). Where the registry answers "how many",
// a TraceSession answers "where did the wall clock go" — which rung,
// which beam level, which operator chain, which worker thread sat idle.
//
// Model: instrumented code emits *spans* (begin/end pairs bracketing a
// scope, usually via the TraceSpan RAII helper) and *instants* (point
// events) into the session. Every event carries a steady-clock nanosecond
// timestamp relative to session start, the emitting thread's track id, a
// category, a name, and up to two small integer key/value payload args.
//
// The hot path is allocation-free and lock-free: each thread owns a
// bounded ring buffer of fixed-size records (registered once per thread
// under the session mutex, cached in a thread-local slot afterwards), and
// an emit is one timestamp read plus one store into the ring. When a ring
// wraps, the oldest events are overwritten and counted as dropped — the
// session always holds the *last* N events per thread, which is exactly
// the flight-recorder contract (capture what the run was doing when it
// died). Event names, categories, and arg keys must be string literals
// (or otherwise outlive the session): only the pointer is recorded.
//
// Instrumented code takes a nullable TraceSession* (same convention as
// MetricRegistry*): resolve once, guard each emit with a null check, and
// a disabled run pays one predictable branch per event.
//
// Exports:
//  - ToChromeJson()/WriteChromeJson(): Chrome trace-event JSON ("JSON
//    Object Format" with a traceEvents list) loadable in Perfetto and
//    chrome://tracing. B/E pairs are reconciled per thread before export
//    (ring overwrite can orphan an E whose B was evicted; orphans are
//    discarded, still-open spans are closed at the last timestamp), so
//    the exported stream always has matched pairs.
//  - SerializeFlightRecord()/DumpFlightRecord(): a compact binary form of
//    the same reconciled event list (magic "TFR1"), written by the
//    flight-recorder trigger paths and parsed back by ParseFlightRecord
//    for tools/trace_report and the fault-campaign dump self-check.

enum class TraceCategory : uint8_t {
  kSearch,      // algorithm iterations/levels, state visits, goals
  kExpand,      // MappingProblem::Expand successor generation
  kHeuristic,   // heuristic evaluation (cache misses only)
  kExecutor,    // fira::Executor::ApplyOp per-operator work
  kPool,        // ThreadPool task execution
  kDriver,      // Tupelo::Discover rung ladder, simplify
  kVerify,      // mapping verification replay
  kCheckpoint,  // checkpoint writes / resume loads
  kFault,       // fault-injection fires (flight-recorder trigger)
};

std::string_view TraceCategoryName(TraceCategory cat);

enum class TracePhase : uint8_t {
  kBegin,    // Chrome "B"
  kEnd,      // Chrome "E"
  kInstant,  // Chrome "i"
};

// One event as read back out of a session (or parsed from a flight
// record): strings materialized, args expanded. The in-ring record is a
// private fixed-size POD; this is the export/analysis form.
struct TraceExportEvent {
  uint64_t ts_ns = 0;  // nanoseconds since session start
  uint32_t tid = 0;    // session-local thread track id (dense from 0)
  TracePhase phase = TracePhase::kInstant;
  TraceCategory cat = TraceCategory::kSearch;
  std::string name;
  // Up to two key/value payload args, in emission order.
  std::vector<std::pair<std::string, int64_t>> args;
};

class TraceSession {
 public:
  // Each thread that emits gets its own ring of `buffer_kb` kibibytes
  // (rounded down to a power-of-two record count, minimum 64 records).
  explicit TraceSession(size_t buffer_kb = 256);
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  void EmitBegin(TraceCategory cat, const char* name,
                 const char* k1 = nullptr, int64_t v1 = 0,
                 const char* k2 = nullptr, int64_t v2 = 0) {
    Emit(TracePhase::kBegin, cat, name, k1, v1, k2, v2);
  }
  void EmitEnd(TraceCategory cat, const char* name,
               const char* k1 = nullptr, int64_t v1 = 0,
               const char* k2 = nullptr, int64_t v2 = 0) {
    Emit(TracePhase::kEnd, cat, name, k1, v1, k2, v2);
  }
  void EmitInstant(TraceCategory cat, const char* name,
                   const char* k1 = nullptr, int64_t v1 = 0,
                   const char* k2 = nullptr, int64_t v2 = 0) {
    if (cat == TraceCategory::kFault) {
      faults_.fetch_add(1, std::memory_order_relaxed);
    }
    Emit(TracePhase::kInstant, cat, name, k1, v1, k2, v2);
  }

  // Total events ever emitted / overwritten by ring wraparound. Reading
  // while other threads emit gives a per-thread-consistent snapshot.
  uint64_t events_recorded() const;
  uint64_t events_dropped() const;
  // kFault instants emitted (fault-injection fires) — a flight-recorder
  // trigger condition.
  uint64_t fault_count() const {
    return faults_.load(std::memory_order_relaxed);
  }
  // Threads that have emitted at least one event.
  size_t thread_count() const;
  // Capacity of one per-thread ring, in records.
  size_t ring_capacity() const { return capacity_; }

  // The retained (last-N, B/E-reconciled) events of every thread, merged
  // and sorted by timestamp. Callers must be quiescent: no concurrent
  // emits on other threads (post-join/-Wait reads are fine).
  std::vector<TraceExportEvent> Collect() const;

  // Chrome trace-event JSON: {"traceEvents":[...], "displayTimeUnit":..}
  // with per-thread name metadata. ts is microseconds (Chrome convention).
  JsonValue ToChromeJson() const;
  // Writes ToChromeJson() to `path`; false (with a stderr note) on I/O
  // failure.
  bool WriteChromeJson(const std::string& path) const;

  // Compact binary flight record of Collect() (format: trace.cc,
  // kFlightRecordMagic). DumpFlightRecord writes it to `path`.
  std::string SerializeFlightRecord() const;
  bool DumpFlightRecord(const std::string& path) const;

 private:
  struct Record {
    uint64_t ts_ns;
    const char* name;
    const char* k1;
    const char* k2;
    int64_t v1;
    int64_t v2;
    TraceCategory cat;
    TracePhase phase;
  };
  struct ThreadBuffer {
    uint32_t tid = 0;
    size_t mask = 0;  // capacity - 1
    std::unique_ptr<Record[]> ring;
    // Total events emitted by this thread; the ring holds the last
    // min(head, capacity) of them. Single writer; release store pairs
    // with the acquire load in Collect().
    std::atomic<uint64_t> head{0};
  };

  void Emit(TracePhase phase, TraceCategory cat, const char* name,
            const char* k1, int64_t v1, const char* k2, int64_t v2);
  ThreadBuffer* RegisterThisThread();
  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  const uint64_t id_;  // process-unique; keys the thread-local cache
  size_t capacity_;    // records per thread ring (power of two)
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<uint64_t> faults_{0};
  mutable std::mutex mu_;
  std::map<std::thread::id, ThreadBuffer*> by_thread_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

// RAII span: emits B at construction, E at destruction. End args (set
// any time before destruction) ride on the E event — use for results
// only known at scope exit (successor counts, states examined). All
// operations are no-ops when constructed with a null session.
class TraceSpan {
 public:
  TraceSpan(TraceSession* session, TraceCategory cat, const char* name,
            const char* k1 = nullptr, int64_t v1 = 0,
            const char* k2 = nullptr, int64_t v2 = 0)
      : session_(session), cat_(cat), name_(name) {
    if (session_ != nullptr) session_->EmitBegin(cat, name, k1, v1, k2, v2);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (session_ != nullptr) {
      session_->EmitEnd(cat_, name_, end_k1_, end_v1_, end_k2_, end_v2_);
    }
  }

  void SetEndArg(const char* key, int64_t value) {
    end_k1_ = key;
    end_v1_ = value;
  }
  void SetEndArg2(const char* key, int64_t value) {
    end_k2_ = key;
    end_v2_ = value;
  }

 private:
  TraceSession* session_;
  TraceCategory cat_;
  const char* name_;
  const char* end_k1_ = nullptr;
  const char* end_k2_ = nullptr;
  int64_t end_v1_ = 0;
  int64_t end_v2_ = 0;
};

// Adapts a TraceSession to the ThreadPool's TaskTraceHook seam: every
// task executed by a pool with this hook installed shows up as a
// "pool.task" span on its worker's track, which is what makes Phase A/B
// utilization of the parallel beam visible per worker. The hook must
// outlive its installation (ThreadPool::set_trace_hook).
class PoolTaskTracer final : public TaskTraceHook {
 public:
  explicit PoolTaskTracer(TraceSession* session) : session_(session) {}
  void OnTaskBegin() override {
    if (session_ != nullptr) {
      session_->EmitBegin(TraceCategory::kPool, "pool.task");
    }
  }
  void OnTaskEnd() override {
    if (session_ != nullptr) {
      session_->EmitEnd(TraceCategory::kPool, "pool.task");
    }
  }

 private:
  TraceSession* session_;
};

// Binary flight-record parsing (the format SerializeFlightRecord emits).
struct FlightRecord {
  std::vector<TraceExportEvent> events;
  uint32_t thread_count = 0;
};
Result<FlightRecord> ParseFlightRecord(std::string_view bytes);
Result<FlightRecord> LoadFlightRecord(const std::string& path);

}  // namespace tupelo::obs

#endif  // TUPELO_OBS_TRACE_H_
