#ifndef TUPELO_OBS_JSON_WRITER_H_
#define TUPELO_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace tupelo::obs {

// A minimal JSON document model used by the observability layer to emit
// stable, machine-readable run reports (BENCH_*.json, metric snapshots).
// Zero dependencies beyond common/. Objects preserve insertion order so a
// report's key order is deterministic across runs — diffs of two reports
// line up field by field.
//
// Numbers are kept in three lanes (int64, uint64, double) so counters
// close to 2^63 and fractional milliseconds both survive a round trip.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}            // NOLINT
  JsonValue(int i) : kind_(Kind::kInt), int_(i) {}               // NOLINT
  JsonValue(int64_t i) : kind_(Kind::kInt), int_(i) {}           // NOLINT
  JsonValue(uint64_t u) : kind_(Kind::kUint), uint_(u) {}        // NOLINT
  JsonValue(double d) : kind_(Kind::kDouble), double_(d) {}      // NOLINT
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}  // NOLINT
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}  // NOLINT

  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint || kind_ == Kind::kDouble;
  }

  bool as_bool() const { return bool_; }
  // Numeric accessors convert between the three lanes.
  int64_t as_int() const;
  uint64_t as_uint() const;
  double as_double() const;
  const std::string& as_string() const { return string_; }

  // Object access. operator[] inserts a null member on a missing key (and
  // turns a null value into an object, so building nested docs is terse).
  JsonValue& operator[](std::string_view key);
  const JsonValue* Find(std::string_view key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  // Array access. Append turns a null value into an array.
  void Append(JsonValue element);
  const std::vector<JsonValue>& elements() const { return elements_; }
  std::vector<JsonValue>& elements() { return elements_; }

  size_t size() const {
    return kind_ == Kind::kObject ? members_.size() : elements_.size();
  }

  // Serializes. indent < 0 emits compact one-line JSON; indent >= 0 pretty
  // prints with that many spaces per level. Doubles use %.17g so a
  // dump/parse cycle is lossless.
  std::string Dump(int indent = -1) const;

  // Strict parser for the subset Dump emits (standard JSON; \uXXXX escapes
  // outside the BMP surrogate range are decoded to UTF-8).
  static Result<JsonValue> Parse(std::string_view text);

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<std::pair<std::string, JsonValue>> members_;
  std::vector<JsonValue> elements_;
};

// Escapes `s` as a JSON string literal, including the quotes.
std::string JsonEscape(std::string_view s);

}  // namespace tupelo::obs

#endif  // TUPELO_OBS_JSON_WRITER_H_
