#ifndef TUPELO_RELATIONAL_DATABASE_H_
#define TUPELO_RELATIONAL_DATABASE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/relation.h"

namespace tupelo {

// A database instance: a set of relations keyed by name. Database values
// are the states of TUPELO's search space; they are value types (copied
// freely) with a stable canonical fingerprint for duplicate detection.
class Database {
 public:
  Database() = default;

  // Adds a relation; fails if one with the same name exists.
  Status AddRelation(Relation relation);

  // Replaces or inserts.
  void PutRelation(Relation relation);

  Status RemoveRelation(std::string_view name);

  // Renames relation `from` to `to`; `to` must not exist.
  Status RenameRelation(std::string_view from, const std::string& to);

  bool HasRelation(std::string_view name) const;

  // Fails with NotFound if absent.
  Result<const Relation*> GetRelation(std::string_view name) const;
  Result<Relation*> GetMutableRelation(std::string_view name);

  // Relation names in sorted order.
  std::vector<std::string> RelationNames() const;

  // Relations in name-sorted order.
  const std::map<std::string, Relation>& relations() const {
    return relations_;
  }

  size_t relation_count() const { return relations_.size(); }
  bool empty() const { return relations_.empty(); }

  // Total number of tuples across relations.
  size_t TupleCount() const;

  // True if this database "contains" `target` in the sense of TUPELO's
  // goal test (§2.3): every relation of `target` has a same-named relation
  // here whose attributes are a superset, and every target tuple equals the
  // projection of some tuple here onto the target's attributes.
  bool Contains(const Database& target) const;

  // Stable text fingerprint of the whole instance (relation canonical keys
  // joined in name order); equal keys <=> equal instances.
  std::string CanonicalKey() const;

  // 64-bit stable fingerprint of CanonicalKey(). Cached: search states are
  // written once and fingerprinted many times. Mutating methods (including
  // GetMutableRelation) invalidate the cache.
  uint64_t Fingerprint() const;

  bool ContentsEqual(const Database& other) const {
    return CanonicalKey() == other.CanonicalKey();
  }

  std::string ToString() const;

 private:
  std::map<std::string, Relation> relations_;
  mutable std::optional<uint64_t> fingerprint_;
};

}  // namespace tupelo

#endif  // TUPELO_RELATIONAL_DATABASE_H_
