#ifndef TUPELO_RELATIONAL_DATABASE_H_
#define TUPELO_RELATIONAL_DATABASE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "common/status.h"
#include "relational/relation.h"

namespace tupelo {

// A database instance: a set of relations keyed by name. Database values
// are the states of TUPELO's search space; they are value types (copied
// freely) with a stable structural fingerprint for duplicate detection.
//
// Relations are held by shared_ptr-to-const with copy-on-write semantics:
// copying a Database shares every relation with the original, and only a
// relation actually mutated through GetMutableRelation is cloned (and only
// when still shared). A successor state produced by a FIRA operator
// therefore materializes exactly the one relation the operator touched.
class Database {
 public:
  using RelationPtr = std::shared_ptr<const Relation>;

  // Copy-on-write telemetry. GlobalCowStats is the process-wide view (a
  // gauge across every live search); ThreadCowStats counts only events
  // performed by the calling thread. Per-search attribution must diff
  // ThreadCowStats: all COW work happens synchronously on the thread
  // applying the operator, so thread-local deltas stay correct when
  // several searches (portfolio rungs, pool workers) run concurrently,
  // where global deltas would interleave.
  struct CowStats {
    uint64_t cow_copies = 0;        // relations cloned by mutable access
    uint64_t relations_shared = 0;  // relation pointers newly shared by copies
  };
  static CowStats GlobalCowStats();
  static CowStats ThreadCowStats();

  Database() = default;
  Database(const Database& other);
  Database& operator=(const Database& other);
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  // Adds a relation; fails if one with the same name exists.
  Status AddRelation(Relation relation);

  // Replaces or inserts. The shared_ptr overload shares the relation
  // without copying it (the caller promises not to mutate it afterwards).
  void PutRelation(Relation relation);
  void PutRelation(RelationPtr relation);

  Status RemoveRelation(std::string_view name);

  // Renames relation `from` to `to`; `to` must not exist.
  Status RenameRelation(std::string_view from, const std::string& to);

  bool HasRelation(std::string_view name) const;

  // Fails with NotFound if absent.
  Result<const Relation*> GetRelation(std::string_view name) const;

  // Mutable access with copy-on-write: clones the relation first when it
  // is still shared with other Database copies, so the mutation never
  // leaks into them.
  Result<Relation*> GetMutableRelation(std::string_view name);

  // Relation names in sorted order.
  std::vector<std::string> RelationNames() const;

  // Relations in name-sorted order.
  const std::map<std::string, RelationPtr>& relations() const {
    return relations_;
  }

  size_t relation_count() const { return relations_.size(); }
  bool empty() const { return relations_.empty(); }

  // Total number of tuples across relations.
  size_t TupleCount() const;

  // Structural integrity check, run on every .tdb/checkpoint load so a
  // corrupted or hand-edited file fails with a descriptive Status instead
  // of tripping undefined behavior later. Verifies: map keys agree with
  // relation names, names are non-empty, attribute names are non-empty and
  // pairwise distinct, every tuple's arity matches its schema, and a
  // relation claiming to be TNF (named kTnfRelationName with exactly the
  // four TNF attributes) actually decodes.
  Status Validate() const;

  // True if this database "contains" `target` in the sense of TUPELO's
  // goal test (§2.3): every relation of `target` has a same-named relation
  // here whose attributes are a superset, and every target tuple equals the
  // projection of some tuple here onto the target's attributes.
  bool Contains(const Database& target) const;

  // Stable text fingerprint of the whole instance (relation canonical keys
  // joined in name order); equal keys <=> equal instances.
  std::string CanonicalKey() const;

  // 128-bit structural fingerprint: the commutative combine of the
  // per-relation fingerprints (names are unique, so the bag of relation
  // fingerprints identifies the instance). Cached, and maintained
  // incrementally across PutRelation/RemoveRelation so a successor that
  // replaced one relation re-hashes only that relation.
  Fp128 Fingerprint128() const;

  // 64-bit stable fingerprint (the low lane of Fingerprint128), kept for
  // the search-layer StateKey contract.
  uint64_t Fingerprint() const { return Fingerprint128().lo; }

  bool ContentsEqual(const Database& other) const {
    if (!(Fingerprint128() == other.Fingerprint128())) return false;
    return CanonicalKey() == other.CanonicalKey();
  }

  std::string ToString() const;

 private:
  std::map<std::string, RelationPtr> relations_;
  mutable std::optional<Fp128> fingerprint_;
};

}  // namespace tupelo

#endif  // TUPELO_RELATIONAL_DATABASE_H_
