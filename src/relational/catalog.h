#ifndef TUPELO_RELATIONAL_CATALOG_H_
#define TUPELO_RELATIONAL_CATALOG_H_

#include "common/result.h"
#include "relational/database.h"

namespace tupelo {

// System catalog tables, in the style of the "system tables" the paper
// invokes when noting that "the TNF of a relation can be built in SQL
// using the system tables" (§2.2, after Litwin et al.). The catalog makes
// a database's metadata queryable as ordinary relations — which is also
// what the ↓ (demote) operator exploits.
//
//   SYS_RELATIONS(REL)            one row per relation
//   SYS_ATTRIBUTES(REL, ATT, POS) one row per attribute, POS 0-based

inline constexpr char kCatalogRelations[] = "SYS_RELATIONS";
inline constexpr char kCatalogAttributes[] = "SYS_ATTRIBUTES";

// Builds the two catalog relations for `db`.
Relation BuildRelationCatalog(const Database& db);
Relation BuildAttributeCatalog(const Database& db);

// Demonstrates the paper's claim constructively: computes the TNF of `db`
// *without* the dedicated encoder, using only the catalog plus the
// library's own relational operators (demote-style unpivot per relation,
// then renames/union). The result's contents equal EncodeTnf(db) up to
// tuple-ID naming; VerifyCatalogTnf checks that equivalence.
Result<Relation> BuildTnfViaCatalog(const Database& db);

// True iff BuildTnfViaCatalog(db) and EncodeTnf(db) agree on the
// (REL, ATT, VALUE) triple bag (TIDs are generator-specific).
Result<bool> VerifyCatalogTnf(const Database& db);

}  // namespace tupelo

#endif  // TUPELO_RELATIONAL_CATALOG_H_
