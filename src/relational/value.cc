#include "relational/value.h"

namespace tupelo {

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace tupelo
