#include "relational/io.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/string_util.h"

namespace tupelo {
namespace {

// ---------------------------------------------------------------------------
// .tdb tokenizer
// ---------------------------------------------------------------------------

enum class TokKind { kWord, kString, kNull, kPunct, kEnd };

struct Token {
  TokKind kind;
  std::string text;  // word/string payload, or the punct character
  size_t line;
};

bool IsPunct(char c) {
  return c == '(' || c == ')' || c == '{' || c == '}' || c == ',';
}

bool IsWordChar(char c) {
  return !std::isspace(static_cast<unsigned char>(c)) && !IsPunct(c) &&
         c != '"' && c != '#';
}

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<Token> Next() {
    SkipSpaceAndComments();
    if (pos_ >= text_.size()) return Token{TokKind::kEnd, "", line_};
    char c = text_[pos_];
    if (IsPunct(c)) {
      ++pos_;
      return Token{TokKind::kPunct, std::string(1, c), line_};
    }
    if (c == '"') return LexString();
    if (IsWordChar(c)) return LexWord();
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at line " + std::to_string(line_));
  }

 private:
  void SkipSpaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Result<Token> LexString() {
    size_t start_line = line_;
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Token{TokKind::kString, std::move(out), start_line};
      if (c == '\n') ++line_;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '\\':
            out += '\\';
            break;
          case '"':
            out += '"';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          default:
            return Status::ParseError("bad escape '\\" + std::string(1, e) +
                                      "' at line " + std::to_string(line_));
        }
      } else {
        out += c;
      }
    }
    return Status::ParseError("unterminated string starting at line " +
                              std::to_string(start_line));
  }

  Result<Token> LexWord() {
    size_t start = pos_;
    while (pos_ < text_.size() && IsWordChar(text_[pos_])) ++pos_;
    std::string word(text_.substr(start, pos_ - start));
    if (word == "null") return Token{TokKind::kNull, word, line_};
    return Token{TokKind::kWord, std::move(word), line_};
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t line_ = 1;
};

// ---------------------------------------------------------------------------
// .tdb parser
// ---------------------------------------------------------------------------

class TdbParser {
 public:
  explicit TdbParser(std::string_view text) : lexer_(text) {}

  Result<Database> Parse() {
    TUPELO_RETURN_IF_ERROR(Advance());
    Database db;
    while (cur_.kind != TokKind::kEnd) {
      TUPELO_ASSIGN_OR_RETURN(Relation rel, ParseRelation());
      TUPELO_RETURN_IF_ERROR(db.AddRelation(std::move(rel)));
    }
    return db;
  }

 private:
  Status Advance() {
    TUPELO_ASSIGN_OR_RETURN(cur_, lexer_.Next());
    return Status::OK();
  }

  Status Expect(TokKind kind, std::string_view what) {
    if (cur_.kind != kind) {
      return Status::ParseError("expected " + std::string(what) +
                                " at line " + std::to_string(cur_.line) +
                                ", got '" + cur_.text + "'");
    }
    return Status::OK();
  }

  Status ExpectPunct(char c) {
    if (cur_.kind != TokKind::kPunct || cur_.text[0] != c) {
      return Status::ParseError("expected '" + std::string(1, c) +
                                "' at line " + std::to_string(cur_.line) +
                                ", got '" + cur_.text + "'");
    }
    return Advance();
  }

  // Name position: a word or quoted string.
  Result<std::string> ParseName() {
    if (cur_.kind != TokKind::kWord && cur_.kind != TokKind::kString) {
      return Status::ParseError("expected name at line " +
                                std::to_string(cur_.line) + ", got '" +
                                cur_.text + "'");
    }
    std::string name = cur_.text;
    TUPELO_RETURN_IF_ERROR(Advance());
    return name;
  }

  Result<Relation> ParseRelation() {
    TUPELO_RETURN_IF_ERROR(Expect(TokKind::kWord, "'relation'"));
    if (cur_.text != "relation") {
      return Status::ParseError("expected 'relation' at line " +
                                std::to_string(cur_.line) + ", got '" +
                                cur_.text + "'");
    }
    TUPELO_RETURN_IF_ERROR(Advance());
    TUPELO_ASSIGN_OR_RETURN(std::string name, ParseName());

    TUPELO_RETURN_IF_ERROR(ExpectPunct('('));
    std::vector<std::string> attrs;
    if (!(cur_.kind == TokKind::kPunct && cur_.text[0] == ')')) {
      while (true) {
        TUPELO_ASSIGN_OR_RETURN(std::string attr, ParseName());
        attrs.push_back(std::move(attr));
        if (cur_.kind == TokKind::kPunct && cur_.text[0] == ',') {
          TUPELO_RETURN_IF_ERROR(Advance());
          continue;
        }
        break;
      }
    }
    TUPELO_RETURN_IF_ERROR(ExpectPunct(')'));

    TUPELO_ASSIGN_OR_RETURN(Relation rel,
                            Relation::Create(std::move(name), attrs));

    TUPELO_RETURN_IF_ERROR(ExpectPunct('{'));
    while (!(cur_.kind == TokKind::kPunct && cur_.text[0] == '}')) {
      TUPELO_ASSIGN_OR_RETURN(Tuple t, ParseTuple());
      TUPELO_RETURN_IF_ERROR(rel.AddTuple(std::move(t)));
    }
    TUPELO_RETURN_IF_ERROR(Advance());  // '}'
    return rel;
  }

  Result<Tuple> ParseTuple() {
    TUPELO_RETURN_IF_ERROR(ExpectPunct('('));
    std::vector<Value> values;
    if (!(cur_.kind == TokKind::kPunct && cur_.text[0] == ')')) {
      while (true) {
        if (cur_.kind == TokKind::kNull) {
          values.push_back(Value::Null());
          TUPELO_RETURN_IF_ERROR(Advance());
        } else if (cur_.kind == TokKind::kWord ||
                   cur_.kind == TokKind::kString) {
          values.emplace_back(cur_.text);
          TUPELO_RETURN_IF_ERROR(Advance());
        } else {
          return Status::ParseError("expected value at line " +
                                    std::to_string(cur_.line) + ", got '" +
                                    cur_.text + "'");
        }
        if (cur_.kind == TokKind::kPunct && cur_.text[0] == ',') {
          TUPELO_RETURN_IF_ERROR(Advance());
          continue;
        }
        break;
      }
    }
    TUPELO_RETURN_IF_ERROR(ExpectPunct(')'));
    return Tuple(std::move(values));
  }

  Lexer lexer_;
  Token cur_{TokKind::kEnd, "", 0};
};

// A name/atom needs quoting in .tdb output unless it is a non-empty bare
// word that would not lex as the `null` keyword.
bool NeedsQuoting(const std::string& s) {
  if (s.empty() || s == "null" || s == "relation") return true;
  for (char c : s) {
    if (!IsWordChar(c)) return true;
  }
  return false;
}

std::string FormatAtom(const std::string& s) {
  return NeedsQuoting(s) ? Quote(s) : s;
}

}  // namespace

Result<Database> ParseTdb(std::string_view text) {
  return TdbParser(text).Parse();
}

std::string WriteTdb(const Database& db) {
  std::string out;
  for (const auto& [name, relp] : db.relations()) {
    const Relation& rel = *relp;
    out += "relation " + FormatAtom(name) + " (";
    for (size_t i = 0; i < rel.attributes().size(); ++i) {
      if (i > 0) out += ", ";
      out += FormatAtom(rel.attributes()[i]);
    }
    out += ") {\n";
    for (const Tuple& t : rel.tuples()) {
      out += "  (";
      for (size_t i = 0; i < t.size(); ++i) {
        if (i > 0) out += ", ";
        out += t[i].is_null() ? "null" : FormatAtom(t[i].atom());
      }
      out += ")\n";
    }
    out += "}\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

namespace {

// Splits one CSV text into records of fields. `quoted[i]` records whether
// field i was quoted (to distinguish null from empty atom).
struct CsvField {
  std::string text;
  bool quoted = false;
};

Result<std::vector<std::vector<CsvField>>> ParseCsvRecords(
    std::string_view csv) {
  std::vector<std::vector<CsvField>> records;
  std::vector<CsvField> record;
  CsvField field;
  size_t i = 0;
  bool in_quotes = false;
  bool any = false;

  auto end_field = [&] {
    record.push_back(std::move(field));
    field = CsvField{};
  };
  auto end_record = [&] {
    end_field();
    records.push_back(std::move(record));
    record.clear();
  };

  while (i < csv.size()) {
    char c = csv[i];
    any = true;
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < csv.size() && csv[i + 1] == '"') {
          field.text += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field.text += c;
        ++i;
      }
    } else if (c == '"') {
      if (!field.text.empty()) {
        return Status::ParseError("quote inside unquoted CSV field");
      }
      field.quoted = true;
      in_quotes = true;
      ++i;
    } else if (c == ',') {
      end_field();
      ++i;
    } else if (c == '\r') {
      ++i;
    } else if (c == '\n') {
      end_record();
      ++i;
    } else {
      field.text += c;
      ++i;
    }
  }
  if (in_quotes) return Status::ParseError("unterminated CSV quote");
  if (any && (!field.text.empty() || field.quoted || !record.empty())) {
    end_record();
  }
  return records;
}

}  // namespace

Result<Relation> ParseCsvRelation(std::string name, std::string_view csv) {
  TUPELO_ASSIGN_OR_RETURN(std::vector<std::vector<CsvField>> records,
                          ParseCsvRecords(csv));
  if (records.empty()) {
    return Status::ParseError("CSV has no header record");
  }
  std::vector<std::string> attrs;
  attrs.reserve(records[0].size());
  for (const CsvField& f : records[0]) attrs.push_back(f.text);
  TUPELO_ASSIGN_OR_RETURN(Relation rel,
                          Relation::Create(std::move(name), attrs));
  for (size_t r = 1; r < records.size(); ++r) {
    if (records[r].size() != attrs.size()) {
      return Status::ParseError(
          "CSV record " + std::to_string(r) + " has " +
          std::to_string(records[r].size()) + " fields; header has " +
          std::to_string(attrs.size()));
    }
    std::vector<Value> values;
    values.reserve(attrs.size());
    for (const CsvField& f : records[r]) {
      if (f.text.empty() && !f.quoted) {
        values.push_back(Value::Null());
      } else {
        values.emplace_back(f.text);
      }
    }
    TUPELO_RETURN_IF_ERROR(rel.AddTuple(Tuple(std::move(values))));
  }
  return rel;
}

namespace {

std::string CsvEscapeField(const Value& v) {
  if (v.is_null()) return "";
  const std::string& s = v.atom();
  bool needs = s.empty() || s.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

std::string WriteCsv(const Relation& relation) {
  std::string out;
  for (size_t i = 0; i < relation.attributes().size(); ++i) {
    if (i > 0) out += ",";
    out += CsvEscapeField(Value(relation.attributes()[i]));
  }
  out += "\n";
  for (const Tuple& t : relation.tuples()) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out += ",";
      out += CsvEscapeField(t[i]);
    }
    out += "\n";
  }
  return out;
}

Result<Database> LoadTdbFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  TUPELO_ASSIGN_OR_RETURN(Database db, ParseTdb(ss.str()));
  // Loaded bytes are untrusted: fail with a descriptive Status on any
  // structural damage rather than letting it surface as UB mid-search.
  TUPELO_RETURN_IF_ERROR(db.Validate());
  return db;
}

Status SaveTdbFile(const Database& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot write file: " + path);
  out << WriteTdb(db);
  return out ? Status::OK()
             : Status::Internal("write failed for file: " + path);
}

}  // namespace tupelo
