#include "relational/catalog.h"

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "relational/algebra.h"
#include "relational/tnf.h"

namespace tupelo {

Relation BuildRelationCatalog(const Database& db) {
  Result<Relation> created =
      Relation::Create(kCatalogRelations, {kTnfRel});
  Relation out = std::move(created).value();
  for (const auto& [name, rel] : db.relations()) {
    (void)out.AddRow({name});
  }
  return out;
}

Relation BuildAttributeCatalog(const Database& db) {
  Result<Relation> created =
      Relation::Create(kCatalogAttributes, {kTnfRel, kTnfAtt, "POS"});
  Relation out = std::move(created).value();
  for (const auto& [name, rel] : db.relations()) {
    for (size_t i = 0; i < rel->arity(); ++i) {
      (void)out.AddRow({name, rel->attributes()[i], std::to_string(i)});
    }
  }
  return out;
}

Result<Relation> BuildTnfViaCatalog(const Database& db) {
  // The construction the paper sketches in SQL: for every catalog row
  // (REL, ATT, POS), select that relation's column ATT paired with a tuple
  // id, and union the per-column results.
  Relation attributes = BuildAttributeCatalog(db);
  TUPELO_ASSIGN_OR_RETURN(
      Relation tnf,
      Relation::Create(kTnfRelationName,
                       {kTnfTid, kTnfRel, kTnfAtt, kTnfValue}));

  // Assign tuple ids per relation, in (relation, position) order —
  // consistent with a ROW_NUMBER() over the base table.
  std::map<std::string, size_t> tid_base;
  {
    size_t next = 1;
    Relation rels = BuildRelationCatalog(db);
    for (const Tuple& t : rels.tuples()) {
      const std::string& name = t[0].atom();
      TUPELO_ASSIGN_OR_RETURN(const Relation* rel, db.GetRelation(name));
      tid_base[name] = next;
      next += rel->size();
    }
  }

  for (const Tuple& catalog_row : attributes.tuples()) {
    const std::string& rel_name = catalog_row[0].atom();
    const std::string& att_name = catalog_row[1].atom();
    TUPELO_ASSIGN_OR_RETURN(const Relation* rel, db.GetRelation(rel_name));
    // π_ATT applied through the library's algebra, keeping bag order.
    TUPELO_ASSIGN_OR_RETURN(Relation column, Project(*rel, {att_name}));
    for (size_t i = 0; i < column.size(); ++i) {
      std::string tid = "t" + std::to_string(tid_base.at(rel_name) + i);
      TUPELO_RETURN_IF_ERROR(tnf.AddTuple(Tuple(std::vector<Value>{
          Value(tid), Value(rel_name), Value(att_name),
          column.tuples()[i][0]})));
    }
  }
  return tnf;
}

namespace {

// The (REL, ATT, VALUE) triple bag, TIDs erased, as a sorted multiset.
std::multiset<std::string> TripleBag(const Relation& tnf) {
  std::multiset<std::string> bag;
  for (const Tuple& t : tnf.tuples()) {
    std::string key = t[1].atom();
    key += '\x1f';
    key += t[2].atom();
    key += '\x1f';
    key += t[3].is_null() ? std::string(1, '\x1e') : t[3].atom();
    bag.insert(std::move(key));
  }
  return bag;
}

}  // namespace

Result<bool> VerifyCatalogTnf(const Database& db) {
  TUPELO_ASSIGN_OR_RETURN(Relation via_catalog, BuildTnfViaCatalog(db));
  Relation direct = EncodeTnf(db);
  return TripleBag(via_catalog) == TripleBag(direct);
}

}  // namespace tupelo
