#include "relational/relation.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>
#include <utility>

#include "common/string_util.h"

namespace tupelo {

Result<Relation> Relation::Create(std::string name,
                                  std::vector<std::string> attributes) {
  if (name.empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  std::unordered_set<std::string_view> seen;
  for (const std::string& attr : attributes) {
    if (attr.empty()) {
      return Status::InvalidArgument("attribute name must be non-empty (in " +
                                     name + ")");
    }
    if (!seen.insert(attr).second) {
      return Status::InvalidArgument("duplicate attribute '" + attr + "' in " +
                                     name);
    }
  }
  Relation r;
  r.name_ = std::move(name);
  r.attributes_ = std::move(attributes);
  return r;
}

std::optional<size_t> Relation::AttributeIndex(std::string_view attr) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i] == attr) return i;
  }
  return std::nullopt;
}

Status Relation::AddTuple(Tuple tuple) {
  if (tuple.size() != attributes_.size()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) + " != schema arity " +
        std::to_string(attributes_.size()) + " in " + name_);
  }
  tuples_.push_back(std::move(tuple));
  InvalidateFingerprint();
  return Status::OK();
}

Status Relation::AddRow(const std::vector<std::string>& atoms) {
  return AddTuple(Tuple::OfAtoms(atoms));
}

Status Relation::AddAttribute(const std::string& attr, const Value& fill) {
  if (attr.empty()) {
    return Status::InvalidArgument("attribute name must be non-empty");
  }
  if (HasAttribute(attr)) {
    return Status::AlreadyExists("attribute '" + attr + "' already in " +
                                 name_);
  }
  attributes_.push_back(attr);
  for (Tuple& t : tuples_) t.Append(fill);
  InvalidateFingerprint();
  return Status::OK();
}

Status Relation::DropAttribute(std::string_view attr) {
  std::optional<size_t> idx = AttributeIndex(attr);
  if (!idx.has_value()) {
    return Status::NotFound("attribute '" + std::string(attr) + "' not in " +
                            name_);
  }
  attributes_.erase(attributes_.begin() + static_cast<ptrdiff_t>(*idx));
  for (Tuple& t : tuples_) t.Erase(*idx);
  InvalidateFingerprint();
  return Status::OK();
}

Status Relation::RenameAttribute(std::string_view from, const std::string& to) {
  std::optional<size_t> idx = AttributeIndex(from);
  if (!idx.has_value()) {
    return Status::NotFound("attribute '" + std::string(from) + "' not in " +
                            name_);
  }
  if (to.empty()) {
    return Status::InvalidArgument("attribute name must be non-empty");
  }
  if (HasAttribute(to)) {
    return Status::AlreadyExists("attribute '" + to + "' already in " + name_);
  }
  attributes_[*idx] = to;
  InvalidateFingerprint();
  return Status::OK();
}

Result<std::vector<std::string>> Relation::DistinctValues(
    std::string_view attr) const {
  std::optional<size_t> idx = AttributeIndex(attr);
  if (!idx.has_value()) {
    return Status::NotFound("attribute '" + std::string(attr) + "' not in " +
                            name_);
  }
  std::vector<std::string> out;
  std::unordered_set<std::string_view> seen;
  for (const Tuple& t : tuples_) {
    const Value& v = t[*idx];
    if (v.is_null()) continue;
    if (seen.insert(v.atom()).second) out.push_back(v.atom());
  }
  return out;
}

Result<std::vector<Tuple>> Relation::ProjectTuples(
    const std::vector<std::string>& attrs) const {
  std::vector<size_t> indices;
  indices.reserve(attrs.size());
  for (const std::string& a : attrs) {
    std::optional<size_t> idx = AttributeIndex(a);
    if (!idx.has_value()) {
      return Status::NotFound("attribute '" + a + "' not in " + name_);
    }
    indices.push_back(*idx);
  }
  std::vector<Tuple> out;
  out.reserve(tuples_.size());
  for (const Tuple& t : tuples_) {
    std::vector<Value> vs;
    vs.reserve(indices.size());
    for (size_t i : indices) vs.push_back(t[i]);
    out.emplace_back(std::move(vs));
  }
  return out;
}

std::vector<size_t> Relation::CanonicalOrder() const {
  std::vector<size_t> order(attributes_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return attributes_[a] < attributes_[b];
  });
  return order;
}

Relation Relation::Canonical() const {
  std::vector<size_t> order = CanonicalOrder();

  Relation out;
  out.name_ = name_;
  out.attributes_.reserve(attributes_.size());
  for (size_t i : order) out.attributes_.push_back(attributes_[i]);
  out.tuples_.reserve(tuples_.size());
  for (const Tuple& t : tuples_) {
    std::vector<Value> vs;
    vs.reserve(order.size());
    for (size_t i : order) vs.push_back(t[i]);
    out.tuples_.emplace_back(std::move(vs));
  }
  std::sort(out.tuples_.begin(), out.tuples_.end());
  return out;
}

std::string Relation::CanonicalKey() const {
  std::vector<size_t> order = CanonicalOrder();

  // Tuple rows in canonical order: compare columns through the attribute
  // permutation instead of materializing permuted tuples.
  std::vector<size_t> rows(tuples_.size());
  std::iota(rows.begin(), rows.end(), 0);
  std::sort(rows.begin(), rows.end(), [&](size_t a, size_t b) {
    const Tuple& ta = tuples_[a];
    const Tuple& tb = tuples_[b];
    for (size_t i : order) {
      auto cmp = ta[i] <=> tb[i];
      if (cmp != 0) return cmp < 0;
    }
    return false;
  });

  std::string key = Quote(name_) + "[";
  for (size_t i = 0; i < order.size(); ++i) {
    if (i > 0) key += ",";
    key += Quote(attributes_[order[i]]);
  }
  key += "]{";
  for (size_t r : rows) {
    const Tuple& t = tuples_[r];
    key += "(";
    for (size_t i = 0; i < order.size(); ++i) {
      if (i > 0) key += ",";
      const Value& v = t[order[i]];
      key += v.is_null() ? std::string("@null") : Quote(v.atom());
    }
    key += ")";
  }
  key += "}";
  return key;
}

namespace {

// Per-cell hash for one fingerprint lane; a tagged constant keeps null
// distinct from every atom (including "").
uint64_t HashCell(const Value& v, uint64_t seed) {
  if (v.is_null()) return Mix64(seed ^ 0x6e756c6cULL);
  return Fnv1aSeeded(v.atom(), seed);
}

}  // namespace

Fp128 Relation::Fingerprint() const {
  if (fp_valid_.load(std::memory_order_acquire)) {
    return Fp128{fp_lo_.load(std::memory_order_relaxed),
                 fp_hi_.load(std::memory_order_relaxed)};
  }
  std::vector<size_t> order = CanonicalOrder();

  // Header: name then attributes in canonical order, chained sequentially
  // (the order is already canonical, so sequence-sensitivity is fine and
  // keeps attribute positions from commuting with each other).
  uint64_t lo = Fnv1aSeeded(name_, kFpSeedLo);
  uint64_t hi = Fnv1aSeeded(name_, kFpSeedHi);
  for (size_t i : order) {
    lo = HashChain(lo, Fnv1aSeeded(attributes_[i], kFpSeedLo));
    hi = HashChain(hi, Fnv1aSeeded(attributes_[i], kFpSeedHi));
  }

  // Body: per-tuple hashes over the canonical column permutation, folded
  // with a wrapping sum so the tuple bag hashes the same in any order.
  uint64_t bag_lo = 0;
  uint64_t bag_hi = 0;
  for (const Tuple& t : tuples_) {
    uint64_t tlo = kFpSeedLo;
    uint64_t thi = kFpSeedHi;
    for (size_t i : order) {
      tlo = HashChain(tlo, HashCell(t[i], kFpSeedLo));
      thi = HashChain(thi, HashCell(t[i], kFpSeedHi));
    }
    bag_lo += Mix64(tlo);
    bag_hi += Mix64(thi);
  }

  Fp128 fp;
  fp.lo = HashChain(HashChain(lo, bag_lo), tuples_.size());
  fp.hi = HashChain(HashChain(hi, bag_hi), tuples_.size());
  fp_lo_.store(fp.lo, std::memory_order_relaxed);
  fp_hi_.store(fp.hi, std::memory_order_relaxed);
  fp_valid_.store(true, std::memory_order_release);
  return fp;
}

std::string Relation::ToString() const {
  std::string out = name_ + "(" + Join(attributes_, ", ") + ")";
  for (const Tuple& t : tuples_) {
    out += "\n  " + t.ToString();
  }
  return out;
}

}  // namespace tupelo
