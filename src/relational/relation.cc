#include "relational/relation.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>
#include <utility>

#include "common/string_util.h"

namespace tupelo {

Result<Relation> Relation::Create(std::string name,
                                  std::vector<std::string> attributes) {
  if (name.empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  std::unordered_set<std::string_view> seen;
  for (const std::string& attr : attributes) {
    if (attr.empty()) {
      return Status::InvalidArgument("attribute name must be non-empty (in " +
                                     name + ")");
    }
    if (!seen.insert(attr).second) {
      return Status::InvalidArgument("duplicate attribute '" + attr + "' in " +
                                     name);
    }
  }
  Relation r;
  r.name_ = std::move(name);
  r.attributes_ = std::move(attributes);
  return r;
}

std::optional<size_t> Relation::AttributeIndex(std::string_view attr) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i] == attr) return i;
  }
  return std::nullopt;
}

Status Relation::AddTuple(Tuple tuple) {
  if (tuple.size() != attributes_.size()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) + " != schema arity " +
        std::to_string(attributes_.size()) + " in " + name_);
  }
  tuples_.push_back(std::move(tuple));
  return Status::OK();
}

Status Relation::AddRow(const std::vector<std::string>& atoms) {
  return AddTuple(Tuple::OfAtoms(atoms));
}

Status Relation::AddAttribute(const std::string& attr, const Value& fill) {
  if (attr.empty()) {
    return Status::InvalidArgument("attribute name must be non-empty");
  }
  if (HasAttribute(attr)) {
    return Status::AlreadyExists("attribute '" + attr + "' already in " +
                                 name_);
  }
  attributes_.push_back(attr);
  for (Tuple& t : tuples_) t.Append(fill);
  return Status::OK();
}

Status Relation::DropAttribute(std::string_view attr) {
  std::optional<size_t> idx = AttributeIndex(attr);
  if (!idx.has_value()) {
    return Status::NotFound("attribute '" + std::string(attr) + "' not in " +
                            name_);
  }
  attributes_.erase(attributes_.begin() + static_cast<ptrdiff_t>(*idx));
  for (Tuple& t : tuples_) t.Erase(*idx);
  return Status::OK();
}

Status Relation::RenameAttribute(std::string_view from, const std::string& to) {
  std::optional<size_t> idx = AttributeIndex(from);
  if (!idx.has_value()) {
    return Status::NotFound("attribute '" + std::string(from) + "' not in " +
                            name_);
  }
  if (to.empty()) {
    return Status::InvalidArgument("attribute name must be non-empty");
  }
  if (HasAttribute(to)) {
    return Status::AlreadyExists("attribute '" + to + "' already in " + name_);
  }
  attributes_[*idx] = to;
  return Status::OK();
}

Result<std::vector<std::string>> Relation::DistinctValues(
    std::string_view attr) const {
  std::optional<size_t> idx = AttributeIndex(attr);
  if (!idx.has_value()) {
    return Status::NotFound("attribute '" + std::string(attr) + "' not in " +
                            name_);
  }
  std::vector<std::string> out;
  std::unordered_set<std::string_view> seen;
  for (const Tuple& t : tuples_) {
    const Value& v = t[*idx];
    if (v.is_null()) continue;
    if (seen.insert(v.atom()).second) out.push_back(v.atom());
  }
  return out;
}

Result<std::vector<Tuple>> Relation::ProjectTuples(
    const std::vector<std::string>& attrs) const {
  std::vector<size_t> indices;
  indices.reserve(attrs.size());
  for (const std::string& a : attrs) {
    std::optional<size_t> idx = AttributeIndex(a);
    if (!idx.has_value()) {
      return Status::NotFound("attribute '" + a + "' not in " + name_);
    }
    indices.push_back(*idx);
  }
  std::vector<Tuple> out;
  out.reserve(tuples_.size());
  for (const Tuple& t : tuples_) {
    std::vector<Value> vs;
    vs.reserve(indices.size());
    for (size_t i : indices) vs.push_back(t[i]);
    out.emplace_back(std::move(vs));
  }
  return out;
}

Relation Relation::Canonical() const {
  std::vector<size_t> order(attributes_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return attributes_[a] < attributes_[b];
  });

  Relation out;
  out.name_ = name_;
  out.attributes_.reserve(attributes_.size());
  for (size_t i : order) out.attributes_.push_back(attributes_[i]);
  out.tuples_.reserve(tuples_.size());
  for (const Tuple& t : tuples_) {
    std::vector<Value> vs;
    vs.reserve(order.size());
    for (size_t i : order) vs.push_back(t[i]);
    out.tuples_.emplace_back(std::move(vs));
  }
  std::sort(out.tuples_.begin(), out.tuples_.end());
  return out;
}

std::string Relation::CanonicalKey() const {
  Relation c = Canonical();
  std::string key = Quote(c.name_) + "[";
  for (size_t i = 0; i < c.attributes_.size(); ++i) {
    if (i > 0) key += ",";
    key += Quote(c.attributes_[i]);
  }
  key += "]{";
  for (const Tuple& t : c.tuples_) {
    key += "(";
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) key += ",";
      key += t[i].is_null() ? std::string("@null") : Quote(t[i].atom());
    }
    key += ")";
  }
  key += "}";
  return key;
}

std::string Relation::ToString() const {
  std::string out = name_ + "(" + Join(attributes_, ", ") + ")";
  for (const Tuple& t : tuples_) {
    out += "\n  " + t.ToString();
  }
  return out;
}

}  // namespace tupelo
