#ifndef TUPELO_RELATIONAL_IO_H_
#define TUPELO_RELATIONAL_IO_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "relational/database.h"

namespace tupelo {

// Text format for database instances (".tdb"):
//
//   # comment to end of line
//   relation Flights (Carrier, Fee, ATL29, ORD17) {
//     (AirEast, 15, 100, 110)
//     ("Jet West", "16", null, 220)
//   }
//
// Atoms are bare words (no whitespace or punctuation ()-{},"#) or
// double-quoted strings with \\ \" \n \t escapes; `null` (bare, case
// sensitive) is the null value. Attribute names follow the same lexical
// rules as atoms.
Result<Database> ParseTdb(std::string_view text);

// Serializes `db` in .tdb format; round-trips through ParseTdb.
std::string WriteTdb(const Database& db);

// Reads/writes a single relation as RFC-4180-style CSV. The first record is
// the header (attribute names). Fields containing commas, quotes or
// newlines are double-quoted with "" escaping. An empty unquoted field is
// null; an explicitly quoted empty field ("") is the empty atom.
Result<Relation> ParseCsvRelation(std::string name, std::string_view csv);
std::string WriteCsv(const Relation& relation);

// File helpers.
Result<Database> LoadTdbFile(const std::string& path);
Status SaveTdbFile(const Database& db, const std::string& path);

}  // namespace tupelo

#endif  // TUPELO_RELATIONAL_IO_H_
