#ifndef TUPELO_RELATIONAL_RELATION_H_
#define TUPELO_RELATIONAL_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "common/status.h"
#include "relational/tuple.h"

namespace tupelo {

// A named relation: an attribute list (the schema) plus a bag of tuples.
// Attribute names are unique within a relation; tuple order is not
// semantically meaningful (canonicalization sorts tuples), but insertion
// order is preserved for display.
class Relation {
 public:
  Relation() = default;

  // Builds an empty relation, validating that `name` is non-empty and the
  // attribute names are non-empty and pairwise distinct.
  static Result<Relation> Create(std::string name,
                                 std::vector<std::string> attributes);

  const std::string& name() const { return name_; }
  void set_name(std::string name) {
    name_ = std::move(name);
    fingerprint_.reset();
  }

  const std::vector<std::string>& attributes() const { return attributes_; }
  size_t arity() const { return attributes_.size(); }

  const std::vector<Tuple>& tuples() const { return tuples_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  // Position of attribute `attr`, or nullopt.
  std::optional<size_t> AttributeIndex(std::string_view attr) const;
  bool HasAttribute(std::string_view attr) const {
    return AttributeIndex(attr).has_value();
  }

  // Appends a tuple; fails unless its arity matches the schema.
  Status AddTuple(Tuple tuple);

  // Convenience for tests/fixtures: appends a tuple of non-null atoms.
  Status AddRow(const std::vector<std::string>& atoms);

  // Appends attribute `attr` (must be fresh) with value `fill` in all
  // existing tuples.
  Status AddAttribute(const std::string& attr, const Value& fill = Value());

  // Removes attribute `attr` and its column of values.
  Status DropAttribute(std::string_view attr);

  // Renames attribute `from` to `to`; `to` must not already exist.
  Status RenameAttribute(std::string_view from, const std::string& to);

  // The distinct non-null values appearing in column `attr`, in first-seen
  // order. Fails if the attribute does not exist.
  Result<std::vector<std::string>> DistinctValues(std::string_view attr) const;

  // Projection of every tuple onto `attrs` (all must exist), preserving
  // duplicates. Used by the containment test.
  Result<std::vector<Tuple>> ProjectTuples(
      const std::vector<std::string>& attrs) const;

  // Returns a copy with attributes sorted by name (columns permuted
  // consistently) and tuples sorted; equal canonical forms identify equal
  // relation contents.
  Relation Canonical() const;

  // Stable text fingerprint of the canonical form, used for state hashing.
  // Computed via index permutations over the live representation; no
  // canonical copy of the relation is materialized.
  std::string CanonicalKey() const;

  // 128-bit structural fingerprint of the canonical form (name, schema as
  // a set, tuple bag), hashed directly from schema and tuples: attributes
  // contribute in sorted order and tuples through a commutative combine,
  // so presentation order never matters and no string is materialized.
  // Cached until the next mutation; relations shared immutably between
  // databases therefore pay the O(arity * tuples) cost once, ever.
  Fp128 Fingerprint() const;

  // Multi-line display: header then one tuple per line.
  std::string ToString() const;

  // Contents-equal after canonicalization (name, schema as a set, tuple
  // bag). operator== is intentionally not provided: column/tuple order is
  // presentation detail and an accidental ordered comparison is a bug trap.
  bool ContentsEqual(const Relation& other) const {
    if (!(Fingerprint() == other.Fingerprint())) return false;
    return CanonicalKey() == other.CanonicalKey();
  }

 private:
  // Attribute indices in name-sorted order: the column permutation behind
  // CanonicalKey and Fingerprint.
  std::vector<size_t> CanonicalOrder() const;

  std::string name_;
  std::vector<std::string> attributes_;
  std::vector<Tuple> tuples_;
  mutable std::optional<Fp128> fingerprint_;
};

}  // namespace tupelo

#endif  // TUPELO_RELATIONAL_RELATION_H_
