#ifndef TUPELO_RELATIONAL_RELATION_H_
#define TUPELO_RELATIONAL_RELATION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "common/status.h"
#include "relational/tuple.h"

namespace tupelo {

// A named relation: an attribute list (the schema) plus a bag of tuples.
// Attribute names are unique within a relation; tuple order is not
// semantically meaningful (canonicalization sorts tuples), but insertion
// order is preserved for display.
class Relation {
 public:
  Relation() = default;

  // The fingerprint cache lives in atomics (see below), so the compiler
  // cannot generate these.
  Relation(const Relation& other)
      : name_(other.name_),
        attributes_(other.attributes_),
        tuples_(other.tuples_) {
    CopyFingerprintCache(other);
  }
  Relation& operator=(const Relation& other) {
    if (this != &other) {
      name_ = other.name_;
      attributes_ = other.attributes_;
      tuples_ = other.tuples_;
      CopyFingerprintCache(other);
    }
    return *this;
  }
  Relation(Relation&& other) noexcept
      : name_(std::move(other.name_)),
        attributes_(std::move(other.attributes_)),
        tuples_(std::move(other.tuples_)) {
    CopyFingerprintCache(other);
  }
  Relation& operator=(Relation&& other) noexcept {
    if (this != &other) {
      name_ = std::move(other.name_);
      attributes_ = std::move(other.attributes_);
      tuples_ = std::move(other.tuples_);
      CopyFingerprintCache(other);
    }
    return *this;
  }

  // Builds an empty relation, validating that `name` is non-empty and the
  // attribute names are non-empty and pairwise distinct.
  static Result<Relation> Create(std::string name,
                                 std::vector<std::string> attributes);

  const std::string& name() const { return name_; }
  void set_name(std::string name) {
    name_ = std::move(name);
    InvalidateFingerprint();
  }

  const std::vector<std::string>& attributes() const { return attributes_; }
  size_t arity() const { return attributes_.size(); }

  const std::vector<Tuple>& tuples() const { return tuples_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  // Position of attribute `attr`, or nullopt.
  std::optional<size_t> AttributeIndex(std::string_view attr) const;
  bool HasAttribute(std::string_view attr) const {
    return AttributeIndex(attr).has_value();
  }

  // Appends a tuple; fails unless its arity matches the schema.
  Status AddTuple(Tuple tuple);

  // Pre-allocates tuple storage for bulk builders (compiled apply loops).
  void ReserveTuples(size_t n) { tuples_.reserve(n); }

  // Convenience for tests/fixtures: appends a tuple of non-null atoms.
  Status AddRow(const std::vector<std::string>& atoms);

  // Appends attribute `attr` (must be fresh) with value `fill` in all
  // existing tuples.
  Status AddAttribute(const std::string& attr, const Value& fill = Value());

  // Removes attribute `attr` and its column of values.
  Status DropAttribute(std::string_view attr);

  // Renames attribute `from` to `to`; `to` must not already exist.
  Status RenameAttribute(std::string_view from, const std::string& to);

  // The distinct non-null values appearing in column `attr`, in first-seen
  // order. Fails if the attribute does not exist.
  Result<std::vector<std::string>> DistinctValues(std::string_view attr) const;

  // Projection of every tuple onto `attrs` (all must exist), preserving
  // duplicates. Used by the containment test.
  Result<std::vector<Tuple>> ProjectTuples(
      const std::vector<std::string>& attrs) const;

  // Returns a copy with attributes sorted by name (columns permuted
  // consistently) and tuples sorted; equal canonical forms identify equal
  // relation contents.
  Relation Canonical() const;

  // Stable text fingerprint of the canonical form, used for state hashing.
  // Computed via index permutations over the live representation; no
  // canonical copy of the relation is materialized.
  std::string CanonicalKey() const;

  // 128-bit structural fingerprint of the canonical form (name, schema as
  // a set, tuple bag), hashed directly from schema and tuples: attributes
  // contribute in sorted order and tuples through a commutative combine,
  // so presentation order never matters and no string is materialized.
  // Cached until the next mutation; relations shared immutably between
  // databases therefore pay the O(arity * tuples) cost once, ever.
  Fp128 Fingerprint() const;

  // Multi-line display: header then one tuple per line.
  std::string ToString() const;

  // Contents-equal after canonicalization (name, schema as a set, tuple
  // bag). operator== is intentionally not provided: column/tuple order is
  // presentation detail and an accidental ordered comparison is a bug trap.
  bool ContentsEqual(const Relation& other) const {
    if (!(Fingerprint() == other.Fingerprint())) return false;
    return CanonicalKey() == other.CanonicalKey();
  }

 private:
  // Attribute indices in name-sorted order: the column permutation behind
  // CanonicalKey and Fingerprint.
  std::vector<size_t> CanonicalOrder() const;

  void CopyFingerprintCache(const Relation& other) {
    if (other.fp_valid_.load(std::memory_order_acquire)) {
      fp_lo_.store(other.fp_lo_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
      fp_hi_.store(other.fp_hi_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
      fp_valid_.store(true, std::memory_order_release);
    } else {
      fp_valid_.store(false, std::memory_order_relaxed);
    }
  }

  void InvalidateFingerprint() {
    fp_valid_.store(false, std::memory_order_relaxed);
  }

  std::string name_;
  std::vector<std::string> attributes_;
  std::vector<Tuple> tuples_;
  // Lazy fingerprint cache. A Relation is shared immutably across Database
  // copies — and, under the parallel runtime, across threads — so the lazy
  // fill must be race-free without a mutex: the writer stores both lanes
  // relaxed and publishes with a release store of fp_valid_; readers pair
  // it with an acquire load. Concurrent first computations store identical
  // values (the fingerprint is a pure function of the immutable contents).
  // Mutators require exclusive ownership and just drop validity.
  mutable std::atomic<uint64_t> fp_lo_{0};
  mutable std::atomic<uint64_t> fp_hi_{0};
  mutable std::atomic<bool> fp_valid_{false};
};

}  // namespace tupelo

#endif  // TUPELO_RELATIONAL_RELATION_H_
