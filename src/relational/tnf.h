#ifndef TUPELO_RELATIONAL_TNF_H_
#define TUPELO_RELATIONAL_TNF_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/database.h"

namespace tupelo {

// Tuple Normal Form (Litwin, Ketabchi & Krishnamurthy 1991): a whole
// database encoded as one four-column relation
//   (TID, REL, ATT, VALUE)
// with one row per (tuple, attribute) pair. TUPELO uses TNF as its internal
// interchange format; the set-based heuristics (h1..h3) are defined over
// the REL/ATT/VALUE columns.

inline constexpr char kTnfTid[] = "TID";
inline constexpr char kTnfRel[] = "REL";
inline constexpr char kTnfAtt[] = "ATT";
inline constexpr char kTnfValue[] = "VALUE";
inline constexpr char kTnfRelationName[] = "TNF";

// One decoded TNF row.
struct TnfRow {
  std::string tid;
  std::string rel;
  std::string att;
  Value value;

  friend bool operator==(const TnfRow&, const TnfRow&) = default;
};

// Encodes `db` into its TNF relation. Tuple IDs are "t1", "t2", ... assigned
// in (relation-name, tuple-position) order, unique across the database.
// Null cells are encoded as null VALUEs. Empty relations and attribute-less
// tuples produce no rows (TNF cannot represent them; see DecodeTnf).
Relation EncodeTnf(const Database& db);

// Convenience: the rows of EncodeTnf as structs.
std::vector<TnfRow> TnfRows(const Database& db);

// Rebuilds a database from a TNF relation. The input must have exactly the
// four TNF attributes. Each (TID) group must mention every attribute of its
// relation exactly once, and all tuples of one relation must agree on the
// attribute set; otherwise a ParseError/InvalidArgument is returned.
// Attribute order within a relation is first-mention order.
Result<Database> DecodeTnf(const Relation& tnf);

}  // namespace tupelo

#endif  // TUPELO_RELATIONAL_TNF_H_
