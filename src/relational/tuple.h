#ifndef TUPELO_RELATIONAL_TUPLE_H_
#define TUPELO_RELATIONAL_TUPLE_H_

#include <compare>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "relational/value.h"

namespace tupelo {

// An ordered list of values, positionally aligned with the schema of the
// relation that owns it. Tuples are plain data; schema-aware operations
// (projection by attribute name, etc.) live on Relation.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  // Convenience: builds a tuple of non-null atoms.
  static Tuple OfAtoms(std::initializer_list<const char*> atoms) {
    std::vector<Value> vs;
    vs.reserve(atoms.size());
    for (const char* a : atoms) vs.emplace_back(a);
    return Tuple(std::move(vs));
  }
  static Tuple OfAtoms(const std::vector<std::string>& atoms) {
    std::vector<Value> vs;
    vs.reserve(atoms.size());
    for (const std::string& a : atoms) vs.emplace_back(a);
    return Tuple(std::move(vs));
  }

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }
  const Value& operator[](size_t i) const { return values_[i]; }
  Value& operator[](size_t i) { return values_[i]; }

  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  // Removes the value at position `i`; positions above shift down.
  void Erase(size_t i) {
    values_.erase(values_.begin() + static_cast<ptrdiff_t>(i));
  }

  // True if every position is merge-compatible with `other`'s
  // (requires equal arity, which the caller guarantees).
  bool MergeCompatibleWith(const Tuple& other) const {
    for (size_t i = 0; i < values_.size(); ++i) {
      if (!MergeCompatible(values_[i], other.values_[i])) return false;
    }
    return true;
  }

  // Pointwise merge of two merge-compatible tuples.
  Tuple MergedWith(const Tuple& other) const {
    std::vector<Value> out;
    out.reserve(values_.size());
    for (size_t i = 0; i < values_.size(); ++i) {
      out.push_back(MergeValues(values_[i], other.values_[i]));
    }
    return Tuple(std::move(out));
  }

  // "(a, ⊥, c)"
  std::string ToString() const;

  friend bool operator==(const Tuple& a, const Tuple& b) = default;
  friend std::strong_ordering operator<=>(const Tuple& a, const Tuple& b) {
    return a.values_ <=> b.values_;
  }

 private:
  std::vector<Value> values_;
};

}  // namespace tupelo

#endif  // TUPELO_RELATIONAL_TUPLE_H_
