#include "relational/tnf.h"

#include <algorithm>
#include <map>
#include <utility>

namespace tupelo {

Relation EncodeTnf(const Database& db) {
  Result<Relation> created = Relation::Create(
      kTnfRelationName, {kTnfTid, kTnfRel, kTnfAtt, kTnfValue});
  Relation tnf = std::move(created).value();
  size_t next_tid = 1;
  for (const auto& [rname, relp] : db.relations()) {
    const Relation& rel = *relp;
    for (const Tuple& t : rel.tuples()) {
      std::string tid = "t" + std::to_string(next_tid++);
      for (size_t i = 0; i < rel.arity(); ++i) {
        Tuple row(std::vector<Value>{Value(tid), Value(rname),
                                     Value(rel.attributes()[i]), t[i]});
        // Arity is four by construction; AddTuple cannot fail.
        (void)tnf.AddTuple(std::move(row));
      }
    }
  }
  return tnf;
}

std::vector<TnfRow> TnfRows(const Database& db) {
  Relation tnf = EncodeTnf(db);
  std::vector<TnfRow> rows;
  rows.reserve(tnf.size());
  for (const Tuple& t : tnf.tuples()) {
    rows.push_back(TnfRow{t[0].atom(), t[1].atom(), t[2].atom(), t[3]});
  }
  return rows;
}

Result<Database> DecodeTnf(const Relation& tnf) {
  const std::vector<std::string> want = {kTnfTid, kTnfRel, kTnfAtt, kTnfValue};
  if (tnf.attributes() != want) {
    return Status::InvalidArgument(
        "TNF relation must have attributes (TID, REL, ATT, VALUE), got (" +
        [&] {
          std::string s;
          for (size_t i = 0; i < tnf.attributes().size(); ++i) {
            if (i > 0) s += ", ";
            s += tnf.attributes()[i];
          }
          return s;
        }() +
        ")");
  }

  // Group rows by TID, remembering relation, attribute order and values.
  struct TupleBuild {
    std::string rel;
    std::vector<std::string> attrs;
    std::vector<Value> values;
    size_t first_row;  // for deterministic tuple ordering
  };
  std::map<std::string, TupleBuild> by_tid;
  std::vector<std::string> tid_order;

  for (size_t row_idx = 0; row_idx < tnf.tuples().size(); ++row_idx) {
    const Tuple& row = tnf.tuples()[row_idx];
    for (size_t i = 0; i < 3; ++i) {
      if (row[i].is_null()) {
        return Status::ParseError("TNF TID/REL/ATT must be non-null");
      }
    }
    const std::string& tid = row[0].atom();
    const std::string& rel = row[1].atom();
    const std::string& att = row[2].atom();

    auto [it, inserted] = by_tid.try_emplace(tid);
    TupleBuild& tb = it->second;
    if (inserted) {
      tb.rel = rel;
      tb.first_row = row_idx;
      tid_order.push_back(tid);
    } else if (tb.rel != rel) {
      return Status::ParseError("TID '" + tid +
                                "' spans relations '" + tb.rel + "' and '" +
                                rel + "'");
    }
    for (const std::string& prev : tb.attrs) {
      if (prev == att) {
        return Status::ParseError("TID '" + tid + "' repeats attribute '" +
                                  att + "'");
      }
    }
    tb.attrs.push_back(att);
    tb.values.push_back(row[3]);
  }

  // Assemble relations; attribute order = first-mentioned tuple's order.
  Database db;
  // Sort tids by first appearance to keep tuple order stable.
  std::sort(tid_order.begin(), tid_order.end(),
            [&](const std::string& a, const std::string& b) {
              return by_tid.at(a).first_row < by_tid.at(b).first_row;
            });

  for (const std::string& tid : tid_order) {
    const TupleBuild& tb = by_tid.at(tid);
    if (!db.HasRelation(tb.rel)) {
      TUPELO_ASSIGN_OR_RETURN(Relation r,
                              Relation::Create(tb.rel, tb.attrs));
      TUPELO_RETURN_IF_ERROR(db.AddRelation(std::move(r)));
    }
    TUPELO_ASSIGN_OR_RETURN(Relation * rel, db.GetMutableRelation(tb.rel));
    if (tb.attrs.size() != rel->arity()) {
      return Status::ParseError("TID '" + tid + "' has " +
                                std::to_string(tb.attrs.size()) +
                                " attributes; relation '" + tb.rel + "' has " +
                                std::to_string(rel->arity()));
    }
    // Reorder values into the relation's attribute order.
    std::vector<Value> ordered(rel->arity());
    for (size_t i = 0; i < tb.attrs.size(); ++i) {
      std::optional<size_t> idx = rel->AttributeIndex(tb.attrs[i]);
      if (!idx.has_value()) {
        return Status::ParseError("TID '" + tid + "' mentions attribute '" +
                                  tb.attrs[i] + "' unknown to relation '" +
                                  tb.rel + "'");
      }
      ordered[*idx] = tb.values[i];
    }
    TUPELO_RETURN_IF_ERROR(rel->AddTuple(Tuple(std::move(ordered))));
  }
  return db;
}

}  // namespace tupelo
