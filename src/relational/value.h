#ifndef TUPELO_RELATIONAL_VALUE_H_
#define TUPELO_RELATIONAL_VALUE_H_

#include <compare>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace tupelo {

// A single cell of a relation: either a string atom or the null marker
// (written "⊥"). TUPELO is a purely syntactic system, so all atoms are
// strings; complex semantic functions parse their own argument encodings.
// Nulls arise from the data-metadata operators (promote creates columns
// that are null for non-matching tuples; merge unifies null-compatible
// tuples).
class Value {
 public:
  // Constructs the null value.
  Value() = default;

  explicit Value(std::string atom) : null_(false), atom_(std::move(atom)) {}
  explicit Value(std::string_view atom) : null_(false), atom_(atom) {}
  explicit Value(const char* atom) : null_(false), atom_(atom) {}

  static Value Null() { return Value(); }

  bool is_null() const { return null_; }

  // The string atom; must not be called on a null value.
  const std::string& atom() const { return atom_; }

  // Display form: the atom itself, or "⊥" for null.
  std::string ToString() const { return null_ ? "⊥" : atom_; }

  // Nulls compare equal to each other and order before all atoms.
  friend bool operator==(const Value& a, const Value& b) {
    return a.null_ == b.null_ && a.atom_ == b.atom_;
  }
  friend std::strong_ordering operator<=>(const Value& a, const Value& b) {
    if (a.null_ != b.null_) {
      return a.null_ ? std::strong_ordering::less
                     : std::strong_ordering::greater;
    }
    return a.atom_ <=> b.atom_;
  }

 private:
  bool null_ = true;
  std::string atom_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

// Two values are merge-compatible when they are equal or either is null
// (Wyss & Robertson's simple merge, used by the µ operator).
inline bool MergeCompatible(const Value& a, const Value& b) {
  return a.is_null() || b.is_null() || a == b;
}

// The non-null one of two merge-compatible values (either if both non-null
// and equal; null if both null).
inline Value MergeValues(const Value& a, const Value& b) {
  return a.is_null() ? b : a;
}

}  // namespace tupelo

#endif  // TUPELO_RELATIONAL_VALUE_H_
