#include "relational/algebra.h"

#include <optional>
#include <set>
#include <utility>

namespace tupelo {

Relation Select(const Relation& input, const TuplePredicate& predicate) {
  Result<Relation> out = Relation::Create(input.name(), input.attributes());
  Relation result = std::move(out).value();
  for (const Tuple& t : input.tuples()) {
    if (predicate(input, t)) {
      (void)result.AddTuple(t);
    }
  }
  return result;
}

TuplePredicate AttributeEquals(std::string attr, std::string atom) {
  return [attr = std::move(attr), atom = std::move(atom)](
             const Relation& schema, const Tuple& tuple) {
    std::optional<size_t> idx = schema.AttributeIndex(attr);
    if (!idx.has_value()) return false;
    const Value& v = tuple[*idx];
    return !v.is_null() && v.atom() == atom;
  };
}

TuplePredicate AttributeIsNull(std::string attr) {
  return [attr = std::move(attr)](const Relation& schema,
                                  const Tuple& tuple) {
    std::optional<size_t> idx = schema.AttributeIndex(attr);
    if (!idx.has_value()) return false;
    return tuple[*idx].is_null();
  };
}

Result<Relation> Project(const Relation& input,
                         const std::vector<std::string>& attrs) {
  TUPELO_ASSIGN_OR_RETURN(Relation out, Relation::Create(input.name(), attrs));
  TUPELO_ASSIGN_OR_RETURN(std::vector<Tuple> tuples,
                          input.ProjectTuples(attrs));
  for (Tuple& t : tuples) {
    TUPELO_RETURN_IF_ERROR(out.AddTuple(std::move(t)));
  }
  return out;
}

namespace {

Status RequireSameSchema(const Relation& left, const Relation& right,
                         const char* op) {
  if (left.attributes() != right.attributes()) {
    return Status::InvalidArgument(
        std::string(op) + ": schemas differ (" + left.name() + " vs " +
        right.name() + ")");
  }
  return Status::OK();
}

}  // namespace

Result<Relation> Union(const Relation& left, const Relation& right) {
  TUPELO_RETURN_IF_ERROR(RequireSameSchema(left, right, "union"));
  TUPELO_ASSIGN_OR_RETURN(Relation out,
                          Relation::Create(left.name(), left.attributes()));
  for (const Tuple& t : left.tuples()) TUPELO_RETURN_IF_ERROR(out.AddTuple(t));
  for (const Tuple& t : right.tuples()) {
    TUPELO_RETURN_IF_ERROR(out.AddTuple(t));
  }
  return out;
}

Result<Relation> Difference(const Relation& left, const Relation& right) {
  TUPELO_RETURN_IF_ERROR(RequireSameSchema(left, right, "difference"));
  TUPELO_ASSIGN_OR_RETURN(Relation out,
                          Relation::Create(left.name(), left.attributes()));
  // Bag difference: each right tuple cancels one left occurrence.
  std::vector<bool> used(right.size(), false);
  for (const Tuple& t : left.tuples()) {
    bool cancelled = false;
    for (size_t i = 0; i < right.size(); ++i) {
      if (!used[i] && right.tuples()[i] == t) {
        used[i] = true;
        cancelled = true;
        break;
      }
    }
    if (!cancelled) TUPELO_RETURN_IF_ERROR(out.AddTuple(t));
  }
  return out;
}

Result<Relation> NaturalJoin(const Relation& left, const Relation& right) {
  // Shared attributes, in left's order.
  std::vector<std::string> shared;
  for (const std::string& a : left.attributes()) {
    if (right.HasAttribute(a)) shared.push_back(a);
  }
  std::vector<std::string> out_attrs = left.attributes();
  for (const std::string& a : right.attributes()) {
    if (!left.HasAttribute(a)) out_attrs.push_back(a);
  }
  TUPELO_ASSIGN_OR_RETURN(
      Relation out, Relation::Create(left.name() + "⨝" + right.name(),
                                     std::move(out_attrs)));

  std::vector<size_t> left_shared;
  std::vector<size_t> right_shared;
  for (const std::string& a : shared) {
    left_shared.push_back(*left.AttributeIndex(a));
    right_shared.push_back(*right.AttributeIndex(a));
  }
  std::vector<size_t> right_extra;
  for (size_t i = 0; i < right.arity(); ++i) {
    if (!left.HasAttribute(right.attributes()[i])) right_extra.push_back(i);
  }

  for (const Tuple& lt : left.tuples()) {
    for (const Tuple& rt : right.tuples()) {
      bool match = true;
      for (size_t i = 0; i < shared.size(); ++i) {
        const Value& lv = lt[left_shared[i]];
        const Value& rv = rt[right_shared[i]];
        if (lv.is_null() || rv.is_null() || !(lv == rv)) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      std::vector<Value> vs = lt.values();
      for (size_t i : right_extra) vs.push_back(rt[i]);
      TUPELO_RETURN_IF_ERROR(out.AddTuple(Tuple(std::move(vs))));
    }
  }
  return out;
}

Relation Distinct(const Relation& input) {
  Result<Relation> created =
      Relation::Create(input.name(), input.attributes());
  Relation out = std::move(created).value();
  std::set<Tuple> seen;
  for (const Tuple& t : input.tuples()) {
    if (seen.insert(t).second) {
      (void)out.AddTuple(t);
    }
  }
  return out;
}

}  // namespace tupelo
