#include "relational/database.h"

#include <utility>

#include "common/hash.h"

namespace tupelo {

Status Database::AddRelation(Relation relation) {
  fingerprint_.reset();
  std::string name = relation.name();
  if (name.empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  auto [it, inserted] = relations_.emplace(name, std::move(relation));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("relation '" + name + "' already exists");
  }
  return Status::OK();
}

void Database::PutRelation(Relation relation) {
  fingerprint_.reset();
  std::string name = relation.name();
  relations_.insert_or_assign(std::move(name), std::move(relation));
}

Status Database::RemoveRelation(std::string_view name) {
  fingerprint_.reset();
  auto it = relations_.find(std::string(name));
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + std::string(name) + "' not found");
  }
  relations_.erase(it);
  return Status::OK();
}

Status Database::RenameRelation(std::string_view from, const std::string& to) {
  fingerprint_.reset();
  if (to.empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  auto it = relations_.find(std::string(from));
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + std::string(from) + "' not found");
  }
  if (relations_.contains(to)) {
    return Status::AlreadyExists("relation '" + to + "' already exists");
  }
  Relation r = std::move(it->second);
  relations_.erase(it);
  r.set_name(to);
  relations_.emplace(to, std::move(r));
  return Status::OK();
}

bool Database::HasRelation(std::string_view name) const {
  return relations_.contains(std::string(name));
}

Result<const Relation*> Database::GetRelation(std::string_view name) const {
  auto it = relations_.find(std::string(name));
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + std::string(name) + "' not found");
  }
  return &it->second;
}

Result<Relation*> Database::GetMutableRelation(std::string_view name) {
  fingerprint_.reset();
  auto it = relations_.find(std::string(name));
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + std::string(name) + "' not found");
  }
  return &it->second;
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

size_t Database::TupleCount() const {
  size_t n = 0;
  for (const auto& [name, rel] : relations_) n += rel.size();
  return n;
}

bool Database::Contains(const Database& target) const {
  for (const auto& [name, trel] : target.relations_) {
    auto it = relations_.find(name);
    if (it == relations_.end()) return false;
    const Relation& srel = it->second;
    // Target attributes must all be present here.
    for (const std::string& attr : trel.attributes()) {
      if (!srel.HasAttribute(attr)) return false;
    }
    Result<std::vector<Tuple>> projected =
        srel.ProjectTuples(trel.attributes());
    if (!projected.ok()) return false;
    // Every target tuple must match some projected tuple.
    for (const Tuple& want : trel.tuples()) {
      bool found = false;
      for (const Tuple& have : projected.value()) {
        if (have == want) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
  }
  return true;
}

std::string Database::CanonicalKey() const {
  std::string key;
  for (const auto& [name, rel] : relations_) {
    key += rel.CanonicalKey();
    key += ";";
  }
  return key;
}

uint64_t Database::Fingerprint() const {
  if (!fingerprint_.has_value()) fingerprint_ = Fnv1a(CanonicalKey());
  return *fingerprint_;
}

std::string Database::ToString() const {
  std::string out;
  bool first = true;
  for (const auto& [name, rel] : relations_) {
    if (!first) out += "\n";
    first = false;
    out += rel.ToString();
  }
  return out;
}

}  // namespace tupelo
