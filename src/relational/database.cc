#include "relational/database.h"

#include <atomic>
#include <unordered_set>
#include <utility>

#include "relational/tnf.h"

namespace tupelo {

namespace {

// Process-wide COW telemetry (relaxed: statistics, not synchronization)
// plus thread-local mirrors. Every event bumps both, so GlobalCowStats
// stays a whole-process gauge while ThreadCowStats supports per-search
// attribution under concurrency.
std::atomic<uint64_t> g_cow_copies{0};
std::atomic<uint64_t> g_relations_shared{0};
thread_local uint64_t tl_cow_copies = 0;
thread_local uint64_t tl_relations_shared = 0;

void NoteCowCopy() {
  g_cow_copies.fetch_add(1, std::memory_order_relaxed);
  ++tl_cow_copies;
}

void NoteRelationsShared(uint64_t count) {
  if (count == 0) return;  // don't touch the shared line for empty copies
  g_relations_shared.fetch_add(count, std::memory_order_relaxed);
  tl_relations_shared += count;
}

}  // namespace

Database::CowStats Database::GlobalCowStats() {
  CowStats out;
  out.cow_copies = g_cow_copies.load(std::memory_order_relaxed);
  out.relations_shared = g_relations_shared.load(std::memory_order_relaxed);
  return out;
}

Database::CowStats Database::ThreadCowStats() {
  CowStats out;
  out.cow_copies = tl_cow_copies;
  out.relations_shared = tl_relations_shared;
  return out;
}

Database::Database(const Database& other)
    : relations_(other.relations_), fingerprint_(other.fingerprint_) {
  NoteRelationsShared(relations_.size());
}

Database& Database::operator=(const Database& other) {
  if (this != &other) {
    // Count only pointers this assignment newly shares: a pointer already
    // held under the same name (repeated `a = b`) was counted when it was
    // first shared, and the relations dropped by the assignment must not
    // inflate the tally either.
    uint64_t newly_shared = 0;
    for (const auto& [name, rel] : other.relations_) {
      auto it = relations_.find(name);
      if (it == relations_.end() || it->second != rel) ++newly_shared;
    }
    relations_ = other.relations_;
    fingerprint_ = other.fingerprint_;
    NoteRelationsShared(newly_shared);
  }
  return *this;
}

Status Database::AddRelation(Relation relation) {
  std::string name = relation.name();
  if (name.empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  if (relations_.contains(name)) {
    return Status::AlreadyExists("relation '" + name + "' already exists");
  }
  RelationPtr ptr = std::make_shared<Relation>(std::move(relation));
  if (fingerprint_.has_value()) fingerprint_->Add(ptr->Fingerprint());
  relations_.emplace(std::move(name), std::move(ptr));
  return Status::OK();
}

void Database::PutRelation(Relation relation) {
  PutRelation(std::make_shared<Relation>(std::move(relation)));
}

void Database::PutRelation(RelationPtr relation) {
  std::string name = relation->name();
  auto it = relations_.find(name);
  if (fingerprint_.has_value()) {
    if (it != relations_.end()) {
      fingerprint_->Subtract(it->second->Fingerprint());
    }
    fingerprint_->Add(relation->Fingerprint());
  }
  if (it != relations_.end()) {
    it->second = std::move(relation);
  } else {
    relations_.emplace(std::move(name), std::move(relation));
  }
}

Status Database::RemoveRelation(std::string_view name) {
  auto it = relations_.find(std::string(name));
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + std::string(name) + "' not found");
  }
  if (fingerprint_.has_value()) {
    fingerprint_->Subtract(it->second->Fingerprint());
  }
  relations_.erase(it);
  return Status::OK();
}

Status Database::RenameRelation(std::string_view from, const std::string& to) {
  if (to.empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  auto it = relations_.find(std::string(from));
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + std::string(from) + "' not found");
  }
  if (relations_.contains(to)) {
    return Status::AlreadyExists("relation '" + to + "' already exists");
  }
  RelationPtr r = std::move(it->second);
  if (fingerprint_.has_value()) fingerprint_->Subtract(r->Fingerprint());
  relations_.erase(it);
  if (r.use_count() == 1) {
    // Sole owner: rename in place. Safe because every Relation is created
    // non-const via make_shared<Relation>.
    const_cast<Relation*>(r.get())->set_name(to);
  } else {
    auto clone = std::make_shared<Relation>(*r);
    clone->set_name(to);
    r = std::move(clone);
    NoteCowCopy();
  }
  if (fingerprint_.has_value()) fingerprint_->Add(r->Fingerprint());
  relations_.emplace(to, std::move(r));
  return Status::OK();
}

bool Database::HasRelation(std::string_view name) const {
  return relations_.contains(std::string(name));
}

Result<const Relation*> Database::GetRelation(std::string_view name) const {
  auto it = relations_.find(std::string(name));
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + std::string(name) + "' not found");
  }
  return it->second.get();
}

Result<Relation*> Database::GetMutableRelation(std::string_view name) {
  auto it = relations_.find(std::string(name));
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + std::string(name) + "' not found");
  }
  // The caller may mutate through the pointer at any later time, so the
  // cached fingerprint cannot be maintained incrementally here.
  fingerprint_.reset();
  if (it->second.use_count() != 1) {
    it->second = std::make_shared<Relation>(*it->second);
    NoteCowCopy();
  }
  return const_cast<Relation*>(it->second.get());
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

size_t Database::TupleCount() const {
  size_t n = 0;
  for (const auto& [name, rel] : relations_) n += rel->size();
  return n;
}

Status Database::Validate() const {
  for (const auto& [key, rel] : relations_) {
    if (rel == nullptr) {
      return Status::Internal("relation '" + key + "' is null");
    }
    if (rel->name() != key) {
      return Status::Internal("relation keyed '" + key + "' is named '" +
                              rel->name() + "'");
    }
    if (rel->name().empty()) {
      return Status::InvalidArgument("relation with empty name");
    }
    std::unordered_set<std::string_view> attr_names;
    for (const std::string& attr : rel->attributes()) {
      if (attr.empty()) {
        return Status::InvalidArgument("relation '" + key +
                                       "' has an empty attribute name");
      }
      if (!attr_names.insert(attr).second) {
        return Status::InvalidArgument("relation '" + key +
                                       "' has duplicate attribute '" + attr +
                                       "'");
      }
    }
    size_t arity = rel->arity();
    for (const Tuple& tuple : rel->tuples()) {
      if (tuple.size() != arity) {
        return Status::InvalidArgument(
            "relation '" + key + "' has a tuple of arity " +
            std::to_string(tuple.size()) + " against a schema of arity " +
            std::to_string(arity));
      }
    }
    // A relation claiming to be the TNF encoding must actually decode.
    if (rel->name() == kTnfRelationName && arity == 4 &&
        rel->HasAttribute(kTnfTid) && rel->HasAttribute(kTnfRel) &&
        rel->HasAttribute(kTnfAtt) && rel->HasAttribute(kTnfValue)) {
      Result<Database> decoded = DecodeTnf(*rel);
      if (!decoded.ok()) {
        return Status::InvalidArgument("relation '" + key +
                                       "' claims TNF but does not decode: " +
                                       decoded.status().message());
      }
    }
  }
  return Status::OK();
}

bool Database::Contains(const Database& target) const {
  for (const auto& [name, trel] : target.relations_) {
    auto it = relations_.find(name);
    if (it == relations_.end()) return false;
    const Relation& srel = *it->second;
    // Target attributes must all be present here.
    for (const std::string& attr : trel->attributes()) {
      if (!srel.HasAttribute(attr)) return false;
    }
    Result<std::vector<Tuple>> projected =
        srel.ProjectTuples(trel->attributes());
    if (!projected.ok()) return false;
    // Every target tuple must match some projected tuple.
    for (const Tuple& want : trel->tuples()) {
      bool found = false;
      for (const Tuple& have : projected.value()) {
        if (have == want) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
  }
  return true;
}

std::string Database::CanonicalKey() const {
  std::string key;
  for (const auto& [name, rel] : relations_) {
    key += rel->CanonicalKey();
    key += ";";
  }
  return key;
}

Fp128 Database::Fingerprint128() const {
  if (!fingerprint_.has_value()) {
    Fp128 fp;
    for (const auto& [name, rel] : relations_) fp.Add(rel->Fingerprint());
    fingerprint_ = fp;
  }
  return *fingerprint_;
}

std::string Database::ToString() const {
  std::string out;
  bool first = true;
  for (const auto& [name, rel] : relations_) {
    if (!first) out += "\n";
    first = false;
    out += rel->ToString();
  }
  return out;
}

}  // namespace tupelo
