#ifndef TUPELO_RELATIONAL_ALGEBRA_H_
#define TUPELO_RELATIONAL_ALGEBRA_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/relation.h"

namespace tupelo {

// Classic (named-perspective) relational algebra over Relation values.
// FIRA — and hence TUPELO's language L — extends this algebra with the
// data-metadata operators (fira/operators.h); the classic fragment lives
// here and is used for post-processing (§2.1: selections/projections are
// applied after mapping discovery) and by tests.
//
// All operators are pure: inputs are untouched, results are new relations
// (named after the primary input unless stated otherwise). Bag semantics
// throughout, matching the rest of the library; Distinct() removes
// duplicates explicitly.

// A row predicate: receives the tuple and the owning relation's schema.
using TuplePredicate =
    std::function<bool(const Relation& schema, const Tuple& tuple)>;

// σ: keeps the tuples satisfying `predicate`.
Relation Select(const Relation& input, const TuplePredicate& predicate);

// Convenience predicates for Select.
TuplePredicate AttributeEquals(std::string attr, std::string atom);
TuplePredicate AttributeIsNull(std::string attr);

// π: projects onto `attrs` in the given order (duplicates preserved).
Result<Relation> Project(const Relation& input,
                         const std::vector<std::string>& attrs);

// ∪ / −: inputs must have identical schemas (same attributes, same order).
Result<Relation> Union(const Relation& left, const Relation& right);
Result<Relation> Difference(const Relation& left, const Relation& right);

// ⨝: natural join on the shared attributes (Cartesian product when the
// schemas are disjoint). Null join-key values never match. The result is
// named "left⨝right" with left's attributes followed by right's non-shared
// attributes.
Result<Relation> NaturalJoin(const Relation& left, const Relation& right);

// Removes duplicate tuples (bag → set).
Relation Distinct(const Relation& input);

}  // namespace tupelo

#endif  // TUPELO_RELATIONAL_ALGEBRA_H_
