// The structured-tracing subsystem (obs/trace.h): per-thread ring
// buffers (wraparound retention, dropped-event accounting), concurrent
// emission from pool workers, B/E pairing in the Chrome JSON export, the
// binary flight-record round trip, and the spans Tupelo::Discover emits
// across the driver, search, executor, and pool layers — including the
// flight-recorder dump triggers.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/mapping_problem.h"
#include "core/tupelo.h"
#include "heuristics/heuristic_factory.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/io.h"
#include "search/ida_star.h"
#include "search/trace.h"
#include "workloads/synthetic.h"

namespace tupelo {
namespace {

using obs::TraceCategory;
using obs::TraceExportEvent;
using obs::TracePhase;
using obs::TraceSession;
using obs::TraceSpan;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

Database Tdb(const char* text) {
  Result<Database> db = ParseTdb(text);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

// ---------------------------------------------------------------------------
// Ring buffer semantics
// ---------------------------------------------------------------------------

TEST(TraceRingTest, RecordsEventsWithArgs) {
  TraceSession session;
  session.EmitInstant(TraceCategory::kSearch, "tick", "n", 7, "m", -3);
  std::vector<TraceExportEvent> events = session.Collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "tick");
  EXPECT_EQ(events[0].phase, TracePhase::kInstant);
  EXPECT_EQ(events[0].cat, TraceCategory::kSearch);
  ASSERT_EQ(events[0].args.size(), 2u);
  EXPECT_EQ(events[0].args[0].first, "n");
  EXPECT_EQ(events[0].args[0].second, 7);
  EXPECT_EQ(events[0].args[1].first, "m");
  EXPECT_EQ(events[0].args[1].second, -3);
  EXPECT_EQ(session.events_recorded(), 1u);
  EXPECT_EQ(session.events_dropped(), 0u);
}

TEST(TraceRingTest, WraparoundKeepsLastEventsAndCountsDropped) {
  // buffer_kb=1 rounds up to the 64-record minimum ring.
  TraceSession session(1);
  const uint64_t cap = session.ring_capacity();
  ASSERT_GE(cap, 64u);
  const uint64_t total = cap + 100;
  for (uint64_t i = 0; i < total; ++i) {
    session.EmitInstant(TraceCategory::kSearch, "tick", "i",
                        static_cast<int64_t>(i));
  }
  EXPECT_EQ(session.events_recorded(), total);
  EXPECT_EQ(session.events_dropped(), total - cap);

  // The retained window is exactly the *last* cap events, in order.
  std::vector<TraceExportEvent> events = session.Collect();
  ASSERT_EQ(events.size(), cap);
  for (uint64_t i = 0; i < cap; ++i) {
    ASSERT_EQ(events[i].args.size(), 1u);
    EXPECT_EQ(events[i].args[0].second,
              static_cast<int64_t>(total - cap + i));
  }
}

TEST(TraceRingTest, SpanRaiiEmitsMatchedBeginEnd) {
  TraceSession session;
  {
    TraceSpan span(&session, TraceCategory::kExpand, "expand");
    span.SetEndArg("successors", 5);
  }
  std::vector<TraceExportEvent> events = session.Collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, TracePhase::kBegin);
  EXPECT_EQ(events[1].phase, TracePhase::kEnd);
  EXPECT_EQ(events[1].name, "expand");
  ASSERT_EQ(events[1].args.size(), 1u);
  EXPECT_EQ(events[1].args[0].first, "successors");
  EXPECT_EQ(events[1].args[0].second, 5);
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
}

TEST(TraceRingTest, NullSessionSpanIsANoOp) {
  TraceSpan span(nullptr, TraceCategory::kSearch, "nothing");
  span.SetEndArg("x", 1);  // must not crash
}

TEST(TraceRingTest, OrphanedEndFromWraparoundIsReconciled) {
  TraceSession session(1);
  const uint64_t cap = session.ring_capacity();
  // One outer span whose B gets overwritten by the instants flooding the
  // ring, leaving an orphan E: reconciliation must drop it, and the
  // still-open inner B must be closed.
  session.EmitBegin(TraceCategory::kSearch, "outer");
  for (uint64_t i = 0; i < cap + 8; ++i) {
    session.EmitInstant(TraceCategory::kSearch, "tick");
  }
  session.EmitEnd(TraceCategory::kSearch, "outer");
  session.EmitBegin(TraceCategory::kSearch, "unclosed");
  std::vector<TraceExportEvent> events = session.Collect();
  int begins = 0, ends = 0;
  std::map<std::string, int> open;
  for (const TraceExportEvent& e : events) {
    if (e.phase == TracePhase::kBegin) {
      ++begins;
      ++open[e.name];
    } else if (e.phase == TracePhase::kEnd) {
      ++ends;
      --open[e.name];
    }
  }
  EXPECT_EQ(begins, ends);
  for (const auto& [name, count] : open) {
    EXPECT_EQ(count, 0) << name;
  }
}

TEST(TraceRingTest, FaultInstantsBumpFaultCount) {
  TraceSession session;
  EXPECT_EQ(session.fault_count(), 0u);
  session.EmitInstant(TraceCategory::kFault, "fault.injected");
  session.EmitInstant(TraceCategory::kSearch, "tick");
  EXPECT_EQ(session.fault_count(), 1u);
}

// ---------------------------------------------------------------------------
// Concurrent emission
// ---------------------------------------------------------------------------

TEST(TraceConcurrencyTest, PoolWorkersGetDistinctTracks) {
  TraceSession session;
  ThreadPool pool(4);
  obs::PoolTaskTracer hook(&session);
  pool.set_trace_hook(&hook);

  // A start barrier forces all four workers to hold a task at once, so
  // exactly four distinct worker tracks must appear.
  std::atomic<int> started{0};
  WaitGroup wg;
  wg.Add(4);
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&] {
      started.fetch_add(1, std::memory_order_relaxed);
      while (started.load(std::memory_order_relaxed) < 4) {
      }
      session.EmitInstant(TraceCategory::kSearch, "worker.tick");
      wg.Done();
    });
  }
  wg.Wait();

  EXPECT_EQ(session.thread_count(), 4u);
  std::set<uint32_t> tids;
  int pool_spans = 0;
  for (const TraceExportEvent& e : session.Collect()) {
    if (e.name == "worker.tick") tids.insert(e.tid);
    if (e.name == "pool.task" && e.phase == TracePhase::kBegin) ++pool_spans;
  }
  EXPECT_EQ(tids.size(), 4u);
  EXPECT_EQ(pool_spans, 4);
}

TEST(TraceConcurrencyTest, ManyThreadsEmittingLosesNothing) {
  TraceSession session;
  constexpr int kTasks = 400;
  {
    ThreadPool pool(4);
    WaitGroup wg;
    wg.Add(kTasks);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&session, &wg, i] {
        TraceSpan span(&session, TraceCategory::kPool, "task", "i", i);
        wg.Done();
      });
    }
    wg.Wait();
  }
  // 400 B/E pairs, no instants; default ring is large enough to hold
  // every per-thread share.
  EXPECT_EQ(session.events_recorded(), 2u * kTasks);
  EXPECT_EQ(session.events_dropped(), 0u);
}

// ---------------------------------------------------------------------------
// Chrome JSON export
// ---------------------------------------------------------------------------

TEST(TraceExportTest, ChromeJsonHasMetadataAndBalancedPairs) {
  TraceSession session;
  {
    TraceSpan outer(&session, TraceCategory::kDriver, "outer");
    TraceSpan inner(&session, TraceCategory::kSearch, "inner", "k", 9);
    session.EmitInstant(TraceCategory::kSearch, "mark");
  }
  obs::JsonValue json = session.ToChromeJson();
  const obs::JsonValue* events = json.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_GT(events->size(), 0u);

  bool saw_process_name = false;
  bool saw_thread_name = false;
  std::map<int64_t, std::vector<std::string>> stacks;  // tid -> open names
  std::map<int64_t, double> last_ts;
  for (const obs::JsonValue& e : events->elements()) {
    const std::string& ph = e.Find("ph")->as_string();
    const std::string& name = e.Find("name")->as_string();
    if (ph == "M") {
      if (name == "process_name") saw_process_name = true;
      if (name == "thread_name") saw_thread_name = true;
      continue;
    }
    const int64_t tid = e.Find("tid")->as_int();
    const double ts = e.Find("ts")->as_double();
    EXPECT_GE(ts, last_ts[tid]) << "per-thread ts must be non-decreasing";
    last_ts[tid] = ts;
    if (ph == "B") {
      stacks[tid].push_back(name);
    } else if (ph == "E") {
      ASSERT_FALSE(stacks[tid].empty());
      EXPECT_EQ(stacks[tid].back(), name);
      stacks[tid].pop_back();
    } else {
      EXPECT_EQ(ph, "i");
      EXPECT_EQ(e.Find("s")->as_string(), "t");
    }
  }
  EXPECT_TRUE(saw_process_name);
  EXPECT_TRUE(saw_thread_name);
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  }
}

TEST(TraceExportTest, WriteChromeJsonRoundTripsThroughParser) {
  TraceSession session;
  { TraceSpan span(&session, TraceCategory::kSearch, "s"); }
  std::string path = TempPath("trace_export.json");
  ASSERT_TRUE(session.WriteChromeJson(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  Result<obs::JsonValue> parsed = obs::JsonValue::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_NE(parsed->Find("traceEvents"), nullptr);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Binary flight record
// ---------------------------------------------------------------------------

TEST(FlightRecordTest, SerializeParseRoundTrip) {
  TraceSession session;
  {
    TraceSpan span(&session, TraceCategory::kExecutor, "op.promote", "rel", 2);
    session.EmitInstant(TraceCategory::kFault, "fault.injected", "n", 1);
  }
  std::string bytes = session.SerializeFlightRecord();
  Result<obs::FlightRecord> record = obs::ParseFlightRecord(bytes);
  ASSERT_TRUE(record.ok()) << record.status();
  std::vector<TraceExportEvent> direct = session.Collect();
  ASSERT_EQ(record->events.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(record->events[i].name, direct[i].name);
    EXPECT_EQ(record->events[i].ts_ns, direct[i].ts_ns);
    EXPECT_EQ(record->events[i].tid, direct[i].tid);
    EXPECT_EQ(record->events[i].phase, direct[i].phase);
    EXPECT_EQ(record->events[i].cat, direct[i].cat);
    ASSERT_EQ(record->events[i].args.size(), direct[i].args.size());
    for (size_t j = 0; j < direct[i].args.size(); ++j) {
      EXPECT_EQ(record->events[i].args[j], direct[i].args[j]);
    }
  }
  EXPECT_EQ(record->thread_count, 1u);
}

TEST(FlightRecordTest, RejectsCorruptInput) {
  EXPECT_FALSE(obs::ParseFlightRecord("").ok());
  EXPECT_FALSE(obs::ParseFlightRecord("NOPE").ok());
  TraceSession session;
  session.EmitInstant(TraceCategory::kSearch, "tick");
  std::string bytes = session.SerializeFlightRecord();
  // Truncation anywhere must yield a typed error, never a crash.
  for (size_t cut : {size_t{1}, bytes.size() / 2, bytes.size() - 1}) {
    Result<obs::FlightRecord> r =
        obs::ParseFlightRecord(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(r.ok()) << "cut=" << cut;
  }
}

TEST(FlightRecordTest, DumpAndLoadFile) {
  TraceSession session;
  session.EmitInstant(TraceCategory::kSearch, "tick", "x", 42);
  std::string path = TempPath("trace_flight.bin");
  ASSERT_TRUE(session.DumpFlightRecord(path));
  Result<obs::FlightRecord> record = obs::LoadFlightRecord(path);
  ASSERT_TRUE(record.ok()) << record.status();
  ASSERT_EQ(record->events.size(), 1u);
  EXPECT_EQ(record->events[0].name, "tick");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// SearchTracer unification
// ---------------------------------------------------------------------------

TEST(SearchTraceTest, LegacyTracerAndSessionSeeTheSameSearch) {
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(3);
  MappingProblem problem(
      pair.source, pair.target,
      MakeHeuristic(HeuristicKind::kH1, pair.target, SearchAlgorithm::kIda),
      nullptr, {}, SuccessorConfig());
  SearchTracer tracer;
  TraceSession session;
  SearchOutcome<Op> outcome =
      IdaStarSearch(problem, SearchLimits(), &tracer, nullptr, nullptr,
                    &session);
  ASSERT_TRUE(outcome.found);
  EXPECT_FALSE(tracer.events().empty());

  int visits = 0, goals = 0;
  bool saw_search_span = false;
  for (const TraceExportEvent& e : session.Collect()) {
    if (e.name == "visit") ++visits;
    if (e.name == "goal") ++goals;
    if (e.name == "search.ida" && e.phase == TracePhase::kBegin) {
      saw_search_span = true;
    }
  }
  EXPECT_TRUE(saw_search_span);
  EXPECT_EQ(goals, 1);
  // Both sinks hang off the same emission point, so the counts agree
  // (modulo the legacy tracer's own cap, not hit at this size).
  int legacy_visits = 0;
  for (const TraceEvent& e : tracer.events()) {
    if (e.kind == TraceEventKind::kVisit) ++legacy_visits;
  }
  EXPECT_EQ(visits, legacy_visits);
}

// ---------------------------------------------------------------------------
// Discover integration
// ---------------------------------------------------------------------------

TEST(DiscoverTraceTest, EmitsSpansAcrossEveryLayer) {
  Database source = Tdb("relation S (A, B) { (1, 2) }");
  Database target = Tdb("relation T (X, B) { (1, 2) }");
  Tupelo system(source, target);
  TraceSession session;
  obs::MetricRegistry metrics;
  TupeloOptions options;
  options.trace = &session;
  options.metrics = &metrics;
  Result<TupeloResult> r = system.Discover(options);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r->found);

  std::set<std::string> names;
  bool saw_op = false;
  for (const TraceExportEvent& e : session.Collect()) {
    names.insert(e.name);
    if (e.name.rfind("op.", 0) == 0) saw_op = true;
  }
  EXPECT_TRUE(names.count("discover"));
  EXPECT_TRUE(names.count("rung.rbfs"));
  EXPECT_TRUE(names.count("search.rbfs"));
  EXPECT_TRUE(names.count("expand"));
  EXPECT_TRUE(names.count("heuristic"));
  EXPECT_TRUE(names.count("verify"));
  EXPECT_TRUE(saw_op);

  // The metric mirror carries this call's delta.
  EXPECT_EQ(metrics.CounterValue("trace.events_recorded"),
            session.events_recorded());
  EXPECT_EQ(metrics.CounterValue("trace.events_dropped"),
            session.events_dropped());
}

TEST(DiscoverTraceTest, ParallelBeamProducesDistinctWorkerTracks) {
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(6);
  Tupelo system(pair.source, pair.target);
  TraceSession session;
  TupeloOptions options;
  options.algorithm = SearchAlgorithm::kBeam;
  options.beam_width = 8;
  options.threads = 4;
  options.trace = &session;
  Result<TupeloResult> r = system.Discover(options);
  ASSERT_TRUE(r.ok()) << r.status();

  std::set<uint32_t> worker_tids;
  for (const TraceExportEvent& e : session.Collect()) {
    if (e.name == "pool.task" || e.name == "beam.prepare") {
      worker_tids.insert(e.tid);
    }
  }
  EXPECT_GE(worker_tids.size(), 2u)
      << "parallel beam tasks should land on several worker tracks";
}

TEST(DiscoverTraceTest, FlightRecorderDumpsOnResourceStop) {
  Database source = Tdb("relation S (A, B) { (1, 2) }");
  Database target = Tdb("relation T (X, B) { (1, 2) }");
  Tupelo system(source, target);
  TraceSession session;
  std::string path = TempPath("trace_fr_stop.bin");
  std::remove(path.c_str());
  TupeloOptions options;
  options.trace = &session;
  options.flight_recorder_path = path;
  options.limits.max_states = 1;  // guaranteed resource stop
  Result<TupeloResult> r = system.Discover(options);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_FALSE(r->found);
  ASSERT_TRUE(IsResourceStop(r->stop_reason));
  ASSERT_TRUE(FileExists(path));
  Result<obs::FlightRecord> record = obs::LoadFlightRecord(path);
  ASSERT_TRUE(record.ok()) << record.status();
  EXPECT_FALSE(record->events.empty());
  std::remove(path.c_str());
}

TEST(DiscoverTraceTest, FlightRecorderStaysQuietOnSuccess) {
  Database source = Tdb("relation R (A) { (1) }");
  Database target = Tdb("relation R (B) { (1) }");
  Tupelo system(source, target);
  TraceSession session;
  std::string path = TempPath("trace_fr_ok.bin");
  std::remove(path.c_str());
  TupeloOptions options;
  options.trace = &session;
  options.flight_recorder_path = path;
  Result<TupeloResult> r = system.Discover(options);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r->found);
  EXPECT_TRUE(r->verified);
  EXPECT_FALSE(FileExists(path));
}

TEST(DiscoverTraceTest, FlightRecorderDumpsOnCheckpointKill) {
  Database source = Tdb("relation S (A, B, C) { (1, 2, 3) }");
  Database target = Tdb("relation T (X, Y, C) { (1, 2, 3) }");
  Tupelo system(source, target);
  TraceSession session;
  std::string cp_path = TempPath("trace_fr_kill.cp");
  std::string fr_path = TempPath("trace_fr_kill.bin");
  std::remove(fr_path.c_str());
  TupeloOptions options;
  options.trace = &session;
  options.flight_recorder_path = fr_path;
  options.checkpoint_path = cp_path;
  options.checkpoint_interval_states = 1;
  options.checkpoint_kill_after = 1;
  Result<TupeloResult> r = system.Discover(options);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->stop_reason, StopReason::kCancelled);
  ASSERT_TRUE(FileExists(fr_path));
  Result<obs::FlightRecord> record = obs::LoadFlightRecord(fr_path);
  ASSERT_TRUE(record.ok()) << record.status();
  // The dump must capture checkpoint activity from the killed run.
  bool saw_checkpoint = false;
  for (const TraceExportEvent& e : record->events) {
    if (e.name == "checkpoint.write") saw_checkpoint = true;
  }
  EXPECT_TRUE(saw_checkpoint);
  std::remove(fr_path.c_str());
  std::remove(cp_path.c_str());
}

TEST(DiscoverTraceTest, FlightRecorderPathRequiresTraceSession) {
  Database db = Tdb("relation R (A) { (1) }");
  Tupelo system(db, db);
  TupeloOptions options;
  options.flight_recorder_path = TempPath("never_written.bin");
  Result<TupeloResult> r = system.Discover(options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tupelo
