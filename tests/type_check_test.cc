#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fira/builtin_functions.h"
#include "fira/executor.h"
#include "fira/type_check.h"
#include "relational/io.h"
#include "workloads/flights.h"

namespace tupelo {
namespace {

DatabaseSchema SchemaOf(const char* tdb) {
  Result<Database> db = ParseTdb(tdb);
  EXPECT_TRUE(db.ok()) << db.status();
  return DatabaseSchema::Of(*db);
}

TEST(DatabaseSchemaTest, OfCapturesRelationsAndAttributes) {
  DatabaseSchema s = SchemaOf("relation R (A, B) { }\nrelation S (C) { }");
  ASSERT_TRUE(s.HasRelation("R"));
  EXPECT_EQ(s.relations.at("R").attributes,
            (std::vector<std::string>{"A", "B"}));
  EXPECT_FALSE(s.relations.at("R").open);
  EXPECT_FALSE(s.open);
}

TEST(TypeCheckTest, RenameAttrTracksSchema) {
  DatabaseSchema s = SchemaOf("relation R (A, B) { }");
  Result<DatabaseSchema> out =
      ApplyOpToSchema(RenameAttrOp{"R", "A", "X"}, s);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->relations.at("R").attributes,
            (std::vector<std::string>{"X", "B"}));
  EXPECT_FALSE(ApplyOpToSchema(RenameAttrOp{"R", "Z", "Y"}, s).ok());
  EXPECT_FALSE(ApplyOpToSchema(RenameAttrOp{"R", "A", "B"}, s).ok());
}

TEST(TypeCheckTest, RenameRelTracksSchema) {
  DatabaseSchema s = SchemaOf("relation R (A) { }\nrelation S (B) { }");
  Result<DatabaseSchema> out = ApplyOpToSchema(RenameRelOp{"R", "T"}, s);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->HasRelation("T"));
  EXPECT_FALSE(out->HasRelation("R"));
  EXPECT_FALSE(ApplyOpToSchema(RenameRelOp{"R", "S"}, s).ok());
  EXPECT_FALSE(ApplyOpToSchema(RenameRelOp{"Z", "T"}, s).ok());
}

TEST(TypeCheckTest, DropChecksArityAndExistence) {
  DatabaseSchema s = SchemaOf("relation R (A, B) { }");
  Result<DatabaseSchema> out = ApplyOpToSchema(DropOp{"R", "A"}, s);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->relations.at("R").attributes,
            (std::vector<std::string>{"B"}));
  EXPECT_FALSE(ApplyOpToSchema(DropOp{"R", "B"}, *out).ok());  // last column
  EXPECT_FALSE(ApplyOpToSchema(DropOp{"R", "Z"}, s).ok());
}

TEST(TypeCheckTest, PromoteOpensRelation) {
  DatabaseSchema s = SchemaOf("relation R (A, B) { }");
  Result<DatabaseSchema> out = ApplyOpToSchema(PromoteOp{"R", "A", "B"}, s);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->relations.at("R").open);
  // After opening, unknown attributes cannot be proven absent: dropping an
  // unseen name is allowed at the schema level.
  EXPECT_TRUE(ApplyOpToSchema(DropOp{"R", "mystery"}, *out).ok());
  // But before opening, it is a definite error.
  EXPECT_FALSE(ApplyOpToSchema(DropOp{"R", "mystery"}, s).ok());
}

TEST(TypeCheckTest, PartitionOpensDatabase) {
  DatabaseSchema s = SchemaOf("relation R (A, B) { }");
  Result<DatabaseSchema> out = ApplyOpToSchema(PartitionOp{"R", "A"}, s);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->open);
  // Unknown relations are now plausible: operating on one is not a
  // definite error.
  EXPECT_TRUE(ApplyOpToSchema(DemoteOp{"SomePartition"}, *out).ok());
  EXPECT_FALSE(ApplyOpToSchema(DemoteOp{"SomePartition"}, s).ok());
}

TEST(TypeCheckTest, DemoteAppendsColumnsOnce) {
  DatabaseSchema s = SchemaOf("relation R (A) { }");
  Result<DatabaseSchema> once = ApplyOpToSchema(DemoteOp{"R"}, s);
  ASSERT_TRUE(once.ok());
  EXPECT_EQ(once->relations.at("R").attributes,
            (std::vector<std::string>{"A", kDemoteAttrColumn,
                                      kDemoteValueColumn}));
  EXPECT_FALSE(ApplyOpToSchema(DemoteOp{"R"}, *once).ok());
}

TEST(TypeCheckTest, ProductChecksOverlapAndCollision) {
  DatabaseSchema s = SchemaOf("relation R (A) { }\nrelation S (B) { }");
  Result<DatabaseSchema> out = ApplyOpToSchema(ProductOp{"R", "S"}, s);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->HasRelation("R*S"));
  EXPECT_EQ(out->relations.at("R*S").attributes,
            (std::vector<std::string>{"A", "B"}));
  DatabaseSchema overlap = SchemaOf("relation R (A) { }\nrelation S (A) { }");
  EXPECT_FALSE(ApplyOpToSchema(ProductOp{"R", "S"}, overlap).ok());
  EXPECT_FALSE(ApplyOpToSchema(ProductOp{"R", "R"}, s).ok());
}

TEST(TypeCheckTest, ApplyChecksRegistryArityAndCollision) {
  FunctionRegistry reg;
  ASSERT_TRUE(RegisterBuiltinFunctions(&reg).ok());
  DatabaseSchema s = SchemaOf("relation R (A, B) { }");
  EXPECT_TRUE(
      ApplyOpToSchema(ApplyFunctionOp{"R", "add", {"A", "B"}, "S"}, s, &reg)
          .ok());
  EXPECT_FALSE(
      ApplyOpToSchema(ApplyFunctionOp{"R", "add", {"A", "B"}, "S"}, s,
                      nullptr)
          .ok());
  EXPECT_FALSE(
      ApplyOpToSchema(ApplyFunctionOp{"R", "nope", {"A"}, "S"}, s, &reg)
          .ok());
  EXPECT_FALSE(
      ApplyOpToSchema(ApplyFunctionOp{"R", "add", {"A"}, "S"}, s, &reg)
          .ok());
  EXPECT_FALSE(
      ApplyOpToSchema(ApplyFunctionOp{"R", "add", {"A", "Z"}, "S"}, s, &reg)
          .ok());
  EXPECT_FALSE(
      ApplyOpToSchema(ApplyFunctionOp{"R", "add", {"A", "B"}, "B"}, s, &reg)
          .ok());
}

TEST(TypeCheckTest, DereferenceChecks) {
  DatabaseSchema s = SchemaOf("relation R (P, A) { }");
  Result<DatabaseSchema> out =
      ApplyOpToSchema(DereferenceOp{"R", "P", "Out"}, s);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->relations.at("R").attributes,
            (std::vector<std::string>{"P", "A", "Out"}));
  EXPECT_FALSE(ApplyOpToSchema(DereferenceOp{"R", "Z", "Out"}, s).ok());
  EXPECT_FALSE(ApplyOpToSchema(DereferenceOp{"R", "P", "A"}, s).ok());
}

TEST(CheckExpressionTest, PaperExample2TypeChecks) {
  DatabaseSchema input = DatabaseSchema::Of(MakeFlightsB());
  Result<DatabaseSchema> out =
      CheckExpression(FlightsBToAExpression(), input);
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_TRUE(out->HasRelation("Flights"));
  // Promote opened the relation; the tracked attributes still reflect the
  // statically-known ones.
  EXPECT_TRUE(out->relations.at("Flights").open);
  EXPECT_TRUE(out->relations.at("Flights").HasAttribute("Carrier"));
  EXPECT_TRUE(out->relations.at("Flights").HasAttribute("Fee"));
}

TEST(CheckExpressionTest, ReportsFailingStep) {
  DatabaseSchema input = SchemaOf("relation R (A, B) { }");
  MappingExpression expr;
  expr.Append(RenameAttrOp{"R", "A", "X"});
  expr.Append(DropOp{"R", "A"});  // A was just renamed away
  Result<DatabaseSchema> out = CheckExpression(expr, input);
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("step 2"), std::string::npos);
}

TEST(CheckExpressionTest, AgreesWithExecutorOnFlights) {
  // Whenever the executor succeeds, the type checker must too (it may be
  // weaker, never stricter on valid expressions).
  Database source = MakeFlightsB();
  MappingExpression expr = FlightsBToAExpression();
  Result<Database> executed = expr.Apply(source);
  ASSERT_TRUE(executed.ok());
  Result<DatabaseSchema> checked =
      CheckExpression(expr, DatabaseSchema::Of(source));
  ASSERT_TRUE(checked.ok()) << checked.status();
  // And the tracked closed attributes appear in the executed result.
  const Relation* flights = executed->GetRelation("Flights").value();
  for (const std::string& attr :
       checked->relations.at("Flights").attributes) {
    EXPECT_TRUE(flights->HasAttribute(attr)) << attr;
  }
}

}  // namespace
}  // namespace tupelo
