#include <gtest/gtest.h>

#include <memory>
#include <string>

#include <cmath>

#include "heuristics/heuristic_factory.h"
#include "heuristics/levenshtein.h"
#include "heuristics/set_based.h"
#include "heuristics/term_vector.h"
#include "heuristics/composite.h"
#include "heuristics/vector_heuristics.h"
#include "relational/io.h"
#include "workloads/flights.h"

namespace tupelo {
namespace {

Database Tdb(const char* text) {
  Result<Database> db = ParseTdb(text);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

// ---------------------------------------------------------------------------
// Levenshtein distance
// ---------------------------------------------------------------------------

TEST(LevenshteinTest, BaseCases) {
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
}

TEST(LevenshteinTest, ClassicExamples) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("intention", "execution"), 5u);
  EXPECT_EQ(LevenshteinDistance("abc", "acb"), 2u);
}

TEST(LevenshteinTest, SingleEdits) {
  EXPECT_EQ(LevenshteinDistance("abc", "abd"), 1u);  // substitute
  EXPECT_EQ(LevenshteinDistance("abc", "abcd"), 1u); // insert
  EXPECT_EQ(LevenshteinDistance("abc", "ab"), 1u);   // delete
}

TEST(LevenshteinTest, Symmetry) {
  EXPECT_EQ(LevenshteinDistance("database", "mapping"),
            LevenshteinDistance("mapping", "database"));
}

TEST(LevenshteinTest, TriangleInequalitySpotChecks) {
  const std::string a = "search", b = "state", c = "space";
  EXPECT_LE(LevenshteinDistance(a, c),
            LevenshteinDistance(a, b) + LevenshteinDistance(b, c));
}

TEST(LevenshteinTest, BoundedByLongerLength) {
  EXPECT_LE(LevenshteinDistance("short", "muchlongerstring"),
            std::string("muchlongerstring").size());
}

// ---------------------------------------------------------------------------
// Term vectors & database string view
// ---------------------------------------------------------------------------

TEST(TermVectorTest, CountsTriples) {
  Database db = Tdb("relation R (A, B) { (1, 2) (1, 3) }");
  TermVector tv = TermVector::FromDatabase(db);
  // Triples: (R,A,1)x2, (R,B,2), (R,B,3).
  EXPECT_EQ(tv.nonzeros(), 3u);
  EXPECT_DOUBLE_EQ(tv.Norm() * tv.Norm(), 4.0 + 1.0 + 1.0);
}

TEST(TermVectorTest, EmptyDatabase) {
  TermVector tv = TermVector::FromDatabase(Database());
  EXPECT_EQ(tv.nonzeros(), 0u);
  EXPECT_DOUBLE_EQ(tv.Norm(), 0.0);
}

TEST(TermVectorTest, EuclideanDistanceIdentity) {
  Database db = MakeFlightsB();
  TermVector x = TermVector::FromDatabase(db);
  EXPECT_DOUBLE_EQ(TermVector::EuclideanDistance(x, x), 0.0);
}

TEST(TermVectorTest, EuclideanDistanceDisjoint) {
  TermVector x = TermVector::FromDatabase(Tdb("relation R (A) { (1) }"));
  TermVector y = TermVector::FromDatabase(Tdb("relation S (B) { (2) }"));
  EXPECT_DOUBLE_EQ(TermVector::EuclideanDistance(x, y), std::sqrt(2.0));
}

TEST(TermVectorTest, EuclideanSymmetry) {
  TermVector x = TermVector::FromDatabase(MakeFlightsA());
  TermVector y = TermVector::FromDatabase(MakeFlightsB());
  EXPECT_DOUBLE_EQ(TermVector::EuclideanDistance(x, y),
                   TermVector::EuclideanDistance(y, x));
}

TEST(TermVectorTest, CosineSimilarityRange) {
  TermVector x = TermVector::FromDatabase(MakeFlightsA());
  TermVector y = TermVector::FromDatabase(MakeFlightsB());
  double sim = TermVector::CosineSimilarity(x, y);
  EXPECT_GE(sim, 0.0);
  EXPECT_LE(sim, 1.0);
  EXPECT_DOUBLE_EQ(TermVector::CosineSimilarity(x, x), 1.0);
}

TEST(TermVectorTest, CosineZeroVectorIsZero) {
  TermVector x = TermVector::FromDatabase(Database());
  TermVector y = TermVector::FromDatabase(MakeFlightsA());
  EXPECT_DOUBLE_EQ(TermVector::CosineSimilarity(x, y), 0.0);
  EXPECT_DOUBLE_EQ(TermVector::CosineSimilarity(x, x), 0.0);
}

TEST(TermVectorTest, DisjointVectorsHaveZeroCosine) {
  TermVector x = TermVector::FromDatabase(Tdb("relation R (A) { (1) }"));
  TermVector y = TermVector::FromDatabase(Tdb("relation S (B) { (2) }"));
  EXPECT_DOUBLE_EQ(TermVector::CosineSimilarity(x, y), 0.0);
  EXPECT_DOUBLE_EQ(TermVector::NormalizedEuclideanDistance(x, y),
                   std::sqrt(2.0));
}

TEST(TermVectorTest, NormalizedDistanceScaleInvariant) {
  // Doubling every tuple leaves the normalized vector unchanged.
  Database db1 = Tdb("relation R (A) { (1) (2) }");
  Database db2 = Tdb("relation R (A) { (1) (2) (1) (2) }");
  TermVector x = TermVector::FromDatabase(db1);
  TermVector y = TermVector::FromDatabase(db2);
  EXPECT_NEAR(TermVector::NormalizedEuclideanDistance(x, y), 0.0, 1e-12);
  EXPECT_NEAR(TermVector::CosineSimilarity(x, y), 1.0, 1e-12);
  EXPECT_GT(TermVector::EuclideanDistance(x, y), 0.0);
}

TEST(DatabaseStringTest, SortedAndNullMarked) {
  Database db = Tdb("relation R (B, A) { (2, null) }");
  // Rows: "RB2" and "RA⊥"; sorted lexicographically: RA⊥ < RB2.
  EXPECT_EQ(DatabaseToTnfString(db), "RA⊥RB2");
}

TEST(DatabaseStringTest, IndependentOfTupleOrder) {
  Database a = Tdb("relation R (A) { (1) (2) }");
  Database b = Tdb("relation R (A) { (2) (1) }");
  EXPECT_EQ(DatabaseToTnfString(a), DatabaseToTnfString(b));
}

// ---------------------------------------------------------------------------
// Symbol sets and h1/h2/h3
// ---------------------------------------------------------------------------

TEST(SymbolSetsTest, CollectsAllThreeCategories) {
  Database db = Tdb("relation R (A, B) { (1, null) }\nrelation S (C) { }");
  SymbolSets s = SymbolSets::FromDatabase(db);
  EXPECT_EQ(s.rels, (std::set<std::string>{"R", "S"}));
  EXPECT_EQ(s.atts, (std::set<std::string>{"A", "B", "C"}));
  EXPECT_EQ(s.values, (std::set<std::string>{"1"}));  // nulls excluded
}

TEST(SetBasedTest, H0IsAlwaysZero) {
  BlindHeuristic h0;
  EXPECT_EQ(h0.Estimate(Database()), 0);
  EXPECT_EQ(h0.Estimate(MakeFlightsB()), 0);
  EXPECT_EQ(h0.name(), "h0");
}

TEST(SetBasedTest, H1CountsMissingSymbols) {
  Database target = Tdb("relation T (X, Y) { (1, 2) }");
  H1Heuristic h1(target);
  // State missing relation T, attrs X,Y, and value 2.
  Database state = Tdb("relation R (A) { (1) }");
  EXPECT_EQ(h1.Estimate(state), 1 + 2 + 1);
  EXPECT_EQ(h1.Estimate(target), 0);
}

TEST(SetBasedTest, H1IgnoresExtraStateSymbols) {
  Database target = Tdb("relation T (X) { (1) }");
  H1Heuristic h1(target);
  Database state = Tdb("relation T (X, Z1, Z2) { (1, junk1, junk2) }");
  EXPECT_EQ(h1.Estimate(state), 0);
}

TEST(SetBasedTest, H2CountsMisplacedSymbols) {
  // Target's attribute names appear as state *values*: two promotions
  // needed (h2 evidence).
  Database target = Tdb("relation T (ATL29, ORD17) { (100, 110) }");
  H2Heuristic h2(target);
  Database state = Tdb("relation T (Route) { (ATL29) (ORD17) }");
  EXPECT_EQ(h2.Estimate(state), 2);  // πATT(t) ∩ πVALUE(x)
}

TEST(SetBasedTest, H2SeesRelationNamesInValues) {
  // FlightsB's Carrier values are FlightsC's relation names.
  H2Heuristic h2(MakeFlightsC());
  // πREL(t)∩πVALUE(x): AirEast, JetWest → 2; πATT(t)∩πATT? not counted;
  // πATT(t)={Route,BaseCost,TotalCost} ∩ πVALUE/REL(x) = 0;
  // πVALUE(t) ∩ πREL(x)=∅, ∩ πATT(x)=∅.
  EXPECT_EQ(h2.Estimate(MakeFlightsB()), 2);
}

TEST(SetBasedTest, H2ZeroWhenNoCrossPlacement) {
  Database target = Tdb("relation T (X) { (1) }");
  H2Heuristic h2(target);
  EXPECT_EQ(h2.Estimate(target), 0);
}

TEST(SetBasedTest, H3IsMax) {
  Database target = Tdb("relation T (ATL29) { (100) }");
  Database state = Tdb("relation R (Route) { (ATL29) }");
  H1Heuristic h1(target);
  H2Heuristic h2(target);
  H3Heuristic h3(target);
  EXPECT_EQ(h3.Estimate(state),
            std::max(h1.Estimate(state), h2.Estimate(state)));
  // And on a state where h1 dominates:
  Database empty_state = Tdb("relation Z (Q) { }");
  EXPECT_EQ(h3.Estimate(empty_state),
            std::max(h1.Estimate(empty_state), h2.Estimate(empty_state)));
}

// ---------------------------------------------------------------------------
// Scaled vector/string heuristics
// ---------------------------------------------------------------------------

TEST(VectorHeuristicsTest, ZeroAtTarget) {
  Database target = MakeFlightsB();
  EXPECT_EQ(LevenshteinHeuristic(target, 11).Estimate(target), 0);
  EXPECT_EQ(EuclideanHeuristic(target).Estimate(target), 0);
  EXPECT_EQ(NormalizedEuclideanHeuristic(target, 7).Estimate(target), 0);
  EXPECT_EQ(CosineHeuristic(target, 5).Estimate(target), 0);
}

TEST(VectorHeuristicsTest, LevenshteinBoundedByK) {
  Database target = Tdb("relation T (X) { (1) }");
  Database far = Tdb("relation ZZZZ (QQQQ) { (9999) }");
  LevenshteinHeuristic h(target, 11);
  int est = h.Estimate(far);
  EXPECT_GE(est, 1);
  EXPECT_LE(est, 11);
}

TEST(VectorHeuristicsTest, CosineBoundedByK) {
  Database target = Tdb("relation T (X) { (1) }");
  Database far = Tdb("relation Z (Q) { (9) }");
  CosineHeuristic h(target, 24);
  EXPECT_EQ(h.Estimate(far), 24);  // disjoint => dissimilarity 1
}

TEST(VectorHeuristicsTest, NormalizedEuclideanBoundedByK) {
  Database target = Tdb("relation T (X) { (1) }");
  Database far = Tdb("relation Z (Q) { (9) }");
  NormalizedEuclideanHeuristic h(target, 20);
  EXPECT_EQ(h.Estimate(far), 20);  // orthogonal unit vectors, rescaled
}

TEST(VectorHeuristicsTest, EuclideanGrowsWithDivergence) {
  Database target = MakeFlightsA();
  EuclideanHeuristic h(target);
  Database near = MakeFlightsA();
  Result<Database> renamed = [&]() {
    Database db = MakeFlightsA();
    Relation* r = db.GetMutableRelation("Flights").value();
    EXPECT_TRUE(r->RenameAttribute("Fee", "XFee").ok());
    return Result<Database>(db);
  }();
  EXPECT_EQ(h.Estimate(near), 0);
  EXPECT_GT(h.Estimate(*renamed), 0);
}

TEST(VectorHeuristicsTest, MonotoneUnderProgress) {
  // Renaming one attribute toward the target should not increase any of
  // the scaled heuristics.
  Database source = Tdb("relation R (A1, A2) { (x, y) }");
  Database target = Tdb("relation R (B1, B2) { (x, y) }");
  Database halfway = Tdb("relation R (B1, A2) { (x, y) }");
  for (double k : {5.0, 24.0}) {
    CosineHeuristic h(target, k);
    EXPECT_LE(h.Estimate(halfway), h.Estimate(source));
  }
  EuclideanHeuristic he(target);
  EXPECT_LE(he.Estimate(halfway), he.Estimate(source));
  // Note: the Levenshtein heuristic is intentionally not asserted monotone
  // here — sorting the TNF row strings means one rename can reorder rows
  // and lengthen the edit script (a real property of the paper's hL).
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

TEST(FactoryTest, NamesRoundTrip) {
  for (HeuristicKind kind : AllHeuristicKinds()) {
    auto parsed = ParseHeuristicKind(HeuristicKindName(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseHeuristicKind("bogus").has_value());
}

TEST(FactoryTest, AlgorithmNamesRoundTrip) {
  for (SearchAlgorithm algo : {SearchAlgorithm::kIda, SearchAlgorithm::kRbfs,
                               SearchAlgorithm::kAStar}) {
    auto parsed = ParseSearchAlgorithm(SearchAlgorithmName(algo));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, algo);
  }
  EXPECT_FALSE(ParseSearchAlgorithm("dfs").has_value());
}

TEST(FactoryTest, PaperScaleConstants) {
  // §5 Experimental Setup table.
  EXPECT_DOUBLE_EQ(
      DefaultScale(HeuristicKind::kEuclideanNorm, SearchAlgorithm::kIda), 7);
  EXPECT_DOUBLE_EQ(
      DefaultScale(HeuristicKind::kCosine, SearchAlgorithm::kIda), 5);
  EXPECT_DOUBLE_EQ(
      DefaultScale(HeuristicKind::kLevenshtein, SearchAlgorithm::kIda), 11);
  EXPECT_DOUBLE_EQ(
      DefaultScale(HeuristicKind::kEuclideanNorm, SearchAlgorithm::kRbfs),
      20);
  EXPECT_DOUBLE_EQ(
      DefaultScale(HeuristicKind::kCosine, SearchAlgorithm::kRbfs), 24);
  EXPECT_DOUBLE_EQ(
      DefaultScale(HeuristicKind::kLevenshtein, SearchAlgorithm::kRbfs), 15);
  EXPECT_DOUBLE_EQ(DefaultScale(HeuristicKind::kH1, SearchAlgorithm::kIda),
                   1);
}

TEST(FactoryTest, UsesScaleFlag) {
  EXPECT_TRUE(HeuristicUsesScale(HeuristicKind::kCosine));
  EXPECT_TRUE(HeuristicUsesScale(HeuristicKind::kLevenshtein));
  EXPECT_TRUE(HeuristicUsesScale(HeuristicKind::kEuclideanNorm));
  EXPECT_FALSE(HeuristicUsesScale(HeuristicKind::kH1));
  EXPECT_FALSE(HeuristicUsesScale(HeuristicKind::kEuclidean));
}

// Every factory-built heuristic is 0 at the target and ≥ 0 elsewhere.
class FactoryHeuristicProperty : public testing::TestWithParam<HeuristicKind> {
};

TEST_P(FactoryHeuristicProperty, ZeroAtTargetNonNegativeElsewhere) {
  Database target = MakeFlightsA();
  std::unique_ptr<Heuristic> h =
      MakeHeuristic(GetParam(), target, SearchAlgorithm::kRbfs);
  ASSERT_NE(h, nullptr);
  if (GetParam() != HeuristicKind::kH2) {
    // h2 measures misplacement, which is zero at this target too.
    EXPECT_EQ(h->Estimate(target), 0) << h->name();
  }
  for (const Database& state :
       {MakeFlightsB(), MakeFlightsC(), Database()}) {
    EXPECT_GE(h->Estimate(state), 0) << h->name();
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, FactoryHeuristicProperty,
                         testing::ValuesIn(AllHeuristicKinds()),
                         [](const auto& info) {
                           return std::string(HeuristicKindName(info.param));
                         });

// ---------------------------------------------------------------------------
// Jaccard (extension heuristic)
// ---------------------------------------------------------------------------

TEST(JaccardTest, SimilarityBounds) {
  TermVector x = TermVector::FromDatabase(MakeFlightsA());
  TermVector y = TermVector::FromDatabase(MakeFlightsB());
  double j = TermVector::JaccardSimilarity(x, y);
  EXPECT_GE(j, 0.0);
  EXPECT_LE(j, 1.0);
  EXPECT_DOUBLE_EQ(TermVector::JaccardSimilarity(x, x), 1.0);
  TermVector empty;
  EXPECT_DOUBLE_EQ(TermVector::JaccardSimilarity(empty, empty), 1.0);
  EXPECT_DOUBLE_EQ(TermVector::JaccardSimilarity(empty, x), 0.0);
}

TEST(JaccardTest, MultisetSemantics) {
  // x = {t:2}, y = {t:1}: J = 1/2.
  Database two = Tdb("relation R (A) { (v) (v) }");
  Database one = Tdb("relation R (A) { (v) }");
  TermVector x = TermVector::FromDatabase(two);
  TermVector y = TermVector::FromDatabase(one);
  EXPECT_DOUBLE_EQ(TermVector::JaccardSimilarity(x, y), 0.5);
}

TEST(JaccardTest, HeuristicZeroAtTargetAndScaled) {
  Database target = MakeFlightsB();
  JaccardHeuristic h(target, 24);
  EXPECT_EQ(h.Estimate(target), 0);
  Database disjoint = Tdb("relation Z (Q) { (zzz) }");
  EXPECT_EQ(h.Estimate(disjoint), 24);
  EXPECT_EQ(h.name(), "jaccard");
}

TEST(JaccardTest, FactoryIntegration) {
  auto parsed = ParseHeuristicKind("jaccard");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, HeuristicKind::kJaccard);
  EXPECT_TRUE(HeuristicUsesScale(HeuristicKind::kJaccard));
  // Not part of the paper's figure set.
  for (HeuristicKind kind : AllHeuristicKinds()) {
    EXPECT_NE(kind, HeuristicKind::kJaccard);
  }
  auto h = MakeHeuristic(HeuristicKind::kJaccard, MakeFlightsA(),
                         SearchAlgorithm::kRbfs);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->Estimate(MakeFlightsA()), 0);
}

TEST(JaccardTest, SensitiveToUnsharedMassUnlikeCosine) {
  // Adding many copies of an already-shared tuple barely changes cosine
  // (angle ~same) but dilutes Jaccard.
  Database target = Tdb("relation R (A) { (v) }");
  Database inflated = Tdb("relation R (A) { (v) (v) (v) (v) (v) (v) }");
  CosineHeuristic cosine(target, 24);
  JaccardHeuristic jaccard(target, 24);
  EXPECT_EQ(cosine.Estimate(inflated), 0);   // same direction
  EXPECT_GT(jaccard.Estimate(inflated), 0);  // mass mismatch visible
}

// ---------------------------------------------------------------------------
// Column-pairs heuristic (extension)
// ---------------------------------------------------------------------------

TEST(PairsTest, ZeroAtTarget) {
  for (const Database& target :
       {MakeFlightsA(), MakeFlightsB(), MakeFlightsC()}) {
    ColumnPairsHeuristic h(target);
    EXPECT_EQ(h.Estimate(target), 0);
  }
}

TEST(PairsTest, CountsJointPairsNotSeparateSets) {
  Database target = Tdb("relation T (A, B) { (1, 2) }");
  ColumnPairsHeuristic h(target);
  // State has both attribute names and both values — but transposed, so
  // neither (A,1) nor (B,2) pair exists. h1 would say 0; pairs says 2+rel.
  Database transposed = Tdb("relation T (A, B) { (2, 1) }");
  EXPECT_EQ(h.Estimate(transposed), 2);
  H1Heuristic h1(target);
  EXPECT_EQ(h1.Estimate(transposed), 0);
}

TEST(PairsTest, WrongRenameEarnsNothing) {
  // The §7 trap: creating the right column name with wrong data.
  Database target = Tdb("relation T (agent) { (\"Jane Doe\") }");
  ColumnPairsHeuristic h(target);
  Database before = Tdb("relation T (agent_first) { (Jane) }");
  Database wrong_rename = Tdb("relation T (agent) { (Jane) }");
  EXPECT_EQ(h.Estimate(wrong_rename), h.Estimate(before));
}

TEST(PairsTest, BareAttributesStillCounted) {
  // A target attribute with only nulls can't form pairs; it is counted by
  // name so renames toward it still register progress.
  Database target = Tdb("relation T (A, B) { (1, null) }");
  ColumnPairsHeuristic h(target);
  Database missing_b = Tdb("relation T (A) { (1) }");
  EXPECT_EQ(h.Estimate(missing_b), 1);
  Database with_b = Tdb("relation T (A, B) { (1, null) }");
  EXPECT_EQ(h.Estimate(with_b), 0);
}

TEST(PairsTest, PairInAnyRelationCounts) {
  // Pairs are matched database-wide (like h1's symbol sets), not per
  // relation: the goal containment handles placement.
  Database target = Tdb("relation T (A) { (1) }");
  ColumnPairsHeuristic h(target);
  Database elsewhere = Tdb("relation T (A) { }\nrelation Other (A) { (1) }");
  EXPECT_EQ(h.Estimate(elsewhere), 0);
}

TEST(PairsTest, FactoryIntegration) {
  auto parsed = ParseHeuristicKind("pairs");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, HeuristicKind::kPairs);
  EXPECT_FALSE(HeuristicUsesScale(HeuristicKind::kPairs));
  for (HeuristicKind kind : AllHeuristicKinds()) {
    EXPECT_NE(kind, HeuristicKind::kPairs);
  }
  auto h = MakeHeuristic(HeuristicKind::kPairs, MakeFlightsA(),
                         SearchAlgorithm::kRbfs);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->name(), "pairs");
}

// ---------------------------------------------------------------------------
// Composite heuristics (§7 hybrids)
// ---------------------------------------------------------------------------

TEST(CompositeTest, MaxDominatesComponents) {
  Database target = MakeFlightsA();
  H1Heuristic h1(target);
  CosineHeuristic cos(target, 24);
  std::vector<std::unique_ptr<Heuristic>> parts;
  parts.push_back(std::make_unique<H1Heuristic>(target));
  parts.push_back(std::make_unique<CosineHeuristic>(target, 24));
  MaxHeuristic hybrid(std::move(parts));
  for (const Database& state : {MakeFlightsB(), MakeFlightsC(), target}) {
    int m = hybrid.Estimate(state);
    EXPECT_GE(m, h1.Estimate(state));
    EXPECT_GE(m, cos.Estimate(state));
    EXPECT_EQ(m, std::max(h1.Estimate(state), cos.Estimate(state)));
  }
  EXPECT_EQ(hybrid.name(), "max(h1,cosine)");
}

TEST(CompositeTest, MaxOfNothingIsZero) {
  MaxHeuristic empty({});
  EXPECT_EQ(empty.Estimate(MakeFlightsB()), 0);
}

TEST(CompositeTest, WeightedSumBlends) {
  Database target = MakeFlightsA();
  std::vector<WeightedSumHeuristic::Term> terms;
  terms.push_back({0.5, std::make_unique<H1Heuristic>(target)});
  terms.push_back({0.5, std::make_unique<CosineHeuristic>(target, 24)});
  WeightedSumHeuristic sum(std::move(terms));
  H1Heuristic h1(target);
  CosineHeuristic cos(target, 24);
  Database state = MakeFlightsB();
  int expected = static_cast<int>(std::llround(
      0.5 * h1.Estimate(state) + 0.5 * cos.Estimate(state)));
  EXPECT_EQ(sum.Estimate(state), expected);
  EXPECT_EQ(sum.Estimate(target), 0);
  EXPECT_EQ(sum.name(), "sum(h1,cosine)");
}

TEST(CompositeTest, HybridFactoryZeroAtTarget) {
  Database target = MakeFlightsB();
  std::unique_ptr<Heuristic> hybrid = MakeHybridHeuristic(target, 24);
  EXPECT_EQ(hybrid->Estimate(target), 0);
  EXPECT_GT(hybrid->Estimate(MakeFlightsA()), 0);
}

}  // namespace
}  // namespace tupelo
