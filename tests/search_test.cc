#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "search/a_star.h"
#include "search/beam.h"
#include "search/greedy.h"
#include "search/ida_star.h"
#include "search/rbfs.h"
#include "search/search_types.h"
#include "search/trace.h"

namespace tupelo {
namespace {

// A small explicit-graph problem for exercising the search algorithms
// independently of the mapping domain. Actions are the successor node ids.
struct GraphProblem {
  using State = int;
  using Action = int;
  struct SuccessorT {
    Action action;
    State state;
  };

  std::map<int, std::vector<int>> edges;
  std::map<int, int> h;  // defaults to 0
  int start = 0;
  int goal = 0;

  const State& initial_state() const { return start; }
  bool IsGoal(const State& s) const { return s == goal; }
  std::vector<SuccessorT> Expand(const State& s) const {
    std::vector<SuccessorT> out;
    auto it = edges.find(s);
    if (it == edges.end()) return out;
    for (int next : it->second) out.push_back(SuccessorT{next, next});
    return out;
  }
  int EstimateCost(const State& s) const {
    auto it = h.find(s);
    return it == h.end() ? 0 : it->second;
  }
  uint64_t StateKey(const State& s) const {
    return static_cast<uint64_t>(s) + 1;
  }
};

// A number-line problem: move ±1 from 0 toward `goal`; |goal − x| is an
// admissible, consistent heuristic. Unbounded state space exercises
// heuristic guidance (blind search would wander).
struct NumberLineProblem {
  using State = int;
  using Action = int;  // +1 or -1
  struct SuccessorT {
    Action action;
    State state;
  };

  int goal = 0;

  const State& initial_state() const {
    static const int kStart = 0;
    return kStart;
  }
  bool IsGoal(const State& s) const { return s == goal; }
  std::vector<SuccessorT> Expand(const State& s) const {
    return {SuccessorT{-1, s - 1}, SuccessorT{+1, s + 1}};
  }
  int EstimateCost(const State& s) const { return std::abs(goal - s); }
  uint64_t StateKey(const State& s) const {
    return static_cast<uint64_t>(static_cast<int64_t>(s) + (1LL << 32));
  }
};

template <typename P>
using Runner = SearchOutcome<typename P::Action> (*)(const P&,
                                                     const SearchLimits&);

// Parameterized over the four algorithms so every scenario runs on all.
enum class Algo { kIda, kRbfs, kAStar, kGreedy };

template <typename P>
SearchOutcome<typename P::Action> RunSearch(Algo algo, const P& problem,
                                      const SearchLimits& limits = {}) {
  switch (algo) {
    case Algo::kIda:
      return IdaStarSearch(problem, limits);
    case Algo::kRbfs:
      return RbfsSearch(problem, limits);
    case Algo::kAStar:
      return AStarSearch(problem, limits);
    case Algo::kGreedy:
      return GreedySearch(problem, limits);
  }
  return {};
}

class AllAlgorithms : public testing::TestWithParam<Algo> {};

INSTANTIATE_TEST_SUITE_P(Algos, AllAlgorithms,
                         testing::Values(Algo::kIda, Algo::kRbfs,
                                         Algo::kAStar, Algo::kGreedy),
                         [](const auto& info) {
                           switch (info.param) {
                             case Algo::kIda:
                               return "ida";
                             case Algo::kRbfs:
                               return "rbfs";
                             case Algo::kAStar:
                               return "astar";
                             case Algo::kGreedy:
                               return "greedy";
                           }
                           return "unknown";
                         });

TEST_P(AllAlgorithms, TrivialGoalAtStart) {
  GraphProblem p;
  p.start = p.goal = 7;
  auto out = RunSearch(GetParam(), p);
  EXPECT_TRUE(out.found);
  EXPECT_EQ(out.stats.solution_cost, 0);
  EXPECT_TRUE(out.path.empty());
  EXPECT_EQ(out.stats.states_examined, 1u);
}

TEST_P(AllAlgorithms, LinearChain) {
  GraphProblem p;
  p.edges = {{0, {1}}, {1, {2}}, {2, {3}}};
  p.start = 0;
  p.goal = 3;
  auto out = RunSearch(GetParam(), p);
  ASSERT_TRUE(out.found);
  EXPECT_EQ(out.stats.solution_cost, 3);
  EXPECT_EQ(out.path, (std::vector<int>{1, 2, 3}));
}

TEST_P(AllAlgorithms, FindsShorterOfTwoBranches) {
  // 0 -> 1 -> 2 -> goal(5), and 0 -> 3 -> 5 (shorter).
  GraphProblem p;
  p.edges = {{0, {1, 3}}, {1, {2}}, {2, {5}}, {3, {5}}};
  p.goal = 5;
  // Admissible heuristic favoring nothing: h = 0.
  auto out = RunSearch(GetParam(), p);
  ASSERT_TRUE(out.found);
  EXPECT_EQ(out.stats.solution_cost, 2);
  EXPECT_EQ(out.path, (std::vector<int>{3, 5}));
}

TEST_P(AllAlgorithms, UnreachableGoalExhaustsSpace) {
  GraphProblem p;
  p.edges = {{0, {1}}, {1, {0}}};  // cycle, goal 9 unreachable
  p.goal = 9;
  auto out = RunSearch(GetParam(), p);
  EXPECT_FALSE(out.found);
  EXPECT_FALSE(out.budget_exhausted);  // space exhausted, not budget
  EXPECT_EQ(out.stop, StopReason::kExhausted);
}

TEST_P(AllAlgorithms, CyclesDoNotTrapSearch) {
  GraphProblem p;
  p.edges = {{0, {1}}, {1, {0, 2}}, {2, {1, 3}}, {3, {}}};
  p.goal = 3;
  SearchLimits limits;
  limits.max_states = 1000;
  auto out = RunSearch(GetParam(), p, limits);
  ASSERT_TRUE(out.found);
  EXPECT_EQ(out.stats.solution_cost, 3);
}

TEST_P(AllAlgorithms, StateBudgetAborts) {
  NumberLineProblem p;
  p.goal = 1000;  // needs 1000 steps
  SearchLimits limits;
  limits.max_states = 50;
  limits.max_depth = 2000;
  auto out = RunSearch(GetParam(), p, limits);
  EXPECT_FALSE(out.found);
  EXPECT_TRUE(out.budget_exhausted);
  EXPECT_EQ(out.stop, StopReason::kStates);
  EXPECT_LE(out.stats.states_examined, 50u);
  // Anytime contract: the best partial path and its remaining heuristic
  // distance survive the trip. Any useful prefix moves toward the goal,
  // and a path of length L cannot end closer than 1000 − L.
  EXPECT_FALSE(out.best_path.empty());
  EXPECT_GT(out.best_h, 0);
  EXPECT_LT(out.best_h, 1000);
  EXPECT_GE(out.best_h + static_cast<int>(out.best_path.size()), 1000);
}

TEST_P(AllAlgorithms, DepthLimitAborts) {
  NumberLineProblem p;
  p.goal = 100;
  SearchLimits limits;
  limits.max_depth = 10;
  auto out = RunSearch(GetParam(), p, limits);
  EXPECT_FALSE(out.found);
  EXPECT_TRUE(out.budget_exhausted);
  EXPECT_EQ(out.stop, StopReason::kDepth);
}

TEST_P(AllAlgorithms, GuidedNumberLineIsNearLinear) {
  NumberLineProblem p;
  p.goal = 200;
  SearchLimits limits;
  limits.max_depth = 500;
  auto out = RunSearch(GetParam(), p, limits);
  ASSERT_TRUE(out.found);
  EXPECT_EQ(out.stats.solution_cost, 200);
  // With a perfect heuristic the search examines O(goal) states.
  EXPECT_LE(out.stats.states_examined, 1000u);
}

TEST_P(AllAlgorithms, AdmissibleHeuristicGivesOptimalCost) {
  // Diamond with a tempting long route: 0→1→2→3→4→9 vs 0→5→9.
  GraphProblem p;
  p.edges = {{0, {1, 5}}, {1, {2}}, {2, {3}}, {3, {4}}, {4, {9}}, {5, {9}}};
  p.goal = 9;
  p.h = {{0, 2}, {1, 2}, {2, 2}, {3, 2}, {4, 1}, {5, 1}, {9, 0}};
  auto out = RunSearch(GetParam(), p);
  ASSERT_TRUE(out.found);
  EXPECT_EQ(out.stats.solution_cost, 2);
}

TEST_P(AllAlgorithms, MisleadingHeuristicStillSolves) {
  // Heuristic prefers the dead-end branch; search must recover.
  GraphProblem p;
  p.edges = {{0, {1, 2}}, {1, {3}}, {3, {}}, {2, {4}}, {4, {9}}};
  p.goal = 9;
  p.h = {{1, 0}, {3, 0}, {2, 5}, {4, 5}, {9, 0}, {0, 0}};
  auto out = RunSearch(GetParam(), p);
  ASSERT_TRUE(out.found);
  EXPECT_EQ(out.path, (std::vector<int>{2, 4, 9}));
}

TEST_P(AllAlgorithms, StatsAreCounted) {
  GraphProblem p;
  p.edges = {{0, {1, 2}}, {1, {3}}, {2, {3}}, {3, {4}}};
  p.goal = 4;
  auto out = RunSearch(GetParam(), p);
  ASSERT_TRUE(out.found);
  EXPECT_GE(out.stats.states_examined, 3u);
  EXPECT_GE(out.stats.states_generated, 2u);
  EXPECT_GE(out.stats.peak_memory_nodes, 1u);
}

// ---------------------------------------------------------------------------
// 128-bit state identity
// ---------------------------------------------------------------------------

// Regression problem for the 64-bit dedup-collision bug: every state
// reports the SAME 64-bit StateKey, but StateKey128 separates them in the
// high lane. A dedup/cycle set keyed on the 64-bit value aliases all
// states to one — A*/greedy/beam drop every successor as a "duplicate"
// and IDA*/RBFS prune every successor as a "cycle", so the goal two steps
// down a linear chain is unreachable. Keying on the full Fp128 (via
// StateFingerprint) finds it.
struct CollidingLowBitsProblem {
  using State = int;
  using Action = int;
  struct SuccessorT {
    Action action;
    State state;
  };

  const State& initial_state() const {
    static const int kStart = 0;
    return kStart;
  }
  bool IsGoal(const State& s) const { return s == 2; }
  std::vector<SuccessorT> Expand(const State& s) const {
    if (s >= 2) return {};
    return {SuccessorT{s + 1, s + 1}};  // 0 -> 1 -> 2
  }
  int EstimateCost(const State& s) const { return 2 - s; }
  uint64_t StateKey(const State&) const { return 7; }  // total collision
  Fp128 StateKey128(const State& s) const {
    return Fp128{7, static_cast<uint64_t>(s) + 1};
  }
};

TEST_P(AllAlgorithms, DistinctStatesSharingLow64BitsAreNotDeduped) {
  CollidingLowBitsProblem p;
  // Sanity: the two chain states really share the low 64 bits and only
  // differ in the high lane StateFingerprint exposes.
  Fp128 a = StateFingerprint(p, 1);
  Fp128 b = StateFingerprint(p, 2);
  ASSERT_EQ(a.lo, b.lo);
  ASSERT_FALSE(a == b);

  auto out = RunSearch(GetParam(), p);
  ASSERT_TRUE(out.found);
  EXPECT_EQ(out.stats.solution_cost, 2);
  EXPECT_EQ(out.path, (std::vector<int>{1, 2}));
}

TEST(BeamTest, DistinctStatesSharingLow64BitsAreNotDeduped) {
  CollidingLowBitsProblem p;
  auto out = BeamSearch(p, 4);
  ASSERT_TRUE(out.found);
  EXPECT_EQ(out.stats.solution_cost, 2);
  EXPECT_EQ(out.path, (std::vector<int>{1, 2}));
}

// ---------------------------------------------------------------------------
// Algorithm-specific behavior
// ---------------------------------------------------------------------------

TEST(IdaStarTest, IterationsGrowWithMisleadingHeuristic) {
  // h = 0 everywhere: IDA* raises the bound once per depth level.
  GraphProblem p;
  p.edges = {{0, {1}}, {1, {2}}, {2, {3}}, {3, {4}}};
  p.goal = 4;
  auto out = IdaStarSearch(p);
  ASSERT_TRUE(out.found);
  EXPECT_EQ(out.stats.iterations, 5);  // bounds 0..4
  // Re-examinations across iterations are counted.
  EXPECT_GT(out.stats.states_examined, 5u);
}

TEST(IdaStarTest, PerfectHeuristicSingleIteration) {
  GraphProblem p;
  p.edges = {{0, {1}}, {1, {2}}};
  p.goal = 2;
  p.h = {{0, 2}, {1, 1}, {2, 0}};
  auto out = IdaStarSearch(p);
  ASSERT_TRUE(out.found);
  EXPECT_EQ(out.stats.iterations, 1);
  EXPECT_EQ(out.stats.states_examined, 3u);
}

TEST(RbfsTest, BacktracksOnBackedUpValues) {
  // RBFS must abandon the initially-best branch when its backed-up value
  // exceeds the alternative.
  GraphProblem p;
  p.edges = {{0, {1, 2}}, {1, {3}}, {3, {5}}, {2, {4}}, {4, {9}}, {5, {}}};
  p.goal = 9;
  p.h = {{1, 1}, {2, 2}, {3, 3}, {5, 9}, {4, 1}, {9, 0}};
  auto out = RbfsSearch(p);
  ASSERT_TRUE(out.found);
  EXPECT_EQ(out.path, (std::vector<int>{2, 4, 9}));
}

TEST(RbfsTest, LinearMemoryOnDeepProblem) {
  NumberLineProblem p;
  p.goal = 300;
  SearchLimits limits;
  limits.max_depth = 400;
  auto out = RbfsSearch(p, limits);
  ASSERT_TRUE(out.found);
  // Peak tracked memory is the recursion depth, not the state count.
  EXPECT_LE(out.stats.peak_memory_nodes, 301u);
}

TEST(AStarTest, TracksOpenClosedMemory) {
  NumberLineProblem p;
  p.goal = 50;
  SearchLimits limits;
  limits.max_depth = 200;
  auto out = AStarSearch(p, limits);
  ASSERT_TRUE(out.found);
  // A* keeps every generated state: memory exceeds the solution depth.
  EXPECT_GT(out.stats.peak_memory_nodes, 50u);
}

TEST(AStarTest, ReopensWhenShorterPathFound) {
  // 0→1 (h huge) and 0→2→1: with inconsistent h, the cheaper g must win.
  GraphProblem p;
  p.edges = {{0, {2, 1}}, {2, {1}}, {1, {9}}};
  p.goal = 9;
  p.h = {{0, 0}, {1, 0}, {2, 0}, {9, 0}};
  auto out = AStarSearch(p);
  ASSERT_TRUE(out.found);
  EXPECT_EQ(out.stats.solution_cost, 2);  // 0→1→9
}

TEST(BeamTest, FindsGoalWithGoodHeuristic) {
  NumberLineProblem p;
  p.goal = 50;
  SearchLimits limits;
  limits.max_depth = 100;
  auto out = BeamSearch(p, 4, limits);
  ASSERT_TRUE(out.found);
  EXPECT_EQ(out.stats.solution_cost, 50);
  // Beam examines at most width × depth states.
  EXPECT_LE(out.stats.states_examined, 4u * 51u);
}

TEST(BeamTest, IsIncompleteWhenGoalLeavesBeam) {
  // Two branches; the heuristic prefers the dead end and width 1 commits
  // to it: the goal is missed even though it exists.
  GraphProblem p;
  p.edges = {{0, {1, 2}}, {1, {3}}, {3, {}}, {2, {9}}};
  p.goal = 9;
  p.h = {{1, 0}, {3, 0}, {2, 5}, {9, 0}};
  auto narrow = BeamSearch(p, 1);
  EXPECT_FALSE(narrow.found);
  // A wider beam keeps the alternative alive.
  auto wide = BeamSearch(p, 2);
  EXPECT_TRUE(wide.found);
}

TEST(BeamTest, ZeroWidthFindsNothing) {
  GraphProblem p;
  p.goal = 0;
  auto out = BeamSearch(p, 0);
  EXPECT_FALSE(out.found);
}

TEST(BeamTest, BudgetAborts) {
  NumberLineProblem p;
  p.goal = 1000;
  SearchLimits limits;
  limits.max_states = 20;
  limits.max_depth = 2000;
  auto out = BeamSearch(p, 8, limits);
  EXPECT_FALSE(out.found);
  EXPECT_TRUE(out.budget_exhausted);
}

TEST(BeamTest, GoalAtRoot) {
  GraphProblem p;
  p.start = p.goal = 3;
  auto out = BeamSearch(p, 2);
  EXPECT_TRUE(out.found);
  EXPECT_EQ(out.stats.solution_cost, 0);
}

// ---------------------------------------------------------------------------
// Resource governance: deadlines, cancellation, memory bounds, anytime
// results (see docs/ROBUSTNESS.md)
// ---------------------------------------------------------------------------

// An infinite problem whose Expand sleeps, so wall-clock limits trip long
// before any counting limit can.
struct SlowProblem {
  using State = int;
  using Action = int;
  struct SuccessorT {
    Action action;
    State state;
  };

  std::chrono::microseconds delay{200};

  const State& initial_state() const {
    static const int kStart = 0;
    return kStart;
  }
  bool IsGoal(const State&) const { return false; }
  std::vector<SuccessorT> Expand(const State& s) const {
    std::this_thread::sleep_for(delay);
    return {SuccessorT{-1, s - 1}, SuccessorT{+1, s + 1}};
  }
  int EstimateCost(const State& s) const { return std::abs(1'000'000 - s); }
  uint64_t StateKey(const State& s) const {
    return static_cast<uint64_t>(static_cast<int64_t>(s) + (1LL << 32));
  }
};

TEST_P(AllAlgorithms, FoundSetsStopAndAnytimeFields) {
  GraphProblem p;
  p.edges = {{0, {1}}, {1, {2}}, {2, {3}}};
  p.start = 0;
  p.goal = 3;
  auto out = RunSearch(GetParam(), p);
  ASSERT_TRUE(out.found);
  EXPECT_EQ(out.stop, StopReason::kFound);
  EXPECT_FALSE(out.budget_exhausted);
  EXPECT_EQ(out.best_path, out.path);
  EXPECT_EQ(out.best_h, 0);
}

TEST_P(AllAlgorithms, DeadlineAborts) {
  SlowProblem p;
  SearchLimits limits;
  limits.max_states = 20000;  // backstop if the deadline never fires
  limits.max_depth = 1'000'000;
  limits.deadline_millis = 30;
  limits.check_interval = 1;
  auto start = std::chrono::steady_clock::now();
  auto out = RunSearch(GetParam(), p, limits);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_FALSE(out.found);
  EXPECT_EQ(out.stop, StopReason::kDeadline);
  EXPECT_TRUE(out.budget_exhausted);
  // Generous CI-safe bound: orders of magnitude below the states backstop,
  // proving the wall clock (not a counter) stopped the search.
  EXPECT_LT(elapsed.count(), 3000);
}

TEST_P(AllAlgorithms, MemoryLimitAborts) {
  NumberLineProblem p;
  p.goal = 1000;
  SearchLimits limits;
  limits.max_depth = 2000;
  limits.max_memory_nodes = 50;
  auto out = RunSearch(GetParam(), p, limits);
  EXPECT_FALSE(out.found);
  EXPECT_EQ(out.stop, StopReason::kMemory);
  EXPECT_TRUE(out.budget_exhausted);
  EXPECT_FALSE(out.best_path.empty());
  EXPECT_GT(out.best_h, 0);
}

TEST_P(AllAlgorithms, PreCancelledTokenTripsBeforeAnyVisit) {
  NumberLineProblem p;
  p.goal = 1000;
  CancelToken token;
  token.Cancel();
  SearchLimits limits;
  limits.max_depth = 2000;
  limits.cancel = &token;
  auto out = RunSearch(GetParam(), p, limits);
  EXPECT_FALSE(out.found);
  EXPECT_EQ(out.stop, StopReason::kCancelled);
  EXPECT_TRUE(out.budget_exhausted);
  EXPECT_EQ(out.stats.states_examined, 0u);
  // Reset makes the token reusable.
  token.Reset();
  EXPECT_FALSE(token.cancelled());
}

TEST_P(AllAlgorithms, ConcurrentCancelStopsRunningSearch) {
  SlowProblem p;
  CancelToken token;
  SearchLimits limits;
  limits.max_states = 20000;  // backstop if cancellation never lands
  limits.max_depth = 1'000'000;
  limits.cancel = &token;
  limits.check_interval = 1;
  SearchOutcome<int> out;
  Algo algo = GetParam();
  std::thread worker(
      [&] { out = RunSearch(algo, p, limits); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  token.Cancel();
  worker.join();
  EXPECT_FALSE(out.found);
  EXPECT_EQ(out.stop, StopReason::kCancelled);
  EXPECT_TRUE(out.budget_exhausted);
  EXPECT_LT(out.stats.states_examined, 20000u);
}

TEST(BeamTest, StopReasonsAcrossLimits) {
  NumberLineProblem p;
  p.goal = 1000;

  SearchLimits states;
  states.max_states = 20;
  states.max_depth = 2000;
  EXPECT_EQ(BeamSearch(p, 8, states).stop, StopReason::kStates);

  SearchLimits depth;
  depth.max_depth = 10;
  auto out = BeamSearch(p, 8, depth);
  EXPECT_EQ(out.stop, StopReason::kDepth);
  EXPECT_TRUE(out.budget_exhausted);

  SearchLimits memory;
  memory.max_depth = 2000;
  memory.max_memory_nodes = 30;
  EXPECT_EQ(BeamSearch(p, 8, memory).stop, StopReason::kMemory);

  CancelToken token;
  token.Cancel();
  SearchLimits cancel;
  cancel.max_depth = 2000;
  cancel.cancel = &token;
  EXPECT_EQ(BeamSearch(p, 8, cancel).stop, StopReason::kCancelled);
}

TEST(BeamTest, AnytimeBestPathSurvivesStatesTrip) {
  NumberLineProblem p;
  p.goal = 1000;
  SearchLimits limits;
  limits.max_states = 40;
  limits.max_depth = 2000;
  auto out = BeamSearch(p, 4, limits);
  ASSERT_FALSE(out.found);
  EXPECT_FALSE(out.best_path.empty());
  EXPECT_GT(out.best_h, 0);
  EXPECT_LT(out.best_h, 1000);
}

TEST(BeamTest, RanDryIsExhaustedNotResourceStop) {
  GraphProblem p;
  p.edges = {{0, {1}}, {1, {}}};
  p.goal = 9;
  auto out = BeamSearch(p, 4, SearchLimits());
  EXPECT_FALSE(out.found);
  EXPECT_EQ(out.stop, StopReason::kExhausted);
  EXPECT_FALSE(out.budget_exhausted);
}

TEST(BudgetGuardTest, CountingLimitsCheckedEveryCall) {
  SearchLimits limits;
  limits.max_states = 10;
  BudgetGuard guard(limits);
  EXPECT_EQ(guard.Check(9, 0, 0), std::nullopt);
  EXPECT_EQ(guard.Check(10, 0, 0), StopReason::kStates);
}

TEST(BudgetGuardTest, CancelPollIsAmortized) {
  CancelToken token;
  SearchLimits limits;
  limits.cancel = &token;
  limits.check_interval = 4;
  BudgetGuard guard(limits);
  // First call always polls (token not yet cancelled).
  EXPECT_EQ(guard.Check(0, 0, 0), std::nullopt);
  token.Cancel();
  // The next poll happens check_interval+1 calls later; the intermediate
  // calls must not observe the token.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(guard.Check(0, 0, 0), std::nullopt) << i;
  }
  EXPECT_EQ(guard.Check(0, 0, 0), StopReason::kCancelled);
}

TEST(BudgetGuardTest, NoPollingCostWithoutDeadlineOrToken) {
  // With neither a deadline nor a token, Check never reads the clock and
  // never trips a poll-based reason, however many calls happen.
  SearchLimits limits;
  BudgetGuard guard(limits);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(guard.Check(0, 0, 0), std::nullopt);
  }
}

TEST(StopReasonTest, NamesAndClassification) {
  EXPECT_EQ(StopReasonName(StopReason::kFound), "found");
  EXPECT_EQ(StopReasonName(StopReason::kExhausted), "exhausted");
  EXPECT_EQ(StopReasonName(StopReason::kStates), "states");
  EXPECT_EQ(StopReasonName(StopReason::kDepth), "depth");
  EXPECT_EQ(StopReasonName(StopReason::kMemory), "memory");
  EXPECT_EQ(StopReasonName(StopReason::kDeadline), "deadline");
  EXPECT_EQ(StopReasonName(StopReason::kCancelled), "cancelled");
  EXPECT_FALSE(IsResourceStop(StopReason::kFound));
  EXPECT_FALSE(IsResourceStop(StopReason::kExhausted));
  for (StopReason r : {StopReason::kStates, StopReason::kDepth,
                       StopReason::kMemory, StopReason::kDeadline,
                       StopReason::kCancelled}) {
    EXPECT_TRUE(IsResourceStop(r)) << StopReasonName(r);
  }
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

TEST(TraceTest, IdaRecordsNonDecreasingBounds) {
  GraphProblem p;
  p.edges = {{0, {1}}, {1, {2}}, {2, {3}}, {3, {4}}};
  p.goal = 4;
  SearchTracer tracer;
  auto out = IdaStarSearch(p, SearchLimits(), &tracer);
  ASSERT_TRUE(out.found);
  int64_t last_bound = -1;
  size_t iterations = 0;
  size_t visits = 0;
  for (const TraceEvent& e : tracer.events()) {
    if (e.kind == TraceEventKind::kIteration) {
      EXPECT_GT(e.value, last_bound);
      last_bound = e.value;
      ++iterations;
    } else if (e.kind == TraceEventKind::kVisit) {
      ++visits;
    }
  }
  EXPECT_EQ(iterations, static_cast<size_t>(out.stats.iterations));
  EXPECT_EQ(visits, out.stats.states_examined);
  EXPECT_EQ(tracer.events().back().kind, TraceEventKind::kGoal);
}

TEST(TraceTest, VisitCountsMatchStatsAcrossAlgorithms) {
  GraphProblem p;
  p.edges = {{0, {1, 2}}, {1, {3}}, {2, {3}}, {3, {4}}};
  p.goal = 4;
  for (int which = 0; which < 4; ++which) {
    SearchTracer tracer;
    SearchOutcome<int> out;
    switch (which) {
      case 0:
        out = IdaStarSearch(p, SearchLimits(), &tracer);
        break;
      case 1:
        out = RbfsSearch(p, SearchLimits(), &tracer);
        break;
      case 2:
        out = AStarSearch(p, SearchLimits(), &tracer);
        break;
      case 3:
        out = GreedySearch(p, SearchLimits(), &tracer);
        break;
    }
    ASSERT_TRUE(out.found) << which;
    size_t visits = 0;
    for (const TraceEvent& e : tracer.events()) {
      if (e.kind == TraceEventKind::kVisit) ++visits;
      EXPECT_LE(e.depth, out.stats.solution_cost + 8) << which;
    }
    EXPECT_EQ(visits, out.stats.states_examined) << which;
  }
}

TEST(TraceTest, CapacityTruncates) {
  NumberLineProblem p;
  p.goal = 100;
  SearchLimits limits;
  limits.max_depth = 200;
  SearchTracer tracer(10);
  auto out = RbfsSearch(p, limits, &tracer);
  ASSERT_TRUE(out.found);
  EXPECT_EQ(tracer.events().size(), 10u);
  EXPECT_TRUE(tracer.truncated());
  tracer.Clear();
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_FALSE(tracer.truncated());
}

TEST(TraceTest, ToStringMentionsEveryKind) {
  SearchTracer tracer;
  tracer.Record(TraceEvent{TraceEventKind::kIteration, 0, 0, 3});
  tracer.Record(TraceEvent{TraceEventKind::kVisit, 42, 1, 5});
  tracer.Record(TraceEvent{TraceEventKind::kGoal, 42, 2, 5});
  std::string dump = tracer.ToString();
  EXPECT_NE(dump.find("iteration bound=3"), std::string::npos);
  EXPECT_NE(dump.find("visit g=1 f=5"), std::string::npos);
  EXPECT_NE(dump.find("goal  g=2"), std::string::npos);
}

TEST(TraceTest, ToStringReportsDropCount) {
  SearchTracer tracer(2);
  for (int i = 0; i < 5; ++i) {
    tracer.Record(TraceEvent{TraceEventKind::kVisit, 1, 0, 0});
  }
  EXPECT_TRUE(tracer.truncated());
  EXPECT_EQ(tracer.dropped(), 3u);
  EXPECT_NE(tracer.ToString().find("truncated: 3 events dropped"),
            std::string::npos);
}

TEST(TraceTest, BeamRecordsLevelEvents) {
  NumberLineProblem p;
  p.goal = 10;
  SearchLimits limits;
  limits.max_depth = 20;
  SearchTracer tracer;
  auto out = BeamSearch(p, 4, limits, &tracer);
  ASSERT_TRUE(out.found);
  int last_level = -1;
  size_t levels = 0;
  size_t visits = 0;
  for (const TraceEvent& e : tracer.events()) {
    if (e.kind == TraceEventKind::kIteration) {
      EXPECT_EQ(e.depth, last_level + 1);  // consecutive levels
      last_level = e.depth;
      ++levels;
    } else if (e.kind == TraceEventKind::kVisit) {
      ++visits;
    }
  }
  EXPECT_GE(levels, 1u);
  EXPECT_EQ(visits, out.stats.states_examined);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

// The shared toy problem for metric-consistency checks: a diamond with a
// back edge to the start, so duplicate detection fires on every algorithm
// (path-cycle checks in IDA*/RBFS, closed/best-g checks in A*/greedy).
GraphProblem MetricsProblem() {
  GraphProblem p;
  p.edges = {{0, {1, 2}}, {1, {0, 3}}, {2, {3}}, {3, {4}}};
  p.goal = 4;
  return p;
}

TEST(SearchMetricsTest, CountersMatchStatsAcrossAlgorithms) {
  GraphProblem p = MetricsProblem();
  for (Algo algo : {Algo::kIda, Algo::kRbfs, Algo::kAStar, Algo::kGreedy}) {
    obs::MetricRegistry registry;
    SearchOutcome<int> out;
    switch (algo) {
      case Algo::kIda:
        out = IdaStarSearch(p, SearchLimits(), nullptr, &registry);
        break;
      case Algo::kRbfs:
        out = RbfsSearch(p, SearchLimits(), nullptr, &registry);
        break;
      case Algo::kAStar:
        out = AStarSearch(p, SearchLimits(), nullptr, &registry);
        break;
      case Algo::kGreedy:
        out = GreedySearch(p, SearchLimits(), nullptr, &registry);
        break;
    }
    int which = static_cast<int>(algo);
    ASSERT_TRUE(out.found) << which;
    EXPECT_EQ(registry.CounterValue("search.states_examined"),
              out.stats.states_examined)
        << which;
    EXPECT_EQ(registry.CounterValue("search.states_generated"),
              out.stats.states_generated)
        << which;
    EXPECT_GE(registry.CounterValue("search.expansions"), 1u) << which;
    const obs::Gauge* peak = registry.FindGauge("search.peak_memory_nodes");
    ASSERT_NE(peak, nullptr) << which;
    EXPECT_EQ(static_cast<uint64_t>(peak->value()),
              out.stats.peak_memory_nodes)
        << which;
    // The diamond generates node 3 twice: duplicate detection must fire.
    EXPECT_GE(registry.CounterValue("search.duplicate_hits"), 1u) << which;
  }
}

TEST(SearchMetricsTest, RegistryDoesNotChangeTheOutcome) {
  GraphProblem p = MetricsProblem();
  obs::MetricRegistry registry;
  auto plain = IdaStarSearch(p);
  auto metered = IdaStarSearch(p, SearchLimits(), nullptr, &registry);
  EXPECT_EQ(plain.found, metered.found);
  EXPECT_EQ(plain.path, metered.path);
  EXPECT_EQ(plain.stats.states_examined, metered.stats.states_examined);
  EXPECT_EQ(plain.stats.iterations, metered.stats.iterations);
}

TEST(SearchMetricsTest, IdaIterationCounterAndFBoundHistogram) {
  // h = 0: one iteration per depth level, bounds 0..4.
  GraphProblem p;
  p.edges = {{0, {1}}, {1, {2}}, {2, {3}}, {3, {4}}};
  p.goal = 4;
  obs::MetricRegistry registry;
  auto out = IdaStarSearch(p, SearchLimits(), nullptr, &registry);
  ASSERT_TRUE(out.found);
  EXPECT_EQ(registry.CounterValue("search.iterations"),
            static_cast<uint64_t>(out.stats.iterations));
  const obs::Histogram* f_bound = registry.FindHistogram("search.f_bound");
  ASSERT_NE(f_bound, nullptr);
  EXPECT_EQ(f_bound->count(), static_cast<uint64_t>(out.stats.iterations));
  // Re-visits of shallow states across iterations count as re-expansions.
  EXPECT_GT(registry.CounterValue("search.re_expansions"), 0u);
}

TEST(SearchMetricsTest, SingleIterationHasNoReExpansions) {
  GraphProblem p;
  p.edges = {{0, {1}}, {1, {2}}};
  p.goal = 2;
  p.h = {{0, 2}, {1, 1}, {2, 0}};  // perfect heuristic: one iteration
  obs::MetricRegistry registry;
  auto out = IdaStarSearch(p, SearchLimits(), nullptr, &registry);
  ASSERT_TRUE(out.found);
  EXPECT_EQ(registry.CounterValue("search.re_expansions"), 0u);
}

TEST(AStarTest, DeterministicTieBreaking) {
  GraphProblem p;
  p.edges = {{0, {1, 2}}, {1, {9}}, {2, {9}}};
  p.goal = 9;
  auto out1 = AStarSearch(p);
  auto out2 = AStarSearch(p);
  ASSERT_TRUE(out1.found);
  EXPECT_EQ(out1.path, out2.path);
}

}  // namespace
}  // namespace tupelo
