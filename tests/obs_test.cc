#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/json_writer.h"
#include "obs/metrics.h"

namespace tupelo::obs {
namespace {

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetOverwritesAndUpdateMaxIsMonotonic) {
  Gauge g;
  g.Set(10);
  EXPECT_EQ(g.value(), 10);
  g.Set(3);
  EXPECT_EQ(g.value(), 3);
  g.UpdateMax(7);
  EXPECT_EQ(g.value(), 7);
  g.UpdateMax(5);  // lower: no effect
  EXPECT_EQ(g.value(), 7);
}

TEST(HistogramTest, BucketEdgesAreInclusiveUpperBounds) {
  // Buckets: (-inf,10], (10,20], (20,+inf).
  Histogram h({10, 20});
  h.Observe(10);  // exactly on the first bound -> bucket 0
  h.Observe(11);
  h.Observe(20);  // exactly on the second bound -> bucket 1
  h.Observe(21);  // above every bound -> overflow
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 10 + 11 + 20 + 21);
}

TEST(HistogramTest, ExponentialBoundsShape) {
  std::vector<int64_t> bounds = ExponentialBounds(1, 2, 5);
  EXPECT_EQ(bounds, (std::vector<int64_t>{1, 2, 4, 8, 16}));
  ASSERT_FALSE(DefaultLatencyBounds().empty());
  EXPECT_EQ(DefaultLatencyBounds().front(), 1000);  // 1µs in ns
}

TEST(ScopedTimerTest, AccumulatesElapsedNanos) {
  Counter nanos;
  Histogram hist(DefaultLatencyBounds());
  {
    ScopedTimer t(&nanos, &hist);
    // Do a little work so the clock moves; even 0 is legal, but two scopes
    // must both be recorded.
    volatile int x = 0;
    for (int i = 0; i < 1000; ++i) x += i;
  }
  { ScopedTimer t(&nanos); }
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_GE(nanos.value(), hist.count());  // elapsed >= 1ns per sample
}

TEST(ScopedTimerTest, NullTargetsAreFree) {
  ScopedTimer t(nullptr);  // must not crash or read the clock
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(MetricRegistryTest, GetReturnsSameInstrumentByName) {
  MetricRegistry registry;
  Counter& a = registry.GetCounter("x");
  Counter& b = registry.GetCounter("x");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(registry.CounterValue("x"), 1u);
  EXPECT_EQ(registry.CounterValue("missing"), 0u);
}

TEST(MetricRegistryTest, FindDoesNotCreate) {
  MetricRegistry registry;
  EXPECT_EQ(registry.FindCounter("c"), nullptr);
  EXPECT_EQ(registry.FindGauge("g"), nullptr);
  EXPECT_EQ(registry.FindHistogram("h"), nullptr);
  registry.GetCounter("c");
  registry.GetGauge("g");
  registry.GetHistogram("h", {1, 2});
  EXPECT_NE(registry.FindCounter("c"), nullptr);
  EXPECT_NE(registry.FindGauge("g"), nullptr);
  EXPECT_NE(registry.FindHistogram("h"), nullptr);
}

TEST(MetricRegistryTest, ConcurrentCounterIncrements) {
  MetricRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Mix creation (registry mutex) with updates (lock-free).
      Counter& c = registry.GetCounter("shared");
      Gauge& g = registry.GetGauge("peak");
      for (int i = 0; i < kPerThread; ++i) {
        c.Increment();
        g.UpdateMax(i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.CounterValue("shared"),
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(registry.FindGauge("peak")->value(), kPerThread - 1);
}

TEST(MetricRegistryTest, ToStringListsInstruments) {
  MetricRegistry registry;
  registry.GetCounter("b.count").Increment(2);
  registry.GetCounter("a.count").Increment(1);
  registry.GetGauge("peak").Set(9);
  registry.GetHistogram("lat", {10}).Observe(5);
  std::string s = registry.ToString();
  EXPECT_NE(s.find("a.count"), std::string::npos);
  EXPECT_NE(s.find("b.count"), std::string::npos);
  EXPECT_NE(s.find("peak"), std::string::npos);
  EXPECT_NE(s.find("lat"), std::string::npos);
  // Sorted export: a.count before b.count.
  EXPECT_LT(s.find("a.count"), s.find("b.count"));
}

TEST(MetricRegistryTest, ToJsonStructure) {
  MetricRegistry registry;
  registry.GetCounter("ops").Increment(3);
  registry.GetGauge("peak").Set(-2);
  registry.GetHistogram("lat", {10, 20}).Observe(15);
  JsonValue doc = registry.ToJson();
  ASSERT_TRUE(doc.is_object());
  const JsonValue* counters = doc.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Find("ops")->as_uint(), 3u);
  EXPECT_EQ(doc.Find("gauges")->Find("peak")->as_int(), -2);
  const JsonValue* lat = doc.Find("histograms")->Find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->Find("count")->as_uint(), 1u);
  EXPECT_EQ(lat->Find("sum")->as_int(), 15);
  // Two bounded buckets plus the +inf overflow bucket.
  EXPECT_EQ(lat->Find("buckets")->size(), 3u);
}

// ---------------------------------------------------------------------------
// JSON writer/parser
// ---------------------------------------------------------------------------

TEST(JsonValueTest, BuildsNestedDocuments) {
  JsonValue doc = JsonValue::Object();
  doc["name"] = "tupelo";
  doc["nested"]["depth"] = 2;
  doc["list"].Append(1);
  doc["list"].Append("two");
  EXPECT_EQ(doc.Find("nested")->Find("depth")->as_int(), 2);
  EXPECT_EQ(doc.Find("list")->size(), 2u);
  EXPECT_EQ(doc.Dump(),
            "{\"name\":\"tupelo\",\"nested\":{\"depth\":2},"
            "\"list\":[1,\"two\"]}");
}

TEST(JsonValueTest, EscapesStrings) {
  JsonValue v("a\"b\\c\n\t\x01");
  std::string dump = v.Dump();
  EXPECT_EQ(dump, "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

TEST(JsonValueTest, ParseRoundTripPreservesDocument) {
  JsonValue doc = JsonValue::Object();
  doc["bool_t"] = true;
  doc["bool_f"] = false;
  doc["int"] = -42;
  doc["uint"] = static_cast<uint64_t>(1) << 63;
  doc["double"] = 0.125;
  doc["string"] = "hello \"world\"";
  doc["array"].Append(JsonValue());
  doc["array"].Append(3);
  doc["object"]["k"] = "v";

  Result<JsonValue> parsed = JsonValue::Parse(doc.Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // Dump of the parse equals the original dump (lossless round trip).
  EXPECT_EQ(parsed->Dump(), doc.Dump());
  // Pretty printing parses back to the same document too.
  Result<JsonValue> pretty = JsonValue::Parse(doc.Dump(2));
  ASSERT_TRUE(pretty.ok());
  EXPECT_EQ(pretty->Dump(), doc.Dump());
}

TEST(JsonValueTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("'single'").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\" 1}").ok());
}

TEST(JsonValueTest, ParseDecodesEscapes) {
  Result<JsonValue> v = JsonValue::Parse("\"tab\\tnewline\\nu\\u0041\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_string(), "tab\tnewline\nuA");
}

TEST(JsonValueTest, RegistryJsonRoundTrip) {
  MetricRegistry registry;
  registry.GetCounter("search.states_examined").Increment(17);
  registry.GetGauge("search.peak_memory_nodes").UpdateMax(5);
  registry.GetHistogram("search.f_bound", {1, 2, 4}).Observe(3);
  std::string dump = registry.ToJson().Dump(2);
  Result<JsonValue> parsed = JsonValue::Parse(dump);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(
      parsed->Find("counters")->Find("search.states_examined")->as_uint(),
      17u);
}

}  // namespace
}  // namespace tupelo::obs
