#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"

namespace tupelo {
namespace {

// ---------------------------------------------------------------------------
// Status
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::ParseError("line 3");
  EXPECT_EQ(s.ToString(), "ParseError: line 3");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

Status FailsIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  TUPELO_RETURN_IF_ERROR(FailsIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Result<T>
// ---------------------------------------------------------------------------

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 5);
  EXPECT_EQ(*r, 5);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, ValueOrFallsBack) {
  EXPECT_EQ(ParsePositive(3).value_or(-7), 3);
  EXPECT_EQ(ParsePositive(0).value_or(-7), -7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Result<int> Doubled(int x) {
  TUPELO_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnUnwrapsAndPropagates) {
  Result<int> ok = Doubled(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(Doubled(-3).status().code(), StatusCode::kOutOfRange);
}

// ---------------------------------------------------------------------------
// string_util
// ---------------------------------------------------------------------------

TEST(StringUtilTest, SplitBasic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, SplitEmptyInput) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, JoinBasic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, SplitJoinRoundTrip) {
  std::string s = "x|y||z";
  EXPECT_EQ(Join(Split(s, '|'), "|"), s);
}

TEST(StringUtilTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripAsciiWhitespace("\t\nhi"), "hi");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace("a b"), "a b");
}

TEST(StringUtilTest, IsInteger) {
  EXPECT_TRUE(IsInteger("0"));
  EXPECT_TRUE(IsInteger("42"));
  EXPECT_TRUE(IsInteger("-42"));
  EXPECT_TRUE(IsInteger("+7"));
  EXPECT_FALSE(IsInteger(""));
  EXPECT_FALSE(IsInteger("-"));
  EXPECT_FALSE(IsInteger("4.2"));
  EXPECT_FALSE(IsInteger("x1"));
  EXPECT_FALSE(IsInteger("1x"));
}

TEST(StringUtilTest, IsNumber) {
  EXPECT_TRUE(IsNumber("0"));
  EXPECT_TRUE(IsNumber("-3.5"));
  EXPECT_TRUE(IsNumber("3."));
  EXPECT_TRUE(IsNumber(".5"));
  EXPECT_FALSE(IsNumber("."));
  EXPECT_FALSE(IsNumber(""));
  EXPECT_FALSE(IsNumber("1.2.3"));
  EXPECT_FALSE(IsNumber("1e5"));
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(StringUtilTest, AsciiToLower) {
  EXPECT_EQ(AsciiToLower("AbC123"), "abc123");
}

TEST(StringUtilTest, EscapeAndQuote) {
  EXPECT_EQ(Escape("plain"), "plain");
  EXPECT_EQ(Escape("a\"b"), "a\\\"b");
  EXPECT_EQ(Escape("a\\b"), "a\\\\b");
  EXPECT_EQ(Escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(Quote("hi"), "\"hi\"");
  EXPECT_EQ(Quote("say \"hi\""), "\"say \\\"hi\\\"\"");
}

// ---------------------------------------------------------------------------
// hash
// ---------------------------------------------------------------------------

TEST(HashTest, Fnv1aIsStableAndSensitive) {
  EXPECT_EQ(Fnv1a("abc"), Fnv1a("abc"));
  EXPECT_NE(Fnv1a("abc"), Fnv1a("abd"));
  EXPECT_NE(Fnv1a("abc"), Fnv1a("ab"));
  EXPECT_NE(Fnv1a(""), Fnv1a(std::string_view("\0", 1)));
}

TEST(HashTest, KnownFnv1aVector) {
  // FNV-1a 64-bit of the empty string is the offset basis.
  EXPECT_EQ(Fnv1a(""), 0xcbf29ce484222325ULL);
}

TEST(HashTest, HashCombineChangesSeed) {
  size_t seed1 = 0;
  HashCombine(&seed1, std::string("a"));
  size_t seed2 = 0;
  HashCombine(&seed2, std::string("b"));
  EXPECT_NE(seed1, seed2);
  size_t seed3 = seed1;
  HashCombine(&seed3, std::string("b"));
  EXPECT_NE(seed3, seed1);
}

TEST(HashTest, HashCombineOrderMatters) {
  size_t ab = 0;
  HashCombine(&ab, std::string("a"));
  HashCombine(&ab, std::string("b"));
  size_t ba = 0;
  HashCombine(&ba, std::string("b"));
  HashCombine(&ba, std::string("a"));
  EXPECT_NE(ab, ba);
}

}  // namespace
}  // namespace tupelo
