// Resource governance end-to-end: deadlines, cancellation, the
// graceful-degradation ladder, anytime partial results, and the
// fault-injection seam (docs/ROBUSTNESS.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/tupelo.h"
#include "fira/executor.h"
#include "fira/operators.h"
#include "obs/metrics.h"
#include "relational/io.h"

namespace tupelo {
namespace {

Database Tdb(const char* text) {
  Result<Database> db = ParseTdb(text);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

TupeloResult MustDiscover(const Tupelo& system, const TupeloOptions& options) {
  Result<TupeloResult> r = system.Discover(options);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

// A synthetic instance that is intractable within tens of milliseconds: ten
// attributes to rename (≫10! orderings interleaved with the other
// operators) plus a target value 'zz' no operator can materialize, so the
// search can never terminate with found=true.
Tupelo IntractableInstance() {
  Database source = Tdb(
      "relation R (A0, A1, A2, A3, A4, A5, A6, A7, A8, A9) "
      "{ (v0, v1, v2, v3, v4, v5, v6, v7, v8, v9) }");
  Database target = Tdb(
      "relation R (B0, B1, B2, B3, B4, B5, B6, B7, B8, B9, Z) "
      "{ (v0, v1, v2, v3, v4, v5, v6, v7, v8, v9, zz) }");
  return Tupelo(std::move(source), std::move(target));
}

// Installs/uninstalls the process-wide fault injector for a test scope.
struct ScopedInjector {
  explicit ScopedInjector(FaultInjector* injector) {
    SetFaultInjector(injector);
  }
  ~ScopedInjector() { SetFaultInjector(nullptr); }
};

// ---------------------------------------------------------------------------
// Deadline + ladder (the PR's acceptance scenario)
// ---------------------------------------------------------------------------

TEST(GovernanceTest, DeadlineOnIntractableInstanceDegradesGracefully) {
  Tupelo system = IntractableInstance();
  obs::MetricRegistry metrics;
  TupeloOptions options;
  options.limits.deadline_millis = 50;
  options.ladder = DefaultLadder();
  options.metrics = &metrics;

  auto start = std::chrono::steady_clock::now();
  TupeloResult r = MustDiscover(system, options);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.stop_reason, StopReason::kDeadline);
  EXPECT_TRUE(r.budget_exhausted);
  // The state budget (10M) would take minutes: only the wall clock can have
  // stopped this run. The bound is loose for CI noise; typical overshoot is
  // one check_interval of expansions past 50ms.
  EXPECT_LT(elapsed.count(), 1000);

  // Both rungs of the default ladder were attempted, in order.
  ASSERT_EQ(r.rungs.size(), 2u);
  EXPECT_EQ(r.rungs[0].algorithm, SearchAlgorithm::kIda);
  EXPECT_EQ(r.rungs[1].algorithm, SearchAlgorithm::kBeam);
  EXPECT_EQ(r.rungs[0].stop, StopReason::kDeadline);
  EXPECT_EQ(r.rungs[1].stop, StopReason::kDeadline);

  // Anytime result: a non-empty partial mapping with some heuristic
  // distance still to go.
  EXPECT_FALSE(r.partial_mapping.empty());
  EXPECT_GT(r.partial_h, 0);

  EXPECT_GE(metrics.CounterValue("governor.deadline_trips"), 1u);
  EXPECT_EQ(metrics.CounterValue("governor.fallback_activations"), 1u);
  EXPECT_GE(metrics.CounterValue("governor.rungs_attempted"), 1u);
  EXPECT_GT(metrics.CounterValue("governor.rung.ida.nanos") +
                metrics.CounterValue("governor.rung.beam.nanos"),
            0u);
}

TEST(GovernanceTest, LadderRecoversAfterStarvedFirstRung) {
  // Rung 1 gets a one-state sliver and must trip; the beam rung inherits
  // the remaining budget and finds the mapping.
  Database source = Tdb("relation R (A, B) { (x, y) }");
  Database target = Tdb("relation R (C, D) { (x, y) }");
  Tupelo system(source, target);
  obs::MetricRegistry metrics;
  TupeloOptions options;
  options.limits.max_states = 100000;
  options.ladder = {{SearchAlgorithm::kIda, 1e-9}, {SearchAlgorithm::kBeam, 1.0}};
  options.metrics = &metrics;

  TupeloResult r = MustDiscover(system, options);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.stop_reason, StopReason::kFound);
  EXPECT_TRUE(r.verified);
  EXPECT_TRUE(r.verify_status.ok());
  ASSERT_EQ(r.rungs.size(), 2u);
  EXPECT_EQ(r.rungs[0].stop, StopReason::kStates);
  EXPECT_EQ(r.rungs[0].states_examined, 1u);
  EXPECT_EQ(r.rungs[1].stop, StopReason::kFound);
  EXPECT_EQ(metrics.CounterValue("governor.fallback_activations"), 1u);
  // Aggregate stats cover both rungs.
  EXPECT_GE(r.stats.states_examined, 1u + r.rungs[1].states_examined);
}

TEST(GovernanceTest, PlainRunRecordsSingleRung) {
  Database db = Tdb("relation R (A) { (1) }");
  Tupelo system(db, db);
  TupeloResult r = MustDiscover(system, {});
  ASSERT_TRUE(r.found);
  ASSERT_EQ(r.rungs.size(), 1u);
  EXPECT_EQ(r.rungs[0].stop, StopReason::kFound);
  EXPECT_EQ(r.stop_reason, StopReason::kFound);
  EXPECT_FALSE(r.budget_exhausted);
}

TEST(GovernanceTest, DefaultLadderShape) {
  std::vector<DegradationRung> ladder = DefaultLadder();
  ASSERT_EQ(ladder.size(), 2u);
  EXPECT_EQ(ladder[0].algorithm, SearchAlgorithm::kIda);
  EXPECT_EQ(ladder[1].algorithm, SearchAlgorithm::kBeam);
}

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

TEST(GovernanceTest, PreCancelledTokenStopsTheLadderImmediately) {
  Tupelo system = IntractableInstance();
  obs::MetricRegistry metrics;
  CancelToken token;
  token.Cancel();
  TupeloOptions options;
  options.limits.cancel = &token;
  options.ladder = DefaultLadder();
  options.metrics = &metrics;

  TupeloResult r = MustDiscover(system, options);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.stop_reason, StopReason::kCancelled);
  EXPECT_TRUE(r.budget_exhausted);
  // Cancellation is terminal: no fallback rung is attempted.
  ASSERT_EQ(r.rungs.size(), 1u);
  EXPECT_EQ(r.rungs[0].stop, StopReason::kCancelled);
  EXPECT_EQ(metrics.CounterValue("governor.cancellations"), 1u);
  EXPECT_EQ(metrics.CounterValue("governor.fallback_activations"), 0u);
}

TEST(GovernanceTest, ConcurrentCancelStopsRunningDiscover) {
  Tupelo system = IntractableInstance();
  CancelToken token;
  TupeloOptions options;
  options.limits.cancel = &token;
  options.limits.check_interval = 1;
  options.ladder = DefaultLadder();

  Result<TupeloResult> r = Status::Internal("not run");
  std::thread worker([&] { r = system.Discover(options); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  token.Cancel();
  worker.join();

  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->found);
  EXPECT_EQ(r->stop_reason, StopReason::kCancelled);
  EXPECT_TRUE(r->budget_exhausted);
}

// ---------------------------------------------------------------------------
// Fault injection through search, verification, and the ladder
// ---------------------------------------------------------------------------

TEST(GovernanceTest, InjectedVerifyFailureSurfacesAsVerifyStatus) {
  Database source = Tdb("relation R (A) { (1) }");
  Database target = Tdb("relation R (B) { (1) }");
  Tupelo system(source, target);

  FaultInjector injector;
  ScopedInjector installed(&injector);

  // Pass 1: count operator applications without failing any.
  injector.Arm("*", Status::Internal("unreachable"),
               std::numeric_limits<uint64_t>::max());
  TupeloResult clean = MustDiscover(system, {});
  ASSERT_TRUE(clean.found);
  EXPECT_TRUE(clean.verified);
  uint64_t total = injector.consults();
  ASSERT_GE(total, clean.mapping.steps().size());

  // Pass 2: the search is deterministic, so skipping everything except the
  // final replay applications makes verification (and only verification)
  // fail. The search result must survive with the replay error surfaced.
  injector.Arm("*", Status::Internal("injected verify fault"),
               total - clean.mapping.steps().size());
  TupeloResult faulted = MustDiscover(system, {});
  EXPECT_EQ(injector.injected(), 1u);
  ASSERT_TRUE(faulted.found);
  EXPECT_EQ(faulted.stop_reason, StopReason::kFound);
  EXPECT_FALSE(faulted.verified);
  ASSERT_FALSE(faulted.verify_status.ok());
  EXPECT_NE(faulted.verify_status.ToString().find("injected verify fault"),
            std::string::npos);
}

TEST(GovernanceTest, AllOperatorsFailingExhaustsCleanly) {
  // Every ApplyOp fails: states have no successors, so every algorithm
  // sweeps the (empty) space and reports a conclusive exhausted stop — no
  // crash, no resource trip.
  Database source = Tdb("relation R (A) { (1) }");
  Database target = Tdb("relation R (B) { (1) }");
  Tupelo system(source, target);

  FaultInjector injector;
  ScopedInjector installed(&injector);
  injector.Arm("*", Status::Internal("operator offline"));

  TupeloOptions options;
  options.ladder = DefaultLadder();
  TupeloResult r = MustDiscover(system, options);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.stop_reason, StopReason::kExhausted);
  EXPECT_FALSE(r.budget_exhausted);
  EXPECT_GT(injector.injected(), 0u);
  ASSERT_EQ(r.rungs.size(), 2u);  // exhausted rungs still fall through
}

TEST(GovernanceTest, FaultInjectorMatchesNameAndSkips) {
  Database db = Tdb("relation R (A) { (1) }");
  Op rename = RenameAttrOp{"R", "A", "B"};

  FaultInjector injector;
  ScopedInjector installed(&injector);

  // Name mismatch: never consulted as a match, never fails.
  injector.Arm("promote", Status::Internal("wrong op"));
  EXPECT_TRUE(ApplyOp(rename, db).ok());
  EXPECT_EQ(injector.consults(), 0u);

  // Matching name with skip=1: first application passes, second fails.
  injector.Arm("rename_att", Status::Internal("injected"), 1);
  EXPECT_TRUE(ApplyOp(rename, db).ok());
  Result<Database> failed = ApplyOp(rename, db);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInternal);
  EXPECT_EQ(injector.consults(), 2u);
  EXPECT_EQ(injector.injected(), 1u);

  // Disarmed: everything passes again.
  injector.Disarm();
  EXPECT_TRUE(ApplyOp(rename, db).ok());
}

TEST(GovernanceTest, InjectedFailureCountsInExecutorMetrics) {
  Database db = Tdb("relation R (A) { (1) }");
  Op rename = RenameAttrOp{"R", "A", "B"};

  FaultInjector injector;
  ScopedInjector installed(&injector);
  injector.Arm("*", Status::Internal("injected"));

  obs::MetricRegistry metrics;
  EXPECT_FALSE(ApplyOp(rename, db, nullptr, &metrics).ok());
  EXPECT_EQ(metrics.CounterValue("executor.rename_att.count"), 1u);
  EXPECT_EQ(metrics.CounterValue("executor.rename_att.failures"), 1u);
}

// ---------------------------------------------------------------------------
// Fault-injector firing modes (campaign building blocks)
// ---------------------------------------------------------------------------

TEST(GovernanceTest, ProbabilisticInjectionRespectsEndpoints) {
  Database db = Tdb("relation R (A) { (1) }");
  Op rename = RenameAttrOp{"R", "A", "B"};

  FaultInjector injector;
  ScopedInjector installed(&injector);

  // p = 1: every matching application fails.
  injector.ArmProbabilistic("*", Status::Internal("injected"), 1.0, 42);
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(ApplyOp(rename, db).ok());
  EXPECT_EQ(injector.injected(), 8u);

  // p = 0: consulted but never fires.
  injector.ArmProbabilistic("*", Status::Internal("injected"), 0.0, 42);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ApplyOp(rename, db).ok());
  EXPECT_EQ(injector.consults(), 8u);
  EXPECT_EQ(injector.injected(), 0u);
}

TEST(GovernanceTest, ProbabilisticInjectionIsSeedDeterministic) {
  Database db = Tdb("relation R (A) { (1) }");
  Op rename = RenameAttrOp{"R", "A", "B"};

  FaultInjector injector;
  ScopedInjector installed(&injector);

  auto pattern = [&](uint64_t seed) {
    injector.ArmProbabilistic("*", Status::Internal("injected"), 0.5, seed);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!ApplyOp(rename, db).ok());
    return fired;
  };
  std::vector<bool> first = pattern(7);
  std::vector<bool> second = pattern(7);
  EXPECT_EQ(first, second);  // same seed ⇒ bit-identical campaign replay
  // At p = 0.5 over 64 draws, both outcomes must occur.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST(GovernanceTest, EveryNthInjectionFiresOnSchedule) {
  Database db = Tdb("relation R (A) { (1) }");
  Op rename = RenameAttrOp{"R", "A", "B"};

  FaultInjector injector;
  ScopedInjector installed(&injector);
  injector.ArmEveryNth("*", Status::ResourceExhausted("injected"), 3);

  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(!ApplyOp(rename, db).ok());
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true,
                                      false, false, true}));
  EXPECT_EQ(injector.injected(), 2u);

  // n = 0 is consulted but can never fire.
  injector.ArmEveryNth("*", Status::Internal("injected"), 0);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ApplyOp(rename, db).ok());
  EXPECT_EQ(injector.injected(), 0u);
}

// ---------------------------------------------------------------------------
// Verification status on clean runs
// ---------------------------------------------------------------------------

TEST(GovernanceTest, CleanRunHasOkVerifyStatus) {
  Database source = Tdb("relation R (A) { (1) }");
  Database target = Tdb("relation R (B) { (1) }");
  Tupelo system(source, target);
  TupeloResult r = MustDiscover(system, {});
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(r.verified);
  EXPECT_TRUE(r.verify_status.ok());
}

TEST(GovernanceTest, NotFoundRunLeavesVerifyStatusOk) {
  Database source = Tdb("relation R (A) { (1) }");
  Database target = Tdb("relation R (A) { (2) }");
  Tupelo system(source, target);
  TupeloOptions options;
  options.limits.max_states = 2000;
  TupeloResult r = MustDiscover(system, options);
  EXPECT_FALSE(r.found);
  EXPECT_FALSE(r.verified);
  EXPECT_TRUE(r.verify_status.ok());  // nothing to verify is not an error
}

// ---------------------------------------------------------------------------
// BudgetGuard / CancelToken edge cases
// ---------------------------------------------------------------------------

TEST(GovernanceTest, GuardTripsDeadlineAlreadyElapsedAtConstruction) {
  // A 1 ms deadline that has expired before the first Check: the guard's
  // first call always polls, so the very first state trips kDeadline
  // instead of the search running a full check_interval blind.
  SearchLimits limits;
  limits.deadline_millis = 1;
  BudgetGuard guard(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  std::optional<StopReason> stop = guard.Check(0, 0, 0);
  ASSERT_TRUE(stop.has_value());
  EXPECT_EQ(*stop, StopReason::kDeadline);
}

TEST(GovernanceTest, GuardTripsPreCancelledTokenOnFirstCheck) {
  SearchLimits limits;
  CancelToken token;
  token.Cancel();
  limits.cancel = &token;
  BudgetGuard guard(limits);
  std::optional<StopReason> stop = guard.Check(0, 0, 0);
  ASSERT_TRUE(stop.has_value());
  EXPECT_EQ(*stop, StopReason::kCancelled);
}

TEST(GovernanceTest, GuardWithZeroStateBudgetTripsImmediately) {
  SearchLimits limits;
  limits.max_states = 0;
  BudgetGuard guard(limits);
  std::optional<StopReason> stop = guard.Check(0, 0, 0);
  ASSERT_TRUE(stop.has_value());
  EXPECT_EQ(*stop, StopReason::kStates);
}

TEST(GovernanceTest, ChildTokenSurvivesDestroyedCancelledParent) {
  // A child must keep reporting a cancellation it inherited even after
  // the parent object is gone: the shared cancellation nodes stay alive
  // through the child's chain.
  auto parent = std::make_unique<CancelToken>();
  CancelToken child(parent.get());
  parent->Cancel();
  EXPECT_TRUE(child.cancelled());
  parent.reset();
  EXPECT_TRUE(child.cancelled());
}

TEST(GovernanceTest, ChildTokenSurvivesDestroyedUncancelledParent) {
  auto parent = std::make_unique<CancelToken>();
  CancelToken child(parent.get());
  parent.reset();
  EXPECT_FALSE(child.cancelled());
  child.Cancel();
  EXPECT_TRUE(child.cancelled());
}

TEST(GovernanceTest, DoubleCancelIsIdempotent) {
  CancelToken token;
  token.Cancel();
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Reset();
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
}

TEST(GovernanceTest, CopiedTokenSharesCancellationState) {
  CancelToken token;
  CancelToken copy = token;
  token.Cancel();
  EXPECT_TRUE(copy.cancelled());
}

TEST(GovernanceTest, ChildDoesNotPropagateCancelUpToParent) {
  CancelToken parent;
  CancelToken child(&parent);
  child.Cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_FALSE(parent.cancelled());
}

}  // namespace
}  // namespace tupelo
