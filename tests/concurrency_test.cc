// The parallel search runtime: ThreadPool/WaitGroup, thread-safe
// MappingProblem caches (estimate shards, expand LRU under concurrent
// expansion), per-thread COW attribution, CancelToken parenting, the
// parallel beam's bit-identical-outcome contract, and the concurrent
// portfolio ladder. Under CMAKE_BUILD_TYPE=Tsan this suite doubles as the
// tsan_smoke race detector target.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/mapping_problem.h"
#include "core/tupelo.h"
#include "heuristics/heuristic_factory.h"
#include "obs/metrics.h"
#include "relational/database.h"
#include "search/beam.h"
#include "search/parallel_beam.h"
#include "search/search_types.h"
#include "workloads/synthetic.h"

namespace tupelo {
namespace {

MappingProblem MakeProblem(const SyntheticMatchingPair& pair,
                           SuccessorConfig config = SuccessorConfig()) {
  return MappingProblem(
      pair.source, pair.target,
      MakeHeuristic(HeuristicKind::kH1, pair.target, SearchAlgorithm::kRbfs),
      nullptr, {}, config);
}

// ---------------------------------------------------------------------------
// ThreadPool / WaitGroup
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  WaitGroup wg;
  wg.Add(1000);
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&count, &wg] {
      count.fetch_add(1, std::memory_order_relaxed);
      wg.Done();
    });
  }
  wg.Wait();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, WaitGroupIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  WaitGroup wg;
  for (int batch = 0; batch < 5; ++batch) {
    wg.Add(10);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count, &wg] {
        count.fetch_add(1, std::memory_order_relaxed);
        wg.Done();
      });
    }
    wg.Wait();
    EXPECT_EQ(count.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, DestructorRunsPendingTasksBeforeJoining) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // dtor drains the queue, then joins
  EXPECT_EQ(count.load(), 50);
}

// ---------------------------------------------------------------------------
// CancelToken parenting
// ---------------------------------------------------------------------------

TEST(CancelTokenTest, ChildObservesParentCancellation) {
  CancelToken parent;
  CancelToken child(&parent);
  EXPECT_FALSE(child.cancelled());
  parent.Cancel();
  EXPECT_TRUE(child.cancelled());
}

TEST(CancelTokenTest, ChildCancellationDoesNotPropagateUp) {
  CancelToken parent;
  CancelToken child(&parent);
  child.Cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_FALSE(parent.cancelled());
}

// ---------------------------------------------------------------------------
// Concurrent MappingProblem access (the TSan targets)
// ---------------------------------------------------------------------------

TEST(ConcurrentProblemTest, TwoThreadsExpandingSameProblemAgree) {
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(3);
  MappingProblem problem = MakeProblem(pair);
  obs::MetricRegistry metrics;
  problem.set_metrics(&metrics);

  // The reference result, computed before any concurrency.
  auto expected = problem.Expand(pair.source);
  ASSERT_FALSE(expected.empty());

  std::atomic<bool> mismatch{false};
  auto worker = [&] {
    for (int i = 0; i < 50; ++i) {
      auto got = problem.Expand(pair.source);
      if (got.size() != expected.size()) {
        mismatch.store(true);
        return;
      }
      for (size_t s = 0; s < got.size(); ++s) {
        if (!(got[s].state.Fingerprint128() ==
              expected[s].state.Fingerprint128()) ||
            !(got[s].action == expected[s].action)) {
          mismatch.store(true);
          return;
        }
      }
    }
  };
  std::thread a(worker);
  std::thread b(worker);
  a.join();
  b.join();
  EXPECT_FALSE(mismatch.load());
  // Every Expand after the first was a cache hit, however the two threads
  // interleaved.
  EXPECT_EQ(metrics.GetCounter("expand.cache_hits").value() +
                metrics.GetCounter("expand.cache_misses").value(),
            101u);
  EXPECT_GE(metrics.GetCounter("expand.cache_hits").value(), 100u);
}

TEST(ConcurrentProblemTest, ConcurrentExpandWithEvictionStaysConsistent) {
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(3);
  SuccessorConfig config;
  config.expand_cache_capacity = 2;  // force constant LRU churn
  MappingProblem problem = MakeProblem(pair, config);

  auto seed = problem.Expand(pair.source);
  ASSERT_GE(seed.size(), 3u);
  // Each thread cycles through the same states; the capacity-2 cache
  // splices and evicts under both threads at once.
  std::vector<Database> states = {pair.source, seed[0].state, seed[1].state,
                                  seed[2].state};
  auto worker = [&] {
    for (int i = 0; i < 25; ++i) {
      for (const Database& s : states) (void)problem.Expand(s);
    }
  };
  std::thread a(worker);
  std::thread b(worker);
  a.join();
  b.join();

  // Whatever the interleaving, the accounting invariant holds: the states
  // reported by AuxMemoryNodes are exactly the cached successors, and the
  // cache never exceeds its capacity (2 entries).
  auto s0 = problem.Expand(pair.source);
  auto s1 = problem.Expand(seed[0].state);
  EXPECT_EQ(problem.AuxMemoryNodes(), s0.size() + s1.size());
}

TEST(ConcurrentProblemTest, ConcurrentEstimatesReturnIdenticalValues) {
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(4);
  MappingProblem problem = MakeProblem(pair);
  auto successors = problem.Expand(pair.source);
  ASSERT_FALSE(successors.empty());

  std::vector<int> expected;
  expected.reserve(successors.size());
  for (const auto& s : successors) {
    expected.push_back(problem.EstimateCost(s.state));
  }
  std::atomic<bool> mismatch{false};
  auto worker = [&] {
    for (int i = 0; i < 50; ++i) {
      for (size_t s = 0; s < successors.size(); ++s) {
        if (problem.EstimateCost(successors[s].state) != expected[s]) {
          mismatch.store(true);
          return;
        }
      }
    }
  };
  std::thread a(worker);
  std::thread b(worker);
  a.join();
  b.join();
  EXPECT_FALSE(mismatch.load());
}

// ---------------------------------------------------------------------------
// Expand LRU accounting after eviction
// ---------------------------------------------------------------------------

TEST(ExpandCacheAccountingTest, AuxNodesMatchCachedSuccessorsAfterEviction) {
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(3);
  SuccessorConfig config;
  config.expand_cache_capacity = 2;
  MappingProblem problem = MakeProblem(pair, config);
  obs::MetricRegistry metrics;
  problem.set_metrics(&metrics);

  auto s_root = problem.Expand(pair.source);
  ASSERT_GE(s_root.size(), 2u);
  auto s0 = problem.Expand(s_root[0].state);
  // Cache full: {root, s_root[0]}. A third distinct state evicts the LRU
  // entry (root).
  auto s1 = problem.Expand(s_root[1].state);
  EXPECT_EQ(metrics.GetCounter("expand.cache_evictions").value(), 1u);
  EXPECT_EQ(problem.AuxMemoryNodes(), s0.size() + s1.size());

  // Touch s_root[0] (now the LRU survivor) to refresh it, then expand the
  // root again: s_root[1]'s entry is the one evicted this time.
  (void)problem.Expand(s_root[0].state);
  (void)problem.Expand(pair.source);
  EXPECT_EQ(metrics.GetCounter("expand.cache_evictions").value(), 2u);
  EXPECT_EQ(problem.AuxMemoryNodes(), s0.size() + s_root.size());
}

// ---------------------------------------------------------------------------
// Per-thread COW attribution
// ---------------------------------------------------------------------------

TEST(CowAttributionTest, ThreadCowStatsCountOnlyThisThread) {
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(3);
  MappingProblem other_problem = MakeProblem(pair);

  // Heavy COW traffic on another thread must not show up in this thread's
  // counters (the process-global gauge does move).
  Database::CowStats main_before = Database::ThreadCowStats();
  std::thread worker([&] {
    Database::CowStats worker_before = Database::ThreadCowStats();
    (void)other_problem.Expand(pair.source);
    Database::CowStats worker_after = Database::ThreadCowStats();
    EXPECT_GT(worker_after.cow_copies, worker_before.cow_copies);
    EXPECT_GT(worker_after.relations_shared, worker_before.relations_shared);
  });
  worker.join();
  Database::CowStats main_after = Database::ThreadCowStats();
  EXPECT_EQ(main_after.cow_copies, main_before.cow_copies);
  EXPECT_EQ(main_after.relations_shared, main_before.relations_shared);
}

TEST(CowAttributionTest, ProblemMetricsAttributePerProblem) {
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(3);
  MappingProblem a = MakeProblem(pair);
  MappingProblem b = MakeProblem(pair);
  obs::MetricRegistry ma;
  obs::MetricRegistry mb;
  a.set_metrics(&ma);
  b.set_metrics(&mb);

  (void)a.Expand(pair.source);
  EXPECT_GT(ma.GetCounter("state.cow_copies").value(), 0u);
  // b did no work: its registry stays clean even though the same process
  // (and thread) ran a's expansions.
  EXPECT_EQ(mb.GetCounter("state.cow_copies").value(), 0u);
  EXPECT_EQ(mb.GetCounter("state.relations_shared").value(), 0u);
}

// ---------------------------------------------------------------------------
// Parallel beam: bit-identical outcomes
// ---------------------------------------------------------------------------

// A number-line toy (copied shape from search_test.cc): unbounded space,
// perfect heuristic, thread-safe const surface.
struct NumberLineProblem {
  using State = int;
  using Action = int;
  struct SuccessorT {
    Action action;
    State state;
  };

  int goal = 0;

  const State& initial_state() const {
    static const int kStart = 0;
    return kStart;
  }
  bool IsGoal(const State& s) const { return s == goal; }
  std::vector<SuccessorT> Expand(const State& s) const {
    return {SuccessorT{-1, s - 1}, SuccessorT{+1, s + 1}};
  }
  int EstimateCost(const State& s) const { return std::abs(goal - s); }
  uint64_t StateKey(const State& s) const {
    return static_cast<uint64_t>(static_cast<int64_t>(s) + (1LL << 32));
  }
};

template <typename Outcome>
void ExpectIdenticalOutcomes(const Outcome& seq, const Outcome& par) {
  EXPECT_EQ(seq.found, par.found);
  EXPECT_EQ(seq.stop, par.stop);
  EXPECT_EQ(seq.budget_exhausted, par.budget_exhausted);
  EXPECT_EQ(seq.path, par.path);
  EXPECT_EQ(seq.best_path, par.best_path);
  EXPECT_EQ(seq.best_h, par.best_h);
  EXPECT_EQ(seq.stats.states_examined, par.stats.states_examined);
  EXPECT_EQ(seq.stats.states_generated, par.stats.states_generated);
  EXPECT_EQ(seq.stats.iterations, par.stats.iterations);
  EXPECT_EQ(seq.stats.solution_cost, par.stats.solution_cost);
  EXPECT_EQ(seq.stats.peak_memory_nodes, par.stats.peak_memory_nodes);
}

TEST(ParallelBeamTest, BitIdenticalToSequentialOnToyProblem) {
  NumberLineProblem p;
  p.goal = 40;
  SearchLimits limits;
  limits.max_depth = 100;
  ThreadPool pool(4);

  auto seq = BeamSearch(p, 4, limits);
  auto par = ParallelBeamSearch(p, 4, &pool, limits);
  ASSERT_TRUE(seq.found);
  ExpectIdenticalOutcomes(seq, par);
}

TEST(ParallelBeamTest, BitIdenticalWhenBudgetTrips) {
  NumberLineProblem p;
  p.goal = 100000;
  SearchLimits limits;
  limits.max_states = 60;
  limits.max_depth = 200000;
  ThreadPool pool(4);

  auto seq = BeamSearch(p, 8, limits);
  auto par = ParallelBeamSearch(p, 8, &pool, limits);
  ASSERT_FALSE(seq.found);
  EXPECT_EQ(seq.stop, StopReason::kStates);
  ExpectIdenticalOutcomes(seq, par);
}

TEST(ParallelBeamTest, BitIdenticalOnMappingProblem) {
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(4);
  // Two independent problem instances so neither run warms the other's
  // caches (the problems are noncopyable and lock-holding).
  MappingProblem seq_problem = MakeProblem(pair);
  MappingProblem par_problem = MakeProblem(pair);
  SearchLimits limits;
  limits.max_depth = 12;
  ThreadPool pool(4);

  auto seq = BeamSearch(seq_problem, 8, limits);
  auto par = ParallelBeamSearch(par_problem, 8, &pool, limits);
  ASSERT_TRUE(seq.found);
  ExpectIdenticalOutcomes(seq, par);
}

TEST(ParallelBeamTest, NullOrSingleWorkerPoolFallsBack) {
  NumberLineProblem p;
  p.goal = 10;
  SearchLimits limits;
  limits.max_depth = 20;
  ThreadPool one(1);

  auto seq = BeamSearch(p, 4, limits);
  ExpectIdenticalOutcomes(seq, ParallelBeamSearch(p, 4, nullptr, limits));
  ExpectIdenticalOutcomes(seq, ParallelBeamSearch(p, 4, &one, limits));
}

TEST(ParallelBeamTest, PreCancelledTokenStopsWithoutVisits) {
  NumberLineProblem p;
  p.goal = 1000;
  CancelToken token;
  token.Cancel();
  SearchLimits limits;
  limits.max_depth = 2000;
  limits.cancel = &token;
  ThreadPool pool(4);

  auto out = ParallelBeamSearch(p, 4, &pool, limits);
  EXPECT_FALSE(out.found);
  EXPECT_EQ(out.stop, StopReason::kCancelled);
  EXPECT_EQ(out.stats.states_examined, 0u);
}

TEST(ParallelBeamTest, RecordsParallelInstruments) {
  NumberLineProblem p;
  p.goal = 20;
  SearchLimits limits;
  limits.max_depth = 40;
  ThreadPool pool(4);
  obs::MetricRegistry metrics;

  auto out = ParallelBeamSearch(p, 4, &pool, limits, nullptr, &metrics);
  ASSERT_TRUE(out.found);
  EXPECT_GE(metrics.GetCounter("beam.parallel.levels").value(), 1u);
  // At least one task per level, and one task per frontier node overall.
  EXPECT_GE(metrics.GetCounter("beam.parallel.tasks").value(),
            metrics.GetCounter("beam.parallel.levels").value());
}

// ---------------------------------------------------------------------------
// Discover: threaded beam and the concurrent portfolio
// ---------------------------------------------------------------------------

TEST(DiscoverThreadsTest, ThreadedBeamDiscoveryMatchesSingleThreaded) {
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(4);
  Tupelo system(pair.source, pair.target);

  TupeloOptions base;
  base.algorithm = SearchAlgorithm::kBeam;
  base.heuristic = HeuristicKind::kH1;
  base.limits.max_depth = 12;

  TupeloOptions threaded = base;
  threaded.threads = 4;
  obs::MetricRegistry metrics;
  threaded.metrics = &metrics;

  Result<TupeloResult> seq = system.Discover(base);
  Result<TupeloResult> par = system.Discover(threaded);
  ASSERT_TRUE(seq.ok()) << seq.status();
  ASSERT_TRUE(par.ok()) << par.status();
  ASSERT_TRUE(seq->found);
  ASSERT_TRUE(par->found);
  EXPECT_TRUE(par->verified);
  EXPECT_EQ(seq->mapping.ToScript(), par->mapping.ToScript());
  EXPECT_EQ(seq->stats.states_examined, par->stats.states_examined);
  EXPECT_EQ(seq->stats.states_generated, par->stats.states_generated);
  EXPECT_EQ(seq->stats.solution_cost, par->stats.solution_cost);
  EXPECT_EQ(seq->stop_reason, par->stop_reason);

  const obs::Gauge* threads = metrics.FindGauge("runtime.threads");
  ASSERT_NE(threads, nullptr);
  EXPECT_EQ(static_cast<uint64_t>(threads->value()), 4u);
  EXPECT_GE(metrics.GetCounter("beam.parallel.levels").value(), 1u);
}

TEST(PortfolioTest, ConcurrentLadderFindsVerifiedMapping) {
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(3);
  Tupelo system(pair.source, pair.target);

  TupeloOptions options;
  options.ladder = DefaultLadder();
  ASSERT_GE(options.ladder.size(), 2u);
  options.portfolio = true;
  options.limits.max_depth = 12;
  obs::MetricRegistry metrics;
  options.metrics = &metrics;

  Result<TupeloResult> result = system.Discover(options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->found);
  EXPECT_TRUE(result->verified);
  EXPECT_EQ(result->stop_reason, StopReason::kFound);
  // Every rung launched; they are reported in ladder order.
  EXPECT_EQ(result->rungs.size(), options.ladder.size());
  for (size_t i = 0; i < result->rungs.size(); ++i) {
    EXPECT_EQ(result->rungs[i].algorithm, options.ladder[i].algorithm) << i;
  }
  EXPECT_EQ(metrics.GetCounter("runtime.portfolio.rungs").value(),
            options.ladder.size());
  // A winner emerged, so the other rungs were told to stop.
  EXPECT_EQ(metrics.GetCounter("runtime.portfolio.losers_cancelled").value(),
            options.ladder.size() - 1);
}

TEST(PortfolioTest, ParentCancelStopsThePortfolio) {
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(3);
  Tupelo system(pair.source, pair.target);

  CancelToken token;
  token.Cancel();  // cancelled before the rungs even start
  TupeloOptions options;
  options.ladder = DefaultLadder();
  options.portfolio = true;
  options.limits.cancel = &token;
  options.limits.max_depth = 12;

  Result<TupeloResult> result = system.Discover(options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->found);
  EXPECT_EQ(result->stop_reason, StopReason::kCancelled);
}

}  // namespace
}  // namespace tupelo
