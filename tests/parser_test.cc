#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fira/parser.h"
#include "workloads/flights.h"

namespace tupelo {
namespace {

Op MustParseOp(const char* text) {
  Result<Op> op = ParseOp(text);
  EXPECT_TRUE(op.ok()) << text << ": " << op.status();
  return std::move(op).value();
}

TEST(ParserTest, ParsesEveryOperator) {
  EXPECT_EQ(MustParseOp("dereference(R, P, O)"),
            Op(DereferenceOp{"R", "P", "O"}));
  EXPECT_EQ(MustParseOp("promote(R, A, B)"), Op(PromoteOp{"R", "A", "B"}));
  EXPECT_EQ(MustParseOp("demote(R)"), Op(DemoteOp{"R"}));
  EXPECT_EQ(MustParseOp("partition(R, A)"), Op(PartitionOp{"R", "A"}));
  EXPECT_EQ(MustParseOp("product(R, S)"), Op(ProductOp{"R", "S"}));
  EXPECT_EQ(MustParseOp("drop(R, A)"), Op(DropOp{"R", "A"}));
  EXPECT_EQ(MustParseOp("merge(R, A)"), Op(MergeOp{"R", "A"}));
  EXPECT_EQ(MustParseOp("rename_att(R, A, B)"),
            Op(RenameAttrOp{"R", "A", "B"}));
  EXPECT_EQ(MustParseOp("rename_rel(R, S)"), Op(RenameRelOp{"R", "S"}));
  EXPECT_EQ(MustParseOp("apply(R, f, [A, B], O)"),
            Op(ApplyFunctionOp{"R", "f", {"A", "B"}, "O"}));
}

TEST(ParserTest, WhitespaceAndCommentsIgnored) {
  EXPECT_EQ(MustParseOp("  drop ( R ,\n A )  # trailing comment"),
            Op(DropOp{"R", "A"}));
}

TEST(ParserTest, QuotedNames) {
  EXPECT_EQ(MustParseOp(R"(drop("my rel", "col,1"))"),
            Op(DropOp{"my rel", "col,1"}));
  EXPECT_EQ(MustParseOp(R"(demote("a\"b\\c"))"), Op(DemoteOp{"a\"b\\c"}));
}

TEST(ParserTest, SingleInputApply) {
  EXPECT_EQ(MustParseOp("apply(R, upper, [code], CODE)"),
            Op(ApplyFunctionOp{"R", "upper", {"code"}, "CODE"}));
}

TEST(ParserTest, EmptyInputListApply) {
  EXPECT_EQ(MustParseOp("apply(R, f, [], O)"),
            Op(ApplyFunctionOp{"R", "f", {}, "O"}));
}

TEST(ParserTest, ScriptParsesMultipleOps) {
  Result<MappingExpression> expr = ParseExpression(
      "promote(R, A, B)\n"
      "# comment line\n"
      "drop(R, A)\n");
  ASSERT_TRUE(expr.ok()) << expr.status();
  ASSERT_EQ(expr->size(), 2u);
  EXPECT_EQ(expr->steps()[0], Op(PromoteOp{"R", "A", "B"}));
  EXPECT_EQ(expr->steps()[1], Op(DropOp{"R", "A"}));
}

TEST(ParserTest, EmptyScriptOk) {
  Result<MappingExpression> expr = ParseExpression("  # nothing\n");
  ASSERT_TRUE(expr.ok());
  EXPECT_TRUE(expr->empty());
}

TEST(ParserTest, Rejections) {
  EXPECT_FALSE(ParseOp("").ok());
  EXPECT_FALSE(ParseOp("nonsense(R)").ok());
  EXPECT_FALSE(ParseOp("drop(R)").ok());            // arity
  EXPECT_FALSE(ParseOp("drop(R, A, B)").ok());      // arity
  EXPECT_FALSE(ParseOp("drop(R, [A])").ok());       // unexpected list
  EXPECT_FALSE(ParseOp("drop(R, A) drop(R, B)").ok());  // trailing input
  EXPECT_FALSE(ParseOp("drop(R, A").ok());          // missing paren
  EXPECT_FALSE(ParseOp("apply(R, f, A, O)").ok());  // inputs must be a list
  EXPECT_FALSE(ParseOp("apply(R, f, [A], [O])").ok());
  EXPECT_FALSE(ParseOp("apply(R, [f], [A], O)").ok());
  EXPECT_FALSE(ParseOp("drop(R, \"unterminated)").ok());
  EXPECT_FALSE(ParseOp("drop(R, \"bad\\q\")").ok());
  EXPECT_FALSE(ParseOp("drop(, A)").ok());
}

TEST(ParserTest, ErrorsMentionLine) {
  Result<MappingExpression> r = ParseExpression("drop(R, A)\ndrop(R,\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line"), std::string::npos);
}

TEST(ParserTest, RoundTripPaperExpression) {
  MappingExpression expr = FlightsBToAExpression();
  Result<MappingExpression> back = ParseExpression(expr.ToScript());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, expr);
}

TEST(ParserTest, RoundTripEveryOperatorKind) {
  MappingExpression expr;
  expr.Append(DereferenceOp{"R", "P", "O"});
  expr.Append(PromoteOp{"R", "A", "B"});
  expr.Append(DemoteOp{"R"});
  expr.Append(PartitionOp{"R", "A"});
  expr.Append(ProductOp{"R", "S"});
  expr.Append(DropOp{"R*S", "A"});
  expr.Append(MergeOp{"R*S", "B"});
  expr.Append(RenameAttrOp{"R*S", "B", "C"});
  expr.Append(RenameRelOp{"R*S", "T"});
  expr.Append(ApplyFunctionOp{"T", "add", {"C", "D"}, "E"});
  Result<MappingExpression> back = ParseExpression(expr.ToScript());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, expr);
}

TEST(ParserTest, RoundTripAwkwardNames) {
  MappingExpression expr;
  expr.Append(DropOp{"rel with space", "a\"quote"});
  expr.Append(RenameAttrOp{"rel with space", "tab\there", "new\nline"});
  expr.Append(ApplyFunctionOp{"r", "f", {"x,y", "[z]"}, "out put"});
  Result<MappingExpression> back = ParseExpression(expr.ToScript());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, expr);
}

// Round-trip property over a parameterized family of operator spellings.
class ParserRoundTrip : public testing::TestWithParam<const char*> {};

TEST_P(ParserRoundTrip, ScriptToOpToScript) {
  Op op = MustParseOp(GetParam());
  EXPECT_EQ(OpToScript(op), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    CanonicalSpellings, ParserRoundTrip,
    testing::Values("dereference(R, P, O)", "promote(R, A, B)", "demote(R)",
                    "partition(R, A)", "product(R, S)", "drop(R, A)",
                    "merge(R, A)", "rename_att(R, A, B)", "rename_rel(R, S)",
                    "apply(R, f, [A, B], O)", "apply(R, f, [X], O)",
                    "drop(\"a b\", C)"));

}  // namespace
}  // namespace tupelo
