// Differential-equivalence suite for the compiled executor
// (fira/compile.h): interpreter vs. CompiledExecutor vs. the optimizer
// legs must produce identical Result<Database> outcomes — values,
// attribute order, tuple order, and typed errors (Status code + message)
// — over the workload generators, seeded random expressions, and the
// edge cases the fuzzer surfaced. The scalable version of the same
// harness lives in tools/equivalence_fuzz.cc.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/mapping_problem.h"
#include "differential_common.h"
#include "fira/builtin_functions.h"
#include "fira/compile.h"
#include "fira/executor.h"
#include "fira/expression.h"
#include "fira/optimizer.h"
#include "heuristics/heuristic_factory.h"
#include "relational/io.h"
#include "workloads/bamm.h"
#include "workloads/flights.h"
#include "workloads/restructuring.h"
#include "workloads/semantic.h"
#include "workloads/synthetic.h"

namespace tupelo {
namespace {

Database Tdb(const char* text) {
  Result<Database> db = ParseTdb(text);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

FunctionRegistry& Builtins() {
  static FunctionRegistry* registry = [] {
    auto* r = new FunctionRegistry();
    EXPECT_TRUE(RegisterBuiltinFunctions(r).ok());
    return r;
  }();
  return *registry;
}

void ExpectEquivalent(const MappingExpression& expr, const Database& input) {
  SCOPED_TRACE(expr.ToScript());
  std::string divergence = diff::CheckExpression(expr, input, &Builtins());
  EXPECT_EQ(divergence, "");
}

// ---------------------------------------------------------------------------
// Plan shape: lowering fuses what it should and falls back where it must
// ---------------------------------------------------------------------------

TEST(CompilePlanTest, FusesTupleLocalChainIntoOneSegment) {
  MappingExpression expr(std::vector<Op>{
      RenameAttrOp{"R", "A", "X"},
      DropOp{"R", "B"},
      DereferenceOp{"R", "X", "P"},
      RenameRelOp{"R", "S"},
      DropOp{"S", "P"},
  });
  CompiledPlan plan = CompileExpression(expr);
  ASSERT_EQ(plan.segments.size(), 1u);
  EXPECT_EQ(plan.segments[0].kind, PlanSegment::Kind::kFused);
  EXPECT_EQ(plan.fused_ops, 5u);
  EXPECT_EQ(plan.interpreted_ops, 0u);
}

TEST(CompilePlanTest, ProductOpensSegmentThatTrailingOpsExtend) {
  MappingExpression expr(std::vector<Op>{
      ProductOp{"R", "S"},
      DropOp{"R*S", "B"},
      RenameAttrOp{"R*S", "A", "X"},
  });
  CompiledPlan plan = CompileExpression(expr);
  ASSERT_EQ(plan.segments.size(), 1u);
  EXPECT_EQ(plan.fused_ops, 3u);
}

TEST(CompilePlanTest, StructuralOpsFallBackToInterpreter) {
  MappingExpression expr(std::vector<Op>{
      RenameAttrOp{"R", "A", "X"},
      PromoteOp{"R", "X", "B"},  // data-dependent schema: unfusable
      DropOp{"R", "B"},
  });
  CompiledPlan plan = CompileExpression(expr);
  ASSERT_EQ(plan.segments.size(), 3u);
  EXPECT_EQ(plan.segments[1].kind, PlanSegment::Kind::kInterpret);
  EXPECT_EQ(plan.fused_ops, 2u);
  EXPECT_EQ(plan.interpreted_ops, 1u);
}

TEST(CompilePlanTest, SegmentBreaksWhenOpTargetsAnotherRelation) {
  MappingExpression expr(std::vector<Op>{
      RenameAttrOp{"R", "A", "X"},
      RenameAttrOp{"S", "C", "Y"},  // different relation: new segment
  });
  CompiledPlan plan = CompileExpression(expr);
  ASSERT_EQ(plan.segments.size(), 2u);
  EXPECT_EQ(plan.segments[0].kind, PlanSegment::Kind::kFused);
  EXPECT_EQ(plan.segments[1].kind, PlanSegment::Kind::kFused);
  EXPECT_EQ(plan.segments[1].first_step, 1u);
}

// ---------------------------------------------------------------------------
// Workload differential: the paper's own mapping, then seeded sweeps over
// every workload generator
// ---------------------------------------------------------------------------

TEST(ExecutorEquivalenceTest, FlightsPaperMapping) {
  ExpectEquivalent(FlightsBToAExpression(), MakeFlightsB());
}

TEST(ExecutorEquivalenceTest, SeededSweepOverAllWorkloadGenerators) {
  std::vector<std::pair<std::string, Database>> workloads;
  workloads.emplace_back("flights_a", MakeFlightsA());
  workloads.emplace_back("flights_b", MakeFlightsB());
  workloads.emplace_back("flights_c", MakeFlightsC());
  for (BammDomain domain : {BammDomain::kBooks, BammDomain::kAutos,
                            BammDomain::kMusic, BammDomain::kMovies}) {
    BammWorkload w = MakeBammWorkload(domain, /*seed=*/7);
    workloads.emplace_back("bamm_source", std::move(w.source));
    if (!w.targets.empty()) {
      workloads.emplace_back("bamm_target", std::move(w.targets[0]));
    }
  }
  {
    SyntheticMatchingPair pair = MakeSyntheticMatchingPair(12);
    workloads.emplace_back("synthetic_source", std::move(pair.source));
    workloads.emplace_back("synthetic_target", std::move(pair.target));
  }
  {
    RestructuringWorkload w = MakeRestructuringWorkload(3, 4);
    workloads.emplace_back("restructuring_wide", std::move(w.wide));
    workloads.emplace_back("restructuring_flat", std::move(w.flat));
    workloads.emplace_back("restructuring_split", std::move(w.split));
  }
  for (SemanticDomain domain :
       {SemanticDomain::kInventory, SemanticDomain::kRealEstate}) {
    SemanticWorkload w = MakeSemanticWorkload(domain, 8);
    workloads.emplace_back("semantic_source", std::move(w.source));
    workloads.emplace_back("semantic_target", std::move(w.target));
  }

  diff::Rng rng(2006);
  for (const auto& [name, db] : workloads) {
    SCOPED_TRACE(name);
    for (int i = 0; i < 40; ++i) {
      MappingExpression expr =
          diff::RandomExpression(rng, db, Builtins(), /*max_len=*/6);
      ExpectEquivalent(expr, db);
    }
  }
}

// ---------------------------------------------------------------------------
// Edge cases surfaced by the differential fuzzer (bug-sweep satellite);
// each is a minimal repro kept as a regression test.
// ---------------------------------------------------------------------------

TEST(ExecutorEquivalenceTest, EmptyRelationThroughFusedChain) {
  Database db = Tdb("relation R (A, B) { }");
  ExpectEquivalent(MappingExpression(std::vector<Op>{
                       RenameAttrOp{"R", "A", "X"},
                       DereferenceOp{"R", "X", "P"},
                       DropOp{"R", "B"},
                   }),
                   db);
}

TEST(ExecutorEquivalenceTest, DuplicateAttributeAfterRenameFailsIdentically) {
  Database db = Tdb("relation R (A, B) { (1, 2) }");
  MappingExpression expr(std::vector<Op>{
      RenameAttrOp{"R", "A", "B"},  // collides with existing B
  });
  ExpectEquivalent(expr, db);
  Result<Database> compiled = CompiledExecutor(expr).Apply(db);
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kAlreadyExists);
}

TEST(ExecutorEquivalenceTest, NullInputsToComplexFunctionStayNull) {
  Database db = Tdb("relation R (A, B) { (1, null) (2, 3) }");
  MappingExpression expr(std::vector<Op>{
      ApplyFunctionOp{"R", "concat", {"A", "B"}, "C"},
      DropOp{"R", "A"},
  });
  ExpectEquivalent(expr, db);
  Result<Database> out = CompiledExecutor(expr).Apply(db, &Builtins());
  ASSERT_TRUE(out.ok()) << out.status();
  const Relation& r = **out->GetRelation("R");
  EXPECT_TRUE(r.tuples()[0][1].is_null());   // ⊥ input ⇒ ⊥ output
  EXPECT_EQ(r.tuples()[1][1], Value("23"));
}

TEST(ExecutorEquivalenceTest, ArityZeroProductOperand) {
  // An arity-0 relation is legal; products against it only widen by zero
  // columns but still multiply tuple counts.
  Database db = Tdb("relation S (A) { (1) (2) }");
  Result<Relation> zero = Relation::Create("Z", {});
  ASSERT_TRUE(zero.ok());
  ASSERT_TRUE(zero->AddTuple(Tuple()).ok());
  db.PutRelation(std::move(zero).value());

  MappingExpression expr(std::vector<Op>{ProductOp{"Z", "S"}});
  ExpectEquivalent(expr, db);
  Result<Database> out = CompiledExecutor(expr).Apply(db);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ((*out->GetRelation("Z*S"))->size(), 2u);
}

TEST(ExecutorEquivalenceTest, DropToLastColumnFailsIdentically) {
  Database db = Tdb("relation R (A, B) { (1, 2) }");
  ExpectEquivalent(MappingExpression(std::vector<Op>{
                       DropOp{"R", "A"},
                       DropOp{"R", "B"},  // last column: must refuse
                   }),
                   db);
}

TEST(ExecutorEquivalenceTest, RenameRelOntoExistingNameFailsIdentically) {
  Database db = Tdb("relation R (A) { (1) } relation S (B) { (2) }");
  ExpectEquivalent(MappingExpression(std::vector<Op>{
                       RenameAttrOp{"R", "A", "X"},
                       RenameRelOp{"R", "S"},  // S exists
                   }),
                   db);
}

TEST(ExecutorEquivalenceTest, SelfProductFailsIdentically) {
  Database db = Tdb("relation R (A) { (1) }");
  ExpectEquivalent(
      MappingExpression(std::vector<Op>{ProductOp{"R", "R"}}), db);
}

TEST(ExecutorEquivalenceTest, DereferenceUnresolvablePointerYieldsNull) {
  // The pointer column's atoms name other columns; atoms that do not
  // resolve (or ⊥ pointers) must yield ⊥, not errors, in both executors.
  Database db = Tdb("relation R (P, A, B) { (A, 1, 2) (B, 3, 4) "
                    "(C, 5, 6) (null, 7, 8) }");
  MappingExpression expr(std::vector<Op>{
      DereferenceOp{"R", "P", "V"},
      DropOp{"R", "A"},
  });
  ExpectEquivalent(expr, db);
  Result<Database> out = CompiledExecutor(expr).Apply(db);
  ASSERT_TRUE(out.ok()) << out.status();
  const Relation& r = **out->GetRelation("R");
  EXPECT_EQ(r.tuples()[0][2], Value("1"));
  EXPECT_EQ(r.tuples()[1][2], Value("4"));
  EXPECT_TRUE(r.tuples()[2][2].is_null());  // unresolvable atom
  EXPECT_TRUE(r.tuples()[3][2].is_null());  // ⊥ pointer
}

TEST(ExecutorEquivalenceTest, DereferenceScopeTracksRenamesInsideSegment) {
  // After rename_att A→X, a pointer atom "A" must no longer resolve and
  // "X" must — the fused loop captures the per-stage scope.
  Database db = Tdb("relation R (P, A) { (A, 1) (X, 2) }");
  ExpectEquivalent(MappingExpression(std::vector<Op>{
                       RenameAttrOp{"R", "A", "X"},
                       DereferenceOp{"R", "P", "V"},
                   }),
                   db);
  Result<Database> out = CompiledExecutor(MappingExpression(std::vector<Op>{
                             RenameAttrOp{"R", "A", "X"},
                             DereferenceOp{"R", "P", "V"},
                         }))
                             .Apply(db);
  ASSERT_TRUE(out.ok()) << out.status();
  const Relation& r = **out->GetRelation("R");
  EXPECT_TRUE(r.tuples()[0][2].is_null());  // "A" renamed away
  EXPECT_EQ(r.tuples()[1][2], Value("2"));  // "X" now resolves
}

TEST(ExecutorEquivalenceTest, StepErrorWrappingMatchesInterpreter) {
  Database db = Tdb("relation R (A, B) { (1, 2) }");
  MappingExpression expr(std::vector<Op>{
      DropOp{"R", "B"},
      RenameAttrOp{"R", "missing", "X"},  // fails at step 2
  });
  Result<Database> interp = expr.Apply(db);
  Result<Database> compiled = CompiledExecutor(expr).Apply(db);
  ASSERT_FALSE(interp.ok());
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), interp.status().code());
  EXPECT_EQ(compiled.status().message(), interp.status().message());
  EXPECT_NE(interp.status().message().find("step 2 ("), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fault-injector accounting on the compiled path
// ---------------------------------------------------------------------------

TEST(ExecutorEquivalenceTest, InjectorConsultedOncePerLogicalOperator) {
  Database db = Tdb("relation R (A, B) { (1, 2) (3, 4) }");
  MappingExpression expr(std::vector<Op>{
      RenameAttrOp{"R", "A", "X"},
      DereferenceOp{"R", "X", "P"},
      DropOp{"R", "B"},
      RenameRelOp{"R", "S"},
  });
  EXPECT_EQ(diff::CheckInjectorParity(expr, db, &Builtins()), "");
}

TEST(ExecutorEquivalenceTest, InjectedFaultFiresAtSameStepOnBothPaths) {
  Database db = Tdb("relation R (A, B) { (1, 2) }");
  MappingExpression expr(std::vector<Op>{
      RenameAttrOp{"R", "A", "X"},
      DropOp{"R", "B"},
      RenameRelOp{"R", "S"},
  });

  FaultInjector injector;
  SetFaultInjector(&injector);

  // Fault the second logical operator; both executors must fail with the
  // identical wrapped status and identical injected counts.
  injector.Arm("*", Status::Internal("injected"), /*skip=*/1);
  Result<Database> interp = expr.Apply(db);
  uint64_t interp_consults = injector.consults();
  uint64_t interp_injected = injector.injected();

  injector.Arm("*", Status::Internal("injected"), /*skip=*/1);
  Result<Database> compiled = CompiledExecutor(expr).Apply(db);
  uint64_t compiled_consults = injector.consults();
  uint64_t compiled_injected = injector.injected();

  SetFaultInjector(nullptr);

  ASSERT_FALSE(interp.ok());
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().message(), interp.status().message());
  EXPECT_NE(interp.status().message().find("step 2 ("), std::string::npos);
  EXPECT_EQ(compiled_consults, interp_consults);
  EXPECT_EQ(compiled_injected, interp_injected);
  EXPECT_EQ(interp_injected, 1u);
}

// ---------------------------------------------------------------------------
// Optimizer satellite: Simplify stays one-sided, Optimize is exact or
// refuses with the typed error
// ---------------------------------------------------------------------------

TEST(OptimizeEquivalenceTest, RefusesInexactRenameFusion) {
  // The divergence documented in optimizer.h: A→B→C fused to A→C drops
  // the intermediate freshness requirement on B. Where B already exists,
  // the original fails but the fused form succeeds.
  MappingExpression expr(std::vector<Op>{
      RenameAttrOp{"R", "A", "Tmp"},
      RenameAttrOp{"R", "Tmp", "C"},
  });

  // Simplify fuses to rename_att(R, A, C); on THIS db both succeed, so
  // the one-sided guarantee holds...
  MappingExpression simplified = Simplify(expr);
  ASSERT_EQ(simplified.steps().size(), 1u);

  // ...but on a db where "Tmp" already exists, the original fails while
  // the simplified form succeeds — the documented divergence.
  Database colliding = Tdb("relation R (A, B, Tmp) { (1, 2, 3) }");
  EXPECT_FALSE(expr.Apply(colliding).ok());
  EXPECT_TRUE(simplified.Apply(colliding).ok());

  // Optimize must therefore refuse the rewrite with the typed error.
  Result<MappingExpression> optimized = Optimize(expr);
  ASSERT_FALSE(optimized.ok());
  EXPECT_EQ(optimized.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(optimized.status().message().find(
                "optimize: not equivalence-preserving"),
            0u);
}

TEST(OptimizeEquivalenceTest, RefusesDropReordering) {
  // Even reordering two drops changes failure outcomes: with X missing
  // and the relation at arity 2, drop(X);drop(A) fails NotFound while
  // drop(A);drop(X) fails FailedPrecondition (last column).
  Database db = Tdb("relation R (A, Y) { (1, 2) }");
  MappingExpression original(std::vector<Op>{
      DropOp{"R", "X"},
      DropOp{"R", "A"},
  });
  MappingExpression reordered(std::vector<Op>{
      DropOp{"R", "A"},
      DropOp{"R", "X"},
  });
  Result<Database> a = original.Apply(db);
  Result<Database> b = reordered.Apply(db);
  ASSERT_FALSE(a.ok());
  ASSERT_FALSE(b.ok());
  EXPECT_NE(a.status().code(), b.status().code());

  Result<MappingExpression> optimized = Optimize(original);
  ASSERT_FALSE(optimized.ok());
  EXPECT_EQ(optimized.status().code(), StatusCode::kFailedPrecondition);
}

TEST(OptimizeEquivalenceTest, ReturnsFixpointExpressionsUnchanged) {
  MappingExpression expr(std::vector<Op>{
      RenameAttrOp{"R", "A", "X"},
      DropOp{"R", "B"},
      PromoteOp{"R", "X", "C"},
  });
  EXPECT_EQ(Simplify(expr), expr);  // already at the fixpoint
  Result<MappingExpression> optimized = Optimize(expr);
  ASSERT_TRUE(optimized.ok()) << optimized.status();
  EXPECT_EQ(*optimized, expr);
}

// ---------------------------------------------------------------------------
// Search integration: compiled_expand is outcome-invisible
// ---------------------------------------------------------------------------

TEST(CompiledExpandTest, ExpandOutcomesIdenticalAcrossBackends) {
  Database source = MakeFlightsB();
  Database target = MakeFlightsA();

  auto successors_with = [&](bool compiled) {
    SuccessorConfig config;
    config.compiled_expand = compiled;
    std::unique_ptr<Heuristic> h =
        MakeHeuristic(HeuristicKind::kH1, target, SearchAlgorithm::kRbfs);
    MappingProblem problem(source, target, std::move(h), nullptr, {},
                           config);
    return problem.Expand(source);
  };

  std::vector<MappingProblem::SuccessorT> interp = successors_with(false);
  std::vector<MappingProblem::SuccessorT> compiled = successors_with(true);

  ASSERT_EQ(interp.size(), compiled.size());
  ASSERT_FALSE(interp.empty());
  for (size_t i = 0; i < interp.size(); ++i) {
    EXPECT_EQ(interp[i].action, compiled[i].action);
    EXPECT_EQ(interp[i].state.ToString(), compiled[i].state.ToString());
  }
}

}  // namespace
}  // namespace tupelo
