#include <gtest/gtest.h>

#include <string>

#include "fira/builtin_functions.h"
#include "fira/expression.h"
#include "relational/io.h"
#include "workloads/flights.h"

namespace tupelo {
namespace {

Database Tdb(const char* text) {
  Result<Database> db = ParseTdb(text);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

TEST(ExpressionTest, EmptyExpressionIsIdentity) {
  MappingExpression expr;
  Database db = Tdb("relation R (A) { (1) }");
  Result<Database> out = expr.Apply(db);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->ContentsEqual(db));
  EXPECT_TRUE(expr.empty());
  EXPECT_EQ(expr.ToScript(), "");
}

TEST(ExpressionTest, AppliesStepsInOrder) {
  MappingExpression expr;
  expr.Append(RenameAttrOp{"R", "A", "B"});
  expr.Append(RenameAttrOp{"R", "B", "C"});  // depends on step 1
  Database db = Tdb("relation R (A) { (1) }");
  Result<Database> out = expr.Apply(db);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(out->GetRelation("R").value()->HasAttribute("C"));
}

TEST(ExpressionTest, ErrorIdentifiesFailingStep) {
  MappingExpression expr;
  expr.Append(RenameAttrOp{"R", "A", "B"});
  expr.Append(DropOp{"R", "Z"});  // fails
  Database db = Tdb("relation R (A, X) { (1, 2) }");
  Result<Database> out = expr.Apply(db);
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("step 2"), std::string::npos);
  EXPECT_NE(out.status().message().find("drop(R, Z)"), std::string::npos);
}

TEST(ExpressionTest, PaperExample2EndToEnd) {
  // The full Example 2 expression maps FlightsB exactly onto FlightsA.
  MappingExpression expr = FlightsBToAExpression();
  Result<Database> out = expr.Apply(MakeFlightsB());
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(out->Contains(MakeFlightsA()));
  EXPECT_TRUE(MakeFlightsA().Contains(*out));  // exact, both directions
}

TEST(ExpressionTest, ExpressionIsReusableAcrossInstances) {
  // A discovered expression runs on *other* instances of the source
  // schema, not just the critical instance.
  MappingExpression expr = FlightsBToAExpression();
  Database other = Tdb(
      "relation Prices (Carrier, Route, Cost, AgentFee) {\n"
      "  (SkyHigh, LAX05, 300, 20)\n"
      "  (SkyHigh, JFK09, 400, 20)\n"
      "}");
  Result<Database> out = expr.Apply(other);
  ASSERT_TRUE(out.ok()) << out.status();
  const Relation* r = out->GetRelation("Flights").value();
  EXPECT_EQ(r->attributes(),
            (std::vector<std::string>{"Carrier", "Fee", "LAX05", "JFK09"}));
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ(r->tuples()[0], Tuple::OfAtoms({"SkyHigh", "20", "300", "400"}));
}

TEST(ExpressionTest, LambdaStepsNeedRegistry) {
  MappingExpression expr;
  expr.Append(ApplyFunctionOp{"Prices", "add", {"Cost", "AgentFee"},
                              "TotalCost"});
  EXPECT_FALSE(expr.Apply(MakeFlightsB(), nullptr).ok());
  FunctionRegistry reg;
  ASSERT_TRUE(RegisterBuiltinFunctions(&reg).ok());
  Result<Database> out = expr.Apply(MakeFlightsB(), &reg);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(
      out->GetRelation("Prices").value()->HasAttribute("TotalCost"));
}

TEST(ExpressionTest, ToScriptOnePerLine) {
  MappingExpression expr = FlightsBToAExpression();
  std::string script = expr.ToScript();
  EXPECT_EQ(script,
            "promote(Prices, Route, Cost)\n"
            "drop(Prices, Route)\n"
            "drop(Prices, Cost)\n"
            "merge(Prices, Carrier)\n"
            "rename_att(Prices, AgentFee, Fee)\n"
            "rename_rel(Prices, Flights)\n");
}

TEST(ExpressionTest, ToPrettyComposesRightToLeft) {
  MappingExpression expr;
  expr.Append(PromoteOp{"R", "A", "B"});
  expr.Append(DropOp{"R", "A"});
  std::string pretty = expr.ToPretty();
  // Last-applied operator appears leftmost.
  EXPECT_EQ(pretty, "π̄_A(R) ∘ ↑^A_B(R) ∘ DB");
}

TEST(ExpressionTest, EqualityIsStructural) {
  EXPECT_EQ(FlightsBToAExpression(), FlightsBToAExpression());
  MappingExpression other = FlightsBToAExpression();
  other.Append(DemoteOp{"Flights"});
  EXPECT_NE(FlightsBToAExpression(), other);
}

}  // namespace
}  // namespace tupelo
