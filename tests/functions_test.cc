#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fira/builtin_functions.h"
#include "fira/function_registry.h"

namespace tupelo {
namespace {

ComplexFunction Identity(const char* name) {
  ComplexFunction f;
  f.name = name;
  f.arity = 1;
  f.impl = [](const std::vector<std::string>& a) -> Result<std::string> {
    return a[0];
  };
  return f;
}

// ---------------------------------------------------------------------------
// FunctionRegistry
// ---------------------------------------------------------------------------

TEST(RegistryTest, RegisterAndLookup) {
  FunctionRegistry reg;
  ASSERT_TRUE(reg.Register(Identity("id")).ok());
  EXPECT_TRUE(reg.Has("id"));
  EXPECT_FALSE(reg.Has("nope"));
  Result<const ComplexFunction*> f = reg.Lookup("id");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->arity, 1u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(RegistryTest, DuplicateRejected) {
  FunctionRegistry reg;
  ASSERT_TRUE(reg.Register(Identity("id")).ok());
  EXPECT_EQ(reg.Register(Identity("id")).code(), StatusCode::kAlreadyExists);
}

TEST(RegistryTest, InvalidRegistrations) {
  FunctionRegistry reg;
  EXPECT_FALSE(reg.Register(Identity("")).ok());
  ComplexFunction no_impl;
  no_impl.name = "f";
  no_impl.arity = 0;
  EXPECT_FALSE(reg.Register(no_impl).ok());
}

TEST(RegistryTest, NamesSorted) {
  FunctionRegistry reg;
  ASSERT_TRUE(reg.Register(Identity("zeta")).ok());
  ASSERT_TRUE(reg.Register(Identity("alpha")).ok());
  EXPECT_EQ(reg.Names(), (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(RegistryTest, CallChecksExistenceAndArity) {
  FunctionRegistry reg;
  ASSERT_TRUE(reg.Register(Identity("id")).ok());
  Result<std::string> ok = reg.Call("id", {"x"});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), "x");
  EXPECT_EQ(reg.Call("nope", {"x"}).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(reg.Call("id", {"x", "y"}).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Builtins
// ---------------------------------------------------------------------------

class BuiltinsTest : public testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(RegisterBuiltinFunctions(&reg_).ok()); }

  std::string Call(const char* fn, std::vector<std::string> args) {
    Result<std::string> r = reg_.Call(fn, args);
    EXPECT_TRUE(r.ok()) << fn << ": " << r.status();
    return r.ok() ? r.value() : "<error>";
  }

  bool Fails(const char* fn, std::vector<std::string> args) {
    return !reg_.Call(fn, args).ok();
  }

  FunctionRegistry reg_;
};

TEST_F(BuiltinsTest, RegistersIdempotentSet) {
  EXPECT_GE(reg_.size(), 12u);
  // Registering twice collides.
  EXPECT_FALSE(RegisterBuiltinFunctions(&reg_).ok());
}

TEST_F(BuiltinsTest, Concat) {
  EXPECT_EQ(Call("concat", {"ab", "cd"}), "abcd");
  EXPECT_EQ(Call("concat", {"", ""}), "");
  EXPECT_EQ(Call("concat_ws", {"John", "Smith"}), "John Smith");
}

TEST_F(BuiltinsTest, FullNamePaperF2) {
  // Example 5, f2: (Last, First) -> "First Last".
  EXPECT_EQ(Call("full_name", {"Smith", "John"}), "John Smith");
  EXPECT_EQ(Call("full_name", {"Doe", "Jane"}), "Jane Doe");
}

TEST_F(BuiltinsTest, IntegerArithmetic) {
  EXPECT_EQ(Call("add", {"100", "15"}), "115");
  EXPECT_EQ(Call("add", {"-5", "3"}), "-2");
  EXPECT_EQ(Call("sub", {"100", "60"}), "40");
  EXPECT_EQ(Call("mul", {"3", "100"}), "300");
  EXPECT_TRUE(Fails("add", {"x", "1"}));
  EXPECT_TRUE(Fails("add", {"1.5", "1"}));
  EXPECT_TRUE(Fails("mul", {"", "1"}));
}

TEST_F(BuiltinsTest, ScalePct) {
  EXPECT_EQ(Call("scale_pct", {"100", "25"}), "25");
  EXPECT_EQ(Call("scale_pct", {"250000", "6"}), "15000");
  EXPECT_TRUE(Fails("scale_pct", {"abc", "5"}));
}

TEST_F(BuiltinsTest, DateUsToIso) {
  EXPECT_EQ(Call("date_us_to_iso", {"07/04/2026"}), "2026-07-04");
  EXPECT_EQ(Call("date_us_to_iso", {"11/30/1999"}), "1999-11-30");
  EXPECT_TRUE(Fails("date_us_to_iso", {"2026-07-04"}));
  EXPECT_TRUE(Fails("date_us_to_iso", {"7/4/2026"}));
  EXPECT_TRUE(Fails("date_us_to_iso", {"07/04/26"}));
  EXPECT_TRUE(Fails("date_us_to_iso", {"ab/cd/efgh"}));
}

TEST_F(BuiltinsTest, UsdToCents) {
  EXPECT_EQ(Call("usd_to_cents", {"12.34"}), "1234");
  EXPECT_EQ(Call("usd_to_cents", {"0.05"}), "5");
  EXPECT_TRUE(Fails("usd_to_cents", {"12"}));
  EXPECT_TRUE(Fails("usd_to_cents", {"12.3"}));
  EXPECT_TRUE(Fails("usd_to_cents", {"12.345"}));
  EXPECT_TRUE(Fails("usd_to_cents", {"a.bc"}));
}

TEST_F(BuiltinsTest, CaseConversion) {
  EXPECT_EQ(Call("upper", {"ab12"}), "AB12");
  EXPECT_EQ(Call("lower", {"TOOLS"}), "tools");
}

TEST_F(BuiltinsTest, SqftToSqm) {
  EXPECT_EQ(Call("sqft_to_sqm", {"1800"}), "167");
  EXPECT_EQ(Call("sqft_to_sqm", {"0"}), "0");
  EXPECT_TRUE(Fails("sqft_to_sqm", {"big"}));
}

TEST_F(BuiltinsTest, FunctionsAreDeterministic) {
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(Call("add", {"7", "8"}), "15");
    EXPECT_EQ(Call("concat_ws", {"a", "b"}), "a b");
  }
}

}  // namespace
}  // namespace tupelo
