#include <gtest/gtest.h>

#include <string>

#include "core/critical_instance.h"
#include "core/tupelo.h"
#include "relational/io.h"
#include "workloads/flights.h"

namespace tupelo {
namespace {

Database Tdb(const char* text) {
  Result<Database> db = ParseTdb(text);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

TEST(CriticalInstanceTest, LinksSharedEntity) {
  // Full instances: one shared employee (Ada) plus unshared rows.
  Database source = Tdb(
      "relation Staff (Name, Office) {\n"
      "  (Ada, B12)\n"
      "  (OnlyInSource, Z99)\n"
      "}");
  Database target = Tdb(
      "relation Employees (FullName, Room) {\n"
      "  (Ada, B12)\n"
      "  (OnlyInTarget, Q11)\n"
      "}");
  CriticalInstanceOptions options;
  options.max_tuples_per_relation = 1;
  Result<CriticalInstancePair> pair =
      ExtractCriticalInstances(source, target, options);
  ASSERT_TRUE(pair.ok()) << pair.status();
  // The linked tuple is the shared one.
  const Relation* t = pair->target.GetRelation("Employees").value();
  ASSERT_EQ(t->size(), 1u);
  EXPECT_EQ(t->tuples()[0], Tuple::OfAtoms({"Ada", "B12"}));
  const Relation* s = pair->source.GetRelation("Staff").value();
  ASSERT_EQ(s->size(), 1u);
  EXPECT_EQ(s->tuples()[0], Tuple::OfAtoms({"Ada", "B12"}));
  EXPECT_EQ(pair->overlap_score, 2u);
}

TEST(CriticalInstanceTest, SchemasPreserved) {
  Database source = Tdb("relation S (A, B) { (1, 2) }");
  Database target = Tdb("relation T (X) { (1) }");
  Result<CriticalInstancePair> pair =
      ExtractCriticalInstances(source, target);
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ(pair->source.GetRelation("S").value()->attributes(),
            (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(pair->target.GetRelation("T").value()->attributes(),
            (std::vector<std::string>{"X"}));
}

TEST(CriticalInstanceTest, RespectsMaxTuplesPerRelation) {
  Database source = Tdb(
      "relation S (A) { (x1) (x2) (x3) (x4) }");
  Database target = Tdb(
      "relation T (B) { (x1) (x2) (x3) (x4) }");
  CriticalInstanceOptions options;
  options.max_tuples_per_relation = 2;
  Result<CriticalInstancePair> pair =
      ExtractCriticalInstances(source, target, options);
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ(pair->target.GetRelation("T").value()->size(), 2u);
}

TEST(CriticalInstanceTest, NoOverlapFails) {
  Database source = Tdb("relation S (A) { (x) }");
  Database target = Tdb("relation T (B) { (y) }");
  EXPECT_EQ(ExtractCriticalInstances(source, target).status().code(),
            StatusCode::kNotFound);
}

TEST(CriticalInstanceTest, EmptyInputsFail) {
  Database source = Tdb("relation S (A) { (x) }");
  EXPECT_FALSE(ExtractCriticalInstances(Database(), source).ok());
  EXPECT_FALSE(ExtractCriticalInstances(source, Database()).ok());
}

TEST(CriticalInstanceTest, UnlinkedSourceRelationKeepsOneSample) {
  Database source = Tdb(
      "relation Linked (A) { (shared) }\n"
      "relation Orphan (Z) { (unrelated1) (unrelated2) }");
  Database target = Tdb("relation T (B) { (shared) }");
  Result<CriticalInstancePair> pair =
      ExtractCriticalInstances(source, target);
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ(pair->source.GetRelation("Orphan").value()->size(), 1u);
}

TEST(CriticalInstanceTest, MultiRelationTargetLinksEachRelation) {
  // FlightsC-shaped target: both carrier relations must link to rows of
  // the flat source.
  Database source = MakeFlightsB();
  Database target = MakeFlightsC();
  CriticalInstanceOptions options;
  options.max_tuples_per_relation = 2;
  Result<CriticalInstancePair> pair =
      ExtractCriticalInstances(source, target, options);
  ASSERT_TRUE(pair.ok()) << pair.status();
  EXPECT_EQ(pair->target.GetRelation("AirEast").value()->size(), 2u);
  EXPECT_EQ(pair->target.GetRelation("JetWest").value()->size(), 2u);
  EXPECT_GE(pair->overlap_score, 4u);
}

TEST(CriticalInstanceTest, ExtractedInstancesDriveDiscovery) {
  // End to end: pad the flights instances with unrelated rows, extract,
  // then discover the mapping on the extracted criticals.
  Database source = MakeFlightsB();
  Relation* prices = source.GetMutableRelation("Prices").value();
  ASSERT_TRUE(
      prices->AddRow({"NoiseAir", "XXX99", "987", "55"}).ok());
  Database target = MakeFlightsA();

  Result<CriticalInstancePair> pair =
      ExtractCriticalInstances(source, target);
  ASSERT_TRUE(pair.ok());

  TupeloOptions options;
  options.limits.max_states = 500000;
  Result<TupeloResult> r =
      DiscoverMapping(pair->source, pair->target, options);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->found);
  // The discovered expression, applied to the FULL source, still contains
  // the full target (mapping generalizes beyond the critical instance).
  Result<Database> mapped = r->mapping.Apply(source);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_TRUE(mapped->Contains(target));
}

}  // namespace
}  // namespace tupelo
