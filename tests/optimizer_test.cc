#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fira/builtin_functions.h"
#include "fira/optimizer.h"
#include "relational/io.h"
#include "workloads/flights.h"

namespace tupelo {
namespace {

Database Tdb(const char* text) {
  Result<Database> db = ParseTdb(text);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

MappingExpression Steps(std::vector<Op> ops) {
  return MappingExpression(std::move(ops));
}

TEST(OptimizerTest, EmptyAndSingleStepUnchanged) {
  EXPECT_TRUE(Simplify(MappingExpression()).empty());
  MappingExpression one = Steps({DropOp{"R", "A"}});
  EXPECT_EQ(Simplify(one), one);
}

TEST(OptimizerTest, FusesRenameAttrChain) {
  MappingExpression expr = Steps({RenameAttrOp{"R", "A", "B"},
                                  RenameAttrOp{"R", "B", "C"}});
  MappingExpression simplified = Simplify(expr);
  ASSERT_EQ(simplified.size(), 1u);
  EXPECT_EQ(simplified.steps()[0], Op(RenameAttrOp{"R", "A", "C"}));
}

TEST(OptimizerTest, RemovesRenameRoundTrip) {
  MappingExpression expr = Steps({RenameAttrOp{"R", "A", "B"},
                                  RenameAttrOp{"R", "B", "A"}});
  EXPECT_TRUE(Simplify(expr).empty());
}

TEST(OptimizerTest, FusesLongRenameChainToFixpoint) {
  MappingExpression expr = Steps({RenameAttrOp{"R", "A", "B"},
                                  RenameAttrOp{"R", "B", "C"},
                                  RenameAttrOp{"R", "C", "D"}});
  MappingExpression simplified = Simplify(expr);
  ASSERT_EQ(simplified.size(), 1u);
  EXPECT_EQ(simplified.steps()[0], Op(RenameAttrOp{"R", "A", "D"}));
}

TEST(OptimizerTest, DifferentRelationsNotFused) {
  MappingExpression expr = Steps({RenameAttrOp{"R", "A", "B"},
                                  RenameAttrOp{"S", "B", "C"}});
  EXPECT_EQ(Simplify(expr), expr);
}

TEST(OptimizerTest, FusesRenameRelChain) {
  MappingExpression expr =
      Steps({RenameRelOp{"A", "B"}, RenameRelOp{"B", "C"}});
  MappingExpression simplified = Simplify(expr);
  ASSERT_EQ(simplified.size(), 1u);
  EXPECT_EQ(simplified.steps()[0], Op(RenameRelOp{"A", "C"}));
  EXPECT_TRUE(
      Simplify(Steps({RenameRelOp{"A", "B"}, RenameRelOp{"B", "A"}}))
          .empty());
}

TEST(OptimizerTest, RenameThenDropBecomesDrop) {
  MappingExpression expr =
      Steps({RenameAttrOp{"R", "A", "B"}, DropOp{"R", "B"}});
  MappingExpression simplified = Simplify(expr);
  ASSERT_EQ(simplified.size(), 1u);
  EXPECT_EQ(simplified.steps()[0], Op(DropOp{"R", "A"}));
}

TEST(OptimizerTest, CreateThenDropRemoved) {
  MappingExpression expr =
      Steps({ApplyFunctionOp{"R", "add", {"A", "B"}, "X"},
             DropOp{"R", "X"}});
  EXPECT_TRUE(Simplify(expr).empty());
  MappingExpression deref =
      Steps({DereferenceOp{"R", "P", "X"}, DropOp{"R", "X"}});
  EXPECT_TRUE(Simplify(deref).empty());
}

TEST(OptimizerTest, CreateThenDropOfOtherColumnKept) {
  MappingExpression expr =
      Steps({ApplyFunctionOp{"R", "add", {"A", "B"}, "X"},
             DropOp{"R", "A"}});
  EXPECT_EQ(Simplify(expr).size(), 2u);
}

TEST(OptimizerTest, DemotePlusDropsNotRemoved) {
  // Not a bag-semantics no-op (tuple multiplicity changes).
  MappingExpression expr = Steps({DemoteOp{"R"},
                                  DropOp{"R", kDemoteAttrColumn},
                                  DropOp{"R", kDemoteValueColumn}});
  EXPECT_EQ(Simplify(expr).size(), 3u);
}

TEST(OptimizerTest, SortsConsecutiveDrops) {
  MappingExpression expr = Steps({DropOp{"R", "Z"}, DropOp{"R", "A"},
                                  DropOp{"R", "M"}});
  MappingExpression simplified = Simplify(expr);
  ASSERT_EQ(simplified.size(), 3u);
  EXPECT_EQ(simplified.steps()[0], Op(DropOp{"R", "A"}));
  EXPECT_EQ(simplified.steps()[1], Op(DropOp{"R", "M"}));
  EXPECT_EQ(simplified.steps()[2], Op(DropOp{"R", "Z"}));
}

TEST(OptimizerTest, DropsOnDifferentRelationsNotReordered) {
  MappingExpression expr = Steps({DropOp{"S", "Z"}, DropOp{"R", "A"}});
  EXPECT_EQ(Simplify(expr), expr);
}

TEST(OptimizerTest, CascadedRulesReachFixpoint) {
  // rename chain collapses, then the fused rename fuses with the drop.
  MappingExpression expr = Steps({RenameAttrOp{"R", "A", "B"},
                                  RenameAttrOp{"R", "B", "C"},
                                  DropOp{"R", "C"}});
  MappingExpression simplified = Simplify(expr);
  ASSERT_EQ(simplified.size(), 1u);
  EXPECT_EQ(simplified.steps()[0], Op(DropOp{"R", "A"}));
}

TEST(OptimizerTest, PaperExpressionAlreadyMinimal) {
  MappingExpression expr = FlightsBToAExpression();
  MappingExpression simplified = Simplify(expr);
  EXPECT_EQ(simplified.size(), expr.size());
}

// Semantics preservation: simplified expressions produce identical results
// on concrete instances.
TEST(OptimizerTest, PreservesSemanticsOnFlights) {
  FunctionRegistry reg;
  ASSERT_TRUE(RegisterBuiltinFunctions(&reg).ok());

  std::vector<MappingExpression> cases = {
      Steps({RenameAttrOp{"Prices", "Cost", "Tmp"},
             RenameAttrOp{"Prices", "Tmp", "BaseCost"}}),
      Steps({ApplyFunctionOp{"Prices", "add", {"Cost", "AgentFee"}, "X"},
             DropOp{"Prices", "X"},
             RenameAttrOp{"Prices", "AgentFee", "Fee"}}),
      Steps({RenameRelOp{"Prices", "Tmp"}, RenameRelOp{"Tmp", "Flights"}}),
      Steps({DropOp{"Prices", "Route"}, DropOp{"Prices", "AgentFee"}}),
  };
  for (const MappingExpression& expr : cases) {
    MappingExpression simplified = Simplify(expr);
    EXPECT_LE(simplified.size(), expr.size());
    Result<Database> original = expr.Apply(MakeFlightsB(), &reg);
    Result<Database> optimized = simplified.Apply(MakeFlightsB(), &reg);
    ASSERT_TRUE(original.ok()) << original.status();
    ASSERT_TRUE(optimized.ok()) << optimized.status();
    EXPECT_TRUE(original->ContentsEqual(*optimized))
        << expr.ToScript() << "vs\n"
        << simplified.ToScript();
  }
}

TEST(OptimizerTest, PreservesSemanticsWithInterleavedRelations) {
  Database db = Tdb(
      "relation R (A, B) { (1, 2) }\n"
      "relation S (C, D) { (3, 4) }");
  MappingExpression expr = Steps({RenameAttrOp{"R", "A", "X"},
                                  DropOp{"S", "D"},
                                  RenameAttrOp{"R", "X", "Y"}});
  MappingExpression simplified = Simplify(expr);
  Result<Database> original = expr.Apply(db);
  Result<Database> optimized = simplified.Apply(db);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(optimized.ok());
  EXPECT_TRUE(original->ContentsEqual(*optimized));
}

}  // namespace
}  // namespace tupelo
