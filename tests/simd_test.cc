// Differential tests for the common/simd kernel layer: every dispatched
// kernel must agree bit-for-bit with the pinned scalar reference at every
// CPU tier the host supports (see common/simd/dispatch.h for why that is
// achievable, not just hoped for). The suites flip ForceLevelForTesting
// between runs; on a pre-AVX2 host the higher tiers clamp to the detected
// one and the comparisons degenerate to scalar-vs-scalar, which keeps the
// test meaningful everywhere without ever being wrong.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/simd/dispatch.h"
#include "common/simd/edit_distance.h"
#include "common/simd/term_merge.h"
#include "core/mapping_problem.h"
#include "core/tupelo.h"
#include "heuristics/term_vector.h"
#include "heuristics/vector_heuristics.h"
#include "relational/database.h"
#include "relational/tnf.h"
#include "workloads/synthetic.h"

namespace tupelo {
namespace {

using simd::Level;

// Every tier the host can actually run (clamped levels dedup away).
std::vector<Level> HostLevels() {
  std::vector<Level> levels = {Level::kScalar};
  for (Level l : {Level::kSse42, Level::kAvx2}) {
    if (simd::ForceLevelForTesting(l) == l && l != levels.back()) {
      levels.push_back(l);
    }
  }
  return levels;
}

// Restores the dispatch level resolved from the environment when a test
// body returns, so forced levels cannot leak across suites.
class LevelGuard {
 public:
  LevelGuard() : saved_(simd::ActiveLevel()) {}
  ~LevelGuard() { simd::ForceLevelForTesting(saved_); }

 private:
  Level saved_;
};

// Deterministic splitmix64 stream; no std::random_device, so failures
// reproduce from the seed in the test body.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    return Mix64(state_);
  }
  // In [0, bound).
  size_t Below(size_t bound) { return bound == 0 ? 0 : Next() % bound; }

 private:
  uint64_t state_;
};

// Strings drawn from the alphabet TNF encodings actually contain:
// letters, digits, the '\x1f'/'\x1e' separators of the old triple keys,
// and the multi-byte UTF-8 "⊥" null marker.
std::string RandomTnfish(Rng& rng, size_t len) {
  static constexpr std::string_view kAtoms[] = {
      "a", "b", "z", "R", "7", "\x1f", "\x1e", "⊥", "é",
  };
  std::string s;
  s.reserve(len + 2);
  while (s.size() < len) {
    s += kAtoms[rng.Below(std::size(kAtoms))];
  }
  s.resize(len);
  return s;
}

std::vector<std::pair<std::string, std::string>> AdversarialPairs() {
  std::vector<std::pair<std::string, std::string>> pairs = {
      {"", ""},
      {"", "abc"},
      {"abc", ""},
      {"abc", "abc"},
      {"kitten", "sitting"},
      {"\x1f\x1e", "\x1e\x1f"},
      {"a\x1f b\x1e c", "a\x1e b\x1f c"},
      {"⊥⊥⊥", "⊥x⊥"},
      {"ab⊥cd", "abcd"},
      // Exactly one word, and one-past-one-word (the Myers64/blocked
      // boundary).
      {std::string(64, 'a'), std::string(64, 'b')},
      {std::string(65, 'a'), std::string(64, 'a') + "b"},
      // Shared prefix/suffix around a differing core (trimming path).
      {std::string(100, 'p') + "xyz" + std::string(100, 's'),
       std::string(100, 'p') + "xq" + std::string(100, 's')},
  };
  Rng rng(0x5eed5eed5eedULL);
  const size_t lengths[] = {1, 2, 7, 63, 64, 65, 127, 128, 200,
                            513, 1024, 4096};
  for (size_t la : lengths) {
    // Symmetric-ish pair plus a strongly asymmetric one (short pattern,
    // long text — the pattern-side-selection case).
    pairs.emplace_back(RandomTnfish(rng, la),
                       RandomTnfish(rng, la + rng.Below(5)));
    pairs.emplace_back(RandomTnfish(rng, rng.Below(32)),
                       RandomTnfish(rng, la));
  }
  return pairs;
}

TEST(SimdDispatchTest, LevelNamesRoundTrip) {
  for (Level l : {Level::kScalar, Level::kSse42, Level::kAvx2}) {
    EXPECT_EQ(simd::ParseLevelName(simd::LevelName(l)), l);
  }
  EXPECT_FALSE(simd::ParseLevelName("avx512").has_value());
  EXPECT_FALSE(simd::ParseLevelName("").has_value());
}

TEST(SimdDispatchTest, ForceClampsToDetected) {
  LevelGuard guard;
  const Level detected = simd::DetectedLevel();
  const Level installed = simd::ForceLevelForTesting(Level::kAvx2);
  EXPECT_LE(static_cast<int>(installed), static_cast<int>(detected));
  EXPECT_EQ(simd::ActiveLevel(), installed);
  EXPECT_EQ(simd::ForceLevelForTesting(Level::kScalar), Level::kScalar);
}

TEST(SimdEditDistanceTest, MatchesScalarOnAdversarialPairs) {
  LevelGuard guard;
  const auto pairs = AdversarialPairs();
  for (Level level : HostLevels()) {
    simd::ForceLevelForTesting(level);
    for (const auto& [a, b] : pairs) {
      const size_t expected = simd::EditDistanceScalar(a, b);
      EXPECT_EQ(simd::EditDistance(a, b), expected)
          << "level=" << simd::LevelName(level) << " |a|=" << a.size()
          << " |b|=" << b.size();
      EXPECT_EQ(simd::EditDistance(b, a), expected)
          << "level=" << simd::LevelName(level) << " (swapped)";
    }
  }
}

TEST(SimdEditDistanceTest, PreparedPatternMatchesScalar) {
  LevelGuard guard;
  const auto pairs = AdversarialPairs();
  for (Level level : HostLevels()) {
    simd::ForceLevelForTesting(level);
    for (const auto& [a, b] : pairs) {
      simd::PreparedPattern prepared(a);
      EXPECT_EQ(prepared.Distance(b), simd::EditDistanceScalar(a, b))
          << "level=" << simd::LevelName(level) << " |a|=" << a.size()
          << " |b|=" << b.size();
    }
  }
}

TEST(SimdHashTest, AllLevelsAgree) {
  LevelGuard guard;
  Rng rng(0xa5a5ULL ^ 0x9021);
  std::vector<std::string> inputs = {"", "a", "\x1e", "⊥"};
  for (size_t len : {7u, 8u, 31u, 32u, 33u, 64u, 100u, 1000u}) {
    inputs.push_back(RandomTnfish(rng, len));
  }
  for (const std::string& input : inputs) {
    simd::ForceLevelForTesting(Level::kScalar);
    const uint64_t expected = HashBytes64(input, 42);
    const uint64_t chained = HashBytes64(input, expected);
    for (Level level : HostLevels()) {
      simd::ForceLevelForTesting(level);
      EXPECT_EQ(HashBytes64(input, 42), expected)
          << "level=" << simd::LevelName(level) << " len=" << input.size();
      EXPECT_EQ(HashBytes64(input, expected), chained);
    }
  }
  // Distinct seeds give distinct lanes; length is part of the hash.
  EXPECT_NE(HashBytes64("abc", 1), HashBytes64("abc", 2));
  EXPECT_NE(HashBytes64("", 1), HashBytes64(std::string(1, '\0'), 1));
}

TEST(SimdTermMergeTest, KernelsMatchScalarReference) {
  LevelGuard guard;
  Rng rng(77);
  // Sorted unique key arrays with partial overlap, integer counts.
  std::vector<uint64_t> xk, yk;
  std::vector<double> xc, yc;
  uint64_t key = 0;
  for (int i = 0; i < 300; ++i) {
    key += 1 + rng.Below(3);
    const bool in_x = rng.Below(3) != 0;
    const bool in_y = !in_x || rng.Below(2) != 0;
    if (in_x) {
      xk.push_back(key);
      xc.push_back(static_cast<double>(1 + rng.Below(9)));
    }
    if (in_y) {
      yk.push_back(key);
      yc.push_back(static_cast<double>(1 + rng.Below(9)));
    }
  }
  simd::ForceLevelForTesting(Level::kScalar);
  const double sum = simd::CountSum(xc.data(), xc.size());
  const double sum_sq = simd::CountSumSquares(xc.data(), xc.size());
  const double dot = simd::DotMerge(xk.data(), xc.data(), xk.size(),
                                    yk.data(), yc.data(), yk.size());
  const double min_sum = simd::MinSumMerge(xk.data(), xc.data(), xk.size(),
                                           yk.data(), yc.data(), yk.size());
  for (Level level : HostLevels()) {
    simd::ForceLevelForTesting(level);
    EXPECT_EQ(simd::CountSum(xc.data(), xc.size()), sum);
    EXPECT_EQ(simd::CountSumSquares(xc.data(), xc.size()), sum_sq);
    EXPECT_EQ(simd::DotMerge(xk.data(), xc.data(), xk.size(), yk.data(),
                             yc.data(), yk.size()),
              dot);
    EXPECT_EQ(simd::MinSumMerge(xk.data(), xc.data(), xk.size(), yk.data(),
                                yc.data(), yk.size()),
              min_sum);
    for (uint64_t probe : {uint64_t{0}, xk.front(), xk.back(),
                           xk[xk.size() / 2] + 1, key + 100}) {
      size_t i = 0;
      while (i < xk.size() && xk[i] < probe) ++i;
      EXPECT_EQ(simd::LowerBoundKey(xk.data(), xk.size(), probe), i)
          << "level=" << simd::LevelName(level) << " probe=" << probe;
    }
  }
}

TEST(SimdTermVectorTest, DistancesBitIdenticalAcrossLevels) {
  LevelGuard guard;
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(6);
  simd::ForceLevelForTesting(Level::kScalar);
  const TermVector sx = TermVector::FromDatabase(pair.source);
  const TermVector sy = TermVector::FromDatabase(pair.target);
  const double euclid = TermVector::EuclideanDistance(sx, sy);
  const double norm_euclid = TermVector::NormalizedEuclideanDistance(sx, sy);
  const double cosine = TermVector::CosineSimilarity(sx, sy);
  const double jaccard = TermVector::JaccardSimilarity(sx, sy);
  for (Level level : HostLevels()) {
    simd::ForceLevelForTesting(level);
    const TermVector x = TermVector::FromDatabase(pair.source);
    const TermVector y = TermVector::FromDatabase(pair.target);
    ASSERT_EQ(x.keys(), sx.keys()) << simd::LevelName(level);
    ASSERT_EQ(x.counts(), sx.counts()) << simd::LevelName(level);
    EXPECT_EQ(TermVector::EuclideanDistance(x, y), euclid);
    EXPECT_EQ(TermVector::NormalizedEuclideanDistance(x, y), norm_euclid);
    EXPECT_EQ(TermVector::CosineSimilarity(x, y), cosine);
    EXPECT_EQ(TermVector::JaccardSimilarity(x, y), jaccard);
  }
}

// End-to-end parity: a discovery run with the levenshtein heuristic (the
// heaviest kernel consumer — TNF encoding, prepared-pattern Myers,
// batched estimation through the beam) must produce the same outcome on
// the pinned scalar path and the dispatched one.
TEST(SimdSearchParityTest, BeamDiscoveryOutcomeBitIdentical) {
  LevelGuard guard;
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(4);
  TupeloOptions options;
  options.algorithm = SearchAlgorithm::kBeam;
  options.heuristic = HeuristicKind::kLevenshtein;
  options.limits.max_states = 20000;

  auto run = [&] { return DiscoverMapping(pair.source, pair.target, options); };

  simd::ForceLevelForTesting(Level::kScalar);
  Result<TupeloResult> scalar = run();
  ASSERT_TRUE(scalar.ok()) << scalar.status().message();

  for (Level level : HostLevels()) {
    simd::ForceLevelForTesting(level);
    Result<TupeloResult> dispatched = run();
    ASSERT_TRUE(dispatched.ok()) << dispatched.status().message();
    EXPECT_EQ(dispatched->found, scalar->found) << simd::LevelName(level);
    EXPECT_EQ(dispatched->stop_reason, scalar->stop_reason);
    EXPECT_EQ(dispatched->stats.states_examined,
              scalar->stats.states_examined);
    EXPECT_EQ(dispatched->stats.states_generated,
              scalar->stats.states_generated);
    EXPECT_EQ(dispatched->stats.solution_cost, scalar->stats.solution_cost);
    EXPECT_EQ(dispatched->mapping.ToScript(), scalar->mapping.ToScript());
    EXPECT_EQ(dispatched->partial_h, scalar->partial_h);
  }
}

// Satellite coverage: the per-state TNF memo inside LevenshteinHeuristic.
// Two estimates of the same state must encode once (one miss, one hit);
// a different state is a fresh miss.
TEST(LevenshteinMemoTest, TnfEncodingIsMemoizedPerState) {
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(3);
  LevenshteinHeuristic heuristic(pair.target, 32.0);
  EXPECT_EQ(heuristic.tnf_cache_hits(), 0u);
  EXPECT_EQ(heuristic.tnf_cache_misses(), 0u);

  const int first = heuristic.Estimate(pair.source);
  EXPECT_EQ(heuristic.tnf_cache_misses(), 1u);
  EXPECT_EQ(heuristic.tnf_cache_hits(), 0u);

  EXPECT_EQ(heuristic.Estimate(pair.source), first);
  EXPECT_EQ(heuristic.tnf_cache_misses(), 1u);
  EXPECT_EQ(heuristic.tnf_cache_hits(), 1u);

  (void)heuristic.Estimate(pair.target);
  EXPECT_EQ(heuristic.tnf_cache_misses(), 2u);
  EXPECT_EQ(heuristic.tnf_cache_hits(), 1u);
}

// The batch estimator must return exactly what per-state EstimateCost
// returns, including for duplicate pointers within one batch.
TEST(EstimateBatchTest, MatchesSequentialEstimates) {
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(3);
  MappingProblem problem(
      pair.source, pair.target,
      std::make_unique<LevenshteinHeuristic>(pair.target, 32.0));

  const auto successors = problem.Expand(pair.source);
  ASSERT_GT(successors.size(), 1u);
  std::vector<const Database*> states;
  states.push_back(&pair.source);
  for (const auto& s : successors) states.push_back(&s.state);
  states.push_back(&pair.source);  // intra-batch duplicate

  std::vector<int> expected(states.size());
  for (size_t i = 0; i < states.size(); ++i) {
    expected[i] = problem.EstimateCost(*states[i]);
  }

  problem.TrimCaches();
  std::vector<int> batched(states.size());
  problem.EstimateCostBatch(std::span<const Database* const>(states),
                            std::span<int>(batched));
  EXPECT_EQ(batched, expected);

  // A second batch over warm caches must be pure lookups with the same
  // answers.
  std::vector<int> warm(states.size());
  problem.EstimateCostBatch(std::span<const Database* const>(states),
                            std::span<int>(warm));
  EXPECT_EQ(warm, expected);
}

// TSan section: the kernels and the once-resolved dispatch state hammered
// from several threads at once. All reads after the first resolution are
// relaxed atomic loads; the workers recompute known answers so any torn
// dispatch would also surface as a value mismatch.
TEST(SimdConcurrencyTest, ConcurrentKernelsAreRaceFree) {
  LevelGuard guard;
  simd::ForceLevelForTesting(simd::DetectedLevel());
  Rng seed_rng(11);
  const std::string a = RandomTnfish(seed_rng, 700);
  const std::string b = RandomTnfish(seed_rng, 650);
  const size_t expected_dist = simd::EditDistanceScalar(a, b);
  const uint64_t expected_hash = HashBytes64(a, 9);
  const simd::PreparedPattern prepared(a);

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        ASSERT_EQ(simd::EditDistance(a, b), expected_dist);
        ASSERT_EQ(prepared.Distance(b), expected_dist);
        ASSERT_EQ(HashBytes64(a, 9), expected_hash);
        ASSERT_EQ(simd::ActiveLevel(), simd::DetectedLevel());
        (void)t;
      }
    });
  }
  for (std::thread& w : workers) w.join();
}

}  // namespace
}  // namespace tupelo
