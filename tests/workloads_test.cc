#include <gtest/gtest.h>

#include <set>
#include <string>

#include "fira/executor.h"
#include "workloads/bamm.h"
#include "fira/expression.h"
#include "workloads/flights.h"
#include "workloads/restructuring.h"
#include "workloads/semantic.h"
#include "workloads/synthetic.h"

namespace tupelo {
namespace {

// ---------------------------------------------------------------------------
// Flights fixtures (Fig. 1)
// ---------------------------------------------------------------------------

TEST(FlightsTest, ShapesMatchFigure1) {
  Database a = MakeFlightsA();
  EXPECT_EQ(a.RelationNames(), (std::vector<std::string>{"Flights"}));
  EXPECT_EQ(a.GetRelation("Flights").value()->size(), 2u);

  Database b = MakeFlightsB();
  EXPECT_EQ(b.RelationNames(), (std::vector<std::string>{"Prices"}));
  EXPECT_EQ(b.GetRelation("Prices").value()->size(), 4u);

  Database c = MakeFlightsC();
  EXPECT_EQ(c.RelationNames(),
            (std::vector<std::string>{"AirEast", "JetWest"}));
}

TEST(FlightsTest, TotalCostIsCostPlusFee) {
  // FlightsC's TotalCost column equals B's Cost + AgentFee row by row.
  Database c = MakeFlightsC();
  const Relation* ae = c.GetRelation("AirEast").value();
  EXPECT_EQ(ae->tuples()[0][2], Value("115"));  // 100 + 15
  const Relation* jw = c.GetRelation("JetWest").value();
  EXPECT_EQ(jw->tuples()[1][2], Value("236"));  // 220 + 16
}

TEST(FlightsTest, PaperExpressionMapsBOntoAExactly) {
  Result<Database> out = FlightsBToAExpression().Apply(MakeFlightsB());
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(out->Contains(MakeFlightsA()));
  EXPECT_TRUE(MakeFlightsA().Contains(*out));
}

// ---------------------------------------------------------------------------
// Synthetic schema matching (Experiment 1)
// ---------------------------------------------------------------------------

TEST(SyntheticTest, ShapeForSmallN) {
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(3);
  const Relation* s = pair.source.GetRelation("R").value();
  const Relation* t = pair.target.GetRelation("R").value();
  EXPECT_EQ(s->attributes(), (std::vector<std::string>{"A1", "A2", "A3"}));
  EXPECT_EQ(t->attributes(), (std::vector<std::string>{"B1", "B2", "B3"}));
  EXPECT_EQ(s->tuples()[0], t->tuples()[0]);  // same critical instance
}

TEST(SyntheticTest, ZeroPaddingKeepsLexicographicAlignment) {
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(12);
  const Relation* s = pair.source.GetRelation("R").value();
  EXPECT_EQ(s->attributes()[0], "A01");
  EXPECT_EQ(s->attributes()[9], "A10");
  // Sorted order of attributes equals index order.
  std::vector<std::string> sorted = s->attributes();
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, s->attributes());
}

TEST(SyntheticTest, SourceNeverContainsTargetForPositiveN) {
  for (size_t n : {1u, 2u, 8u}) {
    SyntheticMatchingPair pair = MakeSyntheticMatchingPair(n);
    EXPECT_FALSE(pair.source.Contains(pair.target)) << n;
  }
}

TEST(SyntheticTest, NRenamesSolveIt) {
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(4);
  Database state = pair.source;
  for (int i = 1; i <= 4; ++i) {
    // n=4 is single-digit, so names are unpadded (A1..A4).
    std::string from = "A" + std::to_string(i);
    std::string to = "B" + std::to_string(i);
    Result<Database> next =
        ApplyOp(RenameAttrOp{"R", from, to}, state, nullptr);
    ASSERT_TRUE(next.ok()) << next.status();
    state = std::move(next).value();
  }
  EXPECT_TRUE(state.Contains(pair.target));
}

// ---------------------------------------------------------------------------
// BAMM (Experiment 2)
// ---------------------------------------------------------------------------

TEST(BammTest, DomainCountsMatchPaper) {
  EXPECT_EQ(BammDomainSchemaCount(BammDomain::kBooks), 55u);
  EXPECT_EQ(BammDomainSchemaCount(BammDomain::kAutos), 55u);
  EXPECT_EQ(BammDomainSchemaCount(BammDomain::kMusic), 49u);
  EXPECT_EQ(BammDomainSchemaCount(BammDomain::kMovies), 52u);
  EXPECT_EQ(AllBammDomains().size(), 4u);
}

TEST(BammTest, WorkloadHasFixedSourcePlusTargets) {
  for (BammDomain domain : AllBammDomains()) {
    BammWorkload w = MakeBammWorkload(domain, 42);
    EXPECT_EQ(w.targets.size(), BammDomainSchemaCount(domain) - 1)
        << BammDomainName(domain);
    EXPECT_EQ(w.source.relation_count(), 1u);
  }
}

TEST(BammTest, TargetsHaveOneToEightAttributes) {
  BammWorkload w = MakeBammWorkload(BammDomain::kBooks, 7);
  for (const Database& target : w.targets) {
    const Relation& rel = *target.relations().begin()->second;
    EXPECT_GE(rel.arity(), 1u);
    EXPECT_LE(rel.arity(), 8u);
    EXPECT_EQ(rel.size(), 1u);  // one critical tuple
  }
}

TEST(BammTest, DeterministicForSeed) {
  BammWorkload a = MakeBammWorkload(BammDomain::kMusic, 5);
  BammWorkload b = MakeBammWorkload(BammDomain::kMusic, 5);
  ASSERT_EQ(a.targets.size(), b.targets.size());
  for (size_t i = 0; i < a.targets.size(); ++i) {
    EXPECT_TRUE(a.targets[i].ContentsEqual(b.targets[i]));
  }
  BammWorkload c = MakeBammWorkload(BammDomain::kMusic, 6);
  bool any_different = false;
  for (size_t i = 0; i < a.targets.size() && i < c.targets.size(); ++i) {
    if (!a.targets[i].ContentsEqual(c.targets[i])) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(BammTest, TargetValuesComeFromSourceEntity) {
  // Rosetta Stone: every target value appears in the source instance.
  BammWorkload w = MakeBammWorkload(BammDomain::kMovies, 11);
  std::set<std::string> source_values;
  const Relation& src = *w.source.relations().begin()->second;
  for (const Value& v : src.tuples()[0].values()) {
    source_values.insert(v.atom());
  }
  for (const Database& target : w.targets) {
    const Relation& rel = *target.relations().begin()->second;
    for (const Value& v : rel.tuples()[0].values()) {
      EXPECT_TRUE(source_values.contains(v.atom())) << v.atom();
    }
  }
}

TEST(BammTest, SynonymVocabulariesNeverCollideAcrossAttributes) {
  // A synonym chosen for one attribute must not equal the canonical name
  // of another attribute of the same domain (that would create ambiguous
  // mapping tasks).
  for (BammDomain domain : AllBammDomains()) {
    BammWorkload w = MakeBammWorkload(domain, 3);
    for (const Database& target : w.targets) {
      const Relation& rel = *target.relations().begin()->second;
      std::set<std::string> seen;
      for (const std::string& attr : rel.attributes()) {
        EXPECT_TRUE(seen.insert(attr).second)
            << BammDomainName(domain) << ": duplicate " << attr;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Semantic mapping workloads (Experiment 3)
// ---------------------------------------------------------------------------

TEST(SemanticTest, FunctionCountsMatchPaper) {
  EXPECT_EQ(SemanticDomainFunctionCount(SemanticDomain::kInventory), 10u);
  EXPECT_EQ(SemanticDomainFunctionCount(SemanticDomain::kRealEstate), 12u);
}

TEST(SemanticTest, WorkloadShape) {
  SemanticWorkload w = MakeSemanticWorkload(SemanticDomain::kInventory, 4);
  EXPECT_EQ(w.correspondences.size(), 4u);
  EXPECT_EQ(w.source.relation_count(), 1u);
  EXPECT_EQ(w.target.relation_count(), 1u);
  // Target: 2 renamed base attrs + k outputs.
  const Relation& trel = *w.target.relations().begin()->second;
  EXPECT_EQ(trel.arity(), 2u + 4u);
}

TEST(SemanticTest, ClampsFunctionCount) {
  SemanticWorkload w = MakeSemanticWorkload(SemanticDomain::kInventory, 99);
  EXPECT_EQ(w.correspondences.size(), 10u);
}

TEST(SemanticTest, TargetOutputsComputedByFunctions) {
  SemanticWorkload w = MakeSemanticWorkload(SemanticDomain::kInventory, 1);
  // First correspondence: total = add(price, tax); prices 100+8 and 40+3.
  const Relation& trel = *w.target.relations().begin()->second;
  std::optional<size_t> idx = trel.AttributeIndex("total");
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(trel.tuples()[0][*idx], Value("108"));
  EXPECT_EQ(trel.tuples()[1][*idx], Value("43"));
}

TEST(SemanticTest, RegistryCoversAllCatalogFunctions) {
  for (SemanticDomain domain :
       {SemanticDomain::kInventory, SemanticDomain::kRealEstate}) {
    SemanticWorkload w = MakeSemanticWorkload(
        domain, SemanticDomainFunctionCount(domain));
    for (const SemanticCorrespondence& c : w.correspondences) {
      EXPECT_TRUE(w.registry.Has(c.function)) << c.function;
      Result<const ComplexFunction*> f = w.registry.Lookup(c.function);
      ASSERT_TRUE(f.ok());
      EXPECT_EQ((*f)->arity, c.inputs.size()) << c.function;
    }
  }
}

TEST(SemanticTest, SourceDoesNotContainTarget) {
  for (size_t k : {1u, 5u}) {
    SemanticWorkload w = MakeSemanticWorkload(SemanticDomain::kRealEstate, k);
    EXPECT_FALSE(w.source.Contains(w.target));
  }
}

TEST(SemanticTest, GroundTruthExpressionReachesTarget) {
  // Applying all k correspondences plus the renames reaches the target.
  SemanticWorkload w = MakeSemanticWorkload(SemanticDomain::kRealEstate, 3);
  Database state = w.source;
  for (const SemanticCorrespondence& c : w.correspondences) {
    Result<Database> next = ApplyOp(
        ApplyFunctionOp{"Listings", c.function, c.inputs, c.output}, state,
        &w.registry);
    ASSERT_TRUE(next.ok()) << next.status();
    state = std::move(next).value();
  }
  Result<Database> renamed =
      ApplyOp(RenameAttrOp{"Listings", "street", "address"}, state, nullptr);
  ASSERT_TRUE(renamed.ok());
  renamed = ApplyOp(RenameAttrOp{"Listings", "zip", "postal_code"}, *renamed,
                    nullptr);
  ASSERT_TRUE(renamed.ok());
  renamed = ApplyOp(RenameRelOp{"Listings", "HousesForSale"}, *renamed,
                    nullptr);
  ASSERT_TRUE(renamed.ok());
  EXPECT_TRUE(renamed->Contains(w.target));
}

TEST(SemanticTest, ZeroFunctionsStillRequiresStructuralMapping) {
  SemanticWorkload w = MakeSemanticWorkload(SemanticDomain::kInventory, 0);
  EXPECT_TRUE(w.correspondences.empty());
  EXPECT_FALSE(w.source.Contains(w.target));  // renames still needed
}

TEST(BammTest, GroundTruthDescribesTargets) {
  BammWorkload w = MakeBammWorkload(BammDomain::kBooks, 2006);
  ASSERT_EQ(w.ground_truth.size(), w.targets.size());
  for (size_t i = 0; i < w.targets.size(); ++i) {
    const Relation& rel = *w.targets[i].relations().begin()->second;
    const BammGroundTruth& truth = w.ground_truth[i];
    // Every recorded rename's target label really appears in the target
    // schema, and its canonical source label does not.
    for (const auto& [canonical, label] : truth.attribute_renames) {
      EXPECT_TRUE(rel.HasAttribute(label)) << label;
      EXPECT_FALSE(rel.HasAttribute(canonical)) << canonical;
      EXPECT_TRUE(w.source.relations().begin()->second->HasAttribute(
          canonical))
          << canonical;
    }
    if (!truth.relation_rename.empty()) {
      EXPECT_EQ(rel.name(), truth.relation_rename);
    } else {
      EXPECT_EQ(rel.name(), w.source.relations().begin()->first);
    }
  }
}

// ---------------------------------------------------------------------------
// Restructuring workload (Fig. 1 scaled)
// ---------------------------------------------------------------------------

TEST(RestructuringTest, MinimalSizeMatchesFig1Shape) {
  RestructuringWorkload w = MakeRestructuringWorkload(2, 2);
  const Relation* wide = w.wide.GetRelation("Flights").value();
  EXPECT_EQ(wide->attributes(),
            (std::vector<std::string>{"Carrier", "Fee", "RT1", "RT2"}));
  EXPECT_EQ(wide->size(), 2u);
  const Relation* flat = w.flat.GetRelation("Prices").value();
  EXPECT_EQ(flat->size(), 4u);  // carriers × routes
  EXPECT_EQ(w.split.relation_count(), 2u);
}

TEST(RestructuringTest, AllThreeViewsCarrySameInformation) {
  RestructuringWorkload w = MakeRestructuringWorkload(3, 4);
  // flat joins consistently: every (carrier, route) cost in flat appears
  // as the route column value in wide.
  const Relation* wide = w.wide.GetRelation("Flights").value();
  const Relation* flat = w.flat.GetRelation("Prices").value();
  for (const Tuple& ft : flat->tuples()) {
    const std::string& carrier = ft[0].atom();
    const std::string& route = ft[1].atom();
    const std::string& cost = ft[2].atom();
    bool found = false;
    size_t route_idx = *wide->AttributeIndex(route);
    for (const Tuple& wt : wide->tuples()) {
      if (wt[0].atom() == carrier) {
        EXPECT_EQ(wt[route_idx].atom(), cost);
        found = true;
      }
    }
    EXPECT_TRUE(found) << carrier << "/" << route;
  }
}

TEST(RestructuringTest, SplitTotalsAreCostPlusFee) {
  RestructuringWorkload w = MakeRestructuringWorkload(2, 3);
  for (const auto& [name, rel] : w.split.relations()) {
    for (const Tuple& t : rel->tuples()) {
      int base = std::stoi(t[1].atom());
      int total = std::stoi(t[2].atom());
      EXPECT_GT(total, base);
    }
  }
  EXPECT_EQ(w.flat_to_split.size(), 1u);
  EXPECT_EQ(w.flat_to_split[0].function, "add");
}

TEST(RestructuringTest, GroundTruthFlatToWideMapping) {
  // The Example 2 expression generalizes to any size.
  RestructuringWorkload w = MakeRestructuringWorkload(3, 3);
  MappingExpression expr;
  expr.Append(PromoteOp{"Prices", "Route", "Cost"});
  expr.Append(DropOp{"Prices", "Route"});
  expr.Append(DropOp{"Prices", "Cost"});
  expr.Append(MergeOp{"Prices", "Carrier"});
  expr.Append(RenameAttrOp{"Prices", "AgentFee", "Fee"});
  expr.Append(RenameRelOp{"Prices", "Flights"});
  Result<Database> out = expr.Apply(w.flat);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(out->Contains(w.wide));
}

TEST(RestructuringTest, Deterministic) {
  RestructuringWorkload a = MakeRestructuringWorkload(2, 2);
  RestructuringWorkload b = MakeRestructuringWorkload(2, 2);
  EXPECT_TRUE(a.flat.ContentsEqual(b.flat));
  EXPECT_TRUE(a.wide.ContentsEqual(b.wide));
  EXPECT_TRUE(a.split.ContentsEqual(b.split));
}

}  // namespace
}  // namespace tupelo
