#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "relational/tnf.h"
#include "workloads/flights.h"

namespace tupelo {
namespace {

Relation MakeRel(const char* name, std::vector<std::string> attrs) {
  Result<Relation> r = Relation::Create(name, std::move(attrs));
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

TEST(TnfTest, EncodeEmptyDatabase) {
  Database db;
  Relation tnf = EncodeTnf(db);
  EXPECT_EQ(tnf.name(), kTnfRelationName);
  EXPECT_EQ(tnf.attributes(),
            (std::vector<std::string>{kTnfTid, kTnfRel, kTnfAtt, kTnfValue}));
  EXPECT_TRUE(tnf.empty());
}

TEST(TnfTest, EncodeSingleTuple) {
  Database db;
  Relation r = MakeRel("R", {"A", "B"});
  ASSERT_TRUE(r.AddRow({"1", "2"}).ok());
  ASSERT_TRUE(db.AddRelation(std::move(r)).ok());
  std::vector<TnfRow> rows = TnfRows(db);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (TnfRow{"t1", "R", "A", Value("1")}));
  EXPECT_EQ(rows[1], (TnfRow{"t1", "R", "B", Value("2")}));
}

TEST(TnfTest, EncodeAssignsUniqueTidsAcrossRelations) {
  Database db;
  Relation r = MakeRel("R", {"A"});
  ASSERT_TRUE(r.AddRow({"1"}).ok());
  Relation s = MakeRel("S", {"B"});
  ASSERT_TRUE(s.AddRow({"2"}).ok());
  ASSERT_TRUE(s.AddRow({"3"}).ok());
  ASSERT_TRUE(db.AddRelation(std::move(r)).ok());
  ASSERT_TRUE(db.AddRelation(std::move(s)).ok());
  std::vector<TnfRow> rows = TnfRows(db);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].tid, "t1");
  EXPECT_EQ(rows[1].tid, "t2");
  EXPECT_EQ(rows[2].tid, "t3");
  EXPECT_EQ(rows[1].rel, "S");
}

TEST(TnfTest, EncodePreservesNulls) {
  Database db;
  Relation r = MakeRel("R", {"A", "B"});
  ASSERT_TRUE(
      r.AddTuple(Tuple(std::vector<Value>{Value("1"), Value::Null()})).ok());
  ASSERT_TRUE(db.AddRelation(std::move(r)).ok());
  std::vector<TnfRow> rows = TnfRows(db);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_FALSE(rows[0].value.is_null());
  EXPECT_TRUE(rows[1].value.is_null());
}

TEST(TnfTest, PaperExample4FlightsC) {
  // The paper's Example 4: TNF of FlightsC has 12 rows; the AirEast tuple
  // t1 carries (Route=ATL29, BaseCost=100, TotalCost=115).
  Database db = MakeFlightsC();
  std::vector<TnfRow> rows = TnfRows(db);
  ASSERT_EQ(rows.size(), 12u);
  EXPECT_EQ(rows[0], (TnfRow{"t1", "AirEast", "Route", Value("ATL29")}));
  EXPECT_EQ(rows[1], (TnfRow{"t1", "AirEast", "BaseCost", Value("100")}));
  EXPECT_EQ(rows[2], (TnfRow{"t1", "AirEast", "TotalCost", Value("115")}));
  // Relations appear in name order; JetWest rows follow AirEast's.
  EXPECT_EQ(rows[6].rel, "JetWest");
}

TEST(TnfTest, RoundTripSimple) {
  Database db;
  Relation r = MakeRel("R", {"A", "B"});
  ASSERT_TRUE(r.AddRow({"1", "2"}).ok());
  ASSERT_TRUE(r.AddRow({"3", "4"}).ok());
  ASSERT_TRUE(db.AddRelation(std::move(r)).ok());
  Result<Database> decoded = DecodeTnf(EncodeTnf(db));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->ContentsEqual(db));
}

TEST(TnfTest, RoundTripMultiRelationWithNulls) {
  Database db = MakeFlightsC();
  Relation extra = MakeRel("Extra", {"X", "Y"});
  ASSERT_TRUE(
      extra.AddTuple(Tuple(std::vector<Value>{Value::Null(), Value("y")}))
          .ok());
  ASSERT_TRUE(db.AddRelation(std::move(extra)).ok());
  Result<Database> decoded = DecodeTnf(EncodeTnf(db));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->ContentsEqual(db));
}

TEST(TnfTest, RoundTripFlightsAAndB) {
  for (const Database& db : {MakeFlightsA(), MakeFlightsB()}) {
    Result<Database> decoded = DecodeTnf(EncodeTnf(db));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_TRUE(decoded->ContentsEqual(db));
  }
}

TEST(TnfTest, DecodeRejectsWrongSchema) {
  Relation bad = MakeRel("TNF", {"TID", "REL", "ATT"});
  EXPECT_FALSE(DecodeTnf(bad).ok());
  Relation bad2 = MakeRel("TNF", {"REL", "TID", "ATT", "VALUE"});
  EXPECT_FALSE(DecodeTnf(bad2).ok());
}

Relation TnfShell() {
  return MakeRel(kTnfRelationName, {kTnfTid, kTnfRel, kTnfAtt, kTnfValue});
}

TEST(TnfTest, DecodeRejectsNullTid) {
  Relation tnf = TnfShell();
  ASSERT_TRUE(tnf.AddTuple(Tuple(std::vector<Value>{
                               Value::Null(), Value("R"), Value("A"),
                               Value("1")}))
                  .ok());
  EXPECT_EQ(DecodeTnf(tnf).status().code(), StatusCode::kParseError);
}

TEST(TnfTest, DecodeRejectsTidSpanningRelations) {
  Relation tnf = TnfShell();
  ASSERT_TRUE(tnf.AddRow({"t1", "R", "A", "1"}).ok());
  ASSERT_TRUE(tnf.AddRow({"t1", "S", "B", "2"}).ok());
  EXPECT_EQ(DecodeTnf(tnf).status().code(), StatusCode::kParseError);
}

TEST(TnfTest, DecodeRejectsRepeatedAttribute) {
  Relation tnf = TnfShell();
  ASSERT_TRUE(tnf.AddRow({"t1", "R", "A", "1"}).ok());
  ASSERT_TRUE(tnf.AddRow({"t1", "R", "A", "2"}).ok());
  EXPECT_EQ(DecodeTnf(tnf).status().code(), StatusCode::kParseError);
}

TEST(TnfTest, DecodeRejectsInconsistentAttributeSets) {
  Relation tnf = TnfShell();
  ASSERT_TRUE(tnf.AddRow({"t1", "R", "A", "1"}).ok());
  ASSERT_TRUE(tnf.AddRow({"t1", "R", "B", "2"}).ok());
  ASSERT_TRUE(tnf.AddRow({"t2", "R", "A", "3"}).ok());
  EXPECT_EQ(DecodeTnf(tnf).status().code(), StatusCode::kParseError);
}

TEST(TnfTest, DecodeRejectsUnknownAttributeInLaterTuple) {
  Relation tnf = TnfShell();
  ASSERT_TRUE(tnf.AddRow({"t1", "R", "A", "1"}).ok());
  ASSERT_TRUE(tnf.AddRow({"t2", "R", "B", "2"}).ok());
  EXPECT_FALSE(DecodeTnf(tnf).ok());
}

TEST(TnfTest, DecodeHandlesInterleavedTuples) {
  // Rows of different TIDs interleaved are grouped correctly.
  Relation tnf = TnfShell();
  ASSERT_TRUE(tnf.AddRow({"t1", "R", "A", "1"}).ok());
  ASSERT_TRUE(tnf.AddRow({"t2", "R", "A", "3"}).ok());
  ASSERT_TRUE(tnf.AddRow({"t1", "R", "B", "2"}).ok());
  ASSERT_TRUE(tnf.AddRow({"t2", "R", "B", "4"}).ok());
  Result<Database> db = DecodeTnf(tnf);
  ASSERT_TRUE(db.ok()) << db.status();
  Result<const Relation*> r = db->GetRelation("R");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->size(), 2u);
  EXPECT_EQ((*r)->tuples()[0], Tuple::OfAtoms({"1", "2"}));
  EXPECT_EQ((*r)->tuples()[1], Tuple::OfAtoms({"3", "4"}));
}

TEST(TnfTest, DecodeOrderIndependentOfColumnPermutationWithinTuple) {
  // A tuple's attributes may arrive in any order; the first tuple of the
  // relation fixes the schema order.
  Relation tnf = TnfShell();
  ASSERT_TRUE(tnf.AddRow({"t1", "R", "A", "1"}).ok());
  ASSERT_TRUE(tnf.AddRow({"t1", "R", "B", "2"}).ok());
  ASSERT_TRUE(tnf.AddRow({"t2", "R", "B", "4"}).ok());
  ASSERT_TRUE(tnf.AddRow({"t2", "R", "A", "3"}).ok());
  Result<Database> db = DecodeTnf(tnf);
  ASSERT_TRUE(db.ok()) << db.status();
  Result<const Relation*> r = db->GetRelation("R");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->attributes(), (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ((*r)->tuples()[1], Tuple::OfAtoms({"3", "4"}));
}

TEST(TnfTest, EncodedTnfOfDatabaseMatchesUnionOfPerRelationTnf) {
  // TNF of a database = union of TNF of its relations (modulo TID names);
  // check row counts per relation.
  Database db = MakeFlightsC();
  std::vector<TnfRow> rows = TnfRows(db);
  size_t aireast = 0;
  size_t jetwest = 0;
  for (const TnfRow& row : rows) {
    if (row.rel == "AirEast") ++aireast;
    if (row.rel == "JetWest") ++jetwest;
  }
  EXPECT_EQ(aireast, 6u);
  EXPECT_EQ(jetwest, 6u);
}

}  // namespace
}  // namespace tupelo
