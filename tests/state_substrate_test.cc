// The copy-on-write state substrate: structural fingerprints (order
// independence, content sensitivity, incremental maintenance), COW
// aliasing (mutations never leak into sharing copies), and the Expand
// transposition cache (hits, eviction, memory accounting).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/hash.h"
#include "core/mapping_problem.h"
#include "fira/executor.h"
#include "heuristics/heuristic_factory.h"
#include "obs/metrics.h"
#include "relational/database.h"
#include "relational/relation.h"
#include "search/search_types.h"
#include "workloads/synthetic.h"

namespace tupelo {
namespace {

Relation MakeRel(const char* name, std::vector<std::string> attrs) {
  Result<Relation> r = Relation::Create(name, std::move(attrs));
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

// ---------------------------------------------------------------------------
// Relation fingerprints
// ---------------------------------------------------------------------------

TEST(FingerprintTest, TupleInsertionOrderIrrelevant) {
  Relation a = MakeRel("R", {"x", "y"});
  ASSERT_TRUE(a.AddRow({"1", "2"}).ok());
  ASSERT_TRUE(a.AddRow({"3", "4"}).ok());
  Relation b = MakeRel("R", {"x", "y"});
  ASSERT_TRUE(b.AddRow({"3", "4"}).ok());
  ASSERT_TRUE(b.AddRow({"1", "2"}).ok());
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  EXPECT_EQ(a.CanonicalKey(), b.CanonicalKey());
}

TEST(FingerprintTest, AttributeOrderIrrelevant) {
  Relation a = MakeRel("R", {"x", "y"});
  ASSERT_TRUE(a.AddRow({"1", "2"}).ok());
  Relation b = MakeRel("R", {"y", "x"});
  ASSERT_TRUE(b.AddRow({"2", "1"}).ok());  // same tuple, columns permuted
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  EXPECT_EQ(a.CanonicalKey(), b.CanonicalKey());
  EXPECT_TRUE(a.ContentsEqual(b));
}

TEST(FingerprintTest, SensitiveToEveryContentDimension) {
  Relation base = MakeRel("R", {"x", "y"});
  ASSERT_TRUE(base.AddRow({"1", "2"}).ok());
  Fp128 fp = base.Fingerprint();

  Relation renamed = base;
  renamed.set_name("S");
  EXPECT_FALSE(fp == renamed.Fingerprint());

  Relation edited = base;
  ASSERT_TRUE(edited.DropAttribute("y").ok());
  ASSERT_TRUE(edited.AddAttribute("y", Value("3")).ok());
  EXPECT_FALSE(fp == edited.Fingerprint());

  Relation widened = base;
  ASSERT_TRUE(widened.AddAttribute("z").ok());
  EXPECT_FALSE(fp == widened.Fingerprint());

  Relation attr_renamed = base;
  ASSERT_TRUE(attr_renamed.RenameAttribute("y", "z").ok());
  EXPECT_FALSE(fp == attr_renamed.Fingerprint());

  Relation grown = base;
  ASSERT_TRUE(grown.AddRow({"1", "2"}).ok());  // duplicate tuple: bag, not set
  EXPECT_FALSE(fp == grown.Fingerprint());
}

TEST(FingerprintTest, NullDistinctFromAtom) {
  Relation with_null = MakeRel("R", {"x"});
  ASSERT_TRUE(with_null.AddTuple(Tuple({Value::Null()})).ok());
  Relation with_atom = MakeRel("R", {"x"});
  ASSERT_TRUE(with_atom.AddTuple(Tuple({Value("null")})).ok());
  EXPECT_FALSE(with_null.Fingerprint() == with_atom.Fingerprint());
}

TEST(FingerprintTest, LanesAreIndependentlySeeded) {
  Relation rel = MakeRel("R", {"x", "y"});
  ASSERT_TRUE(rel.AddRow({"1", "2"}).ok());
  Fp128 fp = rel.Fingerprint();
  EXPECT_NE(fp.lo, fp.hi);
  EXPECT_NE(fp.lo, 0u);
  EXPECT_NE(fp.hi, 0u);
}

TEST(FingerprintTest, CachedAcrossCallsInvalidatedByMutation) {
  Relation rel = MakeRel("R", {"x"});
  ASSERT_TRUE(rel.AddRow({"1"}).ok());
  Fp128 before = rel.Fingerprint();
  EXPECT_EQ(before, rel.Fingerprint());  // cached path
  ASSERT_TRUE(rel.AddRow({"2"}).ok());
  EXPECT_FALSE(before == rel.Fingerprint());
}

// ---------------------------------------------------------------------------
// Database fingerprints: incremental == from-scratch
// ---------------------------------------------------------------------------

TEST(DatabaseFingerprintTest, IncrementalMatchesFromScratch) {
  Database db;
  Relation r = MakeRel("R", {"x"});
  ASSERT_TRUE(r.AddRow({"1"}).ok());
  Relation s = MakeRel("S", {"y"});
  ASSERT_TRUE(s.AddRow({"2"}).ok());
  ASSERT_TRUE(db.AddRelation(r).ok());
  ASSERT_TRUE(db.AddRelation(s).ok());
  (void)db.Fingerprint128();  // warm the cache so updates run incrementally

  Relation s2 = MakeRel("S", {"y"});
  ASSERT_TRUE(s2.AddRow({"3"}).ok());
  db.PutRelation(s2);
  ASSERT_TRUE(db.RemoveRelation("R").ok());

  Database fresh;
  ASSERT_TRUE(fresh.AddRelation(s2).ok());
  EXPECT_EQ(db.Fingerprint128(), fresh.Fingerprint128());
  EXPECT_EQ(db.Fingerprint(), fresh.Fingerprint());
  EXPECT_TRUE(db.ContentsEqual(fresh));
}

TEST(DatabaseFingerprintTest, RelationOrderAndPathIrrelevant) {
  Relation r = MakeRel("R", {"x"});
  ASSERT_TRUE(r.AddRow({"1"}).ok());
  Relation s = MakeRel("S", {"y"});
  ASSERT_TRUE(s.AddRow({"2"}).ok());

  Database ab;
  ASSERT_TRUE(ab.AddRelation(r).ok());
  ASSERT_TRUE(ab.AddRelation(s).ok());
  Database ba;
  ASSERT_TRUE(ba.AddRelation(s).ok());
  ASSERT_TRUE(ba.AddRelation(r).ok());
  EXPECT_EQ(ab.Fingerprint128(), ba.Fingerprint128());

  // Same contents through a different mutation history.
  Database history;
  Relation tmp = MakeRel("R", {"zz"});
  ASSERT_TRUE(history.AddRelation(tmp).ok());
  ASSERT_TRUE(history.AddRelation(s).ok());
  (void)history.Fingerprint128();
  history.PutRelation(r);
  EXPECT_EQ(history.Fingerprint128(), ab.Fingerprint128());
}

TEST(DatabaseFingerprintTest, RenameRelationUpdatesFingerprint) {
  Relation r = MakeRel("R", {"x"});
  ASSERT_TRUE(r.AddRow({"1"}).ok());
  Database db;
  ASSERT_TRUE(db.AddRelation(r).ok());
  (void)db.Fingerprint128();
  ASSERT_TRUE(db.RenameRelation("R", "S").ok());

  Relation renamed = r;
  renamed.set_name("S");
  Database fresh;
  ASSERT_TRUE(fresh.AddRelation(renamed).ok());
  EXPECT_EQ(db.Fingerprint128(), fresh.Fingerprint128());
}

// ---------------------------------------------------------------------------
// Copy-on-write aliasing
// ---------------------------------------------------------------------------

TEST(CowTest, CopiesShareRelationsUntilMutation) {
  Database parent;
  Relation r = MakeRel("R", {"x"});
  ASSERT_TRUE(r.AddRow({"1"}).ok());
  Relation s = MakeRel("S", {"y"});
  ASSERT_TRUE(parent.AddRelation(r).ok());
  ASSERT_TRUE(parent.AddRelation(s).ok());

  Database child = parent;
  EXPECT_EQ(parent.relations().at("R").get(), child.relations().at("R").get());
  EXPECT_EQ(parent.relations().at("S").get(), child.relations().at("S").get());

  Result<Relation*> mut = child.GetMutableRelation("R");
  ASSERT_TRUE(mut.ok());
  ASSERT_TRUE((*mut)->AddRow({"2"}).ok());

  // R diverged; S is still shared.
  EXPECT_NE(parent.relations().at("R").get(), child.relations().at("R").get());
  EXPECT_EQ(parent.relations().at("S").get(), child.relations().at("S").get());
  EXPECT_EQ(parent.GetRelation("R").value()->size(), 1u);
  EXPECT_EQ(child.GetRelation("R").value()->size(), 2u);
}

TEST(CowTest, UniquelyOwnedRelationMutatesInPlace) {
  Database db;
  Relation r = MakeRel("R", {"x"});
  ASSERT_TRUE(db.AddRelation(r).ok());
  const Relation* before = db.relations().at("R").get();
  Database::CowStats stats_before = Database::GlobalCowStats();
  Result<Relation*> mut = db.GetMutableRelation("R");
  ASSERT_TRUE(mut.ok());
  EXPECT_EQ(before, *mut);  // no clone: nobody else holds it
  EXPECT_EQ(Database::GlobalCowStats().cow_copies, stats_before.cow_copies);
}

TEST(CowTest, CowStatsCountSharingAndClones) {
  Database parent;
  Relation r = MakeRel("R", {"x"});
  Relation s = MakeRel("S", {"y"});
  ASSERT_TRUE(parent.AddRelation(r).ok());
  ASSERT_TRUE(parent.AddRelation(s).ok());

  Database::CowStats before = Database::GlobalCowStats();
  Database child = parent;  // shares both relations
  Database::CowStats after_copy = Database::GlobalCowStats();
  EXPECT_EQ(after_copy.relations_shared, before.relations_shared + 2);

  ASSERT_TRUE(child.GetMutableRelation("R").ok());  // clones the shared R
  Database::CowStats after_mut = Database::GlobalCowStats();
  EXPECT_EQ(after_mut.cow_copies, after_copy.cow_copies + 1);
}

TEST(CowTest, AssignmentCountsOnlyNewlySharedRelations) {
  Database parent;
  Relation r = MakeRel("R", {"x"});
  Relation s = MakeRel("S", {"y"});
  ASSERT_TRUE(parent.AddRelation(r).ok());
  ASSERT_TRUE(parent.AddRelation(s).ok());

  Database child;
  Database::CowStats before = Database::GlobalCowStats();
  child = parent;  // both relations newly shared
  EXPECT_EQ(Database::GlobalCowStats().relations_shared,
            before.relations_shared + 2);

  // Re-assigning the same source shares nothing new: child already holds
  // the identical relation pointers. The old accounting re-counted size()
  // on every assignment.
  before = Database::GlobalCowStats();
  child = parent;
  EXPECT_EQ(Database::GlobalCowStats().relations_shared,
            before.relations_shared);

  // After one relation diverges, re-assignment re-shares exactly that one.
  ASSERT_TRUE(child.GetMutableRelation("R").ok());
  before = Database::GlobalCowStats();
  child = parent;
  EXPECT_EQ(Database::GlobalCowStats().relations_shared,
            before.relations_shared + 1);
}

TEST(CowTest, EmptyDatabaseCopiesShareNothing) {
  Database empty;
  Database::CowStats before = Database::GlobalCowStats();
  Database copy = empty;  // copy ctor: no relations, nothing shared
  Database assigned;
  assigned = empty;  // operator=: same invariant
  EXPECT_EQ(Database::GlobalCowStats().relations_shared,
            before.relations_shared);
  EXPECT_EQ(Database::GlobalCowStats().cow_copies, before.cow_copies);
  EXPECT_TRUE(copy.relations().empty());
  EXPECT_TRUE(assigned.relations().empty());
}

TEST(CowTest, OperatorSuccessorNeverLeaksIntoParent) {
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(4);
  Database parent = pair.source;
  std::string parent_key = parent.CanonicalKey();
  Fp128 parent_fp = parent.Fingerprint128();

  Result<Database> next =
      ApplyOp(RenameAttrOp{"R", "A1", "B1"}, parent);
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(next->GetRelation("R").value()->HasAttribute("B1"));

  // The parent is bit-for-bit untouched.
  EXPECT_TRUE(parent.GetRelation("R").value()->HasAttribute("A1"));
  EXPECT_FALSE(parent.GetRelation("R").value()->HasAttribute("B1"));
  EXPECT_EQ(parent.CanonicalKey(), parent_key);
  EXPECT_EQ(parent.Fingerprint128(), parent_fp);
  EXPECT_FALSE(parent.Fingerprint128() == next->Fingerprint128());
}

// ---------------------------------------------------------------------------
// Expand transposition cache
// ---------------------------------------------------------------------------

MappingProblem MakeProblem(const SyntheticMatchingPair& pair,
                           SuccessorConfig config = SuccessorConfig()) {
  return MappingProblem(
      pair.source, pair.target,
      MakeHeuristic(HeuristicKind::kH1, pair.target, SearchAlgorithm::kRbfs),
      nullptr, {}, config);
}

TEST(ExpandCacheTest, SecondExpandIsAHit) {
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(3);
  MappingProblem problem = MakeProblem(pair);
  obs::MetricRegistry metrics;
  problem.set_metrics(&metrics);

  auto first = problem.Expand(pair.source);
  auto second = problem.Expand(pair.source);
  EXPECT_EQ(metrics.GetCounter("expand.cache_misses").value(), 1u);
  EXPECT_EQ(metrics.GetCounter("expand.cache_hits").value(), 1u);

  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].state.Fingerprint128(),
              second[i].state.Fingerprint128());
  }
  EXPECT_EQ(problem.AuxMemoryNodes(), first.size());
}

TEST(ExpandCacheTest, EvictsLeastRecentlyUsedAndCounts) {
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(3);
  SuccessorConfig config;
  config.expand_cache_capacity = 1;
  MappingProblem problem = MakeProblem(pair, config);
  obs::MetricRegistry metrics;
  problem.set_metrics(&metrics);

  auto succ = problem.Expand(pair.source);
  ASSERT_FALSE(succ.empty());
  size_t first_count = succ.size();
  EXPECT_EQ(problem.AuxMemoryNodes(), first_count);

  // Expanding a different state evicts the first entry (capacity 1).
  auto other = problem.Expand(succ[0].state);
  EXPECT_EQ(metrics.GetCounter("expand.cache_evictions").value(), 1u);
  EXPECT_EQ(problem.AuxMemoryNodes(), other.size());

  // The first state was evicted: expanding it again is a miss.
  problem.Expand(pair.source);
  EXPECT_EQ(metrics.GetCounter("expand.cache_hits").value(), 0u);
  EXPECT_EQ(metrics.GetCounter("expand.cache_misses").value(), 3u);
}

TEST(ExpandCacheTest, ZeroCapacityDisablesCache) {
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(3);
  SuccessorConfig config;
  config.expand_cache_capacity = 0;
  MappingProblem problem = MakeProblem(pair, config);
  obs::MetricRegistry metrics;
  problem.set_metrics(&metrics);

  problem.Expand(pair.source);
  problem.Expand(pair.source);
  EXPECT_EQ(problem.AuxMemoryNodes(), 0u);
  EXPECT_EQ(metrics.GetCounter("expand.cache_hits").value(), 0u);
  EXPECT_EQ(metrics.GetCounter("expand.cache_misses").value(), 0u);
}

TEST(ExpandCacheTest, ExpandReportsCowSharing) {
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(3);
  MappingProblem problem = MakeProblem(pair);
  obs::MetricRegistry metrics;
  problem.set_metrics(&metrics);
  problem.Expand(pair.source);
  // Every successor copied the state (sharing its relation) and then
  // cloned the one relation it mutated.
  EXPECT_GT(metrics.GetCounter("state.relations_shared").value(), 0u);
  EXPECT_GT(metrics.GetCounter("state.cow_copies").value(), 0u);
}

// The free-function detector: problems without AuxMemoryNodes() report 0,
// so toy test problems keep satisfying the duck type unchanged.
struct NoAuxProblem {};

TEST(AuxMemoryTest, DetectorDefaultsToZero) {
  NoAuxProblem toy;
  EXPECT_EQ(AuxMemoryNodes(toy), 0u);

  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(3);
  MappingProblem problem = MakeProblem(pair);
  problem.Expand(pair.source);
  EXPECT_GT(AuxMemoryNodes(problem), 0u);
}

}  // namespace
}  // namespace tupelo
